(* Attack audit: exercises every malicious behaviour of the threat model
   (§3.2) against the full cryptographic protocol and reports how each is
   neutralized, including the relaxed-SAVI grey zone where the predicted
   pass rate F(c) is compared against observed outcomes.

     dune exec examples/attack_audit.exe *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver

let params = Params.make ~n_clients:5 ~max_malicious:1 ~d:24 ~k:8 ~m_factor:64.0 ~bound_b:600.0 ()
let setup = Setup.create ~label:"attack-audit" params

let base_updates () = Array.init 5 (fun i -> Array.init 24 (fun l -> (((i * 7) + (l * 11)) mod 60) - 30))

let run name behaviours updates =
  let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:("audit-" ^ name) ~round:1 in
  Printf.printf "%-28s flagged=[%s]  aggregated=%b\n" name
    (String.concat ";" (List.map string_of_int stats.Driver.flagged))
    (stats.Driver.aggregate <> None);
  stats

let () =
  print_endline "=== RiseFL attack audit (n=5, m=1, d=24, k=8) ===\n";

  Printf.printf "%-28s %s\n" "scenario" "outcome";
  ignore (run "all honest" (Driver.honest_all 5) (base_updates ()));

  (* scaling attack, far beyond the bound *)
  let updates = base_updates () in
  let norm = Encoding.Fixed_point.l2_norm_encoded updates.(2) in
  let c = 60.0 in
  let factor = int_of_float (c *. params.Params.bound_b /. norm) in
  updates.(2) <- Array.map (fun x -> factor * x) updates.(2);
  let behaviours = Driver.honest_all 5 in
  behaviours.(2) <- Driver.Oversized c;
  ignore (run "scaling attack (60x bound)" behaviours updates);

  (* sign-flip attack = scaling with negated sign *)
  let updates = base_updates () in
  updates.(1) <- Array.map (fun x -> -factor * x) updates.(1);
  let behaviours = Driver.honest_all 5 in
  behaviours.(1) <- Driver.Oversized c;
  ignore (run "sign-flip attack (60x)" behaviours updates);

  (* malformed shares *)
  let behaviours = Driver.honest_all 5 in
  behaviours.(0) <- Driver.Bad_share_to [ 2; 3; 4; 5 ];
  ignore (run "garbage shares to all" behaviours (base_updates ()));

  let behaviours = Driver.honest_all 5 in
  behaviours.(4) <- Driver.Bad_share_to [ 2 ];
  ignore (run "garbage share to one" behaviours (base_updates ()));

  (* framing an honest client *)
  let behaviours = Driver.honest_all 5 in
  behaviours.(3) <- Driver.False_flags [ 1 ];
  ignore (run "false accusation" behaviours (base_updates ()));

  (* dropout *)
  let behaviours = Driver.honest_all 5 in
  behaviours.(2) <- Driver.Drop_out;
  ignore (run "client drops out" behaviours (base_updates ()));

  (* --- the relaxed-SAVI grey zone: moderate oversizing --- *)
  print_endline "\n=== grey zone: pass rate of a c.B-norm update over 8 trials vs predicted F(c) ===";
  let pr = Params.passrate_params params in
  List.iter
    (fun c ->
      let predicted = Stats.Passrate.f pr c in
      let passes = ref 0 in
      for trial = 1 to 8 do
        let updates = base_updates () in
        let norm = Encoding.Fixed_point.l2_norm_encoded updates.(2) in
        let factor = c *. params.Params.bound_b /. norm in
        updates.(2) <- Array.map (fun x -> int_of_float (factor *. float_of_int x)) updates.(2);
        let behaviours = Driver.honest_all 5 in
        behaviours.(2) <- Driver.Oversized c;
        let stats =
          Driver.run_iteration setup ~updates ~behaviours
            ~seed:(Printf.sprintf "grey-%f-%d" c trial) ~round:1
        in
        if not (List.mem 3 stats.Driver.flagged) then incr passes
      done;
      Printf.printf "c = %-5.2f  predicted F(c) = %-10.3g observed pass rate = %d/8\n" c predicted
        !passes)
    [ 1.5; 4.0; 10.0 ]
