(* Baseline face-off: run RiseFL, EIFFeL, RoFL and ACORN on the same
   workload and print the Table-2-style per-stage comparison — the
   miniature of the paper's headline result (28x/53x/164x client-side
   speedups at large d).

     dune exec examples/baseline_faceoff.exe *)

module Driver = Risefl_core.Driver

let n = 3
let d = 64
let k = 16

let () =
  Printf.printf "=== Same workload, four systems (n=%d, d=%d, 16-bit fixed point) ===\n\n" n d;
  let drbg = Prng.Drbg.create_string "faceoff" in
  let updates = Array.init n (fun _ -> Array.init d (fun _ -> Prng.Drbg.uniform_int drbg 80 - 40)) in
  let bound =
    1.25
    *. Array.fold_left (fun acc u -> Float.max acc (Encoding.Fixed_point.l2_norm_encoded u)) 0.0 updates
  in
  let expected = Array.init d (fun l -> Array.fold_left (fun a u -> a + u.(l)) 0 updates) in
  Printf.printf "%-8s | %10s %10s %10s | %10s %10s | %10s %8s\n" "system" "commit(s)" "prfgen(s)"
    "prfver(s)" "srv-ver(s)" "agg(s)" "comm(KB)" "correct";

  let show name commit gen ver sver agg comm ok =
    Printf.printf "%-8s | %10.3f %10.3f %10.3f | %10.3f %10.3f | %10.1f %8b\n" name commit gen ver
      sver agg (float_of_int comm /. 1024.0) ok
  in

  (* EIFFeL *)
  let setup = Baselines.Eiffel.create_setup ~label:"faceoff" ~d ~bits:16 ~n ~m:1 in
  let o = Baselines.Eiffel.run setup ~updates ~bound_b:bound ~cheat:(Array.make n false) ~seed:"f-e" in
  let t = o.Baselines.Types.timings in
  show "EIFFeL" t.Baselines.Types.client_commit_s t.Baselines.Types.client_proof_gen_s
    t.Baselines.Types.client_proof_ver_s t.Baselines.Types.server_verify_s
    t.Baselines.Types.server_agg_s t.Baselines.Types.client_comm_bytes
    (o.Baselines.Types.aggregate = Some expected);

  (* RoFL *)
  let setup = Baselines.Rofl.create_setup ~label:"faceoff" ~d ~bits:16 in
  let o = Baselines.Rofl.run setup ~updates ~bound_b:bound ~cheat:(Array.make n false) ~seed:"f-r" in
  let t = o.Baselines.Types.timings in
  show "RoFL" t.Baselines.Types.client_commit_s t.Baselines.Types.client_proof_gen_s
    t.Baselines.Types.client_proof_ver_s t.Baselines.Types.server_verify_s
    t.Baselines.Types.server_agg_s t.Baselines.Types.client_comm_bytes
    (o.Baselines.Types.aggregate = Some expected);

  (* ACORN *)
  let setup = Baselines.Acorn.create_setup ~label:"faceoff" ~d ~bits:16 in
  let o = Baselines.Acorn.run setup ~updates ~bound_b:bound ~cheat:(Array.make n false) ~seed:"f-a" in
  let t = o.Baselines.Types.timings in
  show "ACORN" t.Baselines.Types.client_commit_s t.Baselines.Types.client_proof_gen_s
    t.Baselines.Types.client_proof_ver_s t.Baselines.Types.server_verify_s
    t.Baselines.Types.server_agg_s t.Baselines.Types.client_comm_bytes
    (o.Baselines.Types.aggregate = Some expected);

  (* RiseFL *)
  let params =
    Risefl_core.Params.make ~n_clients:n ~max_malicious:1 ~d ~k ~m_factor:1024.0 ~bound_b:bound ()
  in
  let setup = Risefl_core.Setup.create ~label:"faceoff-risefl" params in
  let stats = Driver.run_iteration setup ~updates ~behaviours:(Driver.honest_all n) ~seed:"f-rf" ~round:1 in
  show "RiseFL" stats.Driver.client_commit_s stats.Driver.client_proof_s
    stats.Driver.client_share_verify_s
    (stats.Driver.server_prep_s +. stats.Driver.server_verify_s)
    stats.Driver.server_agg_s
    (stats.Driver.client_up_bytes + stats.Driver.client_down_bytes)
    (stats.Driver.aggregate = Some expected);

  print_newline ();
  Printf.printf
    "All four transported the same sum under different privacy/integrity machinery.\n\
     The gaps grow with d (see `dune exec bench/main.exe -- table2`): RiseFL's proof\n\
     cost is ~O(d/log d + k) group operations, RoFL's is O(d·b), ACORN's O(d), and\n\
     EIFFeL pushes O(n·m·d) verification work onto every client.\n"
