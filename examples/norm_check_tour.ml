(* A guided tour of the probabilistic L2-norm check (Algorithm 2) — the
   mathematical heart of the paper — without any cryptography: how the
   chi-square bound gamma_{k,eps} is chosen, why honest vectors always
   pass, and how the rejection sharpness grows with k.

     dune exec examples/norm_check_tour.exe *)

let () =
  let eps = 2.0 ** -128.0 in
  print_endline "=== Algorithm 2: probabilistic L2-norm bound check ===\n";

  (* Step 1: the bound.  For u with ||u|| <= B and a_1..a_k ~ N(0, I),
     sum <a_t,u>^2 / ||u||^2 is chi^2_k distributed, so the (1-eps)
     quantile gamma gives a threshold that honest vectors only exceed
     with probability eps = 2^-128. *)
  print_endline "gamma_{k,eps} with eps = 2^-128 (Pr[chi2_k < gamma] = 1 - eps):";
  List.iter
    (fun k ->
      let gamma = Stats.Chisq.quantile_upper ~k ~eps in
      Printf.printf "  k = %-5d gamma = %10.1f   gamma/k = %6.3f\n" k gamma
        (gamma /. float_of_int k))
    [ 10; 100; 1000; 9000 ];
  print_endline "(gamma/k -> 1: more projections make the bound tight, squeezing attackers)\n";

  (* Step 2: run the check empirically. *)
  let drbg = Prng.Drbg.create_string "tour" in
  let d = 200 in
  let k = 100 in
  let gamma = Stats.Chisq.quantile_upper ~k ~eps in
  let b = 1.0 in
  let check u =
    (* Algorithm 2, lines 1-6 *)
    let sum = ref 0.0 in
    for _ = 1 to k do
      let proj = ref 0.0 in
      Array.iter (fun x -> proj := !proj +. (Prng.Drbg.gaussian drbg *. x)) u;
      sum := !sum +. (!proj *. !proj)
    done;
    !sum <= b *. b *. gamma
  in
  let unit_vector scale =
    let v = Array.init d (fun _ -> Prng.Drbg.gaussian drbg) in
    let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v) in
    Array.map (fun x -> x /. norm *. scale) v
  in
  Printf.printf "empirical pass rates at k = %d (bound B = %.1f), 200 trials each:\n" k b;
  List.iter
    (fun scale ->
      let passes = ref 0 in
      for _ = 1 to 200 do
        if check (unit_vector scale) then incr passes
      done;
      let predicted =
        if scale <= 1.0 then 1.0
        else Stats.Chisq.cdf ~k (gamma /. (scale *. scale))
      in
      Printf.printf "  ||u|| = %4.2f B: passed %3d/200   (theory: %.3g)\n" scale !passes predicted)
    [ 0.5; 1.0; 1.2; 1.5; 2.0; 3.0 ];

  (* Step 3: what the crypto layer adds on top. *)
  print_endline "\nwhat the paper's protocol adds around this check:";
  print_endline "  - the a_t are derived from a shared seed H(s, pk_1..pk_n), so neither the";
  print_endline "    server nor any client can steer them (Section 4.4.2);";
  print_endline "  - the client never reveals <a_t,u>: it commits to each projection and";
  print_endline "    proves, in zero knowledge, that the committed squares sum below B0;";
  print_endline "  - B0 = B^2 M^2 (sqrt gamma + sqrt(kd)/2M)^2 absorbs the discretization of";
  print_endline "    the Gaussians to integers (Theorem 1).";
  let pr = { Stats.Passrate.k = 1000; eps; d = 1_000_000; m_factor = 2.0 ** 24.0 } in
  let c_star, dmg = Stats.Passrate.max_damage pr in
  Printf.printf
    "\nbottom line (k=1000, paper's setting): a rational attacker maximizes expected\ndamage at ||u|| = %.2f B for damage %.2f B — barely above the strict check's B.\n"
    c_star dmg
