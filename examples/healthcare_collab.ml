(* The paper's Figure 1 scenario: three hospitals train a shared
   diagnostic model on their local medical images without revealing them
   to the coordinating healthcare center, while one compromised hospital
   tries to poison the model with a sign-flip attack.

   Two layers are shown:
   - the learning dynamics over many rounds (float-level simulation of
     the probabilistic check, fast), and
   - one fully cryptographic round on the final gradients, proving the
     actual ZKP pipeline accepts the honest hospitals.

     dune exec examples/healthcare_collab.exe *)

module F = Flsim

let () =
  let drbg = Prng.Drbg.create_string "healthcare" in
  (* stand-in for the hospitals' OrganAMNIST-like image data (784 pixels,
     11 organ classes) — see DESIGN.md substitutions *)
  let data = F.Dataset.organ_like drbg ~n:600 in
  Printf.printf "dataset: %d samples, %d features, %d classes\n" (Array.length data.F.Dataset.y)
    data.F.Dataset.n_features data.F.Dataset.n_classes;

  (* --- learning dynamics: 3 hospitals + 1 attacker-controlled --- *)
  let train checker =
    F.Federated.train
      {
        F.Federated.n_clients = 4;
        n_malicious = 1;
        attack = F.Attack.Sign_flip 6.0;
        checker;
        rounds = 15;
        lr = 0.4;
        batch = None;
        arch = F.Model.Softmax;
        bound_factor = 2.0;
        non_iid_alpha = None;
        seed = "healthcare";
      }
      ~data
  in
  let nc = train F.Federated.Np_nc in
  let rf = train (F.Federated.Risefl (F.Federated.D_l2, 150)) in
  Printf.printf "\nwithout integrity checking, the poisoned model stalls:\n  accuracy  %s\n"
    (String.concat " "
       (Array.to_list
          (Array.map (fun (l : F.Federated.round_log) -> Printf.sprintf "%.2f" l.F.Federated.accuracy) nc.F.Federated.logs)));
  Printf.printf "with RiseFL's probabilistic check, training proceeds:\n  accuracy  %s\n"
    (String.concat " "
       (Array.to_list
          (Array.map (fun (l : F.Federated.round_log) -> Printf.sprintf "%.2f" l.F.Federated.accuracy) rf.F.Federated.logs)));
  Printf.printf "final: no-check %.3f vs RiseFL %.3f\n" nc.F.Federated.final_accuracy
    rf.F.Federated.final_accuracy;

  (* --- one cryptographic round on a small model head --- *)
  print_endline "\nrunning one fully cryptographic aggregation round (d = 64 slice of the model)...";
  let params =
    Risefl_core.Params.make ~n_clients:4 ~max_malicious:1 ~d:64 ~k:8 ~m_factor:128.0 ~bound_b:800.0 ()
  in
  let setup = Risefl_core.Setup.create ~label:"healthcare-crypto" params in
  let fp = params.Risefl_core.Params.fp in
  (* encode a 64-coordinate slice of each hospital's real gradient *)
  let model = F.Model.create drbg F.Model.Softmax ~n_features:784 ~n_classes:11 in
  let parts = F.Dataset.partition data ~parts:4 in
  let updates =
    Array.map
      (fun part ->
        let g = F.Model.gradient model part ~batch:None drbg in
        let slice = Array.sub g 0 64 in
        (* scale gradients into a comfortable fixed-point range *)
        Encoding.Fixed_point.encode_vec fp (Array.map (fun x -> 50.0 *. x) slice))
      parts
  in
  (* hospital 4 flips and amplifies its slice *)
  let behaviours = Risefl_core.Driver.honest_all 4 in
  updates.(3) <- Array.map (fun x -> -40 * x) updates.(3);
  behaviours.(3) <- Risefl_core.Driver.Oversized 40.0;
  let stats =
    Risefl_core.Driver.run_iteration setup ~updates ~behaviours ~seed:"healthcare-round" ~round:1
  in
  Printf.printf "flagged hospitals: [%s]  (hospital 4 mounted the attack)\n"
    (String.concat "; " (List.map string_of_int stats.Risefl_core.Driver.flagged));
  match stats.Risefl_core.Driver.aggregate with
  | Some agg ->
      let decoded = Encoding.Fixed_point.decode_vec fp agg in
      Printf.printf "aggregated gradient slice recovered, first coords: %.3f %.3f %.3f ...\n"
        decoded.(0) decoded.(1) decoded.(2)
  | None -> print_endline "aggregation failed (unexpected)"
