(* Quickstart: one secure-and-verifiable aggregation round.

   Five clients each hold a small gradient vector; the server learns only
   the sum, and every client proves (in zero knowledge) that its update's
   L2 norm is within the agreed bound.

     dune exec examples/quickstart.exe *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver

let () =
  (* 1. Agree on system parameters (§4.2 of the paper): 5 clients, at most
     1 malicious, 16 model parameters, k = 4 random projections, and an
     L2 bound of 500 (in fixed-point encoded units). *)
  let params =
    Params.make ~n_clients:5 ~max_malicious:1 ~d:16 ~k:4 ~m_factor:64.0 ~bound_b:500.0 ()
  in
  (* 2. Derive the public setup (generators g, q, w_1..w_d, Bulletproof
     generators) — deterministic, no trusted party. *)
  let setup = Setup.create ~label:"quickstart-demo" params in
  Printf.printf "setup ready: d=%d, k=%d, B0 has %d bits\n" params.Params.d params.Params.k
    (Bigint.bit_length setup.Setup.b0);

  (* 3. Each client brings a (here: synthetic) fixed-point encoded update. *)
  let updates = Array.init 5 (fun i -> Array.init 16 (fun l -> ((i + 1) * (l - 8)) mod 50)) in
  Array.iteri
    (fun i u ->
      Printf.printf "client %d: ||u||_2 = %.1f (bound %.0f)\n" (i + 1)
        (Encoding.Fixed_point.l2_norm_encoded u) params.Params.bound_b)
    updates;

  (* 4. Run one full iteration: hybrid commitments, share verification,
     probabilistic L2 proof generation + verification, secure aggregation. *)
  let stats =
    Driver.run_iteration setup ~updates ~behaviours:(Driver.honest_all 5) ~seed:"quickstart" ~round:1
  in

  (* 5. The server ends with exactly the sum of the updates — and nothing
     else about any individual client. *)
  (match stats.Driver.aggregate with
  | Some agg ->
      Printf.printf "aggregate: [%s]\n"
        (String.concat "; " (Array.to_list (Array.map string_of_int agg)));
      let expected = Array.init 16 (fun l -> Array.fold_left (fun a u -> a + u.(l)) 0 updates) in
      Printf.printf "matches plaintext sum: %b\n" (agg = expected)
  | None -> print_endline "aggregation failed (unexpected)");
  Printf.printf "flagged clients: [%s]\n"
    (String.concat "; " (List.map string_of_int stats.Driver.flagged));
  Printf.printf
    "timings: commit %.2fs, proof %.2fs per client; server verify %.2fs; comm %.1f KB up / %.1f KB down\n"
    stats.Driver.client_commit_s stats.Driver.client_proof_s stats.Driver.server_verify_s
    (float_of_int stats.Driver.client_up_bytes /. 1024.0)
    (float_of_int stats.Driver.client_down_bytes /. 1024.0)
