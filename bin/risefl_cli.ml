(* risefl_cli — command-line front end for the RiseFL reproduction.

   Subcommands:
     round    run one or more secure-and-verifiable aggregation rounds on
              synthetic updates, optionally with attackers, a fault-injected
              (and retransmitting) transport, a write-ahead log and a
              planned server crash
     resume   replay a write-ahead log and finish its interrupted round
     serve    run the aggregation server on a real TCP or Unix socket
     client   drive one client process against a serve instance
     train    run a federated training simulation under attack with a
              chosen integrity checker
     params   print the derived security quantities (gamma, B0, F curve)
              for a parameter set *)

open Cmdliner

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Round_log = Risefl_core.Round_log
module Reliable = Risefl_core.Reliable
module Topology = Risefl_topology.Topology
module Evloop = Risefl_transport.Evloop
module Tserver = Risefl_transport.Server
module Tclient = Risefl_transport.Client

(* --- shared args --- *)

let n_arg = Arg.(value & opt int 5 & info [ "n"; "clients" ] ~docv:"N" ~doc:"Number of clients.")
let m_arg = Arg.(value & opt int 1 & info [ "m"; "malicious" ] ~docv:"M" ~doc:"Max malicious clients (m < n/2).")
let d_arg = Arg.(value & opt int 32 & info [ "d"; "dimension" ] ~docv:"D" ~doc:"Model dimension.")
let k_arg = Arg.(value & opt int 8 & info [ "k"; "samples" ] ~docv:"K" ~doc:"Probabilistic-check projections.")
let bound_arg = Arg.(value & opt float 800.0 & info [ "bound" ] ~docv:"B" ~doc:"L2 bound (encoded units).")
let seed_arg = Arg.(value & opt string "cli" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs" ] ~docv:"J"
        ~doc:"Worker domains for the parallel hot paths (0 = RISEFL_JOBS or the core count).")

let cache_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the expensive group-layer precomputations (BSGS baby table, fixed-base point \
           tables) under DIR. Warm starts load them instead of rebuilding; corrupt or mismatched \
           entries are rebuilt automatically. Results are bit-identical with or without a cache.")

let dlog_mem_arg =
  Arg.(
    value & opt (some float) None
    & info [ "dlog-mem" ] ~docv:"F"
        ~doc:
          "Scale the BSGS baby-table size by F (default 1.0): the discrete-log time/memory knob. \
           F=4 stores a 4x larger table and takes ~4x fewer giant steps per decode.")

let configure_group_cache cache_dir dlog_mem =
  if cache_dir <> None || dlog_mem <> None then
    Risefl_core.Group_cache.configure ?cache_dir ?dlog_m_scale:dlog_mem ()

let attackers_arg =
  Arg.(
    value & opt (list int) []
    & info [ "attackers" ] ~docv:"IDS" ~doc:"1-based client ids mounting a 50x scaling attack.")

let topology_arg =
  Arg.(
    value
    & opt (enum [ ("full", `Full); ("kregular", `Kregular) ]) `Full
    & info [ "topology" ] ~docv:"MODE"
        ~doc:
          "Share topology. 'full' (default): every blind is VSSS-shared to all n clients.            'kregular': each round derives a seeded k-regular neighborhood graph and shares only            to graph neighbors, cutting the commit stage from O(n^2) to O(n.k) sealed shares;            agg-stage dropouts are recovered from their neighborhood. k = n-1 is bit-identical            to full.")

let degree_arg =
  Arg.(
    value & opt int 0
    & info [ "degree" ] ~docv:"K"
        ~doc:
          "Neighborhood degree under $(b,--topology) kregular. 0 (default) picks the smallest k            whose neighborhood-majority recovery and privacy bounds both hold with probability            1 - 2^-40 under 5% dropouts and the parameter set's corruption fraction.")

let churn_arg =
  Arg.(
    value & opt (some string) None
    & info [ "churn" ] ~docv:"SPEC"
        ~doc:
          "Elastic membership: drive per-round enrollment from a seeded churn schedule (a pure \
           function of the session seed, so server and clients derive identical cohorts with no \
           membership bytes on the wire). SPEC is \
           'leave=P,rejoin=P,rotate=P,min=N' (any subset; defaults leave=0.2 rejoin=0.5 \
           rotate=0.1 min=3). Membership epochs are WAL-logged before each round, so crash \
           recovery re-enters the round under the exact cohort.")

let make_churn = function
  | None -> None
  | Some spec -> (
      match Risefl_core.Membership.spec_of_string spec with
      | Ok s -> Some s
      | Error e ->
          Printf.eprintf "bad --churn spec: %s\n" e;
          exit 2)

(* resolve the topology mode; auto-degree from the security calculation *)
let make_topology ~n ~m ~topology ~degree =
  match topology with
  | `Full -> Topology.Full
  | `Kregular ->
      let k =
        if degree > 0 then degree
        else
          Topology.recommend_degree ~n ~dropout:0.05
            ~corruption:(float_of_int m /. float_of_int n)
            ~sigma:40
      in
      Topology.Kregular k

let print_topology ~seed ~n mode =
  match mode with
  | Topology.Full -> ()
  | Topology.Kregular k -> (
      match
        Topology.plan ~mode ~seed ~round:1 ~cohort:(Array.init n (fun i -> i + 1))
      with
      | None -> Printf.printf "topology: kregular k=%d normalizes to full (all-to-all)\n" k
      | Some t ->
          Printf.printf "topology: kregular k=%d t=%d digest=%s (round 1)\n" (Topology.degree t)
            (Topology.threshold t) (Topology.hex_digest t))

let wal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "wal" ] ~docv:"FILE"
        ~doc:
          "Arm the durable runtime: append every accepted frame to FILE (write-ahead, fsynced) \
           so an interrupted round can be finished with the resume subcommand.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Verify proofs through the streaming pipeline: each arrived frame is folded into the \
           round's sharded RLC accumulators and its decoded bulk evicted, bounding resident \
           memory; verdicts and the aggregate are bit-identical to the barrier path.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Independent streaming-accumulator shards (client i lands in shard (i-1) mod S); \
           implies $(b,--stream) when > 1.")

let stream_batch_arg =
  Arg.(
    value & opt int 64
    & info [ "stream-batch" ] ~docv:"B"
        ~doc:"Frames buffered per shard before a partial-MSM flush (streaming mode).")

let make_stream_cfg ~stream ~shards ~batch =
  if shards < 1 || batch < 1 then begin
    Printf.eprintf "--shards and --stream-batch must be >= 1\n";
    exit 2
  end;
  if stream || shards > 1 then Some (Risefl_core.Server.stream_cfg ~shards ~batch ()) else None

let print_stream_stats server =
  match Risefl_core.Server.stream_stats server with
  | None -> ()
  | Some st ->
      Printf.printf "stream: %d folded, %d evicted, %d flushes, peak batch %d\n"
        st.Risefl_core.Server.folded st.Risefl_core.Server.evicted st.Risefl_core.Server.flushes
        st.Risefl_core.Server.peak_batch

(* the synthetic per-round updates live in Risefl_transport.Updates so the
   serve/client processes derive bit-identical vectors from the seed *)
let make_updates = Risefl_transport.Updates.make
let make_behaviours = Risefl_transport.Updates.behaviours

let print_stats ~d (stats : Driver.stats) =
  Printf.printf "flagged: [%s]\n" (String.concat ";" (List.map string_of_int stats.Driver.flagged));
  if stats.Driver.decode_failures <> [] then
    Printf.printf "undecodable frames from: [%s]\n"
      (String.concat ";" (List.map string_of_int stats.Driver.decode_failures));
  (match stats.Driver.aggregate with
  | Some agg ->
      Printf.printf "aggregate (first 8 coords): %s\n"
        (String.concat " " (List.init (min 8 d) (fun l -> string_of_int agg.(l))))
  | None -> (
      match stats.Driver.failure with
      | Some e ->
          Printf.printf "aggregation failed: %s\n" (Risefl_core.Server.agg_error_to_string e)
      | None -> print_endline "aggregation failed"));
  Printf.printf
    "client: commit %.3fs, share-verify %.3fs, proof %.3fs | server: prep %.3fs, verify %.3fs, agg %.3fs\n"
    stats.Driver.client_commit_s stats.Driver.client_share_verify_s stats.Driver.client_proof_s
    stats.Driver.server_prep_s stats.Driver.server_verify_s stats.Driver.server_agg_s;
  Printf.printf "comm per client: %.1f KB up, %.1f KB down\n"
    (float_of_int stats.Driver.client_up_bytes /. 1024.0)
    (float_of_int stats.Driver.client_down_bytes /. 1024.0)

let print_outcome ~d ~round outcome =
  match outcome with
  | Driver.Completed stats ->
      Printf.printf "round %d completed\n" round;
      print_stats ~d stats
  | outcome -> Printf.printf "round %d aborted: %s\n" round (Driver.outcome_to_string outcome)

let print_transport_counters net =
  let c = Netsim.counters net in
  Printf.printf
    "transport: %d sent, %d delivered, %d dropped, %d late, %d mutated, %d duplicated, %d \
     reordered, %d replayed, %d retransmitted, %d recovered\n"
    c.Netsim.sent c.Netsim.delivered c.Netsim.dropped c.Netsim.late c.Netsim.mutated
    c.Netsim.duplicated c.Netsim.reordered c.Netsim.replayed c.Netsim.retransmitted
    c.Netsim.recovered

let print_reliable_counters rel =
  let c = Reliable.counters rel in
  Printf.printf
    "reliable: %d frames, %d sends, %d retransmits, %d recovered after retry, %d lost for good, \
     %d duplicates suppressed, %d rejected\n"
    c.Reliable.logical c.Reliable.attempts c.Reliable.retransmits c.Reliable.recovered
    c.Reliable.lost c.Reliable.dup_suppressed c.Reliable.rejected

(* --- round --- *)

let round_cmd =
  let faults_arg =
    Arg.(
      value & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Run the round over a fault-injected transport. SPEC is a comma-separated plan, e.g. \
             'drop=0.1,flip=0.05,delay=0.2:4,dup=0.02,trunc=0.05,reorder=0.1,replay=0.02'.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 4
      & info [ "deadline" ] ~docv:"TICKS"
          ~doc:"Per-stage delivery deadline in simulated ticks; later frames count as dropouts.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry for the round and write the snapshot (operation counters, \
             per-stage spans, wire bytes, transport fault stats) to FILE as JSON.")
  in
  let rounds_arg =
    Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"R" ~doc:"Protocol rounds to run (C* carries across rounds).")
  in
  let crash_arg =
    Arg.(
      value & opt (some string) None
      & info [ "crash" ] ~docv:"[ROUND:]STAGE:STEP"
          ~doc:
            "Kill the server at the given point (stage in commit|flag|proof|agg, step in \
             start|end|frame-index), then recover from the write-ahead log (requires $(b,--wal)). \
             E.g. 'proof:start', '2:agg:1'.")
  in
  let retransmit_arg =
    Arg.(
      value & flag
      & info [ "retransmit" ]
          ~doc:
            "Layer the ack/retransmission protocol over the transport: unacked frames are resent \
             under exponential backoff and duplicates are suppressed by (round,stage,sender,seq).")
  in
  let no_recover_arg =
    Arg.(
      value & flag
      & info [ "no-recover" ]
          ~doc:
            "Do not recover in-process after $(b,--crash): sync the log and exit, leaving the \
             interrupted WAL for the resume subcommand (requires $(b,--rounds) 1).")
  in
  let dropouts_arg =
    Arg.(
      value & opt (list int) []
      & info [ "dropouts" ] ~docv:"IDS"
          ~doc:
            "1-based client ids that send nothing at all (the in-process twin of a client \
             process that never connects or dies mid-round).")
  in
  let agg_dropouts_arg =
    Arg.(
      value & opt (list int) []
      & info [ "agg-dropouts" ] ~docv:"IDS"
          ~doc:
            "1-based client ids that participate honestly through the proof stage and then go \
             silent at aggregation — the dropout class the kregular topology recovers from the \
             dropout's neighborhood.")
  in
  let run n m d k bound seed attackers dropouts agg_dropouts jobs cache_dir dlog_mem faults
      deadline trace rounds crash wal_file retransmit no_recover stream_flag shards stream_batch
      topology_mode degree churn_spec =
    if jobs > 0 then Parallel.set_default_jobs jobs;
    configure_group_cache cache_dir dlog_mem;
    let stream = make_stream_cfg ~stream:stream_flag ~shards ~batch:stream_batch in
    let topology = make_topology ~n ~m ~topology:topology_mode ~degree in
    let churn = make_churn churn_spec in
    if churn <> None && no_recover then begin
      Printf.eprintf "--churn is a session feature; it does not combine with --no-recover\n";
      exit 2
    end;
    if trace <> None then begin
      Telemetry.reset ();
      Telemetry.enable ()
    end;
    let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:bound () in
    let setup = Setup.create ~label:("cli/" ^ seed) params in
    let updates_for round = make_updates ~n ~d ~bound ~seed ~attackers ~round in
    let behaviours = make_behaviours ~n ~attackers in
    List.iter
      (fun i -> if i >= 1 && i <= n then behaviours.(i - 1) <- Driver.Drop_out)
      dropouts;
    List.iter
      (fun i -> if i >= 1 && i <= n then behaviours.(i - 1) <- Driver.Agg_silent)
      agg_dropouts;
    print_topology ~seed ~n topology;
    let transport =
      match faults with
      | None -> None
      | Some spec -> (
          match Netsim.plan_of_string spec with
          | Ok plan -> Some (Netsim.create ~plan ~deadline ~seed:("cli/" ^ seed) ())
          | Error e ->
              Printf.eprintf "bad --faults spec: %s\n" e;
              exit 2)
    in
    let reliable =
      if not retransmit then None
      else
        let net =
          match transport with
          | Some net -> net
          | None -> Netsim.create ~plan:Netsim.ideal ~deadline ~seed:("cli/" ^ seed) ()
        in
        Some (Reliable.create net)
    in
    let crash =
      match crash with
      | None -> None
      | Some spec -> (
          if wal_file = None then begin
            Printf.eprintf "--crash requires --wal (recovery needs the log)\n";
            exit 2
          end;
          let parts = String.split_on_char ':' spec in
          let round, rest =
            match parts with
            | [ r; _; _ ] when int_of_string_opt r <> None -> (int_of_string r, String.concat ":" (List.tl parts))
            | _ -> (1, spec)
          in
          match Driver.crash_of_string rest with
          | Ok (stage, at) -> Some (round, stage, at)
          | Error e ->
              Printf.eprintf "bad --crash spec: %s\n" e;
              exit 2)
    in
    let wal = Option.map (fun f -> Round_log.create f) wal_file in
    let session = Driver.create_session setup ~seed in
    (if no_recover then begin
       if rounds <> 1 then begin
         Printf.eprintf "--no-recover requires --rounds 1\n";
         exit 2
       end;
       let crash = Option.map (fun (_, stage, at) -> (stage, at)) crash in
       match
         Driver.run_round_outcome ?transport ?reliable ?wal ?crash ?stream ~topology session
           ~updates:(updates_for 1) ~behaviours ~round:1
       with
       | outcome -> print_outcome ~d ~round:1 outcome
       | exception Driver.Server_crashed { stage; at } ->
           Printf.printf "server crashed at %s (wal synced); finish the round with: resume --wal %s\n"
             (Driver.crash_to_string (stage, at))
             (Option.value ~default:"<file>" wal_file)
     end
     else begin
       let cohort_for =
         Option.map (fun spec -> Driver.churn_cohort_for session ~spec ~rounds) churn
       in
       let report =
         Driver.run_session ?transport ?reliable ?wal ?crash ?stream ?cohort_for ~topology
           session ~updates_for ~behaviours ~rounds
       in
       List.iter
         (fun (r, outcome) -> print_outcome ~d ~round:r outcome)
         report.Driver.round_outcomes;
       if churn <> None then begin
         Printf.printf "cohorts: %s\n"
           (String.concat " "
              (List.map
                 (fun (r, size) -> Printf.sprintf "r%d=%d" r size)
                 report.Driver.cohort_sizes));
         let c = report.Driver.churn in
         Printf.printf "churn: %d joined, %d left, %d rejoined, %d rotated\n" c.Driver.joined
           c.Driver.left c.Driver.rejoined c.Driver.rotated
       end;
       if rounds > 1 || report.Driver.crashes_recovered > 0 then
         Printf.printf "session: %d/%d rounds completed, %d crash(es) recovered, banned [%s]\n"
           report.Driver.rounds_completed report.Driver.rounds_attempted
           report.Driver.crashes_recovered
           (String.concat ";" (List.map string_of_int report.Driver.final_banned))
     end);
    if stream <> None then print_stream_stats (Driver.session_server session);
    (match reliable with
    | Some rel ->
        print_reliable_counters rel;
        print_transport_counters (Reliable.net rel)
    | None -> Option.iter print_transport_counters transport);
    Option.iter Round_log.close wal;
    match trace with
    | None -> ()
    | Some file ->
        Telemetry.disable ();
        let snap = Telemetry.snapshot () in
        Telemetry.write_json file snap;
        Printf.printf "trace: %d counters, %d spans -> %s\n"
          (List.length (List.filter (fun (_, v) -> v <> 0) snap.Telemetry.counters))
          (List.length snap.Telemetry.spans) file
  in
  Cmd.v
    (Cmd.info "round" ~doc:"Run secure-and-verifiable aggregation rounds.")
    Term.(
      const run $ n_arg $ m_arg $ d_arg $ k_arg $ bound_arg $ seed_arg $ attackers_arg
      $ dropouts_arg $ agg_dropouts_arg $ jobs_arg $ cache_dir_arg $ dlog_mem_arg $ faults_arg
      $ deadline_arg $ trace_arg $ rounds_arg $ crash_arg $ wal_arg $ retransmit_arg
      $ no_recover_arg $ stream_arg $ shards_arg $ stream_batch_arg $ topology_arg $ degree_arg
      $ churn_arg)

(* --- resume --- *)

let resume_cmd =
  let wal_req =
    Arg.(
      required & opt (some string) None
      & info [ "wal" ] ~docv:"FILE" ~doc:"Write-ahead log of the interrupted run.")
  in
  let run n m d k bound seed attackers jobs cache_dir dlog_mem wal_file stream_flag shards
      stream_batch topology_mode degree =
    if jobs > 0 then Parallel.set_default_jobs jobs;
    configure_group_cache cache_dir dlog_mem;
    let stream = make_stream_cfg ~stream:stream_flag ~shards ~batch:stream_batch in
    let topology = make_topology ~n ~m ~topology:topology_mode ~degree in
    let records, status = Round_log.replay wal_file in
    let frames = List.length (List.filter (function Round_log.Frame _ -> true | _ -> false) records) in
    Printf.printf "wal: %d records (%d frames)%s\n" (List.length records) frames
      (match status with
      | Store.Wal.Complete -> ""
      | Store.Wal.Torn { offset; reason } ->
          Printf.sprintf ", torn tail at byte %d (%s)" offset reason);
    (* the round to finish: the last Round_start without a Round_end *)
    let pending =
      List.fold_left
        (fun acc r ->
          match r with
          | Round_log.Round_start { round } -> Some round
          | Round_log.Round_end { round; _ } when acc = Some round -> None
          | _ -> acc)
        None records
    in
    match pending with
    | None -> print_endline "nothing to recover: every logged round is sealed"
    | Some round ->
        Printf.printf "recovering round %d (same parameters and seed as the original run)\n" round;
        let params =
          Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:bound ()
        in
        let setup = Setup.create ~label:("cli/" ^ seed) params in
        let session = Driver.create_session setup ~seed in
        let updates = make_updates ~n ~d ~bound ~seed ~attackers ~round in
        let behaviours = make_behaviours ~n ~attackers in
        let wal = Round_log.create wal_file in
        print_topology ~seed ~n topology;
        let outcome =
          Driver.recover_round ~wal ?stream ~topology session ~records ~updates ~behaviours
            ~round
        in
        Round_log.close wal;
        if stream <> None then print_stream_stats (Driver.session_server session);
        print_outcome ~d ~round outcome
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Replay a write-ahead log and finish its interrupted round bit-identically.")
    Term.(
      const run $ n_arg $ m_arg $ d_arg $ k_arg $ bound_arg $ seed_arg $ attackers_arg $ jobs_arg
      $ cache_dir_arg $ dlog_mem_arg $ wal_req $ stream_arg $ shards_arg $ stream_batch_arg
      $ topology_arg $ degree_arg)

(* --- serve / client: the socket deployment --- *)

let addr_conv which =
  let c =
    Arg.conv
      ( (fun s ->
          match Evloop.addr_of_string s with
          | Ok a -> Ok a
          | Error e -> Error (`Msg e)),
        fun ppf a -> Format.pp_print_string ppf (Evloop.addr_to_string a) )
  in
  Arg.(
    value
    & opt c (Evloop.Tcp ("127.0.0.1", 7154))
    & info [ which ] ~docv:"ADDR" ~doc:"Socket address: tcp:HOST:PORT or unix:PATH.")

let deadline_s_arg =
  Arg.(
    value & opt float 15.0
    & info [ "stage-deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline per protocol stage; clients silent past it count as dropouts \
           and the quorum lifecycle decides the round.")

let rounds_arg =
  Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"R" ~doc:"Protocol rounds to run.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the telemetry snapshot (including transport.* counters) to FILE as JSON.")

let write_trace trace =
  match trace with
  | None -> ()
  | Some file ->
      Telemetry.disable ();
      let snap = Telemetry.snapshot () in
      Telemetry.write_json file snap;
      Printf.printf "trace: %d counters, %d spans -> %s\n"
        (List.length (List.filter (fun (_, v) -> v <> 0) snap.Telemetry.counters))
        (List.length snap.Telemetry.spans) file

let serve_cmd =
  let crash_arg =
    Arg.(
      value & opt (some string) None
      & info [ "crash" ] ~docv:"[ROUND:]STAGE:STEP"
          ~doc:
            "Kill the server process (SIGKILL, after fsyncing the log) at the given point; \
             restart serve with the same $(b,--wal) to finish the round (requires $(b,--wal)).")
  in
  let run n m d k bound seed jobs cache_dir dlog_mem listen rounds stage_deadline wal_file crash
      trace verbose stream_flag shards stream_batch topology_mode degree churn_spec =
    if jobs > 0 then Parallel.set_default_jobs jobs;
    configure_group_cache cache_dir dlog_mem;
    let stream = make_stream_cfg ~stream:stream_flag ~shards ~batch:stream_batch in
    let topology = make_topology ~n ~m ~topology:topology_mode ~degree in
    let churn = make_churn churn_spec in
    if trace <> None then begin
      Telemetry.reset ();
      Telemetry.enable ()
    end;
    let crash =
      match crash with
      | None -> None
      | Some spec -> (
          if wal_file = None then begin
            Printf.eprintf "--crash requires --wal (recovery needs the log)\n";
            exit 2
          end;
          let parts = String.split_on_char ':' spec in
          let round, rest =
            match parts with
            | [ r; _; _ ] when int_of_string_opt r <> None ->
                (int_of_string r, String.concat ":" (List.tl parts))
            | _ -> (1, spec)
          in
          match Driver.crash_of_string rest with
          | Ok (stage, at) -> Some (round, stage, at)
          | Error e ->
              Printf.eprintf "bad --crash spec: %s\n" e;
              exit 2)
    in
    let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:bound () in
    let setup = Setup.create ~label:("cli/" ^ seed) params in
    let log s = if verbose then Printf.eprintf "[serve] %s\n%!" s in
    Printf.printf "serving %d client(s) on %s\n%!" n (Evloop.addr_to_string listen);
    print_topology ~seed ~n topology;
    let report =
      Tserver.serve ~log
        {
          Tserver.addr = listen;
          setup;
          seed;
          rounds;
          stage_deadline_s = stage_deadline;
          wal_path = wal_file;
          crash;
          stream;
          topology;
          churn;
        }
    in
    (match report.Tserver.resumed_round with
    | Some r -> Printf.printf "recovered round %d from the write-ahead log\n" r
    | None -> ());
    List.iter (fun (r, outcome) -> print_outcome ~d ~round:r outcome) report.Tserver.outcomes;
    if report.Tserver.cohort_sizes <> [] then
      Printf.printf "cohorts: %s\n"
        (String.concat " "
           (List.map
              (fun (r, size) -> Printf.sprintf "r%d=%d" r size)
              report.Tserver.cohort_sizes));
    if report.Tserver.banned <> [] then
      Printf.printf "banned: [%s]\n"
        (String.concat ";" (List.map string_of_int report.Tserver.banned));
    (match report.Tserver.stream_stats with
    | Some st ->
        Printf.printf "stream: %d folded, %d evicted, %d flushes, peak batch %d\n"
          st.Risefl_core.Server.folded st.Risefl_core.Server.evicted
          st.Risefl_core.Server.flushes st.Risefl_core.Server.peak_batch
    | None -> ());
    write_trace trace
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the aggregation server on a real socket (TCP or Unix-domain).")
    Term.(
      const run $ n_arg $ m_arg $ d_arg $ k_arg $ bound_arg $ seed_arg $ jobs_arg $ cache_dir_arg
      $ dlog_mem_arg $ addr_conv "listen" $ rounds_arg $ deadline_s_arg $ wal_arg $ crash_arg
      $ trace_arg
      $ Arg.(value & flag & info [ "verbose" ] ~doc:"Log transport events to stderr.")
      $ stream_arg $ shards_arg $ stream_batch_arg $ topology_arg $ degree_arg $ churn_arg)

let client_cmd =
  let id_arg =
    Arg.(
      required & opt (some int) None & info [ "id" ] ~docv:"I" ~doc:"This client's 1-based id.")
  in
  let die_at_arg =
    Arg.(
      value & opt (some string) None
      & info [ "die-at" ] ~docv:"ROUND:STAGE"
          ~doc:"Exit the process just before submitting this stage (crash testing).")
  in
  let loris_arg =
    Arg.(
      value & flag
      & info [ "loris" ]
          ~doc:"Write submissions one byte at a time (slow-loris; reassembly testing).")
  in
  let retries_arg =
    Arg.(
      value & opt int 60
      & info [ "max-retries" ] ~docv:"N" ~doc:"Connection attempts before giving up.")
  in
  let run n m d k bound seed attackers jobs cache_dir dlog_mem connect id rounds stage_deadline
      die_at loris retries trace verbose topology_mode degree churn_spec rejoin =
    if jobs > 0 then Parallel.set_default_jobs jobs;
    configure_group_cache cache_dir dlog_mem;
    if trace <> None then begin
      Telemetry.reset ();
      Telemetry.enable ()
    end;
    let die_at =
      match die_at with
      | None -> None
      | Some spec -> (
          match String.split_on_char ':' spec with
          | [ r; st ] -> (
              let stage =
                match st with
                | "commit" -> Some Netsim.Commit
                | "flag" -> Some Netsim.Flag
                | "proof" -> Some Netsim.Proof
                | "agg" -> Some Netsim.Agg
                | _ -> None
              in
              match (int_of_string_opt r, stage) with
              | Some r, Some stage -> Some (r, stage)
              | _ ->
                  Printf.eprintf "bad --die-at spec (want ROUND:STAGE)\n";
                  exit 2)
          | _ ->
              Printf.eprintf "bad --die-at spec (want ROUND:STAGE)\n";
              exit 2)
    in
    let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:bound () in
    let setup = Setup.create ~label:("cli/" ^ seed) params in
    let log s = if verbose then Printf.eprintf "[client %d] %s\n%!" id s in
    let topology = make_topology ~n ~m ~topology:topology_mode ~degree in
    let results =
      Tclient.run ~log
        {
          Tclient.addr = connect;
          setup;
          seed;
          id;
          rounds;
          d;
          bound;
          attackers;
          deadline_s = stage_deadline;
          loris;
          die_at;
          max_connect_attempts = retries;
          topology;
          churn = make_churn churn_spec;
          rejoin;
        }
    in
    List.iter
      (fun (round, view) ->
        match view with
        | Risefl_transport.Proto.Rv_completed { cstar; aggregate } -> (
            Printf.printf "round %d completed\n" round;
            Printf.printf "flagged: [%s]\n" (String.concat ";" (List.map string_of_int cstar));
            match aggregate with
            | Some agg ->
                Printf.printf "aggregate (first 8 coords): %s\n"
                  (String.concat " " (List.init (min 8 d) (fun l -> string_of_int agg.(l))))
            | None -> print_endline "aggregation failed")
        | Risefl_transport.Proto.Rv_aborted_quorum { stage; survivors; needed } ->
            Printf.printf "round %d aborted: insufficient quorum at %s (%d survivors, needed %d)\n"
              round stage survivors needed
        | Risefl_transport.Proto.Rv_aborted_decode ids ->
            Printf.printf "round %d aborted: undecodable frames from [%s]\n" round
              (String.concat ";" (List.map string_of_int ids)))
      results;
    write_trace trace
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Drive one client process against a serve instance.")
    Term.(
      const run $ n_arg $ m_arg $ d_arg $ k_arg $ bound_arg $ seed_arg $ attackers_arg $ jobs_arg
      $ cache_dir_arg $ dlog_mem_arg $ addr_conv "connect" $ id_arg $ rounds_arg $ deadline_s_arg
      $ die_at_arg $ loris_arg $ retries_arg $ trace_arg
      $ Arg.(value & flag & info [ "verbose" ] ~doc:"Log transport events to stderr.")
      $ topology_arg $ degree_arg $ churn_arg
      $ Arg.(
          value & flag
          & info [ "rejoin" ]
              ~doc:
                "Re-enroll into a session already in flight: learn the current round from the \
                 server, fast-forward the locally derivable membership epochs, and participate \
                 from the current round on (standing carries over)."))

(* --- train --- *)

let train_cmd =
  let dataset_arg =
    Arg.(
      value
      & opt (enum [ ("organ", `Organ); ("covtype", `Covtype); ("blobs", `Blobs) ]) `Blobs
      & info [ "dataset" ] ~docv:"NAME" ~doc:"Dataset: organ, covtype or blobs.")
  in
  let attack_arg =
    Arg.(
      value
      & opt (enum [ ("signflip", `Sign); ("scaling", `Scale); ("labelflip", `Label); ("noise", `Noise) ]) `Sign
      & info [ "attack" ] ~docv:"NAME" ~doc:"Attack: signflip, scaling, labelflip or noise.")
  in
  let checker_arg =
    Arg.(
      value
      & opt (enum [ ("none", `Nc); ("strict", `Sc); ("risefl", `Risefl) ]) `Risefl
      & info [ "checker" ] ~docv:"NAME" ~doc:"Integrity checker: none, strict or risefl.")
  in
  let rounds_arg = Arg.(value & opt int 15 & info [ "rounds" ] ~docv:"R" ~doc:"Training rounds.") in
  let malicious_arg = Arg.(value & opt int 3 & info [ "malicious" ] ~docv:"M" ~doc:"Malicious clients.") in
  let run dataset attack checker rounds malicious seed =
    let drbg = Prng.Drbg.create_string (seed ^ "/data") in
    let data =
      match dataset with
      | `Organ -> Flsim.Dataset.organ_like drbg ~n:600
      | `Covtype -> Flsim.Dataset.covtype_like drbg ~n:800
      | `Blobs -> Flsim.Dataset.gaussian_blobs drbg ~n:600 ~features:32 ~classes:4 ~spread:0.8
    in
    let attack =
      match attack with
      | `Sign -> Flsim.Attack.Sign_flip 5.0
      | `Scale -> Flsim.Attack.Scaling 10.0
      | `Label -> Flsim.Attack.Label_flip (0, 1)
      | `Noise -> Flsim.Attack.Additive_noise 0.5
    in
    let checker =
      match checker with
      | `Nc -> Flsim.Federated.Np_nc
      | `Sc -> Flsim.Federated.Np_sc Flsim.Federated.D_l2
      | `Risefl -> Flsim.Federated.Risefl (Flsim.Federated.D_l2, 200)
    in
    let result =
      Flsim.Federated.train
        {
          Flsim.Federated.n_clients = 10;
          n_malicious = malicious;
          attack;
          checker;
          rounds;
          lr = 0.5;
          batch = None;
          arch = Flsim.Model.Softmax;
          bound_factor = 2.0;
          non_iid_alpha = None;
          seed;
        }
        ~data
    in
    Array.iter
      (fun (l : Flsim.Federated.round_log) ->
        Printf.printf "round %2d  accuracy %.3f  rejected [%s]\n" l.Flsim.Federated.round
          l.Flsim.Federated.accuracy
          (String.concat ";" (List.map string_of_int l.Flsim.Federated.rejected)))
      result.Flsim.Federated.logs;
    Printf.printf "final accuracy: %.3f\n" result.Flsim.Federated.final_accuracy
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Run a federated training simulation under attack.")
    Term.(const run $ dataset_arg $ attack_arg $ checker_arg $ rounds_arg $ malicious_arg $ seed_arg)

(* --- params --- *)

let params_cmd =
  let run n m d k bound =
    let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:bound () in
    Printf.printf "n=%d m=%d d=%d k=%d B=%.1f (encoded units)\n" n m d k bound;
    Printf.printf "gamma_{k,eps}          = %.3f (gamma/k = %.3f)\n" (Params.gamma params)
      (Params.gamma params /. float_of_int k);
    Printf.printf "B0                     = %s (%d bits; cap 2^%d)\n"
      (Bigint.to_string (Params.b0 params))
      (Bigint.bit_length (Params.b0 params))
      params.Params.b_max_bits;
    Printf.printf "Shamir threshold       = %d-of-%d\n" (Params.shamir_t params) n;
    Printf.printf "aggregation dlog range = +/- %d\n" (Params.agg_max_abs params);
    let pr = Params.passrate_params params in
    print_endline "pass-rate F(c) of a c.B-norm malicious update:";
    List.iter
      (fun c -> Printf.printf "  F(%.2f) = %.4g\n" c (Stats.Passrate.f pr c))
      [ 1.1; 1.5; 2.0; 3.0; 5.0 ];
    let c_star, dmg = Stats.Passrate.max_damage pr in
    Printf.printf "max expected damage    = %.3f B (at c* = %.3f)\n" dmg c_star
  in
  Cmd.v
    (Cmd.info "params" ~doc:"Print the derived security quantities for a parameter set.")
    Term.(const run $ n_arg $ m_arg $ d_arg $ k_arg $ bound_arg)

let () =
  let doc = "RiseFL: secure and verifiable data collaboration with low-cost ZKPs (VLDB 2024 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "risefl_cli" ~doc)
          [ round_cmd; resume_cmd; serve_cmd; client_cmd; train_cmd; params_cmd ]))
