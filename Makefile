# Convenience entry points; everything is ordinary dune underneath.

.PHONY: all check test bench bench-smoke fuzz-smoke verify-smoke telemetry-smoke recovery-smoke group-smoke serve-smoke stream-smoke topology-smoke churn-smoke clean

all: check

# Tier-1 gate: full build + every test suite.
check:
	dune build
	dune runtest

test: check

# Full benchmark sweep (slow); mirrors EXPERIMENTS.md.
bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Tiny-size smoke run of the parallel micro-benchmarks; asserts that the
# machine-readable results file is actually emitted and non-trivial.
bench-smoke:
	rm -f BENCH_RISEFL.json
	dune exec bench/main.exe -- micro --smoke --jobs 2
	@test -s BENCH_RISEFL.json || { echo "bench-smoke: BENCH_RISEFL.json missing or empty" >&2; exit 1; }
	@grep -q '"results"' BENCH_RISEFL.json || { echo "bench-smoke: no results array in BENCH_RISEFL.json" >&2; exit 1; }
	@grep -q '"name": "msm-full"' BENCH_RISEFL.json || { echo "bench-smoke: expected msm-full records" >&2; exit 1; }
	@echo "bench-smoke: BENCH_RISEFL.json OK ($$(grep -c '"target"' BENCH_RISEFL.json) records)"

# Batched-verifier gate: the differential/soundness corpus (batched and
# naive verdicts must be bit-identical, every single-field corruption
# rejected with the same C*) at a reduced stride, plus the verify bench
# smoke point — the build fails if the batched path falls below a 2x
# jobs=1 speedup over the naive reference.
verify-smoke:
	BATCH_STRIDE=4 dune exec test/test_batch_verify.exe
	dune exec bench/main.exe -- verify --smoke --json /tmp/verify-smoke.json --gate-verify 2.0

# Telemetry gate: a traced round over a faulty transport must emit a
# snapshot carrying every counter family plus per-stage spans, and the
# measured per-stage group-exponentiation counts must sit inside the
# documented tolerance bands around the Cost_model (Table 1) predictions.
telemetry-smoke:
	rm -f /tmp/risefl-trace.json
	dune exec bin/risefl_cli.exe -- round --clients 3 --dimension 32 -k 4 \
	  --faults 'drop=0.05,flip=0.02' --trace /tmp/risefl-trace.json
	@test -s /tmp/risefl-trace.json || { echo "telemetry-smoke: trace file missing or empty" >&2; exit 1; }
	@for key in point.add msm.evals sha256.blocks drbg.bytes wire.commit.bytes net.sent '"spans"'; do \
	  grep -q "$$key" /tmp/risefl-trace.json || { echo "telemetry-smoke: $$key missing from trace" >&2; exit 1; }; \
	done
	@echo "telemetry-smoke: trace OK"
	dune exec bench/main.exe -- table1 --smoke --gate-table1

# Durability gate: the store/WAL unit+property tests, then a real
# crash/resume cycle through the CLI — kill the server mid-proof with the
# write-ahead log armed, resume from the log in a second process, and
# require the recovered aggregate and C* to be byte-identical to an
# uncrashed run of the same seed. Finishes with the recovery bench smoke
# (WAL bytes/round, fsyncs, wall-clock overhead into the JSON).
recovery-smoke:
	dune exec test/test_store.exe
	rm -f /tmp/risefl-smoke.wal
	dune exec bin/risefl_cli.exe -- round --seed recovery-smoke \
	  --wal /tmp/risefl-smoke.wal --crash proof:1 --no-recover | tee /tmp/risefl-crash.txt
	@grep -q "server crashed at proof:1" /tmp/risefl-crash.txt \
	  || { echo "recovery-smoke: planned crash did not fire" >&2; exit 1; }
	dune exec bin/risefl_cli.exe -- resume --seed recovery-smoke \
	  --wal /tmp/risefl-smoke.wal | tee /tmp/risefl-resumed.txt
	dune exec bin/risefl_cli.exe -- round --seed recovery-smoke | tee /tmp/risefl-ref.txt
	@grep -E "flagged|aggregate" /tmp/risefl-ref.txt > /tmp/risefl-ref-key.txt
	@grep -E "flagged|aggregate" /tmp/risefl-resumed.txt > /tmp/risefl-resumed-key.txt
	@diff /tmp/risefl-ref-key.txt /tmp/risefl-resumed-key.txt \
	  || { echo "recovery-smoke: resumed round diverged from the uncrashed run" >&2; exit 1; }
	@echo "recovery-smoke: crash/resume bit-identical"
	dune exec bench/main.exe -- recovery --smoke --json /tmp/recovery-smoke.json
	@grep -q '"name": "wal-bytes-per-round"' /tmp/recovery-smoke.json \
	  || { echo "recovery-smoke: WAL overhead records missing from bench JSON" >&2; exit 1; }

# Group-layer gate: the fast-path differential suite (C fe-mul stub vs
# pure OCaml, wNAF vs double-and-add, cached vs rebuilt tables
# bit-identical, BSGS edge cases), once more with the C stub enabled for
# the whole suite, then the group bench smoke — the build fails if the
# warm-cache precompute speedup falls below 2x over a cold build.
group-smoke:
	dune exec test/test_group_fast.exe
	RISEFL_FE_STUB=1 dune exec test/test_group_fast.exe
	dune exec bench/main.exe -- group --smoke --json /tmp/group-smoke.json --gate-group 2.0
	@grep -q '"name": "precompute-speedup"' /tmp/group-smoke.json \
	  || { echo "group-smoke: precompute records missing from bench JSON" >&2; exit 1; }

# Deployment-transport gate: the transport suite (frame/proto units plus
# forked serve/client deployments), then a real multi-process CLI
# walkthrough on a Unix socket — kill -9 the server mid-proof with the
# WAL armed, restart it on the same log while the clients ride through
# under backoff, and require the server and every client to match the
# in-process round's flagged/aggregate lines byte for byte. Finishes
# with the serve bench smoke (socket-loopback latency + transport
# counters into the JSON).
serve-smoke:
	dune exec test/test_transport.exe
	dune build bin/risefl_cli.exe
	@set -e; \
	BIN=_build/default/bin/risefl_cli.exe; \
	DIR=/tmp/risefl-serve; rm -rf $$DIR; mkdir -p $$DIR; \
	ARGS="--clients 3 --dimension 16 --samples 4 --seed serve-smoke"; \
	$$BIN round $$ARGS | grep -E "flagged|aggregate" > $$DIR/ref.txt; \
	for i in 1 2 3; do \
	  $$BIN client $$ARGS --id $$i --connect unix:$$DIR/sock \
	    > $$DIR/client$$i.txt 2>&1 & \
	done; \
	$$BIN serve $$ARGS --listen unix:$$DIR/sock --wal $$DIR/wal --crash proof:1 \
	  > $$DIR/serve1.txt 2>&1 || true; \
	grep -q "server crashed at proof:1" $$DIR/serve1.txt \
	  || { echo "serve-smoke: planned crash did not fire" >&2; exit 1; }; \
	$$BIN serve $$ARGS --listen unix:$$DIR/sock --wal $$DIR/wal \
	  > $$DIR/serve2.txt 2>&1; \
	wait; \
	grep -q "recovered round 1 from the write-ahead log" $$DIR/serve2.txt \
	  || { echo "serve-smoke: restart did not resume from the WAL" >&2; exit 1; }; \
	grep -E "flagged|aggregate" $$DIR/serve2.txt > $$DIR/srv-key.txt; \
	diff $$DIR/ref.txt $$DIR/srv-key.txt \
	  || { echo "serve-smoke: restarted server diverged from the in-process round" >&2; exit 1; }; \
	for i in 1 2 3; do \
	  grep -E "flagged|aggregate" $$DIR/client$$i.txt > $$DIR/c$$i-key.txt; \
	  diff $$DIR/ref.txt $$DIR/c$$i-key.txt \
	    || { echo "serve-smoke: client $$i diverged across the crash" >&2; exit 1; }; \
	done; \
	echo "serve-smoke: crash/restart deployment bit-identical"
	dune exec bench/main.exe -- serve --smoke --json /tmp/serve-smoke.json
	@grep -q '"name": "loopback-round-s"' /tmp/serve-smoke.json \
	  || { echo "serve-smoke: transport records missing from bench JSON" >&2; exit 1; }

# Streaming-verification gate: the quick differential suite (Acc
# flush/capacity units, streamed-vs-barrier bit-identity across the
# jobs x shards matrix, batch-boundary edges, late agg-stage conviction,
# stream counters), a CLI round diffed barrier-vs-streamed, then the
# stream bench smoke — the build fails if the streamed path's peak
# resident memory grows more than 1.25x across the client ladder while
# the barrier path's doubles.
stream-smoke:
	STREAM_STRIDE=2 dune exec test/test_stream.exe -- -q
	dune build bin/risefl_cli.exe
	@set -e; \
	BIN=_build/default/bin/risefl_cli.exe; \
	DIR=/tmp/risefl-stream; rm -rf $$DIR; mkdir -p $$DIR; \
	ARGS="--clients 6 --dimension 16 --samples 4 --seed stream-smoke"; \
	$$BIN round $$ARGS | grep -E "flagged|aggregate" > $$DIR/barrier.txt; \
	$$BIN round $$ARGS --stream --shards 2 --stream-batch 2 \
	  | tee $$DIR/stream-full.txt | grep -E "flagged|aggregate" > $$DIR/stream.txt; \
	diff $$DIR/barrier.txt $$DIR/stream.txt \
	  || { echo "stream-smoke: streamed round diverged from the barrier round" >&2; exit 1; }; \
	grep -q "stream: 6 folded, 6 evicted" $$DIR/stream-full.txt \
	  || { echo "stream-smoke: stream counters missing from CLI output" >&2; exit 1; }; \
	echo "stream-smoke: barrier/streamed CLI rounds bit-identical"
	dune exec bench/main.exe -- stream --smoke --json /tmp/stream-smoke.json --gate-stream 1.25
	@grep -q '"name": "stream-peak-growth"' /tmp/stream-smoke.json \
	  || { echo "stream-smoke: peak-memory records missing from bench JSON" >&2; exit 1; }

# Share-topology gate: the quick graph/VSSS/wire-v2 suites (the slow
# e2e differentials run under `make check`), then CLI differentials —
# k = n-1 must normalize to the all-to-all path and match its
# flagged/aggregate lines byte for byte, and a seeded agg-stage
# dropout ladder at small k must recover every dropout's blind through
# its neighborhood so the aggregate still matches the honest full
# round. Finishes with the topology bench smoke — the build fails if
# per-client commit bytes at fixed degree grow more than 1.1x while n
# doubles.
topology-smoke:
	dune exec test/test_topology.exe -- -q
	dune build bin/risefl_cli.exe
	@set -e; \
	BIN=_build/default/bin/risefl_cli.exe; \
	DIR=/tmp/risefl-topology; rm -rf $$DIR; mkdir -p $$DIR; \
	ARGS="--clients 8 --dimension 16 --samples 4 --seed topology-smoke"; \
	$$BIN round $$ARGS | grep -E "flagged|aggregate" > $$DIR/full.txt; \
	$$BIN round $$ARGS --topology kregular --degree 7 \
	  | tee $$DIR/maxdeg-full.txt | grep -E "flagged|aggregate" > $$DIR/maxdeg.txt; \
	grep -q "normalizes to full" $$DIR/maxdeg-full.txt \
	  || { echo "topology-smoke: k = n-1 did not normalize to all-to-all" >&2; exit 1; }; \
	diff $$DIR/full.txt $$DIR/maxdeg.txt \
	  || { echo "topology-smoke: k = n-1 round diverged from the all-to-all round" >&2; exit 1; }; \
	for drops in 3 8 2,6; do \
	  $$BIN round $$ARGS --topology kregular --degree 4 --agg-dropouts $$drops \
	    | grep -E "aggregate" > $$DIR/drop-$$drops.txt; \
	  grep -E "aggregate" $$DIR/full.txt > $$DIR/full-agg.txt; \
	  diff $$DIR/full-agg.txt $$DIR/drop-$$drops.txt \
	    || { echo "topology-smoke: dropout set {$$drops} not recovered by the neighborhood" >&2; exit 1; }; \
	done; \
	echo "topology-smoke: k=n-1 bit-identical, dropout ladder recovered"
	dune exec bench/main.exe -- topology --smoke --json /tmp/topology-smoke.json --gate-topology 1.1
	@grep -q '"name": "kregular-bytes-growth"' /tmp/topology-smoke.json \
	  || { echo "topology-smoke: commit-bytes records missing from bench JSON" >&2; exit 1; }

# Elastic-membership gate: the quick churn suites (seeded schedules,
# rotation proofs, the Epoch WAL corruption ladder — the slow
# elastic-vs-scripted-twin differential runs under `make check`), then
# CLI differentials: a seeded 5-round churn session must be bit-identical
# across jobs {1,2,4} and under a k-regular topology (with the shrunken
# rounds' degree clamp), a crash at an epoch boundary must resume from
# the WAL onto the identical transcript, and a serve/client deployment —
# one client enrolling late with --rejoin — must match the in-process
# session line for line. Finishes with the churn bench smoke (per-epoch
# enrollment/rotation costs into the JSON).
churn-smoke:
	dune exec test/test_churn.exe -- -q
	dune build bin/risefl_cli.exe
	@set -e; \
	BIN=_build/default/bin/risefl_cli.exe; \
	DIR=/tmp/risefl-churn; rm -rf $$DIR; mkdir -p $$DIR; \
	ARGS="--clients 6 --dimension 16 --samples 4 --seed churn-smoke --rounds 5 \
	  --churn leave=0.35,rejoin=0.6,rotate=0.25,min=4"; \
	$$BIN round $$ARGS | grep -E "flagged|aggregate|cohorts|churn:" > $$DIR/ref.txt; \
	if grep -q "cohorts: r1=6 r2=6 r3=6 r4=6 r5=6" $$DIR/ref.txt; then \
	  echo "churn-smoke: the seeded schedule never churned" >&2; exit 1; fi; \
	for J in 2 4; do \
	  $$BIN round $$ARGS --jobs $$J | grep -E "flagged|aggregate|cohorts|churn:" > $$DIR/j$$J.txt; \
	  diff $$DIR/ref.txt $$DIR/j$$J.txt \
	    || { echo "churn-smoke: jobs=$$J diverged from jobs=1" >&2; exit 1; }; \
	done; \
	$$BIN round $$ARGS --topology kregular --degree 3 \
	  | grep -E "flagged|cohorts|churn:" > $$DIR/kreg.txt; \
	$$BIN round $$ARGS --topology kregular --degree 3 --jobs 2 \
	  | grep -E "flagged|cohorts|churn:" > $$DIR/kreg-j2.txt; \
	diff $$DIR/kreg.txt $$DIR/kreg-j2.txt \
	  || { echo "churn-smoke: k-regular churn diverged across jobs" >&2; exit 1; }; \
	rm -f $$DIR/wal; \
	$$BIN round $$ARGS --wal $$DIR/wal --crash 3:commit:start \
	  | grep -E "flagged|aggregate|cohorts|churn:|recovered" > $$DIR/crash.txt; \
	grep -q "1 crash(es) recovered" $$DIR/crash.txt \
	  || { echo "churn-smoke: the epoch-boundary crash did not recover" >&2; exit 1; }; \
	grep -vE "recovered" $$DIR/crash.txt > $$DIR/crash-key.txt; \
	diff $$DIR/ref.txt $$DIR/crash-key.txt \
	  || { echo "churn-smoke: epoch-boundary resume diverged from the uncrashed run" >&2; exit 1; }; \
	SARGS="--clients 5 --dimension 16 --samples 4 --seed churn-serve --rounds 3 \
	  --churn leave=0.4,rejoin=0.6,rotate=0.3,min=3"; \
	$$BIN round $$SARGS | grep -E "flagged|aggregate|cohorts" > $$DIR/sref.txt; \
	for i in 1 2 3 5; do \
	  $$BIN client $$SARGS --id $$i --connect unix:$$DIR/sock \
	    > $$DIR/client$$i.txt 2>&1 & \
	done; \
	( sleep 1; $$BIN client $$SARGS --id 4 --rejoin --connect unix:$$DIR/sock \
	    > $$DIR/client4.txt 2>&1 ) & \
	$$BIN serve $$SARGS --verbose --listen unix:$$DIR/sock > $$DIR/serve.txt 2>&1; \
	wait; \
	grep -q "client 4 re-enrolling" $$DIR/serve.txt \
	  || { echo "churn-smoke: the late client never re-enrolled" >&2; exit 1; }; \
	grep -E "flagged|aggregate|cohorts" $$DIR/serve.txt > $$DIR/srv-key.txt; \
	diff $$DIR/sref.txt $$DIR/srv-key.txt \
	  || { echo "churn-smoke: elastic deployment diverged from the in-process session" >&2; exit 1; }; \
	grep -E "flagged|aggregate" $$DIR/client4.txt > $$DIR/c4-key.txt; \
	test -s $$DIR/c4-key.txt \
	  || { echo "churn-smoke: the rejoin client reported no results" >&2; exit 1; }; \
	echo "churn-smoke: elastic session jobs/topology/crash/deployment bit-identical"
	dune exec bench/main.exe -- churn --smoke --json /tmp/churn-smoke.json
	@grep -q '"name": "epoch-advance-s"' /tmp/churn-smoke.json \
	  || { echo "churn-smoke: per-epoch records missing from bench JSON" >&2; exit 1; }

# Reduced-iteration run of the wire-decoder fuzz suite: every mutated
# frame must produce a typed verdict (never an exception) and verdicts
# must not depend on the worker-domain count.
fuzz-smoke:
	FUZZ_ITERS=120 dune exec test/test_fuzz_wire.exe

clean:
	dune clean
