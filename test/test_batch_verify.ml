(* Differential + soundness tests for the batched (random-linear-
   combination) verifier against the naive per-equation path.

   - Valid proofs: both paths accept, across jobs ∈ {1, 2, 4}.
   - Structural failures (missing proof, sender mismatch): identical C*.
   - Seeded corruption corpus: for EVERY point and EVERY scalar of a
     genuine proof bundle, a single corruption (point += g, scalar += 1)
     must be rejected by BOTH paths with the SAME C* attribution. The
     full corpus runs at jobs = 1; a stride of it re-runs at jobs = 2
     and 4 to pin jobs-invariance of the batched bisection.
   - Multi-client corruption: the failure bisection must attribute every
     corrupted client, and only those.

   BATCH_STRIDE (default 1 = full corpus) subsamples the corpus for
   quicker local iterations. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Client = Risefl_core.Client
module Server = Risefl_core.Server
module Wire = Risefl_core.Wire
module Point = Curve25519.Point
module Scalar = Curve25519.Scalar
module Wf = Zkp.Sigma.Wf
module Square = Zkp.Sigma.Square
module Rp = Zkp.Range_proof
module Ipa = Zkp.Ipa

let stride =
  match Sys.getenv_opt "BATCH_STRIDE" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
  | None -> 1

(* Small parameters keep each verify cheap while still exercising every
   proof component: k = 2 squares, 16-bit sigma ranges (nt = 32), a
   64-bit mu range (nt = 64), 5- and 6-round IPAs. *)
let params =
  Params.make ~n_clients:4 ~max_malicious:1 ~d:8 ~k:2 ~b_ip_bits:16 ~b_max_bits:64 ~m_factor:8.0
    ~bound_b:150.0 ()

let setup = Setup.create ~label:"test-batch-verify" params
let n = 4

(* One genuine round, built once: the corruption trials only re-run the
   verify stage (begin_round resets C*; the (s, h) state is untouched). *)
let clients, server, commits, proofs =
  let root = Prng.Drbg.create_string "batch-verify-seed" in
  let clients =
    Array.init n (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (string_of_int i)))
  in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  let updates = Array.init n (fun i -> Array.init 8 (fun l -> (i * l) - 4)) in
  let commits =
    Array.map Option.some
      (Array.mapi (fun i c -> Client.commit_round c ~round:1 ~update:updates.(i)) clients)
  in
  Server.begin_round server ~round:1 ~commits;
  let flags = Array.map (fun c -> Client.receive_shares c ~round:1 ~msgs:(Array.map Option.get commits)) clients in
  ignore flags;
  let s, hs = Server.prepare_check server in
  let proofs = Array.map (fun c -> Client.proof_round c ~round:1 ~s ~hs) clients in
  (clients, server, commits, proofs)

let verdict ~batched ~jobs trial_proofs =
  Server.begin_round server ~round:1 ~commits;
  Server.verify_proofs ~jobs ~batched server ~round:1 ~proofs:trial_proofs;
  Server.malicious server

let check_both ~name ~jobs ~expected trial_proofs =
  let naive = verdict ~batched:false ~jobs trial_proofs in
  let batched = verdict ~batched:true ~jobs trial_proofs in
  Alcotest.(check (list int)) (name ^ " naive verdict (jobs=" ^ string_of_int jobs ^ ")") expected naive;
  Alcotest.(check (list int)) (name ^ " batched = naive (jobs=" ^ string_of_int jobs ^ ")") naive batched

(* --- single-field corruption corpus --- *)

let bump_pt p = Point.add p setup.Setup.g
let bump_sc s = Scalar.add s Scalar.one
let bump_parr arr i = Array.mapi (fun j x -> if j = i then bump_pt x else x) arr
let bump_sarr arr i = Array.mapi (fun j x -> if j = i then bump_sc x else x) arr

let mut_wf (w : Wf.proof) =
  List.concat
    [
      [ ("az", { w with Wf.az = bump_pt w.Wf.az }); ("zr", { w with Wf.zr = bump_sc w.Wf.zr }) ];
      List.init (Array.length w.Wf.ae) (fun i ->
          (Printf.sprintf "ae[%d]" i, { w with Wf.ae = bump_parr w.Wf.ae i }));
      List.init (Array.length w.Wf.ao) (fun i ->
          (Printf.sprintf "ao[%d]" i, { w with Wf.ao = bump_parr w.Wf.ao i }));
      List.init (Array.length w.Wf.zv) (fun i ->
          (Printf.sprintf "zv[%d]" i, { w with Wf.zv = bump_sarr w.Wf.zv i }));
      List.init (Array.length w.Wf.zs) (fun i ->
          (Printf.sprintf "zs[%d]" i, { w with Wf.zs = bump_sarr w.Wf.zs i }));
    ]

let mut_square (sq : Square.proof) =
  [
    ("a1", { sq with Square.a1 = bump_pt sq.Square.a1 });
    ("a2", { sq with Square.a2 = bump_pt sq.Square.a2 });
    ("zx", { sq with Square.zx = bump_sc sq.Square.zx });
    ("zs", { sq with Square.zs = bump_sc sq.Square.zs });
    ("zs'", { sq with Square.zs' = bump_sc sq.Square.zs' });
  ]

let mut_ipa (ip : Ipa.proof) =
  List.concat
    [
      List.init (Array.length ip.Ipa.ls) (fun j ->
          (Printf.sprintf "ls[%d]" j, { ip with Ipa.ls = bump_parr ip.Ipa.ls j }));
      List.init (Array.length ip.Ipa.rs) (fun j ->
          (Printf.sprintf "rs[%d]" j, { ip with Ipa.rs = bump_parr ip.Ipa.rs j }));
      [ ("a", { ip with Ipa.a = bump_sc ip.Ipa.a }); ("b", { ip with Ipa.b = bump_sc ip.Ipa.b }) ];
    ]

let mut_rp (rp : Rp.proof) =
  [
    ("a", { rp with Rp.a = bump_pt rp.Rp.a });
    ("s", { rp with Rp.s = bump_pt rp.Rp.s });
    ("t1", { rp with Rp.t1 = bump_pt rp.Rp.t1 });
    ("t2", { rp with Rp.t2 = bump_pt rp.Rp.t2 });
    ("t_hat", { rp with Rp.t_hat = bump_sc rp.Rp.t_hat });
    ("tau_x", { rp with Rp.tau_x = bump_sc rp.Rp.tau_x });
    ("mu", { rp with Rp.mu = bump_sc rp.Rp.mu });
  ]
  @ List.map (fun (nm, ip) -> ("ipa." ^ nm, { rp with Rp.ipa = ip })) (mut_ipa rp.Rp.ipa)

(* every single-field corruption of one proof bundle, labeled *)
let mutations (m : Wire.proof_msg) =
  List.concat
    [
      List.init (Array.length m.Wire.es) (fun i ->
          (Printf.sprintf "es[%d]" i, { m with Wire.es = bump_parr m.Wire.es i }));
      List.init (Array.length m.Wire.os) (fun i ->
          (Printf.sprintf "os[%d]" i, { m with Wire.os = bump_parr m.Wire.os i }));
      List.init (Array.length m.Wire.os') (fun i ->
          (Printf.sprintf "os'[%d]" i, { m with Wire.os' = bump_parr m.Wire.os' i }));
      List.map (fun (nm, w) -> ("wf." ^ nm, { m with Wire.wf = w })) (mut_wf m.Wire.wf);
      List.concat
        (List.init (Array.length m.Wire.squares) (fun i ->
             List.map
               (fun (nm, sq) ->
                 ( Printf.sprintf "squares[%d].%s" i nm,
                   {
                     m with
                     Wire.squares = Array.mapi (fun j x -> if j = i then sq else x) m.Wire.squares;
                   } ))
               (mut_square m.Wire.squares.(i))));
      List.map (fun (nm, rp) -> ("sigma_range." ^ nm, { m with Wire.sigma_range = rp })) (mut_rp m.Wire.sigma_range);
      List.map (fun (nm, rp) -> ("mu_range." ^ nm, { m with Wire.mu_range = rp })) (mut_rp m.Wire.mu_range);
    ]

(* --- tests --- *)

let all_some = Array.map Option.some proofs

let test_valid_all_jobs () =
  List.iter (fun jobs -> check_both ~name:"valid" ~jobs ~expected:[] all_some) [ 1; 2; 4 ]

let test_structural () =
  (* a missing proof *)
  let dropped = Array.copy all_some in
  dropped.(1) <- None;
  List.iter (fun jobs -> check_both ~name:"dropout" ~jobs ~expected:[ 2 ] dropped) [ 1; 2; 4 ];
  (* a relayed proof: right shape, wrong sender slot *)
  let hijacked = Array.copy all_some in
  hijacked.(2) <- Some { proofs.(0) with Wire.sender = 3 };
  List.iter (fun jobs -> check_both ~name:"sender-mismatch" ~jobs ~expected:[ 3 ] hijacked) [ 1; 2 ]

let test_corruption_corpus () =
  (* full corpus on client 1 at jobs=1; every 5th mutation re-checked at
     jobs=2 and 4 (the verdict must not depend on the domain count) *)
  let muts = mutations proofs.(0) in
  Alcotest.(check bool) "corpus covers all proof fields" true (List.length muts > 60);
  List.iteri
    (fun idx (name, bad_proof) ->
      if idx mod stride = 0 then begin
        let trial = Array.copy all_some in
        trial.(0) <- Some bad_proof;
        check_both ~name:("corrupt " ^ name) ~jobs:1 ~expected:[ 1 ] trial;
        if idx mod 5 = 0 then begin
          check_both ~name:("corrupt " ^ name) ~jobs:2 ~expected:[ 1 ] trial;
          check_both ~name:("corrupt " ^ name) ~jobs:4 ~expected:[ 1 ] trial
        end
      end)
    muts

let test_corruption_other_client () =
  (* same corruption semantics when the bad client is not the first: the
     bisection must not be position-sensitive *)
  let muts = mutations proofs.(2) in
  List.iteri
    (fun idx (name, bad_proof) ->
      if idx mod (5 * stride) = 0 then begin
        let trial = Array.copy all_some in
        trial.(2) <- Some bad_proof;
        check_both ~name:("corrupt c3 " ^ name) ~jobs:1 ~expected:[ 3 ] trial
      end)
    muts

let test_multi_client_bisection () =
  (* two corrupted clients in the same round: one giant MSM fails, and
     the bisection must attribute exactly both *)
  let m1 = { proofs.(0) with Wire.wf = { proofs.(0).Wire.wf with Wf.zr = bump_sc proofs.(0).Wire.wf.Wf.zr } } in
  let m3 = { proofs.(3) with Wire.sigma_range = { proofs.(3).Wire.sigma_range with Rp.t_hat = bump_sc proofs.(3).Wire.sigma_range.Rp.t_hat } } in
  let trial = Array.copy all_some in
  trial.(0) <- Some m1;
  trial.(3) <- Some m3;
  List.iter (fun jobs -> check_both ~name:"two-corrupt" ~jobs ~expected:[ 1; 4 ] trial) [ 1; 2; 4 ];
  (* all four corrupted: nothing survives *)
  let all_bad =
    Array.map
      (fun p ->
        match p with
        | Some (m : Wire.proof_msg) -> Some { m with Wire.wf = { m.Wire.wf with Wf.zr = bump_sc m.Wire.wf.Wf.zr } }
        | None -> None)
      all_some
  in
  check_both ~name:"all-corrupt" ~jobs:1 ~expected:[ 1; 2; 3; 4 ] all_bad

let () =
  ignore clients;
  Alcotest.run "batch-verify"
    [
      ( "differential",
        [
          Alcotest.test_case "valid proofs, jobs 1/2/4" `Quick test_valid_all_jobs;
          Alcotest.test_case "structural failures" `Quick test_structural;
          Alcotest.test_case "multi-client bisection" `Quick test_multi_client_bisection;
          Alcotest.test_case "corruption corpus (client 1)" `Slow test_corruption_corpus;
          Alcotest.test_case "corruption corpus (client 3, stride)" `Slow test_corruption_other_client;
        ] );
    ]
