(* Cross-library property-based tests (qcheck): algebraic laws and
   roundtrip invariants on the core data structures, complementing the
   per-library unit suites. *)

module Fe = Curve25519.Fe
module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module B = Bigint
module Fp = Encoding.Fixed_point

let drbg = Prng.Drbg.create_string "test-properties"

let prop ?(count = 100) name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- generators --- *)

let gen_bigint bits =
  let open QCheck2.Gen in
  let* limbs = list_repeat ((bits / 26) + 1) (int_bound ((1 lsl 26) - 1)) in
  let* negp = bool in
  return (B.of_limbs ~neg:negp (Array.of_list limbs))

let gen_fe = QCheck2.Gen.map (fun b -> Fe.of_bigint (B.abs b)) (gen_bigint 300)
let gen_scalar = QCheck2.Gen.map (fun b -> Scalar.of_bigint (B.abs b)) (gen_bigint 300)

let gen_point = QCheck2.Gen.map Point.mul_base gen_scalar

(* --- field laws --- *)

let fe_props =
  [
    prop "fe add comm" QCheck2.Gen.(pair gen_fe gen_fe) (fun (a, b) -> Fe.equal (Fe.add a b) (Fe.add b a));
    prop "fe mul comm" QCheck2.Gen.(pair gen_fe gen_fe) (fun (a, b) -> Fe.equal (Fe.mul a b) (Fe.mul b a));
    prop "fe mul assoc" QCheck2.Gen.(triple gen_fe gen_fe gen_fe) (fun (a, b, c) ->
        Fe.equal (Fe.mul (Fe.mul a b) c) (Fe.mul a (Fe.mul b c)));
    prop "fe distrib" QCheck2.Gen.(triple gen_fe gen_fe gen_fe) (fun (a, b, c) ->
        Fe.equal (Fe.mul a (Fe.add b c)) (Fe.add (Fe.mul a b) (Fe.mul a c)));
    prop "fe sub/add inverse" QCheck2.Gen.(pair gen_fe gen_fe) (fun (a, b) ->
        Fe.equal a (Fe.add (Fe.sub a b) b));
    prop "fe square = mul self" gen_fe (fun a -> Fe.equal (Fe.square a) (Fe.mul a a));
    prop "fe bytes roundtrip" gen_fe (fun a -> Fe.equal a (Fe.of_bytes (Fe.to_bytes a)));
    prop "fe invert" gen_fe (fun a ->
        QCheck2.assume (not (Fe.is_zero a));
        Fe.equal Fe.one (Fe.mul a (Fe.invert a)));
  ]

(* --- scalar laws --- *)

let scalar_props =
  [
    prop "scalar ring laws" QCheck2.Gen.(triple gen_scalar gen_scalar gen_scalar) (fun (a, b, c) ->
        Scalar.equal (Scalar.mul a (Scalar.add b c)) (Scalar.add (Scalar.mul a b) (Scalar.mul a c))
        && Scalar.equal (Scalar.add a (Scalar.neg a)) Scalar.zero);
    prop "scalar bytes roundtrip" gen_scalar (fun a -> Scalar.equal a (Scalar.of_bytes (Scalar.to_bytes a)));
    prop "scalar signed roundtrip" (QCheck2.Gen.int_range (-1_000_000) 1_000_000) (fun n ->
        Scalar.to_int_signed (Scalar.of_int n) = n);
    prop "scalar inv" gen_scalar (fun a ->
        QCheck2.assume (not (Scalar.is_zero a));
        Scalar.equal Scalar.one (Scalar.mul a (Scalar.inv a)));
    prop "wide reduction consistent" (gen_bigint 450) (fun b ->
        let b = B.erem (B.abs b) (B.shift_left B.one 512) in
        let via_wide = Scalar.of_bytes_wide (B.to_bytes_le ~len:64 b) in
        Scalar.equal via_wide (Scalar.of_bigint b));
  ]

(* --- group laws --- *)

let point_props =
  [
    prop ~count:20 "point scalar distributes" QCheck2.Gen.(pair gen_scalar gen_scalar) (fun (s, t) ->
        Point.equal
          (Point.mul_base (Scalar.add s t))
          (Point.add (Point.mul_base s) (Point.mul_base t)));
    prop ~count:20 "point compress roundtrip" gen_point (fun p ->
        match Point.decompress (Point.compress p) with Some q -> Point.equal p q | None -> false);
    prop ~count:20 "compress_batch = compress" gen_point (fun p ->
        let batch = Point.compress_batch [| p; Point.double p |] in
        Bytes.equal batch.(0) (Point.compress p) && Bytes.equal batch.(1) (Point.compress (Point.double p)));
  ]

(* --- vsss --- *)

let vsss_props =
  let g = Curve25519.Gens.derive "props/g" in
  [
    prop ~count:30 "share/recover roundtrip"
      QCheck2.Gen.(pair gen_scalar (int_range 1 6))
      (fun (secret, t) ->
        let n = t + 3 in
        let shares, check = Vsss.share drbg ~secret ~n ~t ~g in
        let all_verify = Array.for_all (fun s -> Vsss.verify ~g ~check s) shares in
        let subset = Array.to_list (Array.sub shares 1 t) in
        all_verify && Scalar.equal secret (Vsss.recover subset));
    prop ~count:30 "homomorphic sum recovers"
      QCheck2.Gen.(pair gen_scalar gen_scalar)
      (fun (s1, s2) ->
        let sh1, _ = Vsss.share drbg ~secret:s1 ~n:5 ~t:2 ~g in
        let sh2, _ = Vsss.share drbg ~secret:s2 ~n:5 ~t:2 ~g in
        let sum = Array.map2 Vsss.add_shares sh1 sh2 in
        Scalar.equal (Scalar.add s1 s2) (Vsss.recover [ sum.(0); sum.(3) ]));
  ]

(* --- fixed point --- *)

let fp_props =
  [
    prop "encode within half-lsb"
      QCheck2.Gen.(float_bound_inclusive 100.0)
      (fun x ->
        let cfg = Fp.default in
        abs_float (Fp.decode cfg (Fp.encode cfg x) -. x) <= (0.5 /. 256.0) +. 1e-9);
    prop "decode/encode identity on representables" (QCheck2.Gen.int_range (-32768) 32767) (fun v ->
        let cfg = Fp.default in
        Fp.encode cfg (Fp.decode cfg v) = v);
    prop "norm scale-invariance" (QCheck2.Gen.list_size (QCheck2.Gen.return 8) (QCheck2.Gen.int_range (-100) 100))
      (fun l ->
        let v = Array.of_list l in
        let n1 = Fp.l2_norm_encoded v in
        let n2 = Fp.l2_norm_encoded (Array.map (fun x -> -x) v) in
        abs_float (n1 -. n2) < 1e-9);
  ]

(* --- stats --- *)

let stats_props =
  [
    prop ~count:50 "chisq cdf monotone in x"
      QCheck2.Gen.(triple (int_range 1 200) (float_bound_inclusive 300.0) (float_bound_inclusive 100.0))
      (fun (k, x, dx) -> Stats.Chisq.cdf ~k x <= Stats.Chisq.cdf ~k (x +. dx) +. 1e-12);
    prop ~count:50 "chisq cdf + sf = 1"
      QCheck2.Gen.(pair (int_range 1 200) (float_bound_inclusive 400.0))
      (fun (k, x) -> abs_float (Stats.Chisq.cdf ~k x +. Stats.Chisq.sf ~k x -. 1.0) < 1e-9);
    prop ~count:20 "quantile inverts"
      QCheck2.Gen.(pair (int_range 1 500) (int_range 4 120))
      (fun (k, neg_log_eps) ->
        let eps = 2.0 ** float_of_int (-neg_log_eps) in
        let gamma = Stats.Chisq.quantile_upper ~k ~eps in
        let back = Stats.Chisq.sf ~k gamma in
        abs_float (log back -. log eps) < 1e-4);
  ]

(* --- channel / secagg-style dualities --- *)

let channel_props =
  [
    prop ~count:30 "seal/open roundtrip"
      QCheck2.Gen.(pair (string_size (int_range 0 200)) (string_size (int_range 1 20)))
      (fun (msg, seed) ->
        let a = Risefl_core.Channel.gen_keypair drbg in
        let b = Risefl_core.Channel.gen_keypair drbg in
        let k1 = Risefl_core.Channel.shared_key ~my:a ~their_pk:b.Risefl_core.Channel.pk in
        let k2 = Risefl_core.Channel.shared_key ~my:b ~their_pk:a.Risefl_core.Channel.pk in
        let sealed = Risefl_core.Channel.seal ~key:k1 ~nonce_seed:seed (Bytes.of_string msg) in
        match Risefl_core.Channel.open_ ~key:k2 sealed with
        | Some plain -> String.equal (Bytes.to_string plain) msg
        | None -> false);
  ]

let () =
  Alcotest.run "properties"
    [
      ("fe", fe_props);
      ("scalar", scalar_props);
      ("point", point_props);
      ("vsss", vsss_props);
      ("fixed-point", fp_props);
      ("stats", stats_props);
      ("channel", channel_props);
    ]
