(* End-to-end RiseFL protocol tests: honest aggregation is exact; each
   malicious behaviour from the threat model (§3.2) is handled as the
   paper specifies; the relaxed-SAVI semantics of Definition 1 (slightly
   oversized updates pass, grossly oversized ones are rejected) are
   observable. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Sampling = Risefl_core.Sampling
module Channel = Risefl_core.Channel
module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

let params =
  Params.make ~n_clients:5 ~max_malicious:1 ~d:16 ~k:4 ~m_factor:64.0 ~bound_b:1000.0 ()

let setup = Setup.create ~label:"test-protocol" params

let drbg = Prng.Drbg.create_string "test-protocol"

(* deterministic small updates, norm well within bound *)
let mk_updates n d =
  Array.init n (fun i -> Array.init d (fun l -> ((i * 31) + (l * 7) + 3) mod 200 - 100))

let sum_updates updates idxs =
  let d = Array.length updates.(0) in
  Array.init d (fun l -> List.fold_left (fun acc i -> acc + updates.(i - 1).(l)) 0 idxs)

let check_agg msg expected = function
  | None -> Alcotest.fail (msg ^ ": aggregation failed")
  | Some agg -> Alcotest.(check (array int)) msg expected agg

(* --- full iterations --- *)

let test_honest_run () =
  let updates = mk_updates 5 16 in
  let stats =
    Driver.run_iteration setup ~updates ~behaviours:(Driver.honest_all 5) ~seed:"honest" ~round:1
  in
  Alcotest.(check (list int)) "nobody flagged" [] stats.Driver.flagged;
  check_agg "exact sum" (sum_updates updates [ 1; 2; 3; 4; 5 ]) stats.Driver.aggregate;
  Alcotest.(check bool) "commit time measured" true (stats.Driver.client_commit_s > 0.0);
  Alcotest.(check bool) "comm accounted" true (stats.Driver.client_up_bytes > 0)

let test_grossly_oversized_rejected () =
  let updates = mk_updates 5 16 in
  (* client 3 scales its update to ~100x the bound B: with k = 4 the pass
     rate F(100) ~ 1e-5, so rejection is near-certain *)
  let norm = Encoding.Fixed_point.l2_norm_encoded updates.(2) in
  let factor = int_of_float (Float.round (100.0 *. params.Params.bound_b /. norm)) in
  updates.(2) <- Array.map (fun x -> factor * x) updates.(2);
  let behaviours = Driver.honest_all 5 in
  behaviours.(2) <- Driver.Oversized 100.0;
  let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:"oversized" ~round:1 in
  Alcotest.(check (list int)) "client 3 flagged" [ 3 ] stats.Driver.flagged;
  check_agg "sum excludes attacker" (sum_updates updates [ 1; 2; 4; 5 ]) stats.Driver.aggregate

let test_slightly_oversized_passes () =
  (* Definition 1's relaxation: at ||u|| = 2B with k = 4 the pass rate
     F(2) is ~1, so the update slips in — but its damage is bounded *)
  let updates = mk_updates 5 16 in
  updates.(2) <- Array.map (fun x -> 2 * x) updates.(2);
  let behaviours = Driver.honest_all 5 in
  behaviours.(2) <- Driver.Oversized 2.0;
  let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:"slight" ~round:1 in
  Alcotest.(check (list int)) "passes the relaxed check" [] stats.Driver.flagged;
  check_agg "included" (sum_updates updates [ 1; 2; 3; 4; 5 ]) stats.Driver.aggregate

let test_bad_shares_to_everyone () =
  let updates = mk_updates 5 16 in
  let behaviours = Driver.honest_all 5 in
  behaviours.(1) <- Driver.Bad_share_to [ 1; 3; 4; 5 ];
  let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:"badshares" ~round:1 in
  (* flagged by 4 > m = 1 clients: rule 1 *)
  Alcotest.(check (list int)) "dealer flagged" [ 2 ] stats.Driver.flagged;
  check_agg "excluded" (sum_updates updates [ 1; 3; 4; 5 ]) stats.Driver.aggregate

let test_bad_share_to_one_rule2 () =
  let updates = mk_updates 5 16 in
  let behaviours = Driver.honest_all 5 in
  (* corrupt only client 4's share: one flag -> rule 2 -> dealer reveals the
     true share, stays honest, and the server forwards it to client 4 *)
  behaviours.(1) <- Driver.Bad_share_to [ 4 ] [@warning "-a"];
  let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:"rule2" ~round:1 in
  Alcotest.(check (list int)) "nobody flagged (share recovered in clear)" [] stats.Driver.flagged;
  check_agg "full sum" (sum_updates updates [ 1; 2; 3; 4; 5 ]) stats.Driver.aggregate

let test_false_flags_neutralized () =
  let updates = mk_updates 5 16 in
  let behaviours = Driver.honest_all 5 in
  (* client 5 falsely accuses client 1: rule 2 clears client 1 *)
  behaviours.(4) <- Driver.False_flags [ 1 ];
  let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:"falseflag" ~round:1 in
  Alcotest.(check (list int)) "honest client survives" [] stats.Driver.flagged;
  check_agg "full sum" (sum_updates updates [ 1; 2; 3; 4; 5 ]) stats.Driver.aggregate

let test_dropout () =
  let updates = mk_updates 5 16 in
  let behaviours = Driver.honest_all 5 in
  behaviours.(3) <- Driver.Drop_out;
  let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:"dropout" ~round:1 in
  Alcotest.(check (list int)) "dropout flagged" [ 4 ] stats.Driver.flagged;
  check_agg "rest aggregated" (sum_updates updates [ 1; 2; 3; 5 ]) stats.Driver.aggregate

let test_bad_agg_share_tolerated () =
  (* a malicious client corrupts its round-3 aggregated share; the server
     rejects it via SS.Verify against the combined check string and still
     recovers the sum from the remaining shares (>= t = m+1) *)
  let updates = mk_updates 5 16 in
  let behaviours = Driver.honest_all 5 in
  behaviours.(2) <- Driver.Bad_agg_share;
  let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:"badagg" ~round:1 in
  (* the client passed commitments and proofs honestly, so it is in H and
     its update IS included; only its share was corrupted *)
  Alcotest.(check (list int)) "not flagged" [] stats.Driver.flagged;
  check_agg "sum still recovered" (sum_updates updates [ 1; 2; 3; 4; 5 ]) stats.Driver.aggregate

let test_reveal_shares_caps_requests () =
  (* §4.4.1: a client receiving more than m clear-share requests marks the
     server as malicious and quits *)
  let session_drbg = Prng.Drbg.create_string "caps" in
  let client = Risefl_core.Client.create setup ~id:1 session_drbg in
  let pks = Array.init 5 (fun i -> Point.mul_base (Scalar.of_int (i + 2))) in
  Risefl_core.Client.install_directory client pks;
  ignore (Risefl_core.Client.commit_round client ~round:1 ~update:(Array.make 16 0));
  (* m = 1: one request is fine, two must raise *)
  Alcotest.(check int) "one request ok" 1
    (List.length (Risefl_core.Client.reveal_shares client ~requests:[ 2 ]));
  Alcotest.check_raises "two requests rejected"
    (Risefl_core.Client.Server_misbehaving "server requested more than m clear shares") (fun () ->
      ignore (Risefl_core.Client.reveal_shares client ~requests:[ 2; 3 ]))

let test_serialized_wire_run () =
  (* the full iteration with every message crossing the binary codecs *)
  let updates = mk_updates 5 16 in
  let stats =
    Driver.run_iteration ~serialize:true setup ~updates ~behaviours:(Driver.honest_all 5)
      ~seed:"serialized" ~round:1
  in
  Alcotest.(check (list int)) "nobody flagged" [] stats.Driver.flagged;
  check_agg "exact sum over the wire" (sum_updates updates [ 1; 2; 3; 4; 5 ]) stats.Driver.aggregate

(* --- params --- *)

let test_params_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (msg ^ ": should have been rejected")
  in
  expect_invalid "m >= n/2" (fun () ->
      Params.make ~n_clients:4 ~max_malicious:2 ~d:8 ~k:4 ~bound_b:10.0 ());
  expect_invalid "bad b_ip" (fun () ->
      Params.make ~b_ip_bits:24 ~n_clients:5 ~max_malicious:1 ~d:8 ~k:4 ~bound_b:10.0 ());
  expect_invalid "overflow risk" (fun () ->
      Params.make ~b_ip_bits:64 ~b_max_bits:64 ~n_clients:5 ~max_malicious:1 ~d:8 ~k:4 ~bound_b:10.0 ());
  expect_invalid "bound too large for sigma range" (fun () ->
      Params.make ~b_ip_bits:16 ~n_clients:5 ~max_malicious:1 ~d:8 ~k:4 ~m_factor:1024.0
        ~bound_b:1.0e6 ())

let test_b0_magnitude () =
  (* B0 >= B^2 M^2 gamma, and fits in b_max bits *)
  let b0 = Params.b0 params in
  let gamma = Params.gamma params in
  let lower = 1000.0 ** 2.0 *. (64.0 ** 2.0) *. gamma in
  Alcotest.(check bool) "lower bound" true (Bigint.compare b0 (Bigint.of_int (int_of_float lower)) >= 0);
  Alcotest.(check bool) "fits" true (Bigint.bit_length b0 <= params.Params.b_max_bits)

(* --- sampling --- *)

let test_sampling_deterministic () =
  let pks = Array.init 3 (fun i -> Point.mul_base (Scalar.of_int (i + 7))) in
  let s = Bytes.make 32 'x' in
  let seed1 = Sampling.seed ~s ~pks in
  let seed2 = Sampling.seed ~s ~pks in
  Alcotest.(check bool) "seed deterministic" true (Bytes.equal seed1 seed2);
  let m1 = Sampling.sample_matrix ~seed:seed1 ~d:10 ~k:3 ~m_factor:32.0 in
  let m2 = Sampling.sample_matrix ~seed:seed2 ~d:10 ~k:3 ~m_factor:32.0 in
  Alcotest.(check bool) "a0 equal" true
    (Array.for_all2 Scalar.equal m1.Sampling.a0 m2.Sampling.a0);
  Alcotest.(check bool) "rows equal" true (m1.Sampling.rows = m2.Sampling.rows);
  (* different s -> different matrix *)
  let seed3 = Sampling.seed ~s:(Bytes.make 32 'y') ~pks in
  let m3 = Sampling.sample_matrix ~seed:seed3 ~d:10 ~k:3 ~m_factor:32.0 in
  Alcotest.(check bool) "differs" false (m1.Sampling.rows = m3.Sampling.rows)

let test_ver_crt_accepts_and_rejects () =
  let d = 12 and k = 3 in
  let m = Sampling.sample_matrix ~seed:(Bytes.make 32 'z') ~d ~k ~m_factor:32.0 in
  let sub_setup =
    Setup.create ~label:"test-vercrt"
      (Params.make ~n_clients:3 ~max_malicious:1 ~d ~k ~m_factor:32.0 ~bound_b:100.0 ())
  in
  let hs = Sampling.compute_h sub_setup m in
  Alcotest.(check bool) "accepts honest h" true
    (Sampling.ver_crt drbg ~bases:sub_setup.Setup.w ~targets:hs ~matrix:m);
  (* a single corrupted h_t must be caught *)
  let bad = Array.copy hs in
  bad.(2) <- Point.add bad.(2) Point.base;
  Alcotest.(check bool) "rejects corrupted h" false
    (Sampling.ver_crt drbg ~bases:sub_setup.Setup.w ~targets:bad ~matrix:m)

let test_project_exact () =
  let d = 8 in
  let m = Sampling.sample_matrix ~seed:(Bytes.make 32 'p') ~d ~k:2 ~m_factor:16.0 in
  let u = Array.init d (fun l -> l - 4) in
  let _, vs = Sampling.project m u in
  Array.iteri
    (fun t v ->
      let expected = Array.fold_left ( + ) 0 (Array.mapi (fun l a -> a * u.(l)) m.Sampling.rows.(t)) in
      Alcotest.(check int) (Printf.sprintf "row %d" t) expected v)
    vs

(* --- cost model (Table 1) --- *)

let test_cost_model_shapes () =
  let module CM = Risefl_core.Cost_model in
  let cfg d = { CM.n = 100; m = 10; d; k = 1000; b = 16; log_m_factor = 24; log_p = 253 } in
  let at_100k = cfg 100_000 in
  let r = CM.risefl at_100k and ro = CM.rofl at_100k and ac = CM.acorn at_100k and ei = CM.eiffel at_100k in
  (* the paper's headline separations at d = 100K *)
  Alcotest.(check bool) "RiseFL proof gen << RoFL" true
    (r.CM.client_proof_gen_ge *. 100.0 < ro.CM.client_proof_gen_ge);
  Alcotest.(check bool) "RiseFL proof gen << ACORN" true
    (r.CM.client_proof_gen_ge *. 10.0 < ac.CM.client_proof_gen_ge);
  Alcotest.(check bool) "EIFFeL comm >> RiseFL (3 orders)" true
    (ei.CM.comm_elements_per_client > 1000.0 *. r.CM.comm_elements_per_client);
  Alcotest.(check bool) "EIFFeL server ~ 0" true (ei.CM.server_proof_ver_ge = 0.0);
  (* scaling in d: RiseFL proof gen sublinear, RoFL linear *)
  let r1 = CM.risefl (cfg 1_000) and r100 = CM.risefl (cfg 100_000) in
  Alcotest.(check bool) "RiseFL sublinear in d" true
    (r100.CM.client_proof_gen_ge /. r1.CM.client_proof_gen_ge < 100.0);
  let ro1 = CM.rofl (cfg 1_000) and ro100 = CM.rofl (cfg 100_000) in
  Alcotest.(check bool) "RoFL linear in d" true
    (abs_float ((ro100.CM.client_proof_gen_ge /. ro1.CM.client_proof_gen_ge) -. 100.0) < 1.0);
  (* the rendered table mentions every system *)
  let table = CM.to_table at_100k in
  List.iter
    (fun name ->
      Alcotest.(check bool) name true
        (String.length table > 0
        &&
        (* substring search without Str *)
        let nl = String.length name and tl = String.length table in
        let rec find i = i + nl <= tl && (String.sub table i nl = name || find (i + 1)) in
        find 0))
    [ "EIFFeL"; "RoFL"; "ACORN"; "RiseFL" ]

(* --- channel --- *)

let test_channel_roundtrip () =
  let a = Channel.gen_keypair drbg in
  let b = Channel.gen_keypair drbg in
  let kab = Channel.shared_key ~my:a ~their_pk:b.Channel.pk in
  let kba = Channel.shared_key ~my:b ~their_pk:a.Channel.pk in
  Alcotest.(check bool) "DH agreement" true (Bytes.equal kab kba);
  let msg = Bytes.of_string "attack at dawn" in
  let sealed = Channel.seal ~key:kab ~nonce_seed:"n1" msg in
  (match Channel.open_ ~key:kba sealed with
  | Some plain -> Alcotest.(check bool) "roundtrip" true (Bytes.equal plain msg)
  | None -> Alcotest.fail "open failed");
  (* tampering is detected *)
  let body = Bytes.copy sealed.Channel.body in
  Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 1));
  Alcotest.(check bool) "tamper detected" true (Channel.open_ ~key:kba { sealed with Channel.body = body } = None);
  (* wrong key fails *)
  let c = Channel.gen_keypair drbg in
  let kc = Channel.shared_key ~my:c ~their_pk:a.Channel.pk in
  Alcotest.(check bool) "wrong key" true (Channel.open_ ~key:kc sealed = None)

let () =
  Alcotest.run "protocol"
    [
      ( "iterations",
        [
          Alcotest.test_case "honest run aggregates exactly" `Quick test_honest_run;
          Alcotest.test_case "grossly oversized rejected" `Quick test_grossly_oversized_rejected;
          Alcotest.test_case "slightly oversized passes (relaxed SAVI)" `Quick test_slightly_oversized_passes;
          Alcotest.test_case "bad shares to everyone (rule 1)" `Quick test_bad_shares_to_everyone;
          Alcotest.test_case "bad share to one (rule 2)" `Quick test_bad_share_to_one_rule2;
          Alcotest.test_case "false flags neutralized" `Quick test_false_flags_neutralized;
          Alcotest.test_case "dropout excluded" `Quick test_dropout;
          Alcotest.test_case "serialized wire run" `Quick test_serialized_wire_run;
          Alcotest.test_case "bad agg share tolerated" `Quick test_bad_agg_share_tolerated;
          Alcotest.test_case "reveal-shares cap (rule 2 abuse)" `Quick test_reveal_shares_caps_requests;
        ] );
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "B0 magnitude" `Quick test_b0_magnitude;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "deterministic" `Quick test_sampling_deterministic;
          Alcotest.test_case "VerCrt accept/reject" `Quick test_ver_crt_accepts_and_rejects;
          Alcotest.test_case "exact projections" `Quick test_project_exact;
        ] );
      ("cost-model", [ Alcotest.test_case "Table 1 shapes" `Quick test_cost_model_shapes ]);
      ("channel", [ Alcotest.test_case "roundtrip and tamper" `Quick test_channel_roundtrip ]);
    ]
