(* Group-layer fast paths: the C field-mul stub, wNAF scalar
   multiplication, signed fixed-base tables, batched-affine MSM, the
   center-out BSGS solver, and the persistent table cache.  Every fast
   path is differentially tested against a slow reference, and the cache
   against corruption: a bad cache file must read as a miss, never as
   wrong data. *)

module Fe = Curve25519.Fe
module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm
module Dlog = Curve25519.Dlog
module B = Bigint
module Cache = Store.Cache
module Group_cache = Risefl_core.Group_cache

let drbg = Prng.Drbg.create_string "test-group-fast"

let rand_fe () = Fe.of_bigint (B.random ~bits:300 (Prng.Drbg.rand26 drbg))
let rand_scalar () = Scalar.random drbg
let rand_point () = Point.mul_base (rand_scalar ())

let check_point msg p q = Alcotest.(check bool) msg true (Point.equal p q)

let with_temp_dir f =
  let dir = Filename.temp_file "risefl-test-cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* --- C field-mul stub vs the pure-OCaml kernel --- *)

let test_fe_stub_differential () =
  Alcotest.(check bool) "stub compiled in" true Fe.Backend.stub_available;
  let was = Fe.Backend.using_stub () in
  Fun.protect ~finally:(fun () -> Fe.Backend.set_stub was) @@ fun () ->
  for _ = 1 to 200 do
    let a = rand_fe () and b = rand_fe () in
    Fe.Backend.set_stub false;
    let mul_ml = Fe.to_bytes (Fe.mul a b) in
    let sq_ml = Fe.to_bytes (Fe.square a) in
    Fe.Backend.set_stub true;
    let mul_c = Fe.to_bytes (Fe.mul a b) in
    let sq_c = Fe.to_bytes (Fe.square a) in
    Alcotest.(check bytes) "stub mul == ocaml mul" mul_ml mul_c;
    Alcotest.(check bytes) "stub sq == ocaml sq" sq_ml sq_c
  done;
  (* a compressed point exercises the full carry/inversion tower *)
  let p = rand_point () and s = rand_scalar () in
  Fe.Backend.set_stub false;
  let c_ml = Point.compress (Point.mul s p) in
  Fe.Backend.set_stub true;
  let c_c = Point.compress (Point.mul s p) in
  Alcotest.(check bytes) "stub scalarmul compress identical" c_ml c_c

(* --- wNAF variable-base mul vs double-and-add --- *)

let mul_ref s p =
  (* plain MSB-first double-and-add over the scalar's bits *)
  let e = Scalar.to_bigint s in
  let acc = ref Point.identity in
  for i = B.bit_length e - 1 downto 0 do
    acc := Point.double !acc;
    if B.testbit e i then acc := Point.add !acc p
  done;
  !acc

let test_wnaf_digits () =
  for _ = 1 to 50 do
    let s = rand_scalar () in
    let digits = Scalar.to_wnaf s in
    Alcotest.(check int) "256 digits" 256 (Array.length digits);
    (* each digit zero or odd, |d| <= 15; the digit sum reconstructs s *)
    let acc = ref B.zero in
    for i = 255 downto 0 do
      let d = digits.(i) in
      Alcotest.(check bool) "digit odd or zero" true (d = 0 || abs d land 1 = 1);
      Alcotest.(check bool) "digit magnitude" true (abs d <= 15);
      acc := B.add (B.add !acc !acc) (B.of_int d)
    done;
    Alcotest.(check string) "digits sum to scalar"
      (B.to_hex (Scalar.to_bigint s))
      (B.to_hex (B.erem !acc Scalar.order))
  done

let test_wnaf_mul_matches_reference () =
  for _ = 1 to 25 do
    let s = rand_scalar () and p = rand_point () in
    check_point "wNAF mul == double-and-add" (mul_ref s p) (Point.mul s p)
  done;
  (* edge scalars *)
  List.iter
    (fun s ->
      let p = rand_point () in
      check_point "edge scalar" (mul_ref s p) (Point.mul s p))
    [ Scalar.zero; Scalar.one; Scalar.of_int 15; Scalar.of_int 16;
      Scalar.neg Scalar.one; Scalar.of_bigint (B.sub Scalar.order B.one) ]

let test_double_mul_matches () =
  for _ = 1 to 15 do
    let s = rand_scalar () and t = rand_scalar () in
    let p = rand_point () and q = rand_point () in
    check_point "double_mul == mul+mul"
      (Point.add (mul_ref s p) (mul_ref t q))
      (Point.double_mul s p t q)
  done

let test_table_matches () =
  let p = rand_point () in
  let tbl = Point.Table.make p in
  for _ = 1 to 25 do
    let s = rand_scalar () in
    check_point "Table.mul == reference" (mul_ref s p) (Point.Table.mul tbl s)
  done;
  List.iter
    (fun e ->
      check_point
        (Printf.sprintf "Table.mul_small %d" e)
        (Point.mul_small e p)
        (Point.Table.mul_small tbl e))
    [ 0; 1; -1; 7; -8; 8; 15; 16; -16; 255; -255; 65535; -65536; max_int / 2 ]

let test_msm_matches () =
  for _ = 1 to 5 do
    let n = 1 + Prng.Drbg.uniform_int drbg 40 in
    let pairs = Array.init n (fun _ -> (rand_scalar (), rand_point ())) in
    let reference =
      Array.fold_left (fun acc (s, p) -> Point.add acc (mul_ref s p)) Point.identity pairs
    in
    check_point "msm == sum of muls" reference (Msm.msm pairs);
    let small = Array.map (fun (_, p) -> (Prng.Drbg.uniform_int drbg 4000 - 2000, p)) pairs in
    let reference_small =
      Array.fold_left (fun acc (e, p) -> Point.add acc (Point.mul_small e p)) Point.identity small
    in
    check_point "msm_small == sum of mul_smalls" reference_small (Msm.msm_small small)
  done

(* --- Dlog edge cases --- *)

let test_dlog_zero_range () =
  (* max_abs = 0: only the identity is solvable *)
  let t = Dlog.create ~base:Point.base ~max_abs:0 () in
  Alcotest.(check (option int)) "identity solves to 0" (Some 0) (Dlog.solve t Point.identity);
  Alcotest.(check (option int)) "base is out of range" None (Dlog.solve t Point.base)

let test_dlog_extremes () =
  let max_abs = 1000 in
  let t = Dlog.create ~base:Point.base ~max_abs () in
  List.iter
    (fun x ->
      Alcotest.(check (option int))
        (Printf.sprintf "solve %d" x)
        (Some x)
        (Dlog.solve t (Point.mul_small x Point.base)))
    [ max_abs; -max_abs; max_abs - 1; -(max_abs - 1); 0; 1; -1 ];
  (* just out of range on both sides *)
  List.iter
    (fun x ->
      Alcotest.(check (option int))
        (Printf.sprintf "out of range %d" x)
        None
        (Dlog.solve t (Point.mul_small x Point.base)))
    [ max_abs + 1; -(max_abs + 1) ]

let test_dlog_identity_base () =
  (* base = identity: every baby key collides on compress(identity) and
     first-writer-wins must keep j = 0, so the identity target decodes
     to the centered representative and everything else returns None *)
  let t = Dlog.create ~base:Point.identity ~max_abs:50 () in
  (match Dlog.solve t Point.identity with
  | Some x -> Alcotest.(check bool) "identity target in range" true (abs x <= 50)
  | None -> Alcotest.fail "identity target must solve");
  Alcotest.(check (option int)) "non-multiple unsolvable" None (Dlog.solve t (rand_point ()))

let test_dlog_m_scale () =
  let max_abs = 2000 in
  let small = Dlog.create ~m_scale:0.25 ~base:Point.base ~max_abs () in
  let big = Dlog.create ~m_scale:4.0 ~base:Point.base ~max_abs () in
  Alcotest.(check bool) "m_scale scales the table" true
    (Dlog.table_size big > 4 * Dlog.table_size small);
  for _ = 1 to 20 do
    let x = Prng.Drbg.uniform_int drbg (2 * max_abs) - max_abs in
    let p = Point.mul_small x Point.base in
    Alcotest.(check (option int)) "small-table solve" (Some x) (Dlog.solve small p);
    Alcotest.(check (option int)) "big-table solve" (Some x) (Dlog.solve big p)
  done

let test_dlog_solve_many_jobs_invariant () =
  let max_abs = 3000 in
  let t = Dlog.create ~base:Point.base ~max_abs () in
  let xs = Array.init 64 (fun i -> ((i * 97) mod (2 * max_abs)) - max_abs) in
  let targets = Array.map (fun x -> Point.mul_small x Point.base) xs in
  let expected = Array.map (fun x -> Some x) xs in
  List.iter
    (fun jobs ->
      let solved = Dlog.solve_many ~jobs t targets in
      Alcotest.(check (array (option int)))
        (Printf.sprintf "solve_many at jobs=%d" jobs)
        expected solved)
    [ 1; 2; 4 ]

(* --- serialization + cache --- *)

let test_dlog_serialization_roundtrip () =
  let t = Dlog.create ~base:Point.base ~max_abs:500 () in
  let b = Dlog.to_bytes t in
  match Dlog.of_bytes ~base:Point.base b with
  | None -> Alcotest.fail "of_bytes rejected its own to_bytes"
  | Some t' ->
      Alcotest.(check bytes) "bit-identical reserialization" b (Dlog.to_bytes t');
      Alcotest.(check int) "same m" (Dlog.table_size t) (Dlog.table_size t');
      for x = -500 to 500 do
        if x mod 83 = 0 then
          Alcotest.(check (option int))
            (Printf.sprintf "loaded solver solves %d" x)
            (Some x)
            (Dlog.solve t' (Point.mul_small x Point.base))
      done

let test_dlog_of_bytes_rejects_garbage () =
  let t = Dlog.create ~base:Point.base ~max_abs:100 () in
  let good = Dlog.to_bytes t in
  let reject msg b =
    Alcotest.(check bool) msg true (Dlog.of_bytes ~base:Point.base b = None)
  in
  reject "empty" Bytes.empty;
  reject "truncated" (Bytes.sub good 0 (Bytes.length good - 7));
  let bad_magic = Bytes.copy good in
  Bytes.set bad_magic 0 'X';
  reject "bad magic" bad_magic;
  let bad_key = Bytes.copy good in
  (* flip a byte inside the j=0 key (the identity's compression) *)
  Bytes.set bad_key 12 (Char.chr (Char.code (Bytes.get bad_key 12) lxor 1));
  reject "corrupt identity entry" bad_key

let test_table_serialization_roundtrip () =
  let p = rand_point () in
  let tbl = Point.Table.make p in
  let b = Point.Table.to_bytes tbl in
  Alcotest.(check int) "serialized_size" Point.Table.serialized_size (Bytes.length b);
  (match Point.Table.of_bytes ~base:p b with
  | None -> Alcotest.fail "of_bytes rejected its own to_bytes"
  | Some tbl' ->
      Alcotest.(check bytes) "bit-identical reserialization" b (Point.Table.to_bytes tbl');
      for _ = 1 to 10 do
        let s = rand_scalar () in
        check_point "loaded table multiplies" (Point.Table.mul tbl s) (Point.Table.mul tbl' s)
      done);
  (* wrong base must be rejected even though the bytes are intact *)
  Alcotest.(check bool) "wrong base rejected" true
    (Point.Table.of_bytes ~base:(rand_point ()) b = None);
  let truncated = Bytes.sub b 0 (Bytes.length b - 1) in
  Alcotest.(check bool) "truncated rejected" true (Point.Table.of_bytes ~base:p truncated = None)

let test_cache_roundtrip_and_corruption () =
  with_temp_dir @@ fun dir ->
  let c = Cache.open_ ~dir in
  Alcotest.(check (option bytes)) "missing key" None (Cache.load c ~key:"nope");
  let payload = Bytes.of_string "hello group tables" in
  Cache.save c ~key:"k1" payload;
  Alcotest.(check (option bytes)) "round-trip" (Some payload) (Cache.load c ~key:"k1");
  Cache.save c ~key:"k1" (Bytes.of_string "v2");
  Alcotest.(check (option bytes)) "overwrite" (Some (Bytes.of_string "v2")) (Cache.load c ~key:"k1");
  (* corrupt / truncate every cache file: loads must turn into misses *)
  Cache.save c ~key:"k2" payload;
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      let len = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (len / 2) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
      Unix.close fd)
    (Sys.readdir dir);
  Alcotest.(check (option bytes)) "corrupt k1 is a miss" None (Cache.load c ~key:"k1");
  Alcotest.(check (option bytes)) "corrupt k2 is a miss" None (Cache.load c ~key:"k2");
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      let len = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (len / 3);
      Unix.close fd)
    (Sys.readdir dir);
  Alcotest.(check (option bytes)) "truncated is a miss" None (Cache.load c ~key:"k1");
  (* a save after corruption heals the entry *)
  Cache.save c ~key:"k1" payload;
  Alcotest.(check (option bytes)) "healed" (Some payload) (Cache.load c ~key:"k1")

let test_group_cache_bit_identity () =
  with_temp_dir @@ fun dir ->
  let cache = Cache.open_ ~dir in
  let base = rand_point () in
  let max_abs = 700 in
  (* first call builds + saves; second loads; both must serialize equal *)
  let built = Group_cache.dlog ~cache ~base ~max_abs () in
  let loaded = Group_cache.dlog ~cache ~base ~max_abs () in
  Alcotest.(check bytes) "dlog cached == built" (Dlog.to_bytes built) (Dlog.to_bytes loaded);
  let tb = Group_cache.table ~cache ~label:"t" ~base () in
  let tl = Group_cache.table ~cache ~label:"t" ~base () in
  Alcotest.(check bytes) "table cached == built" (Point.Table.to_bytes tb)
    (Point.Table.to_bytes tl);
  for x = -max_abs to max_abs do
    if x mod 131 = 0 then
      Alcotest.(check (option int))
        (Printf.sprintf "loaded dlog solves %d" x)
        (Some x)
        (Dlog.solve loaded (Point.mul_small x base))
  done;
  (* corrupt every cache file: constructors must rebuild, not fail *)
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd 7;
      Unix.close fd)
    (Sys.readdir dir);
  let rebuilt = Group_cache.dlog ~cache ~base ~max_abs () in
  Alcotest.(check bytes) "rebuilt after corruption" (Dlog.to_bytes built) (Dlog.to_bytes rebuilt);
  let trebuilt = Group_cache.table ~cache ~label:"t" ~base () in
  Alcotest.(check bytes) "table rebuilt after corruption" (Point.Table.to_bytes tb)
    (Point.Table.to_bytes trebuilt)

let () =
  Alcotest.run "group-fast"
    [
      ( "fe-stub",
        [ Alcotest.test_case "C kernel differential" `Quick test_fe_stub_differential ] );
      ( "wnaf",
        [
          Alcotest.test_case "digit invariants + reconstruction" `Quick test_wnaf_digits;
          Alcotest.test_case "mul vs double-and-add" `Quick test_wnaf_mul_matches_reference;
          Alcotest.test_case "double_mul" `Quick test_double_mul_matches;
          Alcotest.test_case "fixed-base table" `Quick test_table_matches;
          Alcotest.test_case "msm differential" `Quick test_msm_matches;
        ] );
      ( "dlog",
        [
          Alcotest.test_case "max_abs = 0" `Quick test_dlog_zero_range;
          Alcotest.test_case "extremes and out-of-range" `Quick test_dlog_extremes;
          Alcotest.test_case "identity base (colliding keys)" `Quick test_dlog_identity_base;
          Alcotest.test_case "m_scale knob" `Quick test_dlog_m_scale;
          Alcotest.test_case "solve_many jobs-invariant" `Quick test_dlog_solve_many_jobs_invariant;
        ] );
      ( "cache",
        [
          Alcotest.test_case "dlog serialization round-trip" `Quick test_dlog_serialization_roundtrip;
          Alcotest.test_case "dlog rejects garbage" `Quick test_dlog_of_bytes_rejects_garbage;
          Alcotest.test_case "table serialization round-trip" `Quick test_table_serialization_roundtrip;
          Alcotest.test_case "cache round-trip + corruption" `Quick test_cache_roundtrip_and_corruption;
          Alcotest.test_case "cached vs rebuilt bit-identity" `Quick test_group_cache_bit_identity;
        ] );
    ]
