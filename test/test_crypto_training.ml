(* Flagship integration test: several rounds of real federated training
   where every aggregation step runs the complete cryptographic protocol
   (hybrid commitments, ZK proofs, secure aggregation) — no float-level
   shortcuts. Verifies that (a) crypto-FL training matches plaintext FL
   training bit-for-bit on the fixed-point grid, (b) the model actually
   learns, and (c) a poisoning client is excluded mid-training. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Fp = Encoding.Fixed_point
module F = Flsim

let n_clients = 4
let features = 6
let classes = 2
(* softmax on 6 features, 2 classes: d = 6*2 + 2 = 14 *)
let d = (features * classes) + classes

let params =
  Params.make ~n_clients ~max_malicious:1 ~d ~k:6 ~m_factor:64.0 ~bound_b:4000.0 ()

let setup = Setup.create ~label:"crypto-training" params
let fp = params.Params.fp

(* gradients are small floats; scale before encoding so the fixed-point
   grid resolves them *)
let grad_scale = 4.0

let encode_grad g = Fp.encode_vec fp (Array.map (fun x -> grad_scale *. x) g)
let decode_agg agg = Array.map (fun v -> Fp.decode fp v /. grad_scale) agg

let make_world seed =
  let drbg = Prng.Drbg.create_string seed in
  let data = F.Dataset.gaussian_blobs drbg ~n:400 ~features ~classes ~spread:0.4 in
  let train, test = F.Dataset.split drbg data ~test_fraction:0.25 in
  let parts = F.Dataset.partition train ~parts:n_clients in
  let model = F.Model.create drbg F.Model.Softmax ~n_features:features ~n_classes:classes in
  (parts, test, model, drbg)

let test_crypto_training_matches_plaintext () =
  let parts, test, model, drbg = make_world "ct-match" in
  let model_plain = F.Model.create (Prng.Drbg.create_string "ct-match") F.Model.Softmax ~n_features:features ~n_classes:classes in
  F.Model.set_params model_plain (F.Model.params model);
  let session = Driver.create_session setup ~seed:"ct-match-session" in
  let rounds = 3 in
  for round = 1 to rounds do
    let grads = Array.map (fun part -> F.Model.gradient model part ~batch:None drbg) parts in
    let updates = Array.map encode_grad grads in
    (* plaintext reference: aggregate the *quantized* gradients, exactly
       what the crypto pipeline transports *)
    let plain_sum = Array.init d (fun l -> Array.fold_left (fun a u -> a + u.(l)) 0 updates) in
    let stats = Driver.run_round session ~updates ~behaviours:(Driver.honest_all n_clients) ~round in
    (match stats.Driver.aggregate with
    | None -> Alcotest.fail "aggregation failed"
    | Some agg ->
        Alcotest.(check (array int)) (Printf.sprintf "round %d exact" round) plain_sum agg;
        let step = Array.map (fun x -> x /. float_of_int n_clients) (decode_agg agg) in
        F.Model.step model step ~lr:0.5;
        (* drive the plaintext twin with the identical decoded aggregate *)
        F.Model.step model_plain step ~lr:0.5);
    Alcotest.(check (list int)) (Printf.sprintf "round %d no flags" round) [] stats.Driver.flagged
  done;
  (* both models saw identical updates *)
  Alcotest.(check bool) "models identical" true (F.Model.params model = F.Model.params model_plain);
  let acc = F.Model.accuracy model test in
  Alcotest.(check bool) (Printf.sprintf "learned: acc %.3f" acc) true (acc > 0.8)

let test_crypto_training_excludes_attacker () =
  let parts, test, model, drbg = make_world "ct-attack" in
  let session = Driver.create_session setup ~seed:"ct-attack-session" in
  let flagged_rounds = ref 0 in
  for round = 1 to 3 do
    let grads = Array.map (fun part -> F.Model.gradient model part ~batch:None drbg) parts in
    let updates = Array.map encode_grad grads in
    let behaviours = Driver.honest_all n_clients in
    (* client 2 mounts a huge sign-flip every round *)
    let norm = Fp.l2_norm_encoded updates.(1) in
    if norm > 0.0 then begin
      let factor = -.(80.0 *. params.Params.bound_b /. norm) in
      updates.(1) <- Array.map (fun x -> int_of_float (factor *. float_of_int x)) updates.(1);
      behaviours.(1) <- Driver.Oversized 80.0
    end;
    let stats = Driver.run_round session ~updates ~behaviours ~round in
    if List.mem 2 stats.Driver.flagged then incr flagged_rounds;
    match stats.Driver.aggregate with
    | None -> Alcotest.fail "aggregation failed"
    | Some agg ->
        (* the aggregate must equal the honest clients' sum exactly *)
        let honest_sum =
          Array.init d (fun l -> updates.(0).(l) + updates.(2).(l) + updates.(3).(l))
        in
        Alcotest.(check (array int)) (Printf.sprintf "round %d honest-only" round) honest_sum agg;
        let step = Array.map (fun x -> x /. 3.0) (decode_agg agg) in
        F.Model.step model step ~lr:0.5
  done;
  Alcotest.(check int) "attacker flagged every round" 3 !flagged_rounds;
  let acc = F.Model.accuracy model test in
  Alcotest.(check bool) (Printf.sprintf "still learned: acc %.3f" acc) true (acc > 0.8)

let () =
  Alcotest.run "crypto-training"
    [
      ( "federated",
        [
          Alcotest.test_case "crypto == plaintext on the fixed-point grid" `Quick
            test_crypto_training_matches_plaintext;
          Alcotest.test_case "attacker excluded across rounds" `Quick
            test_crypto_training_excludes_attacker;
        ] );
    ]
