(* Tests for the arbitrary-precision integer substrate.

   Strategy: unit tests pin down edge cases and known values; qcheck
   properties check the ring axioms and the division identity against an
   independent witness (native [int] arithmetic on small values, and
   algebraic identities on large ones). *)

module B = Bigint

let check_b msg expected actual =
  Alcotest.(check string) msg (B.to_string expected) (B.to_string actual)

let bi = B.of_int

(* --- generators --- *)

let gen_small = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

let gen_big =
  (* random signed integer up to ~400 bits *)
  let open QCheck2.Gen in
  let* n = int_range 1 16 in
  let* limbs = list_repeat n (int_bound ((1 lsl 26) - 1)) in
  let* negp = bool in
  return (B.of_limbs ~neg:negp (Array.of_list limbs))

let gen_big_pos = QCheck2.Gen.map B.abs gen_big

(* --- unit tests --- *)

let test_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (B.to_int (bi n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 40 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-987654321098765432109876543210" ]

let test_hex_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_hex (B.of_hex s)))
    [ "0"; "1"; "ff"; "deadbeefcafebabe123456789abcdef0"; "-abc123" ]

let test_hex_vs_dec () =
  check_b "0x100" (bi 256) (B.of_hex "100");
  check_b "2^255-19" (B.sub (B.shift_left B.one 255) (bi 19))
    (B.of_hex "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")

let test_add_carry () =
  let x = B.sub (B.shift_left B.one 260) B.one in
  check_b "(2^260-1)+1" (B.shift_left B.one 260) (B.add x B.one)

let test_sub_borrow () =
  let x = B.shift_left B.one 260 in
  check_b "2^260-1" (B.sub x B.one) (B.of_hex (String.make 65 'f'));
  check_b "a-a" B.zero (B.sub x x)

let test_mul_known () =
  check_b "small" (bi 56088) (B.mul (bi 123) (bi 456));
  let a = B.of_string "123456789123456789123456789" in
  check_b "big square" (B.of_string "15241578780673678546105778281054720515622620750190521")
    (B.mul a a)

let test_divmod_known () =
  let a = B.of_string "10000000000000000000000000000000000" in
  let b = B.of_string "333333333333333" in
  let q, r = B.divmod a b in
  check_b "reassemble" a (B.add (B.mul q b) r);
  Alcotest.(check bool) "remainder bound" true (B.compare (B.abs r) (B.abs b) < 0)

let test_divmod_signs () =
  (* truncated division semantics, like OCaml's / and mod *)
  let cases = [ (7, 3); (-7, 3); (7, -3); (-7, -3) ] in
  List.iter
    (fun (a, b) ->
      let q, r = B.divmod (bi a) (bi b) in
      Alcotest.(check int) (Printf.sprintf "q %d/%d" a b) (a / b) (B.to_int q);
      Alcotest.(check int) (Printf.sprintf "r %d/%d" a b) (a mod b) (B.to_int r))
    cases

let test_div_by_zero () =
  Alcotest.check_raises "raise" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero))

let test_erem () =
  Alcotest.(check int) "erem -7 3" 2 (B.to_int (B.erem (bi (-7)) (bi 3)));
  Alcotest.(check int) "erem -7 -3" 2 (B.to_int (B.erem (bi (-7)) (bi (-3))))

let test_shifts () =
  check_b "shl" (bi 4096) (B.shift_left B.one 12);
  check_b "shr" (bi 1) (B.shift_right (bi 4096) 12);
  check_b "shr round to zero magnitude" (bi (-2)) (B.shift_right (bi (-5)) 1);
  let x = B.of_string "987654321987654321987654321" in
  check_b "shl/shr inverse" x (B.shift_right (B.shift_left x 113) 113)

let test_bit_length () =
  Alcotest.(check int) "bl 0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "bl 1" 1 (B.bit_length B.one);
  Alcotest.(check int) "bl 255" 8 (B.bit_length (bi 255));
  Alcotest.(check int) "bl 256" 9 (B.bit_length (bi 256));
  Alcotest.(check int) "bl 2^100" 101 (B.bit_length (B.shift_left B.one 100))

let test_mod_pow () =
  (* fermat: 2^(p-1) = 1 mod p for prime p *)
  let p = B.of_string "1000000007" in
  check_b "fermat" B.one (B.mod_pow (bi 2) (B.sub p B.one) p);
  check_b "zero exp" B.one (B.mod_pow (bi 5) B.zero p);
  (* 2^255-19 is prime *)
  let p25519 = B.sub (B.shift_left B.one 255) (bi 19) in
  check_b "fermat 25519" B.one (B.mod_pow (bi 3) (B.sub p25519 B.one) p25519)

let test_mod_inv () =
  let p = B.of_string "1000000007" in
  let a = B.of_string "123456789" in
  let inv = B.mod_inv a p in
  check_b "a * a^-1 = 1" B.one (B.erem (B.mul a inv) p);
  Alcotest.check_raises "no inverse" Not_found (fun () -> ignore (B.mod_inv (bi 6) (bi 9)))

let test_bytes_roundtrip () =
  let x = B.of_hex "0123456789abcdef0123456789abcdef01" in
  let b = B.to_bytes_le ~len:32 x in
  Alcotest.(check int) "len" 32 (Bytes.length b);
  check_b "roundtrip" x (B.of_bytes_le b)

let test_gcd () =
  Alcotest.(check int) "gcd" 6 (B.to_int (B.gcd (bi 48) (bi (-18))));
  Alcotest.(check int) "gcd 0" 5 (B.to_int (B.gcd (bi 0) (bi 5)))

let test_pow () =
  check_b "2^100" (B.shift_left B.one 100) (B.pow (bi 2) 100);
  check_b "x^0" B.one (B.pow (bi 12345) 0)

(* --- properties --- *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let props =
  [
    prop "add matches int" QCheck2.Gen.(pair gen_small gen_small) (fun (a, b) ->
        B.to_int (B.add (bi a) (bi b)) = a + b);
    prop "mul matches int" QCheck2.Gen.(pair gen_small gen_small) (fun (a, b) ->
        B.equal (B.mul (bi a) (bi b)) (B.mul (bi b) (bi a))
        && B.to_int_opt (B.mul (bi a) (bi b)) = Some (a * b));
    prop "add comm" QCheck2.Gen.(pair gen_big gen_big) (fun (a, b) -> B.equal (B.add a b) (B.add b a));
    prop "add assoc" QCheck2.Gen.(triple gen_big gen_big gen_big) (fun (a, b, c) ->
        B.equal (B.add (B.add a b) c) (B.add a (B.add b c)));
    prop "mul assoc" QCheck2.Gen.(triple gen_big gen_big gen_big) (fun (a, b, c) ->
        B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)));
    prop "distrib" QCheck2.Gen.(triple gen_big gen_big gen_big) (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "sub inverse" QCheck2.Gen.(pair gen_big gen_big) (fun (a, b) -> B.equal a (B.add (B.sub a b) b));
    prop "divmod identity" QCheck2.Gen.(pair gen_big gen_big) (fun (a, b) ->
        QCheck2.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0);
    prop "string roundtrip" gen_big (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "hex roundtrip" gen_big (fun a -> B.equal a (B.of_hex (B.to_hex a)));
    prop "bytes roundtrip" gen_big_pos (fun a ->
        let len = (B.bit_length a + 7) / 8 + 1 in
        B.equal a (B.of_bytes_le (B.to_bytes_le ~len a)));
    prop "shift_left is mul by 2^n" QCheck2.Gen.(pair gen_big (int_bound 200)) (fun (a, n) ->
        B.equal (B.shift_left a n) (B.mul a (B.pow B.two n)));
    prop "mod_pow matches naive" QCheck2.Gen.(triple gen_big_pos (int_bound 40) gen_big_pos) (fun (b, e, m) ->
        QCheck2.assume (B.sign m > 0);
        let naive = B.erem (B.pow b e) m in
        B.equal naive (B.mod_pow b (bi e) m));
    prop "mod_inv correct" gen_big_pos (fun a ->
        let p = B.of_string "57896044618658097711785492504343953926634992332820282019728792003956564819949" in
        QCheck2.assume (not (B.is_zero (B.erem a p)));
        B.equal B.one (B.erem (B.mul a (B.mod_inv a p)) p));
    prop "bit_length consistent" gen_big_pos (fun a ->
        QCheck2.assume (not (B.is_zero a));
        let n = B.bit_length a in
        B.testbit a (n - 1) && not (B.testbit a n));
  ]

let () =
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex vs dec" `Quick test_hex_vs_dec;
          Alcotest.test_case "add carry" `Quick test_add_carry;
          Alcotest.test_case "sub borrow" `Quick test_sub_borrow;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "erem" `Quick test_erem;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "bit length" `Quick test_bit_length;
          Alcotest.test_case "mod_pow" `Quick test_mod_pow;
          Alcotest.test_case "mod_inv" `Quick test_mod_inv;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
        ] );
      ("properties", props);
    ]
