(* lib/store unit + property tests: CRC32 vectors, append/replay
   round-trip, torn-tail tolerance, and CRC rejection of byte flips. *)

let fail fmt = Alcotest.failf fmt

let tmp () = Filename.temp_file "test-store" ".wal"

let with_wal ?fsync f =
  let path = tmp () in
  Sys.remove path;
  let wal = Store.Wal.open_ ?fsync path in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () ->
      f path wal)

let payload_of_string = Bytes.of_string

(* ------------------------------------------------------------------ *)
(* CRC32 *)

let test_crc_vectors () =
  (* the standard zlib CRC-32 check values *)
  let check s expect =
    let got = Store.Crc32.digest (Bytes.of_string s) in
    if got <> expect then fail "crc32 %S: got %08x, want %08x" s got expect
  in
  check "" 0x00000000;
  check "123456789" 0xCBF43926;
  check "The quick brown fox jumps over the lazy dog" 0x414FA339

let test_crc_sub () =
  let b = Bytes.of_string "xxhelloyy" in
  if Store.Crc32.digest_sub b 2 5 <> Store.Crc32.digest (Bytes.of_string "hello") then
    fail "digest_sub must equal digest of the slice"

(* ------------------------------------------------------------------ *)
(* append / replay round-trip *)

let test_roundtrip () =
  with_wal @@ fun path wal ->
  let recs = [ (1, "alpha"); (255, ""); (7, String.make 300 'z'); (3, "tail") ] in
  List.iter (fun (tag, p) -> Store.Wal.append wal ~tag (payload_of_string p)) recs;
  Store.Wal.close wal;
  let got, status = Store.Wal.replay path in
  if status <> Store.Wal.Complete then fail "clean log must replay Complete";
  let got = List.map (fun (_, tag, p) -> (tag, Bytes.to_string p)) got in
  if got <> recs then fail "replay must return the appended records in order"

let test_missing_file () =
  let got, status = Store.Wal.replay "/nonexistent/risefl.wal" in
  if got <> [] || status <> Store.Wal.Complete then
    fail "missing file reads as an empty complete log"

let test_reopen_appends () =
  with_wal @@ fun path wal ->
  Store.Wal.append wal ~tag:1 (payload_of_string "one");
  Store.Wal.close wal;
  let wal2 = Store.Wal.open_ path in
  Store.Wal.append wal2 ~tag:2 (payload_of_string "two");
  Store.Wal.close wal2;
  let got, status = Store.Wal.replay path in
  if status <> Store.Wal.Complete || List.length got <> 2 then
    fail "reopening must append, not truncate"

(* ------------------------------------------------------------------ *)
(* torn tails and corruption *)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd len;
  Unix.close fd

let test_torn_tail () =
  with_wal @@ fun path wal ->
  Store.Wal.append wal ~tag:1 (payload_of_string "first");
  Store.Wal.append wal ~tag:2 (payload_of_string "second-record-body");
  Store.Wal.close wal;
  let full = (Unix.stat path).Unix.st_size in
  (* cut mid-way through the second record: every cut point from the end
     of record 1 up to full-1 must keep record 1 and report Torn *)
  let first_end = 4 + 4 + 1 + 5 in
  for cut = first_end to full - 1 do
    truncate_file path cut;
    let got, status = Store.Wal.replay path in
    (match status with
    | Store.Wal.Torn _ -> ()
    | Store.Wal.Complete ->
        if cut <> first_end then fail "cut at %d of %d must report a torn tail" cut full);
    match got with
    | [ (_, 1, p) ] when Bytes.to_string p = "first" -> ()
    | _ -> fail "cut at %d: the intact first record must survive" cut
  done

let test_byte_flip_rejected () =
  (* flipping any single byte of a record must not yield a Complete
     replay of the original contents: either the scan stops (Torn) or
     the flipped record is absent *)
  with_wal @@ fun path wal ->
  Store.Wal.append wal ~tag:9 (payload_of_string "payload-under-test");
  Store.Wal.close wal;
  let original = In_channel.with_open_bin path In_channel.input_all in
  let size = String.length original in
  for i = 0 to size - 1 do
    let mutated = Bytes.of_string original in
    Bytes.set mutated i (Char.chr (Char.code original.[i] lxor 0x01));
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc mutated);
    let got, status = Store.Wal.replay path in
    match (got, status) with
    | [ (_, 9, p) ], Store.Wal.Complete when Bytes.to_string p = "payload-under-test" ->
        fail "byte flip at offset %d slipped past the CRC" i
    | _ -> ()
  done

let test_midlog_corruption () =
  (* the Epoch-record shape: a large record sandwiched mid-log (the
     elastic driver writes Epoch before Round_start). Corrupting any
     byte of it must stop the scan at the good prefix — the records
     behind it never replay, and the corrupt one never decodes as
     something else (a wrong cohort, at the Round_log layer). *)
  with_wal @@ fun path wal ->
  Store.Wal.append wal ~tag:1 (payload_of_string "round-end");
  let epoch_body = String.init 600 (fun i -> Char.chr (i mod 251)) in
  Store.Wal.append wal ~tag:8 (payload_of_string epoch_body);
  Store.Wal.append wal ~tag:2 (payload_of_string "round-start");
  Store.Wal.close wal;
  let original = In_channel.with_open_bin path In_channel.input_all in
  let first_end = 4 + 4 + 1 + String.length "round-end" in
  let mid_end = first_end + 4 + 4 + 1 + String.length epoch_body in
  (* byte-flip sweep over the middle record's span *)
  for i = first_end to mid_end - 1 do
    let mutated = Bytes.of_string original in
    Bytes.set mutated i (Char.chr (Char.code original.[i] lxor 0x41));
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc mutated);
    let got, _status = Store.Wal.replay path in
    match got with
    | [ (_, 1, p) ] when Bytes.to_string p = "round-end" -> ()
    | _ -> fail "flip at %d: exactly the good prefix must survive" i
  done;
  (* truncation sweep: any cut inside the middle record keeps record 1
     (downward, so each truncate only ever shortens the file) *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc original);
  for cut = mid_end - 1 downto first_end do
    truncate_file path cut;
    let got, status = Store.Wal.replay path in
    (match status with
    | Store.Wal.Torn _ -> ()
    | Store.Wal.Complete ->
        if cut <> first_end then fail "cut at %d must report a torn tail" cut);
    match got with
    | [ (_, 1, p) ] when Bytes.to_string p = "round-end" -> ()
    | _ -> fail "cut at %d: exactly the good prefix must survive" cut
  done

(* ------------------------------------------------------------------ *)
(* properties *)

let bytes_gen = QCheck2.Gen.(map Bytes.of_string (string_size (0 -- 512)))

let prop_roundtrip =
  QCheck2.Test.make ~name:"append/replay round-trip" ~count:30
    QCheck2.Gen.(list_size (0 -- 20) (pair (0 -- 255) bytes_gen))
    (fun recs ->
      let path = tmp () in
      Sys.remove path;
      let wal = Store.Wal.open_ ~fsync:false path in
      List.iter (fun (tag, p) -> Store.Wal.append wal ~tag p) recs;
      Store.Wal.close wal;
      let got, status = Store.Wal.replay path in
      Sys.remove path;
      status = Store.Wal.Complete
      && List.map (fun (_, tag, p) -> (tag, p)) got = recs)

let prop_truncation_keeps_prefix =
  QCheck2.Test.make ~name:"any truncation keeps a clean prefix" ~count:30
    QCheck2.Gen.(pair (list_size (1 -- 8) (pair (0 -- 255) bytes_gen)) (0 -- 10_000))
    (fun (recs, cut_raw) ->
      let path = tmp () in
      Sys.remove path;
      let wal = Store.Wal.open_ ~fsync:false path in
      List.iter (fun (tag, p) -> Store.Wal.append wal ~tag p) recs;
      Store.Wal.close wal;
      let size = (Unix.stat path).Unix.st_size in
      let cut = cut_raw mod (size + 1) in
      truncate_file path cut;
      let got, _status = Store.Wal.replay path in
      Sys.remove path;
      (* whatever replays must be a prefix of what was appended *)
      let rec is_prefix got recs =
        match (got, recs) with
        | [], _ -> true
        | (_, tag, p) :: g, (tag', p') :: r -> tag = tag' && Bytes.equal p p' && is_prefix g r
        | _ :: _, [] -> false
      in
      is_prefix got recs)

let () =
  Alcotest.run "store"
    [
      ( "crc32",
        [
          Alcotest.test_case "check vectors" `Quick test_crc_vectors;
          Alcotest.test_case "digest_sub" `Quick test_crc_sub;
        ] );
      ( "wal",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "reopen appends" `Quick test_reopen_appends;
          Alcotest.test_case "torn tail" `Quick test_torn_tail;
          Alcotest.test_case "byte flips rejected" `Quick test_byte_flip_rejected;
          Alcotest.test_case "mid-log corruption keeps the prefix" `Quick test_midlog_corruption;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_truncation_keeps_prefix ] );
    ]
