(* Curve25519 substrate tests: the field is cross-checked against the
   Bigint reference, the group against Ed25519 known answers and algebraic
   laws, MSM/Dlog/Gens against direct computation. *)

module Fe = Curve25519.Fe
module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm
module Dlog = Curve25519.Dlog
module Gens = Curve25519.Gens
module B = Bigint

let drbg = Prng.Drbg.create_string "test-curve"

let rand_fe () = Fe.of_bigint (B.random ~bits:300 (Prng.Drbg.rand26 drbg))
let rand_scalar () = Scalar.random drbg
let rand_point () = Point.mul_base (rand_scalar ())

let check_fe msg a b = Alcotest.(check string) msg (B.to_hex a) (B.to_hex b)

(* --- field --- *)

let fe_ref_op op a b = B.erem (op a b) Fe.p

let test_fe_roundtrip () =
  for _ = 1 to 50 do
    let x = B.erem (B.random ~bits:300 (Prng.Drbg.rand26 drbg)) Fe.p in
    check_fe "roundtrip" x (Fe.to_bigint (Fe.of_bigint x))
  done

let test_fe_ops_vs_bigint () =
  for _ = 1 to 100 do
    let a = rand_fe () and b = rand_fe () in
    let ab = Fe.to_bigint a and bb = Fe.to_bigint b in
    check_fe "add" (fe_ref_op B.add ab bb) (Fe.to_bigint (Fe.add a b));
    check_fe "sub" (fe_ref_op B.sub ab bb) (Fe.to_bigint (Fe.sub a b));
    check_fe "mul" (fe_ref_op B.mul ab bb) (Fe.to_bigint (Fe.mul a b));
    check_fe "square" (fe_ref_op B.mul ab ab) (Fe.to_bigint (Fe.square a));
    check_fe "neg" (B.erem (B.neg ab) Fe.p) (Fe.to_bigint (Fe.neg a))
  done

let test_fe_invert () =
  for _ = 1 to 20 do
    let a = rand_fe () in
    if not (Fe.is_zero a) then
      check_fe "a * a^-1" B.one (Fe.to_bigint (Fe.mul a (Fe.invert a)))
  done;
  Alcotest.(check bool) "inv 0 = 0" true (Fe.is_zero (Fe.invert Fe.zero))

let test_fe_mul_small () =
  for _ = 1 to 20 do
    let a = rand_fe () in
    let c = Prng.Drbg.bits drbg 29 in
    check_fe "mul_small"
      (B.erem (B.mul (Fe.to_bigint a) (B.of_int c)) Fe.p)
      (Fe.to_bigint (Fe.mul_small a c))
  done

let test_fe_sqrt_m1 () =
  check_fe "sqrt(-1)^2 = -1" (B.sub Fe.p B.one) (Fe.to_bigint (Fe.square Fe.sqrt_m1))

let test_fe_edwards_d () =
  (* d = -121665/121666: check 121666 * d = -121665 *)
  check_fe "121666 d = -121665"
    (B.erem (B.of_int (-121665)) Fe.p)
    (Fe.to_bigint (Fe.mul_small Fe.edwards_d 121666))

let test_fe_canonical_encoding () =
  (* p encodes as 0, p+1 as 1 *)
  check_fe "p = 0" B.zero (Fe.to_bigint (Fe.of_bigint Fe.p));
  let pp1 = Fe.of_bytes (B.to_bytes_le ~len:32 (B.add Fe.p B.one)) in
  check_fe "p+1 = 1" B.one (Fe.to_bigint pp1)

(* --- scalar --- *)

let test_scalar_ops () =
  for _ = 1 to 100 do
    let a = rand_scalar () and b = rand_scalar () in
    let ab = Scalar.to_bigint a and bb = Scalar.to_bigint b in
    let refop op = B.erem (op ab bb) Scalar.order in
    check_fe "add" (refop B.add) (Scalar.to_bigint (Scalar.add a b));
    check_fe "sub" (refop B.sub) (Scalar.to_bigint (Scalar.sub a b));
    check_fe "mul" (refop B.mul) (Scalar.to_bigint (Scalar.mul a b))
  done

let test_scalar_inv () =
  for _ = 1 to 20 do
    let a = rand_scalar () in
    if not (Scalar.is_zero a) then
      check_fe "inv" B.one (Scalar.to_bigint (Scalar.mul a (Scalar.inv a)))
  done

let test_scalar_mul_small () =
  for _ = 1 to 40 do
    let a = rand_scalar () in
    let c = Prng.Drbg.bits drbg 30 - (1 lsl 29) in
    check_fe "mul_small"
      (B.erem (B.mul (Scalar.to_bigint a) (B.of_int c)) Scalar.order)
      (Scalar.to_bigint (Scalar.mul_small a c))
  done

let test_scalar_signed () =
  Alcotest.(check int) "small" 42 (Scalar.to_int_signed (Scalar.of_int 42));
  Alcotest.(check int) "negative" (-42) (Scalar.to_int_signed (Scalar.of_int (-42)));
  Alcotest.(check int) "zero" 0 (Scalar.to_int_signed Scalar.zero)

let test_scalar_bytes () =
  for _ = 1 to 20 do
    let a = rand_scalar () in
    Alcotest.(check bool) "roundtrip" true (Scalar.equal a (Scalar.of_bytes (Scalar.to_bytes a)))
  done;
  (* non-canonical rejected: l itself *)
  Alcotest.check_raises "l rejected" (Invalid_argument "Scalar.of_bytes: non-canonical") (fun () ->
      ignore (Scalar.of_bytes (B.to_bytes_le ~len:32 Scalar.order)))

let test_scalar_dot_ints () =
  for _ = 1 to 20 do
    let n = 1 + Prng.Drbg.uniform_int drbg 200 in
    let a = Array.init n (fun _ -> Prng.Drbg.bits drbg 28 - (1 lsl 27)) in
    let u = Array.init n (fun _ -> Prng.Drbg.bits drbg 17 - (1 lsl 16)) in
    let expected =
      Array.to_list (Array.mapi (fun i x -> B.mul (B.of_int x) (B.of_int u.(i))) a)
      |> List.fold_left B.add B.zero
    in
    check_fe "dot" (B.erem expected Scalar.order) (Scalar.to_bigint (Scalar.dot_ints a u))
  done

(* --- point --- *)

let test_base_point_encoding () =
  let enc = Point.compress Point.base in
  let hex = String.concat "" (List.init 32 (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get enc i)))) in
  Alcotest.(check string) "B compressed" "5866666666666666666666666666666666666666666666666666666666666666" hex

let test_base_order () =
  (* l * B = identity *)
  let lm1 = Scalar.of_bigint (B.sub Scalar.order B.one) in
  let p = Point.add (Point.mul lm1 Point.base) Point.base in
  Alcotest.(check bool) "l B = 0" true (Point.is_identity p)

let test_add_laws () =
  for _ = 1 to 20 do
    let p = rand_point () and q = rand_point () and r = rand_point () in
    Alcotest.(check bool) "comm" true (Point.equal (Point.add p q) (Point.add q p));
    Alcotest.(check bool) "assoc" true
      (Point.equal (Point.add (Point.add p q) r) (Point.add p (Point.add q r)));
    Alcotest.(check bool) "identity" true (Point.equal p (Point.add p Point.identity));
    Alcotest.(check bool) "inverse" true (Point.is_identity (Point.add p (Point.neg p)));
    Alcotest.(check bool) "double" true (Point.equal (Point.double p) (Point.add p p))
  done

let test_mul_linear () =
  for _ = 1 to 10 do
    let s = rand_scalar () and t = rand_scalar () in
    let p = rand_point () in
    (* (s+t) P = sP + tP *)
    Alcotest.(check bool) "distributes" true
      (Point.equal (Point.mul (Scalar.add s t) p) (Point.add (Point.mul s p) (Point.mul t p)));
    (* s(tP) = (st)P *)
    Alcotest.(check bool) "assoc" true
      (Point.equal (Point.mul s (Point.mul t p)) (Point.mul (Scalar.mul s t) p))
  done

let test_mul_edgecases () =
  let p = rand_point () in
  Alcotest.(check bool) "0 P" true (Point.is_identity (Point.mul Scalar.zero p));
  Alcotest.(check bool) "1 P" true (Point.equal p (Point.mul Scalar.one p));
  Alcotest.(check bool) "0 small" true (Point.is_identity (Point.mul_small 0 p));
  Alcotest.(check bool) "neg small" true (Point.equal (Point.neg p) (Point.mul_small (-1) p));
  Alcotest.(check bool) "7 small" true (Point.equal (Point.mul (Scalar.of_int 7) p) (Point.mul_small 7 p))

let test_mul_base_table () =
  for _ = 1 to 10 do
    let s = rand_scalar () in
    Alcotest.(check bool) "fixed = generic" true
      (Point.equal (Point.mul_base s) (Point.mul s Point.base))
  done

let test_table_arbitrary_base () =
  let p = rand_point () in
  let tbl = Point.Table.make p in
  for _ = 1 to 10 do
    let s = rand_scalar () in
    Alcotest.(check bool) "table mul" true (Point.equal (Point.Table.mul tbl s) (Point.mul s p))
  done;
  for _ = 1 to 10 do
    let n = Prng.Drbg.bits drbg 20 - (1 lsl 19) in
    Alcotest.(check bool) "table mul_small" true
      (Point.equal (Point.Table.mul_small tbl n) (Point.mul_small n p))
  done

let test_compress_roundtrip () =
  for _ = 1 to 20 do
    let p = rand_point () in
    match Point.decompress (Point.compress p) with
    | Some q -> Alcotest.(check bool) "roundtrip" true (Point.equal p q)
    | None -> Alcotest.fail "decompress failed"
  done

let test_decompress_rejects_garbage () =
  (* a y with no valid x: iterate until we find some rejected encodings *)
  let rejected = ref 0 in
  for i = 0 to 40 do
    let b = Prng.Drbg.bytes drbg 32 in
    Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 0x7f));
    (match Point.decompress_unchecked b with
    | None -> incr rejected
    | Some _ -> ());
    ignore i
  done;
  Alcotest.(check bool) "some rejected" true (!rejected > 5)

let test_decompress_rejects_noncanonical () =
  (* encoding of p+1 (= field value 1, non-canonical) must be rejected *)
  let bad = B.to_bytes_le ~len:32 (B.add Fe.p B.one) in
  Alcotest.(check bool) "non-canonical" true (Point.decompress_unchecked bad = None)

let test_double_mul () =
  for _ = 1 to 10 do
    let s = rand_scalar () and t = rand_scalar () in
    let p = rand_point () and q = rand_point () in
    Alcotest.(check bool) "double_mul" true
      (Point.equal (Point.double_mul s p t q) (Point.add (Point.mul s p) (Point.mul t q)))
  done

(* --- msm --- *)

let naive_msm pairs =
  Array.fold_left (fun acc (s, p) -> Point.add acc (Point.mul s p)) Point.identity pairs

let test_msm_matches_naive () =
  List.iter
    (fun n ->
      let pairs = Array.init n (fun _ -> (rand_scalar (), rand_point ())) in
      Alcotest.(check bool) (Printf.sprintf "msm n=%d" n) true
        (Point.equal (Msm.msm pairs) (naive_msm pairs)))
    [ 0; 1; 2; 3; 7; 32; 100 ]

let test_msm_small_matches_naive () =
  List.iter
    (fun n ->
      let pairs = Array.init n (fun _ -> (Prng.Drbg.bits drbg 25 - (1 lsl 24), rand_point ())) in
      let expected =
        Array.fold_left (fun acc (e, p) -> Point.add acc (Point.mul_small e p)) Point.identity pairs
      in
      Alcotest.(check bool) (Printf.sprintf "msm_small n=%d" n) true
        (Point.equal (Msm.msm_small pairs) expected))
    [ 0; 1; 2; 5; 33; 100 ]

let test_msm_zero_exponents () =
  let pairs = Array.init 5 (fun _ -> (Scalar.zero, rand_point ())) in
  Alcotest.(check bool) "all zero" true (Point.is_identity (Msm.msm pairs));
  let pairs = Array.init 5 (fun _ -> (0, rand_point ())) in
  Alcotest.(check bool) "all zero small" true (Point.is_identity (Msm.msm_small pairs))

(* --- dlog --- *)

let test_dlog_solves () =
  let solver = Dlog.create ~base:Point.base ~max_abs:5000 () in
  List.iter
    (fun x ->
      let p = Point.mul_small x Point.base in
      Alcotest.(check int) (Printf.sprintf "dlog %d" x) x (Dlog.solve_exn solver p))
    [ 0; 1; -1; 4999; -5000; 5000; 1234; -987 ]

let test_dlog_solve_many () =
  let solver = Dlog.create ~base:Point.base ~max_abs:2000 () in
  let xs = [| 0; 17; -1999; 2000; -3; 555 |] in
  let targets = Array.map (fun x -> Point.mul_small x Point.base) xs in
  let solved = Dlog.solve_many solver targets in
  Array.iteri
    (fun i v -> Alcotest.(check (option int)) (Printf.sprintf "x=%d" xs.(i)) (Some xs.(i)) v)
    solved;
  (* mixed solvable/unsolvable *)
  let mixed = [| Point.mul_small 5 Point.base; Point.mul_small 9999 Point.base |] in
  let solved = Dlog.solve_many solver mixed in
  Alcotest.(check (option int)) "solvable" (Some 5) solved.(0);
  Alcotest.(check (option int)) "unsolvable" None solved.(1)

let test_compress_batch () =
  let pts = Array.init 17 (fun i -> Point.mul_small (i * 31) Point.base) in
  let batch = Point.compress_batch pts in
  Array.iteri
    (fun i b ->
      Alcotest.(check bool) (Printf.sprintf "point %d" i) true (Bytes.equal b (Point.compress pts.(i))))
    batch;
  Alcotest.(check int) "empty" 0 (Array.length (Point.compress_batch [||]))

let test_fe_invert_batch () =
  let xs = Array.init 9 (fun i -> if i = 4 then Fe.zero else Fe.of_int (i + 1)) in
  let invs = Fe.invert_batch xs in
  Array.iteri
    (fun i inv ->
      if i = 4 then Alcotest.(check bool) "zero stays zero" true (Fe.is_zero inv)
      else Alcotest.(check bool) (Printf.sprintf "inv %d" i) true (Fe.equal Fe.one (Fe.mul xs.(i) inv)))
    invs

let test_dlog_out_of_range () =
  let solver = Dlog.create ~base:Point.base ~max_abs:100 () in
  let p = Point.mul_small 101 Point.base in
  Alcotest.(check bool) "out of range" true (Dlog.solve solver p = None)

(* --- gens --- *)

let test_gens_deterministic_and_distinct () =
  let g1 = Gens.derive "alpha" in
  let g1' = Gens.derive "alpha" in
  let g2 = Gens.derive "beta" in
  Alcotest.(check bool) "deterministic" true (Point.equal g1 g1');
  Alcotest.(check bool) "distinct" false (Point.equal g1 g2);
  let many = Gens.derive_many "w" 16 in
  Alcotest.(check int) "count" 16 (Array.length many);
  (* pairwise distinct *)
  Array.iteri
    (fun i p ->
      Array.iteri (fun j q -> if i < j then Alcotest.(check bool) "pair distinct" false (Point.equal p q)) many;
      Alcotest.(check bool) "not identity" false (Point.is_identity p))
    many

let test_gens_in_subgroup () =
  let g = Gens.derive "subgroup-check" in
  let lm1 = Scalar.of_bigint (B.sub Scalar.order B.one) in
  Alcotest.(check bool) "l g = 0" true (Point.is_identity (Point.add (Point.mul lm1 g) g))

let () =
  Alcotest.run "curve25519"
    [
      ( "fe",
        [
          Alcotest.test_case "roundtrip" `Quick test_fe_roundtrip;
          Alcotest.test_case "ops vs bigint" `Quick test_fe_ops_vs_bigint;
          Alcotest.test_case "invert" `Quick test_fe_invert;
          Alcotest.test_case "mul_small" `Quick test_fe_mul_small;
          Alcotest.test_case "sqrt(-1)" `Quick test_fe_sqrt_m1;
          Alcotest.test_case "edwards d" `Quick test_fe_edwards_d;
          Alcotest.test_case "canonical encoding" `Quick test_fe_canonical_encoding;
        ] );
      ( "scalar",
        [
          Alcotest.test_case "ops vs bigint" `Quick test_scalar_ops;
          Alcotest.test_case "inv" `Quick test_scalar_inv;
          Alcotest.test_case "mul_small" `Quick test_scalar_mul_small;
          Alcotest.test_case "signed" `Quick test_scalar_signed;
          Alcotest.test_case "bytes" `Quick test_scalar_bytes;
          Alcotest.test_case "dot_ints" `Quick test_scalar_dot_ints;
        ] );
      ( "point",
        [
          Alcotest.test_case "base encoding" `Quick test_base_point_encoding;
          Alcotest.test_case "base order" `Quick test_base_order;
          Alcotest.test_case "group laws" `Quick test_add_laws;
          Alcotest.test_case "mul linear" `Quick test_mul_linear;
          Alcotest.test_case "mul edge cases" `Quick test_mul_edgecases;
          Alcotest.test_case "fixed-base table" `Quick test_mul_base_table;
          Alcotest.test_case "arbitrary-base table" `Quick test_table_arbitrary_base;
          Alcotest.test_case "compress roundtrip" `Quick test_compress_roundtrip;
          Alcotest.test_case "reject garbage" `Quick test_decompress_rejects_garbage;
          Alcotest.test_case "reject non-canonical" `Quick test_decompress_rejects_noncanonical;
          Alcotest.test_case "double_mul" `Quick test_double_mul;
        ] );
      ( "msm",
        [
          Alcotest.test_case "matches naive" `Quick test_msm_matches_naive;
          Alcotest.test_case "small matches naive" `Quick test_msm_small_matches_naive;
          Alcotest.test_case "zero exponents" `Quick test_msm_zero_exponents;
        ] );
      ( "dlog",
        [
          Alcotest.test_case "solves" `Quick test_dlog_solves;
          Alcotest.test_case "solve_many" `Quick test_dlog_solve_many;
          Alcotest.test_case "compress batch" `Quick test_compress_batch;
          Alcotest.test_case "fe invert batch" `Quick test_fe_invert_batch;
          Alcotest.test_case "out of range" `Quick test_dlog_out_of_range;
        ] );
      ( "gens",
        [
          Alcotest.test_case "deterministic distinct" `Quick test_gens_deterministic_and_distinct;
          Alcotest.test_case "in subgroup" `Quick test_gens_in_subgroup;
        ] );
    ]
