(* Telemetry subsystem tests: the operation counters are an *invariant*
   of the protocol, not of its schedule — the same round must report the
   same counts at any job count; disabling telemetry must make every
   call a no-op; snapshots must survive a JSON round-trip; and the
   measured costs must agree with the paper's Table 1 within the
   documented tolerance bands (Table1_check). *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Table1_check = Risefl_core.Table1_check

(* --- clock --- *)

let test_clock_monotonic () =
  let a = Telemetry.Clock.now_ns () in
  let x = ref 0 in
  for i = 1 to 10_000 do
    x := !x + i
  done;
  ignore !x;
  let b = Telemetry.Clock.now_ns () in
  Alcotest.(check bool) "monotonic" true (Int64.compare b a >= 0);
  let r, dt = Telemetry.Clock.time (fun () -> 42) in
  Alcotest.(check int) "time returns value" 42 r;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0)

(* --- enabled/disabled discipline --- *)

let test_disabled_noop () =
  Telemetry.reset ();
  Telemetry.disable ();
  let c = Telemetry.Counter.make "test.disabled" in
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "disabled counter stays 0" 0 (Telemetry.Counter.value c);
  let r = Telemetry.Span.with_ "test.span" (fun () -> "thunk") in
  Alcotest.(check string) "disabled span passes value" "thunk" r;
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no spans recorded" 0 (List.length snap.Telemetry.spans)

let test_enabled_counts () =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  let c = Telemetry.Counter.make "test.enabled" in
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "counts" 42 (Telemetry.Counter.value c);
  let c' = Telemetry.Counter.make "test.enabled" in
  Telemetry.Counter.incr c';
  Alcotest.(check int) "make is idempotent per name" 43 (Telemetry.Counter.value c)

(* --- sharded counters under the parallel runtime --- *)

let test_parallel_counts () =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  let c = Telemetry.Counter.make "test.parallel" in
  let n = 10_000 in
  Parallel.parallel_for ~jobs:4 ~min_chunk:1 ~lo:0 ~hi:n (fun lo hi ->
      for _ = lo to hi - 1 do
        Telemetry.Counter.incr c
      done);
  Alcotest.(check int) "shards merge to the exact total" n (Telemetry.Counter.value c)

(* --- span nesting, attribution, JSON round-trip --- *)

let test_span_json_roundtrip () =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  let c = Telemetry.Counter.make "test.roundtrip" in
  Telemetry.Counter.add c 7;
  Telemetry.Span.with_ ~attrs:[ ("round", "1") ] "outer" (fun () ->
      Telemetry.Span.with_ ~attrs:[ ("stage", "commit"); ("role", "client") ] "inner" (fun () ->
          ()));
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "two spans" 2 (List.length snap.Telemetry.spans);
  let inner =
    List.find (fun s -> List.mem "inner" s.Telemetry.path) snap.Telemetry.spans
  in
  Alcotest.(check (list string)) "nested path" [ "outer"; "inner" ] inner.Telemetry.path;
  Alcotest.(check (option string)) "attr kept" (Some "commit")
    (List.assoc_opt "stage" inner.Telemetry.attrs);
  let json = Telemetry.snapshot_to_json snap in
  let text = Telemetry.Json.to_string json in
  match Telemetry.Json.parse text with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok json' -> (
      match Telemetry.snapshot_of_json json' with
      | Error e -> Alcotest.fail ("of_json failed: " ^ e)
      | Ok snap' ->
          Alcotest.(check int) "counter survives round-trip" 7
            (try List.assoc "test.roundtrip" snap'.Telemetry.counters with Not_found -> -1);
          Alcotest.(check int) "spans survive round-trip"
            (List.length snap.Telemetry.spans)
            (List.length snap'.Telemetry.spans);
          let inner' =
            List.find (fun s -> List.mem "inner" s.Telemetry.path) snap'.Telemetry.spans
          in
          Alcotest.(check (list string)) "path round-trips" inner.Telemetry.path
            inner'.Telemetry.path;
          Alcotest.(check (option string)) "attrs round-trip" (Some "client")
            (List.assoc_opt "role" inner'.Telemetry.attrs))

(* --- jobs-invariance: the tentpole property --- *)

(* Configuration chosen so the round's largest MSM stays under the
   2*Msm.seq_cutoff single-chunk threshold: chunk counts (and hence every
   counter) are then schedule-independent at any job count. *)
let round_snapshot ~jobs =
  Parallel.set_default_jobs jobs;
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  let n = 3 and d = 32 and k = 4 in
  let params =
    Params.make ~n_clients:n ~max_malicious:1 ~d ~k ~b_ip_bits:16 ~b_max_bits:64 ~m_factor:4.0
      ~bound_b:250.0 ()
  in
  let setup = Setup.create ~label:"test-telemetry-jobs" params in
  let updates =
    Array.init n (fun i -> Array.init d (fun l -> ((i * 17) + (l * 5) + 1) mod 60 - 30))
  in
  let session = Driver.create_session setup ~seed:"telemetry-jobs" in
  let stats =
    Driver.run_round ~serialize:true session ~updates ~behaviours:(Driver.honest_all n) ~round:1
  in
  (Telemetry.snapshot (), stats)

let test_jobs_invariant () =
  let prev_jobs = Parallel.default_jobs () in
  Fun.protect ~finally:(fun () -> Parallel.set_default_jobs prev_jobs) @@ fun () ->
  let snap1, stats1 = round_snapshot ~jobs:1 in
  let counters1 = List.sort compare snap1.Telemetry.counters in
  Alcotest.(check bool) "point ops counted" true
    (List.assoc "point.add" counters1 > 0 && List.assoc "point.scalarmul" counters1 > 0);
  Alcotest.(check bool) "wire bytes counted" true (List.assoc "wire.commit.bytes" counters1 > 0);
  Alcotest.(check bool) "hash blocks counted" true (List.assoc "sha256.blocks" counters1 > 0);
  Alcotest.(check bool) "drbg bytes counted" true (List.assoc "drbg.bytes" counters1 > 0);
  List.iter
    (fun jobs ->
      let snap, stats = round_snapshot ~jobs in
      let counters = List.sort compare snap.Telemetry.counters in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "counters identical at jobs=%d" jobs)
        counters1 counters;
      Alcotest.(check (list int))
        (Printf.sprintf "verdict identical at jobs=%d" jobs)
        stats1.Driver.flagged stats.Driver.flagged;
      Alcotest.(check (option (array int)))
        (Printf.sprintf "aggregate identical at jobs=%d" jobs)
        stats1.Driver.aggregate stats.Driver.aggregate)
    [ 2; 4 ]

(* --- cost-model agreement (the executable Table 1) --- *)

let test_table1_agreement () =
  let report = Table1_check.run () in
  if not report.Table1_check.all_ok then
    Alcotest.fail ("Table 1 cross-check failed:\n" ^ Table1_check.to_table report);
  Alcotest.(check bool) "all gated stages within band" true report.Table1_check.all_ok

let () =
  Alcotest.run "telemetry"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic + time" `Quick test_clock_monotonic ] );
      ( "counters",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "enabled counts" `Quick test_enabled_counts;
          Alcotest.test_case "sharded merge under parallel_for" `Quick test_parallel_counts;
        ] );
      ( "spans",
        [ Alcotest.test_case "nesting + JSON round-trip" `Quick test_span_json_roundtrip ] );
      ( "invariance",
        [ Alcotest.test_case "op counts are jobs-invariant" `Slow test_jobs_invariant ] );
      ( "table1",
        [ Alcotest.test_case "measured costs match the cost model" `Slow test_table1_agreement ] );
    ]
