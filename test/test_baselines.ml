(* Baseline-system tests: four-square decomposition, PRG-SecAgg masks,
   and full honest/cheating iterations of RoFL, ACORN and EIFFeL. *)

module Scalar = Curve25519.Scalar
module B = Bigint
module Foursquare = Baselines.Foursquare
module Secagg = Baselines.Secagg_mask
module Rofl = Baselines.Rofl
module Acorn = Baselines.Acorn
module Eiffel = Baselines.Eiffel

let drbg = Prng.Drbg.create_string "test-baselines"

(* --- four squares --- *)

let test_isqrt () =
  List.iter
    (fun (n, want) -> Alcotest.(check int) (string_of_int n) want (B.to_int (Foursquare.isqrt (B.of_int n))))
    [ (0, 0); (1, 1); (2, 1); (3, 1); (4, 2); (15, 3); (16, 4); (1000000, 1000); (999999, 999) ];
  let big = B.of_string "123456789123456789123456789" in
  let r = Foursquare.isqrt big in
  Alcotest.(check bool) "r^2 <= n" true (B.compare (B.mul r r) big <= 0);
  let r1 = B.add r B.one in
  Alcotest.(check bool) "(r+1)^2 > n" true (B.compare (B.mul r1 r1) big > 0)

let test_miller_rabin () =
  let primes = [ 2; 3; 5; 101; 7919; 1000003; 1000000007 ] in
  let composites = [ 4; 9; 1001; 7917; 561 (* carmichael *); 1000001 ] in
  List.iter
    (fun p -> Alcotest.(check bool) (string_of_int p) true (Foursquare.is_probable_prime drbg (B.of_int p)))
    primes;
  List.iter
    (fun c -> Alcotest.(check bool) (string_of_int c) false (Foursquare.is_probable_prime drbg (B.of_int c)))
    composites;
  (* the curve group order is prime *)
  Alcotest.(check bool) "l prime" true (Foursquare.is_probable_prime drbg Scalar.order)

let test_foursquare_known () =
  List.iter
    (fun n ->
      let a, b, c, d = Foursquare.decompose drbg (B.of_int n) in
      let sum = List.fold_left B.add B.zero (List.map (fun v -> B.mul v v) [ a; b; c; d ]) in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) n (B.to_int sum))
    [ 0; 1; 2; 3; 7; 15; 28; 112; 4095; 123456; 999999937; 1 lsl 40; (1 lsl 40) + 7 ]

let gen_nonneg =
  let open QCheck2.Gen in
  let* bits = int_range 1 80 in
  let* limbs = list_repeat ((bits / 26) + 1) (int_bound ((1 lsl 26) - 1)) in
  return (B.erem (B.of_limbs ~neg:false (Array.of_list limbs)) (B.shift_left B.one bits))

let prop_foursquare =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"decompose sums of squares" gen_nonneg (fun n ->
         let a, b, c, d = Foursquare.decompose drbg n in
         B.equal n (List.fold_left B.add B.zero (List.map (fun v -> B.mul v v) [ a; b; c; d ]))))

(* --- robust interpolation (Berlekamp-Welch) --- *)

module RI = Baselines.Robust_interp

let rand_poly deg = Array.init (deg + 1) (fun _ -> Scalar.random drbg)

let test_solve_linear () =
  (* 2x2 system: x + 2y = 5, 3x + 4y = 11 -> x=1, y=2 *)
  let sc = Scalar.of_int in
  let m = [| [| sc 1; sc 2 |]; [| sc 3; sc 4 |] |] in
  (match RI.solve_linear m [| sc 5; sc 11 |] with
  | Some x ->
      Alcotest.(check bool) "x=1" true (Scalar.equal x.(0) (sc 1));
      Alcotest.(check bool) "y=2" true (Scalar.equal x.(1) (sc 2))
  | None -> Alcotest.fail "no solution");
  (* inconsistent: x + y = 1, x + y = 2 *)
  let m = [| [| sc 1; sc 1 |]; [| sc 1; sc 1 |] |] in
  Alcotest.(check bool) "inconsistent" true (RI.solve_linear m [| sc 1; sc 2 |] = None);
  (* underdetermined: one equation, two unknowns -> some solution *)
  let m = [| [| sc 2; sc 3 |] |] in
  (match RI.solve_linear m [| sc 7 |] with
  | Some x ->
      Alcotest.(check bool) "satisfies" true
        (Scalar.equal (Scalar.add (Scalar.mul (sc 2) x.(0)) (Scalar.mul (sc 3) x.(1))) (sc 7))
  | None -> Alcotest.fail "underdetermined should solve")

let test_bw_no_errors () =
  let deg = 4 in
  let p = rand_poly deg in
  let points = List.init 9 (fun i -> (i + 1, RI.eval_poly p (Scalar.of_int (i + 1)))) in
  match RI.decode ~deg ~errors:2 points with
  | Some q -> Alcotest.(check bool) "recovered" true (Array.for_all2 Scalar.equal p q)
  | None -> Alcotest.fail "decode failed"

let test_bw_corrects_errors () =
  let deg = 2 in
  let p = rand_poly deg in
  let mk_points corrupt =
    List.init 7 (fun i ->
        let x = i + 1 in
        let y = RI.eval_poly p (Scalar.of_int x) in
        if List.mem x corrupt then (x, Scalar.add y (Scalar.of_int (100 + x))) else (x, y))
  in
  (* n = 7 >= deg + 2e + 1 with e = 2 *)
  List.iter
    (fun corrupt ->
      match RI.decode ~deg ~errors:2 (mk_points corrupt) with
      | Some q ->
          Alcotest.(check bool)
            (Printf.sprintf "corrected %d errors" (List.length corrupt))
            true
            (Array.for_all2 Scalar.equal p q)
      | None -> Alcotest.fail "decode failed")
    [ []; [ 3 ]; [ 1; 6 ] ]

let test_bw_too_many_errors () =
  let deg = 2 in
  let p = rand_poly deg in
  (* 3 errors with budget 2: decode must not return a wrong polynomial
     (either None or, impossibly, p itself) *)
  let points =
    List.init 7 (fun i ->
        let x = i + 1 in
        let y = RI.eval_poly p (Scalar.of_int x) in
        if x <= 3 then (x, Scalar.add y Scalar.one) else (x, y))
  in
  match RI.decode ~deg ~errors:2 points with
  | None -> ()
  | Some q ->
      (* if it decodes, it must agree with >= 5 of the 7 points, which the
         true p does not; accept only self-consistent output *)
      let agree =
        List.length (List.filter (fun (x, y) -> Scalar.equal (RI.eval_poly q (Scalar.of_int x)) y) points)
      in
      Alcotest.(check bool) "self-consistent" true (agree >= 5)

let test_eiffel_lying_verifier () =
  (* with n = 5, m = 1 the server tolerates (5-3)/2 = 1 lying verifier:
     corrupt one chi evaluation and the honest dealer must still pass.
     We simulate by decoding directly (the Eiffel.run pipeline has all
     verifiers honest). *)
  let deg = 2 in
  let p = rand_poly deg in
  let points =
    List.init 5 (fun i ->
        let x = i + 1 in
        let y = RI.eval_poly p (Scalar.of_int x) in
        if x = 2 then (x, Scalar.add y (Scalar.of_int 7)) else (x, y))
  in
  match RI.decode_at_zero ~deg ~errors:1 points with
  | Some v -> Alcotest.(check bool) "value at 0 survives a liar" true (Scalar.equal v p.(0))
  | None -> Alcotest.fail "decode failed"

(* --- secagg masks --- *)

let test_mask_cancellation_scalars () =
  let n = 4 and d = 6 in
  let key i j = Bytes.of_string (Printf.sprintf "k%d-%d" (min i j) (max i j)) in
  let vecs = Array.init n (fun i -> Array.init d (fun l -> Scalar.of_int ((i * 10) + l))) in
  let masked =
    Array.init n (fun i ->
        let keys = Array.init n (fun j -> key (i + 1) (j + 1)) in
        Secagg.mask_scalars ~keys ~self:(i + 1) ~label:"round1" vecs.(i))
  in
  (* each masked vector differs from the original *)
  Array.iteri
    (fun i mv -> Alcotest.(check bool) (Printf.sprintf "masked %d" i) false (Array.for_all2 Scalar.equal mv vecs.(i)))
    masked;
  let sum = Secagg.unmask_sum masked in
  let expected = Secagg.unmask_sum vecs in
  Alcotest.(check bool) "masks cancel" true (Array.for_all2 Scalar.equal sum expected)

let test_mask_cancellation_ints_with_active () =
  let n = 5 and d = 8 in
  let key i j = Bytes.of_string (Printf.sprintf "k%d-%d" (min i j) (max i j)) in
  let active = [| true; false; true; true; false |] in
  let vecs = Array.init n (fun i -> Array.init d (fun l -> ((i + 1) * 100) - (l * 13))) in
  let masked =
    List.filter_map
      (fun i ->
        if active.(i) then
          let keys = Array.init n (fun j -> key (i + 1) (j + 1)) in
          Some (Secagg.mask_ints ~keys ~self:(i + 1) ~active ~label:"r" vecs.(i))
        else None)
      (List.init n Fun.id)
  in
  let sum = Secagg.unmask_sum_ints (Array.of_list masked) in
  let expected = Array.init d (fun l -> vecs.(0).(l) + vecs.(2).(l) + vecs.(3).(l)) in
  Alcotest.(check (array int)) "active-set masks cancel" expected sum

(* --- baselines end-to-end --- *)

let mk_updates n d =
  Array.init n (fun i -> Array.init d (fun l -> (((i * 13) + (l * 5)) mod 30) - 15))

let sum_updates updates idxs =
  let d = Array.length updates.(0) in
  Array.init d (fun l -> List.fold_left (fun acc i -> acc + updates.(i).(l)) 0 idxs)

let check_outcome name (o : Baselines.Types.outcome) ~expect_accepted ~expect_sum =
  Alcotest.(check (array bool)) (name ^ ": accepted") expect_accepted o.Baselines.Types.accepted;
  match o.Baselines.Types.aggregate with
  | None -> Alcotest.fail (name ^ ": aggregation failed")
  | Some agg -> Alcotest.(check (array int)) (name ^ ": aggregate") expect_sum agg

let bound_for updates idxs =
  (* a bound that admits every honest update with some headroom *)
  let worst =
    List.fold_left
      (fun acc i -> Float.max acc (Encoding.Fixed_point.l2_norm_encoded updates.(i)))
      0.0 idxs
  in
  worst *. 1.3

let test_rofl_honest_and_cheat () =
  let n = 3 and d = 8 in
  let setup = Rofl.create_setup ~label:"test" ~d ~bits:8 in
  let updates = mk_updates n d in
  let bound_b = bound_for updates [ 0; 1; 2 ] in
  let honest =
    Rofl.run setup ~updates ~bound_b ~cheat:(Array.make n false) ~seed:"rofl-honest"
  in
  check_outcome "rofl honest" honest ~expect_accepted:(Array.make n true)
    ~expect_sum:(sum_updates updates [ 0; 1; 2 ]);
  (* client 2 submits a 20x update: slack < 0, proofs cannot check out *)
  let updates2 = Array.map Array.copy updates in
  updates2.(1) <- Array.map (fun x -> 20 * x) updates2.(1);
  let cheat = [| false; true; false |] in
  let res = Rofl.run setup ~updates:updates2 ~bound_b ~cheat ~seed:"rofl-cheat" in
  check_outcome "rofl cheat" res ~expect_accepted:[| true; false; true |]
    ~expect_sum:(sum_updates updates2 [ 0; 2 ])

let test_acorn_honest_and_cheat () =
  let n = 3 and d = 8 in
  let setup = Acorn.create_setup ~label:"test" ~d ~bits:8 in
  let updates = mk_updates n d in
  let bound_b = bound_for updates [ 0; 1; 2 ] in
  let honest = Acorn.run setup ~updates ~bound_b ~cheat:(Array.make n false) ~seed:"acorn-honest" in
  check_outcome "acorn honest" honest ~expect_accepted:(Array.make n true)
    ~expect_sum:(sum_updates updates [ 0; 1; 2 ]);
  let updates2 = Array.map Array.copy updates in
  updates2.(2) <- Array.map (fun x -> 6 * x) updates2.(2);
  let res = Acorn.run setup ~updates:updates2 ~bound_b ~cheat:[| false; false; true |] ~seed:"acorn-cheat" in
  check_outcome "acorn cheat" res ~expect_accepted:[| true; true; false |]
    ~expect_sum:(sum_updates updates2 [ 0; 1 ])

let test_eiffel_honest_and_cheat () =
  let n = 5 and d = 8 in
  let setup = Eiffel.create_setup ~label:"test" ~d ~bits:8 ~n ~m:1 in
  let updates = mk_updates n d in
  let all = [ 0; 1; 2; 3; 4 ] in
  let bound_b = bound_for updates all in
  let honest = Eiffel.run setup ~updates ~bound_b ~cheat:(Array.make n false) ~seed:"eiffel-honest" in
  check_outcome "eiffel honest" honest ~expect_accepted:(Array.make n true)
    ~expect_sum:(sum_updates updates all);
  let updates2 = Array.map Array.copy updates in
  updates2.(0) <- Array.map (fun x -> 10 * x) updates2.(0);
  let res =
    Eiffel.run setup ~updates:updates2 ~bound_b ~cheat:[| true; false; false; false; false |]
      ~seed:"eiffel-cheat"
  in
  check_outcome "eiffel cheat" res ~expect_accepted:[| false; true; true; true; true |]
    ~expect_sum:(sum_updates updates2 [ 1; 2; 3; 4 ])

let test_eiffel_out_of_range_coordinate () =
  (* a coordinate outside the bit range breaks the bit recomposition, so
     chi(0) <> 0 even though the norm might pass a wrap-around *)
  let n = 5 and d = 4 in
  let setup = Eiffel.create_setup ~label:"test-oor" ~d ~bits:8 ~n ~m:1 in
  let updates = mk_updates n d in
  updates.(3).(0) <- 4000 (* >> 2^7 *);
  let bound_b = 1.0e6 (* huge bound: only the bit check can catch it *) in
  let res = Eiffel.run setup ~updates ~bound_b ~cheat:(Array.make n false) ~seed:"eiffel-oor" in
  Alcotest.(check bool) "client 4 rejected" false res.Baselines.Types.accepted.(3);
  Alcotest.(check bool) "others accepted" true
    (res.Baselines.Types.accepted.(0) && res.Baselines.Types.accepted.(1))

let test_timings_populated () =
  let n = 3 and d = 4 in
  let setup = Eiffel.create_setup ~label:"test-t" ~d ~bits:8 ~n ~m:1 in
  let updates = mk_updates n d in
  let res = Eiffel.run setup ~updates ~bound_b:1000.0 ~cheat:(Array.make n false) ~seed:"t" in
  let t = res.Baselines.Types.timings in
  Alcotest.(check bool) "commit time" true (t.Baselines.Types.client_commit_s > 0.0);
  Alcotest.(check bool) "comm bytes" true (t.Baselines.Types.client_comm_bytes > 0)

let () =
  Alcotest.run "baselines"
    [
      ( "foursquare",
        [
          Alcotest.test_case "isqrt" `Quick test_isqrt;
          Alcotest.test_case "miller-rabin" `Quick test_miller_rabin;
          Alcotest.test_case "known decompositions" `Quick test_foursquare_known;
          prop_foursquare;
        ] );
      ( "robust-interp",
        [
          Alcotest.test_case "gaussian elimination" `Quick test_solve_linear;
          Alcotest.test_case "no errors" `Quick test_bw_no_errors;
          Alcotest.test_case "corrects errors" `Quick test_bw_corrects_errors;
          Alcotest.test_case "too many errors" `Quick test_bw_too_many_errors;
          Alcotest.test_case "eiffel lying verifier" `Quick test_eiffel_lying_verifier;
        ] );
      ( "secagg",
        [
          Alcotest.test_case "scalar masks cancel" `Quick test_mask_cancellation_scalars;
          Alcotest.test_case "int masks with active set" `Quick test_mask_cancellation_ints_with_active;
        ] );
      ( "rofl",
        [ Alcotest.test_case "honest + cheater" `Quick test_rofl_honest_and_cheat ] );
      ( "acorn",
        [ Alcotest.test_case "honest + cheater" `Quick test_acorn_honest_and_cheat ] );
      ( "eiffel",
        [
          Alcotest.test_case "honest + cheater" `Quick test_eiffel_honest_and_cheat;
          Alcotest.test_case "out-of-range coordinate" `Quick test_eiffel_out_of_range_coordinate;
          Alcotest.test_case "timings populated" `Quick test_timings_populated;
        ] );
    ]
