(* §4.6 extensions, exercised against the full cryptographic pipeline:
   the sphere defense via commitment re-centering, and the cosine
   similarity defense via the homomorphically derived inner-product
   commitment with its linkage/square/range proofs. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Predicate = Risefl_core.Predicate
module Extensions = Risefl_core.Extensions

let d = 16
let params = Params.make ~n_clients:4 ~max_malicious:1 ~d ~k:4 ~m_factor:64.0 ~bound_b:1200.0 ()
let setup = Setup.create ~label:"test-extensions" params

let mk_updates n = Array.init n (fun i -> Array.init d (fun l -> ((i * 17) + (l * 9)) mod 120 - 60))

let sum_updates updates idxs =
  Array.init d (fun l -> List.fold_left (fun acc i -> acc + updates.(i - 1).(l)) 0 idxs)

(* --- sphere defense: commit u − v, un-shift the aggregate --- *)

let test_sphere_roundtrip () =
  let updates = mk_updates 4 in
  (* public center: last round's global update, say *)
  let center = Array.init d (fun l -> (l * 3) - 20) in
  let shifted = Array.map (fun u -> Extensions.sphere_shift ~center u) updates in
  (* the shifted updates must satisfy the bound; here they do by size *)
  let stats =
    Driver.run_iteration setup ~updates:shifted ~behaviours:(Driver.honest_all 4) ~seed:"sphere"
      ~round:1
  in
  match stats.Driver.aggregate with
  | None -> Alcotest.fail "aggregation failed"
  | Some agg ->
      let recovered = Extensions.sphere_unshift ~center ~n_honest:4 agg in
      Alcotest.(check (array int)) "sum recovered" (sum_updates updates [ 1; 2; 3; 4 ]) recovered

let test_sphere_catches_far_update () =
  let updates = mk_updates 4 in
  let center = Array.init d (fun _ -> 0) in
  (* client 2 is far from the center: ||u - v|| >> B *)
  updates.(1) <- Array.map (fun x -> x * 100) updates.(1);
  let shifted = Array.map (fun u -> Extensions.sphere_shift ~center u) updates in
  let behaviours = Driver.honest_all 4 in
  behaviours.(1) <- Driver.Oversized 100.0;
  let stats = Driver.run_iteration setup ~updates:shifted ~behaviours ~seed:"sphere-far" ~round:1 in
  Alcotest.(check (list int)) "flagged" [ 2 ] stats.Driver.flagged

(* --- zeno++ reduces to sphere --- *)

let test_zeno_reduction () =
  let v = [| 2.0; 1.0; 0.0 |] in
  let center, radius = Extensions.zeno_center_radius ~v ~gamma:1.0 ~rho:0.5 ~eps:0.01 in
  (* center = (gamma/2rho) v = v *)
  Alcotest.(check (array (float 1e-9))) "center" [| 2.0; 1.0; 0.0 |] center;
  (* radius^2 = gamma^2/(4 rho^2) |v|^2 - gamma eps / rho = 5 - 0.02 *)
  Alcotest.(check (float 1e-9)) "radius" (sqrt 4.98) radius;
  (* unsatisfiable predicate clamps to zero *)
  let _, r0 = Extensions.zeno_center_radius ~v:[| 0.01; 0.0; 0.0 |] ~gamma:1.0 ~rho:0.5 ~eps:10.0 in
  Alcotest.(check (float 0.0)) "clamped" 0.0 r0

(* --- cosine defense, full crypto --- *)

let aligned_updates n =
  (* all clients' updates strongly aligned with the reference direction *)
  let base = Array.init d (fun l -> 40 + (l * 2)) in
  Array.init n (fun i -> Array.map (fun x -> x + (i * 3)) base)

let reference = Array.init d (fun l -> 50 + l)

let test_cosine_accepts_aligned () =
  let updates = aligned_updates 4 in
  let predicate = Predicate.Cosine { v = reference; alpha = 0.5 } in
  let session = Driver.create_session setup ~seed:"cos-aligned" in
  let stats = Driver.run_round ~predicate session ~updates ~behaviours:(Driver.honest_all 4) ~round:1 in
  Alcotest.(check (list int)) "all pass" [] stats.Driver.flagged;
  match stats.Driver.aggregate with
  | None -> Alcotest.fail "aggregation failed"
  | Some agg -> Alcotest.(check (array int)) "sum" (sum_updates updates [ 1; 2; 3; 4 ]) agg

let test_cosine_rejects_opposed () =
  let updates = aligned_updates 4 in
  (* client 3 submits a direction-opposed update: w = <u,v> < 0 *)
  updates.(2) <- Array.map (fun x -> -x) updates.(2);
  let behaviours = Driver.honest_all 4 in
  behaviours.(2) <- Driver.Oversized 1.0;
  let predicate = Predicate.Cosine { v = reference; alpha = 0.5 } in
  let session = Driver.create_session setup ~seed:"cos-opposed" in
  let stats = Driver.run_round ~predicate session ~updates ~behaviours ~round:1 in
  Alcotest.(check (list int)) "opposed client flagged" [ 3 ] stats.Driver.flagged;
  match stats.Driver.aggregate with
  | None -> Alcotest.fail "aggregation failed"
  | Some agg -> Alcotest.(check (array int)) "honest sum" (sum_updates updates [ 1; 2; 4 ]) agg

let test_cosine_rejects_orthogonal_large () =
  (* an update orthogonal-ish to v with a large norm: w small but
     ||u|| large, so sum projections^2 >> w^2 * factor *)
  let updates = aligned_updates 4 in
  updates.(0) <- Array.init d (fun l -> if l land 1 = 0 then 900 else -900);
  (* make it orthogonal to the reference: <u,v> ~ 0 by alternating signs *)
  let behaviours = Driver.honest_all 4 in
  behaviours.(0) <- Driver.Oversized 1.0;
  let predicate = Predicate.Cosine { v = reference; alpha = 0.5 } in
  let session = Driver.create_session setup ~seed:"cos-orth" in
  let stats = Driver.run_round ~predicate session ~updates ~behaviours ~round:1 in
  Alcotest.(check bool) "orthogonal large update flagged" true (List.mem 1 stats.Driver.flagged)

let test_cosine_proof_required () =
  (* parameter-validation layer of the cosine predicate *)
  Alcotest.check_raises "bad alpha" (Invalid_argument "Predicate.cosine_factor: alpha must be in (0,1]")
    (fun () -> ignore (Predicate.cosine_factor params ~v:reference ~alpha:1.5));
  Alcotest.check_raises "zero reference" (Invalid_argument "Predicate.cosine_factor: zero reference vector")
    (fun () -> ignore (Predicate.cosine_factor params ~v:(Array.make d 0) ~alpha:0.5));
  Alcotest.check_raises "wrong dimension" (Invalid_argument "Predicate.validate: reference dimension")
    (fun () -> Predicate.validate params (Predicate.Cosine { v = [| 1; 2 |]; alpha = 0.5 }))

let test_cosine_factor_magnitude () =
  let factor = Predicate.cosine_factor params ~v:reference ~alpha:0.5 in
  (* factor ~ M^2 gamma / (alpha^2 |v|^2); sanity-check the order *)
  let n2 = Array.fold_left (fun a x -> a +. (float_of_int x *. float_of_int x)) 0.0 reference in
  let expected = 64.0 ** 2.0 *. Params.gamma params /. (0.25 *. n2) in
  let f = Bigint.to_int factor in
  Alcotest.(check bool)
    (Printf.sprintf "factor %d ~ %.0f" f expected)
    true
    (float_of_int f >= expected && float_of_int f < expected *. 1.2)

let () =
  Alcotest.run "extensions"
    [
      ( "sphere",
        [
          Alcotest.test_case "shift/unshift roundtrip" `Quick test_sphere_roundtrip;
          Alcotest.test_case "catches far update" `Quick test_sphere_catches_far_update;
        ] );
      ("zeno", [ Alcotest.test_case "reduction to sphere" `Quick test_zeno_reduction ]);
      ( "cosine",
        [
          Alcotest.test_case "accepts aligned clients" `Quick test_cosine_accepts_aligned;
          Alcotest.test_case "rejects opposed update" `Quick test_cosine_rejects_opposed;
          Alcotest.test_case "rejects orthogonal large update" `Quick test_cosine_rejects_orthogonal_large;
          Alcotest.test_case "parameter validation" `Quick test_cosine_proof_required;
          Alcotest.test_case "factor magnitude" `Quick test_cosine_factor_magnitude;
        ] );
    ]
