(* Socket-transport tests.

   Unit layer: frame reassembly from adversarial chunkings (including a
   hostile 0xFFFFFFFF length prefix, rejected before any allocation) and
   the proto codec round-trip.

   Process layer: a real serve/client deployment over a Unix-domain
   socket — the server and every client run in forked processes, talk
   through the event loop, and the parent asserts the outcomes are
   bit-identical to the in-process driver on the same seed. Covers the
   loopback round with a slow-loris client, a mid-stage client death
   degrading to the quorum path, and a kill -9 mid-round with a
   WAL-backed restart. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Frame = Risefl_transport.Frame
module Proto = Risefl_transport.Proto
module Evloop = Risefl_transport.Evloop
module Tserver = Risefl_transport.Server
module Tclient = Risefl_transport.Client
module Updates = Risefl_transport.Updates
module Scalar = Curve25519.Scalar

let fail fmt = Alcotest.failf fmt

(* ------------------------------------------------------------------ *)
(* frame reassembly *)

let feed_all t chunks =
  List.concat_map
    (fun (b, off, len) ->
      match Frame.Reassembler.feed t b ~off ~len with
      | Ok frames -> frames
      | Error e -> fail "unexpected reassembly error: %s" e)
    chunks

let test_frame_chunkings () =
  let bodies = [ Bytes.of_string "alpha"; Bytes.create 0; Bytes.of_string (String.make 300 'x') ] in
  let wire = Bytes.concat Bytes.empty (List.map Frame.encode bodies) in
  let total = Bytes.length wire in
  (* every chunk size from byte-at-a-time to one-shot must reassemble to
     the same three frames *)
  List.iter
    (fun step ->
      let t = Frame.Reassembler.create () in
      let chunks = ref [] in
      let pos = ref 0 in
      while !pos < total do
        let len = min step (total - !pos) in
        chunks := (wire, !pos, len) :: !chunks;
        pos := !pos + len
      done;
      let frames = feed_all t (List.rev !chunks) in
      if frames <> bodies then fail "chunk size %d reassembled differently" step;
      if Frame.Reassembler.pending t <> 0 then fail "leftover bytes after clean frames")
    [ 1; 2; 3; 7; 64; total ]

let test_frame_hostile_length () =
  (* a 0xFFFFFFFF length prefix must poison the stream at the header, not
     allocate 4 GiB *)
  let t = Frame.Reassembler.create () in
  let evil = Bytes.create 4 in
  Bytes.set_int32_le evil 0 0xFFFFFFFFl;
  (match Frame.Reassembler.feed t evil ~off:0 ~len:4 with
  | Ok _ -> fail "hostile length prefix accepted"
  | Error _ -> ());
  (* the reassembler stays poisoned: further feeds keep failing *)
  match Frame.Reassembler.feed t (Bytes.make 8 'a') ~off:0 ~len:8 with
  | Ok _ -> fail "poisoned reassembler accepted more bytes"
  | Error _ -> ()

let test_frame_cap_boundary () =
  let t = Frame.Reassembler.create ~max_frame:64 () in
  let ok = Frame.encode (Bytes.make 64 'b') in
  (match Frame.Reassembler.feed t ok ~off:0 ~len:(Bytes.length ok) with
  | Ok [ b ] when Bytes.length b = 64 -> ()
  | Ok _ -> fail "cap-sized frame mangled"
  | Error e -> fail "cap-sized frame rejected: %s" e);
  let over = Frame.encode (Bytes.make 65 'c') in
  match Frame.Reassembler.feed t over ~off:0 ~len:(Bytes.length over) with
  | Ok _ -> fail "over-cap frame accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* proto codec *)

let test_proto_roundtrip () =
  let msgs =
    [
      Proto.Hello
        { client_id = 3; resume_round = 7; version = Proto.proto_version; epoch = 4; rejoin = true };
      Proto.Submit (Bytes.of_string "framed-bytes");
      Proto.Reveal_resp { dealer = 2; shares = None };
      Proto.Reveal_resp
        { dealer = 2; shares = Some [ (1, Scalar.of_int 42); (4, Scalar.of_int 7) ] };
      Proto.Bye;
      Proto.Hello_ok { n = 5; round = 2; version = Proto.proto_version; degree = 4; epoch = 2 };
      Proto.Ack { round = 1; stage = Netsim.Proof; sender = 4; seq = 0 };
      Proto.Commits { round = 1; commits = [| Bytes.of_string "c1"; Bytes.of_string "c2" |] };
      Proto.Cleared { round = 2; shares = [ (1, 3, Scalar.of_int 9) ] };
      Proto.Check { round = 1; bcast = Bytes.of_string "s-and-hs" };
      Proto.Honest { round = 1; honest = [ 1; 2; 4 ]; malicious = [ 3 ] };
      Proto.Reveal_req { dealer = 5; requests = [ 1; 2 ] };
      Proto.Result
        { round = 1; view = Proto.Rv_completed { cstar = [ 3 ]; aggregate = Some [| 1; -2 |] } };
      Proto.Result
        {
          round = 2;
          view = Proto.Rv_aborted_quorum { stage = "proof"; survivors = 2; needed = 3 };
        };
      Proto.Result { round = 3; view = Proto.Rv_aborted_decode [ 2; 5 ] };
      Proto.Reject { reason = "unknown client id" };
      Proto.Recover_req { round = 2; dropout = 3 };
      Proto.Recover_resp { round = 2; dropout = 3; share = None; mask = Scalar.of_int 11 };
      Proto.Recover_resp
        { round = 2; dropout = 3; share = Some (Scalar.of_int 5); mask = Scalar.of_int 11 };
      Proto.Reject_stale { current_round = 4; reason = "epoch 1 is stale" };
    ]
  in
  List.iter
    (fun msg ->
      match Proto.decode (Proto.encode msg) with
      | Ok got when got = msg -> ()
      | Ok _ -> fail "%s did not round-trip" (Proto.tag_name msg)
      | Error e ->
          fail "%s failed to decode: %s" (Proto.tag_name msg)
            (Risefl_core.Serial.error_to_string e))
    msgs;
  (* trailing garbage and truncations must be rejected, not crash —
     except the legal truncation points of the optional tails: a 9-byte
     body is a legacy v0 hello, 13 bytes stop after the v2 version tail,
     17 bytes stop after the v3 epoch (rejoin defaults to false) *)
  let b =
    Proto.encode
      (Proto.Hello { client_id = 1; resume_round = 1; version = 3; epoch = 2; rejoin = true })
  in
  (match Proto.decode (Bytes.cat b (Bytes.of_string "x")) with
  | Ok _ -> fail "trailing garbage accepted"
  | Error _ -> ());
  if Bytes.length b <> 18 then fail "v3 hello should be 18 bytes, got %d" (Bytes.length b);
  for cut = 0 to Bytes.length b - 1 do
    match Proto.decode (Bytes.sub b 0 cut) with
    | Ok (Proto.Hello { client_id = 1; resume_round = 1; version = 0; epoch = 0; rejoin = false })
      when cut = 9 ->
        () (* the legacy v0 frame *)
    | Ok (Proto.Hello { client_id = 1; resume_round = 1; version = 3; epoch = 0; rejoin = false })
      when cut = 13 ->
        () (* a v2 peer's hello: version but no membership tail *)
    | Ok (Proto.Hello { client_id = 1; resume_round = 1; version = 3; epoch = 2; rejoin = false })
      when cut = 17 ->
        () (* epoch without the rejoin byte: rejoin defaults off *)
    | Ok _ -> fail "truncation at %d accepted" cut
    | Error _ -> ()
  done;
  (* same ladder for Hello_ok: 9-byte legacy body, 17-byte v2 body,
     21-byte v3 body *)
  let b = Proto.encode (Proto.Hello_ok { n = 5; round = 2; version = 3; degree = 4; epoch = 2 }) in
  if Bytes.length b <> 21 then fail "v3 hello-ok should be 21 bytes, got %d" (Bytes.length b);
  for cut = 0 to Bytes.length b - 1 do
    match Proto.decode (Bytes.sub b 0 cut) with
    | Ok (Proto.Hello_ok { n = 5; round = 2; version = 0; degree = 0; epoch = 0 }) when cut = 9 ->
        ()
    | Ok (Proto.Hello_ok { n = 5; round = 2; version = 3; degree = 4; epoch = 0 }) when cut = 17
      ->
        ()
    | Ok _ -> fail "hello-ok truncation at %d accepted" cut
    | Error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* forked serve/client deployments *)

let n = 3
let m = 1
let d = 8
let k = 3
let bound = 900.0

let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:bound ()
let setup = Setup.create ~label:"cli/test-transport" params

(* the ISSUE's loopback round runs at n=5 *)
let n5 = 5
let params5 = Params.make ~n_clients:n5 ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:bound ()
let setup5 = Setup.create ~label:"cli/test-transport-5" params5

(* the in-process reference on the same seed; [dropouts] is the twin of a
   client process that dies mid-round *)
let reference ?(setup = setup) ?(n = n) ~seed ?(dropouts = []) ~round () =
  let session = Driver.create_session setup ~seed in
  let behaviours = Updates.behaviours ~n ~attackers:[] in
  List.iter (fun i -> behaviours.(i - 1) <- Driver.Drop_out) dropouts;
  let rec go r =
    let updates = Updates.make ~n ~d ~bound ~seed ~attackers:[] ~round:r in
    let outcome = Driver.run_round_outcome session ~updates ~behaviours ~round:r in
    if r = round then outcome else go (r + 1)
  in
  go 1

let view_of = function
  | Driver.Completed stats ->
      Proto.Rv_completed { cstar = stats.Driver.flagged; aggregate = stats.Driver.aggregate }
  | Driver.Aborted_insufficient_quorum { stage; survivors; needed } ->
      Proto.Rv_aborted_quorum { stage; survivors; needed }
  | Driver.Aborted_decode ids -> Proto.Rv_aborted_decode ids

let tmp_name suffix =
  let f = Filename.temp_file "test-transport" suffix in
  Sys.remove f;
  f

(* fork [f]; the child marshals f () to [out] and never returns *)
let fork_child out f =
  match Unix.fork () with
  | 0 ->
      let result = try Ok (f ()) with e -> Error (Printexc.to_string e) in
      let oc = open_out_bin out in
      Marshal.to_channel oc result [];
      close_out oc;
      Unix._exit 0
  | pid -> pid

let read_child (type a) out : (a, string) result =
  let ic = open_in_bin out in
  let v = Marshal.from_channel ic in
  close_in ic;
  (try Sys.remove out with Sys_error _ -> ());
  v

let client_cfg ?(setup = setup) ~addr ~seed ~id ~rounds ?die_at ?(loris = false) ?churn
    ?(rejoin = false) () =
  {
    Tclient.addr;
    setup;
    seed;
    id;
    rounds;
    d;
    bound;
    attackers = [];
    deadline_s = 60.0;
    loris;
    die_at;
    max_connect_attempts = 200;
    topology = Risefl_topology.Topology.Full;
    churn;
    rejoin;
  }

let server_cfg ?(setup = setup) ~addr ~seed ~rounds ?wal ?crash ?stream ?churn
    ?(deadline = 60.0) () =
  {
    Tserver.addr;
    setup;
    seed;
    rounds;
    stage_deadline_s = deadline;
    wal_path = wal;
    crash;
    stream;
    topology = Risefl_topology.Topology.Full;
    churn;
  }

let wait_pid pid = ignore (Unix.waitpid [] pid)

(* one n=5 loopback round over a Unix socket, client 2 slow-lorising its
   submissions byte by byte: server and every client must report the
   verdict of the in-process driver, bit for bit *)
let test_serve_loopback_round () =
  let seed = "serve-loopback" in
  let addr = Evloop.Unix_sock (tmp_name ".sock") in
  let srv_out = tmp_name ".srv" in
  let srv =
    fork_child srv_out (fun () ->
        let report = Tserver.serve (server_cfg ~setup:setup5 ~addr ~seed ~rounds:1 ()) in
        List.map (fun (r, o) -> (r, view_of o)) report.Tserver.outcomes)
  in
  Unix.sleepf 0.2;
  let cli_outs = List.init n5 (fun i -> tmp_name (Printf.sprintf ".c%d" (i + 1))) in
  let clis =
    List.mapi
      (fun i out ->
        let id = i + 1 in
        fork_child out (fun () ->
            Tclient.run (client_cfg ~setup:setup5 ~addr ~seed ~id ~rounds:1 ~loris:(id = 2) ())))
      cli_outs
  in
  wait_pid srv;
  List.iter wait_pid clis;
  let want = [ (1, view_of (reference ~setup:setup5 ~n:n5 ~seed ~round:1 ())) ] in
  (match (read_child srv_out : ((int * Proto.result_view) list, string) result) with
  | Ok got when got = want -> ()
  | Ok _ -> fail "server outcome differs from the in-process driver"
  | Error e -> fail "server process failed: %s" e);
  List.iteri
    (fun i out ->
      match (read_child out : ((int * Proto.result_view) list, string) result) with
      | Ok got when got = want -> ()
      | Ok _ -> fail "client %d result differs from the in-process driver" (i + 1)
      | Error e -> fail "client %d process failed: %s" (i + 1) e)
    cli_outs

(* client 3 dies just before its proof: the survivors must complete the
   round with the exact aggregate of the in-process dropout twin *)
let test_serve_client_death () =
  let seed = "serve-death" in
  let addr = Evloop.Unix_sock (tmp_name ".sock") in
  let srv_out = tmp_name ".srv" in
  let srv =
    fork_child srv_out (fun () ->
        let report = Tserver.serve (server_cfg ~addr ~seed ~rounds:1 ~deadline:4.0 ()) in
        List.map (fun (r, o) -> (r, view_of o)) report.Tserver.outcomes)
  in
  Unix.sleepf 0.2;
  let cli_outs = List.init n (fun i -> tmp_name (Printf.sprintf ".d%d" (i + 1))) in
  let clis =
    List.mapi
      (fun i out ->
        let id = i + 1 in
        let die_at = if id = 3 then Some (1, Netsim.Proof) else None in
        fork_child out (fun () ->
            Tclient.run (client_cfg ~addr ~seed ~id ~rounds:1 ?die_at ())))
      cli_outs
  in
  wait_pid srv;
  List.iter wait_pid clis;
  (* the twin: in-process client 3 never speaks; C* and the survivor
     aggregate must match (a commit-silent twin and a proof-silent death
     end in the same verdict: 3 convicted, survivors aggregated) *)
  let want = [ (1, view_of (reference ~seed ~dropouts:[ 3 ] ~round:1 ())) ] in
  match (read_child srv_out : ((int * Proto.result_view) list, string) result) with
  | Ok got when got = want -> ()
  | Ok got ->
      fail "quorum path after client death differs from the dropout twin (got %d round(s))"
        (List.length got)
  | Error e -> fail "server process failed: %s" e

(* kill -9 mid-round, then a fresh serve on the same WAL: the restarted
   server must finish the round bit-identically to the uncrashed twin *)
let test_serve_kill_restart () =
  let seed = "serve-kill" in
  let addr = Evloop.Unix_sock (tmp_name ".sock") in
  let wal = tmp_name ".wal" in
  let srv_out = tmp_name ".srv" in
  let first =
    fork_child srv_out (fun () ->
        ignore
          (Tserver.serve
             (server_cfg ~addr ~seed ~rounds:1 ~wal
                ~crash:(1, Netsim.Proof, Driver.Stage_frame 1) ()));
        [])
  in
  Unix.sleepf 0.2;
  let cli_outs = List.init n (fun i -> tmp_name (Printf.sprintf ".k%d" (i + 1))) in
  let clis =
    List.mapi
      (fun i out ->
        let id = i + 1 in
        fork_child out (fun () -> Tclient.run (client_cfg ~addr ~seed ~id ~rounds:1 ())))
      cli_outs
  in
  (* the first server SIGKILLs itself mid-proof *)
  let _, status = Unix.waitpid [] first in
  (match status with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _ -> fail "the crashing server should die by SIGKILL");
  (* restart on the same WAL while the clients retry under backoff *)
  let srv2_out = tmp_name ".srv2" in
  let second =
    fork_child srv2_out (fun () ->
        let report = Tserver.serve (server_cfg ~addr ~seed ~rounds:1 ~wal ()) in
        (report.Tserver.resumed_round, List.map (fun (r, o) -> (r, view_of o)) report.Tserver.outcomes))
  in
  wait_pid second;
  List.iter wait_pid clis;
  let want = [ (1, view_of (reference ~seed ~round:1 ())) ] in
  (match
     (read_child srv2_out : (int option * (int * Proto.result_view) list, string) result)
   with
  | Ok (Some 1, got) when got = want -> ()
  | Ok (resumed, _) ->
      fail "restart did not resume round 1 bit-identically (resumed_round = %s)"
        (match resumed with Some r -> string_of_int r | None -> "None")
  | Error e -> fail "restarted server failed: %s" e);
  (* every client converged on the same verdict despite the crash *)
  List.iteri
    (fun i out ->
      match (read_child out : ((int * Proto.result_view) list, string) result) with
      | Ok got when got = want -> ()
      | Ok _ -> fail "client %d diverged across the crash" (i + 1)
      | Error e -> fail "client %d process failed: %s" (i + 1) e)
    cli_outs;
  (try Sys.remove srv_out with Sys_error _ -> ());
  (try Sys.remove wal with Sys_error _ -> ())

(* elastic deployment: server and all five clients derive the seeded
   churn schedule locally (no membership bytes on the wire); out-of-cohort
   clients sit rounds out, one client enrolls with the rejoin bit set, and
   the whole run must match the in-process elastic session *)
let test_serve_churn () =
  let seed = "serve-churn" in
  let spec =
    { Risefl_core.Membership.p_leave = 0.4; p_rejoin = 0.6; p_rotate = 0.3; min_cohort = 3 }
  in
  let rounds = 3 in
  let addr = Evloop.Unix_sock (tmp_name ".sock") in
  let srv_out = tmp_name ".srv" in
  let srv =
    fork_child srv_out (fun () ->
        let report =
          Tserver.serve (server_cfg ~setup:setup5 ~addr ~seed ~rounds ~churn:spec ())
        in
        List.map (fun (r, o) -> (r, view_of o)) report.Tserver.outcomes)
  in
  Unix.sleepf 0.2;
  let cli_outs = List.init n5 (fun i -> tmp_name (Printf.sprintf ".e%d" (i + 1))) in
  let clis =
    List.mapi
      (fun i out ->
        let id = i + 1 in
        fork_child out (fun () ->
            Tclient.run
              (client_cfg ~setup:setup5 ~addr ~seed ~id ~rounds ~churn:spec
                 ~rejoin:(id = 4) ())))
      cli_outs
  in
  wait_pid srv;
  List.iter wait_pid clis;
  let want =
    let session = Driver.create_session setup5 ~seed in
    let report =
      Driver.run_session session
        ~cohort_for:(Driver.churn_cohort_for session ~spec ~rounds)
        ~updates_for:(fun r -> Updates.make ~n:n5 ~d ~bound ~seed ~attackers:[] ~round:r)
        ~behaviours:(Updates.behaviours ~n:n5 ~attackers:[])
        ~rounds
    in
    (* the schedule must actually churn, or this differential is vacuous *)
    if not (List.exists (fun (_, size) -> size < n5) report.Driver.cohort_sizes) then
      fail "seed %S never shrinks the cohort — pick a churnier seed" seed;
    List.map (fun (r, o) -> (r, view_of o)) report.Driver.round_outcomes
  in
  (match (read_child srv_out : ((int * Proto.result_view) list, string) result) with
  | Ok got when got = want -> ()
  | Ok _ -> fail "elastic deployment diverged from the in-process elastic session"
  | Error e -> fail "server process failed: %s" e);
  (* a client sitting a round out may miss that round's broadcast; every
     result it does report must agree with the reference *)
  List.iteri
    (fun i out ->
      match (read_child out : ((int * Proto.result_view) list, string) result) with
      | Ok got ->
          List.iter
            (fun (r, v) ->
              match List.assoc_opt r want with
              | Some v' when v = v' -> ()
              | _ -> fail "client %d round %d diverged from the elastic reference" (i + 1) r)
            got
      | Error e -> fail "client %d process failed: %s" (i + 1) e)
    cli_outs

let () =
  (* Unix.fork is illegal once any domain has been spawned (OCaml 5), and
     the in-process reference runs would otherwise warm the Parallel
     pool; the params here are tiny, so run everything inline *)
  Parallel.set_default_jobs 1;
  Alcotest.run "transport"
    [
      ( "frame",
        [
          Alcotest.test_case "chunked reassembly" `Quick test_frame_chunkings;
          Alcotest.test_case "hostile length prefix" `Quick test_frame_hostile_length;
          Alcotest.test_case "cap boundary" `Quick test_frame_cap_boundary;
        ] );
      ("proto", [ Alcotest.test_case "round-trip" `Quick test_proto_roundtrip ]);
      ( "deployment",
        [
          Alcotest.test_case "loopback round (slow-loris)" `Slow test_serve_loopback_round;
          Alcotest.test_case "mid-stage client death" `Slow test_serve_client_death;
          Alcotest.test_case "kill -9 and WAL restart" `Slow test_serve_kill_restart;
          Alcotest.test_case "elastic churn deployment" `Slow test_serve_churn;
        ] );
    ]
