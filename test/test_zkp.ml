(* ZKP layer tests: completeness (honest proofs verify), soundness
   negatives (mutated statements or proofs fail), transcript binding. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Gens = Curve25519.Gens
module Transcript = Zkp.Transcript
module Sigma = Zkp.Sigma
module Ipa = Zkp.Ipa
module Range_proof = Zkp.Range_proof

let drbg = Prng.Drbg.create_string "test-zkp"
let g = Gens.derive "zkp-test/g"
let h = Gens.derive "zkp-test/h"
let q = Gens.derive "zkp-test/q"

(* --- transcript --- *)

let test_transcript_deterministic () =
  let mk () =
    let t = Transcript.create "proto" in
    Transcript.append_bytes t ~label:"m" (Bytes.of_string "hello");
    Transcript.challenge_scalar t ~label:"c"
  in
  Alcotest.(check bool) "same" true (Scalar.equal (mk ()) (mk ()))

let test_transcript_sensitive () =
  let challenge domain label msg =
    let t = Transcript.create domain in
    Transcript.append_bytes t ~label (Bytes.of_string msg);
    Transcript.challenge_scalar t ~label:"c"
  in
  let base = challenge "proto" "m" "hello" in
  Alcotest.(check bool) "domain" false (Scalar.equal base (challenge "other" "m" "hello"));
  Alcotest.(check bool) "label" false (Scalar.equal base (challenge "proto" "m2" "hello"));
  Alcotest.(check bool) "message" false (Scalar.equal base (challenge "proto" "m" "hellp"))

let test_transcript_challenge_chain () =
  let t = Transcript.create "proto" in
  let c1 = Transcript.challenge_scalar t ~label:"c" in
  let c2 = Transcript.challenge_scalar t ~label:"c" in
  Alcotest.(check bool) "successive challenges differ" false (Scalar.equal c1 c2)

(* --- representation proof --- *)

let test_repr_roundtrip () =
  for _ = 1 to 5 do
    let x = Scalar.random drbg and r = Scalar.random drbg in
    let c = Point.double_mul x g r h in
    let tr = Transcript.create "t" in
    let proof = Sigma.Repr.prove drbg tr ~g ~h ~c ~x ~r in
    let tv = Transcript.create "t" in
    Alcotest.(check bool) "verifies" true (Sigma.Repr.verify tv ~g ~h ~c proof)
  done

let test_repr_rejects () =
  let x = Scalar.random drbg and r = Scalar.random drbg in
  let c = Point.double_mul x g r h in
  let tr = Transcript.create "t" in
  let proof = Sigma.Repr.prove drbg tr ~g ~h ~c ~x ~r in
  (* wrong statement *)
  let tv = Transcript.create "t" in
  Alcotest.(check bool) "wrong c" false (Sigma.Repr.verify tv ~g ~h ~c:(Point.add c g) proof);
  (* mutated response *)
  let tv = Transcript.create "t" in
  let bad = { proof with Sigma.Repr.z1 = Scalar.add proof.Sigma.Repr.z1 Scalar.one } in
  Alcotest.(check bool) "bad z1" false (Sigma.Repr.verify tv ~g ~h ~c bad);
  (* wrong domain *)
  let tv = Transcript.create "t2" in
  Alcotest.(check bool) "wrong domain" false (Sigma.Repr.verify tv ~g ~h ~c proof)

(* --- square proof --- *)

let test_square_roundtrip () =
  for _ = 1 to 5 do
    let x = Scalar.random drbg in
    let s = Scalar.random drbg and s' = Scalar.random drbg in
    let y1 = Point.double_mul x g s q in
    let y2 = Point.double_mul (Scalar.square x) g s' q in
    let tr = Transcript.create "t" in
    let proof = Sigma.Square.prove drbg tr ~g ~q ~y1 ~y2 ~x ~s ~s' in
    let tv = Transcript.create "t" in
    Alcotest.(check bool) "verifies" true (Sigma.Square.verify tv ~g ~q ~y1 ~y2 proof)
  done

let test_square_rejects_nonsquare () =
  let x = Scalar.of_int 5 in
  let s = Scalar.random drbg and s' = Scalar.random drbg in
  let y1 = Point.double_mul x g s q in
  (* y2 commits 26, not 25: an honest prover cannot exist, but check that a
     proof built with inconsistent witnesses fails *)
  let y2 = Point.double_mul (Scalar.of_int 26) g s' q in
  let tr = Transcript.create "t" in
  let proof = Sigma.Square.prove drbg tr ~g ~q ~y1 ~y2 ~x ~s ~s' in
  let tv = Transcript.create "t" in
  Alcotest.(check bool) "rejected" false (Sigma.Square.verify tv ~g ~q ~y1 ~y2 proof)

let test_square_small_values () =
  (* x = 0 and x = 1 edge cases *)
  List.iter
    (fun xv ->
      let x = Scalar.of_int xv in
      let s = Scalar.random drbg and s' = Scalar.random drbg in
      let y1 = Point.double_mul x g s q in
      let y2 = Point.double_mul (Scalar.square x) g s' q in
      let tr = Transcript.create "t" in
      let proof = Sigma.Square.prove drbg tr ~g ~q ~y1 ~y2 ~x ~s ~s' in
      let tv = Transcript.create "t" in
      Alcotest.(check bool) (Printf.sprintf "x=%d" xv) true (Sigma.Square.verify tv ~g ~q ~y1 ~y2 proof))
    [ 0; 1; -3 ]

(* --- well-formedness proof --- *)

let make_wf_instance k =
  let r = Scalar.random drbg in
  let hs = Gens.derive_many "zkp-test/hs" (k + 1) in
  let vs = Array.init (k + 1) (fun _ -> Scalar.random drbg) in
  let ss = Array.init k (fun _ -> Scalar.random drbg) in
  let z = Point.mul r g in
  let es = Array.init (k + 1) (fun t -> Point.double_mul vs.(t) g r hs.(t)) in
  let os = Array.init k (fun t -> Point.double_mul vs.(t + 1) g ss.(t) q) in
  (r, hs, vs, ss, z, es, os)

let test_wf_roundtrip () =
  let r, hs, vs, ss, z, es, os = make_wf_instance 4 in
  let tr = Transcript.create "t" in
  let proof = Sigma.Wf.prove drbg tr ~g ~q ~hs ~z ~es ~os ~r ~vs ~ss in
  let tv = Transcript.create "t" in
  Alcotest.(check bool) "verifies" true (Sigma.Wf.verify tv ~g ~q ~hs ~z ~es ~os proof)

let test_wf_rejects_mismatched_secret () =
  let r, hs, vs, ss, z, es, os = make_wf_instance 3 in
  (* o_2 commits a different value than e_3 *)
  let os = Array.copy os in
  os.(2) <- Point.double_mul (Scalar.add vs.(3) Scalar.one) g ss.(2) q;
  let tr = Transcript.create "t" in
  let proof = Sigma.Wf.prove drbg tr ~g ~q ~hs ~z ~es ~os ~r ~vs ~ss in
  let tv = Transcript.create "t" in
  Alcotest.(check bool) "rejected" false (Sigma.Wf.verify tv ~g ~q ~hs ~z ~es ~os proof)

let test_wf_rejects_wrong_blind_link () =
  let _, hs, vs, ss, z, es, os = make_wf_instance 3 in
  (* z commits a different r than the one in e_t *)
  let z' = Point.add z g in
  let tr = Transcript.create "t" in
  let r_fake = Scalar.random drbg in
  let proof = Sigma.Wf.prove drbg tr ~g ~q ~hs ~z:z' ~es ~os ~r:r_fake ~vs ~ss in
  let tv = Transcript.create "t" in
  Alcotest.(check bool) "rejected" false (Sigma.Wf.verify tv ~g ~q ~hs ~z:z' ~es ~os proof);
  ignore z

let test_wf_shape_validation () =
  let _, hs, _, _, z, es, os = make_wf_instance 3 in
  let tr = Transcript.create "t" in
  Alcotest.check_raises "es shape" (Invalid_argument "Sigma.Wf: |es| must equal |hs|") (fun () ->
      ignore
        (Sigma.Wf.prove drbg tr ~g ~q ~hs ~z ~es:(Array.sub es 0 2) ~os ~r:Scalar.one ~vs:[| Scalar.one |]
           ~ss:[| Scalar.one |]))

(* --- ipa --- *)

let bp_gens = Range_proof.make_gens ~label:"zkp-test" 64

let test_ipa_roundtrip () =
  List.iter
    (fun n ->
      let gv = Array.sub bp_gens.Range_proof.gv 0 n and hv = Array.sub bp_gens.Range_proof.hv 0 n in
      let u = bp_gens.Range_proof.u in
      let a = Array.init n (fun _ -> Scalar.random drbg) in
      let b = Array.init n (fun _ -> Scalar.random drbg) in
      let c = Array.fold_left Scalar.add Scalar.zero (Array.map2 Scalar.mul a b) in
      let p =
        Curve25519.Msm.msm
          (Array.concat
             [ Array.map2 (fun s pt -> (s, pt)) a gv; Array.map2 (fun s pt -> (s, pt)) b hv; [| (c, u) |] ])
      in
      let tr = Transcript.create "ipa" in
      let proof = Ipa.prove tr ~g:gv ~h:hv ~u ~a ~b in
      let tv = Transcript.create "ipa" in
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (Ipa.verify tv ~g:gv ~h:hv ~u ~p proof))
    [ 1; 2; 4; 16; 64 ]

let test_ipa_rejects_wrong_p () =
  let n = 8 in
  let gv = Array.sub bp_gens.Range_proof.gv 0 n and hv = Array.sub bp_gens.Range_proof.hv 0 n in
  let u = bp_gens.Range_proof.u in
  let a = Array.init n (fun _ -> Scalar.random drbg) in
  let b = Array.init n (fun _ -> Scalar.random drbg) in
  let c = Array.fold_left Scalar.add Scalar.zero (Array.map2 Scalar.mul a b) in
  let p =
    Curve25519.Msm.msm
      (Array.concat
         [ Array.map2 (fun s pt -> (s, pt)) a gv; Array.map2 (fun s pt -> (s, pt)) b hv; [| (c, u) |] ])
  in
  let tr = Transcript.create "ipa" in
  let proof = Ipa.prove tr ~g:gv ~h:hv ~u ~a ~b in
  let tv = Transcript.create "ipa" in
  Alcotest.(check bool) "wrong p" false (Ipa.verify tv ~g:gv ~h:hv ~u ~p:(Point.add p u) proof);
  let tv = Transcript.create "ipa" in
  let bad = { proof with Ipa.a = Scalar.add proof.Ipa.a Scalar.one } in
  Alcotest.(check bool) "bad a" false (Ipa.verify tv ~g:gv ~h:hv ~u ~p bad)

(* --- range proof --- *)

let bi = Bigint.of_int

let test_range_roundtrip () =
  List.iter
    (fun (bits, values) ->
      let values = Array.map bi values in
      let blinds = Array.map (fun _ -> Scalar.random drbg) values in
      let commitments =
        Array.map2 (fun v r -> Point.double_mul (Scalar.of_bigint v) g r h) values blinds
      in
      let tr = Transcript.create "rp" in
      let proof = Range_proof.prove drbg tr ~gens:bp_gens ~g ~h ~bits ~values ~blinds in
      let tv = Transcript.create "rp" in
      Alcotest.(check bool)
        (Printf.sprintf "bits=%d m=%d" bits (Array.length values))
        true
        (Range_proof.verify tv ~gens:bp_gens ~g ~h ~bits ~commitments proof))
    [
      (8, [| 0 |]);
      (8, [| 255 |]);
      (8, [| 37; 200 |]);
      (16, [| 65535; 0; 12345 |]) (* padded to m=4 *);
      (4, [| 15; 1; 2; 3; 4; 5 |]) (* padded to m=8 *);
    ]

let test_range_rejects_out_of_range () =
  (* the prover refuses out-of-range witnesses... *)
  let tr = Transcript.create "rp" in
  Alcotest.check_raises "witness too large" (Invalid_argument "Range_proof.prove: value out of range")
    (fun () ->
      ignore
        (Range_proof.prove drbg tr ~gens:bp_gens ~g ~h ~bits:8 ~values:[| bi 256 |]
           ~blinds:[| Scalar.random drbg |]))

let test_range_rejects_wrong_commitment () =
  (* ...and a verifier with a different commitment rejects *)
  let values = [| bi 100 |] in
  let blinds = [| Scalar.random drbg |] in
  let tr = Transcript.create "rp" in
  let proof = Range_proof.prove drbg tr ~gens:bp_gens ~g ~h ~bits:8 ~values ~blinds in
  let wrong = [| Point.double_mul (Scalar.of_int 101) g blinds.(0) h |] in
  let tv = Transcript.create "rp" in
  Alcotest.(check bool) "rejects" false
    (Range_proof.verify tv ~gens:bp_gens ~g ~h ~bits:8 ~commitments:wrong proof)

let test_range_rejects_tampered_proof () =
  let values = [| bi 100; bi 50 |] in
  let blinds = Array.map (fun _ -> Scalar.random drbg) values in
  let commitments = Array.map2 (fun v r -> Point.double_mul (Scalar.of_bigint v) g r h) values blinds in
  let tr = Transcript.create "rp" in
  let proof = Range_proof.prove drbg tr ~gens:bp_gens ~g ~h ~bits:8 ~values ~blinds in
  let tamper p msg =
    let tv = Transcript.create "rp" in
    Alcotest.(check bool) msg false (Range_proof.verify tv ~gens:bp_gens ~g ~h ~bits:8 ~commitments p)
  in
  tamper { proof with Range_proof.t_hat = Scalar.add proof.Range_proof.t_hat Scalar.one } "t_hat";
  tamper { proof with Range_proof.mu = Scalar.add proof.Range_proof.mu Scalar.one } "mu";
  tamper { proof with Range_proof.tau_x = Scalar.add proof.Range_proof.tau_x Scalar.one } "tau_x";
  tamper { proof with Range_proof.a = Point.add proof.Range_proof.a g } "A"

let test_range_bits_validation () =
  let tr = Transcript.create "rp" in
  Alcotest.check_raises "bits not pow2"
    (Invalid_argument "Range_proof: bits must be a power of two in [2, 128]") (fun () ->
      ignore
        (Range_proof.prove drbg tr ~gens:bp_gens ~g ~h ~bits:12 ~values:[| bi 7 |]
           ~blinds:[| Scalar.random drbg |]))

let test_range_proof_size_logarithmic () =
  let prove_size values bits =
    let values = Array.map bi values in
    let blinds = Array.map (fun _ -> Scalar.random drbg) values in
    let tr = Transcript.create "rp" in
    let proof = Range_proof.prove drbg tr ~gens:bp_gens ~g ~h ~bits ~values ~blinds in
    Range_proof.size_bytes proof
  in
  let s8 = prove_size [| 1 |] 8 in
  let s64 = prove_size [| 1; 2; 3; 4 |] 16 in
  (* 8x the committed bits, only log growth in size *)
  Alcotest.(check bool) (Printf.sprintf "log growth: %d -> %d" s8 s64) true (s64 - s8 = 3 * 64)

let test_range_wrong_bits_at_verify () =
  (* verifying with a different bit width than proved must fail (the
     width is absorbed into the transcript) *)
  let values = [| bi 10 |] in
  let blinds = [| Scalar.random drbg |] in
  let commitments = [| Point.double_mul (Scalar.of_int 10) g blinds.(0) h |] in
  let tr = Transcript.create "rp" in
  let proof = Range_proof.prove drbg tr ~gens:bp_gens ~g ~h ~bits:8 ~values ~blinds in
  let tv = Transcript.create "rp" in
  Alcotest.(check bool) "wrong bits" false
    (Range_proof.verify tv ~gens:bp_gens ~g ~h ~bits:16 ~commitments proof)

let test_range_swapped_bases () =
  (* verifying against swapped (g, h) bases must fail *)
  let values = [| bi 33 |] in
  let blinds = [| Scalar.random drbg |] in
  let commitments = [| Point.double_mul (Scalar.of_int 33) g blinds.(0) h |] in
  let tr = Transcript.create "rp" in
  let proof = Range_proof.prove drbg tr ~gens:bp_gens ~g ~h ~bits:8 ~values ~blinds in
  let tv = Transcript.create "rp" in
  Alcotest.(check bool) "swapped bases" false
    (Range_proof.verify tv ~gens:bp_gens ~g:h ~h:g ~bits:8 ~commitments proof)

let test_ipa_mutations () =
  let n = 8 in
  let gv = Array.sub bp_gens.Range_proof.gv 0 n and hv = Array.sub bp_gens.Range_proof.hv 0 n in
  let u = bp_gens.Range_proof.u in
  let a = Array.init n (fun _ -> Scalar.random drbg) in
  let b = Array.init n (fun _ -> Scalar.random drbg) in
  let c = Array.fold_left Scalar.add Scalar.zero (Array.map2 Scalar.mul a b) in
  let p =
    Curve25519.Msm.msm
      (Array.concat
         [ Array.map2 (fun s pt -> (s, pt)) a gv; Array.map2 (fun s pt -> (s, pt)) b hv; [| (c, u) |] ])
  in
  let tr = Transcript.create "ipa" in
  let proof = Ipa.prove tr ~g:gv ~h:hv ~u ~a ~b in
  let mutations =
    [
      ("b response", { proof with Ipa.b = Scalar.add proof.Ipa.b Scalar.one });
      ("L[0]", { proof with Ipa.ls = (let l = Array.copy proof.Ipa.ls in l.(0) <- Point.add l.(0) u; l) });
      ("R[last]",
        { proof with
          Ipa.rs =
            (let r = Array.copy proof.Ipa.rs in
             let i = Array.length r - 1 in
             r.(i) <- Point.double r.(i);
             r) });
      ("truncated rounds", { proof with Ipa.ls = Array.sub proof.Ipa.ls 0 2; rs = Array.sub proof.Ipa.rs 0 2 });
    ]
  in
  List.iter
    (fun (name, bad) ->
      let tv = Transcript.create "ipa" in
      Alcotest.(check bool) name false (Ipa.verify tv ~g:gv ~h:hv ~u ~p bad))
    mutations

let test_wf_cross_client_transcripts () =
  (* a proof bound to one transcript context must not verify in another *)
  let r, hs, vs, ss, z, es, os = make_wf_instance 2 in
  let tr = Transcript.create "client-1" in
  let proof = Sigma.Wf.prove drbg tr ~g ~q ~hs ~z ~es ~os ~r ~vs ~ss in
  let tv = Transcript.create "client-2" in
  Alcotest.(check bool) "cross-context" false (Sigma.Wf.verify tv ~g ~q ~hs ~z ~es ~os proof);
  (* and with a response array truncated *)
  let tv = Transcript.create "client-1" in
  let bad = { proof with Sigma.Wf.zv = Array.sub proof.Sigma.Wf.zv 0 1 } in
  Alcotest.(check bool) "truncated zv" false (Sigma.Wf.verify tv ~g ~q ~hs ~z ~es ~os bad)

let () =
  Alcotest.run "zkp"
    [
      ( "transcript",
        [
          Alcotest.test_case "deterministic" `Quick test_transcript_deterministic;
          Alcotest.test_case "sensitive" `Quick test_transcript_sensitive;
          Alcotest.test_case "challenge chain" `Quick test_transcript_challenge_chain;
        ] );
      ( "repr",
        [
          Alcotest.test_case "roundtrip" `Quick test_repr_roundtrip;
          Alcotest.test_case "rejects" `Quick test_repr_rejects;
        ] );
      ( "square",
        [
          Alcotest.test_case "roundtrip" `Quick test_square_roundtrip;
          Alcotest.test_case "rejects non-square" `Quick test_square_rejects_nonsquare;
          Alcotest.test_case "small values" `Quick test_square_small_values;
        ] );
      ( "wf",
        [
          Alcotest.test_case "roundtrip" `Quick test_wf_roundtrip;
          Alcotest.test_case "rejects mismatched secret" `Quick test_wf_rejects_mismatched_secret;
          Alcotest.test_case "rejects wrong blind link" `Quick test_wf_rejects_wrong_blind_link;
          Alcotest.test_case "shape validation" `Quick test_wf_shape_validation;
        ] );
      ( "ipa",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipa_roundtrip;
          Alcotest.test_case "rejects" `Quick test_ipa_rejects_wrong_p;
        ] );
      ( "range",
        [
          Alcotest.test_case "roundtrip" `Quick test_range_roundtrip;
          Alcotest.test_case "rejects out of range witness" `Quick test_range_rejects_out_of_range;
          Alcotest.test_case "rejects wrong commitment" `Quick test_range_rejects_wrong_commitment;
          Alcotest.test_case "rejects tampered proof" `Quick test_range_rejects_tampered_proof;
          Alcotest.test_case "bits validation" `Quick test_range_bits_validation;
          Alcotest.test_case "size logarithmic" `Quick test_range_proof_size_logarithmic;
          Alcotest.test_case "wrong bits at verify" `Quick test_range_wrong_bits_at_verify;
          Alcotest.test_case "swapped bases" `Quick test_range_swapped_bases;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "ipa field mutations" `Quick test_ipa_mutations;
          Alcotest.test_case "wf cross-client transcript" `Quick test_wf_cross_client_transcripts;
        ] );
    ]
