(* FIPS 180-4 and RFC 8439 known-answer tests plus statistical sanity
   checks for the DRBG samplers. *)

let hex_of_bytes b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let bytes_of_hex s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* --- SHA-256 --- *)

let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( String.make 1000000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
    ]
  in
  List.iter
    (fun (msg, want) -> Alcotest.(check string) "digest" want (Hashfn.Sha256.hex_digest_string msg))
    cases

let test_sha256_incremental () =
  (* chunked update must agree with one-shot, across block boundaries *)
  let msg = String.init 300 (fun i -> Char.chr (i land 0xff)) in
  let oneshot = Hashfn.Sha256.digest_string msg in
  List.iter
    (fun chunk ->
      let ctx = Hashfn.Sha256.init () in
      let pos = ref 0 in
      while !pos < String.length msg do
        let take = min chunk (String.length msg - !pos) in
        Hashfn.Sha256.update_string ctx (String.sub msg !pos take);
        pos := !pos + take
      done;
      Alcotest.(check string) (Printf.sprintf "chunk %d" chunk) (hex_of_bytes oneshot)
        (hex_of_bytes (Hashfn.Sha256.finalize ctx)))
    [ 1; 3; 63; 64; 65; 128; 299 ]

(* --- SHA-512 --- *)

let test_sha512_vectors () =
  let cases =
    [
      ( "",
        "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
      );
      ( "abc",
        "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
      );
      ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
      );
    ]
  in
  List.iter
    (fun (msg, want) -> Alcotest.(check string) "digest" want (Hashfn.Sha512.hex_digest_string msg))
    cases

(* --- HMAC-SHA256 (RFC 4231) --- *)

let test_hmac_vectors () =
  (* RFC 4231 test case 1 *)
  let key = bytes_of_hex "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b" in
  let data = Bytes.of_string "Hi There" in
  Alcotest.(check string) "tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex_of_bytes (Hashfn.Hmac.sha256 ~key data));
  (* RFC 4231 test case 2 *)
  let key = Bytes.of_string "Jefe" in
  let data = Bytes.of_string "what do ya want for nothing?" in
  Alcotest.(check string) "tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex_of_bytes (Hashfn.Hmac.sha256 ~key data));
  (* RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data *)
  let key = Bytes.make 20 '\xaa' in
  let data = Bytes.make 50 '\xdd' in
  Alcotest.(check string) "tc3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex_of_bytes (Hashfn.Hmac.sha256 ~key data))

let test_hmac_expand () =
  let key = Bytes.of_string "secret" in
  let a = Hashfn.Hmac.expand ~key ~info:"ctx-a" 100 in
  let a' = Hashfn.Hmac.expand ~key ~info:"ctx-a" 100 in
  let b = Hashfn.Hmac.expand ~key ~info:"ctx-b" 100 in
  Alcotest.(check int) "length" 100 (Bytes.length a);
  Alcotest.(check bool) "deterministic" true (Bytes.equal a a');
  Alcotest.(check bool) "info separates" false (Bytes.equal a b);
  (* prefix property: shorter output is a prefix of longer *)
  let short = Hashfn.Hmac.expand ~key ~info:"ctx-a" 40 in
  Alcotest.(check bool) "prefix" true (Bytes.equal short (Bytes.sub a 0 40))

(* --- ChaCha20 (RFC 8439 §2.3.2) --- *)

let test_chacha20_block () =
  let key = bytes_of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = bytes_of_hex "000000090000004a00000000" in
  let out = Prng.Chacha20.block ~key ~counter:1 ~nonce in
  Alcotest.(check string) "keystream"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (hex_of_bytes out)

let test_chacha20_keystream_offsets () =
  let key = Bytes.make 32 '\x42' in
  let nonce = Bytes.make 12 '\x07' in
  let full = Prng.Chacha20.keystream ~key ~nonce ~off:0 200 in
  (* arbitrary unaligned window must match the corresponding slice *)
  let window = Prng.Chacha20.keystream ~key ~nonce ~off:77 93 in
  Alcotest.(check string) "window" (hex_of_bytes (Bytes.sub full 77 93)) (hex_of_bytes window)

(* --- DRBG --- *)

let test_drbg_determinism () =
  let a = Prng.Drbg.create_string "seed" in
  let b = Prng.Drbg.create_string "seed" in
  let c = Prng.Drbg.create_string "other" in
  let va = List.init 100 (fun _ -> Prng.Drbg.byte a) in
  let vb = List.init 100 (fun _ -> Prng.Drbg.byte b) in
  let vc = List.init 100 (fun _ -> Prng.Drbg.byte c) in
  Alcotest.(check bool) "same seed same stream" true (va = vb);
  Alcotest.(check bool) "different seed different stream" false (va = vc)

let test_drbg_fork () =
  let root = Prng.Drbg.create_string "seed" in
  let f1 = Prng.Drbg.fork root "a" in
  let f2 = Prng.Drbg.fork root "b" in
  let f1' = Prng.Drbg.fork root "a" in
  let v1 = List.init 50 (fun _ -> Prng.Drbg.byte f1) in
  let v2 = List.init 50 (fun _ -> Prng.Drbg.byte f2) in
  let v1' = List.init 50 (fun _ -> Prng.Drbg.byte f1') in
  Alcotest.(check bool) "same label same stream" true (v1 = v1');
  Alcotest.(check bool) "labels separate" false (v1 = v2)

let test_uniform_int_range () =
  let t = Prng.Drbg.create_string "u" in
  for _ = 1 to 2000 do
    let v = Prng.Drbg.uniform_int t 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_uniform_int_distribution () =
  let t = Prng.Drbg.create_string "dist" in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.Drbg.uniform_int t 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - expected) < expected / 5))
    counts

let test_gaussian_moments () =
  let t = Prng.Drbg.create_string "gauss" in
  let n = 100_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.Drbg.gaussian t in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) (Printf.sprintf "mean %.4f" mean) true (abs_float mean < 0.02);
  Alcotest.(check bool) (Printf.sprintf "var %.4f" var) true (abs_float (var -. 1.0) < 0.03)

let test_gaussian_discrete_scale () =
  let t = Prng.Drbg.create_string "gd" in
  let m = 1024.0 in
  let n = 20_000 in
  let sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = float_of_int (Prng.Drbg.gaussian_discrete t ~m) in
    sumsq := !sumsq +. (v *. v)
  done;
  let std = sqrt (!sumsq /. float_of_int n) in
  Alcotest.(check bool) (Printf.sprintf "std %.1f" std) true (abs_float (std -. m) < m *. 0.03)

let test_bits_bounds () =
  let t = Prng.Drbg.create_string "bits" in
  for _ = 1 to 1000 do
    let v = Prng.Drbg.bits t 13 in
    Alcotest.(check bool) "13 bits" true (v >= 0 && v < 8192)
  done;
  Alcotest.(check int) "0 bits" 0 (Prng.Drbg.bits t 0)

let () =
  Alcotest.run "hash-prng"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
        ] );
      ("sha512", [ Alcotest.test_case "FIPS vectors" `Quick test_sha512_vectors ]);
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_vectors;
          Alcotest.test_case "expand" `Quick test_hmac_expand;
        ] );
      ( "chacha20",
        [
          Alcotest.test_case "RFC 8439 block" `Quick test_chacha20_block;
          Alcotest.test_case "keystream offsets" `Quick test_chacha20_keystream_offsets;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "determinism" `Quick test_drbg_determinism;
          Alcotest.test_case "fork" `Quick test_drbg_fork;
          Alcotest.test_case "uniform range" `Quick test_uniform_int_range;
          Alcotest.test_case "uniform distribution" `Quick test_uniform_int_distribution;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "gaussian discrete scale" `Quick test_gaussian_discrete_scale;
          Alcotest.test_case "bits bounds" `Quick test_bits_bounds;
        ] );
    ]
