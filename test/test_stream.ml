(* Streaming verification pipeline tests.

   - Msm.Acc streaming primitives: flush/carry/merge evaluate to the
     same group element as one deferred eval, and reset/flush return
     grown term buffers to the initial capacity (the ratchet guard).
   - Differential: a streamed round (arrival-ordered folding, sharded
     accumulators, eviction) must reproduce the barrier round's
     (aggregate, C*, failure) bit for bit across
     jobs ∈ {1,2,4} × shards ∈ {1,2,4}, including under seeded Netsim
     reordering/duplication/delay, with corrupted proofs (in-batch
     bisection parity) and with agg-stage decode failures (the
     late-conviction subtraction path).
   - Crash mid-proof-stream + WAL recovery: replaying the logged frames
     through the streaming intake resumes the fold bit-identically.
   - Batch-size edges: batch = 1 (flush per frame) and batch > n (one
     terminal drain) are the same round.

   STREAM_STRIDE subsamples the jobs × shards matrix; the default (2)
   keeps `dune runtest` wall time in check on small boxes, and
   STREAM_STRIDE=1 opts into the exhaustive matrix. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Server = Risefl_core.Server
module Round_log = Risefl_core.Round_log
module Point = Curve25519.Point
module Scalar = Curve25519.Scalar
module Acc = Curve25519.Msm.Acc

let fail fmt = Alcotest.failf fmt

let stride =
  match Sys.getenv_opt "STREAM_STRIDE" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
  | None -> 2

(* ------------------------------------------------------------------ *)
(* Acc streaming primitives *)

let rand_terms ~seed count =
  let drbg = Prng.Drbg.create_string seed in
  Array.init count (fun _ ->
      let s = Scalar.random drbg in
      (s, Point.mul (Scalar.random drbg) Point.base))

let test_acc_flush_equals_eval () =
  let terms = rand_terms ~seed:"acc-flush" 50 in
  let oneshot = Acc.create () in
  Array.iter (fun (s, p) -> Acc.push oneshot s p) terms;
  let want = Acc.eval oneshot in
  (* same terms, flushed every 7 pushes *)
  let streamed = Acc.create () in
  Array.iteri
    (fun i (s, p) ->
      Acc.push streamed s p;
      if i mod 7 = 6 then ignore (Acc.flush streamed))
    terms;
  if not (Point.equal want (Acc.eval streamed)) then
    fail "interleaved flushes changed the evaluated sum";
  (* carry is the whole sum after a terminal flush *)
  if not (Point.equal want (Acc.flush streamed)) then fail "terminal flush is not the full sum";
  if Acc.size streamed <> 0 then fail "flush left buffered terms behind"

let test_acc_capacity_ratchet () =
  let acc = Acc.create () in
  if Acc.capacity acc <> Acc.initial_capacity then fail "fresh accumulator at wrong capacity";
  let terms = rand_terms ~seed:"acc-cap" (3 * Acc.initial_capacity) in
  Array.iter (fun (s, p) -> Acc.push acc s p) terms;
  if Acc.capacity acc <= Acc.initial_capacity then fail "buffers did not grow under load";
  ignore (Acc.flush acc);
  if Acc.capacity acc <> Acc.initial_capacity then
    fail "flush did not shrink buffers back to the initial capacity (got %d)" (Acc.capacity acc);
  (* grow again, then reset: same shrink, and the carry is dropped too *)
  Array.iter (fun (s, p) -> Acc.push acc s p) terms;
  Acc.reset acc;
  if Acc.capacity acc <> Acc.initial_capacity then fail "reset did not shrink buffers";
  if Acc.size acc <> 0 || not (Point.is_identity (Acc.carry acc)) then
    fail "reset left terms or a carry behind"

let test_acc_merge () =
  let terms = rand_terms ~seed:"acc-merge" 40 in
  let oneshot = Acc.create () in
  Array.iter (fun (s, p) -> Acc.push oneshot s p) terms;
  let want = Acc.eval oneshot in
  (* split round-robin across 3 shards, flush two of them mid-way *)
  let shards = Array.init 3 (fun _ -> Acc.create ()) in
  Array.iteri
    (fun i (s, p) ->
      Acc.push shards.(i mod 3) s p;
      if i = 20 then ignore (Acc.flush shards.(0));
      if i = 30 then ignore (Acc.flush shards.(1)))
    terms;
  let merged = Acc.create () in
  Array.iter (fun sh -> Acc.merge merged sh) shards;
  if not (Point.equal want (Acc.eval merged)) then
    fail "sharded merge changed the evaluated sum"

(* ------------------------------------------------------------------ *)
(* streamed round vs barrier round *)

let n = 5
let m = 2
let d = 12
let k = 3

let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:900.0 ()
let setup = Setup.create ~label:"test/stream" params

let updates =
  let drbg = Prng.Drbg.create_string "stream/updates" in
  Array.init n (fun _ -> Array.init d (fun _ -> Prng.Drbg.uniform_int drbg 40 - 20))

let summary (stats : Driver.stats) =
  (stats.Driver.aggregate, stats.Driver.flagged, stats.Driver.failure)

(* fresh session per run (same seed => bit-identical client messages);
   [mk_transport] builds a fresh fault schedule per run for the same
   reason *)
let run_one ?stream ?mk_transport ~jobs ~behaviours () =
  Parallel.set_default_jobs jobs;
  let session = Driver.create_session setup ~seed:"stream-differential" in
  let transport = Option.map (fun mk -> mk ()) mk_transport in
  summary (Driver.run_round ?stream ?transport ~serialize:true session ~updates ~behaviours ~round:1)

let check_matrix ~name ?mk_transport ~behaviours () =
  let idx = ref 0 in
  List.iter
    (fun jobs ->
      let want = run_one ?mk_transport ~jobs ~behaviours () in
      List.iter
        (fun shards ->
          if !idx mod stride = 0 then begin
            List.iter
              (fun batch ->
                let stream = Server.stream_cfg ~shards ~batch () in
                let got = run_one ~stream ?mk_transport ~jobs ~behaviours () in
                if got <> want then
                  fail "%s: streamed (jobs=%d shards=%d batch=%d) differs from barrier" name jobs
                    shards batch)
              [ 2 ]
          end;
          incr idx)
        [ 1; 2; 4 ])
    [ 1; 2; 4 ];
  Parallel.set_default_jobs 2

let test_stream_honest_matrix () =
  check_matrix ~name:"honest" ~behaviours:(Driver.honest_all n) ()

let test_stream_batch_edges () =
  let behaviours = Driver.honest_all n in
  let want = run_one ~jobs:2 ~behaviours () in
  List.iter
    (fun batch ->
      let got = run_one ~stream:(Server.stream_cfg ~shards:2 ~batch ()) ~jobs:2 ~behaviours () in
      if got <> want then fail "batch=%d: streamed round differs from barrier" batch)
    [ 1; 3; 64 ]

(* seeded reordering, duplication and delay — no loss or corruption, so
   the verdicts must be untouched and the fold order is scrambled *)
let reorder_transport () =
  Netsim.create
    ~plan:
      {
        Netsim.ideal with
        Netsim.p_delay = 0.4;
        max_delay = 3;
        p_duplicate = 0.3;
        p_reorder = 0.4;
      }
    ~deadline:6 ~seed:"stream-reorder" ()

let test_stream_reordered_matrix () =
  check_matrix ~name:"reordered" ~mk_transport:reorder_transport
    ~behaviours:(Driver.honest_all n) ()

(* corrupted proofs: the in-batch bisection must attribute exactly the
   barrier path's C*, whichever shard/batch the offenders land in *)
let test_stream_corruption_parity () =
  let behaviours = Array.make n Driver.Honest in
  behaviours.(0) <- Driver.Oversized 100.0;
  behaviours.(3) <- Driver.Oversized 100.0;
  let updates' = Array.copy updates in
  (* ~100x the norm bound: the probabilistic check rejects near-certainly *)
  let oversize u =
    let norm = Encoding.Fixed_point.l2_norm_encoded u in
    let factor = int_of_float (Float.round (100.0 *. params.Params.bound_b /. norm)) in
    Array.map (fun v -> factor * v) u
  in
  updates'.(0) <- oversize updates.(0);
  updates'.(3) <- oversize updates.(3);
  let run ?stream jobs =
    Parallel.set_default_jobs jobs;
    let session = Driver.create_session setup ~seed:"stream-corrupt" in
    summary
      (Driver.run_round ?stream ~serialize:true session ~updates:updates' ~behaviours ~round:1)
  in
  List.iter
    (fun jobs ->
      let ((_, cstar, _) as want) = run jobs in
      if List.length cstar < 2 then fail "oversized clients were not convicted";
      List.iter
        (fun shards ->
          List.iter
            (fun batch ->
              let got = run ~stream:(Server.stream_cfg ~shards ~batch ()) jobs in
              if got <> want then
                fail "corruption parity broke at jobs=%d shards=%d batch=%d" jobs shards batch)
            [ 1; 2 ])
        [ 1; 2; 4 ])
    [ 1; 2 ];
  Parallel.set_default_jobs 2

(* an agg-stage decode failure convicts a client *after* its proof was
   folded and its commit bulk evicted: the streamed aggregate must
   subtract the spilled contribution (late-conviction path) *)
let test_stream_late_conviction () =
  let mk_transport () =
    Netsim.create
      ~script:[ ((1, Netsim.Agg, 2), [ Netsim.Truncate_at 3 ]) ]
      ~seed:"stream-late" ()
  in
  let behaviours = Driver.honest_all n in
  let ((_, cstar, _) as want) = run_one ~mk_transport ~jobs:2 ~behaviours () in
  if not (List.mem 2 cstar) then fail "agg-stage flip did not convict client 2";
  List.iter
    (fun shards ->
      let got =
        run_one
          ~stream:(Server.stream_cfg ~shards ~batch:2 ())
          ~mk_transport ~jobs:2 ~behaviours ()
      in
      if got <> want then fail "late-conviction parity broke at shards=%d" shards)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* crash mid-stream + WAL recovery *)

let fresh_wal () =
  let path = Filename.temp_file "test-stream" ".wal" in
  Sys.remove path;
  path

let test_stream_crash_recovery () =
  let behaviours = Driver.honest_all n in
  let stream = Server.stream_cfg ~shards:2 ~batch:2 () in
  Parallel.set_default_jobs 2;
  let reference = Driver.create_session setup ~seed:"stream-crash" in
  let want =
    summary (Driver.run_round ~stream ~serialize:true reference ~updates ~behaviours ~round:1)
  in
  (* kill the server mid proof stage — after some frames were already
     folded and their commit bulk evicted — and resume from the log *)
  List.iter
    (fun frame_at ->
      let victim = Driver.create_session setup ~seed:"stream-crash" in
      let wal_path = fresh_wal () in
      let wal = Round_log.create ~fsync:false wal_path in
      let got =
        match
          Driver.run_round_outcome victim ~wal ~stream
            ~crash:(Netsim.Proof, Driver.Stage_frame frame_at) ~updates ~behaviours ~round:1
        with
        | outcome -> outcome
        | exception Driver.Server_crashed _ ->
            let records, _ = Round_log.replay wal_path in
            Driver.recover_round ~wal ~stream victim ~records ~updates ~behaviours ~round:1
      in
      (match got with
      | Driver.Completed stats ->
          if summary stats <> want then
            fail "recovered streamed round (crash at proof:%d) differs from uncrashed" frame_at
      | o -> fail "streamed recovery did not complete: %s" (Driver.outcome_to_string o));
      Round_log.close wal;
      Sys.remove wal_path)
    [ 0; 2; 4 ]

(* the streamed stats surface: counters must account for every client *)
let test_stream_stats () =
  let session = Driver.create_session setup ~seed:"stream-stats" in
  let stream = Server.stream_cfg ~shards:2 ~batch:2 () in
  let behaviours = Driver.honest_all n in
  ignore (Driver.run_round ~stream ~serialize:true session ~updates ~behaviours ~round:1);
  match Server.stream_stats (Driver.session_server session) with
  | None -> fail "no stream stats after a streamed round"
  | Some st ->
      if st.Server.folded <> n then fail "folded %d clients, expected %d" st.Server.folded n;
      if st.Server.evicted <> n then fail "evicted %d commit records, expected %d" st.Server.evicted n;
      if st.Server.flushes < 2 then fail "expected at least one flush per shard";
      if st.Server.peak_batch < 1 || st.Server.peak_batch > 2 then
        fail "peak batch %d outside [1, batch]" st.Server.peak_batch

let () =
  Alcotest.run "stream"
    [
      ( "acc",
        [
          Alcotest.test_case "flush/carry = deferred eval" `Quick test_acc_flush_equals_eval;
          Alcotest.test_case "capacity ratchet" `Quick test_acc_capacity_ratchet;
          Alcotest.test_case "sharded merge" `Quick test_acc_merge;
        ] );
      ( "differential",
        [
          Alcotest.test_case "honest, jobs x shards" `Quick test_stream_honest_matrix;
          Alcotest.test_case "batch-size edges" `Quick test_stream_batch_edges;
          Alcotest.test_case "reordered/duplicated arrivals" `Slow test_stream_reordered_matrix;
          Alcotest.test_case "corruption/bisection parity" `Slow test_stream_corruption_parity;
          Alcotest.test_case "late agg-stage conviction" `Quick test_stream_late_conviction;
        ] );
      ( "durability",
        [
          Alcotest.test_case "crash mid-stream + WAL resume" `Slow test_stream_crash_recovery;
          Alcotest.test_case "stream stats" `Quick test_stream_stats;
        ] );
    ]
