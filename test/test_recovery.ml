(* Durability tests: the differential crash-point sweep (server killed at
   every stage boundary plus seeded mid-stage points, recovery must
   reproduce the uncrashed aggregate and C* bit for bit, across worker
   counts), the duplicated-agg-share no-double-count regression, torn
   round-log tails, and the multi-round session loop with in-loop
   recovery. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Server = Risefl_core.Server
module Round_log = Risefl_core.Round_log
module Reliable = Risefl_core.Reliable
module Serial = Risefl_core.Serial

let fail fmt = Alcotest.failf fmt

let n = 5
let m = 2
let d = 12
let k = 3

let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:900.0 ()
let setup = Setup.create ~label:"test/recovery" params

let updates_for round =
  let drbg = Prng.Drbg.create_string (Printf.sprintf "recovery/updates/r%d" round) in
  Array.init n (fun _ -> Array.init d (fun _ -> Prng.Drbg.uniform_int drbg 40 - 20))

let expected_sum updates honest =
  Array.init d (fun l -> List.fold_left (fun acc i -> acc + updates.(i - 1).(l)) 0 honest)

let fresh_wal () =
  let path = Filename.temp_file "test-recovery" ".wal" in
  Sys.remove path;
  path

let completed = function
  | Driver.Completed stats -> stats
  | o -> fail "expected a completed round, got: %s" (Driver.outcome_to_string o)

let agg_and_cstar outcome =
  let stats = completed outcome in
  (stats.Driver.aggregate, stats.Driver.flagged)

(* ------------------------------------------------------------------ *)
(* differential crash-point sweep *)

(* Two sessions with the same seed advance in lockstep: the reference
   runs each round uncrashed (at a fixed jobs count); the victim runs the
   same round under a WAL, dies at the sweep point, is recovered from the
   log, and must produce the identical aggregate and C*. The victim's
   jobs count cycles 1/2/4 per point, so every sweep point also checks
   that recovery is worker-count-invariant. *)
let test_crash_sweep () =
  let boundaries =
    List.concat_map
      (fun stage -> [ (stage, Driver.Stage_start); (stage, Driver.Stage_end) ])
      [ Netsim.Commit; Netsim.Flag; Netsim.Proof; Netsim.Agg ]
  in
  let seeded = Driver.seeded_crashes ~seed:"sweep" ~n:3 ~max_step:n in
  let points = boundaries @ seeded in
  let reference = Driver.create_session setup ~seed:"sweep-session" in
  let victim = Driver.create_session setup ~seed:"sweep-session" in
  let wal_path = fresh_wal () in
  let wal = Round_log.create ~fsync:false wal_path in
  let behaviours = Driver.honest_all n in
  let jobs_cycle = [| 1; 2; 4 |] in
  List.iteri
    (fun i (stage, at) ->
      let round = i + 1 in
      let updates = updates_for round in
      Parallel.set_default_jobs 2;
      let want =
        agg_and_cstar (Driver.run_round_outcome reference ~serialize:true ~updates ~behaviours ~round)
      in
      Parallel.set_default_jobs jobs_cycle.(i mod 3);
      let got =
        match
          Driver.run_round_outcome victim ~wal ~crash:(stage, at) ~updates ~behaviours ~round
        with
        | outcome -> outcome (* the planned point was never reached *)
        | exception Driver.Server_crashed _ ->
            let records, _ = Round_log.replay wal_path in
            Driver.recover_round ~wal victim ~records ~updates ~behaviours ~round
      in
      let got = agg_and_cstar got in
      if got <> want then
        fail "crash at %s (round %d, jobs %d): recovered (aggregate, C*) differs from uncrashed"
          (Driver.crash_to_string (stage, at))
          round
          jobs_cycle.(i mod 3);
      (* both must also be the plain honest sum *)
      if fst got <> Some (expected_sum updates (List.init n (fun i -> i + 1))) then
        fail "crash at %s: aggregate is not the honest sum" (Driver.crash_to_string (stage, at)))
    points;
  Round_log.close wal;
  Sys.remove wal_path;
  Parallel.set_default_jobs 2

(* a crash plan that never fires behaves exactly like no crash *)
let test_crash_point_not_reached () =
  let session = Driver.create_session setup ~seed:"no-fire" in
  let wal_path = fresh_wal () in
  let wal = Round_log.create ~fsync:false wal_path in
  let updates = updates_for 1 in
  let outcome =
    Driver.run_round_outcome session ~wal ~crash:(Netsim.Agg, Driver.Stage_frame 99) ~updates
      ~behaviours:(Driver.honest_all n) ~round:1
  in
  let agg, cstar = agg_and_cstar outcome in
  if cstar <> [] || agg <> Some (expected_sum updates (List.init n (fun i -> i + 1))) then
    fail "unfired crash plan changed the round result";
  Round_log.close wal;
  Sys.remove wal_path

(* cross-process resume: a *fresh* session (client and server state
   rebuilt from the seed, empty outbox) finishes a round-1 crash from
   the log alone, bit-identically *)
let test_fresh_session_resume () =
  let updates = updates_for 1 in
  let behaviours = Driver.honest_all n in
  let reference = Driver.create_session setup ~seed:"resume" in
  let want =
    agg_and_cstar (Driver.run_round_outcome reference ~serialize:true ~updates ~behaviours ~round:1)
  in
  let wal_path = fresh_wal () in
  let crashed = Driver.create_session setup ~seed:"resume" in
  let wal = Round_log.create ~fsync:false wal_path in
  (try
     ignore
       (Driver.run_round_outcome crashed ~wal ~crash:(Netsim.Proof, Driver.Stage_frame 2) ~updates
          ~behaviours ~round:1)
   with Driver.Server_crashed _ -> ());
  Round_log.close wal;
  (* a different process: brand-new session over the same seed *)
  let resumed = Driver.create_session setup ~seed:"resume" in
  let records, _ = Round_log.replay wal_path in
  let got = agg_and_cstar (Driver.recover_round resumed ~records ~updates ~behaviours ~round:1) in
  if got <> want then fail "fresh-session resume differs from the uncrashed run";
  Sys.remove wal_path

(* the same crash/resume flow with the frames carried by an alternate
   Transport_intf.S backend (the socketpair loopback): frame reassembly
   from partial reads must not disturb the recovery bit-identity *)
let test_fresh_session_resume_loopback () =
  let module Loopback = Risefl_transport.Loopback in
  let updates = updates_for 1 in
  let behaviours = Driver.honest_all n in
  let reference = Driver.create_session setup ~seed:"resume-lb" in
  let want =
    agg_and_cstar (Driver.run_round_outcome reference ~serialize:true ~updates ~behaviours ~round:1)
  in
  let ep () = Loopback.endpoint (Loopback.create ~seed:"resume-lb" ()) in
  let wal_path = fresh_wal () in
  let crashed = Driver.create_session setup ~seed:"resume-lb" in
  let wal = Round_log.create ~fsync:false wal_path in
  (try
     ignore
       (Driver.run_round_outcome crashed ~endpoint:(ep ()) ~wal
          ~crash:(Netsim.Proof, Driver.Stage_frame 2) ~updates ~behaviours ~round:1)
   with Driver.Server_crashed _ -> ());
  Round_log.close wal;
  let resumed = Driver.create_session setup ~seed:"resume-lb" in
  let records, _ = Round_log.replay wal_path in
  let got =
    agg_and_cstar
      (Driver.recover_round resumed ~endpoint:(ep ()) ~records ~updates ~behaviours ~round:1)
  in
  if got <> want then fail "loopback-backend resume differs from the uncrashed run";
  Sys.remove wal_path

(* ------------------------------------------------------------------ *)
(* duplicated agg share across a crash must not double-count *)

let test_duplicate_agg_share_no_double_count () =
  let updates = updates_for 1 in
  let behaviours = Driver.honest_all n in
  let expected = expected_sum updates (List.init n (fun i -> i + 1)) in
  (* client 3's round-3 (agg) frame is duplicated by the transport; the
     server crashes after the stage completed, so both copies are in the
     log and both replay through recovery *)
  let script = [ ((1, Netsim.Agg, 3), [ Netsim.Duplicate ]) ] in
  let net = Netsim.create ~script ~seed:"dup-agg" () in
  let session = Driver.create_session setup ~seed:"dup-agg" in
  let wal_path = fresh_wal () in
  let wal = Round_log.create ~fsync:false wal_path in
  (try
     ignore
       (Driver.run_round_outcome session ~transport:net ~wal ~crash:(Netsim.Agg, Driver.Stage_end)
          ~updates ~behaviours ~round:1)
   with Driver.Server_crashed _ -> ());
  let records, _ = Round_log.replay wal_path in
  let dup_frames =
    List.length
      (List.filter
         (function Round_log.Frame { stage = Netsim.Agg; sender = 3; _ } -> true | _ -> false)
         records)
  in
  if dup_frames < 2 then fail "script should have logged the duplicated agg frame (got %d)" dup_frames;
  let outcome = Driver.recover_round ~wal session ~records ~updates ~behaviours ~round:1 in
  let agg, cstar = agg_and_cstar outcome in
  Round_log.close wal;
  Sys.remove wal_path;
  if cstar <> [] then fail "duplicated agg share must not convict anyone";
  match agg with
  | Some got when got = expected -> ()
  | Some _ -> fail "duplicated agg share was double-counted through recovery"
  | None -> fail "recovered round lost its aggregate"

(* ------------------------------------------------------------------ *)
(* torn / corrupt round-log tails *)

let test_round_log_torn_tail () =
  let wal_path = fresh_wal () in
  let wal = Round_log.create ~fsync:false wal_path in
  Round_log.append wal (Round_log.Round_start { round = 7 });
  Round_log.append wal
    (Round_log.Frame
       { round = 7; stage = Netsim.Commit; sender = 2; seq = 0; frame = Bytes.of_string "abc" });
  Round_log.append wal (Round_log.Stage_done { round = 7; stage = Netsim.Commit });
  Round_log.close wal;
  let full = (Unix.stat wal_path).Unix.st_size in
  (* chop into the final record: the first two must survive *)
  let fd = Unix.openfile wal_path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (full - 3);
  Unix.close fd;
  let records, status = Round_log.replay wal_path in
  (match status with
  | Store.Wal.Torn _ -> ()
  | Store.Wal.Complete -> fail "truncated final record must report Torn");
  (match records with
  | [ Round_log.Round_start { round = 7 }; Round_log.Frame { sender = 2; _ } ] -> ()
  | _ -> fail "truncation must keep exactly the intact prefix (got %d records)" (List.length records));
  Sys.remove wal_path

let test_round_log_bad_record_body () =
  (* a CRC-clean frame whose body is not a valid record terminates the
     replay like a torn tail instead of raising *)
  let wal_path = fresh_wal () in
  let wal = Store.Wal.open_ ~fsync:false wal_path in
  Store.Wal.append wal ~tag:1 (let b = Serial.W.create () in Serial.W.u32 b 3; Buffer.to_bytes b);
  Store.Wal.append wal ~tag:99 (Bytes.of_string "not-a-record");
  Store.Wal.close wal;
  let records, status = Round_log.replay wal_path in
  (match status with
  | Store.Wal.Torn _ -> ()
  | Store.Wal.Complete -> fail "unknown record tag must terminate the replay as Torn");
  (match records with
  | [ Round_log.Round_start { round = 3 } ] -> ()
  | _ -> fail "the valid prefix must survive a corrupt record body");
  Sys.remove wal_path

(* ------------------------------------------------------------------ *)
(* multi-round sessions *)

let test_session_carries_cstar () =
  (* client 5 falsely flags honest client 1: the revealed share verifies,
     so the flagger is convicted in round 1 and must start round 2 banned *)
  let behaviours = Driver.honest_all n in
  behaviours.(4) <- Driver.False_flags [ 1; 2; 3 ];
  let session = Driver.create_session setup ~seed:"carry" in
  let report =
    Driver.run_session session ~serialize:true ~updates_for ~behaviours ~rounds:2
  in
  if report.Driver.rounds_completed <> 2 then
    fail "both rounds should complete (quorum 3 of 5 holds)";
  if report.Driver.final_banned <> [ 5 ] then
    fail "client 5 must be banned after its round-1 conviction";
  (match report.Driver.round_outcomes with
  | [ (1, o1); (2, o2) ] ->
      let agg1, c1 = agg_and_cstar o1 in
      let agg2, c2 = agg_and_cstar o2 in
      if c1 <> [ 5 ] then fail "round 1 must convict client 5";
      if c2 <> [ 5 ] then fail "round 2 C* must carry the ban";
      let honest = [ 1; 2; 3; 4 ] in
      if agg1 <> Some (expected_sum (updates_for 1) honest) then
        fail "round 1 aggregate must exclude the convicted client";
      if agg2 <> Some (expected_sum (updates_for 2) honest) then
        fail "round 2 aggregate must exclude the banned client"
  | _ -> fail "expected two round outcomes")

let test_session_recovers_mid_run () =
  (* same two-round session, server killed inside round 2: the loop must
     replay the WAL, finish the round and match the uncrashed twin *)
  let behaviours = Driver.honest_all n in
  behaviours.(4) <- Driver.False_flags [ 1; 2; 3 ];
  let twin = Driver.create_session setup ~seed:"mid-run" in
  let want = Driver.run_session twin ~serialize:true ~updates_for ~behaviours ~rounds:2 in
  let wal_path = fresh_wal () in
  let wal = Round_log.create ~fsync:false wal_path in
  let session = Driver.create_session setup ~seed:"mid-run" in
  let report =
    Driver.run_session session ~wal ~crash:(2, Netsim.Proof, Driver.Stage_start) ~updates_for
      ~behaviours ~rounds:2
  in
  Round_log.close wal;
  Sys.remove wal_path;
  if report.Driver.crashes_recovered <> 1 then fail "the round-2 crash must be recovered in-loop";
  if report.Driver.rounds_completed <> 2 then fail "recovered session must complete both rounds";
  let pairs = List.combine want.Driver.round_outcomes report.Driver.round_outcomes in
  List.iter
    (fun ((r, a), (_, b)) ->
      if agg_and_cstar a <> agg_and_cstar b then
        fail "round %d differs between the crashed-and-recovered and uncrashed sessions" r)
    pairs;
  if want.Driver.final_banned <> report.Driver.final_banned then
    fail "final ban list differs after recovery"

(* crashing without a WAL armed is not recoverable: the exception
   must propagate (there is nothing to replay) *)
let test_crash_without_wal_raises () =
  let session = Driver.create_session setup ~seed:"no-wal" in
  match
    Driver.run_round_outcome session ~serialize:true ~crash:(Netsim.Flag, Driver.Stage_start)
      ~updates:(updates_for 1) ~behaviours:(Driver.honest_all n) ~round:1
  with
  | exception Driver.Server_crashed { stage = Netsim.Flag; at = Driver.Stage_start } -> ()
  | exception Driver.Server_crashed _ -> fail "crashed at the wrong point"
  | _ -> fail "the planned crash must raise Server_crashed"

let () =
  Parallel.set_default_jobs 2;
  Alcotest.run "recovery"
    [
      ( "round-log",
        [
          Alcotest.test_case "torn tail" `Quick test_round_log_torn_tail;
          Alcotest.test_case "corrupt record body" `Quick test_round_log_bad_record_body;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "differential sweep" `Slow test_crash_sweep;
          Alcotest.test_case "unfired crash plan" `Quick test_crash_point_not_reached;
          Alcotest.test_case "fresh-session resume" `Quick test_fresh_session_resume;
          Alcotest.test_case "fresh-session resume (loopback)" `Quick
            test_fresh_session_resume_loopback;
          Alcotest.test_case "crash without WAL raises" `Quick test_crash_without_wal_raises;
          Alcotest.test_case "duplicate agg share" `Quick test_duplicate_agg_share_no_double_count;
        ] );
      ( "session",
        [
          Alcotest.test_case "C* carries across rounds" `Quick test_session_carries_cstar;
          Alcotest.test_case "mid-session recovery" `Quick test_session_recovers_mid_run;
        ] );
    ]
