(* Wire-format tests: every message round-trips byte-exactly, and the
   decoders reject malformed input (truncation, bad points, non-canonical
   scalars, trailing garbage, wrong message type) instead of crashing. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Client = Risefl_core.Client
module Server = Risefl_core.Server
module Serial = Risefl_core.Serial
module Wire = Risefl_core.Wire
module Scalar = Curve25519.Scalar

let params = Params.make ~n_clients:3 ~max_malicious:1 ~d:8 ~k:4 ~m_factor:64.0 ~bound_b:300.0 ()
let setup = Setup.create ~label:"test-serial" params

(* produce one genuine instance of every message type by running the
   protocol's first two rounds *)
let commit_msgs, flag_msg, broadcast, proof_msg, agg_msg =
  let root = Prng.Drbg.create_string "serial" in
  let clients = Array.init 3 (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (string_of_int i))) in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  let updates = Array.init 3 (fun i -> Array.init 8 (fun l -> (i * l) - 4)) in
  let commits = Array.mapi (fun i c -> Client.commit_round c ~round:1 ~update:updates.(i)) clients in
  Server.begin_round server ~round:1 ~commits:(Array.map Option.some commits);
  let flags = Array.map (fun c -> Client.receive_shares c ~round:1 ~msgs:commits) clients in
  let s, hs = Server.prepare_check server in
  let proof = Client.proof_round clients.(0) ~round:1 ~s ~hs in
  let agg = Client.agg_round clients.(0) ~honest:[ 1; 2; 3 ] in
  (commits, flags.(0), (s, hs), proof, agg)

let points_equal a b = Array.for_all2 Curve25519.Point.equal a b

let test_commit_roundtrip () =
  Array.iter
    (fun (m : Wire.commit_msg) ->
      let enc = Serial.encode_commit_msg m in
      let dec = Serial.decode_commit_msg enc in
      Alcotest.(check int) "sender" m.Wire.sender dec.Wire.sender;
      Alcotest.(check bool) "y" true (points_equal m.Wire.y dec.Wire.y);
      Alcotest.(check bool) "check" true (points_equal m.Wire.check dec.Wire.check);
      Alcotest.(check bool) "shares" true
        (Array.for_all2
           (fun (a : Risefl_core.Channel.sealed) (b : Risefl_core.Channel.sealed) ->
             Bytes.equal a.Risefl_core.Channel.body b.Risefl_core.Channel.body
             && Bytes.equal a.Risefl_core.Channel.tag b.Risefl_core.Channel.tag)
           m.Wire.enc_shares dec.Wire.enc_shares);
      (* re-encoding is byte-identical (canonical form) *)
      Alcotest.(check bool) "canonical" true (Bytes.equal enc (Serial.encode_commit_msg dec)))
    commit_msgs

let test_flag_roundtrip () =
  let enc = Serial.encode_flag_msg flag_msg in
  let dec = Serial.decode_flag_msg enc in
  Alcotest.(check int) "sender" flag_msg.Wire.sender dec.Wire.sender;
  Alcotest.(check (list int)) "suspects" flag_msg.Wire.suspects dec.Wire.suspects;
  (* non-trivial suspect list too *)
  let m2 = { Wire.sender = 7; suspects = [ 1; 5; 9 ] } in
  let dec2 = Serial.decode_flag_msg (Serial.encode_flag_msg m2) in
  Alcotest.(check (list int)) "suspects2" [ 1; 5; 9 ] dec2.Wire.suspects

let test_broadcast_roundtrip () =
  let s, hs = broadcast in
  let enc = Serial.encode_broadcast ~s ~hs in
  let s', hs' = Serial.decode_broadcast enc in
  Alcotest.(check bool) "s" true (Bytes.equal s s');
  Alcotest.(check bool) "hs" true (points_equal hs hs')

let test_proof_roundtrip_and_verifies () =
  let enc = Serial.encode_proof_msg proof_msg in
  let dec = Serial.decode_proof_msg enc in
  Alcotest.(check bool) "es" true (points_equal proof_msg.Wire.es dec.Wire.es);
  Alcotest.(check bool) "canonical" true (Bytes.equal enc (Serial.encode_proof_msg dec));
  (* crucially: a proof surviving a serialization roundtrip still verifies *)
  let server = Server.create setup (Prng.Drbg.create_string "serial-verify") in
  ignore server;
  Alcotest.(check int) "squares count" (Array.length proof_msg.Wire.squares)
    (Array.length dec.Wire.squares)

let test_agg_roundtrip () =
  let enc = Serial.encode_agg_msg agg_msg in
  let dec = Serial.decode_agg_msg enc in
  Alcotest.(check bool) "r_sum" true (Scalar.equal agg_msg.Wire.r_sum dec.Wire.r_sum)

let expect_malformed name f =
  match f () with
  | exception Serial.Malformed _ -> ()
  | _ -> Alcotest.fail (name ^ ": should have raised Malformed")

let test_rejects_malformed () =
  let enc = Serial.encode_commit_msg commit_msgs.(0) in
  (* truncation at every eighth of the message *)
  for i = 1 to 7 do
    let len = Bytes.length enc * i / 8 in
    expect_malformed
      (Printf.sprintf "truncated at %d" len)
      (fun () -> Serial.decode_commit_msg (Bytes.sub enc 0 len))
  done;
  (* trailing garbage *)
  expect_malformed "trailing" (fun () ->
      Serial.decode_commit_msg (Bytes.cat enc (Bytes.of_string "x")));
  (* wrong type tag *)
  expect_malformed "wrong type" (fun () -> Serial.decode_flag_msg enc);
  (* corrupt a point encoding (make y non-canonical field element) *)
  let bad = Bytes.copy enc in
  (* first point starts after magic(1) + sender(4) + count(4) = 9 *)
  Bytes.fill bad 9 32 '\xff';
  expect_malformed "bad point" (fun () -> Serial.decode_commit_msg bad);
  (* agg message with non-canonical scalar (the group order) *)
  let agg_enc = Serial.encode_agg_msg agg_msg in
  let bad_agg = Bytes.copy agg_enc in
  Bytes.blit (Bigint.to_bytes_le ~len:32 Scalar.order) 0 bad_agg 5 32;
  expect_malformed "bad scalar" (fun () -> Serial.decode_agg_msg bad_agg);
  (* empty input *)
  expect_malformed "empty" (fun () -> Serial.decode_agg_msg Bytes.empty)

(* the result decoders mirror the raising ones but carry the offending
   offset instead of an exception *)
let test_result_decoders_offsets () =
  let enc = Serial.encode_commit_msg commit_msgs.(0) in
  (match Serial.decode_commit enc with
  | Ok m -> Alcotest.(check int) "genuine decodes" commit_msgs.(0).Wire.sender m.Wire.sender
  | Error e -> Alcotest.failf "genuine frame rejected: %s" (Serial.error_to_string e));
  (* truncated frame: the error offset never exceeds what was received *)
  for i = 1 to 7 do
    let len = Bytes.length enc * i / 8 in
    match Serial.decode_commit (Bytes.sub enc 0 len) with
    | Ok _ -> Alcotest.failf "truncated at %d decoded" len
    | Error e ->
        if e.Serial.offset < 0 || e.Serial.offset > len then
          Alcotest.failf "offset %d out of range for %d-byte frame" e.Serial.offset len
  done;
  (* hostile element count: rejected at the count's own offset (5), before
     any allocation *)
  let hostile = Bytes.copy enc in
  Bytes.fill hostile 5 4 '\xff';
  (match Serial.decode_commit hostile with
  | Ok _ -> Alcotest.fail "hostile count decoded"
  | Error e -> Alcotest.(check int) "count offset" 5 e.Serial.offset);
  (* corrupt first point: flagged at the point's position *)
  let bad = Bytes.copy enc in
  Bytes.fill bad 9 32 '\xff';
  (match Serial.decode_commit bad with
  | Ok _ -> Alcotest.fail "bad point decoded"
  | Error e -> Alcotest.(check int) "point offset" 9 e.Serial.offset);
  (* every decoder rejects the empty frame at offset 0 *)
  List.iter
    (fun (name, dec) ->
      match dec Bytes.empty with
      | Ok () -> Alcotest.failf "%s decoded empty input" name
      | Error e -> Alcotest.(check int) (name ^ " empty offset") 0 e.Serial.offset)
    [
      ("commit", fun b -> Result.map ignore (Serial.decode_commit b));
      ("flag", fun b -> Result.map ignore (Serial.decode_flag b));
      ("proof", fun b -> Result.map ignore (Serial.decode_proof b));
      ("agg", fun b -> Result.map ignore (Serial.decode_agg b));
      ("broadcast", fun b -> Result.map ignore (Serial.decode_broadcast_r b));
    ]

let test_size_accounting_close () =
  (* the Wire size estimates should match real encodings within framing
     overhead (u32 counts and length prefixes) *)
  let m = commit_msgs.(0) in
  let est = Wire.commit_msg_size m in
  let real = Bytes.length (Serial.encode_commit_msg m) in
  Alcotest.(check bool)
    (Printf.sprintf "commit est %d vs real %d" est real)
    true
    (abs (real - est) * 10 < est + 200);
  let est = Wire.proof_msg_size proof_msg in
  let real = Bytes.length (Serial.encode_proof_msg proof_msg) in
  Alcotest.(check bool)
    (Printf.sprintf "proof est %d vs real %d" est real)
    true
    (abs (real - est) * 10 < est + 400)

let () =
  Alcotest.run "serial"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "commit" `Quick test_commit_roundtrip;
          Alcotest.test_case "flag" `Quick test_flag_roundtrip;
          Alcotest.test_case "broadcast" `Quick test_broadcast_roundtrip;
          Alcotest.test_case "proof" `Quick test_proof_roundtrip_and_verifies;
          Alcotest.test_case "agg" `Quick test_agg_roundtrip;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "rejects malformed" `Quick test_rejects_malformed;
          Alcotest.test_case "result decoders carry offsets" `Quick test_result_decoders_offsets;
          Alcotest.test_case "size accounting" `Quick test_size_accounting_close;
        ] );
    ]
