(* lib/topology tests: graph laws (regularity, symmetry, connectivity,
   determinism) as qcheck properties, the security calculation, the
   share_at/share bit-compatibility, Vsss partial-share recovery, the
   wire-v2 commit codec, and differential end-to-end runs of the
   k-regular commit/agg path against the all-to-all reference —
   including the k = n−1 normalization anchor, agg-stage dropout
   recovery, streamed rounds and crash/resume. *)

module Topology = Risefl_topology.Topology
module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Driver = Risefl_core.Driver
module Server = Risefl_core.Server
module Client = Risefl_core.Client
module Serial = Risefl_core.Serial
module Wire = Risefl_core.Wire
module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Round_log = Risefl_core.Round_log

let fail fmt = Printf.ksprintf (fun s -> Alcotest.fail s) fmt

let prop ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let cohort n = Array.init n (fun i -> i + 1)

(* ------------------------------------------------------------------ *)
(* graph laws *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 4 48 in
    let* degree = int_range 2 (n - 1) in
    let* round = int_range 1 5 in
    return (n, degree, round))

let make_graph (n, degree, round) =
  Topology.make ~seed:"topo-prop" ~round ~cohort:(cohort n) ~degree

let graph_props =
  [
    prop "k-regular: every node has the same degree" gen_graph (fun ((n, degree, _) as g) ->
        let t = make_graph g in
        let k = Topology.degree t in
        k >= min (max 2 degree) (n - 1)
        && Array.for_all
             (fun i -> Array.length (Topology.neighbors t i) = k)
             (cohort n));
    prop "symmetric, no self-loops" gen_graph (fun ((n, _, _) as g) ->
        let t = make_graph g in
        Array.for_all
          (fun i ->
            (not (Topology.is_neighbor t i i))
            && Array.for_all (fun j -> Topology.is_neighbor t j i) (Topology.neighbors t i))
          (cohort n));
    prop "connected" gen_graph (fun ((n, _, _) as g) ->
        let t = make_graph g in
        let seen = Array.make (n + 1) false in
        let q = Queue.create () in
        Queue.add 1 q;
        seen.(1) <- true;
        let count = ref 1 in
        while not (Queue.is_empty q) do
          let i = Queue.pop q in
          Array.iter
            (fun j ->
              if not seen.(j) then begin
                seen.(j) <- true;
                incr count;
                Queue.add j q
              end)
            (Topology.neighbors t i)
        done;
        !count = n);
    prop "deterministic in (seed, round, cohort, degree)" gen_graph (fun g ->
        let a = make_graph g and b = make_graph g in
        Bytes.equal (Topology.digest a) (Topology.digest b)
        && Array.for_all
             (fun i -> Topology.neighbors a i = Topology.neighbors b i)
             (cohort (let n, _, _ = g in n)));
    prop "digest separates rounds" gen_graph (fun (n, degree, round) ->
        let a = make_graph (n, degree, round) and b = make_graph (n, degree, round + 1) in
        not (Bytes.equal (Topology.digest a) (Topology.digest b)));
    prop "neighborhood-majority threshold" gen_graph (fun g ->
        let t = make_graph g in
        Topology.threshold t = (Topology.degree t / 2) + 1);
  ]

let test_plan_normalization () =
  let n = 10 in
  let plan mode = Topology.plan ~mode ~seed:"s" ~round:1 ~cohort:(cohort n) in
  if plan Topology.Full <> None then fail "Full must plan to None";
  if plan (Topology.Kregular (n - 1)) <> None then fail "k = n-1 must normalize to full";
  if plan (Topology.Kregular 1000) <> None then fail "k >= n must normalize to full";
  if Topology.plan ~mode:(Topology.Kregular 2) ~seed:"s" ~round:1 ~cohort:(cohort 2) <> None
  then fail "n <= 2 must normalize to full";
  match plan (Topology.Kregular 4) with
  | None -> fail "small k must produce a real graph"
  | Some t ->
      if Topology.degree t < 4 then fail "planned degree below request";
      if Topology.n t <> n then fail "planned size wrong"

let test_mode_strings () =
  let roundtrip m =
    match Topology.mode_of_string (Topology.mode_to_string m) with
    | Some m' when m' = m -> ()
    | _ -> fail "mode %s did not round-trip" (Topology.mode_to_string m)
  in
  roundtrip Topology.Full;
  roundtrip (Topology.Kregular 6);
  (match Topology.mode_of_string "kregular" with
  | Some (Topology.Kregular 0) -> ()
  | _ -> fail "bare 'kregular' should parse as auto-degree");
  if Topology.mode_of_string "hypercube" <> None then fail "junk mode parsed"

let test_recommend_degree () =
  let k n sigma =
    Topology.recommend_degree ~n ~dropout:0.05 ~corruption:0.2 ~sigma
  in
  let k100 = k 100 40 in
  if k100 < 2 || k100 > 99 then fail "recommended degree out of range: %d" k100;
  if k100 <> k 100 40 then fail "recommendation not deterministic";
  if k 100 60 < k 100 20 then fail "recommendation not monotone in sigma";
  (* a tiny cohort cannot meet 2^-40 bounds below all-to-all *)
  if k 4 40 <> 3 then fail "tiny cohort should recommend n-1";
  (* the binomial bound depends only on (delta, gamma, sigma), so once n
     is large enough that the n-1 clamp does not bite, the required
     degree is flat as n doubles — that is the whole point of the
     topology *)
  let k500 = k 500 40 and k1000 = k 1000 40 in
  if k500 >= 499 then fail "k500=%d still clamped; test parameters too hostile" k500;
  if k1000 <> k500 then fail "degree should not grow with n (k500=%d k1000=%d)" k500 k1000

(* ------------------------------------------------------------------ *)
(* share_at / share compatibility and partial-share recovery *)

let g_pt = Point.mul_base (Scalar.of_int 7919)

let test_share_at_equiv () =
  let secret = Scalar.of_int 123_456 in
  let d1 = Prng.Drbg.create_string "share-at-equiv" in
  let d2 = Prng.Drbg.create_string "share-at-equiv" in
  let s1, c1 = Vsss.share d1 ~secret ~n:7 ~t:4 ~g:g_pt in
  let s2, c2 = Vsss.share_at d2 ~secret ~xs:(Array.init 7 (fun i -> i + 1)) ~t:4 ~g:g_pt in
  if not (Array.for_all2 Point.equal c1 c2) then fail "check strings differ";
  Array.iter2
    (fun (a : Vsss.share) (b : Vsss.share) ->
      if a.Vsss.idx <> b.Vsss.idx || not (Scalar.equal a.Vsss.value b.Vsss.value) then
        fail "share_at over 1..n is not bit-identical to share")
    s1 s2

let test_share_at_validation () =
  let secret = Scalar.of_int 5 in
  let mk xs t =
    ignore (Vsss.share_at (Prng.Drbg.create_string "v") ~secret ~xs ~t ~g:g_pt)
  in
  (match mk [| 1; 2; 2 |] 2 with
  | () -> fail "duplicate evaluation points accepted"
  | exception Invalid_argument _ -> ());
  (match mk [| 0; 1 |] 2 with
  | () -> fail "evaluation point 0 accepted"
  | exception Invalid_argument _ -> ());
  match mk [| 1; 2 |] 3 with
  | () -> fail "t > |xs| accepted"
  | exception Invalid_argument _ -> ()

let gen_sharing =
  QCheck2.Gen.(
    let* n = int_range 3 10 in
    let* t = int_range 2 n in
    let* secret = int_range 1 1_000_000 in
    let* salt = int_range 0 1000 in
    return (n, t, secret, salt))

let make_sharing (n, t, secret, salt) =
  let drbg = Prng.Drbg.create_string (Printf.sprintf "vsss-prop/%d" salt) in
  let shares, check = Vsss.share drbg ~secret:(Scalar.of_int secret) ~n ~t ~g:g_pt in
  (shares, check, Scalar.of_int secret)

let vsss_props =
  [
    prop "any exactly-threshold subset recovers" gen_sharing (fun ((n, t, _, _) as c) ->
        let shares, _, secret = make_sharing c in
        let subset off = List.init t (fun i -> shares.((off + i) mod n)) in
        List.for_all
          (fun off -> Scalar.equal secret (Vsss.recover (subset off)))
          [ 0; 1; n - t ]);
    prop "threshold-1 shares reconstruct garbage" gen_sharing (fun ((_, t, _, _) as c) ->
        let shares, _, secret = make_sharing c in
        let partial = List.init (t - 1) (fun i -> shares.(i)) in
        (* one share of a degree>=1 polynomial never satisfies f(0) *)
        match Vsss.recover partial with
        | v -> not (Scalar.equal secret v)
        | exception Invalid_argument _ -> t - 1 = 0);
    prop "duplicate shares rejected" gen_sharing (fun ((_, t, _, _) as c) ->
        let shares, _, _ = make_sharing c in
        let dup = shares.(0) :: List.init (t - 1) (fun i -> shares.(i)) in
        match Vsss.recover dup with
        | _ -> false
        | exception Invalid_argument _ -> true);
    prop "every share verifies; a tampered one does not" gen_sharing (fun c ->
        let shares, check, _ = make_sharing c in
        Array.for_all (fun s -> Vsss.verify ~g:g_pt ~check s) shares
        && not
             (Vsss.verify ~g:g_pt ~check
                {
                  shares.(0) with
                  Vsss.value = Scalar.add shares.(0).Vsss.value Scalar.one;
                }));
  ]

let test_recover_empty () =
  match Vsss.recover [] with
  | _ -> fail "empty share list accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* wire v2 *)

let params5 = Params.make ~n_clients:5 ~max_malicious:1 ~d:8 ~k:3 ~m_factor:64.0 ~bound_b:300.0 ()
let setup5 = Setup.create ~label:"test-topology-5" params5
let updates_of n d = Array.init n (fun i -> Array.init d (fun l -> ((i * l) mod 7) - 3))

let test_wire_v2 () =
  let session = Driver.create_session setup5 ~seed:"wire-v2" in
  let clients = Driver.session_clients session in
  let updates = updates_of 5 8 in
  let topo = Topology.make ~seed:"wire-v2" ~round:1 ~cohort:(cohort 5) ~degree:2 in
  (* v1: no digest, magic 0xC1 *)
  let v1 = Client.commit_round clients.(0) ~round:1 ~update:updates.(0) in
  let b1 = Serial.encode_commit_msg v1 in
  if Char.code (Bytes.get b1 0) <> 0xC1 then fail "v1 magic wrong";
  if (Serial.decode_commit_msg b1).Wire.topo_digest <> None then fail "v1 grew a digest";
  (* v2: digest present, magic 0xC8, neighbor-count shares *)
  let v2 = Client.commit_round ~topo clients.(1) ~round:1 ~update:updates.(1) in
  let b2 = Serial.encode_commit_msg v2 in
  if Char.code (Bytes.get b2 0) <> 0xC8 then fail "v2 magic wrong";
  if Array.length v2.Wire.enc_shares <> Topology.degree topo then
    fail "v2 commit carries %d shares, expected k=%d" (Array.length v2.Wire.enc_shares)
      (Topology.degree topo);
  let dec = Serial.decode_commit_msg b2 in
  (match dec.Wire.topo_digest with
  | Some d when Bytes.equal d (Topology.digest topo) -> ()
  | Some _ -> fail "v2 digest mangled in transit"
  | None -> fail "v2 digest dropped");
  if not (Bytes.equal (Serial.encode_commit_msg dec) b2) then fail "v2 re-encode not canonical";
  (* truncations die, as does a v2 body relabeled v1 *)
  for cut = 0 to Bytes.length b2 - 1 do
    match Serial.decode_commit (Bytes.sub b2 0 cut) with
    | Ok _ -> fail "truncation at %d accepted" cut
    | Error _ -> ()
  done;
  let relabeled = Bytes.copy b2 in
  Bytes.set relabeled 0 (Char.chr 0xC1);
  match Serial.decode_commit relabeled with
  | Ok _ -> fail "v2 body with v1 magic accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* end-to-end differentials *)

let n8 = 8
let d8 = 8
let params8 = Params.make ~n_clients:n8 ~max_malicious:1 ~d:d8 ~k:3 ~m_factor:64.0 ~bound_b:300.0 ()
let setup8 = Setup.create ~label:"test-topology-8" params8
let updates8 = updates_of n8 d8

let run_one ?stream ?wal ?crash ~topology ~behaviours () =
  let session = Driver.create_session setup8 ~seed:"topo-e2e" in
  ( Driver.run_round_outcome ?stream ?wal ?crash ~topology session ~updates:updates8 ~behaviours
      ~round:1,
    session )

let agg_of outcome =
  match outcome with
  | Driver.Completed stats -> stats.Driver.aggregate
  | o -> fail "round did not complete: %s" (Driver.outcome_to_string o)

let reference_agg =
  lazy (agg_of (fst (run_one ~topology:Topology.Full ~behaviours:(Driver.honest_all n8) ())))

let test_full_vs_kregular_honest () =
  let full = Lazy.force reference_agg in
  if full = None then fail "reference aggregate missing";
  List.iter
    (fun k ->
      let got =
        agg_of (fst (run_one ~topology:(Topology.Kregular k) ~behaviours:(Driver.honest_all n8) ()))
      in
      if got <> full then fail "kregular k=%d aggregate differs from full" k)
    [ 3; 4; 5 ]

(* the correctness anchor: k = n-1 IS the all-to-all path *)
let test_max_degree_bit_identity () =
  let full, _ = run_one ~topology:Topology.Full ~behaviours:(Driver.honest_all n8) () in
  let kmax, _ =
    run_one ~topology:(Topology.Kregular (n8 - 1)) ~behaviours:(Driver.honest_all n8) ()
  in
  (match (full, kmax) with
  | Driver.Completed a, Driver.Completed b ->
      if a.Driver.aggregate <> b.Driver.aggregate then fail "k=n-1 aggregate differs";
      if a.Driver.flagged <> b.Driver.flagged then fail "k=n-1 C* differs";
      if a.Driver.client_up_bytes <> b.Driver.client_up_bytes then
        fail "k=n-1 up-bytes differ: wire path diverged";
      if a.Driver.client_down_bytes <> b.Driver.client_down_bytes then
        fail "k=n-1 down-bytes differ: wire path diverged"
  | _ -> fail "round aborted");
  (* and the commit bytes themselves are v1, byte for byte *)
  let commit topo_mode =
    let session = Driver.create_session setup8 ~seed:"topo-e2e" in
    let topo =
      Topology.plan ~mode:topo_mode ~seed:"topo-e2e" ~round:1 ~cohort:(cohort n8)
    in
    Serial.encode_commit_msg
      (Client.commit_round ?topo (Driver.session_clients session).(0) ~round:1
         ~update:updates8.(0))
  in
  if not (Bytes.equal (commit Topology.Full) (commit (Topology.Kregular (n8 - 1)))) then
    fail "k=n-1 commit bytes differ from full"

(* seeded dropout ladder: every agg-stage dropout is recovered from its
   neighborhood, so the aggregate still includes its update — i.e. it
   equals the honest full-topology aggregate *)
let test_agg_dropout_recovery () =
  let full = Lazy.force reference_agg in
  List.iter
    (fun dropouts ->
      let behaviours = Driver.honest_all n8 in
      List.iter (fun i -> behaviours.(i - 1) <- Driver.Agg_silent) dropouts;
      let got = agg_of (fst (run_one ~topology:(Topology.Kregular 4) ~behaviours ())) in
      if got <> full then
        fail "aggregate with recovered dropouts [%s] differs from honest run"
          (String.concat ";" (List.map string_of_int dropouts)))
    [ [ 1 ]; [ 4 ]; [ 8 ]; [ 2; 6 ]; [ 3; 4 ] ]

let test_bad_agg_share_kregular () =
  let behaviours = Driver.honest_all n8 in
  behaviours.(2) <- Driver.Bad_agg_share;
  match fst (run_one ~topology:(Topology.Kregular 4) ~behaviours ()) with
  | Driver.Completed stats -> (
      match stats.Driver.failure with
      | Some Server.Aggregate_mismatch -> ()
      | Some e ->
          fail "expected Aggregate_mismatch, got %s" (Server.agg_error_to_string e)
      | None -> fail "tampered masked sum slipped through the commitment check")
  | o -> fail "unexpected outcome: %s" (Driver.outcome_to_string o)

let test_streamed_kregular () =
  let full = Lazy.force reference_agg in
  let behaviours = Driver.honest_all n8 in
  behaviours.(5) <- Driver.Agg_silent;
  let stream = Server.stream_cfg ~shards:2 ~batch:3 () in
  let got = agg_of (fst (run_one ~stream ~topology:(Topology.Kregular 4) ~behaviours ())) in
  if got <> full then fail "streamed kregular aggregate differs from honest full run"

let test_crash_resume_kregular () =
  let behaviours = Driver.honest_all n8 in
  behaviours.(3) <- Driver.Agg_silent;
  let topology = Topology.Kregular 4 in
  let uncrashed = agg_of (fst (run_one ~topology ~behaviours ())) in
  let wal_path = Filename.temp_file "test-topology" ".wal" in
  let wal = Round_log.create ~fsync:false wal_path in
  let outcome, session =
    match run_one ~wal ~crash:(Netsim.Proof, Driver.Stage_frame 2) ~topology ~behaviours () with
    | outcome, session -> (outcome, session)
    | exception Driver.Server_crashed _ ->
        let session = Driver.create_session setup8 ~seed:"topo-e2e" in
        let records, _ = Round_log.replay wal_path in
        ( Driver.recover_round ~wal ~topology session ~records ~updates:updates8 ~behaviours
            ~round:1,
          session )
  in
  ignore session;
  Round_log.close wal;
  Sys.remove wal_path;
  if agg_of outcome <> uncrashed then
    fail "kregular crash/resume aggregate differs from uncrashed run"

let test_netsim_faults_kregular () =
  let plan =
    match Netsim.plan_of_string "drop=0.1,flip=0.05,dup=0.05,trunc=0.05" with
    | Ok p -> p
    | Error e -> fail "bad plan: %s" e
  in
  let run () =
    let net = Netsim.create ~plan ~deadline:4 ~seed:"topo-faults" () in
    let session = Driver.create_session setup8 ~seed:"topo-e2e" in
    Driver.run_round_outcome ~transport:net ~topology:(Topology.Kregular 4) session
      ~updates:updates8 ~behaviours:(Driver.honest_all n8) ~round:1
  in
  (* typed outcome, no escape; and deterministic in the fault seed *)
  let a = run () and b = run () in
  match (a, b) with
  | Driver.Completed sa, Driver.Completed sb ->
      if sa.Driver.aggregate <> sb.Driver.aggregate || sa.Driver.flagged <> sb.Driver.flagged
      then fail "faulted kregular round not deterministic"
  | oa, ob ->
      if Driver.outcome_to_string oa <> Driver.outcome_to_string ob then
        fail "faulted kregular outcomes diverge"

let () =
  Alcotest.run "topology"
    [
      ("graph-laws", graph_props);
      ( "planning",
        [
          Alcotest.test_case "plan normalization" `Quick test_plan_normalization;
          Alcotest.test_case "mode strings" `Quick test_mode_strings;
          Alcotest.test_case "recommend_degree" `Quick test_recommend_degree;
        ] );
      ( "vsss",
        [
          Alcotest.test_case "share_at == share over 1..n" `Quick test_share_at_equiv;
          Alcotest.test_case "share_at validation" `Quick test_share_at_validation;
          Alcotest.test_case "recover []" `Quick test_recover_empty;
        ]
        @ vsss_props );
      ("wire", [ Alcotest.test_case "commit v1/v2 codec" `Quick test_wire_v2 ]);
      ( "e2e",
        [
          Alcotest.test_case "full vs kregular (honest)" `Slow test_full_vs_kregular_honest;
          Alcotest.test_case "k=n-1 bit-identity" `Slow test_max_degree_bit_identity;
          Alcotest.test_case "agg dropout recovery ladder" `Slow test_agg_dropout_recovery;
          Alcotest.test_case "bad masked sum -> mismatch" `Slow test_bad_agg_share_kregular;
          Alcotest.test_case "streamed kregular" `Slow test_streamed_kregular;
          Alcotest.test_case "crash/resume kregular" `Slow test_crash_resume_kregular;
          Alcotest.test_case "netsim faults kregular" `Slow test_netsim_faults_kregular;
        ] );
    ]
