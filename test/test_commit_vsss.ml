(* Tests for Pedersen commitments (incl. the paper's shared-blind vector
   form and homomorphisms) and verifiable Shamir secret sharing. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Gens = Curve25519.Gens
module Pedersen = Commitments.Pedersen

let drbg = Prng.Drbg.create_string "test-commit-vsss"
let g = Gens.derive "test/g"
let h = Gens.derive "test/h"
let key = Pedersen.make_key ~g ~h

(* --- pedersen --- *)

let test_commit_open () =
  for _ = 1 to 10 do
    let v = Scalar.random drbg and r = Scalar.random drbg in
    let c = Pedersen.commit key ~value:v ~blind:r in
    Alcotest.(check bool) "opens" true (Pedersen.verify_open key c ~value:v ~blind:r);
    Alcotest.(check bool) "wrong value" false
      (Pedersen.verify_open key c ~value:(Scalar.add v Scalar.one) ~blind:r);
    Alcotest.(check bool) "wrong blind" false
      (Pedersen.verify_open key c ~value:v ~blind:(Scalar.add r Scalar.one))
  done

let test_commit_small_agrees () =
  List.iter
    (fun v ->
      let r = Scalar.random drbg in
      Alcotest.(check bool) (Printf.sprintf "v=%d" v) true
        (Point.equal (Pedersen.commit_small key ~value:v ~blind:r)
           (Pedersen.commit key ~value:(Scalar.of_int v) ~blind:r)))
    [ 0; 1; -1; 12345; -32768; 32767 ]

let test_commit_homomorphic () =
  let v1 = Scalar.random drbg and r1 = Scalar.random drbg in
  let v2 = Scalar.random drbg and r2 = Scalar.random drbg in
  let c1 = Pedersen.commit key ~value:v1 ~blind:r1 in
  let c2 = Pedersen.commit key ~value:v2 ~blind:r2 in
  Alcotest.(check bool) "C(v1,r1)C(v2,r2)=C(v1+v2,r1+r2)" true
    (Point.equal (Point.add c1 c2)
       (Pedersen.commit key ~value:(Scalar.add v1 v2) ~blind:(Scalar.add r1 r2)))

let test_commit_vec_shared_blind () =
  let d = 8 in
  let bases = Gens.derive_many "test/w" d in
  let values = Array.init d (fun i -> (i * 17) - 50) in
  let blind = Scalar.random drbg in
  let c = Pedersen.commit_vec ~g_table:key.Pedersen.g_table ~bases ~values ~blind in
  Alcotest.(check int) "length" d (Array.length c);
  (* element l must equal g^{u_l} w_l^r *)
  Array.iteri
    (fun l cl ->
      let expected = Point.add (Point.mul_small values.(l) g) (Point.mul blind bases.(l)) in
      Alcotest.(check bool) (Printf.sprintf "coord %d" l) true (Point.equal cl expected))
    c;
  (* aggregation identity of Eqn 6: product over two clients *)
  let values2 = Array.init d (fun i -> i - 3) in
  let blind2 = Scalar.random drbg in
  let c2 = Pedersen.commit_vec ~g_table:key.Pedersen.g_table ~bases ~values:values2 ~blind:blind2 in
  let sum = Pedersen.add c c2 in
  let expected_sum =
    Pedersen.commit_vec ~g_table:key.Pedersen.g_table ~bases
      ~values:(Array.map2 ( + ) values values2)
      ~blind:(Scalar.add blind blind2)
  in
  Array.iteri
    (fun l s -> Alcotest.(check bool) (Printf.sprintf "agg %d" l) true (Point.equal s expected_sum.(l)))
    sum

let test_elgamal () =
  let r = Scalar.random drbg in
  let c = Pedersen.Elgamal.commit key ~value:42 ~blind:r in
  Alcotest.(check bool) "opens" true (Pedersen.Elgamal.verify_open key c ~value:42 ~blind:r);
  Alcotest.(check bool) "wrong" false (Pedersen.Elgamal.verify_open key c ~value:43 ~blind:r);
  let r2 = Scalar.random drbg in
  let c2 = Pedersen.Elgamal.commit key ~value:(-7) ~blind:r2 in
  let s = Pedersen.Elgamal.add c c2 in
  Alcotest.(check bool) "homomorphic" true
    (Pedersen.Elgamal.verify_open key s ~value:35 ~blind:(Scalar.add r r2))

(* --- vsss --- *)

let test_share_recover () =
  List.iter
    (fun (n, t) ->
      let secret = Scalar.random drbg in
      let shares, _check = Vsss.share drbg ~secret ~n ~t ~g in
      Alcotest.(check int) "n shares" n (Array.length shares);
      (* any t shares recover *)
      let subset = Array.to_list (Array.sub shares 0 t) in
      Alcotest.(check bool) "recover front" true (Scalar.equal secret (Vsss.recover subset));
      let subset_back = Array.to_list (Array.sub shares (n - t) t) in
      Alcotest.(check bool) "recover back" true (Scalar.equal secret (Vsss.recover subset_back));
      (* all n shares also recover *)
      Alcotest.(check bool) "recover all" true (Scalar.equal secret (Vsss.recover (Array.to_list shares))))
    [ (5, 3); (10, 1); (7, 7); (20, 11) ]

let test_fewer_shares_no_recover () =
  let secret = Scalar.random drbg in
  let shares, _ = Vsss.share drbg ~secret ~n:10 ~t:5 ~g in
  let subset = Array.to_list (Array.sub shares 0 4) in
  (* 4 < t shares: interpolation gives (whp) a different value *)
  Alcotest.(check bool) "no recover" false (Scalar.equal secret (Vsss.recover subset))

let test_verify_accepts_valid () =
  let secret = Scalar.random drbg in
  let shares, check = Vsss.share drbg ~secret ~n:8 ~t:4 ~g in
  Array.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "share %d" s.Vsss.idx) true (Vsss.verify ~g ~check s))
    shares

let test_verify_rejects_forged () =
  let secret = Scalar.random drbg in
  let shares, check = Vsss.share drbg ~secret ~n:8 ~t:4 ~g in
  let forged = { shares.(0) with Vsss.value = Scalar.add shares.(0).Vsss.value Scalar.one } in
  Alcotest.(check bool) "forged value" false (Vsss.verify ~g ~check forged);
  let swapped = { shares.(0) with Vsss.idx = 2 } in
  Alcotest.(check bool) "wrong index" false (Vsss.verify ~g ~check swapped);
  Alcotest.(check bool) "bad index" false (Vsss.verify ~g ~check { shares.(0) with Vsss.idx = 0 })

let test_check_commitment () =
  let secret = Scalar.random drbg in
  let _, check = Vsss.share drbg ~secret ~n:5 ~t:3 ~g in
  Alcotest.(check bool) "Psi(0) = g^secret" true
    (Point.equal (Vsss.commitment_of_check check) (Point.mul secret g))

let test_homomorphism () =
  let s1 = Scalar.random drbg and s2 = Scalar.random drbg in
  let sh1, c1 = Vsss.share drbg ~secret:s1 ~n:6 ~t:3 ~g in
  let sh2, c2 = Vsss.share drbg ~secret:s2 ~n:6 ~t:3 ~g in
  let sum_shares = Array.map2 Vsss.add_shares sh1 sh2 in
  let sum_check = Vsss.add_checks c1 c2 in
  (* summed shares verify against the summed check string *)
  Array.iter
    (fun s -> Alcotest.(check bool) "verify sum" true (Vsss.verify ~g ~check:sum_check s))
    sum_shares;
  (* and recover the summed secret *)
  Alcotest.(check bool) "recover sum" true
    (Scalar.equal (Scalar.add s1 s2) (Vsss.recover (Array.to_list (Array.sub sum_shares 0 3))))

let test_share_input_validation () =
  Alcotest.check_raises "t=0" (Invalid_argument "Vsss.share: need 0 < t <= n") (fun () ->
      ignore (Vsss.share drbg ~secret:Scalar.one ~n:5 ~t:0 ~g));
  Alcotest.check_raises "t>n" (Invalid_argument "Vsss.share: need 0 < t <= n") (fun () ->
      ignore (Vsss.share drbg ~secret:Scalar.one ~n:5 ~t:6 ~g));
  Alcotest.check_raises "duplicate" (Invalid_argument "Vsss.recover: duplicate shares") (fun () ->
      let s = { Vsss.idx = 1; value = Scalar.one } in
      ignore (Vsss.recover [ s; s ]));
  Alcotest.check_raises "empty" (Invalid_argument "Vsss.recover: no shares") (fun () ->
      ignore (Vsss.recover []))

let () =
  Alcotest.run "commitments-vsss"
    [
      ( "pedersen",
        [
          Alcotest.test_case "commit/open" `Quick test_commit_open;
          Alcotest.test_case "commit_small agrees" `Quick test_commit_small_agrees;
          Alcotest.test_case "homomorphic" `Quick test_commit_homomorphic;
          Alcotest.test_case "shared-blind vector (Eqn 2/6)" `Quick test_commit_vec_shared_blind;
          Alcotest.test_case "elgamal" `Quick test_elgamal;
        ] );
      ( "vsss",
        [
          Alcotest.test_case "share/recover" `Quick test_share_recover;
          Alcotest.test_case "threshold" `Quick test_fewer_shares_no_recover;
          Alcotest.test_case "verify valid" `Quick test_verify_accepts_valid;
          Alcotest.test_case "verify rejects forged" `Quick test_verify_rejects_forged;
          Alcotest.test_case "check commitment" `Quick test_check_commitment;
          Alcotest.test_case "homomorphism" `Quick test_homomorphism;
          Alcotest.test_case "input validation" `Quick test_share_input_validation;
        ] );
    ]
