(* Elastic membership: seeded churn schedules, key-rotation continuity,
   the elastic-vs-scripted-twin differential, crash recovery at epoch
   boundaries, rejoin standing, and the Epoch WAL record's corruption
   behaviour. *)

module Driver = Risefl_core.Driver
module Membership = Risefl_core.Membership
module Client = Risefl_core.Client
module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Round_log = Risefl_core.Round_log
module Reliable = Risefl_core.Reliable
module Topology = Risefl_topology.Topology
module Updates = Risefl_transport.Updates
module Point = Curve25519.Point

let fail fmt = Alcotest.failf fmt

let n = 6
let m = 1
let d = 8
let k = 3
let bound = 900.0
let rounds = 6

let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:128.0 ~bound_b:bound ()
let setup = Setup.create ~label:"cli/test-churn" params

(* churny enough that a 6-round run sees leaves, rejoins and rotations;
   min_cohort 4 keeps every round over the quorum threshold t = m+1 *)
let spec = { Membership.p_leave = 0.35; p_rejoin = 0.6; p_rotate = 0.25; min_cohort = 4 }

(* outcomes projected to their deterministic content (timings dropped) *)
let view = function
  | Driver.Completed s -> `Completed (s.Driver.flagged, s.Driver.aggregate)
  | Driver.Aborted_insufficient_quorum { stage; survivors; needed } ->
      `Quorum (stage, survivors, needed)
  | Driver.Aborted_decode ids -> `Decode ids

let views report = List.map (fun (r, o) -> (r, view o)) report.Driver.round_outcomes

let tmp_name suffix =
  let f = Filename.temp_file "test-churn" suffix in
  Sys.remove f;
  f

let rm_f f = try Sys.remove f with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* seeded churn schedules *)

let test_schedule_deterministic () =
  let s1 = Membership.schedule ~seed:"alpha" spec ~n ~rounds in
  let s2 = Membership.schedule ~seed:"alpha" spec ~n ~rounds in
  if s1 <> s2 then fail "same seed must derive the identical schedule";
  if s1.(0) <> [] then fail "round 1 must start with the full cohort";
  let s3 = Membership.schedule ~seed:"beta" spec ~n ~rounds in
  if s1 = s3 then fail "the seed does not drive the schedule";
  let events = Array.fold_left (fun acc evs -> acc + List.length evs) 0 s1 in
  if events = 0 then fail "expected churn events under this spec";
  (* the floor: replaying any schedule through Membership must never
     shrink the cohort below min_cohort *)
  let session = Driver.create_session setup ~seed:"alpha" in
  let mem =
    Membership.create (Array.map Client.public_key (Driver.session_clients session))
  in
  Array.iteri
    (fun i evs ->
      let ep =
        Membership.advance mem ~round:(i + 1) ~events:evs ~rotation_for:(fun ~id ~gen:_ ->
            Some (Client.rotation_proof (Driver.session_clients session).(id - 1)))
      in
      List.iter
        (function
          | Membership.D_rotated j ->
              Client.rotate_to
                (Driver.session_clients session).(j - 1)
                ~gen:ep.Membership.ep_gens.(j - 1)
          | _ -> ())
        ep.Membership.ep_deltas;
      if Array.length ep.Membership.ep_cohort < spec.Membership.min_cohort then
        fail "round %d cohort fell below the schedule floor" (i + 1))
    s1

(* ------------------------------------------------------------------ *)
(* key-rotation continuity proofs *)

let test_rotation_proofs () =
  let session = Driver.create_session setup ~seed:"rotate" in
  let clients = Driver.session_clients session in
  let rot = Client.rotation_proof clients.(0) in
  if not (Membership.verify_rotation rot ~pk_old:(Client.public_key clients.(0))) then
    fail "honest rotation proof rejected";
  if Membership.verify_rotation rot ~pk_old:(Client.public_key clients.(1)) then
    fail "rotation proof verified against the wrong outgoing key";
  (* a rotation claiming someone else's id breaks the challenge binding:
     advance must convict the claimant, not adopt the key *)
  let mem = Membership.create (Array.map Client.public_key clients) in
  let forged = { rot with Membership.rot_id = 2 } in
  let ep =
    Membership.advance mem ~round:2 ~events:[ Membership.Rotate 2 ]
      ~rotation_for:(fun ~id:_ ~gen:_ -> Some forged)
  in
  if ep.Membership.ep_convicts <> [ 2 ] then fail "forged rotation did not convict";
  if Membership.standing mem 2 <> Membership.Banned then
    fail "forged rotation left standing %s"
      (Membership.standing_to_string (Membership.standing mem 2));
  if not (Point.equal ep.Membership.ep_pks.(1) (Client.public_key clients.(1))) then
    fail "forged rotation mutated the directory";
  (* honest rotations adopt and chain: two generations in sequence *)
  let mem2 = Membership.create (Array.map Client.public_key clients) in
  let rotate_round r =
    let ep =
      Membership.advance mem2 ~round:r ~events:[ Membership.Rotate 3 ]
        ~rotation_for:(fun ~id ~gen:_ -> Some (Client.rotation_proof clients.(id - 1)))
    in
    List.iter
      (function
        | Membership.D_rotated j ->
            Client.rotate_to clients.(j - 1) ~gen:ep.Membership.ep_gens.(j - 1)
        | _ -> ())
      ep.Membership.ep_deltas;
    ep
  in
  let ep2 = rotate_round 2 in
  let ep3 = rotate_round 3 in
  if ep2.Membership.ep_gens.(2) <> 1 || ep3.Membership.ep_gens.(2) <> 2 then
    fail "rotation generations did not chain (got %d then %d)" ep2.Membership.ep_gens.(2)
      ep3.Membership.ep_gens.(2);
  if Point.equal ep2.Membership.ep_pks.(2) ep3.Membership.ep_pks.(2) then
    fail "second rotation kept the same key"

(* ------------------------------------------------------------------ *)
(* the correctness anchor: seeded churn vs a scripted twin *)

let updates_for ~seed round = Updates.make ~n ~d ~bound ~seed ~attackers:[ 2 ] ~round
let behaviours () = Updates.behaviours ~n ~attackers:[ 2 ]

(* the twin: every epoch materialized statically, ahead of any round *)
let scripted_epochs session ~seed =
  let clients = Driver.session_clients session in
  let mem = Membership.create (Array.map Client.public_key clients) in
  let sched = Membership.schedule ~seed spec ~n ~rounds in
  Array.init rounds (fun i ->
      let r = i + 1 in
      let ep =
        Membership.advance mem ~round:r ~events:sched.(r - 1)
          ~rotation_for:(fun ~id ~gen:_ -> Some (Client.rotation_proof clients.(id - 1)))
      in
      List.iter
        (function
          | Membership.D_rotated j ->
              Client.rotate_to clients.(j - 1) ~gen:ep.Membership.ep_gens.(j - 1)
          | _ -> ())
        ep.Membership.ep_deltas;
      ep)

let run_elastic ~seed ~topology () =
  let session = Driver.create_session setup ~seed in
  let report =
    Driver.run_session ~topology session
      ~cohort_for:(Driver.churn_cohort_for session ~spec ~rounds)
      ~updates_for:(updates_for ~seed) ~behaviours:(behaviours ()) ~rounds
  in
  (views report, report)

let run_twin ~seed ~topology () =
  (* the epochs are scripted against a scratch session: same seed, so its
     key derivations (including every rotation generation) are identical,
     but pre-materializing them does not rotate the live clients ahead of
     the epochs they will consume in round order *)
  let eps = scripted_epochs (Driver.create_session setup ~seed) ~seed in
  let session = Driver.create_session setup ~seed in
  let report =
    Driver.run_session ~topology session
      ~cohort_for:(fun r -> Some eps.(r - 1))
      ~updates_for:(updates_for ~seed) ~behaviours:(behaviours ()) ~rounds
  in
  (views report, report)

let test_differential () =
  let seed = "churn-differential" in
  List.iter
    (fun topology ->
      let twin_views, twin_report = run_twin ~seed ~topology () in
      let saved_jobs = Parallel.default_jobs () in
      List.iter
        (fun jobs ->
          Parallel.set_default_jobs jobs;
          let ev, er = run_elastic ~seed ~topology () in
          if ev <> twin_views then
            fail "elastic run (jobs=%d) diverged from the scripted twin" jobs;
          if er.Driver.cohort_sizes <> twin_report.Driver.cohort_sizes then
            fail "cohort sizes diverged (jobs=%d)" jobs;
          if er.Driver.churn <> twin_report.Driver.churn then
            fail "churn counts diverged (jobs=%d)" jobs)
        [ 1; 2; 4 ];
      Parallel.set_default_jobs saved_jobs;
      (* the report must actually reflect churn, not a fixed cohort *)
      let c = twin_report.Driver.churn in
      if c.Driver.left + c.Driver.rejoined + c.Driver.rotated = 0 then
        fail "no churn happened over %d rounds — weak differential" rounds;
      if List.length twin_report.Driver.cohort_sizes <> rounds then
        fail "expected one cohort size per round";
      if not (List.exists (fun (_, size) -> size < n) twin_report.Driver.cohort_sizes) then
        fail "cohort never shrank — weak differential")
    [ Topology.Full; Topology.Kregular k ]

(* ------------------------------------------------------------------ *)
(* crash at an epoch boundary *)

let test_crash_at_epoch_boundary () =
  let seed = "churn-crash" in
  let reference, _ = run_elastic ~seed ~topology:Topology.Full () in
  (* die before the commit intake of round 3: the Epoch and Round_start
     records are already fsynced, so recovery must re-enter round 3 under
     the exact logged cohort *)
  let wal_file = tmp_name ".wal" in
  let wal = Round_log.create wal_file in
  let session = Driver.create_session setup ~seed in
  let report =
    Driver.run_session ~wal
      ~crash:(3, Netsim.Commit, Driver.Stage_start)
      ~cohort_for:(Driver.churn_cohort_for session ~spec ~rounds)
      session ~updates_for:(updates_for ~seed) ~behaviours:(behaviours ()) ~rounds
  in
  Round_log.close wal;
  if report.Driver.crashes_recovered <> 1 then
    fail "expected exactly one recovered crash, got %d" report.Driver.crashes_recovered;
  if views report <> reference then
    fail "recovery at the epoch boundary diverged from the uncrashed run";
  (* the log must carry one Epoch record per started round, each written
     before its Round_start *)
  let records, _ = Round_log.replay wal_file in
  rm_f wal_file;
  let rec check_order seen = function
    | [] -> ()
    | Round_log.Epoch ep :: rest ->
        check_order (ep.Membership.ep_round :: seen) rest
    | Round_log.Round_start { round } :: rest ->
        if not (List.mem round seen) then
          fail "round %d started without its epoch in the log" round;
        check_order seen rest
    | _ :: rest -> check_order seen rest
  in
  check_order [] records

(* ------------------------------------------------------------------ *)
(* dropout-then-rejoin preserves standing *)

let test_rejoin_standing () =
  let seed = "churn-rejoin" in
  let session = Driver.create_session setup ~seed in
  let clients = Driver.session_clients session in
  let mem = Membership.create (Array.map Client.public_key clients) in
  let adv r events =
    Membership.advance mem ~round:r ~events ~rotation_for:(fun ~id ~gen:_ ->
        Some (Client.rotation_proof clients.(id - 1)))
  in
  (* round 1: full cohort (attacker 2 gets convicted); round 2: the
     convicted 2 and the honest 5 both leave; round 3: both return.
     Sequenced explicitly — array literals evaluate right-to-left. *)
  let ep1 = adv 1 [] in
  let ep2 = adv 2 [ Membership.Leave 2; Membership.Leave 5 ] in
  let ep3 = adv 3 [ Membership.Join 2; Membership.Join 5 ] in
  let eps = [| ep1; ep2; ep3 |] in
  let report =
    Driver.run_session session
      ~cohort_for:(fun r -> Some eps.(r - 1))
      ~updates_for:(updates_for ~seed) ~behaviours:(behaviours ()) ~rounds:3
  in
  if report.Driver.cohort_sizes <> [ (1, n); (2, n - 2); (3, n) ] then
    fail "unexpected cohort sizes";
  let c = report.Driver.churn in
  if c.Driver.left <> 2 || c.Driver.rejoined <> 2 then
    fail "expected 2 leaves and 2 rejoins, got %d/%d" c.Driver.left c.Driver.rejoined;
  (* the attacker's C* membership survived its absence *)
  if not (List.mem 2 report.Driver.final_banned) then
    fail "conviction did not survive the absence";
  (match List.assoc 3 (List.map (fun (r, o) -> (r, view o)) report.Driver.round_outcomes) with
  | `Completed (flagged, Some _) ->
      if not (List.mem 2 flagged) then fail "rejoined attacker not in round-3 C*";
      if List.mem 5 flagged then fail "honest rejoiner was re-convicted"
  | _ -> fail "round 3 did not complete");
  if List.mem 5 report.Driver.final_banned then fail "honest rejoiner banned"

(* ------------------------------------------------------------------ *)
(* the Epoch WAL record: round-trip, corruption, and mismatch typing *)

let sample_epoch session =
  let clients = Driver.session_clients session in
  let mem = Membership.create (Array.map Client.public_key clients) in
  ignore
    (Membership.advance mem ~round:1 ~events:[] ~rotation_for:(fun ~id:_ ~gen:_ -> None));
  Membership.advance mem ~round:2
    ~events:[ Membership.Leave 4; Membership.Rotate 1 ]
    ~rotation_for:(fun ~id ~gen:_ -> Some (Client.rotation_proof clients.(id - 1)))

let test_epoch_record_roundtrip () =
  let session = Driver.create_session setup ~seed:"epoch-rt" in
  let ep = sample_epoch session in
  let wal_file = tmp_name ".wal" in
  let wal = Round_log.create wal_file in
  Round_log.append wal (Round_log.Epoch ep);
  Round_log.append wal (Round_log.Round_start { round = 2 });
  Round_log.close wal;
  let records, status = Round_log.replay wal_file in
  rm_f wal_file;
  (match status with
  | Store.Wal.Complete -> ()
  | _ -> fail "clean log did not replay clean");
  match records with
  | [ Round_log.Epoch got; Round_log.Round_start { round = 2 } ] ->
      if got.Membership.ep_round <> ep.Membership.ep_round then fail "ep_round mangled";
      if got.Membership.ep_cohort <> ep.Membership.ep_cohort then fail "cohort mangled";
      if got.Membership.ep_gens <> ep.Membership.ep_gens then fail "generations mangled";
      if got.Membership.ep_deltas <> ep.Membership.ep_deltas then fail "deltas mangled";
      if got.Membership.ep_convicts <> ep.Membership.ep_convicts then fail "convicts mangled";
      Array.iteri
        (fun i pk ->
          if not (Point.equal pk got.Membership.ep_pks.(i)) then fail "directory mangled")
        ep.Membership.ep_pks
  | _ -> fail "epoch record did not round-trip"

let test_epoch_record_corruption () =
  let session = Driver.create_session setup ~seed:"epoch-corrupt" in
  let ep = sample_epoch session in
  (* a log holding exactly one Epoch record *)
  let wal_file = tmp_name ".wal" in
  let wal = Round_log.create wal_file in
  Round_log.append wal (Round_log.Epoch ep);
  Round_log.close wal;
  let ic = open_in_bin wal_file in
  let len = in_channel_length ic in
  let original = really_input_string ic len in
  close_in ic;
  rm_f wal_file;
  let write_variant bytes =
    let oc = open_out_bin wal_file in
    output_string oc bytes;
    close_out oc
  in
  (* every single-byte flip must reject the record — never decode to a
     different cohort *)
  for i = 0 to len - 1 do
    let b = Bytes.of_string original in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
    write_variant (Bytes.to_string b);
    let records, status = Round_log.replay wal_file in
    (match status with
    | Store.Wal.Complete ->
        (* CRC collisions cannot happen on a single-byte flip *)
        fail "byte flip at %d replayed clean" i
    | _ -> ());
    match records with
    | [] -> ()
    | _ -> fail "byte flip at %d still yielded a record" i
  done;
  (* every truncation must reject cleanly too *)
  for cut = 0 to len - 1 do
    write_variant (String.sub original 0 cut);
    let records, _ = Round_log.replay wal_file in
    if records <> [] then fail "truncation at %d yielded a record" cut
  done;
  (* mid-log corruption: a corrupt Epoch terminates the scan before the
     records that follow it — recovery sees a short log, never a wrong
     cohort. Measure the first record's span by writing it alone (record
     encodings are deterministic), then corrupt the Epoch's midpoint.
     [Round_log.create] appends, so clear the truncation leftovers. *)
  rm_f wal_file;
  let wal = Round_log.create wal_file in
  Round_log.append wal (Round_log.Round_end { round = 1; cstar = []; aggregate = Some [| 0 |] });
  Round_log.close wal;
  let ic = open_in_bin wal_file in
  let first_len = in_channel_length ic in
  close_in ic;
  rm_f wal_file;
  let wal = Round_log.create wal_file in
  Round_log.append wal (Round_log.Round_end { round = 1; cstar = []; aggregate = Some [| 0 |] });
  Round_log.append wal (Round_log.Epoch ep);
  Round_log.append wal (Round_log.Round_start { round = 2 });
  Round_log.close wal;
  let ic = open_in_bin wal_file in
  let len2 = in_channel_length ic in
  let full = really_input_string ic len2 in
  close_in ic;
  (* the Epoch record occupies the same [len] bytes it did alone, offset
     by the first record *)
  let mid = first_len + (len / 2) in
  let b = Bytes.of_string full in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x41));
  write_variant (Bytes.to_string b);
  let records, status = Round_log.replay wal_file in
  rm_f wal_file;
  (match status with
  | Store.Wal.Complete -> fail "mid-log corrupt epoch replayed clean"
  | _ -> ());
  (match records with
  | [ Round_log.Round_end { round = 1; _ } ] -> ()
  | _ -> fail "mid-log corruption did not keep exactly the good prefix");
  (* a decoded-valid epoch that contradicts the session raises the typed
     mismatch instead of running a wrong cohort *)
  let other = Driver.create_session setup ~seed:"epoch-other" in
  let foreign = sample_epoch other in
  match Driver.apply_epoch session foreign with
  | () -> fail "foreign epoch applied silently"
  | exception Driver.Epoch_mismatch _ -> ()

(* ------------------------------------------------------------------ *)
(* run_iteration optionals parity *)

let test_run_iteration_optionals () =
  let seed = "iteration-parity" in
  let updates = Updates.make ~n ~d ~bound ~seed ~attackers:[] ~round:1 in
  let behaviours = Driver.honest_all n in
  let sig_of (s : Driver.stats) = (s.Driver.flagged, s.Driver.aggregate) in
  let plain = Driver.run_iteration setup ~updates ~behaviours ~seed ~round:1 in
  let net = Netsim.create ~plan:Netsim.ideal ~deadline:4 ~seed () in
  let via_endpoint =
    Driver.run_iteration ~endpoint:(Netsim.endpoint net) setup ~updates ~behaviours ~seed
      ~round:1
  in
  let net2 = Netsim.create ~plan:Netsim.ideal ~deadline:4 ~seed () in
  let via_reliable =
    Driver.run_iteration
      ~reliable:(Reliable.create net2)
      setup ~updates ~behaviours ~seed ~round:1
  in
  let wal_file = tmp_name ".wal" in
  let wal = Round_log.create wal_file in
  let via_wal = Driver.run_iteration ~wal setup ~updates ~behaviours ~seed ~round:1 in
  Round_log.close wal;
  let logged, _ = Round_log.replay wal_file in
  rm_f wal_file;
  if logged = [] then fail "?wal logged nothing";
  List.iter
    (fun (name, got) ->
      if sig_of got <> sig_of plain then fail "run_iteration ?%s diverged" name)
    [ ("endpoint", via_endpoint); ("reliable", via_reliable); ("wal", via_wal) ]

(* ------------------------------------------------------------------ *)
(* the shrunken-cohort degree clamp *)

let test_degree_clamp () =
  let full = Array.init n (fun i -> i + 1) in
  let small = [| 1; 2; 4; 5; 6 |] in
  (* full cohort: the request stands *)
  (match Driver.effective_topology setup ~cohort:full (Topology.Kregular 5) with
  | Topology.Kregular 5 -> ()
  | _ -> fail "full-cohort request was rewritten");
  (* a degree the shrunken cohort cannot sustain is re-derived *)
  Telemetry.reset ();
  Telemetry.enable ();
  (match Driver.effective_topology setup ~cohort:small (Topology.Kregular 5) with
  | Topology.Kregular k' ->
      if k' < 2 || k' > Array.length small - 1 then fail "clamped degree %d out of range" k'
  | Topology.Full -> fail "clamp produced Full (plan normalizes, the mode must stay kregular)");
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  (match List.assoc_opt "topology.degree_clamped" snap.Telemetry.counters with
  | Some c when c >= 1 -> ()
  | _ -> fail "degree clamp left no audit counter");
  (* a sustainable degree passes through untouched *)
  (match Driver.effective_topology setup ~cohort:small (Topology.Kregular 2) with
  | Topology.Kregular 2 -> ()
  | _ -> fail "sustainable degree was rewritten");
  (match Driver.effective_topology setup ~cohort:small Topology.Full with
  | Topology.Full -> ()
  | _ -> fail "Full must never be rewritten")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "churn"
    [
      ( "membership",
        [
          Alcotest.test_case "seeded schedule" `Quick test_schedule_deterministic;
          Alcotest.test_case "rotation proofs" `Quick test_rotation_proofs;
          Alcotest.test_case "degree clamp" `Quick test_degree_clamp;
        ] );
      ( "epoch-log",
        [
          Alcotest.test_case "record round-trip" `Quick test_epoch_record_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick test_epoch_record_corruption;
        ] );
      ( "elastic-session",
        [
          Alcotest.test_case "differential vs scripted twin" `Slow test_differential;
          Alcotest.test_case "crash at epoch boundary" `Slow test_crash_at_epoch_boundary;
          Alcotest.test_case "rejoin preserves standing" `Slow test_rejoin_standing;
          Alcotest.test_case "run_iteration optionals" `Quick test_run_iteration_optionals;
        ] );
    ]
