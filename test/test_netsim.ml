(* Netsim transport unit tests plus the quorum dropout ladder: with n = 5
   clients and m = 2 (Shamir threshold t = 3), scripted Drop faults knock
   out 0, 1 or 2 clients at each protocol stage and the round must still
   complete with the correct aggregate; 3 dropouts at any stage must end
   the round with Aborted_insufficient_quorum — never an exception. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver

let fail fmt = Alcotest.failf fmt

(* ------------------------------------------------------------------ *)
(* transport unit tests *)
(* ------------------------------------------------------------------ *)

let frame tag len = Bytes.init len (fun i -> Char.chr ((tag + (i * 7)) land 0xff))

let run_schedule net ~rounds ~senders =
  (* a fixed traffic pattern; returns the full delivery trace *)
  let trace = ref [] in
  for r = 1 to rounds do
    List.iter
      (fun stage ->
        Netsim.begin_stage net ~round:r ~stage;
        List.iter (fun s -> Netsim.send net ~sender:s (frame ((r * 16) + s) 48)) senders;
        trace := Netsim.deliver net :: !trace)
      [ Netsim.Commit; Netsim.Flag; Netsim.Proof; Netsim.Agg ]
  done;
  List.rev !trace

let test_seed_reproducible () =
  let mk () = Netsim.create ~plan:(Netsim.uniform 0.3) ~seed:"repro" () in
  let t1 = run_schedule (mk ()) ~rounds:3 ~senders:[ 1; 2; 3; 4 ] in
  let t2 = run_schedule (mk ()) ~rounds:3 ~senders:[ 1; 2; 3; 4 ] in
  if t1 <> t2 then fail "same seed must give an identical fault schedule";
  let t3 =
    run_schedule (Netsim.create ~plan:(Netsim.uniform 0.3) ~seed:"other" ()) ~rounds:3
      ~senders:[ 1; 2; 3; 4 ]
  in
  if t1 = t3 then fail "different seeds gave an identical 48-frame schedule"

let test_send_order_irrelevant () =
  (* the fault drawn for (round, stage, sender) must not depend on the
     order in which the senders happened to call send *)
  let mk order =
    let net = Netsim.create ~plan:(Netsim.uniform 0.4) ~seed:"order" () in
    Netsim.begin_stage net ~round:1 ~stage:Netsim.Commit;
    List.iter (fun s -> Netsim.send net ~sender:s (frame s 40)) order;
    List.sort compare (Netsim.deliver net)
  in
  if mk [ 1; 2; 3; 4; 5 ] <> mk [ 5; 3; 1; 4; 2 ] then
    fail "fault schedule depended on send order"

let test_plan_parser () =
  (match
     Netsim.plan_of_string
       "drop=0.25,flip=0.5,delay=0.5:3,dup=0.125,trunc=0.25,reorder=0.1,replay=0.05"
   with
  | Error e -> fail "parse failed: %s" e
  | Ok p ->
      Alcotest.(check (float 1e-9)) "drop" 0.25 p.Netsim.p_drop;
      Alcotest.(check (float 1e-9)) "flip" 0.5 p.Netsim.p_flip;
      Alcotest.(check (float 1e-9)) "delay" 0.5 p.Netsim.p_delay;
      Alcotest.(check int) "max_delay" 3 p.Netsim.max_delay;
      Alcotest.(check (float 1e-9)) "dup" 0.125 p.Netsim.p_duplicate;
      Alcotest.(check (float 1e-9)) "trunc" 0.25 p.Netsim.p_truncate;
      Alcotest.(check (float 1e-9)) "reorder" 0.1 p.Netsim.p_reorder;
      Alcotest.(check (float 1e-9)) "replay" 0.05 p.Netsim.p_replay;
      (* round-trip through plan_to_string *)
      (match Netsim.plan_of_string (Netsim.plan_to_string p) with
      | Ok p' when p' = p -> ()
      | Ok _ -> fail "plan_to_string round-trip changed the plan"
      | Error e -> fail "plan_to_string round-trip failed: %s" e));
  (match Netsim.plan_of_string "bogus=0.1" with
  | Ok _ -> fail "unknown key must be rejected"
  | Error _ -> ());
  (match Netsim.plan_of_string "drop=banana" with
  | Ok _ -> fail "bad float must be rejected"
  | Error _ -> ());
  (match Netsim.plan_of_string "drop=1.5" with
  | Ok _ -> fail "probability > 1 must be rejected"
  | Error _ -> ());
  match Netsim.plan_of_string "" with
  | Ok p when p = Netsim.ideal -> ()
  | _ -> fail "empty spec must parse to the ideal plan"

let scripted script = Netsim.create ~script ~seed:"scripted" ()

let test_scripted_faults () =
  let f = frame 7 64 in
  (* Drop: nothing delivered *)
  let net = scripted [ ((1, Netsim.Commit, 1), [ Netsim.Drop ]) ] in
  Netsim.begin_stage net ~round:1 ~stage:Netsim.Commit;
  Netsim.send net ~sender:1 f;
  Netsim.send net ~sender:2 f;
  (match Netsim.deliver net with
  | [ (2, f') ] when Bytes.equal f' f -> ()
  | d -> fail "drop: expected only sender 2, got %d frames" (List.length d));
  Alcotest.(check int) "dropped counter" 1 (Netsim.counters net).Netsim.dropped;
  (* Truncate_at *)
  let net = scripted [ ((1, Netsim.Flag, 1), [ Netsim.Truncate_at 5 ]) ] in
  Netsim.begin_stage net ~round:1 ~stage:Netsim.Flag;
  Netsim.send net ~sender:1 f;
  (match Netsim.deliver net with
  | [ (1, f') ] ->
      Alcotest.(check int) "truncated length" 5 (Bytes.length f');
      if not (Bytes.equal f' (Bytes.sub f 0 5)) then fail "truncation kept wrong bytes"
  | _ -> fail "truncate: expected one frame");
  Alcotest.(check int) "mutated counter" 1 (Netsim.counters net).Netsim.mutated;
  (* Flip_bytes: same length, different bytes *)
  let net = scripted [ ((1, Netsim.Proof, 1), [ Netsim.Flip_bytes 3 ]) ] in
  Netsim.begin_stage net ~round:1 ~stage:Netsim.Proof;
  Netsim.send net ~sender:1 f;
  (match Netsim.deliver net with
  | [ (1, f') ] ->
      Alcotest.(check int) "flipped length" (Bytes.length f) (Bytes.length f');
      if Bytes.equal f' f then fail "flip left the frame unchanged"
  | _ -> fail "flip: expected one frame");
  (* Duplicate: two copies *)
  let net = scripted [ ((1, Netsim.Agg, 1), [ Netsim.Duplicate ]) ] in
  Netsim.begin_stage net ~round:1 ~stage:Netsim.Agg;
  Netsim.send net ~sender:1 f;
  (match Netsim.deliver net with
  | [ (1, a); (1, b) ] when Bytes.equal a f && Bytes.equal b f -> ()
  | d -> fail "duplicate: expected two identical frames, got %d" (List.length d));
  Alcotest.(check int) "duplicated counter" 1 (Netsim.counters net).Netsim.duplicated

let test_delay_and_deadline () =
  let f = frame 3 32 in
  let net =
    Netsim.create ~deadline:4
      ~script:
        [
          ((1, Netsim.Commit, 1), [ Netsim.Delay 10 ]);
          ((1, Netsim.Commit, 2), [ Netsim.Delay 2 ]);
        ]
      ~seed:"delay" ()
  in
  Netsim.begin_stage net ~round:1 ~stage:Netsim.Commit;
  Netsim.send net ~sender:1 f;
  Netsim.send net ~sender:2 f;
  Netsim.send net ~sender:3 f;
  (match List.map fst (Netsim.deliver net) with
  | [ 3; 2 ] -> () (* tick 0 before tick 2; sender 1 is past the deadline *)
  | l ->
      fail "deadline: expected senders [3;2], got %s"
        (String.concat ";" (List.map string_of_int l)));
  Alcotest.(check int) "late counter" 1 (Netsim.counters net).Netsim.late;
  (* a wider deadline at deliver time rescues the slow frame *)
  let net2 =
    Netsim.create ~script:[ ((1, Netsim.Commit, 1), [ Netsim.Delay 10 ]) ] ~seed:"delay2" ()
  in
  Netsim.begin_stage net2 ~round:1 ~stage:Netsim.Commit;
  Netsim.send net2 ~sender:1 f;
  match Netsim.deliver ~deadline:10 net2 with
  | [ (1, _) ] -> ()
  | _ -> fail "explicit deadline=10 should deliver the delayed frame"

let test_reorder () =
  let net = Netsim.create ~script:[ ((1, Netsim.Commit, 1), [ Netsim.Reorder ]) ] ~seed:"ro" () in
  Netsim.begin_stage net ~round:1 ~stage:Netsim.Commit;
  Netsim.send net ~sender:1 (frame 1 16);
  Netsim.send net ~sender:2 (frame 2 16);
  Netsim.send net ~sender:3 (frame 3 16);
  (match List.map fst (Netsim.deliver net) with
  | [ 2; 3; 1 ] -> ()
  | l ->
      fail "reorder: expected [2;3;1], got %s" (String.concat ";" (List.map string_of_int l)));
  Alcotest.(check int) "reordered counter" 1 (Netsim.counters net).Netsim.reordered

let test_replay () =
  let a = frame 1 40 and b = frame 9 40 in
  let net =
    Netsim.create ~script:[ ((2, Netsim.Commit, 1), [ Netsim.Replay_previous ]) ] ~seed:"rp" ()
  in
  (* round 1: the link records its frame *)
  Netsim.begin_stage net ~round:1 ~stage:Netsim.Commit;
  Netsim.send net ~sender:1 a;
  (match Netsim.deliver net with
  | [ (1, f) ] when Bytes.equal f a -> ()
  | _ -> fail "round 1 should deliver the original frame");
  (* round 2: the replay substitutes round 1's frame *)
  Netsim.begin_stage net ~round:2 ~stage:Netsim.Commit;
  Netsim.send net ~sender:1 b;
  (match Netsim.deliver net with
  | [ (1, f) ] when Bytes.equal f a -> ()
  | [ (1, _) ] -> fail "replay should have substituted the round-1 frame"
  | _ -> fail "round 2 should deliver exactly one frame");
  Alcotest.(check int) "replayed counter" 1 (Netsim.counters net).Netsim.replayed;
  (* replay with no history is a no-op *)
  let net2 =
    Netsim.create ~script:[ ((1, Netsim.Commit, 1), [ Netsim.Replay_previous ]) ] ~seed:"rp2" ()
  in
  Netsim.begin_stage net2 ~round:1 ~stage:Netsim.Commit;
  Netsim.send net2 ~sender:1 b;
  match Netsim.deliver net2 with
  | [ (1, f) ] when Bytes.equal f b -> ()
  | _ -> fail "replay without history must deliver the frame unchanged"

let test_counters_conserved () =
  (* every sent frame is accounted for: delivered + dropped + late
     (duplicates add deliveries, so count them on the left) *)
  let net = Netsim.create ~plan:(Netsim.uniform ~max_delay:8 0.35) ~seed:"acct" () in
  for r = 1 to 5 do
    List.iter
      (fun stage ->
        Netsim.begin_stage net ~round:r ~stage;
        for s = 1 to 6 do
          Netsim.send net ~sender:s (frame s 64)
        done;
        ignore (Netsim.deliver net))
      [ Netsim.Commit; Netsim.Flag; Netsim.Proof; Netsim.Agg ]
  done;
  let c = Netsim.counters net in
  Alcotest.(check int) "sent" (5 * 4 * 6) c.Netsim.sent;
  Alcotest.(check int) "conservation"
    (c.Netsim.sent + c.Netsim.duplicated)
    (c.Netsim.delivered + c.Netsim.dropped + c.Netsim.late)

(* ------------------------------------------------------------------ *)
(* dropout ladder *)
(* ------------------------------------------------------------------ *)

let n = 5
let m = 2 (* Shamir threshold t = m + 1 = 3 *)

let params =
  Params.make ~n_clients:n ~max_malicious:m ~d:8 ~k:4 ~m_factor:64.0 ~bound_b:1000.0 ()

let setup = Setup.create ~label:"test-netsim" params
let session = Driver.create_session setup ~seed:"netsim-ladder"

let updates =
  Array.init n (fun i -> Array.init 8 (fun l -> ((i * 31) + (l * 7) + 3) mod 200 - 100))

let sum_updates idxs =
  Array.init 8 (fun l -> List.fold_left (fun acc i -> acc + updates.(i - 1).(l)) 0 idxs)

let round_counter = ref 0

let run_with_drops ~stage ~drops =
  incr round_counter;
  let round = !round_counter in
  let script = List.map (fun c -> ((round, stage, c), [ Netsim.Drop ])) drops in
  let net = Netsim.create ~script ~seed:"ladder" () in
  Driver.run_round_outcome session ~transport:net ~updates ~behaviours:(Driver.honest_all n)
    ~round

(* the same ladder step through the backend-agnostic endpoint seam: any
   Transport_intf.S backend (Netsim itself, the socketpair loopback, ...)
   must produce the identical verdicts *)
let run_with_drops_on (module B : Netsim.Transport_intf.S) ~stage ~drops =
  incr round_counter;
  let round = !round_counter in
  let script = List.map (fun c -> ((round, stage, c), [ Netsim.Drop ])) drops in
  let ep = B.endpoint (B.create ~script ~seed:"ladder" ()) in
  Driver.run_round_outcome session ~endpoint:ep ~updates ~behaviours:(Driver.honest_all n)
    ~round

let all_ids = List.init n (fun i -> i + 1)

let check_completed ~stage ~drops outcome =
  match outcome with
  | Driver.Completed stats ->
      let survivors = List.filter (fun i -> not (List.mem i drops)) all_ids in
      (* dropouts before the aggregation stage land in C* and their updates
         are excluded; aggregation-stage dropouts stay honest (their updates
         are included) and only cost the server their share *)
      let expected_flagged, expected_agg =
        if stage = Netsim.Agg then ([], sum_updates all_ids)
        else (drops, sum_updates survivors)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s/%d flagged" (Netsim.stage_to_string stage) (List.length drops))
        expected_flagged
        (List.sort compare stats.Driver.flagged);
      (match stats.Driver.aggregate with
      | None ->
          fail "%s/%d drops: aggregation failed: %s" (Netsim.stage_to_string stage)
            (List.length drops)
            (match stats.Driver.failure with
            | Some e -> Risefl_core.Server.agg_error_to_string e
            | None -> "?")
      | Some agg ->
          Alcotest.(check (array int))
            (Printf.sprintf "%s/%d aggregate" (Netsim.stage_to_string stage) (List.length drops))
            expected_agg agg)
  | o ->
      fail "%s with %d drops should complete, got: %s" (Netsim.stage_to_string stage)
        (List.length drops) (Driver.outcome_to_string o)

let test_ladder_stage stage () =
  for k = 0 to n - (m + 1) - 1 do
    (* 0 and 1 dropouts always complete; k = n - t = 2 is the edge *)
    let drops = List.filteri (fun i _ -> i < k) all_ids in
    check_completed ~stage ~drops (run_with_drops ~stage ~drops)
  done;
  (* exactly t = 3 survivors: the round must still complete *)
  let drops = [ 1; 2 ] in
  check_completed ~stage ~drops (run_with_drops ~stage ~drops);
  (* n - t + 1 = 3 dropouts: quorum lost, typed verdict, no exception *)
  let drops = [ 1; 2; 3 ] in
  match run_with_drops ~stage ~drops with
  | Driver.Aborted_insufficient_quorum { survivors; needed; _ } ->
      Alcotest.(check int) "needed = t" (m + 1) needed;
      if survivors >= needed then fail "abort with %d survivors >= %d" survivors needed
  | o ->
      fail "%s with 3 drops should abort on quorum, got: %s" (Netsim.stage_to_string stage)
        (Driver.outcome_to_string o)

(* one completion at the quorum edge and one quorum abort, through any
   Transport_intf.S backend: the seeded fault schedule (and therefore the
   verdict) must not depend on which backend carried the bytes *)
let test_backend_ladder (module B : Netsim.Transport_intf.S) () =
  let stage = Netsim.Flag in
  let drops = [ 1; 2 ] in
  check_completed ~stage ~drops (run_with_drops_on (module B) ~stage ~drops);
  match run_with_drops_on (module B) ~stage ~drops:[ 1; 2; 3 ] with
  | Driver.Aborted_insufficient_quorum { survivors; needed; _ } ->
      Alcotest.(check int) "needed = t" (m + 1) needed;
      if survivors >= needed then fail "abort with %d survivors >= %d" survivors needed
  | o -> fail "3 drops should abort on quorum, got: %s" (Driver.outcome_to_string o)

(* Dropouts after the flags are processed (proof and aggregation stages)
   must behave exactly like earlier ones — covered by the ladder above,
   plus this mixed case: one client drops at proof, one at aggregation. *)
let test_mixed_late_dropouts () =
  incr round_counter;
  let round = !round_counter in
  let net =
    Netsim.create
      ~script:
        [ ((round, Netsim.Proof, 2), [ Netsim.Drop ]); ((round, Netsim.Agg, 4), [ Netsim.Drop ]) ]
      ~seed:"mixed" ()
  in
  match
    Driver.run_round_outcome session ~transport:net ~updates ~behaviours:(Driver.honest_all n)
      ~round
  with
  | Driver.Completed stats ->
      Alcotest.(check (list int))
        "flagged = proof dropout" [ 2 ]
        (List.sort compare stats.Driver.flagged);
      (match stats.Driver.aggregate with
      | Some agg ->
          (* client 2 (proof dropout) excluded; client 4 (agg dropout) included *)
          Alcotest.(check (array int)) "aggregate" (sum_updates [ 1; 3; 4; 5 ]) agg
      | None -> fail "mixed dropouts: aggregation failed")
  | o -> fail "mixed dropouts should complete, got: %s" (Driver.outcome_to_string o)

(* run_round (lifecycle off) must never abort: quorum loss surfaces in
   stats.failure instead *)
let test_run_round_never_aborts () =
  incr round_counter;
  let round = !round_counter in
  let script = List.map (fun c -> ((round, Netsim.Agg, c), [ Netsim.Drop ])) [ 1; 2; 3 ] in
  let net = Netsim.create ~script ~seed:"noabort" () in
  let stats =
    Driver.run_round session ~transport:net ~updates ~behaviours:(Driver.honest_all n) ~round
  in
  match (stats.Driver.aggregate, stats.Driver.failure) with
  | None, Some (Risefl_core.Server.Insufficient_quorum { valid = 2; needed = 3 }) -> ()
  | None, Some e ->
      fail "expected Insufficient_quorum {2;3}, got %s"
        (Risefl_core.Server.agg_error_to_string e)
  | _ -> fail "run_round under quorum loss should report failure, not aggregate"

(* ------------------------------------------------------------------ *)
(* retransmitting transport *)
(* ------------------------------------------------------------------ *)

module Reliable = Risefl_core.Reliable

(* at a 50% per-frame drop rate the bare transport loses its quorum, but
   the ack/retransmission layer (exponential backoff, receive-side dedup)
   still completes the n=5, m=2 round *)
let test_retransmit_survives_drops () =
  let plan = { Netsim.ideal with Netsim.p_drop = 0.5 } in
  (* bare transport: the same seeded fault schedule aborts the round *)
  incr round_counter;
  let round_plain = !round_counter in
  let plain =
    Driver.run_round_outcome session
      ~transport:(Netsim.create ~plan ~seed:"retransmit-ladder" ())
      ~updates ~behaviours:(Driver.honest_all n) ~round:round_plain
  in
  (match plain with
  | Driver.Completed _ ->
      fail "drop=0.5 should abort the bare transport (fault seed no longer adversarial?)"
  | Driver.Aborted_insufficient_quorum _ | Driver.Aborted_decode _ -> ());
  (* retransmitting transport over the identical plan: completes *)
  incr round_counter;
  let round = !round_counter in
  let net = Netsim.create ~plan ~seed:"retransmit-ladder" () in
  let rel = Reliable.create ~max_attempts:8 net in
  (match
     Driver.run_round_outcome session ~reliable:rel ~updates ~behaviours:(Driver.honest_all n)
       ~round
   with
  | Driver.Completed stats ->
      if stats.Driver.aggregate = None then fail "retransmitting round lost its aggregate";
      if stats.Driver.decode_failures <> [] then
        fail "line loss must not read as sender malice under retransmission"
  | o ->
      fail "retransmitting transport should survive drop=0.5, got: %s"
        (Driver.outcome_to_string o));
  let rc = Reliable.counters rel in
  if rc.Reliable.retransmits = 0 then fail "a 50%% drop plan must force retransmissions";
  if rc.Reliable.recovered = 0 then fail "some frame should be recovered by a retry";
  (* accounting: every physical send is a first attempt or a retransmit *)
  Alcotest.(check int) "attempts = logical + retransmits"
    (rc.Reliable.logical + rc.Reliable.retransmits)
    rc.Reliable.attempts;
  (* the conservation law of the underlying transport still holds with
     retransmissions in flight (retransmits enter through [sent]) *)
  let c = Netsim.counters net in
  Alcotest.(check int) "netsim conservation under retransmission"
    (c.Netsim.sent + c.Netsim.duplicated)
    (c.Netsim.delivered + c.Netsim.dropped + c.Netsim.late);
  Alcotest.(check int) "retransmit counters agree" rc.Reliable.retransmits c.Netsim.retransmitted;
  Alcotest.(check int) "recovered counters agree" rc.Reliable.recovered c.Netsim.recovered

(* a cross-round replay (the link re-injects last round's frame) is
   rejected idempotently by the frame header check: the stale commit can
   never be double-processed into the new round *)
let test_reliable_rejects_cross_round_replay () =
  incr round_counter;
  let r1 = !round_counter in
  incr round_counter;
  let r2 = !round_counter in
  let script = [ ((r2, Netsim.Commit, 2), [ Netsim.Replay_previous ]) ] in
  let net = Netsim.create ~script ~seed:"rel-replay" () in
  let rel = Reliable.create net in
  let run round =
    Driver.run_round_outcome session ~reliable:rel ~updates ~behaviours:(Driver.honest_all n)
      ~round
  in
  (match run r1 with
  | Driver.Completed stats when stats.Driver.flagged = [] -> ()
  | o -> fail "clean reliable round should complete, got %s" (Driver.outcome_to_string o));
  (* round r2: client 2's commit link substitutes the link's previous
     frame on every attempt. Attempt 0 therefore delivers the stale
     round-r1 frame — rejected by the header check, never processed into
     round r2 — and the retransmission (whose "previous" is now the fresh
     r2 frame) recovers the client: nobody is convicted, nothing is
     double-counted *)
  (match run r2 with
  | Driver.Completed stats ->
      Alcotest.(check (list int)) "stale frame rejected without conviction" []
        (List.sort compare stats.Driver.flagged);
      if stats.Driver.decode_failures <> [] then
        fail "a replayed frame must not read as an undecodable one";
      (match stats.Driver.aggregate with
      | Some agg ->
          Alcotest.(check (array int)) "stale commit not smuggled into the round"
            (sum_updates all_ids) agg
      | None -> fail "round with one replayed link should still aggregate")
  | o -> fail "replayed link should not abort the round, got %s" (Driver.outcome_to_string o));
  let rc = Reliable.counters rel in
  if rc.Reliable.rejected = 0 then fail "the stale frame must be counted as rejected";
  if rc.Reliable.recovered = 0 then fail "the retransmission must recover the replayed link"

let () =
  Alcotest.run "netsim"
    [
      ( "transport",
        [
          Alcotest.test_case "seed reproducibility" `Quick test_seed_reproducible;
          Alcotest.test_case "send-order independence" `Quick test_send_order_irrelevant;
          Alcotest.test_case "plan parser" `Quick test_plan_parser;
          Alcotest.test_case "scripted faults" `Quick test_scripted_faults;
          Alcotest.test_case "delay vs deadline" `Quick test_delay_and_deadline;
          Alcotest.test_case "reorder" `Quick test_reorder;
          Alcotest.test_case "replay" `Quick test_replay;
          Alcotest.test_case "counters conserved" `Quick test_counters_conserved;
        ] );
      ( "dropout-ladder",
        [
          Alcotest.test_case "commit stage" `Quick (test_ladder_stage Netsim.Commit);
          Alcotest.test_case "flag stage" `Quick (test_ladder_stage Netsim.Flag);
          Alcotest.test_case "proof stage" `Quick (test_ladder_stage Netsim.Proof);
          Alcotest.test_case "agg stage" `Quick (test_ladder_stage Netsim.Agg);
          Alcotest.test_case "mixed late dropouts" `Quick test_mixed_late_dropouts;
          Alcotest.test_case "run_round never aborts" `Quick test_run_round_never_aborts;
        ] );
      ( "backends",
        [
          Alcotest.test_case "netsim endpoint" `Quick (test_backend_ladder (module Netsim));
          Alcotest.test_case "socketpair loopback" `Quick
            (test_backend_ladder (module Risefl_transport.Loopback));
        ] );
      ( "retransmission",
        [
          Alcotest.test_case "survives drop=0.5" `Quick test_retransmit_survives_drops;
          Alcotest.test_case "cross-round replay rejected" `Quick
            test_reliable_rejects_cross_round_replay;
        ] );
    ]
