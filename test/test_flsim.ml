(* FL simulator tests: dataset generators, model gradients (checked
   against finite differences), attacks, defenses, and the Figure 8
   dynamic — RiseFL's probabilistic check tracks strict checking and
   beats no-checking under attack. *)

module Dataset = Flsim.Dataset
module Model = Flsim.Model
module Attack = Flsim.Attack
module Defense = Flsim.Defense
module Federated = Flsim.Federated

let drbg = Prng.Drbg.create_string "test-flsim"

(* --- datasets --- *)

let test_dataset_shapes () =
  let blobs = Dataset.gaussian_blobs drbg ~n:100 ~features:5 ~classes:3 ~spread:0.5 in
  Alcotest.(check int) "rows" 100 (Array.length blobs.Dataset.x);
  Alcotest.(check int) "features" 5 (Array.length blobs.Dataset.x.(0));
  Array.iter (fun c -> Alcotest.(check bool) "label range" true (c >= 0 && c < 3)) blobs.Dataset.y;
  let organ = Dataset.organ_like drbg ~n:20 in
  Alcotest.(check int) "organ features" 784 organ.Dataset.n_features;
  Alcotest.(check int) "organ classes" 11 organ.Dataset.n_classes;
  Array.iter
    (fun row -> Array.iter (fun v -> Alcotest.(check bool) "pixel range" true (v >= 0.0 && v <= 1.0)) row)
    organ.Dataset.x;
  let cov = Dataset.covtype_like drbg ~n:20 in
  Alcotest.(check int) "covtype features" 54 cov.Dataset.n_features;
  Alcotest.(check int) "covtype classes" 7 cov.Dataset.n_classes;
  (* one-hot block is 0/1 *)
  Array.iter
    (fun row ->
      for j = 10 to 53 do
        Alcotest.(check bool) "one-hot" true (row.(j) = 0.0 || row.(j) = 1.0)
      done)
    cov.Dataset.x

let test_split_partition () =
  let data = Dataset.gaussian_blobs drbg ~n:100 ~features:4 ~classes:2 ~spread:0.5 in
  let train, test = Dataset.split drbg data ~test_fraction:0.2 in
  Alcotest.(check int) "train size" 80 (Array.length train.Dataset.y);
  Alcotest.(check int) "test size" 20 (Array.length test.Dataset.y);
  let parts = Dataset.partition train ~parts:5 in
  Alcotest.(check int) "parts" 5 (Array.length parts);
  Alcotest.(check int) "union size" 80
    (Array.fold_left (fun acc p -> acc + Array.length p.Dataset.y) 0 parts)

let test_relabel () =
  let data = Dataset.gaussian_blobs drbg ~n:50 ~features:2 ~classes:3 ~spread:0.5 in
  let flipped = Dataset.relabel data ~from_class:0 ~to_class:1 in
  Array.iter (fun c -> Alcotest.(check bool) "no class 0" true (c <> 0)) flipped.Dataset.y

let test_dirichlet_partition () =
  let data = Dataset.gaussian_blobs drbg ~n:400 ~features:3 ~classes:4 ~spread:0.5 in
  let parts = Dataset.partition_dirichlet (Prng.Drbg.fork drbg "dir") data ~parts:8 ~alpha:0.2 in
  Alcotest.(check int) "parts" 8 (Array.length parts);
  Alcotest.(check int) "union size" 400
    (Array.fold_left (fun acc p -> acc + Array.length p.Dataset.y) 0 parts);
  Array.iter
    (fun p -> Alcotest.(check bool) "non-empty" true (Array.length p.Dataset.y > 0))
    parts;
  (* heterogeneity: with alpha = 0.2, at least one part must be strongly
     skewed (majority class > 60%), unlike the IID partition *)
  let skewed =
    Array.exists
      (fun p ->
        let counts = Array.make 4 0 in
        Array.iter (fun c -> counts.(c) <- counts.(c) + 1) p.Dataset.y;
        let m = Array.fold_left max 0 counts in
        float_of_int m > 0.6 *. float_of_int (Array.length p.Dataset.y))
      parts
  in
  Alcotest.(check bool) "skewed" true skewed

(* --- model: finite-difference gradient check --- *)

let finite_diff_check arch =
  let data = Dataset.gaussian_blobs drbg ~n:12 ~features:3 ~classes:3 ~spread:0.8 in
  let model = Model.create drbg arch ~n_features:3 ~n_classes:3 in
  let grad = Model.gradient model data ~batch:None drbg in
  let theta = Model.params model in
  let eps = 1e-5 in
  (* check a handful of coordinates *)
  List.iter
    (fun idx ->
      let idx = idx mod Array.length theta in
      let bump delta =
        let t = Array.copy theta in
        t.(idx) <- t.(idx) +. delta;
        Model.set_params model t;
        Model.loss model data
      in
      let numeric = (bump eps -. bump (-.eps)) /. (2.0 *. eps) in
      Model.set_params model theta;
      Alcotest.(check bool)
        (Printf.sprintf "coord %d: analytic %.6f vs numeric %.6f" idx grad.(idx) numeric)
        true
        (abs_float (grad.(idx) -. numeric) < 1e-4))
    [ 0; 3; 7; 11; 13 ]

let test_softmax_gradient () = finite_diff_check Model.Softmax
let test_mlp_gradient () = finite_diff_check (Model.Mlp 6)

let test_model_learns () =
  (* well-separated blobs: accuracy should approach 1 quickly *)
  let data = Dataset.gaussian_blobs drbg ~n:300 ~features:4 ~classes:3 ~spread:0.2 in
  let train, test = Dataset.split drbg data ~test_fraction:0.3 in
  let model = Model.create drbg Model.Softmax ~n_features:4 ~n_classes:3 in
  for _ = 1 to 60 do
    let g = Model.gradient model train ~batch:None drbg in
    Model.step model g ~lr:0.5
  done;
  let acc = Model.accuracy model test in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f" acc) true (acc > 0.9)

(* --- attacks --- *)

let test_attacks_transform () =
  let u = [| 1.0; -2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-9))) "sign flip" [| -5.0; 10.0; -15.0 |]
    (Attack.poison_update (Attack.Sign_flip 5.0) drbg u);
  Alcotest.(check (array (float 1e-9))) "scaling" [| 10.0; -20.0; 30.0 |]
    (Attack.poison_update (Attack.Scaling 10.0) drbg u);
  Alcotest.(check (array (float 1e-9))) "label flip leaves gradient" u
    (Attack.poison_update (Attack.Label_flip (0, 1)) drbg u);
  let noisy = Attack.poison_update (Attack.Additive_noise 1.0) drbg u in
  Alcotest.(check bool) "noise changes" true (noisy <> u)

(* --- defenses --- *)

let test_strict_predicates () =
  let u = [| 3.0; 4.0 |] in
  Alcotest.(check bool) "l2 pass" true (Defense.strict (Defense.L2 5.5) u);
  Alcotest.(check bool) "l2 fail" false (Defense.strict (Defense.L2 4.5) u);
  let v = [| 3.0; 4.0 |] in
  Alcotest.(check bool) "sphere pass" true (Defense.strict (Defense.Sphere (v, 0.1)) u);
  Alcotest.(check bool) "sphere fail" false (Defense.strict (Defense.Sphere ([| 0.0; 0.0 |], 1.0)) u);
  Alcotest.(check bool) "cosine aligned" true (Defense.strict (Defense.Cosine (v, 6.0, 0.9)) u);
  Alcotest.(check bool) "cosine opposed" false
    (Defense.strict (Defense.Cosine ([| -3.0; -4.0 |], 6.0, 0.9)) u)

let test_zeno_conversion () =
  (* zeno predicate gamma<v,u> - rho|u|^2 >= gamma*eps checked directly vs
     via the sphere conversion *)
  let v = [| 1.0; 0.5 |] in
  let gamma = 1.0 and rho = 0.5 and eps = 0.01 in
  let direct u =
    let dot = (v.(0) *. u.(0)) +. (v.(1) *. u.(1)) in
    let n2 = (u.(0) *. u.(0)) +. (u.(1) *. u.(1)) in
    (gamma *. dot) -. (rho *. n2) >= gamma *. eps
  in
  List.iter
    (fun u ->
      Alcotest.(check bool)
        (Printf.sprintf "u=(%g,%g)" u.(0) u.(1))
        (direct u)
        (Defense.strict (Defense.Zeno (v, gamma, rho, eps)) u))
    [ [| 1.0; 0.5 |]; [| 0.1; 0.1 |]; [| -1.0; -1.0 |]; [| 2.0; 1.0 |]; [| 5.0; 5.0 |] ]

let test_probabilistic_tracks_strict () =
  (* in-bound vectors pass; 10x-over-bound vectors fail (k = 50 keeps the
     grey zone narrow enough for a deterministic-seed test) *)
  let k = 50 and eps = 2.0 ** -40.0 in
  let inb = Array.make 20 0.1 in
  let out = Array.make 20 10.0 in
  let b = 1.0 in
  Alcotest.(check bool) "in-bound passes" true
    (Defense.probabilistic ~k ~eps (Prng.Drbg.fork drbg "p1") (Defense.L2 b) inb);
  Alcotest.(check bool) "far out-of-bound fails" false
    (Defense.probabilistic ~k ~eps (Prng.Drbg.fork drbg "p2") (Defense.L2 b) out)

(* --- federated dynamics (a miniature Figure 8) --- *)

let fig8_config checker attack =
  {
    Federated.n_clients = 10;
    n_malicious = 3;
    attack;
    checker;
    rounds = 25;
    lr = 0.5;
    batch = None;
    arch = Model.Softmax;
    bound_factor = 2.0;
    non_iid_alpha = None;
    seed = "fig8-test";
  }

let test_federated_attack_dynamics () =
  let data = Dataset.gaussian_blobs (Prng.Drbg.fork drbg "fed") ~n:600 ~features:6 ~classes:3 ~spread:0.3 in
  let attack = Attack.Sign_flip 8.0 in
  let run checker = (Federated.train (fig8_config checker attack) ~data).Federated.final_accuracy in
  let acc_nc = run Federated.Np_nc in
  let acc_sc = run (Federated.Np_sc Federated.D_l2) in
  let acc_rf = run (Federated.Risefl (Federated.D_l2, 100)) in
  (* the paper's two observations: RiseFL ~ NP-SC, both >> NP-NC *)
  Alcotest.(check bool)
    (Printf.sprintf "risefl (%.3f) close to strict (%.3f)" acc_rf acc_sc)
    true
    (abs_float (acc_rf -. acc_sc) < 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "risefl (%.3f) beats no-check (%.3f)" acc_rf acc_nc)
    true
    (acc_rf > acc_nc +. 0.15)

let test_federated_rejects_attackers () =
  let data = Dataset.gaussian_blobs (Prng.Drbg.fork drbg "fed2") ~n:400 ~features:5 ~classes:2 ~spread:0.3 in
  let cfg = fig8_config (Federated.Risefl (Federated.D_l2, 100)) (Attack.Scaling 50.0) in
  let result = Federated.train cfg ~data in
  (* only malicious clients are ever rejected, and while gradients are
     non-trivial (round 1, before convergence) all three are caught;
     post-convergence a 50x-scaled near-zero gradient legitimately fits
     under the bound *)
  Array.iter
    (fun (log : Federated.round_log) ->
      List.iter
        (fun r -> Alcotest.(check bool) "rejected are malicious" true (r <= 3))
        log.Federated.rejected)
    result.Federated.logs;
  Alcotest.(check int) "round 1 rejects all 3" 3 (List.length result.Federated.logs.(0).Federated.rejected)

let test_federated_non_iid_runs () =
  let data = Dataset.gaussian_blobs (Prng.Drbg.fork drbg "noniid") ~n:400 ~features:5 ~classes:3 ~spread:0.4 in
  let cfg =
    { (fig8_config (Federated.Risefl (Federated.D_l2, 100)) (Attack.Scaling 50.0)) with
      Federated.non_iid_alpha = Some 0.3;
      rounds = 10;
    }
  in
  let result = Federated.train cfg ~data in
  Alcotest.(check bool)
    (Printf.sprintf "learns despite heterogeneity: %.3f" result.Federated.final_accuracy)
    true
    (result.Federated.final_accuracy > 0.7)

let test_federated_no_false_rejections () =
  let data = Dataset.gaussian_blobs (Prng.Drbg.fork drbg "fed3") ~n:400 ~features:5 ~classes:2 ~spread:0.3 in
  let cfg =
    { (fig8_config (Federated.Risefl (Federated.D_l2, 100)) (Attack.Scaling 50.0)) with Federated.n_malicious = 0 }
  in
  let result = Federated.train cfg ~data in
  Array.iter
    (fun (log : Federated.round_log) ->
      Alcotest.(check (list int))
        (Printf.sprintf "round %d" log.Federated.round)
        [] log.Federated.rejected)
    result.Federated.logs

let () =
  Alcotest.run "flsim"
    [
      ( "dataset",
        [
          Alcotest.test_case "shapes" `Quick test_dataset_shapes;
          Alcotest.test_case "split/partition" `Quick test_split_partition;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "dirichlet partition" `Quick test_dirichlet_partition;
        ] );
      ( "model",
        [
          Alcotest.test_case "softmax gradient (finite diff)" `Quick test_softmax_gradient;
          Alcotest.test_case "mlp gradient (finite diff)" `Quick test_mlp_gradient;
          Alcotest.test_case "learns separable data" `Quick test_model_learns;
        ] );
      ("attack", [ Alcotest.test_case "transformations" `Quick test_attacks_transform ]);
      ( "defense",
        [
          Alcotest.test_case "strict predicates" `Quick test_strict_predicates;
          Alcotest.test_case "zeno conversion" `Quick test_zeno_conversion;
          Alcotest.test_case "probabilistic tracks strict" `Quick test_probabilistic_tracks_strict;
        ] );
      ( "federated",
        [
          Alcotest.test_case "attack dynamics (mini Figure 8)" `Quick test_federated_attack_dynamics;
          Alcotest.test_case "rejects attackers" `Quick test_federated_rejects_attackers;
          Alcotest.test_case "no false rejections" `Quick test_federated_no_false_rejections;
          Alcotest.test_case "non-IID training" `Quick test_federated_non_iid_runs;
        ] );
    ]
