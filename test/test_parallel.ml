(* Properties of the parallel runtime and the hot paths threaded through
   it: every combinator, the chunked Pippenger MSM, vector commitments
   and full-protocol verification must produce results identical to the
   sequential computation for every job count (the determinism guarantee
   of lib/parallel). Also covers the Bigint.to_digits window-digit
   extraction that the MSM precompute and Point.mul now share. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm
module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver

let jobs_ladder = [ 1; 2; 4 ]

let drbg = Prng.Drbg.create_string "test-parallel"

(* --- combinators --- *)

let test_parallel_init () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let got = Parallel.parallel_init ~jobs n (fun i -> (i * i) - (3 * i)) in
          let want = Array.init n (fun i -> (i * i) - (3 * i)) in
          Alcotest.(check (array int))
            (Printf.sprintf "init n=%d jobs=%d" n jobs)
            want got)
        [ 0; 1; 2; 7; 64; 1000 ])
    jobs_ladder

let test_parallel_map_mapi () =
  let xs = Array.init 513 (fun i -> i - 256) in
  List.iter
    (fun jobs ->
      let got = Parallel.parallel_map ~jobs (fun x -> x * 2) xs in
      Alcotest.(check (array int))
        (Printf.sprintf "map jobs=%d" jobs)
        (Array.map (fun x -> x * 2) xs)
        got;
      let got = Parallel.parallel_mapi ~jobs (fun i x -> i + x) xs in
      Alcotest.(check (array int))
        (Printf.sprintf "mapi jobs=%d" jobs)
        (Array.mapi (fun i x -> i + x) xs)
        got)
    jobs_ladder

let test_parallel_for_covers_range () =
  List.iter
    (fun jobs ->
      let n = 777 in
      let hits = Array.make n 0 in
      Parallel.parallel_for ~jobs ~lo:0 ~hi:n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check (array int))
        (Printf.sprintf "each index once, jobs=%d" jobs)
        (Array.make n 1) hits)
    jobs_ladder

let test_parallel_reduce () =
  let xs = Array.init 1001 (fun i -> i) in
  let want = Array.fold_left (fun acc x -> acc + (x * x)) 0 xs in
  List.iter
    (fun jobs ->
      let got =
        Parallel.parallel_reduce ~jobs ~map:(fun x -> x * x) ~combine:( + ) ~init:0 xs
      in
      Alcotest.(check int) (Printf.sprintf "sum of squares, jobs=%d" jobs) want got)
    jobs_ladder;
  Alcotest.(check int) "reduce of empty = init" 42
    (Parallel.parallel_reduce ~jobs:4 ~map:(fun x -> x) ~combine:( + ) ~init:42 [||])

let test_map_chunks_partition () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let ranges = Parallel.map_chunks ~jobs ~n (fun lo hi -> (lo, hi)) in
          (* ranges must tile [0, n) exactly, in ascending order *)
          let pos = ref 0 in
          Array.iter
            (fun (lo, hi) ->
              Alcotest.(check int) "contiguous" !pos lo;
              Alcotest.(check bool) "non-empty" true (hi > lo);
              pos := hi)
            ranges;
          Alcotest.(check int) (Printf.sprintf "covers n=%d jobs=%d" n jobs) n !pos)
        [ 1; 2; 3; 15; 16; 17; 1000 ])
    jobs_ladder;
  Alcotest.(check int) "n=0 gives no chunks" 0
    (Array.length (Parallel.map_chunks ~jobs:4 ~n:0 (fun lo hi -> (lo, hi))))

exception Boom

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "worker exception surfaces, jobs=%d" jobs)
        Boom
        (fun () ->
          ignore (Parallel.parallel_init ~jobs 64 (fun i -> if i = 37 then raise Boom else i)));
      (* the pool must still be usable afterwards *)
      let got = Parallel.parallel_init ~jobs 64 (fun i -> i) in
      Alcotest.(check (array int)) "pool survives exception" (Array.init 64 (fun i -> i)) got)
    jobs_ladder

let test_tree_combine () =
  Alcotest.check_raises "empty" (Invalid_argument "Parallel.tree_combine: empty")
    (fun () -> ignore (Parallel.tree_combine ( + ) [||]));
  for n = 1 to 33 do
    let xs = Array.init n (fun i -> [ i ]) in
    let got = Parallel.tree_combine ( @ ) xs in
    (* pairwise merging in fixed order must preserve element order *)
    Alcotest.(check (list int)) (Printf.sprintf "order kept n=%d" n)
      (List.init n (fun i -> i))
      got
  done

let test_nested_regions_inline () =
  (* a parallel region started from inside another must not deadlock *)
  let got =
    Parallel.parallel_init ~jobs:4 8 (fun i ->
        Array.fold_left ( + ) 0 (Parallel.parallel_init ~jobs:4 16 (fun j -> i + j)))
  in
  let want = Array.init 8 (fun i -> (16 * i) + 120) in
  Alcotest.(check (array int)) "nested result" want got

(* --- Bigint.to_digits vs the bit-by-bit reference --- *)

let digits_ref ~bits ~count x =
  Array.init count (fun w ->
      let v = ref 0 in
      for b = bits - 1 downto 0 do
        v := (!v lsl 1) lor if Bigint.testbit x ((w * bits) + b) then 1 else 0
      done;
      !v)

let test_to_digits_matches_testbit () =
  let cases =
    [ Bigint.zero; Bigint.one; Bigint.of_int max_int ]
    @ List.init 20 (fun i ->
          Bigint.of_bytes_le (Prng.Drbg.bytes drbg ((i mod 5) + (4 * i) + 1)))
  in
  List.iter
    (fun x ->
      List.iter
        (fun bits ->
          let count = (Bigint.bit_length x / bits) + 2 in
          Alcotest.(check (array int))
            (Printf.sprintf "bits=%d %s" bits (Bigint.to_string x))
            (digits_ref ~bits ~count x)
            (Bigint.to_digits ~bits ~count x))
        [ 1; 2; 4; 5; 13; 26; 29; 30 ])
    cases;
  (* count past the magnitude yields zero digits *)
  let ds = Bigint.to_digits ~bits:4 ~count:200 (Bigint.of_int 0xABC) in
  Alcotest.(check (array int)) "high digits zero"
    (Array.append [| 0xC; 0xB; 0xA |] (Array.make 197 0))
    ds

(* --- MSM vs naive scalar-mul sum --- *)

let naive_msm pairs =
  Array.fold_left (fun acc (s, p) -> Point.add acc (Point.mul s p)) Point.identity pairs

let random_point () = Point.mul (Scalar.random drbg) Point.base

let test_msm_matches_naive () =
  List.iter
    (fun n ->
      let pairs = Array.init n (fun _ -> (Scalar.random drbg, random_point ())) in
      let want = naive_msm pairs in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "msm n=%d jobs=%d" n jobs)
            true
            (Point.equal want (Msm.msm ~jobs pairs)))
        jobs_ladder)
    [ 0; 1; 2; 3; 17; 100 ]

let test_msm_edge_cases () =
  List.iter
    (fun jobs ->
      Alcotest.(check bool) "0 points -> identity" true
        (Point.equal Point.identity (Msm.msm ~jobs [||]));
      Alcotest.(check bool) "0 points (small) -> identity" true
        (Point.equal Point.identity (Msm.msm_small ~jobs [||]));
      let zeros = Array.init 40 (fun _ -> (Scalar.zero, random_point ())) in
      Alcotest.(check bool) "all-zero scalars -> identity" true
        (Point.equal Point.identity (Msm.msm ~jobs zeros));
      let zeros_small = Array.init 40 (fun _ -> (0, random_point ())) in
      Alcotest.(check bool) "all-zero ints -> identity" true
        (Point.equal Point.identity (Msm.msm_small ~jobs zeros_small)))
    jobs_ladder

let test_msm_small_signed () =
  (* negative exponents: e·P with e < 0 must equal (-e)·(-P) *)
  let exps = [| -1; 1; -1048575; 1048575; -77; 0; 5; -2; 123456; -999983 |] in
  let pairs = Array.map (fun e -> (e, random_point ())) exps in
  let want =
    Array.fold_left
      (fun acc (e, p) ->
        let q = Point.mul (Scalar.of_int (abs e)) p in
        Point.add acc (if e < 0 then Point.neg q else q))
      Point.identity pairs
  in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "signed msm_small jobs=%d" jobs)
        true
        (Point.equal want (Msm.msm_small ~jobs pairs)))
    jobs_ladder

let test_msm_small_qcheck =
  QCheck.Test.make ~count:30 ~name:"msm_small == naive signed sum"
    QCheck.(list_of_size (Gen.int_range 1 24) (int_range (-1 lsl 20) (1 lsl 20)))
    (fun es ->
      let pairs = Array.of_list (List.map (fun e -> (e, random_point ())) es) in
      let want =
        Array.fold_left
          (fun acc (e, p) ->
            let q = Point.mul (Scalar.of_int (abs e)) p in
            Point.add acc (if e < 0 then Point.neg q else q))
          Point.identity pairs
      in
      List.for_all (fun jobs -> Point.equal want (Msm.msm_small ~jobs pairs)) jobs_ladder)

(* --- commitment generation is jobs-invariant --- *)

let test_commit_vec_jobs_invariant () =
  let g = random_point () and h = random_point () in
  let key = Commitments.Pedersen.make_key ~g ~h in
  let bases = Array.init 64 (fun _ -> random_point ()) in
  let values = Array.init 64 (fun i -> ((i * 37) mod 400) - 200) in
  let blind = Scalar.random drbg in
  let run jobs =
    let saved = Parallel.default_jobs () in
    Parallel.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Parallel.set_default_jobs saved)
      (fun () ->
        Commitments.Pedersen.commit_vec ~g_table:key.Commitments.Pedersen.g_table ~bases ~values
          ~blind)
  in
  let want = run 1 in
  List.iter
    (fun jobs ->
      let got = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "commit_vec jobs=%d" jobs)
        true
        (Array.for_all2 Point.equal want got))
    jobs_ladder

(* --- full protocol: parallel verification == sequential --- *)

let test_protocol_jobs_invariant () =
  let params =
    Params.make ~n_clients:4 ~max_malicious:1 ~d:16 ~k:4 ~m_factor:64.0 ~bound_b:1000.0 ()
  in
  let setup = Setup.create ~label:"test-parallel-proto" params in
  let mk_updates () =
    Array.init 4 (fun i -> Array.init 16 (fun l -> ((i * 31) + (l * 7) + 3) mod 200 - 100))
  in
  let run jobs =
    let saved = Parallel.default_jobs () in
    Parallel.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Parallel.set_default_jobs saved)
      (fun () ->
        let updates = mk_updates () in
        (* client 2 grossly oversized: must land in C* at every job count *)
        let norm = Encoding.Fixed_point.l2_norm_encoded updates.(1) in
        let factor = int_of_float (Float.round (100.0 *. 1000.0 /. norm)) in
        updates.(1) <- Array.map (fun x -> factor * x) updates.(1);
        let behaviours = Driver.honest_all 4 in
        behaviours.(1) <- Driver.Oversized 100.0;
        let stats = Driver.run_iteration setup ~updates ~behaviours ~seed:"jobs-inv" ~round:1 in
        (stats.Driver.flagged, stats.Driver.aggregate))
  in
  let flagged1, agg1 = run 1 in
  Alcotest.(check (list int)) "attacker rejected at jobs=1" [ 2 ] flagged1;
  List.iter
    (fun jobs ->
      let flagged, agg = run jobs in
      Alcotest.(check (list int))
        (Printf.sprintf "same rejected set, jobs=%d" jobs)
        flagged1 flagged;
      match (agg1, agg) with
      | Some a1, Some a -> Alcotest.(check (array int)) "same aggregate" a1 a
      | None, None -> ()
      | _ -> Alcotest.fail "aggregate presence differs across job counts")
    [ 2; 4 ]

let () =
  Alcotest.run "parallel"
    [
      ( "combinators",
        [
          Alcotest.test_case "parallel_init" `Quick test_parallel_init;
          Alcotest.test_case "parallel_map/mapi" `Quick test_parallel_map_mapi;
          Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers_range;
          Alcotest.test_case "parallel_reduce" `Quick test_parallel_reduce;
          Alcotest.test_case "map_chunks tiles the range" `Quick test_map_chunks_partition;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "tree_combine" `Quick test_tree_combine;
          Alcotest.test_case "nested regions run inline" `Quick test_nested_regions_inline;
        ] );
      ( "to_digits",
        [ Alcotest.test_case "matches testbit reference" `Quick test_to_digits_matches_testbit ] );
      ( "msm",
        [
          Alcotest.test_case "matches naive sum" `Quick test_msm_matches_naive;
          Alcotest.test_case "edge cases" `Quick test_msm_edge_cases;
          Alcotest.test_case "signed small exponents" `Quick test_msm_small_signed;
          QCheck_alcotest.to_alcotest test_msm_small_qcheck;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "commit_vec jobs-invariant" `Quick test_commit_vec_jobs_invariant;
          Alcotest.test_case "verify/aggregate jobs-invariant" `Slow test_protocol_jobs_invariant;
        ] );
    ]
