(* Tests for the statistics layer (special functions, chi-square,
   Theorem 1 quantities) and the fixed-point encoding. *)

module Special = Stats.Special
module Chisq = Stats.Chisq
module Passrate = Stats.Passrate
module Fp = Encoding.Fixed_point

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (abs_float (expected -. actual) <= tol *. (1.0 +. abs_float expected))

(* --- special functions --- *)

let test_ln_gamma_known () =
  close "lgamma 1" 0.0 (Special.ln_gamma 1.0);
  close "lgamma 2" 0.0 (Special.ln_gamma 2.0);
  close "lgamma 5 = ln 24" (log 24.0) (Special.ln_gamma 5.0);
  close "lgamma 0.5 = ln sqrt pi" (0.5 *. log Float.pi) (Special.ln_gamma 0.5);
  (* recurrence Gamma(x+1) = x Gamma(x) *)
  List.iter
    (fun x -> close "recurrence" (Special.ln_gamma x +. log x) (Special.ln_gamma (x +. 1.0)))
    [ 0.3; 1.7; 10.2; 123.456 ]

let test_gamma_pq_complement () =
  List.iter
    (fun (a, x) ->
      close ~tol:1e-12 (Printf.sprintf "P+Q=1 a=%g x=%g" a x) 1.0
        (Special.gamma_p a x +. Special.gamma_q a x))
    [ (0.5, 0.3); (1.0, 1.0); (5.0, 2.0); (5.0, 20.0); (500.0, 480.0); (500.0, 700.0) ]

let test_gamma_p_exponential () =
  (* a=1: P(1,x) = 1 - e^-x exactly *)
  List.iter
    (fun x -> close "P(1,x)" (1.0 -. exp (-.x)) (Special.gamma_p 1.0 x))
    [ 0.1; 1.0; 3.0; 10.0 ]

(* --- chi-square --- *)

let test_chisq_known_values () =
  (* chi2 cdf with k=2 is 1 - exp(-x/2) *)
  List.iter
    (fun x -> close "k=2 cdf" (1.0 -. exp (-.x /. 2.0)) (Chisq.cdf ~k:2 x))
    [ 0.5; 2.0; 10.0 ];
  (* median of chi2_k approx k(1-2/(9k))^3 *)
  let k = 100 in
  let median_approx = float_of_int k *. ((1.0 -. (2.0 /. (9.0 *. float_of_int k))) ** 3.0) in
  close ~tol:1e-3 "median" 0.5 (Chisq.cdf ~k median_approx)

let test_chisq_quantile_inverts_sf () =
  List.iter
    (fun (k, eps) ->
      let g = Chisq.quantile_upper ~k ~eps in
      let back = Chisq.sf ~k g in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d eps=%g: sf(g)=%g" k eps back)
        true
        (abs_float (log back -. log eps) < 1e-6))
    [ (1, 0.05); (10, 1e-6); (100, 1e-20); (1000, 2.9387e-39); (9000, 2.9387e-39) ]

let test_chisq_quantile_monotone () =
  (* gamma grows with k and with smaller eps *)
  let eps = 2.0 ** -128.0 in
  let g1 = Chisq.quantile_upper ~k:1000 ~eps in
  let g2 = Chisq.quantile_upper ~k:3000 ~eps in
  let g3 = Chisq.quantile_upper ~k:1000 ~eps:(2.0 ** -64.0) in
  Alcotest.(check bool) "k monotone" true (g2 > g1);
  Alcotest.(check bool) "eps monotone" true (g3 < g1);
  (* and the paper's regime: gamma/k approaches 1 as k grows *)
  let g9 = Chisq.quantile_upper ~k:9000 ~eps in
  Alcotest.(check bool) "ratio shrinks" true (g9 /. 9000.0 < g1 /. 1000.0)

(* --- pass rate / Figure 5 shape --- *)

let params_fig5 k = { Passrate.k; eps = 2.0 ** -128.0; d = 1_000_000; m_factor = 2.0 ** 24.0 }

let test_passrate_shape () =
  let p = params_fig5 1000 in
  (* F close to 1 just above c = 1, negligible by c = 2 (paper: at k=1000,
     1.2B passes w.h.p., 1.4B fails w.h.p.) *)
  Alcotest.(check bool) "F(1.05) ~ 1" true (Passrate.f p 1.05 > 0.999);
  Alcotest.(check bool) "F(1.2) large" true (Passrate.f p 1.2 > 0.5);
  Alcotest.(check bool) "F(1.4) small" true (Passrate.f p 1.4 < 0.01);
  Alcotest.(check bool) "F decreasing" true (Passrate.f p 1.1 >= Passrate.f p 1.3)

let test_max_damage_matches_paper () =
  (* §5.1: k = 1K, 3K, 9K give damage ratios about 1.24, 1.13, 1.08 *)
  List.iter
    (fun (k, expected) ->
      let _, dmg = Passrate.max_damage (params_fig5 k) in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d damage %.3f vs paper %.2f" k dmg expected)
        true
        (abs_float (dmg -. expected) < 0.03))
    [ (1000, 1.24); (3000, 1.13); (9000, 1.08) ]

let test_b0_dominates_gamma () =
  let p = params_fig5 1000 in
  let b = 1000.0 in
  let b0 = Passrate.b0 p ~b in
  (* B0 >= B^2 M^2 gamma *)
  Alcotest.(check bool) "B0 lower bound" true
    (b0 >= b *. b *. p.m_factor *. p.m_factor *. Passrate.gamma p)

(* --- fixed point --- *)

let test_fp_roundtrip_exact () =
  let cfg = Fp.default in
  List.iter
    (fun x ->
      let v = Fp.encode cfg x in
      close ~tol:0.0 (Printf.sprintf "exact %g" x) x (Fp.decode cfg v))
    [ 0.0; 1.0; -1.0; 0.5; -0.25; 127.99609375; -128.0 ]

let test_fp_rounding () =
  let cfg = Fp.default in
  (* error bounded by half an lsb *)
  let lsb = 1.0 /. 256.0 in
  List.iter
    (fun x ->
      let err = abs_float (Fp.decode cfg (Fp.encode cfg x) -. x) in
      Alcotest.(check bool) (Printf.sprintf "err %g" x) true (err <= lsb /. 2.0 +. 1e-12))
    [ 0.1; -0.7; 3.14159; 99.999; -42.424242 ]

let test_fp_clamps () =
  let cfg = Fp.default in
  Alcotest.(check int) "clamp hi" 32767 (Fp.encode cfg 1e9);
  Alcotest.(check int) "clamp lo" (-32768) (Fp.encode cfg (-1e9));
  Alcotest.(check int) "nan to 0" 0 (Fp.encode cfg Float.nan)

let test_fp_vec_and_norm () =
  let cfg = Fp.default in
  let v = [| 3.0; 4.0 |] in
  let enc = Fp.encode_vec cfg v in
  Alcotest.(check (array int)) "encode vec" [| 768; 1024 |] enc;
  close "l2 encoded" 1280.0 (Fp.l2_norm_encoded enc);
  let dec = Fp.decode_vec cfg enc in
  Alcotest.(check bool) "decode vec" true (dec = v)

let test_fp_bad_cfg () =
  Alcotest.check_raises "bits too small" (Invalid_argument "Fixed_point.make") (fun () ->
      ignore (Fp.make ~bits:1 ~frac:0));
  Alcotest.check_raises "frac >= bits" (Invalid_argument "Fixed_point.make") (fun () ->
      ignore (Fp.make ~bits:8 ~frac:8))

let () =
  Alcotest.run "stats-encoding"
    [
      ( "special",
        [
          Alcotest.test_case "ln_gamma known" `Quick test_ln_gamma_known;
          Alcotest.test_case "P+Q=1" `Quick test_gamma_pq_complement;
          Alcotest.test_case "P(1,x) exponential" `Quick test_gamma_p_exponential;
        ] );
      ( "chisq",
        [
          Alcotest.test_case "known values" `Quick test_chisq_known_values;
          Alcotest.test_case "quantile inverts sf" `Quick test_chisq_quantile_inverts_sf;
          Alcotest.test_case "quantile monotone" `Quick test_chisq_quantile_monotone;
        ] );
      ( "passrate",
        [
          Alcotest.test_case "Figure 5a shape" `Quick test_passrate_shape;
          Alcotest.test_case "Figure 5b max damage" `Quick test_max_damage_matches_paper;
          Alcotest.test_case "B0 bound" `Quick test_b0_dominates_gamma;
        ] );
      ( "fixed-point",
        [
          Alcotest.test_case "roundtrip exact" `Quick test_fp_roundtrip_exact;
          Alcotest.test_case "rounding error" `Quick test_fp_rounding;
          Alcotest.test_case "clamps" `Quick test_fp_clamps;
          Alcotest.test_case "vectors and norm" `Quick test_fp_vec_and_norm;
          Alcotest.test_case "bad config" `Quick test_fp_bad_cfg;
        ] );
    ]
