(* Wire-decoder fuzzing: for every message type, take a genuine encoded
   frame and hammer it with seeded mutations (truncations, byte flips,
   length-prefix edits, garbage extensions). The totality invariant under
   test: decode_* never raises — every mutation yields Ok or a located
   Error, deterministically — and a server fed corrupted frames through
   the netsim transport never raises either: the mutated sender lands in
   C* while the honest clients' aggregate is byte-for-byte unaffected.

   FUZZ_ITERS (default 500) bounds the per-message-type mutation count so
   `make fuzz-smoke` can run a quick bounded pass in CI. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Client = Risefl_core.Client
module Server = Risefl_core.Server
module Serial = Risefl_core.Serial
module Wire = Risefl_core.Wire
module Driver = Risefl_core.Driver
module Point = Curve25519.Point

let iters =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 500)
  | None -> 500

let params = Params.make ~n_clients:4 ~max_malicious:1 ~d:8 ~k:4 ~m_factor:64.0 ~bound_b:300.0 ()
let setup = Setup.create ~label:"test-fuzz" params

(* one genuine frame of every message type, from a real protocol run *)
let commit_frame, flag_frame, proof_frame, agg_frame, broadcast_frame =
  let root = Prng.Drbg.create_string "fuzz-seed" in
  let clients =
    Array.init 4 (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (string_of_int i)))
  in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  let updates = Array.init 4 (fun i -> Array.init 8 (fun l -> (i * l) - 4)) in
  let commits = Array.mapi (fun i c -> Client.commit_round c ~round:1 ~update:updates.(i)) clients in
  Server.begin_round server ~round:1 ~commits:(Array.map Option.some commits);
  let flags = Array.map (fun c -> Client.receive_shares c ~round:1 ~msgs:commits) clients in
  let s, hs = Server.prepare_check server in
  let proof = Client.proof_round clients.(0) ~round:1 ~s ~hs in
  let agg = Client.agg_round clients.(0) ~honest:[ 1; 2; 3; 4 ] in
  ( Serial.encode_commit_msg commits.(0),
    Serial.encode_flag_msg flags.(0),
    Serial.encode_proof_msg proof,
    Serial.encode_agg_msg agg,
    Serial.encode_broadcast ~s ~hs )

(* a decoder reduced to its observable verdict, for determinism checks *)
type verdict = V_ok | V_err of int * string

let verdict_of decode frame =
  match decode frame with
  | Ok _ -> V_ok
  | Error (e : Serial.error) -> V_err (e.Serial.offset, e.Serial.reason)

let mutate drbg frame =
  let len = Bytes.length frame in
  match Prng.Drbg.uniform_int drbg 5 with
  | 0 ->
      (* truncate at a uniform offset *)
      Bytes.sub frame 0 (Prng.Drbg.uniform_int drbg (max 1 len))
  | 1 ->
      (* flip 1..8 random bytes *)
      let b = Bytes.copy frame in
      if len > 0 then
        for _ = 1 to 1 + Prng.Drbg.uniform_int drbg 8 do
          let pos = Prng.Drbg.uniform_int drbg len in
          let mask = 1 + Prng.Drbg.uniform_int drbg 255 in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask))
        done;
      b
  | 2 ->
      (* hostile length prefix: a 4-byte window set to 0xFFFFFFFF *)
      let b = Bytes.copy frame in
      if len >= 4 then begin
        let pos = Prng.Drbg.uniform_int drbg (len - 3) in
        Bytes.fill b pos 4 '\xff'
      end;
      b
  | 3 ->
      (* random u32 in a random window (random length-prefix edit) *)
      let b = Bytes.copy frame in
      if len >= 4 then begin
        let pos = Prng.Drbg.uniform_int drbg (len - 3) in
        for i = 0 to 3 do
          Bytes.set b (pos + i) (Char.chr (Prng.Drbg.uniform_int drbg 256))
        done
      end;
      b
  | _ ->
      (* append trailing garbage *)
      let extra = 1 + Prng.Drbg.uniform_int drbg 64 in
      Bytes.cat frame (Prng.Drbg.bytes drbg extra)

let fuzz_one name frame decode () =
  let drbg = Prng.Drbg.create_string ("fuzz/" ^ name) in
  let oks = ref 0 and errs = ref 0 in
  for i = 1 to iters do
    let mutated = mutate drbg frame in
    let v1 =
      try verdict_of decode mutated
      with exn ->
        Alcotest.failf "%s: decoder raised %s on mutation %d" name (Printexc.to_string exn) i
    in
    (* decoding is a pure function of the bytes *)
    let v2 = verdict_of decode mutated in
    if v1 <> v2 then Alcotest.failf "%s: non-deterministic verdict on mutation %d" name i;
    (match v1 with V_ok -> incr oks | V_err _ -> incr errs)
  done;
  (* the unmutated frame must still decode *)
  (match verdict_of decode frame with
  | V_ok -> ()
  | V_err (off, why) -> Alcotest.failf "%s: genuine frame rejected at %d: %s" name off why);
  (* sanity: mutations overwhelmingly produce located errors *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: some mutations rejected (ok=%d err=%d)" name !oks !errs)
    true (!errs > 0)

let unit_result decode frame = Result.map (fun _ -> ()) (decode frame)

let fuzz_garbage () =
  (* pure garbage of every small length, against every decoder *)
  let drbg = Prng.Drbg.create_string "fuzz/garbage" in
  let decoders =
    [
      ("commit", unit_result Serial.decode_commit);
      ("flag", unit_result Serial.decode_flag);
      ("proof", unit_result Serial.decode_proof);
      ("agg", unit_result Serial.decode_agg);
      ("broadcast", unit_result Serial.decode_broadcast_r);
    ]
  in
  for len = 0 to 96 do
    let frame = Prng.Drbg.bytes drbg len in
    List.iter
      (fun (name, decode) ->
        match decode frame with
        | Ok () | Error _ -> ()
        | exception exn ->
            Alcotest.failf "%s: raised %s on %d-byte garbage" name (Printexc.to_string exn) len)
      decoders
  done

let test_decompress_total () =
  (* point decompression is total on arbitrary byte strings *)
  let drbg = Prng.Drbg.create_string "fuzz/decompress" in
  for _ = 1 to 2000 do
    let b = Prng.Drbg.bytes drbg 32 in
    match Point.decompress_unchecked b with Some _ | None -> ()
  done;
  List.iter
    (fun len ->
      match Point.decompress_unchecked (Prng.Drbg.bytes drbg len) with
      | Some _ -> Alcotest.failf "decompress accepted a %d-byte string" len
      | None -> ())
    [ 0; 1; 31; 33; 64 ];
  (* scalars too *)
  for _ = 1 to 500 do
    match Curve25519.Scalar.of_bytes_opt (Prng.Drbg.bytes drbg 32) with Some _ | None -> ()
  done

let test_hostile_length_prefix_no_alloc () =
  (* a frame whose count field claims 2^32-1 elements must be rejected
     up-front (count exceeds remaining bytes), not by attempting the
     allocation: decode an 0xFFFFFFFF-count commit frame body *)
  let b = Buffer.create 64 in
  Buffer.add_char b '\xC1';
  Buffer.add_string b "\x01\x00\x00\x00";
  (* y count = 0xFFFFFFFF with only a handful of bytes behind it *)
  Buffer.add_string b "\xff\xff\xff\xff";
  Buffer.add_string b (String.make 40 'A');
  match Serial.decode_commit (Buffer.to_bytes b) with
  | Ok _ -> Alcotest.fail "hostile length prefix accepted"
  | Error e ->
      Alcotest.(check int) "rejected at the count field" 5 e.Serial.offset;
      Alcotest.(check bool) "reason mentions count" true
        (String.length e.Serial.reason > 0)

(* --- server under a corrupting transport ----------------------------- *)

let sum_updates updates ids =
  let d = Array.length updates.(0) in
  Array.init d (fun l -> List.fold_left (fun acc i -> acc + updates.(i - 1).(l)) 0 ids)

let mk_updates n d =
  let drbg = Prng.Drbg.create_string "fuzz-updates" in
  Array.init n (fun _ -> Array.init d (fun _ -> Prng.Drbg.uniform_int drbg 20 - 10))

let run_corrupted ~jobs =
  Parallel.set_default_jobs jobs;
  let updates = mk_updates 4 8 in
  (* scripted corruption: client 2's commit truncated, client 3's proof
     truncated — both frames are undecodable by construction *)
  let script =
    [
      ((1, Netsim.Commit, 2), [ Netsim.Truncate_at 17 ]);
      ((1, Netsim.Proof, 3), [ Netsim.Truncate_at 40 ]);
    ]
  in
  let transport = Netsim.create ~script ~seed:"fuzz-corrupt" () in
  let session = Driver.create_session setup ~seed:"fuzz-corrupt" in
  let outcome =
    Driver.run_round_outcome session ~transport ~updates ~behaviours:(Driver.honest_all 4) ~round:1
  in
  (updates, outcome)

let test_corrupted_senders_land_in_cstar () =
  let updates, outcome = run_corrupted ~jobs:1 in
  match outcome with
  | Driver.Completed stats ->
      Alcotest.(check (list int)) "corrupted senders flagged" [ 2; 3 ] stats.Driver.flagged;
      Alcotest.(check (list int)) "decode failures recorded" [ 2; 3 ] stats.Driver.decode_failures;
      (* the honest survivors' aggregate is exactly the fault-free sum of
         their updates: corruption cost the senders, not the round *)
      (match stats.Driver.aggregate with
      | None -> Alcotest.fail "aggregation failed"
      | Some agg ->
          Alcotest.(check (array int)) "honest aggregate unaffected" (sum_updates updates [ 1; 4 ]) agg)
  | o -> Alcotest.failf "expected completion, got: %s" (Driver.outcome_to_string o)

let test_verdicts_jobs_invariant () =
  (* the verdicts (C*, aggregate) are identical under jobs ∈ {1, 4} *)
  let extract = function
    | Driver.Completed stats -> (stats.Driver.flagged, stats.Driver.aggregate)
    | o -> Alcotest.failf "expected completion, got: %s" (Driver.outcome_to_string o)
  in
  let _, o1 = run_corrupted ~jobs:1 in
  let _, o4 = run_corrupted ~jobs:4 in
  Parallel.set_default_jobs 0;
  let f1, a1 = extract o1 and f4, a4 = extract o4 in
  Alcotest.(check (list int)) "flagged jobs-invariant" f1 f4;
  Alcotest.(check bool) "aggregate jobs-invariant" true (a1 = a4)

let test_mutated_commit_storm () =
  (* every client's commit mutated differently (flips + truncations via a
     uniform plan with high corruption rates): whatever happens, the
     server must not raise and the outcome must be typed *)
  let updates = mk_updates 4 8 in
  let plan = { Netsim.ideal with Netsim.p_flip = 0.8; p_truncate = 0.5 } in
  for trial = 1 to 5 do
    let transport = Netsim.create ~plan ~seed:(Printf.sprintf "storm-%d" trial) () in
    let session = Driver.create_session setup ~seed:(Printf.sprintf "storm-%d" trial) in
    match
      Driver.run_round_outcome session ~transport ~updates ~behaviours:(Driver.honest_all 4)
        ~round:1
    with
    | Driver.Completed _ | Driver.Aborted_insufficient_quorum _ | Driver.Aborted_decode _ -> ()
    | exception exn -> Alcotest.failf "trial %d raised %s" trial (Printexc.to_string exn)
  done

let () =
  Alcotest.run "fuzz-wire"
    [
      ( "decoder-totality",
        [
          Alcotest.test_case "commit mutations" `Quick (fuzz_one "commit" commit_frame (unit_result Serial.decode_commit));
          Alcotest.test_case "flag mutations" `Quick (fuzz_one "flag" flag_frame (unit_result Serial.decode_flag));
          Alcotest.test_case "proof mutations" `Quick (fuzz_one "proof" proof_frame (unit_result Serial.decode_proof));
          Alcotest.test_case "agg mutations" `Quick (fuzz_one "agg" agg_frame (unit_result Serial.decode_agg));
          Alcotest.test_case "broadcast mutations" `Quick
            (fuzz_one "broadcast" broadcast_frame (unit_result Serial.decode_broadcast_r));
          Alcotest.test_case "pure garbage" `Quick fuzz_garbage;
          Alcotest.test_case "decompress total" `Quick test_decompress_total;
          Alcotest.test_case "hostile length prefix" `Quick test_hostile_length_prefix_no_alloc;
        ] );
      ( "server-under-corruption",
        [
          Alcotest.test_case "corrupted senders -> C*" `Quick test_corrupted_senders_land_in_cstar;
          Alcotest.test_case "verdicts jobs-invariant" `Quick test_verdicts_jobs_invariant;
          Alcotest.test_case "mutation storm, typed outcomes" `Quick test_mutated_commit_storm;
        ] );
    ]
