(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (§6), at sizes scaled for a pure-OCaml single-thread run.

   Targets (see `main.exe --help`):
     table1  Table 1  — instantiated asymptotic cost model
     table2  Table 2  — per-stage cost breakdown vs d, all four systems
     fig5    Figure 5 — pass-rate function F and max expected damage vs k
     fig6    Figure 6 — costs vs number of clients n
     fig7    Figure 7 — RiseFL stage breakdown vs k
     fig8    Figure 8 — FL training curves under attacks, three checkers
     micro   §6.2     — Bechamel micro-benchmarks of the primitive costs
     ablate  DESIGN.md ablations — naive vs optimized projection check
     faults  fault-injected transport degradation ladder (EXPERIMENTS.md)
     recovery  WAL overhead (bytes/round, fsyncs, wall-clock) + crash recovery
     serve   deployment transport: socket-loopback round latency + counters
     stream  streaming verification: barrier vs arrival-ordered fold, time + memory
     topology commit-stage bytes per client, all-to-all vs k-regular sharing
     churn   elastic membership: per-epoch enrollment/rotation costs + overhead
     all     everything above

   Absolute numbers differ from the paper's C/libsodium testbed; the
   comparisons (who wins, by what factor, how costs scale) are the
   reproduction target. EXPERIMENTS.md records paper-vs-measured. *)

module Params = Risefl_core.Params
module Setup = Risefl_core.Setup
module Driver = Risefl_core.Driver
module Client = Risefl_core.Client
module Server = Risefl_core.Server
module Sampling = Risefl_core.Sampling
module Cost_model = Risefl_core.Cost_model
module Table1_check = Risefl_core.Table1_check
module Round_log = Risefl_core.Round_log
module Membership = Risefl_core.Membership
module Loopback = Risefl_transport.Loopback
module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm
module Topology = Risefl_topology.Topology
module Serial = Risefl_core.Serial

let pf = Printf.printf

(* ------------------------------------------------------------------ *)
(* Config                                                              *)

type config = {
  mutable ds : int list;  (* model dimensions for table2 *)
  mutable k : int;
  mutable n : int;
  mutable rounds : int;  (* fig8 training rounds *)
  mutable full : bool;  (* larger sizes *)
  mutable smoke : bool;  (* tiny sizes for CI smoke runs *)
  mutable json : string;  (* machine-readable output path *)
  mutable seed : string;  (* workload seed namespace, recorded in metadata *)
  mutable targets : string list;
}

let config =
  {
    ds = [ 64; 256 ];
    k = 32;
    n = 4;
    rounds = 12;
    full = false;
    smoke = false;
    json = "BENCH_RISEFL.json";
    seed = "default";
    targets = [];
  }

(* [seed "x"] keeps the historical per-target seed strings under the
   default namespace and prefixes them when --seed overrides it, so two
   runs with different --seed values draw distinct synthetic workloads *)
let ns_seed s = if config.seed = "default" then s else config.seed ^ "/" ^ s

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_RISEFL.json)                        *)

type bench_record = { r_target : string; r_name : string; r_jobs : int; r_d : int; r_k : int; r_n : int; r_seconds : float }

let records : bench_record list ref = ref []

let record ~target ~name ?(jobs = Parallel.default_jobs ()) ?(d = 0) ?(k = 0) ?(n = 0) seconds =
  records :=
    { r_target = target; r_name = name; r_jobs = jobs; r_d = d; r_k = k; r_n = n; r_seconds = seconds }
    :: !records

(* snapshot captured by the phases target, embedded in the JSON output *)
let telemetry_snapshot : Telemetry.snapshot option ref = ref None

(* (degree, threshold, round-1 hex digest) chosen by the topology target,
   recorded in the JSON metadata so a result file pins the exact graph *)
let topo_meta : (int * int * string) option ref = ref None

let git_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "unknown" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ | (exception _) -> "unknown")

let write_json path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"version\": 2,\n";
  Buffer.add_string buf "  \"generated_by\": \"bench/main.ml\",\n";
  (* run metadata: the bench trajectory is self-describing *)
  Buffer.add_string buf (Printf.sprintf "  \"git_commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf (Printf.sprintf "  \"timestamp_unix\": %.0f,\n" (Unix.time ()));
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %S,\n" config.seed);
  Buffer.add_string buf
    (Printf.sprintf "  \"default_jobs\": %d,\n" (Parallel.default_jobs ()));
  (match !telemetry_snapshot with
  | None -> ()
  | Some snap ->
      Buffer.add_string buf "  \"telemetry\": ";
      Buffer.add_string buf (Telemetry.Json.to_string (Telemetry.snapshot_to_json snap));
      Buffer.add_string buf ",\n");
  (match !topo_meta with
  | None -> ()
  | Some (degree, threshold, digest) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"topology\": {\"degree\": %d, \"threshold\": %d, \"digest\": %S},\n" degree
           threshold digest));
  Buffer.add_string buf "  \"results\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"target\": %S, \"name\": %S, \"jobs\": %d, \"d\": %d, \"k\": %d, \"n\": %d, \"seconds\": %.6f}"
           r.r_target r.r_name r.r_jobs r.r_d r.r_k r.r_n r.r_seconds))
    (List.rev !records);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "wrote %d records to %s\n" (List.length !records) path

(* ------------------------------------------------------------------ *)
(* Synthetic workload helpers                                          *)

let mk_updates drbg ~n ~d ~amp =
  Array.init n (fun _ -> Array.init d (fun _ -> Prng.Drbg.uniform_int drbg (2 * amp) - amp))

let max_norm updates =
  Array.fold_left (fun acc u -> Float.max acc (Encoding.Fixed_point.l2_norm_encoded u)) 0.0 updates

let risefl_params ~n ~m ~d ~k ~bound =
  Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:1024.0 ~bound_b:bound ()

(* One RiseFL iteration on synthetic honest updates; returns driver stats. *)
let risefl_point ~n ~m ~d ~k ~seed =
  let seed = ns_seed seed in
  let drbg = Prng.Drbg.create_string (seed ^ "/updates") in
  let updates = mk_updates drbg ~n ~d ~amp:40 in
  let bound = 1.25 *. max_norm updates in
  let params = risefl_params ~n ~m ~d ~k ~bound in
  let setup = Setup.create ~label:(Printf.sprintf "bench/%d/%d" d k) params in
  Driver.run_iteration setup ~updates ~behaviours:(Driver.honest_all n) ~seed ~round:1

let mb bytes = float_of_int bytes /. 1048576.0

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let table1_gate = ref false (* --gate-table1: exit 1 on out-of-band ratios *)

let run_table1 () =
  pf "================ Table 1: asymptotic cost model ================\n";
  List.iter
    (fun d ->
      let c = { Cost_model.n = 100; m = 10; d; k = 1000; b = 16; log_m_factor = 24; log_p = 253 } in
      print_string (Cost_model.to_table c);
      print_newline ())
    [ 1_000; 10_000; 100_000 ];
  (* measured cross-check: one instrumented round, per-stage group-exp
     counts against the RiseFL row of the model (EXPERIMENTS.md documents
     the tolerance bands) *)
  pf "---- measured cross-check (telemetry op counts vs Cost_model.risefl) ----\n";
  let r = Table1_check.run () in
  print_string (Table1_check.to_table r);
  List.iter
    (fun st ->
      record ~target:"table1"
        ~name:("ge-ratio:" ^ st.Table1_check.stage)
        ~d:r.Table1_check.cfg.Cost_model.d ~k:r.Table1_check.cfg.Cost_model.k
        ~n:r.Table1_check.cfg.Cost_model.n st.Table1_check.ratio)
    r.Table1_check.stages;
  if r.Table1_check.all_ok then pf "table1 cross-check ok\n"
  else begin
    pf "TABLE1 %s: measured group-exp counts drifted outside tolerance\n"
      (if !table1_gate then "GATE FAIL" else "WARNING");
    if !table1_gate then exit 1
  end

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

let header_table2 () =
  pf "%-8s %-9s | %10s %10s %10s %10s | %10s %10s %10s %10s | %12s\n" "d" "system" "commit(s)"
    "prfgen(s)" "prfver(s)" "cl-total" "prep(s)" "srv-ver(s)" "agg(s)" "srv-total" "comm/client(MB)"

let row_table2 ~d ~name ~commit ~gen ~ver ~prep ~sver ~agg ~comm_mb =
  pf "%-8d %-9s | %10.3f %10.3f %10.3f %10.3f | %10.3f %10.3f %10.3f %10.3f | %12.4f\n" d name commit
    gen ver (commit +. gen +. ver) prep sver agg (prep +. sver +. agg) comm_mb

let baseline_updates ~seed ~n ~d =
  let seed = ns_seed seed in
  let drbg = Prng.Drbg.create_string (seed ^ "/updates") in
  let updates = mk_updates drbg ~n ~d ~amp:40 in
  let bound = 1.25 *. max_norm updates in
  (updates, bound)

let run_baseline name run ~d =
  let (outcome : Baselines.Types.outcome), wall = Telemetry.Clock.time run in
  let t = outcome.Baselines.Types.timings in
  row_table2 ~d ~name ~commit:t.Baselines.Types.client_commit_s ~gen:t.Baselines.Types.client_proof_gen_s
    ~ver:t.Baselines.Types.client_proof_ver_s ~prep:t.Baselines.Types.server_prep_s
    ~sver:t.Baselines.Types.server_verify_s ~agg:t.Baselines.Types.server_agg_s
    ~comm_mb:(mb t.Baselines.Types.client_comm_bytes);
  ignore wall;
  if not (Array.for_all Fun.id outcome.Baselines.Types.accepted) then
    pf "  !! %s rejected an honest client\n" name

let run_table2 () =
  pf "================ Table 2: breakdown cost vs d (k=%d, n=%d, m=%d) ================\n" config.k
    config.n
    (max 1 (config.n / 4));
  pf "(paper: d in {1K,10K,100K,1M}, k=1000, n=100; here scaled for pure OCaml)\n";
  header_table2 ();
  let n = config.n in
  let m = max 1 (n / 4) in
  let ds = if config.full then config.ds @ [ 1024 ] else config.ds in
  List.iter
    (fun d ->
      (* EIFFeL *)
      let updates, bound = baseline_updates ~seed:(Printf.sprintf "t2-eiffel-%d" d) ~n ~d in
      let setup = Baselines.Eiffel.create_setup ~label:"bench" ~d ~bits:16 ~n ~m in
      run_baseline "EIFFeL" ~d
        (fun () ->
          Baselines.Eiffel.run setup ~updates ~bound_b:bound ~cheat:(Array.make n false)
            ~seed:(Printf.sprintf "t2-eiffel-%d" d));
      (* RoFL *)
      let updates, bound = baseline_updates ~seed:(Printf.sprintf "t2-rofl-%d" d) ~n ~d in
      let setup = Baselines.Rofl.create_setup ~label:"bench" ~d ~bits:16 in
      run_baseline "RoFL" ~d
        (fun () ->
          Baselines.Rofl.run setup ~updates ~bound_b:bound ~cheat:(Array.make n false)
            ~seed:(Printf.sprintf "t2-rofl-%d" d));
      (* ACORN *)
      let updates, bound = baseline_updates ~seed:(Printf.sprintf "t2-acorn-%d" d) ~n ~d in
      let setup = Baselines.Acorn.create_setup ~label:"bench" ~d ~bits:16 in
      run_baseline "ACORN" ~d
        (fun () ->
          Baselines.Acorn.run setup ~updates ~bound_b:bound ~cheat:(Array.make n false)
            ~seed:(Printf.sprintf "t2-acorn-%d" d));
      (* RiseFL *)
      let stats = risefl_point ~n ~m ~d ~k:config.k ~seed:(Printf.sprintf "t2-risefl-%d" d) in
      row_table2 ~d ~name:"RiseFL" ~commit:stats.Driver.client_commit_s
        ~gen:stats.Driver.client_proof_s ~ver:stats.Driver.client_share_verify_s
        ~prep:stats.Driver.server_prep_s ~sver:stats.Driver.server_verify_s
        ~agg:stats.Driver.server_agg_s
        ~comm_mb:(mb (stats.Driver.client_up_bytes + stats.Driver.client_down_bytes));
      print_newline ())
    ds;
  (* the paper's d=1M row: only RiseFL completes (others OOM); here the
     larger-d row is RiseFL-only for the same reason at our scale *)
  let d_big = if config.full then 4096 else 1024 in
  pf "(larger-d row, RiseFL only — baselines are impractical at this size, cf. the paper's OOM row)\n";
  let stats = risefl_point ~n ~m ~d:d_big ~k:config.k ~seed:(Printf.sprintf "t2-risefl-%d" d_big) in
  row_table2 ~d:d_big ~name:"RiseFL" ~commit:stats.Driver.client_commit_s
    ~gen:stats.Driver.client_proof_s ~ver:stats.Driver.client_share_verify_s
    ~prep:stats.Driver.server_prep_s ~sver:stats.Driver.server_verify_s ~agg:stats.Driver.server_agg_s
    ~comm_mb:(mb (stats.Driver.client_up_bytes + stats.Driver.client_down_bytes))

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)

let run_fig5 () =
  pf "================ Figure 5: probabilistic-check security (eps=2^-128, d=1e6, M=2^24) ================\n";
  let params k = { Stats.Passrate.k; eps = 2.0 ** -128.0; d = 1_000_000; m_factor = 2.0 ** 24.0 } in
  pf "(a) pass rate F_{k,eps,d,M}(c) of a malicious update with ||u|| = c.B:\n";
  pf "%-8s" "c";
  List.iter (fun k -> pf " %12s" (Printf.sprintf "k=%d" k)) [ 500; 1000; 3000; 9000 ];
  print_newline ();
  List.iter
    (fun c ->
      pf "%-8.2f" c;
      List.iter (fun k -> pf " %12.4g" (Stats.Passrate.f (params k) c)) [ 500; 1000; 3000; 9000 ];
      print_newline ())
    [ 1.01; 1.05; 1.1; 1.15; 1.2; 1.25; 1.3; 1.4; 1.5; 1.75; 2.0 ];
  pf "(b) maximum expected damage (units of B) vs k   [paper: 1.24 / 1.13 / 1.08 at k=1K/3K/9K]:\n";
  List.iter
    (fun k ->
      let c, dmg = Stats.Passrate.max_damage (params k) in
      pf "  k=%-6d gamma/k=%.4f   c*=%.4f   max damage=%.4f\n" k
        (Stats.Passrate.gamma (params k) /. float_of_int k)
        c dmg)
    [ 250; 500; 1000; 3000; 9000 ]

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)

let run_fig6 () =
  let d = if config.full then 256 else 128 in
  pf "================ Figure 6: cost vs number of clients (d=%d, k=%d, m=0.25n) ================\n" d
    config.k;
  pf "(paper: n in {50..250}, d=100K; here scaled)\n";
  pf "%-6s %-9s | %12s %12s %12s | %14s\n" "n" "system" "client(s)" "server(s)" "agg(s)"
    "comm/client(MB)";
  List.iter
    (fun n ->
      let m = max 1 (n / 4) in
      (* EIFFeL *)
      let updates, bound = baseline_updates ~seed:(Printf.sprintf "f6-eiffel-%d" n) ~n ~d in
      let setup = Baselines.Eiffel.create_setup ~label:"bench" ~d ~bits:16 ~n ~m in
      let o =
        Baselines.Eiffel.run setup ~updates ~bound_b:bound ~cheat:(Array.make n false)
          ~seed:(Printf.sprintf "f6-eiffel-%d" n)
      in
      let t = o.Baselines.Types.timings in
      pf "%-6d %-9s | %12.3f %12.3f %12.3f | %14.4f\n" n "EIFFeL"
        (t.Baselines.Types.client_commit_s +. t.Baselines.Types.client_proof_gen_s
        +. t.Baselines.Types.client_proof_ver_s)
        t.Baselines.Types.server_verify_s t.Baselines.Types.server_agg_s
        (mb t.Baselines.Types.client_comm_bytes);
      (* ACORN (representative non-robust baseline; RoFL scales the same way) *)
      let updates, bound = baseline_updates ~seed:(Printf.sprintf "f6-acorn-%d" n) ~n ~d in
      let setup = Baselines.Acorn.create_setup ~label:"bench" ~d ~bits:16 in
      let o =
        Baselines.Acorn.run setup ~updates ~bound_b:bound ~cheat:(Array.make n false)
          ~seed:(Printf.sprintf "f6-acorn-%d" n)
      in
      let t = o.Baselines.Types.timings in
      pf "%-6d %-9s | %12.3f %12.3f %12.3f | %14.4f\n" n "ACORN"
        (t.Baselines.Types.client_commit_s +. t.Baselines.Types.client_proof_gen_s)
        t.Baselines.Types.server_verify_s t.Baselines.Types.server_agg_s
        (mb t.Baselines.Types.client_comm_bytes);
      (* RiseFL *)
      let stats = risefl_point ~n ~m ~d ~k:config.k ~seed:(Printf.sprintf "f6-risefl-%d" n) in
      pf "%-6d %-9s | %12.3f %12.3f %12.3f | %14.4f\n" n "RiseFL"
        (stats.Driver.client_commit_s +. stats.Driver.client_proof_s
        +. stats.Driver.client_share_verify_s)
        (stats.Driver.server_prep_s +. stats.Driver.server_verify_s)
        stats.Driver.server_agg_s
        (mb (stats.Driver.client_up_bytes + stats.Driver.client_down_bytes));
      print_newline ())
    (if config.full then [ 4; 6; 8; 10 ] else [ 4; 6; 8 ])

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)

let run_fig7 () =
  let d = if config.full then 2048 else 512 in
  pf "================ Figure 7: RiseFL breakdown vs k (d=%d) ================\n" d;
  pf "(paper: k in {1K,3K,9K}, d=1M; the 1:3:9 ladder is preserved)\n";
  pf "%-6s | %10s %10s %10s | %10s %10s %10s\n" "k" "commit(s)" "prfgen(s)" "prfver(s)" "prep(s)"
    "srv-ver(s)" "agg(s)";
  List.iter
    (fun k ->
      let stats = risefl_point ~n:config.n ~m:1 ~d ~k ~seed:(Printf.sprintf "f7-%d" k) in
      pf "%-6d | %10.3f %10.3f %10.3f | %10.3f %10.3f %10.3f\n" k stats.Driver.client_commit_s
        stats.Driver.client_proof_s stats.Driver.client_share_verify_s stats.Driver.server_prep_s
        stats.Driver.server_verify_s stats.Driver.server_agg_s)
    [ 16; 48; 144 ]

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)

let run_fig8 () =
  pf "================ Figure 8: FL accuracy under attack (n=10 clients, 3 malicious) ================\n";
  pf "(paper: 100 clients/10 malicious, CNN/ResNet/TabNet on OrganA/SMNIST+Covtype;\n";
  pf " here: softmax on synthetic stand-ins — see DESIGN.md substitutions)\n";
  let drbg = Prng.Drbg.create_string "fig8-data" in
  let datasets =
    [
      ("organ_like", Flsim.Dataset.organ_like (Prng.Drbg.fork drbg "o") ~n:600);
      ("covtype_like", Flsim.Dataset.covtype_like (Prng.Drbg.fork drbg "c") ~n:800);
      ("blobs", Flsim.Dataset.gaussian_blobs (Prng.Drbg.fork drbg "b") ~n:600 ~features:32 ~classes:4 ~spread:0.8);
    ]
  in
  let attacks =
    [
      Flsim.Attack.Sign_flip 5.0;
      Flsim.Attack.Scaling 10.0;
      Flsim.Attack.Label_flip (0, 1);
      Flsim.Attack.Additive_noise 0.5;
    ]
  in
  let defenses = [ ("L2", Flsim.Federated.D_l2); ("sphere", Flsim.Federated.D_sphere); ("cosine", Flsim.Federated.D_cosine 0.0) ] in
  let run_one data attack checker =
    let cfg =
      {
        Flsim.Federated.n_clients = 10;
        n_malicious = 3;
        attack;
        checker;
        rounds = config.rounds;
        lr = 0.5;
        batch = None;
        arch = Flsim.Model.Softmax;
        bound_factor = 1.5;
        non_iid_alpha = None;
        seed = "fig8";
      }
    in
    Flsim.Federated.train cfg ~data
  in
  List.iter
    (fun (dname, data) ->
      List.iter
        (fun attack ->
          List.iter
            (fun (defname, defense) ->
              let r_nc = run_one data attack Flsim.Federated.Np_nc in
              let r_sc = run_one data attack (Flsim.Federated.Np_sc defense) in
              let r_rf = run_one data attack (Flsim.Federated.Risefl (defense, 1000)) in
              pf "%-13s %-22s %-7s | NP-NC %.3f  NP-SC %.3f  RiseFL %.3f\n" dname
                (Flsim.Attack.name attack) defname r_nc.Flsim.Federated.final_accuracy
                r_sc.Flsim.Federated.final_accuracy r_rf.Flsim.Federated.final_accuracy;
              (* per-round curves for the L2 defense (the paper's main panel) *)
              if defname = "L2" then begin
                let curve r =
                  String.concat " "
                    (Array.to_list
                       (Array.map (fun (l : Flsim.Federated.round_log) -> Printf.sprintf "%.2f" l.Flsim.Federated.accuracy) r.Flsim.Federated.logs))
                in
                pf "    NP-NC : %s\n    NP-SC : %s\n    RiseFL: %s\n" (curve r_nc) (curve r_sc) (curve r_rf)
              end)
            defenses)
        attacks;
      print_newline ())
    datasets

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)

let rec run_micro () =
  pf "================ Micro-benchmarks (Bechamel, §6.2 support) ================\n";
  let open Bechamel in
  let drbg = Prng.Drbg.create_string "micro" in
  let s1 = Scalar.random drbg and s2 = Scalar.random drbg in
  let p1 = Point.mul_base (Scalar.random drbg) in
  let p2 = Point.mul_base (Scalar.random drbg) in
  let f1 = Curve25519.Fe.of_bigint (Bigint.random ~bits:255 (Prng.Drbg.rand26 drbg)) in
  let f2 = Curve25519.Fe.of_bigint (Bigint.random ~bits:255 (Prng.Drbg.rand26 drbg)) in
  let tbl = Point.Table.make p1 in
  let msm_pairs n = Array.init n (fun i -> (Scalar.random drbg, Point.mul_base (Scalar.of_int (i + 1)))) in
  let pairs64 = msm_pairs 64 in
  let small64 = Array.map (fun (_, p) -> (Prng.Drbg.bits drbg 20 - (1 lsl 19), p)) pairs64 in
  let block = Bytes.make 64 'x' in
  let tests =
    Test.make_grouped ~name:"primitives"
      [
        Test.make ~name:"fe-mul (field arithmetic)" (Staged.stage (fun () -> Curve25519.Fe.mul f1 f2));
        Test.make ~name:"scalar-mul (Z_l)" (Staged.stage (fun () -> Scalar.mul s1 s2));
        Test.make ~name:"point-add" (Staged.stage (fun () -> Point.add p1 p2));
        Test.make ~name:"group-exp (variable base)" (Staged.stage (fun () -> Point.mul s1 p1));
        Test.make ~name:"group-exp (fixed base table)" (Staged.stage (fun () -> Point.Table.mul tbl s1));
        Test.make ~name:"msm-64 (full scalars)" (Staged.stage (fun () -> Msm.msm pairs64));
        Test.make ~name:"msm-64 (small exps)" (Staged.stage (fun () -> Msm.msm_small small64));
        Test.make ~name:"sha256-block" (Staged.stage (fun () -> Hashfn.Sha256.digest block));
        Test.make ~name:"chacha20-block"
          (Staged.stage (fun () ->
               Prng.Chacha20.block ~key:(Bytes.make 32 'k') ~counter:1 ~nonce:(Bytes.make 12 'n')));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> pf "%-44s %14.1f ns/op\n" name est
      | _ -> pf "%-44s %14s\n" name "n/a")
    (List.sort compare rows);
  pf "\n(the group-exp / field-arithmetic gap above is the paper's core premise:\n";
  pf " reducing group exponentiations from O(d) to O(d/log d) at the price of\n";
  pf " O(kd) extra field ops is a large net win)\n";
  run_parallel_scaling ()

(* ------------------------------------------------------------------ *)
(* Domain-scaling micro-benchmarks: 1/2/4/8 domains over the three hot
   paths the multicore layer threads through (MSM, server verification,
   client commitment generation). Results are checked identical across
   job counts — the parallel paths must be drop-in. *)

and run_parallel_scaling () =
  pf "---- domain scaling (worker pool; recommended_domain_count=%d) ----\n"
    (Domain.recommended_domain_count ());
  let saved_jobs = Parallel.default_jobs () in
  let ladder = if config.smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let time_min f =
    (* min of 2 runs: the first run also warms the pool's domains *)
    let r, s1 = Telemetry.Clock.time f in
    let _, s2 = Telemetry.Clock.time f in
    (r, Float.min s1 s2)
  in
  let speedup base s = if s > 0.0 then base /. s else 0.0 in
  (* (1) Pippenger MSM, full-width scalars *)
  let npts = if config.smoke then 256 else 1024 in
  let drbg = Prng.Drbg.create_string "parmicro" in
  let pairs =
    Array.init npts (fun i -> (Scalar.random drbg, Point.mul_base (Scalar.of_int (i + 1))))
  in
  pf "%-26s %6s %12s %9s\n" "kernel" "jobs" "wall(s)" "speedup";
  let base_msm = ref 0.0 in
  let ref_msm = ref None in
  List.iter
    (fun jobs ->
      Parallel.set_default_jobs jobs;
      let r, s = time_min (fun () -> Msm.msm pairs) in
      (match !ref_msm with
      | None ->
          ref_msm := Some r;
          base_msm := s
      | Some r0 -> if not (Point.equal r r0) then failwith "parallel MSM result mismatch");
      record ~target:"micro" ~name:"msm-full" ~jobs ~n:npts s;
      pf "%-26s %6d %12.4f %8.2fx\n" (Printf.sprintf "msm-%d (full scalars)" npts) jobs s
        (speedup !base_msm s))
    ladder;
  (* (2) one full RiseFL iteration per job count: the driver's stage
     timers expose server verify / client commit under the pool, and the
     aggregate must be bit-identical whatever the job count *)
  let n = if config.smoke then 4 else 8 in
  let d = if config.smoke then 32 else 128 in
  let k = if config.smoke then 4 else 16 in
  let ref_agg = ref None in
  List.iter
    (fun jobs ->
      Parallel.set_default_jobs jobs;
      let stats = risefl_point ~n ~m:1 ~d ~k ~seed:"parmicro-iter" in
      (match (!ref_agg, stats.Driver.aggregate) with
      | None, agg -> ref_agg := Some agg
      | Some a0, agg -> if a0 <> agg then failwith "parallel iteration aggregate mismatch");
      record ~target:"micro" ~name:"server-verify" ~jobs ~d ~k ~n stats.Driver.server_verify_s;
      record ~target:"micro" ~name:"client-commit" ~jobs ~d ~k ~n stats.Driver.client_commit_s;
      record ~target:"micro" ~name:"server-agg" ~jobs ~d ~k ~n stats.Driver.server_agg_s;
      pf "%-26s %6d %12.4f\n"
        (Printf.sprintf "verify-proofs (n=%d)" n)
        jobs stats.Driver.server_verify_s;
      pf "%-26s %6d %12.4f\n" (Printf.sprintf "client-commit (d=%d)" d) jobs
        stats.Driver.client_commit_s)
    ladder;
  (* (3) commitment vector generation in isolation *)
  let dc = if config.smoke then 128 else 1024 in
  let params = risefl_params ~n:4 ~m:1 ~d:dc ~k:4 ~bound:4000.0 in
  let setup = Setup.create ~label:"parmicro/commit" params in
  let u = Array.init dc (fun i -> (i mod 80) - 40) in
  let blind = Scalar.random drbg in
  let base_cv = ref 0.0 in
  let ref_cv = ref None in
  List.iter
    (fun jobs ->
      Parallel.set_default_jobs jobs;
      let r, s =
        time_min (fun () ->
            Commitments.Pedersen.commit_vec ~g_table:setup.Setup.g_table ~bases:setup.Setup.w
              ~values:u ~blind)
      in
      (match !ref_cv with
      | None ->
          ref_cv := Some r;
          base_cv := s
      | Some r0 ->
          if not (Array.for_all2 Point.equal r r0) then failwith "parallel commit_vec mismatch");
      record ~target:"micro" ~name:"commit-vec" ~jobs ~d:dc s;
      pf "%-26s %6d %12.4f %8.2fx\n" (Printf.sprintf "commit-vec (d=%d)" dc) jobs s
        (speedup !base_cv s))
    ladder;
  Parallel.set_default_jobs saved_jobs

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let run_ablate () =
  pf "================ Ablations (DESIGN.md) ================\n";
  let d = 512 in
  let drbg = Prng.Drbg.create_string "ablate" in
  let time f = snd (Telemetry.Clock.time f) in
  (* (1) projection-consistency check: naive per-row MSMs vs the VerCrt
     batch (Algorithm 3).  The batch trades O(kd) group work for one
     full-scalar MSM plus O(kd) field ops, so it wins once k passes the
     per-element cost ratio of full- vs small-exponent MSMs — exactly the
     regime the paper runs in (k in the thousands). *)
  pf "projection-consistency check at d=%d (server side, per client):\n" d;
  pf "%-8s %14s %14s %10s\n" "k" "naive(s)" "VerCrt(s)" "speedup";
  List.iter
    (fun k ->
      let params = risefl_params ~n:4 ~m:1 ~d ~k ~bound:2000.0 in
      let setup = Setup.create ~label:(Printf.sprintf "ablate%d" k) params in
      let seed = Sampling.seed ~s:(Bytes.make 32 's') ~pks:[| Point.base |] in
      let matrix = Sampling.sample_matrix ~seed ~d ~k ~m_factor:1024.0 in
      let u = Array.init d (fun i -> (i mod 80) - 40) in
      let y =
        Commitments.Pedersen.commit_vec ~g_table:setup.Setup.g_table ~bases:setup.Setup.w ~values:u
          ~blind:(Scalar.random drbg)
      in
      let naive_s =
        time (fun () ->
            Array.iter
              (fun row -> ignore (Msm.msm_small (Array.mapi (fun l a -> (a, y.(l))) row)))
              matrix.Sampling.rows)
      in
      let hs = Sampling.compute_h setup matrix in
      let vercrt_s =
        time (fun () -> ignore (Sampling.ver_crt drbg ~bases:setup.Setup.w ~targets:hs ~matrix))
      in
      pf "%-8d %14.3f %14.3f %9.1fx\n" k naive_s vercrt_s (naive_s /. vercrt_s))
    [ 8; 32; 128 ];
  (* (2) probabilistic vs strict proof surface *)
  let params = risefl_params ~n:4 ~m:1 ~d ~k:32 ~bound:2000.0 in
  pf "\nproof surface (values under range proofs), d=%d k=32:\n" d;
  pf "  strict per-coordinate check : %d values x %d bits\n" d 16;
  pf "  probabilistic check         : %d values x %d bits + 1 x %d bits\n" 32
    params.Params.b_ip_bits params.Params.b_max_bits;
  pf "  reduction                   : %.1fx fewer committed bits\n"
    (float_of_int (d * 16)
    /. float_of_int ((32 * params.Params.b_ip_bits) + params.Params.b_max_bits))

(* ------------------------------------------------------------------ *)
(* Per-phase breakdown: one traced honest round; span durations and the
   full counter snapshot land in BENCH_RISEFL.json under "telemetry".    *)

let run_phases () =
  pf "================ Per-phase breakdown (telemetry spans) ================\n";
  let d = if config.smoke then 32 else 128 in
  let k = if config.smoke then 4 else 16 in
  let n = config.n in
  let m = max 1 (n / 4) in
  Telemetry.reset ();
  Telemetry.enable ();
  let stats =
    Fun.protect ~finally:Telemetry.disable (fun () ->
        risefl_point ~n ~m ~d ~k ~seed:"bench-phases")
  in
  let snap = Telemetry.snapshot () in
  telemetry_snapshot := Some snap;
  print_string (Telemetry.to_table snap);
  (* depth-2 spans are the round stages: round/<stage>.<role> *)
  List.iter
    (fun sp ->
      match sp.Telemetry.path with
      | [ _; stage ] -> record ~target:"phases" ~name:("span:" ^ stage) ~d ~k ~n sp.Telemetry.dur_s
      | _ -> ())
    snap.Telemetry.spans;
  match stats.Driver.aggregate with
  | Some _ -> ()
  | None -> failwith "phases: round did not complete"

(* ------------------------------------------------------------------ *)
(* Naive vs batched server verification (DESIGN.md "Batch
   verification").  One committed round is built per ladder point; each
   timing re-enters at begin_round so both paths verify the identical
   proof set, and their verdicts are cross-checked every run.           *)

let verify_gate = ref None (* --gate-verify threshold on jobs=1 speedup *)

let verify_round ~n ~m ~d ~k ~seed =
  let drbg = Prng.Drbg.create_string (seed ^ "/updates") in
  let updates = mk_updates drbg ~n ~d ~amp:40 in
  let bound = 1.25 *. max_norm updates in
  let params = risefl_params ~n ~m ~d ~k ~bound in
  let setup = Setup.create ~label:(Printf.sprintf "bench/verify/%d/%d/%d" d k n) params in
  let root = Prng.Drbg.create_string seed in
  let clients =
    Array.init n (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (string_of_int i)))
  in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  let commits =
    Array.map Option.some
      (Array.mapi (fun i c -> Client.commit_round c ~round:1 ~update:updates.(i)) clients)
  in
  Server.begin_round server ~round:1 ~commits;
  Array.iter
    (fun c -> ignore (Client.receive_shares c ~round:1 ~msgs:(Array.map Option.get commits)))
    clients;
  let s, hs = Server.prepare_check server in
  let hs_tables = Parallel.parallel_map Point.Table.make hs in
  let proofs = Array.map (fun c -> Some (Client.proof_round ~hs_tables c ~round:1 ~s ~hs)) clients in
  (server, commits, proofs)

let run_verify () =
  pf "================ verify: naive vs batched server verification ================\n";
  let ladder =
    if config.smoke then [ (32, 4, 4) ]
    else if config.full then [ (32, 4, 4); (128, 8, 4); (128, 8, 8); (256, 16, 8) ]
    else [ (32, 4, 4); (128, 8, 4); (128, 8, 8) ]
  in
  let jobs_ladder = if config.smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  pf "%-20s %6s | %12s %12s %9s\n" "(d,k,n)" "jobs" "naive(s)" "batched(s)" "speedup";
  let worst_j1 = ref infinity in
  List.iter
    (fun (d, k, n) ->
      let server, commits, proofs =
        verify_round ~n ~m:(max 1 (n / 4)) ~d ~k ~seed:(Printf.sprintf "bench-verify-%d-%d-%d" d k n)
      in
      List.iter
        (fun jobs ->
          let time_verify ~batched =
            Server.begin_round server ~round:1 ~commits;
            let (), s =
              Telemetry.Clock.time (fun () ->
                  Server.verify_proofs ~jobs ~batched server ~round:1 ~proofs)
            in
            (Server.malicious server, s)
          in
          let bad_n, naive_s = time_verify ~batched:false in
          let bad_b, batched_s = time_verify ~batched:true in
          if bad_n <> bad_b then failwith "verify bench: naive/batched verdict mismatch";
          if bad_b <> [] then failwith "verify bench: honest round rejected";
          record ~target:"verify" ~name:"verify-naive" ~jobs ~d ~k ~n naive_s;
          record ~target:"verify" ~name:"verify-batched" ~jobs ~d ~k ~n batched_s;
          let sp = if batched_s > 0.0 then naive_s /. batched_s else 0.0 in
          if jobs = 1 && sp < !worst_j1 then worst_j1 := sp;
          pf "%-20s %6d | %12.4f %12.4f %8.2fx\n"
            (Printf.sprintf "d=%d k=%d n=%d" d k n)
            jobs naive_s batched_s sp)
        jobs_ladder)
    ladder;
  match !verify_gate with
  | Some thr when !worst_j1 < thr ->
      pf "GATE FAIL: batched speedup %.2fx (jobs=1) below threshold %.2fx\n" !worst_j1 thr;
      exit 1
  | Some thr -> pf "gate ok: min jobs=1 speedup %.2fx >= %.2fx\n" !worst_j1 thr
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Group-layer fast paths: persistent table cache (cold build vs warm
   load), the --dlog-mem time/memory knob, and cached-vs-rebuilt
   bit-identity.  The gate covers the precompute phase — the part the
   cache eliminates — and the end-to-end cold/warm rounds cross-check
   that caching never changes the aggregate. *)

let group_gate = ref None (* --gate-group threshold on precompute speedup *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let run_group () =
  pf "================ group: persistent table cache + dlog knobs ================\n";
  let n = if config.smoke then 4 else 6 in
  let m = max 1 (n / 4) in
  let d = if config.smoke then 32 else 128 in
  let k = if config.smoke then 4 else 8 in
  let m_scale = 4.0 in
  let seed = ns_seed "bench-group" in
  let drbg = Prng.Drbg.create_string (seed ^ "/updates") in
  let updates = mk_updates drbg ~n ~d ~amp:40 in
  let bound = 1.25 *. max_norm updates in
  let params = risefl_params ~n ~m ~d ~k ~bound in
  let max_abs = Params.agg_max_abs params in
  let g = Curve25519.Gens.derive "bench/group/g" in
  let q = Curve25519.Gens.derive "bench/group/q" in
  let dir = Filename.temp_file "risefl-groupcache" "" in
  Sys.remove dir;
  let cache = Store.Cache.open_ ~dir in
  Fun.protect ~finally:(fun () -> Risefl_core.Group_cache.reset (); rm_rf dir)
  @@ fun () ->
  (* --- precompute: cold build vs warm cache load, same artifacts --- *)
  let time_min f =
    let s1 = snd (Telemetry.Clock.time f) in
    let s2 = snd (Telemetry.Clock.time f) in
    Float.min s1 s2
  in
  let cold_s =
    time_min (fun () ->
        ignore (Point.Table.make g);
        ignore (Point.Table.make q);
        ignore (Curve25519.Dlog.create ~m_scale ~base:g ~max_abs ()))
  in
  (* populate, then load twice (the timed path is pure cache hits) *)
  let built_g = Risefl_core.Group_cache.table ~cache ~label:"bench/g" ~base:g () in
  let built_q = Risefl_core.Group_cache.table ~cache ~label:"bench/q" ~base:q () in
  let built_dlog = Risefl_core.Group_cache.dlog ~cache ~m_scale ~base:g ~max_abs () in
  let warm_s =
    time_min (fun () ->
        ignore (Risefl_core.Group_cache.table ~cache ~label:"bench/g" ~base:g ());
        ignore (Risefl_core.Group_cache.table ~cache ~label:"bench/q" ~base:q ());
        ignore (Risefl_core.Group_cache.dlog ~cache ~m_scale ~base:g ~max_abs ()))
  in
  (* cached artifacts must be bit-identical to rebuilt ones *)
  let loaded_g = Risefl_core.Group_cache.table ~cache ~label:"bench/g" ~base:g () in
  let loaded_dlog = Risefl_core.Group_cache.dlog ~cache ~m_scale ~base:g ~max_abs () in
  if Point.Table.to_bytes loaded_g <> Point.Table.to_bytes built_g then
    failwith "group bench: cached table differs from built table";
  if Curve25519.Dlog.to_bytes loaded_dlog <> Curve25519.Dlog.to_bytes built_dlog then
    failwith "group bench: cached dlog table differs from built table";
  ignore built_q;
  let speedup = if warm_s > 0.0 then cold_s /. warm_s else 0.0 in
  pf "precompute (2 fixed-base tables + BSGS m=%d): cold %.4fs, warm %.4fs, %.1fx\n"
    (Curve25519.Dlog.table_size built_dlog) cold_s warm_s speedup;
  record ~target:"group" ~name:"precompute-cold" ~d ~k ~n cold_s;
  record ~target:"group" ~name:"precompute-warm" ~d ~k ~n warm_s;
  record ~target:"group" ~name:"precompute-speedup" ~d ~k ~n speedup;
  (* --- end-to-end rounds: cold vs warm must agree bit-for-bit --- *)
  let iterate label =
    let setup, setup_s = Telemetry.Clock.time (fun () -> Setup.create ~label params) in
    let stats =
      Driver.run_iteration setup ~updates ~behaviours:(Driver.honest_all n) ~seed ~round:1
    in
    (setup_s, stats)
  in
  Risefl_core.Group_cache.reset ();
  let cold_setup_s, cold = iterate "bench/group" in
  Risefl_core.Group_cache.configure ~cache_dir:dir ();
  ignore (iterate "bench/group") (* populate the cache *);
  let warm_setup_s, warm = iterate "bench/group" in
  Risefl_core.Group_cache.reset ();
  if cold.Driver.aggregate <> warm.Driver.aggregate then
    failwith "group bench: cached round aggregate differs from uncached";
  if cold.Driver.flagged <> warm.Driver.flagged then
    failwith "group bench: cached round verdicts differ from uncached";
  pf "round (n=%d d=%d k=%d): setup cold %.4fs warm %.4fs | agg cold %.4fs warm %.4fs | proofgen %.4fs\n"
    n d k cold_setup_s warm_setup_s cold.Driver.server_agg_s warm.Driver.server_agg_s
    warm.Driver.client_proof_s;
  record ~target:"group" ~name:"setup-cold" ~d ~k ~n cold_setup_s;
  record ~target:"group" ~name:"setup-warm" ~d ~k ~n warm_setup_s;
  record ~target:"group" ~name:"server-agg-cold" ~d ~k ~n cold.Driver.server_agg_s;
  record ~target:"group" ~name:"server-agg-warm" ~d ~k ~n warm.Driver.server_agg_s;
  record ~target:"group" ~name:"client-proofgen" ~d ~k ~n warm.Driver.client_proof_s;
  (* --- the --dlog-mem knob: solve wall vs table size (all warm) --- *)
  pf "--dlog-mem ladder (BSGS solve of %d aggregation targets, max_abs=%d):\n" d max_abs;
  let targets =
    (* realistic decode workload: the cold round's actual aggregate exponents *)
    match cold.Driver.aggregate with
    | Some agg -> Array.map (fun x -> Point.mul_small x g) (Array.sub agg 0 (min d (Array.length agg)))
    | None -> failwith "group bench: round did not complete"
  in
  List.iter
    (fun ms ->
      let solver = Risefl_core.Group_cache.dlog ~cache ~m_scale:ms ~base:g ~max_abs () in
      let solved, solve_s =
        Telemetry.Clock.time (fun () -> Curve25519.Dlog.solve_many solver targets)
      in
      if Array.exists Option.is_none solved then failwith "group bench: dlog failed to solve";
      pf "  m_scale %4.1f  table %7d entries  solve %.4fs\n" ms
        (Curve25519.Dlog.table_size solver) solve_s;
      record ~target:"group" ~name:(Printf.sprintf "dlog-solve@m=%g" ms) ~d ~k ~n solve_s)
    [ 1.0; 4.0 ];
  match !group_gate with
  | Some thr when speedup < thr ->
      pf "GATE FAIL: warm-cache precompute speedup %.2fx below threshold %.2fx\n" speedup thr;
      exit 1
  | Some thr -> pf "gate ok: precompute speedup %.2fx >= %.2fx\n" speedup thr
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Fault-injection degradation ladder (EXPERIMENTS.md)                 *)

let run_faults () =
  pf "================ Fault degradation ladder ================\n";
  let n = 6 and m = 2 in
  let d = if config.smoke then 16 else 32 and k = if config.smoke then 4 else 8 in
  let rounds_per_level = if config.smoke then 3 else 8 in
  let drbg = Prng.Drbg.create_string "bench-faults/updates" in
  let updates = mk_updates drbg ~n ~d ~amp:40 in
  let bound = 1.25 *. max_norm updates in
  let params = risefl_params ~n ~m ~d ~k ~bound in
  let setup = Setup.create ~label:"bench/faults" params in
  let session = Driver.create_session setup ~seed:"bench-faults" in
  pf "n=%d m=%d d=%d k=%d, %d rounds per fault level, deadline 4 ticks\n\n" n m d k
    rounds_per_level;
  pf "%-10s %10s %10s %10s %10s %12s\n" "p(fault)" "completed" "aborted" "flagged" "dropped"
    "mean s/round";
  let round_counter = ref 0 in
  List.iter
    (fun p ->
      let net =
        Netsim.create ~plan:(Netsim.uniform ~max_delay:6 p)
          ~seed:(Printf.sprintf "bench-faults/%g" p)
          ()
      in
      let completed = ref 0 and aborted = ref 0 and flagged = ref 0 in
      let elapsed = ref 0.0 in
      for _ = 1 to rounds_per_level do
        incr round_counter;
        let (), dt =
          Telemetry.Clock.time (fun () ->
              match
                Driver.run_round_outcome session ~transport:net ~updates
                  ~behaviours:(Driver.honest_all n) ~round:!round_counter
              with
              | Driver.Completed stats ->
                  incr completed;
                  flagged := !flagged + List.length stats.Driver.flagged
              | Driver.Aborted_insufficient_quorum _ | Driver.Aborted_decode _ -> incr aborted)
        in
        elapsed := !elapsed +. dt
      done;
      let c = Netsim.counters net in
      let mean_s = !elapsed /. float_of_int rounds_per_level in
      pf "%-10g %10d %10d %10d %10d %12.3f\n" p !completed !aborted !flagged
        (c.Netsim.dropped + c.Netsim.late) mean_s;
      record ~target:"faults" ~name:(Printf.sprintf "complete-rate@p=%g" p) ~d ~k ~n
        (float_of_int !completed /. float_of_int rounds_per_level);
      record ~target:"faults" ~name:(Printf.sprintf "mean-round-s@p=%g" p) ~d ~k ~n mean_s)
    (if config.smoke then [ 0.0; 0.1; 0.3 ] else [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.35 ])

(* ------------------------------------------------------------------ *)
(* Durability: WAL overhead and crash-recovery time (EXPERIMENTS.md)   *)

let run_recovery () =
  pf "================ recovery: WAL overhead + crash recovery ================\n";
  let n = 5 and m = 2 in
  let d = if config.smoke then 16 else 32 and k = if config.smoke then 4 else 8 in
  let rounds = if config.smoke then 2 else 4 in
  let drbg = Prng.Drbg.create_string "bench-recovery/updates" in
  let updates = mk_updates drbg ~n ~d ~amp:40 in
  let bound = 1.25 *. max_norm updates in
  let params = risefl_params ~n ~m ~d ~k ~bound in
  let setup = Setup.create ~label:"bench/recovery" params in
  let behaviours = Driver.honest_all n in
  let updates_for _ = updates in
  let seed = ns_seed "bench-recovery" in
  (* baseline: the same serialized rounds with no log *)
  let baseline = Driver.create_session setup ~seed in
  let (), base_s =
    Telemetry.Clock.time (fun () ->
        ignore (Driver.run_session baseline ~serialize:true ~updates_for ~behaviours ~rounds))
  in
  (* durable: identical rounds under a write-ahead log, one fsync per append *)
  let wal_path = Filename.temp_file "risefl-bench" ".wal" in
  Sys.remove wal_path;
  let durable = Driver.create_session setup ~seed in
  let wal = Round_log.create wal_path in
  let (), wal_s =
    Telemetry.Clock.time (fun () ->
        ignore (Driver.run_session durable ~wal ~updates_for ~behaviours ~rounds))
  in
  Round_log.close wal;
  let wal_bytes = (Unix.stat wal_path).Unix.st_size in
  let records, _ = Round_log.replay wal_path in
  let fsyncs = List.length records (* one fsync per append *) in
  let overhead_pct = if base_s > 0.0 then (wal_s -. base_s) /. base_s *. 100.0 else 0.0 in
  (* recovery time: crash the next round at proof intake, then replay + finish *)
  Sys.remove wal_path;
  let crashed = Driver.create_session setup ~seed in
  let wal = Round_log.create wal_path in
  (try
     ignore
       (Driver.run_round_outcome ~wal ~crash:(Netsim.Proof, Driver.Stage_start) crashed ~updates
          ~behaviours ~round:1)
   with Driver.Server_crashed _ -> ());
  let (), recover_s =
    Telemetry.Clock.time (fun () ->
        let records, _ = Round_log.replay wal_path in
        match Driver.recover_round ~wal crashed ~records ~updates ~behaviours ~round:1 with
        | Driver.Completed _ -> ()
        | o -> failwith ("recovery bench: recovered round aborted: " ^ Driver.outcome_to_string o))
  in
  Round_log.close wal;
  Sys.remove wal_path;
  pf "n=%d m=%d d=%d k=%d, %d rounds, fsync on every append\n\n" n m d k rounds;
  pf "  plain round        %10.3f s/round\n" (base_s /. float_of_int rounds);
  pf "  durable round      %10.3f s/round  (%+.1f%% wall-clock)\n"
    (wal_s /. float_of_int rounds)
    overhead_pct;
  pf "  WAL volume         %10d bytes/round (%d fsyncs/round)\n"
    (wal_bytes / rounds) (fsyncs / rounds);
  pf "  crash at proof:start -> replay + finish: %.3f s\n" recover_s;
  record ~target:"recovery" ~name:"plain-round-s" ~d ~k ~n (base_s /. float_of_int rounds);
  record ~target:"recovery" ~name:"durable-round-s" ~d ~k ~n (wal_s /. float_of_int rounds);
  record ~target:"recovery" ~name:"wal-overhead-pct" ~d ~k ~n overhead_pct;
  record ~target:"recovery" ~name:"wal-bytes-per-round" ~d ~k ~n
    (float_of_int (wal_bytes / rounds));
  record ~target:"recovery" ~name:"wal-fsyncs-per-round" ~d ~k ~n
    (float_of_int (fsyncs / rounds));
  record ~target:"recovery" ~name:"recovery-time-s" ~d ~k ~n recover_s

(* ------------------------------------------------------------------ *)
(* Deployment transport: socket-loopback round latency + counters.
   Identical rounds over the plain Netsim endpoint and over the Loopback
   backend (every frame through a real kernel socketpair, chunked writes,
   capped reassembly); the delta is the cost of the socket leg. Outcomes
   are cross-checked for bit-identity every run.                         *)

let run_serve () =
  pf "================ serve: socket-loopback round latency ================\n";
  let n = config.n in
  let m = max 1 (n / 4) in
  let d = if config.smoke then 16 else 64 in
  let k = if config.smoke then 4 else 16 in
  let rounds = if config.smoke then 2 else 5 in
  let drbg = Prng.Drbg.create_string (ns_seed "bench-serve" ^ "/updates") in
  let updates = mk_updates drbg ~n ~d ~amp:40 in
  let bound = 1.25 *. max_norm updates in
  let params = risefl_params ~n ~m ~d ~k ~bound in
  let setup = Setup.create ~label:"bench/serve" params in
  let behaviours = Driver.honest_all n in
  let seed = ns_seed "bench-serve" in
  let run_backend (module B : Netsim.Transport_intf.S) =
    let session = Driver.create_session setup ~seed in
    List.init rounds (fun i ->
        let round = i + 1 in
        let net = B.create ~seed:(Printf.sprintf "%s/net/%d" seed round) () in
        Driver.run_round_outcome session ~endpoint:(B.endpoint net) ~updates ~behaviours ~round)
  in
  let base, base_s = Telemetry.Clock.time (fun () -> run_backend (module Netsim)) in
  Telemetry.reset ();
  Telemetry.enable ();
  let sock, sock_s =
    Fun.protect ~finally:Telemetry.disable (fun () ->
        Telemetry.Clock.time (fun () -> run_backend (module Loopback)))
  in
  let snap = Telemetry.snapshot () in
  (* bit-identity across backends is the loopback contract — enforce it *)
  List.iter2
    (fun a b ->
      match (a, b) with
      | Driver.Completed sa, Driver.Completed sb
        when sa.Driver.aggregate = sb.Driver.aggregate && sa.Driver.flagged = sb.Driver.flagged
        ->
          ()
      | _ -> failwith "serve bench: loopback outcome diverged from the netsim backend")
    base sock;
  let per r = r /. float_of_int rounds in
  let overhead_pct = if base_s > 0.0 then (sock_s -. base_s) /. base_s *. 100.0 else 0.0 in
  pf "n=%d m=%d d=%d k=%d, %d rounds, outcomes bit-identical across backends\n\n" n m d k rounds;
  pf "  netsim round           %10.3f s/round\n" (per base_s);
  pf "  socket-loopback round  %10.3f s/round  (%+.1f%% wall-clock)\n" (per sock_s) overhead_pct;
  record ~target:"serve" ~name:"netsim-round-s" ~d ~k ~n (per base_s);
  record ~target:"serve" ~name:"loopback-round-s" ~d ~k ~n (per sock_s);
  record ~target:"serve" ~name:"socket-overhead-pct" ~d ~k ~n overhead_pct;
  List.iter
    (fun (name, v) ->
      if String.length name >= 10 && String.sub name 0 10 = "transport." then begin
        pf "  %-22s %10.1f /round\n" name (per (float_of_int v));
        record ~target:"serve" ~name:(name ^ "-per-round") ~d ~k ~n (per (float_of_int v))
      end)
    snap.Telemetry.counters

(* ------------------------------------------------------------------ *)
(* Streaming verification: barrier vs arrival-ordered fold, wall time
   and resident memory.  Both paths start from the identical committed
   round; [peak] is the max live-words delta over the post-commit
   baseline while the proof stage holds its inputs.  The barrier path
   must retain every proof frame (and the un-evicted commit records)
   until the batch verify; the streamed path folds each frame on
   arrival and evicts, so its delta stays bounded by the flush batch
   plus the compressed per-client spill — near-flat in n.              *)

let stream_gate = ref None (* --gate-stream cap on streamed peak growth across the ladder *)

let live_peak () =
  Gc.full_major ();
  Telemetry.live_words ()

let run_stream () =
  pf "================ stream: barrier vs streaming verification ================\n";
  let d = if config.smoke then 16 else 64 in
  let k = if config.smoke then 4 else 16 in
  let ladder =
    if config.smoke then [ 6; 12 ]
    else if config.full then [ 8; 16; 32; 64 ]
    else [ 8; 16; 32 ]
  in
  let shards = 2 and batch = 4 in
  pf "d=%d k=%d, streaming cfg: shards=%d batch=%d\n" d k shards batch;
  pf "peak = max live-words delta over the post-commit baseline during the proof stage\n\n";
  pf "%-6s | %12s %14s | %12s %14s | %8s\n" "n" "barrier(s)" "peak(words)" "stream(s)"
    "peak(words)" "ratio";
  let stream_peaks = ref [] in
  List.iter
    (fun n ->
      let m = max 1 (n / 4) in
      let seed = ns_seed (Printf.sprintf "bench-stream-%d" n) in
      let run ~streamed =
        let drbg = Prng.Drbg.create_string (seed ^ "/updates") in
        let updates = mk_updates drbg ~n ~d ~amp:40 in
        let bound = 1.25 *. max_norm updates in
        let params = risefl_params ~n ~m ~d ~k ~bound in
        let setup = Setup.create ~label:(Printf.sprintf "bench/stream/%d" n) params in
        let root = Prng.Drbg.create_string seed in
        let clients =
          Array.init n (fun i ->
              Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (string_of_int i)))
        in
        let server = Server.create setup (Prng.Drbg.fork root "server") in
        let pks = Array.map Client.public_key clients in
        Array.iter (fun c -> Client.install_directory c pks) clients;
        Server.install_directory server pks;
        let commits =
          Array.mapi (fun i c -> Client.commit_round c ~round:1 ~update:updates.(i)) clients
        in
        Array.iter (fun c -> ignore (Client.receive_shares c ~round:1 ~msgs:commits)) clients;
        Server.begin_round server ~round:1 ~commits:(Array.map Option.some commits);
        let s, hs = Server.prepare_check server in
        let hs_tables = Parallel.parallel_map Point.Table.make hs in
        (* the committed round is the shared baseline for both paths *)
        let l0 = live_peak () in
        let peak = ref 0 in
        let observe () =
          let dl = live_peak () - l0 in
          if dl > !peak then peak := dl
        in
        let (), stage_s =
          Telemetry.Clock.time (fun () ->
              if streamed then begin
                let st =
                  Server.stream_begin server ~round:1 ~cfg:(Server.stream_cfg ~shards ~batch ())
                in
                Array.iteri
                  (fun i c ->
                    let pr = Client.proof_round ~hs_tables c ~round:1 ~s ~hs in
                    Server.stream_feed st ~sender:(i + 1) pr;
                    observe ())
                  clients;
                Server.stream_finish st
              end
              else begin
                let proofs =
                  Array.map (fun c -> Some (Client.proof_round ~hs_tables c ~round:1 ~s ~hs)) clients
                in
                observe ();
                Server.verify_proofs server ~round:1 ~proofs;
                ignore (Sys.opaque_identity proofs)
              end)
        in
        if Server.malicious server <> [] then failwith "stream bench: honest round rejected";
        (stage_s, !peak)
      in
      let barrier_s, barrier_w = run ~streamed:false in
      let stream_s, stream_w = run ~streamed:true in
      let ratio =
        if barrier_w > 0 then float_of_int stream_w /. float_of_int barrier_w else 0.0
      in
      stream_peaks := stream_w :: !stream_peaks;
      pf "%-6d | %12.3f %14d | %12.3f %14d | %7.2f\n" n barrier_s barrier_w stream_s stream_w
        ratio;
      record ~target:"stream" ~name:"barrier-proof-stage-s" ~d ~k ~n barrier_s;
      record ~target:"stream" ~name:"stream-proof-stage-s" ~d ~k ~n stream_s;
      record ~target:"stream" ~name:"barrier-peak-words" ~d ~k ~n (float_of_int barrier_w);
      record ~target:"stream" ~name:"stream-peak-words" ~d ~k ~n (float_of_int stream_w);
      record ~target:"stream" ~name:"stream-peak-ratio" ~d ~k ~n ratio)
    ladder;
  (* flat-memory gate: the streamed peak at the top of the ladder must stay
     within [thr]x of the smallest point's, while n itself grows by the
     ladder factor (the barrier column is the contrast, not the gate) *)
  let growth =
    match List.rev !stream_peaks with
    | first :: (_ :: _ as rest) when first > 0 ->
        float_of_int (List.fold_left max 0 rest) /. float_of_int first
    | _ -> 1.0
  in
  record ~target:"stream" ~name:"stream-peak-growth" ~d ~k growth;
  match !stream_gate with
  | Some thr when growth > thr ->
      pf "GATE FAIL: streamed peak-memory growth %.2fx across the n-ladder exceeds %.2fx\n" growth
        thr;
      exit 1
  | Some thr -> pf "gate ok: streamed peak-memory growth %.2fx across the n-ladder <= %.2fx\n" growth thr
  | None -> ()

(* ------------------------------------------------------------------ *)
(* topology: commit-stage wire bytes per client, all-to-all vs the
   k-regular neighborhood sharing of lib/topology. All-to-all commits
   carry n sealed shares, so per-client commit bytes grow linearly in n
   and the stage total quadratically; at fixed degree k the k-regular
   commit carries exactly k sealed shares plus a 32-byte topology
   digest, so per-client bytes must stay flat as n doubles — that
   flatness is the gate. Sizes are real encoded frames
   (Serial.encode_commit_msg), not estimates, and every k-regular
   commit set is validated by Server.begin_round before being counted. *)

let topology_gate = ref None
(* --gate-topology cap on kregular commit bytes-per-client growth across the n-ladder *)

let run_topology () =
  pf "================ topology: commit bytes per client, full vs k-regular ================\n";
  let d = if config.smoke then 16 else 32 in
  let k = if config.smoke then 4 else 8 in
  let kdeg = 4 in
  let ladder =
    if config.smoke then [ 8; 16 ]
    else if config.full then [ 8; 16; 32; 64 ]
    else [ 8; 16; 32 ]
  in
  pf "d=%d k=%d, k-regular degree=%d\n" d k kdeg;
  pf "bytes = encoded commit frame per client (averaged over the cohort)\n\n";
  pf "%-6s | %14s %12s | %14s %12s | %8s\n" "n" "full(B/client)" "commit(s)" "kreg(B/client)"
    "commit(s)" "ratio";
  let kreg_bytes = ref [] in
  List.iter
    (fun n ->
      let m = max 1 (n / 4) in
      let seed = ns_seed (Printf.sprintf "bench-topology-%d" n) in
      let run ~topo =
        let drbg = Prng.Drbg.create_string (seed ^ "/updates") in
        let updates = mk_updates drbg ~n ~d ~amp:40 in
        let bound = 1.25 *. max_norm updates in
        let params = risefl_params ~n ~m ~d ~k ~bound in
        let setup = Setup.create ~label:(Printf.sprintf "bench/topology/%d" n) params in
        let root = Prng.Drbg.create_string seed in
        let clients =
          Array.init n (fun i ->
              Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (string_of_int i)))
        in
        let server = Server.create setup (Prng.Drbg.fork root "server") in
        let pks = Array.map Client.public_key clients in
        Array.iter (fun c -> Client.install_directory c pks) clients;
        Server.install_directory server pks;
        let commits, stage_s =
          Telemetry.Clock.time (fun () ->
              Array.mapi
                (fun i c -> Client.commit_round ?topo c ~round:1 ~update:updates.(i))
                clients)
        in
        Server.begin_round ?topo server ~round:1 ~commits:(Array.map Option.some commits);
        if Server.malicious server <> [] then failwith "topology bench: honest commit rejected";
        let total =
          Array.fold_left
            (fun acc msg -> acc + Bytes.length (Serial.encode_commit_msg msg))
            0 commits
        in
        (float_of_int total /. float_of_int n, stage_s)
      in
      let topo =
        Topology.plan ~mode:(Topology.Kregular kdeg) ~seed:(ns_seed "bench-topology") ~round:1
          ~cohort:(Array.init n (fun i -> i + 1))
      in
      (match (topo, !topo_meta) with
      | Some t, None ->
          topo_meta := Some (Topology.degree t, Topology.threshold t, Topology.hex_digest t)
      | _ -> ());
      let full_b, full_s = run ~topo:None in
      let kreg_b, kreg_s = run ~topo in
      let ratio = if full_b > 0.0 then kreg_b /. full_b else 0.0 in
      kreg_bytes := kreg_b :: !kreg_bytes;
      pf "%-6d | %14.0f %12.3f | %14.0f %12.3f | %7.2f\n" n full_b full_s kreg_b kreg_s ratio;
      record ~target:"topology" ~name:"full-commit-bytes-per-client" ~d ~k ~n full_b;
      record ~target:"topology" ~name:"kregular-commit-bytes-per-client" ~d ~k ~n kreg_b;
      record ~target:"topology" ~name:"full-commit-stage-s" ~d ~k ~n full_s;
      record ~target:"topology" ~name:"kregular-commit-stage-s" ~d ~k ~n kreg_s)
    ladder;
  (* flat-bytes gate: per-client k-regular commit bytes at the top of the
     ladder must stay within [thr]x of the smallest point's while n
     itself doubles (the full column is the contrast, not the gate) *)
  let growth =
    match List.rev !kreg_bytes with
    | first :: (_ :: _ as rest) when first > 0.0 -> List.fold_left Float.max 0.0 rest /. first
    | _ -> 1.0
  in
  record ~target:"topology" ~name:"kregular-bytes-growth" ~d ~k growth;
  match !topology_gate with
  | Some thr when growth > thr ->
      pf "GATE FAIL: k-regular commit bytes-per-client growth %.3fx across the n-ladder exceeds %.2fx\n"
        growth thr;
      exit 1
  | Some thr ->
      pf "gate ok: k-regular commit bytes-per-client growth %.3fx across the n-ladder <= %.2fx\n"
        growth thr
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Elastic membership: per-epoch enrollment/rotation costs and the
   wall-clock overhead of a churned session over a static one.          *)

let run_churn () =
  pf "================ churn: per-epoch enrollment and rotation costs ================\n";
  let n = if config.smoke then 6 else 12 in
  let m = max 1 (n / 4) in
  let d = if config.smoke then 16 else 64 in
  let k = if config.smoke then 4 else 8 in
  let rounds = if config.smoke then 4 else 8 in
  let drbg = Prng.Drbg.create_string "bench-churn/updates" in
  let updates = mk_updates drbg ~n ~d ~amp:40 in
  let bound = 1.25 *. max_norm updates in
  let params = risefl_params ~n ~m ~d ~k ~bound in
  let setup = Setup.create ~label:"bench/churn" params in
  let behaviours = Driver.honest_all n in
  let updates_for _ = updates in
  let seed = ns_seed "bench-churn" in
  let spec =
    { Membership.p_leave = 0.3; p_rejoin = 0.6; p_rotate = 0.25; min_cohort = max 3 (m + 1) }
  in
  (* rotation continuity proof: sign + verify microcosts *)
  let probe = Driver.create_session setup ~seed in
  let probe_c = (Driver.session_clients probe).(0) in
  let pk0 = Client.public_key probe_c in
  let iters = if config.smoke then 20 else 200 in
  let rot = ref (Client.rotation_proof probe_c) in
  let (), sign_s =
    Telemetry.Clock.time (fun () ->
        for _ = 1 to iters do
          rot := Client.rotation_proof probe_c
        done)
  in
  let ok = ref true in
  let (), verify_s =
    Telemetry.Clock.time (fun () ->
        for _ = 1 to iters do
          ok := !ok && Membership.verify_rotation !rot ~pk_old:pk0
        done)
  in
  if not !ok then failwith "churn bench: rotation proof rejected";
  pf "n=%d m=%d d=%d k=%d, %d rounds, spec %s\n\n" n m d k rounds
    (Membership.spec_to_string spec);
  pf "  rotation sign      %10.6f s\n" (sign_s /. float_of_int iters);
  pf "  rotation verify    %10.6f s\n" (verify_s /. float_of_int iters);
  record ~target:"churn" ~name:"rotation-sign-s" ~d ~k ~n (sign_s /. float_of_int iters);
  record ~target:"churn" ~name:"rotation-verify-s" ~d ~k ~n (verify_s /. float_of_int iters);
  (* baseline: the same session with a static full cohort *)
  let static = Driver.create_session setup ~seed in
  let (), static_s =
    Telemetry.Clock.time (fun () ->
        ignore (Driver.run_session static ~updates_for ~behaviours ~rounds))
  in
  (* elastic: epoch materialization (advance + rotation proofs + key
     catch-up) timed separately from the rounds themselves *)
  let elastic = Driver.create_session setup ~seed in
  let cohort_for = Driver.churn_cohort_for elastic ~spec ~rounds in
  let advance_total = ref 0.0 in
  let elastic_round_total = ref 0.0 in
  pf "\n%-8s | %6s | %14s | %12s\n" "round" "cohort" "epoch-advance(s)" "round(s)";
  for r = 1 to rounds do
    let ep, adv_s = Telemetry.Clock.time (fun () -> cohort_for r) in
    let nc = match ep with Some e -> Array.length e.Membership.ep_cohort | None -> n in
    let outcome, round_s =
      Telemetry.Clock.time (fun () ->
          Driver.run_round_outcome ?epoch:ep elastic ~updates ~behaviours ~round:r)
    in
    (match outcome with
    | Driver.Completed _ -> ()
    | o -> failwith ("churn bench: elastic round aborted: " ^ Driver.outcome_to_string o));
    advance_total := !advance_total +. adv_s;
    elastic_round_total := !elastic_round_total +. round_s;
    pf "%-8d | %6d | %14.6f | %12.3f\n" r nc adv_s round_s;
    record ~target:"churn" ~name:"epoch-advance-s" ~d ~k ~n:nc adv_s;
    record ~target:"churn" ~name:"elastic-round-s" ~d ~k ~n:nc round_s
  done;
  let elastic_s = !advance_total +. !elastic_round_total in
  let overhead_pct =
    if static_s > 0.0 then (elastic_s -. static_s) /. static_s *. 100.0 else 0.0
  in
  pf "\n  static session     %10.3f s/round\n" (static_s /. float_of_int rounds);
  pf "  elastic session    %10.3f s/round  (%+.1f%% wall-clock; epochs %.4f s total)\n"
    (elastic_s /. float_of_int rounds)
    overhead_pct !advance_total;
  record ~target:"churn" ~name:"static-round-s" ~d ~k ~n (static_s /. float_of_int rounds);
  record ~target:"churn" ~name:"elastic-session-round-s" ~d ~k ~n
    (elastic_s /. float_of_int rounds);
  record ~target:"churn" ~name:"elastic-overhead-pct" ~d ~k ~n overhead_pct

(* ------------------------------------------------------------------ *)
(* Main                                                                *)

let all_targets =
  [ "table1"; "table2"; "fig5"; "fig6"; "fig7"; "fig8"; "micro"; "ablate"; "verify"; "group"; "faults"; "phases"; "recovery"; "serve"; "stream"; "topology"; "churn" ]

let rec run_target = function
  | "table1" -> run_table1 ()
  | "phases" -> run_phases ()
  | "table2" -> run_table2 ()
  | "fig5" -> run_fig5 ()
  | "fig6" -> run_fig6 ()
  | "fig7" -> run_fig7 ()
  | "fig8" -> run_fig8 ()
  | "micro" -> run_micro ()
  | "ablate" -> run_ablate ()
  | "verify" -> run_verify ()
  | "group" -> run_group ()
  | "faults" -> run_faults ()
  | "recovery" -> run_recovery ()
  | "serve" -> run_serve ()
  | "stream" -> run_stream ()
  | "topology" -> run_topology ()
  | "churn" -> run_churn ()
  | "all" -> List.iter run_target all_targets
  | t ->
      pf "unknown target %S; available: %s, all\n" t (String.concat ", " all_targets);
      exit 1

let () =
  let spec =
    [
      ("--k", Arg.Int (fun v -> config.k <- v), "projection count k (default 32)");
      ("--n", Arg.Int (fun v -> config.n <- v), "number of clients (default 4)");
      ( "--d",
        Arg.String (fun v -> config.ds <- List.map int_of_string (String.split_on_char ',' v)),
        "comma-separated model dimensions for table2 (default 64,256)" );
      ("--rounds", Arg.Int (fun v -> config.rounds <- v), "fig8 training rounds (default 12)");
      ("--full", Arg.Unit (fun () -> config.full <- true), "larger (slower) sizes");
      ("--smoke", Arg.Unit (fun () -> config.smoke <- true), "tiny sizes (CI smoke run)");
      ( "--jobs",
        Arg.Int (fun v -> Parallel.set_default_jobs v),
        "worker domains for parallel paths (default RISEFL_JOBS or the core count)" );
      ( "--json",
        Arg.String (fun v -> config.json <- v),
        "machine-readable results path (default BENCH_RISEFL.json)" );
      ( "--gate-verify",
        Arg.Float (fun v -> verify_gate := Some v),
        "fail (exit 1) if the verify target's jobs=1 batched speedup drops below this factor" );
      ( "--gate-table1",
        Arg.Unit (fun () -> table1_gate := true),
        "fail (exit 1) if measured group-exp counts drift outside the table1 tolerance bands" );
      ( "--gate-group",
        Arg.Float (fun v -> group_gate := Some v),
        "fail (exit 1) if the group target's warm-cache precompute speedup drops below this factor" );
      ( "--gate-stream",
        Arg.Float (fun v -> stream_gate := Some v),
        "fail (exit 1) if the stream target's streamed peak-memory growth across the n-ladder exceeds this factor" );
      ( "--gate-topology",
        Arg.Float (fun v -> topology_gate := Some v),
        "fail (exit 1) if the topology target's k-regular commit bytes-per-client growth across the n-ladder exceeds this factor" );
      ( "--seed",
        Arg.String (fun v -> config.seed <- v),
        "workload seed namespace, recorded in the JSON metadata (default \"default\")" );
    ]
  in
  Arg.parse spec (fun t -> config.targets <- config.targets @ [ t ]) "bench targets: table1 table2 fig5 fig6 fig7 fig8 micro ablate all";
  let targets = if config.targets = [] then [ "all" ] else config.targets in
  let t0 = Telemetry.Clock.now_s () in
  List.iter
    (fun t ->
      let (), wall = Telemetry.Clock.time (fun () -> run_target t; print_newline ()) in
      record ~target:t ~name:"target-wall" ~k:config.k ~n:config.n wall)
    targets;
  pf "total bench wall time: %.1f s\n" (Telemetry.Clock.now_s () -. t0);
  write_json config.json
