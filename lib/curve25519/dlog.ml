(* BSGS over the range [-max_abs, max_abs].

   We shift: y = p + max_abs*base has exponent x' = x + max_abs in
   [0, 2*max_abs].  Write x' = i*m + j with m ~ sqrt(range) (scalable via
   ?m_scale, the --dlog-mem time/memory knob); the baby table maps
   compress(j*base) -> j and giant steps walk the i axis.

   Two speed structures matter here:

   - Point compression needs a field inversion, which dominates a naive
     loop; table construction and multi-target solving both use
     Montgomery-batched compression, chunked over the Parallel pool
     (batch inverses are exact, so the probe keys — and therefore the
     results — are identical at every job count).

   - Giant steps are ordered center-out instead of bottom-up.  The
     aggregation targets are sums of n bounded updates centered on zero,
     so x' concentrates around max_abs; probing i0 = max_abs/m first and
     expanding outward (an up frontier adding -m*base, a down frontier
     adding +m*base) finds typical targets in O(|x|/m) steps instead of
     ~max_abs/m.  Each hit determines x' uniquely (all candidate values
     are distinct mod the group order), so the probe order cannot change
     any answer — only when it is found. *)

type t = {
  max_abs : int;
  m : int;
  steps : int; (* number of giant-step indices i in [0, steps) *)
  i0 : int; (* center start index = max_abs / m *)
  baby : (string, int) Hashtbl.t;
  keys : string array; (* baby keys in j order, for serialization *)
  giant_neg : Point.t; (* -m * base *)
  giant_pos : Point.t; (* m * base *)
  center_up : Point.t; (* (max_abs - i0*m) * base: offset making a target's
                           up-frontier start equal its i0 probe point *)
  center_down : Point.t; (* (max_abs - (i0-1)*m) * base *)
}

let c_baby = Telemetry.Counter.make "dlog.baby_entries"
let c_giant = Telemetry.Counter.make "dlog.giant_steps"
let c_probes = Telemetry.Counter.make "dlog.probes"

(* chunks below this see per-chunk batch-inversion overhead dominate *)
let probe_min_chunk = 256

let max_abs t = t.max_abs
let table_size t = t.m

let of_parts ~base ~max_abs ~m keys =
  let range = (2 * max_abs) + 1 in
  let steps = ((range - 1) / m) + 1 in
  let i0 = max_abs / m in
  let baby = Hashtbl.create (2 * m) in
  Array.iteri
    (fun j key ->
      (* first writer wins so j=0 (identity) stays 0 *)
      if not (Hashtbl.mem baby key) then Hashtbl.add baby key j)
    keys;
  let giant_pos = Point.mul_small m base in
  {
    max_abs;
    m;
    steps;
    i0;
    baby;
    keys;
    giant_neg = Point.neg giant_pos;
    giant_pos;
    center_up = Point.mul_small (max_abs - (i0 * m)) base;
    center_down = Point.mul_small (max_abs - ((i0 - 1) * m)) base;
  }

let create ?jobs ?(m_scale = 1.0) ~base ~max_abs () =
  if max_abs < 0 then invalid_arg "Dlog.create";
  (* build time is a span, not a counter: counters must be jobs-invariant *)
  Telemetry.Span.with_ "dlog.build" @@ fun () ->
  let range = (2 * max_abs) + 1 in
  let m = int_of_float (ceil (sqrt (float_of_int range) *. m_scale)) in
  let m = Stdlib.max 1 (Stdlib.min m range) in
  (* chunked table build: each chunk seeds j_lo * base with one short
     multiplication, walks forward by additions, and compresses with its
     own Montgomery batch — deterministic bytes at every job count *)
  let chunks =
    Parallel.map_chunks ?jobs ~min_chunk:probe_min_chunk ~n:m (fun lo hi ->
        let points = Array.make (hi - lo) Point.identity in
        let acc = ref (Point.mul_small lo base) in
        for j = lo to hi - 1 do
          points.(j - lo) <- !acc;
          if j < hi - 1 then acc := Point.add !acc base
        done;
        Point.compress_batch points)
  in
  let keys =
    Array.concat (Array.to_list chunks)
    |> Array.map Bytes.unsafe_to_string (* fresh buffers, never mutated *)
  in
  Telemetry.Counter.add c_baby m;
  of_parts ~base ~max_abs ~m keys

let solve_many ?jobs t targets =
  let n = Array.length targets in
  if n = 0 then [||]
  else begin
    let imax = t.steps - 1 in
    (* per-target probe frontiers: up walks i = i0, i0+1, ...; down walks
       i = i0-1, i0-2, ... — probe point for step i is target + (max_abs
       - i*m) * base *)
    let up = Array.map (fun p -> Point.add p t.center_up) targets in
    let down =
      if t.i0 >= 1 then Array.map (fun p -> Point.add p t.center_down) targets else [||]
    in
    let result = Array.make n None in
    let unsolved = Array.init n Fun.id in
    let cnt = ref n in
    let r = ref 0 in
    while !cnt > 0 && (t.i0 + !r <= imax || t.i0 - 1 - !r >= 0) do
      let iu = t.i0 + !r and id = t.i0 - 1 - !r in
      let has_up = iu <= imax and has_down = id >= 0 in
      Telemetry.Counter.incr c_giant;
      let stride = (if has_up then 1 else 0) + (if has_down then 1 else 0) in
      let live = !cnt in
      (* parallel pass: emit this round's probe points and advance the
         frontiers; per-chunk Montgomery-batched compression.  Writes to
         up/down hit disjoint indices, and compression is exact, so the
         key bytes are jobs-invariant. *)
      let chunks =
        Parallel.map_chunks ?jobs ~min_chunk:probe_min_chunk ~n:live (fun lo hi ->
            let len = hi - lo in
            let pts = Array.make (len * stride) Point.identity in
            for k = 0 to len - 1 do
              let i = unsolved.(lo + k) in
              let o = ref (k * stride) in
              if has_up then begin
                pts.(!o) <- up.(i);
                up.(i) <- Point.add up.(i) t.giant_neg;
                incr o
              end;
              if has_down then begin
                pts.(!o) <- down.(i);
                down.(i) <- Point.add down.(i) t.giant_pos
              end
            done;
            Point.compress_batch pts)
      in
      let keys = if Array.length chunks = 1 then chunks.(0) else Array.concat (Array.to_list chunks) in
      Telemetry.Counter.add c_probes (Array.length keys);
      (* probe sequentially (hash lookups are cheap) and compact the
         unsolved set in place *)
      let w = ref 0 in
      for pos = 0 to live - 1 do
        let i = unsolved.(pos) in
        let o = pos * stride in
        let hit = ref false in
        if has_up then begin
          match Hashtbl.find_opt t.baby (Bytes.unsafe_to_string keys.(o)) with
          | Some j ->
              (* the exponent is determined exactly by the hit; out-of-range
                 means no in-range solution exists for this target *)
              let x' = (iu * t.m) + j in
              if x' <= 2 * t.max_abs then result.(i) <- Some (x' - t.max_abs);
              hit := true
          | None -> ()
        end;
        if (not !hit) && has_down then begin
          match
            Hashtbl.find_opt t.baby
              (Bytes.unsafe_to_string keys.(o + if has_up then 1 else 0))
          with
          | Some j ->
              let x' = (id * t.m) + j in
              if x' <= 2 * t.max_abs then result.(i) <- Some (x' - t.max_abs);
              hit := true
          | None -> ()
        end;
        if not !hit then begin
          unsolved.(!w) <- i;
          incr w
        end
      done;
      cnt := !w;
      incr r
    done;
    result
  end

let solve t p = (solve_many t [| p |]).(0)

let solve_exn t p =
  match solve t p with
  | Some x -> x
  | None -> raise Not_found

(* --- serialization (for the persistent table cache) ---

   Layout: "RDL2" | u32 max_abs | u32 m (little-endian), then the m baby
   keys (32-byte compressed points) in j order.  Everything else in [t]
   is recomputed from [base] in O(log max_abs) group operations, so a
   cache hit skips all m baby additions and compressions.  Integrity
   (CRC) and keying live in the cache layer; [of_bytes] validates the
   structure plus the j=0 key (the identity's compression). *)

let magic = "RDL2"

let put_u32 buf off v =
  for i = 0 to 3 do
    Bytes.set buf (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_u32 buf off =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  !v

let to_bytes t =
  let buf = Bytes.make (12 + (32 * t.m)) '\000' in
  Bytes.blit_string magic 0 buf 0 4;
  put_u32 buf 4 t.max_abs;
  put_u32 buf 8 t.m;
  Array.iteri (fun j key -> Bytes.blit_string key 0 buf (12 + (32 * j)) 32) t.keys;
  buf

let of_bytes ~base b =
  if Bytes.length b < 12 then None
  else if not (String.equal (Bytes.sub_string b 0 4) magic) then None
  else begin
    let max_abs = get_u32 b 4 in
    let m = get_u32 b 8 in
    let range = (2 * max_abs) + 1 in
    if m < 1 || m > range || Bytes.length b <> 12 + (32 * m) then None
    else begin
      let keys = Array.init m (fun j -> Bytes.sub_string b (12 + (32 * j)) 32) in
      if not (String.equal keys.(0) (Bytes.to_string (Point.compress Point.identity))) then None
      else Some (of_parts ~base ~max_abs ~m keys)
    end
  end
