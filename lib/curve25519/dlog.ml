(* BSGS over the range [-max_abs, max_abs].

   We shift: y = p + max_abs*base has exponent x' = x + max_abs in
   [0, 2*max_abs].  Write x' = i*m + j with m = ceil(sqrt(range));
   baby table maps compress(j*base) -> j; giant steps subtract m*base.

   Point compression needs a field inversion, which dominates a naive
   loop; both table construction and multi-target solving therefore use
   Montgomery-batched compression. *)

type t = {
  max_abs : int;
  m : int;
  baby : (string, int) Hashtbl.t;
  giant_neg : Point.t; (* -m * base *)
  shift : Point.t; (* max_abs * base *)
}

let create ~base ~max_abs =
  if max_abs < 0 then invalid_arg "Dlog.create";
  let range = (2 * max_abs) + 1 in
  let m = int_of_float (ceil (sqrt (float_of_int range))) in
  let m = Stdlib.max m 1 in
  let baby = Hashtbl.create (2 * m) in
  let points = Array.make m Point.identity in
  let acc = ref Point.identity in
  for j = 0 to m - 1 do
    points.(j) <- !acc;
    acc := Point.add !acc base
  done;
  let keys = Point.compress_batch points in
  Array.iteri
    (fun j key ->
      let key = Bytes.to_string key in
      (* first writer wins so j=0 (identity) stays 0 *)
      if not (Hashtbl.mem baby key) then Hashtbl.add baby key j)
    keys;
  {
    max_abs;
    m;
    baby;
    giant_neg = Point.neg !acc (* !acc = m*base *);
    shift = Point.mul_small max_abs base;
  }

let solve_many t targets =
  let n = Array.length targets in
  let range = (2 * t.max_abs) + 1 in
  let steps = ((range - 1) / t.m) + 1 in
  let current = Array.map (fun p -> Point.add p t.shift) targets in
  let result = Array.make n None in
  let unsolved = ref (Array.to_list (Array.init n Fun.id)) in
  let step = ref 0 in
  while !unsolved <> [] && !step <= steps do
    let idxs = Array.of_list !unsolved in
    let keys = Point.compress_batch (Array.map (fun i -> current.(i)) idxs) in
    let remaining = ref [] in
    Array.iteri
      (fun pos i ->
        match Hashtbl.find_opt t.baby (Bytes.to_string keys.(pos)) with
        | Some j ->
            (* the exponent is determined exactly by the hit; out-of-range
               means no in-range solution exists for this target *)
            let x' = (!step * t.m) + j in
            if x' <= 2 * t.max_abs then result.(i) <- Some (x' - t.max_abs)
        | None ->
            current.(i) <- Point.add current.(i) t.giant_neg;
            remaining := i :: !remaining)
      idxs;
    unsolved := List.rev !remaining;
    incr step
  done;
  result

let solve t p = (solve_many t [| p |]).(0)

let solve_exn t p =
  match solve t p with
  | Some x -> x
  | None -> raise Not_found
