(** Arithmetic modulo the group order
    ℓ = 2^252 + 27742317777372353535851937790883648493 (prime).

    This is ℤ_p of the paper — the exponent field for all commitments,
    secret shares and proofs. Built on {!Bigint} with Barrett reduction so
    no per-operation division is performed. Values are always canonical
    representatives in [0, ℓ). *)

type t

(** The group order ℓ. *)
val order : Bigint.t

(** Bit length of ℓ (253). *)
val bits : int

val zero : t
val one : t

val of_int : int -> t

(** [of_bigint x] reduces any bigint (any sign) into [0, ℓ). *)
val of_bigint : Bigint.t -> t

val to_bigint : t -> Bigint.t

(** [to_int_signed x] interprets [x] as the signed value of minimal
    magnitude (negative if [x > ℓ/2]) and converts to a native int.
    @raise Failure when it does not fit. *)
val to_int_signed : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** [mul_small x c] multiplies by a native int (any sign, |c| < 2^62). *)
val mul_small : t -> int -> t

(** [inv x] — multiplicative inverse. @raise Division_by_zero on zero. *)
val inv : t -> t

(** [square x] = [mul x x]. *)
val square : t -> t

val equal : t -> t -> bool
val is_zero : t -> bool

(** Canonical 32-byte little-endian encoding. *)
val to_bytes : t -> Bytes.t

(** [of_bytes b] decodes 32 bytes and rejects non-canonical values.
    @raise Invalid_argument if [b] is not 32 bytes or encodes a value
    >= ℓ. *)
val of_bytes : Bytes.t -> t

(** [of_bytes_opt b] — total variant of {!of_bytes} for hostile input:
    [None] on wrong length or a non-canonical encoding, never raises. *)
val of_bytes_opt : Bytes.t -> t option

(** [of_bytes_wide b] reduces an arbitrary-length byte string modulo ℓ —
    unbiased when [b] is 64 uniform bytes (used for hash-to-scalar). *)
val of_bytes_wide : Bytes.t -> t

(** [random drbg] draws a uniform scalar. *)
val random : Prng.Drbg.t -> t

(** [dot_ints a u] computes Σ a_i·u_i mod ℓ for native-int vectors without
    intermediate overflow (the O(kd) field-arithmetic inner products of the
    probabilistic check). Arrays must have equal length. *)
val dot_ints : int array -> int array -> t

(** Nominal window width of {!to_wnaf} (5: digits are odd with
    |digit| <= 2^(w−1) − 1 = 15, needing an 8-entry odd-multiples
    table). Exposed for telemetry and the cost model. *)
val wnaf_window : int

(** [to_wnaf x] — sliding-window signed-digit recoding of [x]: an array
    of 256 little-endian digits, each zero or odd with |digit| ≤ 15,
    satisfying Σ dᵢ·2^i = [x]. Used by the variable-base scalar
    multiplication fast path. *)
val to_wnaf : t -> int array

val pp : Format.formatter -> t -> unit
