(** Arithmetic in GF(2^255 − 19), the base field of Curve25519.

    Representation follows the classic "ref10" layout: ten limbs holding
    alternately 26 and 25 bits, kept as signed native ints, so every
    product and limb-sum stays far below the 63-bit native range. Values
    are immutable by convention (operations return fresh arrays).

    Correctness is cross-checked by qcheck against a {!Bigint} reference
    implementation in the test suite. *)

type t

(** The field prime p = 2^255 − 19 (as a bigint, for reference code). *)
val p : Bigint.t

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val square : t -> t

(** [mul_small x c] multiplies by a small constant [0 <= c < 2^30]. *)
val mul_small : t -> int -> t

(** [invert x] is [x^(p-2)] — the multiplicative inverse (0 maps to 0). *)
val invert : t -> t

(** [invert_batch xs] inverts every element with a single field
    exponentiation (Montgomery's trick): 3(n−1) multiplications plus one
    {!invert}. Zero entries map to zero. *)
val invert_batch : t array -> t array

(** [pow_p58 x] is [x^((p-5)/8)], the core step of the square-root used in
    point decompression. *)
val pow_p58 : t -> t

(** Canonical 32-byte little-endian encoding (top bit clear). *)
val to_bytes : t -> Bytes.t

(** Decode 32 little-endian bytes; the top bit (bit 255) is ignored. The
    result may represent a value in [p, 2^255); it is reduced on the next
    canonical encoding. *)
val of_bytes : Bytes.t -> t

(** Exact equality of field elements (compares canonical encodings). *)
val equal : t -> t -> bool

val is_zero : t -> bool

(** [is_negative x] is the least significant bit of the canonical
    encoding — the "sign" convention of RFC 8032. *)
val is_negative : t -> bool

(** Conversions to/from {!Bigint} (canonical representative in [0, p)). *)
val to_bigint : t -> Bigint.t

val of_bigint : Bigint.t -> t

(** [of_int n] embeds a native int (any sign). *)
val of_int : int -> t

(** Square root of -1, i.e. [sqrt_m1]^2 = -1 (mod p). *)
val sqrt_m1 : t

(** The twisted-Edwards curve constant d = −121665/121666. *)
val edwards_d : t

(** 2·d, used by the extended-coordinates addition formulas. *)
val edwards_d2 : t

val pp : Format.formatter -> t -> unit

(** Runtime selection of the multiply/square kernel.

    The default is the pure-OCaml ref10 port. When the stub is enabled
    ({!Backend.set_stub} or the [RISEFL_FE_STUB=1] environment variable,
    read once at startup), {!mul} and {!square} route through a C stub
    that replicates the same schoolbook product and carry chain with
    [int64], producing bit-identical limb arrays — so proofs, verdicts
    and C* are unchanged whichever kernel is active. *)
module Backend : sig
  (** [true] in this build (the stub is compiled in unconditionally;
      the flag exists so callers can feature-test). *)
  val stub_available : bool

  (** Route {!mul}/{!square} through the C stub ([true]) or the pure
      OCaml kernels ([false]). Takes effect immediately, process-wide. *)
  val set_stub : bool -> unit

  val using_stub : unit -> bool
end
