(** Multi-scalar multiplication (Pippenger's bucket method).

    Computes Σᵢ eᵢ·Pᵢ in O(n·b / log n) point additions instead of the
    naive O(n·b). This is the "mult-exponentiation" the paper leans on for
    its O(d / log d) client cost: the server's h_t = Π w_l^{a_tl}
    precomputation, the client's VerCrt batch verification (Algorithm 3)
    and the server's e_t recomputation are all instances.

    Both entry points split the point set into per-domain chunks executed
    on the {!Parallel} pool ([?jobs] defaults to
    [Parallel.default_jobs ()]); partial chunk sums merge in fixed order,
    so the result is identical for every job count. *)

(** [msm ?jobs pairs] for full-size scalar exponents. Empty input gives
    the identity. *)
val msm : ?jobs:int -> (Scalar.t * Point.t) array -> Point.t

(** [msm_small ?jobs pairs] for native-int exponents of either sign (e.g.
    the discretized Gaussian coefficients a_tl, |a| < 2^30); faster than
    {!msm} because the exponent bit-length is short. *)
val msm_small : ?jobs:int -> (int * Point.t) array -> Point.t

(** [window_bits n] — the window size heuristic used internally (exposed
    for the cost model and tests). *)
val window_bits : int -> int
