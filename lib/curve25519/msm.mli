(** Multi-scalar multiplication (Pippenger's bucket method).

    Computes Σᵢ eᵢ·Pᵢ in O(n·b / log n) point additions instead of the
    naive O(n·b). This is the "mult-exponentiation" the paper leans on for
    its O(d / log d) client cost: the server's h_t = Π w_l^{a_tl}
    precomputation, the client's VerCrt batch verification (Algorithm 3)
    and the server's e_t recomputation are all instances.

    Both entry points split the point set into per-domain chunks executed
    on the {!Parallel} pool ([?jobs] defaults to
    [Parallel.default_jobs ()]); partial chunk sums merge in fixed order,
    so the result is identical for every job count. *)

(** [msm ?jobs pairs] for full-size scalar exponents. Empty input gives
    the identity. *)
val msm : ?jobs:int -> (Scalar.t * Point.t) array -> Point.t

(** [msm_small ?jobs pairs] for native-int exponents of either sign (e.g.
    the discretized Gaussian coefficients a_tl, |a| < 2^30); faster than
    {!msm} because the exponent bit-length is short. *)
val msm_small : ?jobs:int -> (int * Point.t) array -> Point.t

(** [window_bits n] — the window size heuristic used internally (exposed
    for the cost model and tests). *)
val window_bits : int -> int

(** Points-per-chunk sequential cutoff: inputs that would leave a chunk
    with fewer points run sequentially regardless of [?jobs], because the
    per-chunk fixed costs (full doubling chain + bucket suffix sums per
    window) would dominate. Exposed for tests and the cost model. *)
val seq_cutoff : int

(** Term accumulator for random-linear-combination batch verification.

    Verifier equations [LHS = RHS] are folded by pushing the terms of
    [rho_j * (LHS - RHS)] for an independently random [rho_j] per
    equation; the whole accumulated batch is accepted iff {!eval} returns
    the identity. A dishonest term set survives with probability at most
    (#equations)/ℓ over the choice of the [rho_j] (ℓ the group order,
    ~2^252), because the accumulated sum is a nonzero ℓ-linear form in
    the [rho_j] evaluated at a random point. *)
module Acc : sig
  type t

  (** [create ?coalesce ()] — fresh empty accumulator. Bases in
      [coalesce] are recognized by physical equality on {!push} and
      accumulate into a single coefficient cell each (use for fixed bases
      like the Pedersen [g]/[q] that appear in every equation). *)
  val create : ?coalesce:Point.t array -> unit -> t

  (** [push t s p] — add the term [s·p]. *)
  val push : t -> Scalar.t -> Point.t -> unit

  (** Number of MSM terms currently held (coalesced bases with a nonzero
      running coefficient count as one each). *)
  val size : t -> int

  (** Materialize the current term list (coalesced bases last, only if
      their running coefficient is nonzero). The accumulator remains
      usable. *)
  val terms : t -> (Scalar.t * Point.t) array

  (** Current term-buffer capacity in slots (exposed for the ratchet
      tests: {!reset}/{!flush} must return grown buffers to
      {!initial_capacity}). *)
  val capacity : t -> int

  (** The capacity {!create} allocates and {!reset}/{!flush} shrink back
      to. *)
  val initial_capacity : int

  (** [reset t] — drop all buffered terms {e and} the carry, and return
      any grown term buffers to {!initial_capacity}. The accumulator is
      as fresh as after {!create} (same coalesce set). *)
  val reset : t -> unit

  (** [flush ?jobs t] — partial evaluation: fold the buffered terms into
      an internal running {e carry} point with one MSM, empty the buffers
      (shrinking them back to {!initial_capacity}), and return the carry
      so far. After a flush, {!eval} = carry + MSM(new terms); a streamed
      sequence of pushes interleaved with flushes therefore evaluates to
      the same group element as one deferred eval over all terms. *)
  val flush : ?jobs:int -> t -> Point.t

  (** The running carry (identity until the first {!flush}). *)
  val carry : t -> Point.t

  (** [merge dst src] — fold [src]'s carry and buffered terms into [dst]
      (deterministic: carry first, then [src]'s terms in their buffer
      order, re-coalesced against [dst]'s coalesce set). [src] is not
      modified. Used to merge per-shard accumulators shard-ordered. *)
  val merge : t -> t -> unit

  (** Evaluate carry + buffered terms with one Pippenger MSM. *)
  val eval : ?jobs:int -> t -> Point.t

  (** [is_identity ?jobs t] = [Point.is_identity (eval ?jobs t)]. *)
  val is_identity : ?jobs:int -> t -> bool
end
