(* 8 * P lands in the prime-order subgroup for any curve point P. *)
let clear_cofactor p = Point.mul_small 8 p

let derive label =
  let rec try_counter ctr =
    let h = Hashfn.Sha256.init () in
    Hashfn.Sha256.update_string h "risefl/generator/v1/";
    Hashfn.Sha256.update_string h label;
    Hashfn.Sha256.update_string h "/";
    Hashfn.Sha256.update_string h (string_of_int ctr);
    let cand = Hashfn.Sha256.finalize h in
    match Point.decompress_unchecked cand with
    | Some p ->
        let p = clear_cofactor p in
        if Point.is_identity p then try_counter (ctr + 1) else p
    | None -> try_counter (ctr + 1)
  in
  try_counter 0

(* each label derives independently, so setup-time generator derivation
   (d of them for the commitment bases) fans out across domains *)
let derive_many label n = Parallel.parallel_init n (fun i -> derive (label ^ "/" ^ string_of_int i))
