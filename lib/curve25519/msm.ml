(* Pippenger bucket multi-scalar multiplication. *)

let window_bits n =
  if n <= 1 then 1
  else begin
    (* c ~ log2 n - 2, clamped; standard heuristic minimizing
       (b/c) * (n + 2^c) additions *)
    let rec lg acc v = if v <= 1 then acc else lg (acc + 1) (v lsr 1) in
    Stdlib.max 1 (Stdlib.min 16 (lg 0 n - 1))
  end

(* Generic driver: [digit i w] must return the w-th little-endian c-bit
   digit of exponent i; [nwindows] the number of windows; [points] the
   bases (already sign-adjusted). *)
let run ~c ~nwindows ~npoints ~digit ~point =
  let nbuckets = (1 lsl c) - 1 in
  let buckets = Array.make (nbuckets + 1) Point.identity in
  let acc = ref Point.identity in
  for w = nwindows - 1 downto 0 do
    if w < nwindows - 1 then for _ = 1 to c do acc := Point.double !acc done;
    Array.fill buckets 0 (nbuckets + 1) Point.identity;
    let used = ref false in
    for i = 0 to npoints - 1 do
      let d = digit i w in
      if d <> 0 then begin
        buckets.(d) <- Point.add buckets.(d) (point i);
        used := true
      end
    done;
    if !used then begin
      (* sum_{d} d * bucket_d via suffix sums *)
      let running = ref Point.identity in
      let total = ref Point.identity in
      for d = nbuckets downto 1 do
        running := Point.add !running buckets.(d);
        total := Point.add !total !running
      done;
      acc := Point.add !acc !total
    end
  done;
  !acc

let msm pairs =
  let n = Array.length pairs in
  if n = 0 then Point.identity
  else begin
    let c = window_bits n in
    let nwindows = (256 + c - 1) / c in
    let exps = Array.map (fun (s, _) -> Scalar.to_bigint s) pairs in
    let digit i w =
      let e = exps.(i) in
      let lo = w * c in
      let v = ref 0 in
      for b = c - 1 downto 0 do
        v := (!v lsl 1) lor if Bigint.testbit e (lo + b) then 1 else 0
      done;
      !v
    in
    run ~c ~nwindows ~npoints:n ~digit ~point:(fun i -> snd pairs.(i))
  end

let msm_small pairs =
  let n = Array.length pairs in
  if n = 0 then Point.identity
  else begin
    let c = window_bits n in
    (* sign-fold: negative exponents negate the base *)
    let exps = Array.map (fun (e, _) -> abs e) pairs in
    let pts = Array.map (fun (e, p) -> if e < 0 then Point.neg p else p) pairs in
    let maxe = Array.fold_left Stdlib.max 0 exps in
    let rec lg acc v = if v = 0 then acc else lg (acc + 1) (v lsr 1) in
    let bits = Stdlib.max 1 (lg 0 maxe) in
    let nwindows = (bits + c - 1) / c in
    let mask = (1 lsl c) - 1 in
    let digit i w = (exps.(i) lsr (w * c)) land mask in
    run ~c ~nwindows ~npoints:n ~digit ~point:(fun i -> pts.(i))
  end
