(* Pippenger bucket multi-scalar multiplication.

   Two optimizations over the textbook loop:

   - each scalar's little-endian c-bit digit array is extracted once up
     front with [Bigint.to_digits] (one limb pass per scalar) instead of
     re-probing [Bigint.testbit] c times per point per window — a pure
     win even sequentially;

   - the point set is split into per-domain chunks, each chunk runs the
     full windowed bucket accumulation independently, and the partial
     sums are merged with log(chunks) point additions. Partials combine
     in fixed chunk order, so the result is the same group element for
     every job count. *)

let window_bits n =
  if n <= 1 then 1
  else begin
    (* c ~ log2 n - 2, clamped; standard heuristic minimizing
       (b/c) * (n + 2^c) additions *)
    let rec lg acc v = if v <= 1 then acc else lg (acc + 1) (v lsr 1) in
    Stdlib.max 1 (Stdlib.min 16 (lg 0 n - 1))
  end

(* Bucket accumulation over the point range [lo, hi): [digits.(i).(w)] is
   the w-th c-bit digit of exponent i; [point i] the (sign-adjusted)
   base. *)
let run_range ~c ~nwindows ~lo ~hi ~digits ~point =
  let nbuckets = (1 lsl c) - 1 in
  let buckets = Array.make (nbuckets + 1) Point.identity in
  let acc = ref Point.identity in
  for w = nwindows - 1 downto 0 do
    if w < nwindows - 1 then for _ = 1 to c do acc := Point.double !acc done;
    Array.fill buckets 0 (nbuckets + 1) Point.identity;
    let used = ref false in
    for i = lo to hi - 1 do
      let d = digits.(i).(w) in
      if d <> 0 then begin
        buckets.(d) <- Point.add buckets.(d) (point i);
        used := true
      end
    done;
    if !used then begin
      (* sum_{d} d * bucket_d via suffix sums *)
      let running = ref Point.identity in
      let total = ref Point.identity in
      for d = nbuckets downto 1 do
        running := Point.add !running buckets.(d);
        total := Point.add !total !running
      done;
      acc := Point.add !acc !total
    end
  done;
  !acc

let run ?jobs ~c ~nwindows ~npoints ~digits ~point () =
  let partials =
    Parallel.map_chunks ?jobs ~n:npoints (fun lo hi ->
        run_range ~c ~nwindows ~lo ~hi ~digits ~point)
  in
  if Array.length partials = 0 then Point.identity
  else Parallel.tree_combine Point.add partials

let msm ?jobs pairs =
  let n = Array.length pairs in
  if n = 0 then Point.identity
  else begin
    let c = window_bits n in
    let nwindows = (256 + c - 1) / c in
    let digits =
      Array.map (fun (s, _) -> Bigint.to_digits ~bits:c ~count:nwindows (Scalar.to_bigint s)) pairs
    in
    run ?jobs ~c ~nwindows ~npoints:n ~digits ~point:(fun i -> snd pairs.(i)) ()
  end

let msm_small ?jobs pairs =
  let n = Array.length pairs in
  if n = 0 then Point.identity
  else begin
    let c = window_bits n in
    (* sign-fold: negative exponents negate the base *)
    let exps = Array.map (fun (e, _) -> abs e) pairs in
    let pts = Array.map (fun (e, p) -> if e < 0 then Point.neg p else p) pairs in
    let maxe = Array.fold_left Stdlib.max 0 exps in
    let rec lg acc v = if v = 0 then acc else lg (acc + 1) (v lsr 1) in
    let bits = Stdlib.max 1 (lg 0 maxe) in
    let nwindows = (bits + c - 1) / c in
    let mask = (1 lsl c) - 1 in
    let digits =
      Array.map (fun e -> Array.init nwindows (fun w -> (e lsr (w * c)) land mask)) exps
    in
    run ?jobs ~c ~nwindows ~npoints:n ~digits ~point:(fun i -> pts.(i)) ()
  end
