(* Pippenger bucket multi-scalar multiplication.

   Two optimizations over the textbook loop:

   - each scalar's little-endian c-bit digit array is extracted once up
     front with [Bigint.to_digits] (one limb pass per scalar) instead of
     re-probing [Bigint.testbit] c times per point per window — a pure
     win even sequentially;

   - the point set is split into per-domain chunks, each chunk runs the
     full windowed bucket accumulation independently, and the partial
     sums are merged with log(chunks) point additions. Partials combine
     in fixed chunk order, so the result is the same group element for
     every job count. *)

let window_bits n =
  if n <= 1 then 1
  else begin
    (* c ~ log2 n - 2, clamped; standard heuristic minimizing
       (b/c) * (n + 2^c) additions *)
    let rec lg acc v = if v <= 1 then acc else lg (acc + 1) (v lsr 1) in
    Stdlib.max 1 (Stdlib.min 16 (lg 0 n - 1))
  end

(* Bucket accumulation over the point range [lo, hi): [digits.(i).(w)] is
   the w-th c-bit digit of exponent i; [nls.(i)] the (sign-adjusted) base
   in mixed-affine Niels form, so every bucket addition is a 7-mul madd
   instead of a 9-mul extended addition.  The conversion happens once per
   MSM evaluation (one Montgomery inversion over all input points) before
   the chunks fan out — see [run]. *)
let run_range ~c ~nwindows ~lo ~hi ~digits ~nls =
  let nbuckets = (1 lsl c) - 1 in
  let buckets = Array.make (nbuckets + 1) Point.identity in
  let acc = ref Point.identity in
  for w = nwindows - 1 downto 0 do
    if w < nwindows - 1 then for _ = 1 to c do acc := Point.double !acc done;
    Array.fill buckets 0 (nbuckets + 1) Point.identity;
    let used = ref false in
    for i = lo to hi - 1 do
      let d = digits.(i).(w) in
      if d <> 0 then begin
        buckets.(d) <- Point.madd buckets.(d) nls.(i);
        used := true
      end
    done;
    if !used then begin
      (* sum_{d} d * bucket_d via suffix sums *)
      let running = ref Point.identity in
      let total = ref Point.identity in
      for d = nbuckets downto 1 do
        running := Point.add !running buckets.(d);
        total := Point.add !total !running
      done;
      acc := Point.add !acc !total
    end
  done;
  !acc

(* Sequential cutoff: each chunk pays fixed costs that are independent of
   its point count — a full doubling chain across every window plus a
   suffix-sum pass over all 2^c buckets per window. Below ~1k points per
   chunk those fixed costs dominate the per-point bucket additions, so
   fanning out across domains is a net loss (BENCH_RISEFL.json showed
   msm-full at n=256 5x slower at jobs=2 than jobs=1). Capping the chunk
   count so every chunk keeps at least this many points makes small MSMs
   run sequentially at any job count. *)
let seq_cutoff = 1024

(* The window size is chosen from the per-chunk point count, not the
   total: each chunk runs its own bucket accumulation, so oversizing c
   from the global n would blow up the per-chunk suffix-sum cost. *)
let chunk_window ?jobs n =
  let nchunks = Parallel.chunk_count ?jobs ~min_chunk:seq_cutoff n in
  window_bits ((n + nchunks - 1) / nchunks)

let c_evals = Telemetry.Counter.make "msm.evals"
let c_points = Telemetry.Counter.make "msm.points"
let c_window = Telemetry.Counter.make "msm.window_bits"
let c_chunks = Telemetry.Counter.make "msm.chunks"

let run ?jobs ~c ~nwindows ~npoints ~digits ~points () =
  Telemetry.Counter.incr c_evals;
  Telemetry.Counter.add c_points npoints;
  Telemetry.Counter.add c_window c;
  (* batched-affine flush: one shared inversion converts every input to
     Niels form; each chunk then reads the (immutable) array freely *)
  let nls = Point.to_niels_batch points in
  let partials =
    Parallel.map_chunks ?jobs ~min_chunk:seq_cutoff ~n:npoints (fun lo hi ->
        run_range ~c ~nwindows ~lo ~hi ~digits ~nls)
  in
  Telemetry.Counter.add c_chunks (Array.length partials);
  if Array.length partials = 0 then Point.identity
  else Parallel.tree_combine Point.add partials

let msm ?jobs pairs =
  let n = Array.length pairs in
  if n = 0 then Point.identity
  else begin
    let c = chunk_window ?jobs n in
    let nwindows = (256 + c - 1) / c in
    let digits =
      Array.map (fun (s, _) -> Bigint.to_digits ~bits:c ~count:nwindows (Scalar.to_bigint s)) pairs
    in
    run ?jobs ~c ~nwindows ~npoints:n ~digits ~points:(Array.map snd pairs) ()
  end

let msm_small ?jobs pairs =
  let n = Array.length pairs in
  if n = 0 then Point.identity
  else begin
    let c = chunk_window ?jobs n in
    (* sign-fold: negative exponents negate the base *)
    let exps = Array.map (fun (e, _) -> abs e) pairs in
    let pts = Array.map (fun (e, p) -> if e < 0 then Point.neg p else p) pairs in
    let maxe = Array.fold_left Stdlib.max 0 exps in
    let rec lg acc v = if v = 0 then acc else lg (acc + 1) (v lsr 1) in
    let bits = Stdlib.max 1 (lg 0 maxe) in
    let nwindows = (bits + c - 1) / c in
    let mask = (1 lsl c) - 1 in
    let digits =
      Array.map (fun e -> Array.init nwindows (fun w -> (e lsr (w * c)) land mask)) exps
    in
    run ?jobs ~c ~nwindows ~npoints:n ~digits ~points:pts ()
  end

(* Growable (scalar, point) term accumulator for random-linear-combination
   batch verification: every verifier equation LHS = RHS contributes the
   terms of rho * (LHS - RHS); the whole batch is accepted iff the single
   evaluated sum is the group identity.

   Bases listed in [coalesce] are matched by physical equality on push and
   their coefficients are summed into one cell each, so ubiquitous fixed
   bases (the Pedersen g and blinding base q appear in nearly every
   equation) cost one MSM term instead of dozens. *)
module Acc = struct
  type t = {
    mutable scalars : Scalar.t array;
    mutable points : Point.t array;
    mutable n : int;
    mutable carry : Point.t;
    cbases : Point.t array;
    csums : Scalar.t array;
  }

  (* Term buffers start small and double on demand; [reset]/[flush] return
     them to this capacity so a long-lived accumulator (one per shard per
     session in the streaming verifier) doesn't ratchet up to the largest
     batch it ever saw. *)
  let initial_capacity = 64

  let create ?(coalesce = [||]) () =
    {
      scalars = Array.make initial_capacity Scalar.zero;
      points = Array.make initial_capacity Point.identity;
      n = 0;
      carry = Point.identity;
      cbases = coalesce;
      csums = Array.make (Array.length coalesce) Scalar.zero;
    }

  let push t s p =
    let nc = Array.length t.cbases in
    let rec find i = if i = nc then -1 else if t.cbases.(i) == p then i else find (i + 1) in
    let ci = find 0 in
    if ci >= 0 then t.csums.(ci) <- Scalar.add t.csums.(ci) s
    else begin
      let cap = Array.length t.scalars in
      if t.n = cap then begin
        let scalars = Array.make (2 * cap) Scalar.zero in
        let points = Array.make (2 * cap) Point.identity in
        Array.blit t.scalars 0 scalars 0 cap;
        Array.blit t.points 0 points 0 cap;
        t.scalars <- scalars;
        t.points <- points
      end;
      t.scalars.(t.n) <- s;
      t.points.(t.n) <- p;
      t.n <- t.n + 1
    end

  let size t =
    let extra = ref 0 in
    Array.iter (fun s -> if not (Scalar.is_zero s) then incr extra) t.csums;
    t.n + !extra

  let terms t =
    let extra = ref [] in
    Array.iteri
      (fun i s -> if not (Scalar.is_zero s) then extra := (s, t.cbases.(i)) :: !extra)
      t.csums;
    Array.append (Array.init t.n (fun i -> (t.scalars.(i), t.points.(i)))) (Array.of_list !extra)

  let capacity t = Array.length t.scalars

  let clear_terms t =
    t.n <- 0;
    Array.fill t.csums 0 (Array.length t.csums) Scalar.zero;
    if Array.length t.scalars > initial_capacity then begin
      t.scalars <- Array.make initial_capacity Scalar.zero;
      t.points <- Array.make initial_capacity Point.identity
    end

  let reset t =
    clear_terms t;
    t.carry <- Point.identity

  let flush ?jobs t =
    if size t > 0 then t.carry <- Point.add t.carry (msm ?jobs (terms t));
    clear_terms t;
    t.carry

  let carry t = t.carry

  let merge dst src =
    if not (Point.is_identity src.carry) then dst.carry <- Point.add dst.carry src.carry;
    Array.iter (fun (s, p) -> push dst s p) (terms src)

  let eval ?jobs t =
    let m = msm ?jobs (terms t) in
    if Point.is_identity t.carry then m else Point.add t.carry m

  let is_identity ?jobs t = Point.is_identity (eval ?jobs t)
end
