(* Z_l for l = 2^252 + 27742317777372353535851937790883648493.

   Representation: canonical Bigint in [0, l).  Reduction after
   multiplication uses Barrett's method: with b = 2^26 and k = 10 limbs
   (so l < b^k), mu = floor(b^2k / l) is precomputed and
     q = ((x >> 26(k-1)) * mu) >> 26(k+1),  r = x - q*l
   leaves r < 3l, fixed by at most two subtractions. *)

type t = Bigint.t

let order = Bigint.of_string "7237005577332262213973186563042994240857116359379907606001950938285454250989"
let bits = Bigint.bit_length order (* 253 *)
let zero = Bigint.zero
let one = Bigint.one

let k_limbs = 10
let mu = Bigint.div (Bigint.shift_left Bigint.one (2 * k_limbs * Bigint.limb_bits)) order
let shift1 = (k_limbs - 1) * Bigint.limb_bits
let shift2 = (k_limbs + 1) * Bigint.limb_bits

(* Reduce 0 <= x < l^2 (in fact any x < b^2k). *)
let barrett x =
  let q = Bigint.shift_right (Bigint.mul (Bigint.shift_right x shift1) mu) shift2 in
  let r = ref (Bigint.sub x (Bigint.mul q order)) in
  while Bigint.compare !r order >= 0 do
    r := Bigint.sub !r order
  done;
  !r

let of_bigint x =
  if Bigint.sign x >= 0 && Bigint.compare x order < 0 then x
  else if Bigint.sign x >= 0 && Bigint.bit_length x <= 2 * k_limbs * Bigint.limb_bits then barrett x
  else Bigint.erem x order

let of_int n = of_bigint (Bigint.of_int n)
let to_bigint x = x

let half_order = Bigint.shift_right order 1

let to_int_signed x =
  if Bigint.compare x half_order > 0 then Bigint.to_int (Bigint.sub x order) else Bigint.to_int x

let add a b =
  let s = Bigint.add a b in
  if Bigint.compare s order >= 0 then Bigint.sub s order else s

let sub a b =
  let s = Bigint.sub a b in
  if Bigint.sign s < 0 then Bigint.add s order else s

let neg a = if Bigint.is_zero a then a else Bigint.sub order a
let mul a b = barrett (Bigint.mul a b)
let square a = mul a a

let mul_small a c =
  if c >= 0 then barrett (Bigint.mul a (Bigint.of_int c))
  else neg (barrett (Bigint.mul a (Bigint.of_int (-c))))

let inv a =
  if Bigint.is_zero a then raise Division_by_zero;
  Bigint.mod_inv a order

let equal = Bigint.equal
let is_zero = Bigint.is_zero
let to_bytes x = Bigint.to_bytes_le ~len:32 x

let of_bytes b =
  if Bytes.length b <> 32 then invalid_arg "Scalar.of_bytes: need 32 bytes";
  let x = Bigint.of_bytes_le b in
  if Bigint.compare x order >= 0 then invalid_arg "Scalar.of_bytes: non-canonical";
  x

let of_bytes_opt b =
  if Bytes.length b <> 32 then None
  else begin
    let x = Bigint.of_bytes_le b in
    if Bigint.compare x order >= 0 then None else Some x
  end

let of_bytes_wide b = Bigint.erem (Bigint.of_bytes_le b) order

let random drbg =
  (* 64 uniform bytes reduced mod l: bias < 2^-250 *)
  of_bytes_wide (Prng.Drbg.bytes drbg 64)

let dot_ints a u =
  if Array.length a <> Array.length u then invalid_arg "Scalar.dot_ints: length mismatch";
  (* accumulate exactly in chunks that cannot overflow a native int, then
     fold the chunks into the field.  |a_i * u_i| can approach 2^62, so we
     add terms one by one and spill to a bigint accumulator on overflow
     risk; the cheap common case stays all-native. *)
  let acc_big = ref Bigint.zero in
  let acc = ref 0 in
  let headroom = 1 lsl 60 in
  for i = 0 to Array.length a - 1 do
    let t = a.(i) * u.(i) in
    (* precondition: |a_i * u_i| <= 2^60 (callers use <= 30-bit inputs) *)
    if !acc > headroom || !acc < -headroom then begin
      acc_big := Bigint.add !acc_big (Bigint.of_int !acc);
      acc := 0
    end;
    acc := !acc + t
  done;
  let total = Bigint.add !acc_big (Bigint.of_int !acc) in
  of_bigint total

(* Sliding-window signed recoding (the ref10 "slide"): rewrite the bit
   string into digits that are zero or odd with |digit| <= 15, preserving
   sum digit_i * 2^i.  Nonzero digits end up >= 4 apart on average, so a
   scalar multiplication needs ~bits/5 additions against an 8-entry
   odd-multiples table instead of bits/4 against a 16-entry one — the
   wNAF half of the group-layer fast paths. *)
let wnaf_window = 5

let to_wnaf x =
  let b = to_bytes x in
  let r = Array.make 256 0 in
  for i = 0 to 255 do
    r.(i) <- (Char.code (Bytes.get b (i lsr 3)) lsr (i land 7)) land 1
  done;
  for i = 0 to 255 do
    if r.(i) <> 0 then begin
      let b = ref 1 in
      let continue_ = ref true in
      while !continue_ && !b <= 6 && i + !b < 256 do
        (if r.(i + !b) <> 0 then begin
           if r.(i) + (r.(i + !b) lsl !b) <= 15 then begin
             r.(i) <- r.(i) + (r.(i + !b) lsl !b);
             r.(i + !b) <- 0
           end
           else if r.(i) - (r.(i + !b) lsl !b) >= -15 then begin
             r.(i) <- r.(i) - (r.(i + !b) lsl !b);
             (* propagate the borrow-turned-carry upward *)
             let k = ref (i + !b) in
             let carrying = ref true in
             while !carrying && !k < 256 do
               if r.(!k) = 0 then begin
                 r.(!k) <- 1;
                 carrying := false
               end
               else begin
                 r.(!k) <- 0;
                 incr k
               end
             done;
             (* scalars are < 2^253, so the carry always finds a zero bit *)
             assert (not !carrying)
           end
           else continue_ := false
         end);
        incr b
      done
    end
  done;
  r

let pp fmt x = Format.pp_print_string fmt (Bigint.to_string x)
