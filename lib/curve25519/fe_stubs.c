/* C implementation of the ref10 10-limb field multiply/square.
 *
 * This mirrors fe.ml's mul/square + carry chain exactly, with int64_t in
 * place of the 63-bit OCaml int.  Products are summed with exact integer
 * addition, so as long as no intermediate exceeds the 63-bit range the
 * OCaml path stays inside (the ref10 bound: largest intermediate < 2^62),
 * the carried limb outputs are bit-identical to the pure-OCaml path.
 *
 * The stubs are [@@noalloc]: they only read and write immediate (tagged
 * int) fields of pre-allocated float-free arrays, so no caml_modify and
 * no allocation is needed.  Selection happens at runtime via the
 * RISEFL_FE_STUB environment variable or Fe.Backend.set_stub.
 */
#include <stdint.h>
#include <caml/mlvalues.h>

/* ref10 carry chain (fe.ml `carry`): brings limbs back to canonical
   26/25-bit magnitude.  >> on int64_t is an arithmetic shift on every
   compiler we target, matching OCaml's asr. */
static void fe_carry(int64_t h[10])
{
  int64_t c;
  c = (h[0] + ((int64_t)1 << 25)) >> 26; h[1] += c; h[0] -= c << 26;
  c = (h[4] + ((int64_t)1 << 25)) >> 26; h[5] += c; h[4] -= c << 26;
  c = (h[1] + ((int64_t)1 << 24)) >> 25; h[2] += c; h[1] -= c << 25;
  c = (h[5] + ((int64_t)1 << 24)) >> 25; h[6] += c; h[5] -= c << 25;
  c = (h[2] + ((int64_t)1 << 25)) >> 26; h[3] += c; h[2] -= c << 26;
  c = (h[6] + ((int64_t)1 << 25)) >> 26; h[7] += c; h[6] -= c << 26;
  c = (h[3] + ((int64_t)1 << 24)) >> 25; h[4] += c; h[3] -= c << 25;
  c = (h[7] + ((int64_t)1 << 24)) >> 25; h[8] += c; h[7] -= c << 25;
  c = (h[4] + ((int64_t)1 << 25)) >> 26; h[5] += c; h[4] -= c << 26;
  c = (h[8] + ((int64_t)1 << 25)) >> 26; h[9] += c; h[8] -= c << 26;
  c = (h[9] + ((int64_t)1 << 24)) >> 25; h[0] += c * 19; h[9] -= c << 25;
  c = (h[0] + ((int64_t)1 << 25)) >> 26; h[1] += c; h[0] -= c << 26;
}

/* Schoolbook product in radix 25.5.  Limb k of the (uncarried) result is
   sum_{i+j=k (mod 10)} f_i g_j, scaled by 2 when both indices are odd
   (the half-bit of the mixed radix) and by 19 on wrap-around (2^255 = 19
   mod p).  Integer addition is exact, so this equals the hand-scheduled
   ref10 expression in fe.ml term for term, and fe_sq in fe.ml computes
   the very same limb sums — one inner loop serves both entry points. */
static void fe_mul_inner(int64_t h[10], const int64_t f[10], const int64_t g[10])
{
  int i, j;
  for (i = 0; i < 10; i++) h[i] = 0;
  for (i = 0; i < 10; i++) {
    for (j = 0; j < 10; j++) {
      int64_t m = f[i] * g[j];
      if (i & j & 1) m *= 2;
      if (i + j >= 10) m *= 19;
      h[(i + j) % 10] += m;
    }
  }
  fe_carry(h);
}

CAMLprim value risefl_fe_mul(value vh, value vf, value vg)
{
  int64_t f[10], g[10], h[10];
  int i;
  for (i = 0; i < 10; i++) {
    f[i] = Long_val(Field(vf, i));
    g[i] = Long_val(Field(vg, i));
  }
  fe_mul_inner(h, f, g);
  for (i = 0; i < 10; i++) Field(vh, i) = Val_long(h[i]);
  return Val_unit;
}

CAMLprim value risefl_fe_sq(value vh, value vf)
{
  int64_t f[10], h[10];
  int i;
  for (i = 0; i < 10; i++) f[i] = Long_val(Field(vf, i));
  fe_mul_inner(h, f, f);
  for (i = 0; i < 10; i++) Field(vh, i) = Val_long(h[i]);
  return Val_unit;
}
