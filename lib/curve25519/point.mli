(** The prime-order group 𝔾: the order-ℓ subgroup of the twisted Edwards
    curve −x² + y² = 1 + d·x²y² over GF(2^255 − 19) (Ed25519).

    This plays the role of libsodium's Ristretto group in the paper: a
    group of prime order ℓ ≈ 2^252 where the discrete-logarithm problem is
    hard (≈126-bit security). Points are kept in extended homogeneous
    coordinates (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.

    All points constructed through this interface lie in the prime-order
    subgroup; [decompress] validates untrusted encodings (on-curve,
    canonical, and subgroup membership). *)

type t

(** The neutral element. *)
val identity : t

(** The standard Ed25519 base point B (order ℓ). *)
val base : t

val add : t -> t -> t
val sub : t -> t -> t
val double : t -> t
val neg : t -> t

(** [equal p q] — projective-coordinate–independent equality. *)
val equal : t -> t -> bool

val is_identity : t -> bool

(** [mul s p] is the scalar multiple [s]·[p] (sliding-window wNAF:
    signed odd digits against an 8-entry odd-multiples precompute). *)
val mul : Scalar.t -> t -> t

(** {2 Mixed-affine (Niels) fast path}

    A point with z = 1 stored as (y+x, y−x, 2d·t): adding one to an
    extended point ({!madd}) costs 7 field multiplications instead of 9.
    The MSM bucket loop and the fixed-base tables batch-convert their
    inputs to this form through a single Montgomery inversion
    ({!to_niels_batch}) and do all their additions as madds. The results
    are the same group elements as the extended-coordinates path —
    compressed encodings, proofs and verdicts are bit-identical. *)

type niels

(** [madd p n] — mixed addition; the same group element as [add p q]
    where [q] is the point [n] denotes. *)
val madd : t -> niels -> t

(** [msub p n] = [madd p (−n)] (negating a Niels point is free: swap the
    sums and negate the t-product). *)
val msub : t -> niels -> t

(** [to_niels_batch ps] — convert many points with one shared field
    inversion. Identity points convert fine (z is never 0). *)
val to_niels_batch : t array -> niels array

(** [mul_small n p] is [n]·[p] for a native-int scalar of either sign —
    much faster than {!mul} for short exponents (e.g. 16-bit gradient
    coordinates). *)
val mul_small : int -> t -> t

(** [mul_base s] is [s]·B using a precomputed fixed-base table. *)
val mul_base : Scalar.t -> t

(** [double_mul s p t q] is [s·p + t·q] (used all over commitment
    generation: g^x · h^r). *)
val double_mul : Scalar.t -> t -> Scalar.t -> t -> t

(** A precomputed fixed-base table for an arbitrary base point: 64
    windows of the 8 multiples (k+1)·16^w·P in Niels form, driven by a
    signed base-16 recoding (digits in [−8, 7]), so a multiplication is
    at most 64 {!madd}s. *)
module Table : sig
  type table

  (** [make p] builds a table making repeated [mul] on [p] ~4x faster. *)
  val make : t -> table

  val mul : table -> Scalar.t -> t

  (** [mul_small tbl n] for native-int exponents of either sign. *)
  val mul_small : table -> int -> t

  (** Serialized size in bytes (fixed: a 8-byte header plus 64·8 Niels
      triples of canonical 32-byte field encodings). *)
  val serialized_size : int

  (** Canonical serialization for the persistent table cache. The bytes
      are identical whether the table was freshly built or loaded from
      cache. *)
  val to_bytes : table -> Bytes.t

  (** [of_bytes ~base b] — parse a serialized table. Returns [None] on
      any structural mismatch (length, magic, geometry) or if the first
      entry does not denote [base]. Integrity (checksums) and cache
      keying are the caller's job ({!Store.Cache} frames blobs with a
      CRC); this function never raises. *)
  val of_bytes : base:t -> Bytes.t -> table option
end

(** 32-byte compressed encoding (canonical y with sign-of-x bit). *)
val compress : t -> Bytes.t

(** [compress_batch ps] compresses many points with one shared field
    inversion (Montgomery batching) — much faster than mapping
    {!compress} when [ps] is large (BSGS decoding, table hashing). *)
val compress_batch : t array -> Bytes.t array

(** Decode and fully validate an untrusted encoding: canonical field
    element, on-curve, and in the prime-order subgroup. Returns [None] on
    any failure.

    Totality invariant: both decoders are total on arbitrary byte strings
    (any length, any contents) — they return [None] and never raise. The
    wire layer relies on this to keep hostile frames from crashing the
    receiver. *)
val decompress : Bytes.t -> t option

(** Decode without the (expensive) subgroup check — for trusted inputs
    such as locally generated tables. Still checks on-curve + canonical. *)
val decompress_unchecked : Bytes.t -> t option

(** Affine coordinates (x, y) — mostly for tests. *)
val to_affine : t -> Fe.t * Fe.t

val pp : Format.formatter -> t -> unit
