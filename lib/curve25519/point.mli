(** The prime-order group 𝔾: the order-ℓ subgroup of the twisted Edwards
    curve −x² + y² = 1 + d·x²y² over GF(2^255 − 19) (Ed25519).

    This plays the role of libsodium's Ristretto group in the paper: a
    group of prime order ℓ ≈ 2^252 where the discrete-logarithm problem is
    hard (≈126-bit security). Points are kept in extended homogeneous
    coordinates (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.

    All points constructed through this interface lie in the prime-order
    subgroup; [decompress] validates untrusted encodings (on-curve,
    canonical, and subgroup membership). *)

type t

(** The neutral element. *)
val identity : t

(** The standard Ed25519 base point B (order ℓ). *)
val base : t

val add : t -> t -> t
val sub : t -> t -> t
val double : t -> t
val neg : t -> t

(** [equal p q] — projective-coordinate–independent equality. *)
val equal : t -> t -> bool

val is_identity : t -> bool

(** [mul s p] is the scalar multiple [s]·[p] (4-bit windowed). *)
val mul : Scalar.t -> t -> t

(** [mul_small n p] is [n]·[p] for a native-int scalar of either sign —
    much faster than {!mul} for short exponents (e.g. 16-bit gradient
    coordinates). *)
val mul_small : int -> t -> t

(** [mul_base s] is [s]·B using a precomputed fixed-base table. *)
val mul_base : Scalar.t -> t

(** [double_mul s p t q] is [s·p + t·q] (used all over commitment
    generation: g^x · h^r). *)
val double_mul : Scalar.t -> t -> Scalar.t -> t -> t

(** A precomputed fixed-base table for an arbitrary base point. *)
module Table : sig
  type table

  (** [make p] builds a table making repeated [mul] on [p] ~4x faster. *)
  val make : t -> table

  val mul : table -> Scalar.t -> t

  (** [mul_small tbl n] for native-int exponents of either sign. *)
  val mul_small : table -> int -> t
end

(** 32-byte compressed encoding (canonical y with sign-of-x bit). *)
val compress : t -> Bytes.t

(** [compress_batch ps] compresses many points with one shared field
    inversion (Montgomery batching) — much faster than mapping
    {!compress} when [ps] is large (BSGS decoding, table hashing). *)
val compress_batch : t array -> Bytes.t array

(** Decode and fully validate an untrusted encoding: canonical field
    element, on-curve, and in the prime-order subgroup. Returns [None] on
    any failure.

    Totality invariant: both decoders are total on arbitrary byte strings
    (any length, any contents) — they return [None] and never raise. The
    wire layer relies on this to keep hostile frames from crashing the
    receiver. *)
val decompress : Bytes.t -> t option

(** Decode without the (expensive) subgroup check — for trusted inputs
    such as locally generated tables. Still checks on-curve + canonical. *)
val decompress_unchecked : Bytes.t -> t option

(** Affine coordinates (x, y) — mostly for tests. *)
val to_affine : t -> Fe.t * Fe.t

val pp : Format.formatter -> t -> unit
