(** Nothing-up-my-sleeve generator derivation.

    The protocol needs many independent group elements — g, q, and one
    w_l per model coordinate (§4.2) — whose mutual discrete logarithms
    nobody knows. We derive them by hashing a domain-separated label to a
    candidate y-coordinate, decompressing, and clearing the cofactor;
    failures (≈ half the candidates) bump a retry counter. *)

(** [derive label] — a generator determined entirely by [label]. *)
val derive : string -> Point.t

(** [derive_many label n] — [n] independent generators
    ([label]/0 … [label]/n−1). *)
val derive_many : string -> int -> Point.t array
