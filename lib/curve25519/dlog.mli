(** Baby-step giant-step discrete logarithm for short exponents.

    The secure-aggregation step (Eqn 7 of the paper) leaves the server
    with g^{u_l} where u_l is a sum of n fixed-point updates, so
    |u_l| < 2^(b + log2 n + 1) — around 24 bits in the paper's setting.
    BSGS recovers it in O(2^(bits/2)) with a precomputed baby table. *)

type t

(** [create ~base ~max_abs] builds a solver for exponents in
    [-max_abs, max_abs]. Table size ≈ sqrt(2·max_abs + 1) group elements. *)
val create : base:Point.t -> max_abs:int -> t

(** [solve t p] finds x with x·base = p, |x| <= max_abs, or [None]. *)
val solve : t -> Point.t -> int option

(** [solve_many t ps] solves all targets together, sharing one
    Montgomery-batched compression per giant step — the aggregation
    decoder's d coordinates cost ~30x less this way. *)
val solve_many : t -> Point.t array -> int option array

(** [solve_exn t p] — @raise Not_found when out of range. *)
val solve_exn : t -> Point.t -> int
