(** Baby-step giant-step discrete logarithm for short exponents.

    The secure-aggregation step (Eqn 7 of the paper) leaves the server
    with g^{u_l} where u_l is a sum of n fixed-point updates, so
    |u_l| < 2^(b + log2 n + 1) — around 24 bits in the paper's setting.
    BSGS recovers it in O(2^(bits/2)) with a precomputed baby table.

    Giant steps run center-out: aggregates of n zero-centered updates
    concentrate near 0, so probing the middle stride first finds typical
    targets in a handful of rounds instead of ~sqrt(range)/2. Each hit
    pins the exponent uniquely, so probe order never changes results. *)

type t

(** [create ?jobs ?m_scale ~base ~max_abs ()] builds a solver for
    exponents in [-max_abs, max_abs]. The baby table holds
    m = ceil(sqrt(2·max_abs + 1) · m_scale) group elements (clamped to
    [1, range]); [m_scale] (default 1.0) is the time/memory knob —
    larger tables mean fewer giant steps per solve. The build is chunked
    over the worker pool; the table contents are identical at every job
    count. *)
val create : ?jobs:int -> ?m_scale:float -> base:Point.t -> max_abs:int -> unit -> t

(** [solve t p] finds x with x·base = p, |x| <= max_abs, or [None]. *)
val solve : t -> Point.t -> int option

(** [solve_many t ps] solves all targets together: each giant-step round
    advances every unsolved target's two frontiers and compresses all
    probe points with per-chunk Montgomery batching over the worker
    pool — the aggregation decoder's d coordinates cost ~30x less than
    solving one-by-one. Results are independent of [jobs]. *)
val solve_many : ?jobs:int -> t -> Point.t array -> int option array

(** [solve_exn t p] — @raise Not_found when out of range. *)
val solve_exn : t -> Point.t -> int

(** Exponent bound the solver was built for. *)
val max_abs : t -> int

(** Number of baby-table entries m (exposed for cache keys and tests). *)
val table_size : t -> int

(** {2 Serialization (persistent table cache)}

    The serialized form carries the baby-table keys — the part that costs
    m group additions + compressions to rebuild. Everything else is
    recomputed from [base] on load in O(log max_abs) group operations.
    Framing integrity (CRC) and cache keying belong to the caller. *)

(** Canonical bytes: identical whether the solver was freshly built or
    loaded, for any fixed (base, max_abs, m). *)
val to_bytes : t -> Bytes.t

(** [of_bytes ~base b] — [None] on any structural mismatch (magic,
    length, geometry) or if the table's identity entry is wrong; never
    raises. The caller must pass the same [base] the table was built
    for (validated via the j=0 entry only; a wrong base with a correct
    identity entry is caught by the cache key, not here). *)
val of_bytes : base:Point.t -> Bytes.t -> t option
