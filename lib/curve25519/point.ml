(* Ed25519 group operations in extended homogeneous coordinates,
   following the RFC 8032 formulas (complete for a = -1). *)

type t = { x : Fe.t; y : Fe.t; z : Fe.t; t : Fe.t }

let identity = { x = Fe.zero; y = Fe.one; z = Fe.one; t = Fe.zero }

let c_add = Telemetry.Counter.make "point.add"
let c_double = Telemetry.Counter.make "point.double"
let c_scalarmul = Telemetry.Counter.make "point.scalarmul"

let add p q =
  Telemetry.Counter.incr c_add;
  let a = Fe.mul (Fe.sub p.y p.x) (Fe.sub q.y q.x) in
  let b = Fe.mul (Fe.add p.y p.x) (Fe.add q.y q.x) in
  let c = Fe.mul (Fe.mul p.t Fe.edwards_d2) q.t in
  let d = Fe.mul (Fe.add p.z p.z) q.z in
  let e = Fe.sub b a in
  let f = Fe.sub d c in
  let g = Fe.add d c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; z = Fe.mul f g; t = Fe.mul e h }

let double p =
  Telemetry.Counter.incr c_double;
  let a = Fe.square p.x in
  let b = Fe.square p.y in
  let c = Fe.mul_small (Fe.square p.z) 2 in
  let h = Fe.add a b in
  let e = Fe.sub h (Fe.square (Fe.add p.x p.y)) in
  let g = Fe.sub a b in
  let f = Fe.add c g in
  { x = Fe.mul e f; y = Fe.mul g h; z = Fe.mul f g; t = Fe.mul e h }

let neg p = { p with x = Fe.neg p.x; t = Fe.neg p.t }
let sub p q = add p (neg q)

(* --- mixed-affine ("Niels") form ---

   A point with z = 1 stored as (y+x, y−x, 2d·t).  Adding such a point to
   an extended point costs 7 field muls instead of 9 (the z-product and
   the d2 scaling are pre-absorbed), which is where the batched-affine
   Pippenger win comes from: all MSM inputs and all fixed-base table
   entries are flushed to this form through one Montgomery inversion
   pass, and every bucket/table addition thereafter is a cheap madd. *)

type niels = { yplusx : Fe.t; yminusx : Fe.t; td2 : Fe.t }

let c_madd = Telemetry.Counter.make "point.madd"
let c_niels_batches = Telemetry.Counter.make "point.niels.batches"
let c_niels_points = Telemetry.Counter.make "point.niels.points"

(* madd: same complete a=-1 formulas as [add] specialized to q.z = 1,
   with q's (y±x) and 2d·t precomputed — bit-for-bit the same group
   element as [add p q]. Counted under point.add (it is one) and
   point.madd (for the fast-path breakdown). *)
let madd p n =
  Telemetry.Counter.incr c_add;
  Telemetry.Counter.incr c_madd;
  let a = Fe.mul (Fe.sub p.y p.x) n.yminusx in
  let b = Fe.mul (Fe.add p.y p.x) n.yplusx in
  let c = Fe.mul p.t n.td2 in
  let d = Fe.add p.z p.z in
  let e = Fe.sub b a in
  let f = Fe.sub d c in
  let g = Fe.add d c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; z = Fe.mul f g; t = Fe.mul e h }

let msub p n = madd p { yplusx = n.yminusx; yminusx = n.yplusx; td2 = Fe.neg n.td2 }

let to_niels_batch ps =
  Telemetry.Counter.incr c_niels_batches;
  Telemetry.Counter.add c_niels_points (Array.length ps);
  let zinvs = Fe.invert_batch (Array.map (fun p -> p.z) ps) in
  Array.mapi
    (fun i p ->
      let x = Fe.mul p.x zinvs.(i) in
      let y = Fe.mul p.y zinvs.(i) in
      { yplusx = Fe.add y x; yminusx = Fe.sub y x; td2 = Fe.mul (Fe.mul x y) Fe.edwards_d2 })
    ps

let equal p q =
  (* x1/z1 = x2/z2 and y1/z1 = y2/z2 *)
  Fe.equal (Fe.mul p.x q.z) (Fe.mul q.x p.z) && Fe.equal (Fe.mul p.y q.z) (Fe.mul q.y p.z)

let is_identity p = Fe.is_zero p.x && Fe.equal p.y p.z

(* --- compression --- *)

let compress p =
  let zinv = Fe.invert p.z in
  let x = Fe.mul p.x zinv in
  let y = Fe.mul p.y zinv in
  let b = Fe.to_bytes y in
  if Fe.is_negative x then Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
  b

let compress_batch ps =
  let zinvs = Fe.invert_batch (Array.map (fun p -> p.z) ps) in
  Array.mapi
    (fun i p ->
      let x = Fe.mul p.x zinvs.(i) in
      let y = Fe.mul p.y zinvs.(i) in
      let b = Fe.to_bytes y in
      if Fe.is_negative x then Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
      b)
    ps

let to_affine p =
  let zinv = Fe.invert p.z in
  (Fe.mul p.x zinv, Fe.mul p.y zinv)

(* Recover x from y: x^2 = (y^2 - 1) / (d y^2 + 1).  RFC 8032 §5.1.3. *)
let recover_x y sign =
  let y2 = Fe.square y in
  let u = Fe.sub y2 Fe.one in
  let v = Fe.add (Fe.mul Fe.edwards_d y2) Fe.one in
  (* candidate root: x = u v^3 (u v^7)^((p-5)/8) *)
  let v3 = Fe.mul (Fe.square v) v in
  let v7 = Fe.mul (Fe.square v3) v in
  let x = Fe.mul (Fe.mul u v3) (Fe.pow_p58 (Fe.mul u v7)) in
  let vx2 = Fe.mul v (Fe.square x) in
  let x =
    if Fe.equal vx2 u then Some x
    else if Fe.equal vx2 (Fe.neg u) then Some (Fe.mul x Fe.sqrt_m1)
    else None
  in
  match x with
  | None -> None
  | Some x ->
      if Fe.is_zero x && sign then None (* -0 is invalid *)
      else Some (if Fe.is_negative x <> sign then Fe.neg x else x)

let decompress_unchecked b =
  if Bytes.length b <> 32 then None
  else begin
    let sign = Char.code (Bytes.get b 31) land 0x80 <> 0 in
    let yb = Bytes.copy b in
    Bytes.set yb 31 (Char.chr (Char.code (Bytes.get yb 31) land 0x7f));
    let y = Fe.of_bytes yb in
    (* reject non-canonical y (>= p) *)
    if not (Bytes.equal (Fe.to_bytes y) yb) then None
    else
      match recover_x y sign with
      | None -> None
      | Some x -> Some { x; y; z = Fe.one; t = Fe.mul x y }
  end

(* --- scalar multiplication --- *)

(* Variable-base multiplication uses sliding-window wNAF recoding
   (Scalar.to_wnaf): digits are zero or odd with |d| <= 15, so the
   precompute is the 8 odd multiples {P, 3P, ..., 15P} and the main loop
   averages one addition per ~5 doublings — about 2/3 the additions of
   the old 4-bit unsigned windows with half the table build.  Everything
   is vartime; this is a research prototype, not a signing library. *)

let mul_digits digits table_p =
  (* digits little-endian; process from the top *)
  let acc = ref identity in
  for i = Array.length digits - 1 downto 0 do
    if i < Array.length digits - 1 then begin
      acc := double !acc;
      acc := double !acc;
      acc := double !acc;
      acc := double !acc
    end;
    let d = digits.(i) in
    if d <> 0 then acc := add !acc table_p.(d)
  done;
  !acc

let small_table p =
  let tbl = Array.make 16 identity in
  tbl.(1) <- p;
  for i = 2 to 15 do
    tbl.(i) <- add tbl.(i - 1) p
  done;
  tbl

(* odd multiples [| P; 3P; 5P; ...; 15P |]: digit d indexes (|d|-1)/2 *)
let odd_multiples p =
  let tbl = Array.make 8 p in
  let p2 = double p in
  for i = 1 to 7 do
    tbl.(i) <- add tbl.(i - 1) p2
  done;
  tbl

let c_wnaf_width = Telemetry.Counter.make "point.wnaf.width"

let mul s p =
  Telemetry.Counter.incr c_scalarmul;
  Telemetry.Counter.add c_wnaf_width Scalar.wnaf_window;
  let digits = Scalar.to_wnaf s in
  let top = ref (Array.length digits - 1) in
  while !top >= 0 && digits.(!top) = 0 do
    decr top
  done;
  if !top < 0 then identity
  else begin
    let tbl = odd_multiples p in
    let d0 = digits.(!top) in
    let acc = ref (if d0 > 0 then tbl.((d0 - 1) / 2) else neg tbl.(((-d0) - 1) / 2)) in
    for i = !top - 1 downto 0 do
      acc := double !acc;
      let d = digits.(i) in
      if d > 0 then acc := add !acc tbl.((d - 1) / 2)
      else if d < 0 then acc := sub !acc tbl.(((-d) - 1) / 2)
    done;
    !acc
  end

let mul_small n p =
  Telemetry.Counter.incr c_scalarmul;
  if n = 0 then identity
  else begin
    let p = if n < 0 then neg p else p in
    let n = abs n in
    let tbl = small_table p in
    let nbits =
      let rec w acc v = if v = 0 then acc else w (acc + 1) (v lsr 1) in
      w 0 n
    in
    let digits = Array.init ((nbits + 3) / 4) (fun i -> (n lsr (4 * i)) land 0xf) in
    mul_digits digits tbl
  end

(* --- fixed-base tables --- *)

module Table = struct
  (* tbl.win.(w).(k) = (k+1) * 16^w * P  for w in [0, 63], k in [0, 8),
     held in precomputed mixed-affine (Niels) form.  Scalars are recoded
     into signed base-16 digits in [-8, 7], so one multiplication is
     <= 64 cheap madds against an 8-entry-per-window table — half the
     entries (and half the build work) of the old unsigned layout. *)
  type table = { win : niels array array }

  let windows = 64
  let entries = 8

  let make p =
    (* build time is a span, not a counter: counters must be jobs-invariant *)
    Telemetry.Span.with_ "point.table.build" @@ fun () ->
    let ext = Array.make (windows * entries) identity in
    let base = ref p in
    for w = 0 to windows - 1 do
      let e1 = !base in
      ext.(w * entries) <- e1;
      let acc = ref (double e1) in
      ext.((w * entries) + 1) <- !acc;
      for k = 2 to entries - 1 do
        acc := add !acc e1;
        ext.((w * entries) + k) <- !acc
      done;
      if w < windows - 1 then begin
        let b = ref !base in
        for _ = 1 to 4 do
          b := double !b
        done;
        base := !b
      end
    done;
    (* one Montgomery pass flushes all 512 entries to affine Niels form *)
    let nls = to_niels_batch ext in
    let win = Array.init windows (fun w -> Array.sub nls (w * entries) entries) in
    ignore p;
    { win }

  (* signed base-16 recoding: digits in [-8, 7] with carry; scalars are
     < 2^253 so the top window digit is at most 2 and never carries out *)
  let signed_digits e =
    let raw = Bigint.to_digits ~bits:4 ~count:windows e in
    let out = Array.make windows 0 in
    let carry = ref 0 in
    for w = 0 to windows - 1 do
      let d = raw.(w) + !carry in
      if d >= 8 then begin
        out.(w) <- d - 16;
        carry := 1
      end
      else begin
        out.(w) <- d;
        carry := 0
      end
    done;
    assert (!carry = 0);
    out

  let mul tbl s =
    Telemetry.Counter.incr c_scalarmul;
    let digits = signed_digits (Scalar.to_bigint s) in
    let acc = ref identity in
    for w = 0 to windows - 1 do
      let d = digits.(w) in
      if d > 0 then acc := madd !acc tbl.win.(w).(d - 1)
      else if d < 0 then acc := msub !acc tbl.win.(w).((-d) - 1)
    done;
    !acc

  let mul_small tbl n =
    Telemetry.Counter.incr c_scalarmul;
    if n = 0 then identity
    else if n = min_int then invalid_arg "Table.mul_small: exponent out of range"
    else begin
      let negp = n < 0 in
      let acc = ref identity in
      let w = ref 0 in
      let v = ref (abs n) in
      while !v <> 0 do
        let d0 = !v land 0xf in
        let d = if d0 >= 8 then d0 - 16 else d0 in
        if d > 0 then acc := madd !acc tbl.win.(!w).(d - 1)
        else if d < 0 then acc := msub !acc tbl.win.(!w).((-d) - 1);
        v := (!v - d) asr 4;
        incr w
      done;
      if negp then neg !acc else !acc
    end

  (* --- serialization (for the persistent table cache) ---

     Layout: "RTB2" | u8 windows | u8 entries | 2 zero bytes, then
     windows*entries Niels triples (y+x, y-x, 2d*t), each a canonical
     32-byte field encoding.  Canonical encodings make the serialized
     form identical whether the table was freshly built or cache-loaded.
     Integrity (CRC) and keying (base-point compress + params) are the
     cache layer's job; [of_bytes] validates the structure and that
     entry (0,0) really is [base]. *)

  let magic = "RTB2"
  let serialized_size = 8 + (windows * entries * 96)

  let inv_two = lazy (Fe.invert (Fe.of_int 2))

  let to_bytes tbl =
    let buf = Bytes.make serialized_size '\000' in
    Bytes.blit_string magic 0 buf 0 4;
    Bytes.set buf 4 (Char.chr windows);
    Bytes.set buf 5 (Char.chr entries);
    let off = ref 8 in
    Array.iter
      (fun row ->
        Array.iter
          (fun n ->
            Bytes.blit (Fe.to_bytes n.yplusx) 0 buf !off 32;
            Bytes.blit (Fe.to_bytes n.yminusx) 0 buf (!off + 32) 32;
            Bytes.blit (Fe.to_bytes n.td2) 0 buf (!off + 64) 32;
            off := !off + 96)
          row)
      tbl.win;
    buf

  (* reconstruct the extended point a Niels entry denotes *)
  let point_of_niels n =
    let half = Lazy.force inv_two in
    let x = Fe.mul (Fe.sub n.yplusx n.yminusx) half in
    let y = Fe.mul (Fe.add n.yplusx n.yminusx) half in
    { x; y; z = Fe.one; t = Fe.mul x y }

  let of_bytes ~base b =
    if Bytes.length b <> serialized_size then None
    else if not (String.equal (Bytes.sub_string b 0 4) magic) then None
    else if Char.code (Bytes.get b 4) <> windows || Char.code (Bytes.get b 5) <> entries then
      None
    else begin
      let win =
        Array.init windows (fun w ->
            Array.init entries (fun k ->
                let off = 8 + (((w * entries) + k) * 96) in
                let fe j = Fe.of_bytes (Bytes.sub b (off + (32 * j)) 32) in
                { yplusx = fe 0; yminusx = fe 1; td2 = fe 2 }))
      in
      let tbl = { win } in
      (* the cheap semantic check: the (0,0) entry must denote the base
         point itself (guards against a cache entry for the wrong base
         slipping past the key) *)
      if equal (point_of_niels win.(0).(0)) base then Some tbl else None
    end
end

(* --- base point --- *)

let base =
  (* canonical compressed encoding of B = (x, 4/5) with x "even" *)
  let enc = Bytes.make 32 '\x66' in
  Bytes.set enc 0 '\x58';
  match decompress_unchecked enc with
  | Some p -> p
  | None -> assert false

(* eager: a concurrent Lazy.force from two domains raises; building the
   table at module init (~1k additions) keeps mul_base domain-safe *)
let base_table = Table.make base

let mul_base s = Table.mul base_table s

(* Strauss–Shamir interleaving: one shared wNAF doubling chain for both
   scalars, ~1.5x faster than two independent multiplications.  This is
   the hot path of every Sigma-protocol verification and every IPA fold. *)
let double_mul s p t q =
  let es = Scalar.to_bigint s and et = Scalar.to_bigint t in
  if Bigint.is_zero es then mul t q
  else if Bigint.is_zero et then mul s p
  else begin
    Telemetry.Counter.add c_scalarmul 2;
    Telemetry.Counter.add c_wnaf_width (2 * Scalar.wnaf_window);
    let dss = Scalar.to_wnaf s and dts = Scalar.to_wnaf t in
    let tp = odd_multiples p and tq = odd_multiples q in
    let top = ref 255 in
    while !top >= 0 && dss.(!top) = 0 && dts.(!top) = 0 do
      decr top
    done;
    let acc = ref identity in
    for i = !top downto 0 do
      if i < !top then acc := double !acc;
      let ds = dss.(i) in
      if ds > 0 then acc := add !acc tp.((ds - 1) / 2)
      else if ds < 0 then acc := sub !acc tp.(((-ds) - 1) / 2);
      let dt = dts.(i) in
      if dt > 0 then acc := add !acc tq.((dt - 1) / 2)
      else if dt < 0 then acc := sub !acc tq.(((-dt) - 1) / 2)
    done;
    !acc
  end

(* subgroup check needs mul, so it comes last *)
let decompress b =
  match decompress_unchecked b with
  | None -> None
  | Some p ->
      (* multiplication by the group order must give the identity *)
      if is_identity (mul (Scalar.of_bigint (Bigint.sub Scalar.order Bigint.one)) p |> add p) then Some p
      else None

let pp fmt p =
  let b = compress p in
  let buf = Buffer.create 64 in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Format.pp_print_string fmt (Buffer.contents buf)
