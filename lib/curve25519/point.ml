(* Ed25519 group operations in extended homogeneous coordinates,
   following the RFC 8032 formulas (complete for a = -1). *)

type t = { x : Fe.t; y : Fe.t; z : Fe.t; t : Fe.t }

let identity = { x = Fe.zero; y = Fe.one; z = Fe.one; t = Fe.zero }

let c_add = Telemetry.Counter.make "point.add"
let c_double = Telemetry.Counter.make "point.double"
let c_scalarmul = Telemetry.Counter.make "point.scalarmul"

let add p q =
  Telemetry.Counter.incr c_add;
  let a = Fe.mul (Fe.sub p.y p.x) (Fe.sub q.y q.x) in
  let b = Fe.mul (Fe.add p.y p.x) (Fe.add q.y q.x) in
  let c = Fe.mul (Fe.mul p.t Fe.edwards_d2) q.t in
  let d = Fe.mul (Fe.add p.z p.z) q.z in
  let e = Fe.sub b a in
  let f = Fe.sub d c in
  let g = Fe.add d c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; z = Fe.mul f g; t = Fe.mul e h }

let double p =
  Telemetry.Counter.incr c_double;
  let a = Fe.square p.x in
  let b = Fe.square p.y in
  let c = Fe.mul_small (Fe.square p.z) 2 in
  let h = Fe.add a b in
  let e = Fe.sub h (Fe.square (Fe.add p.x p.y)) in
  let g = Fe.sub a b in
  let f = Fe.add c g in
  { x = Fe.mul e f; y = Fe.mul g h; z = Fe.mul f g; t = Fe.mul e h }

let neg p = { p with x = Fe.neg p.x; t = Fe.neg p.t }
let sub p q = add p (neg q)

let equal p q =
  (* x1/z1 = x2/z2 and y1/z1 = y2/z2 *)
  Fe.equal (Fe.mul p.x q.z) (Fe.mul q.x p.z) && Fe.equal (Fe.mul p.y q.z) (Fe.mul q.y p.z)

let is_identity p = Fe.is_zero p.x && Fe.equal p.y p.z

(* --- compression --- *)

let compress p =
  let zinv = Fe.invert p.z in
  let x = Fe.mul p.x zinv in
  let y = Fe.mul p.y zinv in
  let b = Fe.to_bytes y in
  if Fe.is_negative x then Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
  b

let compress_batch ps =
  let zinvs = Fe.invert_batch (Array.map (fun p -> p.z) ps) in
  Array.mapi
    (fun i p ->
      let x = Fe.mul p.x zinvs.(i) in
      let y = Fe.mul p.y zinvs.(i) in
      let b = Fe.to_bytes y in
      if Fe.is_negative x then Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
      b)
    ps

let to_affine p =
  let zinv = Fe.invert p.z in
  (Fe.mul p.x zinv, Fe.mul p.y zinv)

(* Recover x from y: x^2 = (y^2 - 1) / (d y^2 + 1).  RFC 8032 §5.1.3. *)
let recover_x y sign =
  let y2 = Fe.square y in
  let u = Fe.sub y2 Fe.one in
  let v = Fe.add (Fe.mul Fe.edwards_d y2) Fe.one in
  (* candidate root: x = u v^3 (u v^7)^((p-5)/8) *)
  let v3 = Fe.mul (Fe.square v) v in
  let v7 = Fe.mul (Fe.square v3) v in
  let x = Fe.mul (Fe.mul u v3) (Fe.pow_p58 (Fe.mul u v7)) in
  let vx2 = Fe.mul v (Fe.square x) in
  let x =
    if Fe.equal vx2 u then Some x
    else if Fe.equal vx2 (Fe.neg u) then Some (Fe.mul x Fe.sqrt_m1)
    else None
  in
  match x with
  | None -> None
  | Some x ->
      if Fe.is_zero x && sign then None (* -0 is invalid *)
      else Some (if Fe.is_negative x <> sign then Fe.neg x else x)

let decompress_unchecked b =
  if Bytes.length b <> 32 then None
  else begin
    let sign = Char.code (Bytes.get b 31) land 0x80 <> 0 in
    let yb = Bytes.copy b in
    Bytes.set yb 31 (Char.chr (Char.code (Bytes.get yb 31) land 0x7f));
    let y = Fe.of_bytes yb in
    (* reject non-canonical y (>= p) *)
    if not (Bytes.equal (Fe.to_bytes y) yb) then None
    else
      match recover_x y sign with
      | None -> None
      | Some x -> Some { x; y; z = Fe.one; t = Fe.mul x y }
  end

(* --- scalar multiplication --- *)

(* 4-bit signed windows would need constant-time tricks we don't require;
   plain 4-bit unsigned windows are fine for a research prototype. *)

(* little-endian 4-bit digits, one limb pass (shared with Msm via
   Bigint.to_digits) *)
let window_digits_of_bigint e nbits = Bigint.to_digits ~bits:4 ~count:((nbits + 3) / 4) e

let mul_digits digits table_p =
  (* digits little-endian; process from the top *)
  let acc = ref identity in
  for i = Array.length digits - 1 downto 0 do
    if i < Array.length digits - 1 then begin
      acc := double !acc;
      acc := double !acc;
      acc := double !acc;
      acc := double !acc
    end;
    let d = digits.(i) in
    if d <> 0 then acc := add !acc table_p.(d)
  done;
  !acc

let small_table p =
  let tbl = Array.make 16 identity in
  tbl.(1) <- p;
  for i = 2 to 15 do
    tbl.(i) <- add tbl.(i - 1) p
  done;
  tbl

let mul s p =
  Telemetry.Counter.incr c_scalarmul;
  let e = Scalar.to_bigint s in
  if Bigint.is_zero e then identity
  else mul_digits (window_digits_of_bigint e (Bigint.bit_length e)) (small_table p)

let mul_small n p =
  Telemetry.Counter.incr c_scalarmul;
  if n = 0 then identity
  else begin
    let p = if n < 0 then neg p else p in
    let n = abs n in
    let tbl = small_table p in
    let nbits =
      let rec w acc v = if v = 0 then acc else w (acc + 1) (v lsr 1) in
      w 0 n
    in
    let digits = Array.init ((nbits + 3) / 4) (fun i -> (n lsr (4 * i)) land 0xf) in
    mul_digits digits tbl
  end

(* --- fixed-base tables --- *)

module Table = struct
  (* tbl.(w).(d) = d * 16^w * P  for w in [0, 63], d in [0, 15].
     A multiplication is then just <= 64 point additions. *)
  type table = t array array

  let windows = 64

  let make p =
    let tbl = Array.make windows [||] in
    let base = ref p in
    for w = 0 to windows - 1 do
      tbl.(w) <- small_table !base;
      if w < windows - 1 then begin
        let b = ref !base in
        for _ = 1 to 4 do
          b := double !b
        done;
        base := !b
      end
    done;
    tbl

  let mul tbl s =
    Telemetry.Counter.incr c_scalarmul;
    let e = Scalar.to_bigint s in
    let digits = window_digits_of_bigint e 256 in
    let acc = ref identity in
    Array.iteri (fun w d -> if d <> 0 && w < windows then acc := add !acc tbl.(w).(d)) digits;
    !acc

  let mul_small tbl n =
    Telemetry.Counter.incr c_scalarmul;
    if n = 0 then identity
    else begin
      let negp = n < 0 in
      let n = abs n in
      let acc = ref identity in
      let w = ref 0 in
      let v = ref n in
      while !v <> 0 do
        let d = !v land 0xf in
        if d <> 0 then acc := add !acc tbl.(!w).(d);
        v := !v lsr 4;
        incr w
      done;
      if negp then neg !acc else !acc
    end
end

(* --- base point --- *)

let base =
  (* canonical compressed encoding of B = (x, 4/5) with x "even" *)
  let enc = Bytes.make 32 '\x66' in
  Bytes.set enc 0 '\x58';
  match decompress_unchecked enc with
  | Some p -> p
  | None -> assert false

(* eager: a concurrent Lazy.force from two domains raises; building the
   table at module init (~1k additions) keeps mul_base domain-safe *)
let base_table = Table.make base

let mul_base s = Table.mul base_table s

(* Strauss–Shamir interleaving: one shared doubling chain for both
   scalars, ~1.5x faster than two independent multiplications.  This is
   the hot path of every Sigma-protocol verification and every IPA fold. *)
let double_mul s p t q =
  let es = Scalar.to_bigint s and et = Scalar.to_bigint t in
  if Bigint.is_zero es then mul t q
  else if Bigint.is_zero et then mul s p
  else begin
    Telemetry.Counter.add c_scalarmul 2;
    let tp = small_table p and tq = small_table q in
    let nbits = Stdlib.max (Bigint.bit_length es) (Bigint.bit_length et) in
    let nd = (nbits + 3) / 4 in
    let dss = window_digits_of_bigint es nbits and dts = window_digits_of_bigint et nbits in
    let acc = ref identity in
    for i = nd - 1 downto 0 do
      if i < nd - 1 then begin
        acc := double !acc;
        acc := double !acc;
        acc := double !acc;
        acc := double !acc
      end;
      let ds = dss.(i) and dt = dts.(i) in
      if ds <> 0 then acc := add !acc tp.(ds);
      if dt <> 0 then acc := add !acc tq.(dt)
    done;
    !acc
  end

(* subgroup check needs mul, so it comes last *)
let decompress b =
  match decompress_unchecked b with
  | None -> None
  | Some p ->
      (* multiplication by the group order must give the identity *)
      if is_identity (mul (Scalar.of_bigint (Bigint.sub Scalar.order Bigint.one)) p |> add p) then Some p
      else None

let pp fmt p =
  let b = compress p in
  let buf = Buffer.create 64 in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Format.pp_print_string fmt (Buffer.contents buf)
