(* GF(2^255 - 19) in the ref10 radix-25.5 representation.

   A value is h0 + h1*2^26 + h2*2^51 + h3*2^77 + h4*2^102 + h5*2^128
   + h6*2^153 + h7*2^179 + h8*2^204 + h9*2^230 with even limbs spanning
   26 bits and odd limbs 25 bits (signed).  The multiplication and carry
   chains below are direct ports of the public-domain ref10 code; the
   63-bit native int replaces C's int64, with identical bounds headroom
   (largest intermediate < 2^62). *)

type t = int array (* length 10 *)

let p = Bigint.(sub (shift_left one 255) (of_int 19))

let zero = Array.make 10 0

let one =
  let a = Array.make 10 0 in
  a.(0) <- 1;
  a

let add f g = Array.init 10 (fun i -> f.(i) + g.(i))
let sub f g = Array.init 10 (fun i -> f.(i) - g.(i))
let neg f = Array.init 10 (fun i -> -f.(i))

(* ref10 carry chain: brings limbs back to canonical 26/25-bit magnitude.
   Mutates [h] in place; shifts are arithmetic so the chain works on
   signed limbs. *)
let carry h =
  let c = ref 0 in
  c := (h.(0) + (1 lsl 25)) asr 26;
  h.(1) <- h.(1) + !c;
  h.(0) <- h.(0) - (!c lsl 26);
  c := (h.(4) + (1 lsl 25)) asr 26;
  h.(5) <- h.(5) + !c;
  h.(4) <- h.(4) - (!c lsl 26);
  c := (h.(1) + (1 lsl 24)) asr 25;
  h.(2) <- h.(2) + !c;
  h.(1) <- h.(1) - (!c lsl 25);
  c := (h.(5) + (1 lsl 24)) asr 25;
  h.(6) <- h.(6) + !c;
  h.(5) <- h.(5) - (!c lsl 25);
  c := (h.(2) + (1 lsl 25)) asr 26;
  h.(3) <- h.(3) + !c;
  h.(2) <- h.(2) - (!c lsl 26);
  c := (h.(6) + (1 lsl 25)) asr 26;
  h.(7) <- h.(7) + !c;
  h.(6) <- h.(6) - (!c lsl 26);
  c := (h.(3) + (1 lsl 24)) asr 25;
  h.(4) <- h.(4) + !c;
  h.(3) <- h.(3) - (!c lsl 25);
  c := (h.(7) + (1 lsl 24)) asr 25;
  h.(8) <- h.(8) + !c;
  h.(7) <- h.(7) - (!c lsl 25);
  c := (h.(4) + (1 lsl 25)) asr 26;
  h.(5) <- h.(5) + !c;
  h.(4) <- h.(4) - (!c lsl 26);
  c := (h.(8) + (1 lsl 25)) asr 26;
  h.(9) <- h.(9) + !c;
  h.(8) <- h.(8) - (!c lsl 26);
  c := (h.(9) + (1 lsl 24)) asr 25;
  h.(0) <- h.(0) + (!c * 19);
  h.(9) <- h.(9) - (!c lsl 25);
  c := (h.(0) + (1 lsl 25)) asr 26;
  h.(1) <- h.(1) + !c;
  h.(0) <- h.(0) - (!c lsl 26);
  h

let mul_ml f g =
  let f0 = f.(0) and f1 = f.(1) and f2 = f.(2) and f3 = f.(3) and f4 = f.(4) in
  let f5 = f.(5) and f6 = f.(6) and f7 = f.(7) and f8 = f.(8) and f9 = f.(9) in
  let g0 = g.(0) and g1 = g.(1) and g2 = g.(2) and g3 = g.(3) and g4 = g.(4) in
  let g5 = g.(5) and g6 = g.(6) and g7 = g.(7) and g8 = g.(8) and g9 = g.(9) in
  let g1_19 = 19 * g1 and g2_19 = 19 * g2 and g3_19 = 19 * g3 and g4_19 = 19 * g4 in
  let g5_19 = 19 * g5 and g6_19 = 19 * g6 and g7_19 = 19 * g7 and g8_19 = 19 * g8 in
  let g9_19 = 19 * g9 in
  let f1_2 = 2 * f1 and f3_2 = 2 * f3 and f5_2 = 2 * f5 and f7_2 = 2 * f7 and f9_2 = 2 * f9 in
  let h = Array.make 10 0 in
  h.(0) <-
    (f0 * g0) + (f1_2 * g9_19) + (f2 * g8_19) + (f3_2 * g7_19) + (f4 * g6_19) + (f5_2 * g5_19)
    + (f6 * g4_19) + (f7_2 * g3_19) + (f8 * g2_19) + (f9_2 * g1_19);
  h.(1) <-
    (f0 * g1) + (f1 * g0) + (f2 * g9_19) + (f3 * g8_19) + (f4 * g7_19) + (f5 * g6_19)
    + (f6 * g5_19) + (f7 * g4_19) + (f8 * g3_19) + (f9 * g2_19);
  h.(2) <-
    (f0 * g2) + (f1_2 * g1) + (f2 * g0) + (f3_2 * g9_19) + (f4 * g8_19) + (f5_2 * g7_19)
    + (f6 * g6_19) + (f7_2 * g5_19) + (f8 * g4_19) + (f9_2 * g3_19);
  h.(3) <-
    (f0 * g3) + (f1 * g2) + (f2 * g1) + (f3 * g0) + (f4 * g9_19) + (f5 * g8_19) + (f6 * g7_19)
    + (f7 * g6_19) + (f8 * g5_19) + (f9 * g4_19);
  h.(4) <-
    (f0 * g4) + (f1_2 * g3) + (f2 * g2) + (f3_2 * g1) + (f4 * g0) + (f5_2 * g9_19)
    + (f6 * g8_19) + (f7_2 * g7_19) + (f8 * g6_19) + (f9_2 * g5_19);
  h.(5) <-
    (f0 * g5) + (f1 * g4) + (f2 * g3) + (f3 * g2) + (f4 * g1) + (f5 * g0) + (f6 * g9_19)
    + (f7 * g8_19) + (f8 * g7_19) + (f9 * g6_19);
  h.(6) <-
    (f0 * g6) + (f1_2 * g5) + (f2 * g4) + (f3_2 * g3) + (f4 * g2) + (f5_2 * g1) + (f6 * g0)
    + (f7_2 * g9_19) + (f8 * g8_19) + (f9_2 * g7_19);
  h.(7) <-
    (f0 * g7) + (f1 * g6) + (f2 * g5) + (f3 * g4) + (f4 * g3) + (f5 * g2) + (f6 * g1) + (f7 * g0)
    + (f8 * g9_19) + (f9 * g8_19);
  h.(8) <-
    (f0 * g8) + (f1_2 * g7) + (f2 * g6) + (f3_2 * g5) + (f4 * g4) + (f5_2 * g3) + (f6 * g2)
    + (f7_2 * g1) + (f8 * g0) + (f9_2 * g9_19);
  h.(9) <-
    (f0 * g9) + (f1 * g8) + (f2 * g7) + (f3 * g6) + (f4 * g5) + (f5 * g4) + (f6 * g3) + (f7 * g2)
    + (f8 * g1) + (f9 * g0);
  carry h

(* Dedicated squaring (ref10 fe_sq): ~30% cheaper than mul, and point
   doubling — the bulk of every scalar multiplication — is four squares. *)
let square_ml f =
  let f0 = f.(0) and f1 = f.(1) and f2 = f.(2) and f3 = f.(3) and f4 = f.(4) in
  let f5 = f.(5) and f6 = f.(6) and f7 = f.(7) and f8 = f.(8) and f9 = f.(9) in
  let f0_2 = 2 * f0 and f1_2 = 2 * f1 and f2_2 = 2 * f2 and f3_2 = 2 * f3 in
  let f4_2 = 2 * f4 and f5_2 = 2 * f5 and f6_2 = 2 * f6 and f7_2 = 2 * f7 in
  let f5_38 = 38 * f5 and f6_19 = 19 * f6 and f7_38 = 38 * f7 in
  let f8_19 = 19 * f8 and f9_38 = 38 * f9 in
  let h = Array.make 10 0 in
  h.(0) <- (f0 * f0) + (f1_2 * f9_38) + (f2_2 * f8_19) + (f3_2 * f7_38) + (f4_2 * f6_19) + (f5 * f5_38);
  h.(1) <- (f0_2 * f1) + (f2 * f9_38) + (f3_2 * f8_19) + (f4 * f7_38) + (f5_2 * f6_19);
  h.(2) <- (f0_2 * f2) + (f1_2 * f1) + (f3_2 * f9_38) + (f4_2 * f8_19) + (f5_2 * f7_38) + (f6 * f6_19);
  h.(3) <- (f0_2 * f3) + (f1_2 * f2) + (f4 * f9_38) + (f5_2 * f8_19) + (f6 * f7_38);
  h.(4) <- (f0_2 * f4) + (f1_2 * f3_2) + (f2 * f2) + (f5_2 * f9_38) + (f6_2 * f8_19) + (f7 * f7_38);
  h.(5) <- (f0_2 * f5) + (f1_2 * f4) + (f2_2 * f3) + (f6 * f9_38) + (f7_2 * f8_19);
  h.(6) <- (f0_2 * f6) + (f1_2 * f5_2) + (f2_2 * f4) + (f3_2 * f3) + (f7_2 * f9_38) + (f8 * f8_19);
  h.(7) <- (f0_2 * f7) + (f1_2 * f6) + (f2_2 * f5) + (f3_2 * f4) + (f8 * f9_38);
  h.(8) <- (f0_2 * f8) + (f1_2 * f7_2) + (f2_2 * f6) + (f3_2 * f5_2) + (f4 * f4) + (f9 * f9_38);
  h.(9) <- (f0_2 * f9) + (f1_2 * f8) + (f2_2 * f7) + (f3_2 * f6) + (f4_2 * f5);
  carry h

(* --- optional C backend for the two hot kernels ---

   fe_stubs.c replicates mul/square + carry with int64, so the carried
   limb arrays are bit-identical to the OCaml path (differentially tested
   in test_group_fast).  Off by default; enabled by the RISEFL_FE_STUB
   environment variable or programmatically via [Backend.set_stub].  The
   dispatch is one ref load per call. *)

external stub_mul : t -> t -> t -> unit = "risefl_fe_mul" [@@noalloc]
external stub_sq : t -> t -> unit = "risefl_fe_sq" [@@noalloc]

let stub_on =
  ref
    (match Sys.getenv_opt "RISEFL_FE_STUB" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

module Backend = struct
  let stub_available = true
  let set_stub b = stub_on := b
  let using_stub () = !stub_on
end

let mul f g =
  if !stub_on then begin
    let h = Array.make 10 0 in
    stub_mul h f g;
    h
  end
  else mul_ml f g

let square f =
  if !stub_on then begin
    let h = Array.make 10 0 in
    stub_sq h f;
    h
  end
  else square_ml f

let mul_small f c =
  let h = Array.map (fun x -> x * c) f in
  carry h

(* Canonical reduction and little-endian packing (ref10 fe_tobytes). *)
let to_bytes f =
  let h = Array.copy f in
  ignore (carry h);
  let q = ref (((19 * h.(9)) + (1 lsl 24)) asr 25) in
  for i = 0 to 9 do
    let sz = if i land 1 = 0 then 26 else 25 in
    q := (h.(i) + !q) asr sz
  done;
  (* !q = 1 iff h >= p; fold 19q in and do a plain carry pass *)
  h.(0) <- h.(0) + (19 * !q);
  for i = 0 to 9 do
    let sz = if i land 1 = 0 then 26 else 25 in
    let c = h.(i) asr sz in
    if i < 9 then h.(i + 1) <- h.(i + 1) + c;
    h.(i) <- h.(i) - (c lsl sz)
  done;
  (* pack 255 bits, little-endian *)
  let out = Bytes.make 32 '\000' in
  let acc = ref 0 and accbits = ref 0 and pos = ref 0 in
  for i = 0 to 9 do
    let sz = if i land 1 = 0 then 26 else 25 in
    acc := !acc lor (h.(i) lsl !accbits);
    accbits := !accbits + sz;
    while !accbits >= 8 do
      Bytes.set out !pos (Char.chr (!acc land 0xff));
      acc := !acc lsr 8;
      accbits := !accbits - 8;
      incr pos
    done
  done;
  if !accbits > 0 then Bytes.set out !pos (Char.chr (!acc land 0xff));
  out

let of_bytes s =
  if Bytes.length s <> 32 then invalid_arg "Fe.of_bytes: need 32 bytes";
  let h = Array.make 10 0 in
  let acc = ref 0 and accbits = ref 0 and pos = ref 0 in
  for i = 0 to 9 do
    let sz = if i land 1 = 0 then 26 else 25 in
    while !accbits < sz do
      if !pos < 32 then acc := !acc lor (Char.code (Bytes.get s !pos) lsl !accbits);
      incr pos;
      accbits := !accbits + 8
    done;
    h.(i) <- !acc land ((1 lsl sz) - 1);
    acc := !acc lsr sz;
    accbits := !accbits - sz
  done;
  h

let equal f g = Bytes.equal (to_bytes f) (to_bytes g)
let is_zero f = equal f zero
let is_negative f = Char.code (Bytes.get (to_bytes f) 0) land 1 = 1

let to_bigint f = Bigint.of_bytes_le (to_bytes f)

let of_bigint x =
  let x = Bigint.erem x p in
  of_bytes (Bigint.to_bytes_le ~len:32 x)

let of_int n = of_bigint (Bigint.of_int n)

(* Exponentiation by a fixed bigint exponent (square-and-multiply,
   MSB-first).  Only used off the hot path: inversion and square roots. *)
let pow_bigint f e =
  let nbits = Bigint.bit_length e in
  if nbits = 0 then one
  else begin
    let acc = ref f in
    for i = nbits - 2 downto 0 do
      acc := square !acc;
      if Bigint.testbit e i then acc := mul !acc f
    done;
    !acc
  end

let invert f = pow_bigint f Bigint.(sub p two)

let c_invb_calls = Telemetry.Counter.make "fe.invert_batch.calls"
let c_invb_elems = Telemetry.Counter.make "fe.invert_batch.elems"

let invert_batch xs =
  Telemetry.Counter.incr c_invb_calls;
  Telemetry.Counter.add c_invb_elems (Array.length xs);
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    (* replace zeros by one during accumulation, restore at the end *)
    let zero_mask = Array.map is_zero xs in
    let safe = Array.mapi (fun i x -> if zero_mask.(i) then one else x) xs in
    let prefix = Array.make n one in
    let acc = ref one in
    for i = 0 to n - 1 do
      prefix.(i) <- !acc;
      acc := mul !acc safe.(i)
    done;
    let inv_all = ref (invert !acc) in
    let out = Array.make n zero in
    for i = n - 1 downto 0 do
      if not zero_mask.(i) then out.(i) <- mul !inv_all prefix.(i);
      inv_all := mul !inv_all safe.(i)
    done;
    out
  end
let pow_p58 f = pow_bigint f Bigint.(shift_right (sub p (of_int 5)) 3)

let sqrt_m1 =
  (* 2^((p-1)/4) is a square root of -1 mod p *)
  pow_bigint (of_int 2) Bigint.(shift_right (sub p one) 2)

let edwards_d =
  let inv121666 = Bigint.mod_inv (Bigint.of_int 121666) p in
  of_bigint (Bigint.erem (Bigint.mul (Bigint.of_int (-121665)) inv121666) p)

let edwards_d2 = add edwards_d edwards_d

let pp fmt f = Format.pp_print_string fmt (Bigint.to_hex (to_bigint f))
