(** Shared-randomness sampling for the probabilistic check (§4.4.2).

    From the broadcast value s and the public-key directory, both server
    and clients derive the same seed H(s ‖ pk₁ ‖ … ‖ pkₙ) and expand it
    into the matrix A = (a₀, a₁, …, a_k): a₀ uniform in ℤ_ℓ^d (the
    possession row) and a₁…a_k rounded Gaussians N(0, M²) (Algorithm 2).

    This module also hosts the two batch-verification primitives that
    carry the paper's O(d/log d) headline: VerCrt (Algorithm 3) on the
    client and the analogous e*-consistency check on the server. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type matrix = {
  a0 : Scalar.t array;  (** length d, uniform in ℤ_ℓ *)
  rows : int array array;  (** k rows of length d, discretized Gaussians *)
}

(** [seed ~s ~pks] = H(s ‖ pk₁ ‖ … ‖ pkₙ). *)
val seed : s:Bytes.t -> pks:Point.t array -> Bytes.t

(** [sample_matrix ~seed ~d ~k ~m_factor] — deterministic in the seed. *)
val sample_matrix : seed:Bytes.t -> d:int -> k:int -> m_factor:float -> matrix

(** [compute_h setup matrix] — the server's preparation step:
    h_t = Π_l w_l^{a_tl} for t ∈ [0, k] (Eqn 4 context). *)
val compute_h : Setup.t -> matrix -> Point.t array

(** [ver_crt drbg ~bases ~targets ~matrix] — Algorithm 3: checks
    targets.(t) = Π_l bases.(l)^{A_tl} for all t at the cost of one
    length-(k+1) and one length-d multi-exponentiation plus O(kd) field
    ops. Used by the client on (w, h) and by the server on (y_i, e*_i).
    Completeness is exact; soundness error is 1/ℓ per invocation. *)
val ver_crt : Prng.Drbg.t -> bases:Point.t array -> targets:Point.t array -> matrix:matrix -> bool

(** Batch-verification form of {!ver_crt}: draws the same batching
    vector b from [drbg] in the same order, but pushes the terms of
    ρ·(Σ_t b_t·targets_t − Σ_l c_l·bases_l) through [push] instead of
    evaluating them, so the equation joins the caller's single batched
    MSM. Returns [false] on the same shape mismatches as {!ver_crt}
    (before drawing from [drbg]). *)
val ver_crt_acc :
  Prng.Drbg.t ->
  rho:Scalar.t ->
  push:(Scalar.t -> Point.t -> unit) ->
  bases:Point.t array ->
  targets:Point.t array ->
  matrix:matrix ->
  bool

(** [dot_exact a u] — exact signed integer inner product with chunked
    overflow-safe accumulation (requires |aᵢ·uᵢ| ≤ 2^60).
    @raise Invalid_argument on dimension mismatch. *)
val dot_exact : int array -> int array -> int

(** [project matrix u] — exact integer projections
    (⟨a₀,u⟩ mod ℓ, [⟨a₁,u⟩; …; ⟨a_k,u⟩]). The Gaussian-row products are
    computed exactly in native ints (chunked against overflow).
    @raise Invalid_argument on dimension mismatch. *)
val project : matrix -> int array -> Scalar.t * int array
