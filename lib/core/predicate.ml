type t = L2 | Cosine of { v : int array; alpha : float }

let norm2 v = Array.fold_left (fun acc x -> acc +. (float_of_int x *. float_of_int x)) 0.0 v

let cosine_factor (p : Params.t) ~v ~alpha =
  let n2 = norm2 v in
  if n2 <= 0.0 then invalid_arg "Predicate.cosine_factor: zero reference vector";
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Predicate.cosine_factor: alpha must be in (0,1]";
  let pr = Params.passrate_params p in
  let g = Stats.Passrate.gamma pr in
  let m = p.Params.m_factor in
  let s = sqrt g +. (sqrt (float_of_int p.Params.k *. float_of_int p.Params.d) /. (2.0 *. m)) in
  Params.bigint_of_float_ceil (m *. m *. s *. s /. (alpha *. alpha *. n2))

let validate (p : Params.t) = function
  | L2 -> ()
  | Cosine { v; alpha } ->
      if Array.length v <> p.Params.d then invalid_arg "Predicate.validate: reference dimension";
      let factor = cosine_factor p ~v ~alpha in
      (* the w range proof has width b_ip_bits; honest w <= B * ||v|| *)
      let w_max = p.Params.bound_b *. sqrt (norm2 v) in
      if w_max >= Float.ldexp 1.0 p.Params.b_ip_bits then
        invalid_arg "Predicate.validate: <u,v> can overflow the w range proof";
      (* the slack w^2 * factor must fit the mu proof width *)
      let slack_bits =
        (2.0 *. (log w_max /. log 2.0)) +. (float_of_int (Bigint.bit_length factor) +. 1.0)
      in
      if slack_bits >= float_of_int p.Params.b_max_bits then
        invalid_arg "Predicate.validate: cosine slack exceeds b_max"
