type record =
  | Round_start of { round : int }
  | Snapshot of Wire.server_snapshot
  | Frame of { round : int; stage : Netsim.stage; sender : int; seq : int; frame : Bytes.t }
  | Stage_done of { round : int; stage : Netsim.stage }
  | Check of { round : int; s : Bytes.t }
  | Round_end of { round : int; cstar : int list; aggregate : int array option }
  | Epoch of Membership.epoch
      (** the round's frozen membership — cohort, post-rotation
          directory, standing deltas — written before [Round_start] so
          recovery re-enters the round under the exact cohort *)

type t = Store.Wal.t

let create ?fsync path = Store.Wal.open_ ?fsync path
let path = Store.Wal.path
let sync = Store.Wal.sync
let close = Store.Wal.close

let tag_round_start = 1
let tag_snapshot = 2
let tag_frame = 3
let tag_stage_done = 4
let tag_check = 5
let tag_round_end = 6
let tag_epoch = 7

(* membership deltas, tagged for the epoch record *)
let delta_kind = function
  | Membership.D_joined _ -> 1
  | Membership.D_left _ -> 2
  | Membership.D_rejoined _ -> 3
  | Membership.D_rotated _ -> 4
  | Membership.D_rotation_rejected _ -> 5

let delta_id = function
  | Membership.D_joined i | Membership.D_left i | Membership.D_rejoined i
  | Membership.D_rotated i | Membership.D_rotation_rejected i ->
      i

let delta_of ~kind ~id =
  match kind with
  | 1 -> Membership.D_joined id
  | 2 -> Membership.D_left id
  | 3 -> Membership.D_rejoined id
  | 4 -> Membership.D_rotated id
  | 5 -> Membership.D_rotation_rejected id
  | _ -> failwith "bad delta kind"

let encode = function
  | Round_start { round } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      (tag_round_start, Buffer.to_bytes b)
  | Snapshot snap -> (tag_snapshot, Serial.encode_snapshot snap)
  | Frame { round; stage; sender; seq; frame } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      Serial.W.u8 b (Netsim.stage_index stage);
      Serial.W.u32 b sender;
      Serial.W.u32 b seq;
      Serial.W.bytes b frame;
      (tag_frame, Buffer.to_bytes b)
  | Stage_done { round; stage } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      Serial.W.u8 b (Netsim.stage_index stage);
      (tag_stage_done, Buffer.to_bytes b)
  | Check { round; s } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      Serial.W.bytes b s;
      (tag_check, Buffer.to_bytes b)
  | Round_end { round; cstar; aggregate } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      Serial.W.u32 b (List.length cstar);
      List.iter (Serial.W.u32 b) cstar;
      (match aggregate with
      | None -> Serial.W.u8 b 0
      | Some agg ->
          Serial.W.u8 b 1;
          Serial.W.u32 b (Array.length agg);
          Array.iter (Serial.W.i32 b) agg);
      (tag_round_end, Buffer.to_bytes b)
  | Epoch ep ->
      let open Membership in
      let b = Serial.W.create () in
      Serial.W.u32 b ep.ep_round;
      Serial.W.u32 b (Array.length ep.ep_pks);
      Array.iter (fun pk -> Serial.W.bytes b (Curve25519.Point.compress pk)) ep.ep_pks;
      Array.iter (Serial.W.u32 b) ep.ep_gens;
      Serial.W.u32 b (Array.length ep.ep_cohort);
      Array.iter (Serial.W.u32 b) ep.ep_cohort;
      Serial.W.u32 b (List.length ep.ep_deltas);
      List.iter
        (fun d ->
          Serial.W.u8 b (delta_kind d);
          Serial.W.u32 b (delta_id d))
        ep.ep_deltas;
      Serial.W.u32 b (List.length ep.ep_convicts);
      List.iter (Serial.W.u32 b) ep.ep_convicts;
      (tag_epoch, Buffer.to_bytes b)

let append t r =
  let tag, payload = encode r in
  Store.Wal.append t ~tag payload

let r_stage r =
  match Netsim.stage_of_index (Serial.R.u8 r) with
  | Some s -> s
  | None -> failwith "bad stage index"

let decode tag payload =
  if tag = tag_snapshot then
    match Serial.decode_snapshot payload with
    | Ok snap -> Ok (Snapshot snap)
    | Error e -> Error e
  else
    Serial.total "wal-record"
      (fun r ->
        let record =
          if tag = tag_round_start then Round_start { round = Serial.R.u32 r }
          else if tag = tag_frame then begin
            let round = Serial.R.u32 r in
            let stage = r_stage r in
            let sender = Serial.R.u32 r in
            let seq = Serial.R.u32 r in
            let frame = Serial.R.bytes r in
            Frame { round; stage; sender; seq; frame }
          end
          else if tag = tag_stage_done then begin
            let round = Serial.R.u32 r in
            let stage = r_stage r in
            Stage_done { round; stage }
          end
          else if tag = tag_check then begin
            let round = Serial.R.u32 r in
            let s = Serial.R.bytes r in
            Check { round; s }
          end
          else if tag = tag_round_end then begin
            let round = Serial.R.u32 r in
            let nc = Serial.R.u32 r in
            if nc > 0xFFFF then failwith "oversized C* list";
            let cstar = List.init nc (fun _ -> Serial.R.u32 r) in
            let aggregate =
              match Serial.R.u8 r with
              | 0 -> None
              | 1 ->
                  let d = Serial.R.u32 r in
                  if d > 0x100000 then failwith "oversized aggregate";
                  Some (Array.init d (fun _ -> Serial.R.i32 r))
              | _ -> failwith "bad aggregate flag"
            in
            Round_end { round; cstar; aggregate }
          end
          else if tag = tag_epoch then begin
            let ep_round = Serial.R.u32 r in
            let n = Serial.R.u32 r in
            if n = 0 || n > 0xFFFF then failwith "bad epoch universe size";
            let ep_pks =
              Array.init n (fun _ ->
                  let raw = Serial.R.bytes r in
                  match Curve25519.Point.decompress raw with
                  | Some p -> p
                  | None -> failwith "bad epoch pk")
            in
            let ep_gens = Array.init n (fun _ -> Serial.R.u32 r) in
            let nc = Serial.R.u32 r in
            if nc > n then failwith "oversized epoch cohort";
            let ep_cohort =
              Array.init nc (fun _ ->
                  let id = Serial.R.u32 r in
                  if id < 1 || id > n then failwith "epoch cohort id out of range";
                  id)
            in
            let nd = Serial.R.u32 r in
            if nd > 0xFFFF then failwith "oversized epoch delta list";
            let ep_deltas =
              List.init nd (fun _ ->
                  let kind = Serial.R.u8 r in
                  let id = Serial.R.u32 r in
                  if id < 1 || id > n then failwith "epoch delta id out of range";
                  delta_of ~kind ~id)
            in
            let nv = Serial.R.u32 r in
            if nv > n then failwith "oversized epoch convict list";
            let ep_convicts =
              List.init nv (fun _ ->
                  let id = Serial.R.u32 r in
                  if id < 1 || id > n then failwith "epoch convict id out of range";
                  id)
            in
            Epoch
              Membership.{ ep_round; ep_cohort; ep_pks; ep_gens; ep_deltas; ep_convicts }
          end
          else failwith (Printf.sprintf "unknown record tag %d" tag)
        in
        Serial.R.finish r;
        record)
      payload

let replay file =
  let raw, status = Store.Wal.replay file in
  let out = ref [] in
  let rec go status = function
    | [] -> (List.rev !out, status)
    | (off, tag, payload) :: rest -> (
        match decode tag payload with
        | Ok r ->
            out := r :: !out;
            go status rest
        | Error e ->
            (* a CRC-clean frame whose body does not decode: treat like a
               torn tail — keep the good prefix, stop here *)
            (List.rev !out, Store.Wal.Torn { offset = off; reason = "record: " ^ e.Serial.reason })
        )
  in
  go status raw
