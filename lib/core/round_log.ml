type record =
  | Round_start of { round : int }
  | Snapshot of Wire.server_snapshot
  | Frame of { round : int; stage : Netsim.stage; sender : int; seq : int; frame : Bytes.t }
  | Stage_done of { round : int; stage : Netsim.stage }
  | Check of { round : int; s : Bytes.t }
  | Round_end of { round : int; cstar : int list; aggregate : int array option }

type t = Store.Wal.t

let create ?fsync path = Store.Wal.open_ ?fsync path
let path = Store.Wal.path
let sync = Store.Wal.sync
let close = Store.Wal.close

let tag_round_start = 1
let tag_snapshot = 2
let tag_frame = 3
let tag_stage_done = 4
let tag_check = 5
let tag_round_end = 6

let encode = function
  | Round_start { round } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      (tag_round_start, Buffer.to_bytes b)
  | Snapshot snap -> (tag_snapshot, Serial.encode_snapshot snap)
  | Frame { round; stage; sender; seq; frame } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      Serial.W.u8 b (Netsim.stage_index stage);
      Serial.W.u32 b sender;
      Serial.W.u32 b seq;
      Serial.W.bytes b frame;
      (tag_frame, Buffer.to_bytes b)
  | Stage_done { round; stage } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      Serial.W.u8 b (Netsim.stage_index stage);
      (tag_stage_done, Buffer.to_bytes b)
  | Check { round; s } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      Serial.W.bytes b s;
      (tag_check, Buffer.to_bytes b)
  | Round_end { round; cstar; aggregate } ->
      let b = Serial.W.create () in
      Serial.W.u32 b round;
      Serial.W.u32 b (List.length cstar);
      List.iter (Serial.W.u32 b) cstar;
      (match aggregate with
      | None -> Serial.W.u8 b 0
      | Some agg ->
          Serial.W.u8 b 1;
          Serial.W.u32 b (Array.length agg);
          Array.iter (Serial.W.i32 b) agg);
      (tag_round_end, Buffer.to_bytes b)

let append t r =
  let tag, payload = encode r in
  Store.Wal.append t ~tag payload

let r_stage r =
  match Netsim.stage_of_index (Serial.R.u8 r) with
  | Some s -> s
  | None -> failwith "bad stage index"

let decode tag payload =
  if tag = tag_snapshot then
    match Serial.decode_snapshot payload with
    | Ok snap -> Ok (Snapshot snap)
    | Error e -> Error e
  else
    Serial.total "wal-record"
      (fun r ->
        let record =
          if tag = tag_round_start then Round_start { round = Serial.R.u32 r }
          else if tag = tag_frame then begin
            let round = Serial.R.u32 r in
            let stage = r_stage r in
            let sender = Serial.R.u32 r in
            let seq = Serial.R.u32 r in
            let frame = Serial.R.bytes r in
            Frame { round; stage; sender; seq; frame }
          end
          else if tag = tag_stage_done then begin
            let round = Serial.R.u32 r in
            let stage = r_stage r in
            Stage_done { round; stage }
          end
          else if tag = tag_check then begin
            let round = Serial.R.u32 r in
            let s = Serial.R.bytes r in
            Check { round; s }
          end
          else if tag = tag_round_end then begin
            let round = Serial.R.u32 r in
            let nc = Serial.R.u32 r in
            if nc > 0xFFFF then failwith "oversized C* list";
            let cstar = List.init nc (fun _ -> Serial.R.u32 r) in
            let aggregate =
              match Serial.R.u8 r with
              | 0 -> None
              | 1 ->
                  let d = Serial.R.u32 r in
                  if d > 0x100000 then failwith "oversized aggregate";
                  Some (Array.init d (fun _ -> Serial.R.i32 r))
              | _ -> failwith "bad aggregate flag"
            in
            Round_end { round; cstar; aggregate }
          end
          else failwith (Printf.sprintf "unknown record tag %d" tag)
        in
        Serial.R.finish r;
        record)
      payload

let replay file =
  let raw, status = Store.Wal.replay file in
  let out = ref [] in
  let rec go status = function
    | [] -> (List.rev !out, status)
    | (off, tag, payload) :: rest -> (
        match decode tag payload with
        | Ok r ->
            out := r :: !out;
            go status rest
        | Error e ->
            (* a CRC-clean frame whose body does not decode: treat like a
               torn tail — keep the good prefix, stop here *)
            (List.rev !out, Store.Wal.Torn { offset = off; reason = "record: " ^ e.Serial.reason })
        )
  in
  go status raw
