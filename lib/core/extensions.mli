(** §4.6 extensions: running RiseFL with defense predicates beyond the
    plain L2 bound, by re-centering what the client commits.

    - Sphere defense (Steinhardt et al.): check ‖u − v‖₂ ≤ B for a public
      vector v. The client commits u − v; the server recovers
      Σ(uᵢ − v) and adds back v·|H|.
    - Zeno++ (Xie et al.): γ⟨v,u⟩ − ρ‖u‖² ≥ γε reduces to a sphere test
      around (γ/2ρ)·v (the algebra of §4.6).
    - Cosine similarity adds a direction predicate on a committed inner
      product; its norm component is the same L2/sphere machinery (the
      plaintext-side evaluation lives in [flsim]). *)

(** [sphere_shift ~center u] — the vector the client commits (u − v),
    encoded. @raise Invalid_argument on dimension mismatch. *)
val sphere_shift : center:int array -> int array -> int array

(** [sphere_unshift ~center ~n_honest agg] — recover Σᵢ uᵢ from
    Σᵢ (uᵢ − v): adds v·n_honest. *)
val sphere_unshift : center:int array -> n_honest:int -> int array -> int array

(** [zeno_center_radius ~v ~gamma ~rho ~eps] — the equivalent sphere
    center (γ/2ρ)·v and radius √(γ²/4ρ²·‖v‖² − γε/ρ), in float space.
    The radius is clamped at 0 if the predicate is unsatisfiable. *)
val zeno_center_radius : v:float array -> gamma:float -> rho:float -> eps:float -> float array * float
