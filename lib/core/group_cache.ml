(* Cached construction of the expensive group-layer precomputations: the
   BSGS baby table (~sqrt(n·2^b) group elements) and fixed-base point
   tables (512 entries each).  Both dominate process start-up once the
   hot paths themselves are fast, so warm starts load them from a
   Store.Cache directory instead of rebuilding.

   Configuration is process-global (set from the CLI via [configure])
   because the constructors run deep inside Server.create / Setup.create
   call chains — threading an optional cache through every signature
   would churn half the core API for a deployment knob.  Tests use the
   explicit [?cache] arguments instead. *)

module Point = Curve25519.Point
module Dlog = Curve25519.Dlog

let global_cache : Store.Cache.t option ref = ref None
let global_m_scale = ref 1.0

let configure ?cache_dir ?dlog_m_scale () =
  (match cache_dir with
  | Some dir -> global_cache := Some (Store.Cache.open_ ~dir)
  | None -> ());
  match dlog_m_scale with
  | Some s -> global_m_scale := if s > 0.0 then s else 1.0
  | None -> ()

let reset () =
  global_cache := None;
  global_m_scale := 1.0

let cache () = !global_cache
let dlog_m_scale () = !global_m_scale

let hex b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

(* Cache keys bind every input that determines the artifact's contents:
   the base point (compressed), the geometry parameters, and a format
   version (bumped when the serialized layout changes). *)

let dlog ?cache ?m_scale ~base ~max_abs () =
  let cache = match cache with Some _ as c -> c | None -> !global_cache in
  let m_scale = match m_scale with Some s -> s | None -> !global_m_scale in
  let build () = Dlog.create ~m_scale ~base ~max_abs () in
  match cache with
  | None -> build ()
  | Some c ->
      let key =
        Printf.sprintf "dlog/v2/%s/%d/%.6f" (hex (Point.compress base)) max_abs m_scale
      in
      let cached =
        match Store.Cache.load c ~key with
        | None -> None
        | Some b -> (
            match Dlog.of_bytes ~base b with
            | Some t when Dlog.max_abs t = max_abs -> Some t
            | _ -> None)
      in
      (match cached with
      | Some t -> t
      | None ->
          let t = build () in
          Store.Cache.save c ~key (Dlog.to_bytes t);
          t)

let table ?cache ~label ~base () =
  let cache = match cache with Some _ as c -> c | None -> !global_cache in
  match cache with
  | None -> Point.Table.make base
  | Some c ->
      let key = Printf.sprintf "table/v2/%s/%s" label (hex (Point.compress base)) in
      let cached =
        match Store.Cache.load c ~key with
        | None -> None
        | Some b -> Point.Table.of_bytes ~base b
      in
      (match cached with
      | Some t -> t
      | None ->
          let t = Point.Table.make base in
          Store.Cache.save c ~key (Point.Table.to_bytes t);
          t)
