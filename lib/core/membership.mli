(** Elastic membership: per-round cohorts, standing, and key rotation.

    A session's client {e universe} (ids 1..n, the directory exchanged at
    enrollment) is fixed, but the per-round {e cohort} — who actually
    participates — is not: clients leave, return, and rotate their DH key
    pairs between rounds. This module tracks each client's standing,
    freezes one {!epoch} per round (the cohort, the post-rotation
    directory, and the deltas versus the previous round), verifies key
    rotations against a proof of continuity, and derives seeded churn
    schedules that every process can recompute locally.

    Epochs are WAL-logged ({!Round_log.record.Epoch}) so crash recovery
    replays the exact cohort; a returning client keeps its standing
    (C* membership survives absence — honest standing too, no
    re-conviction). *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

(** A client's standing inside the session. [Banned] (C* membership)
    dominates; [Rotated] means present under a rotated key. *)
type standing = Enrolled | Dropped | Banned | Rotated

val standing_to_string : standing -> string

(** {1 Key-rotation continuity proofs} *)

(** An old-key-signed binding of the new public key: a Schnorr signature
    under the {e outgoing} secret key over (id, generation, pk_old,
    pk_new). Verifiable by anyone holding the current directory; a
    rotation that fails it convicts the claimant. *)
type rotation = {
  rot_id : int;  (** 1-based client id *)
  rot_gen : int;  (** the generation being rotated TO (>= 1) *)
  rot_new_pk : Point.t;
  rot_r : Point.t;  (** Schnorr commitment g^k *)
  rot_s : Scalar.t;  (** Schnorr response k + c·sk_old *)
}

val sign_rotation :
  id:int -> gen:int -> sk_old:Scalar.t -> pk_old:Point.t -> new_pk:Point.t -> nonce:Scalar.t -> rotation

val verify_rotation : rotation -> pk_old:Point.t -> bool

(** {1 Epochs} *)

type delta =
  | D_joined of int
  | D_left of int
  | D_rejoined of int
  | D_rotated of int
  | D_rotation_rejected of int

val delta_to_string : delta -> string

(** One round's frozen membership: the WAL-logged unit of recovery. *)
type epoch = {
  ep_round : int;
  ep_cohort : int array;  (** sorted 1-based ids of this round's active clients *)
  ep_pks : Point.t array;  (** the full universe directory, post-rotation *)
  ep_gens : int array;  (** per-client key generation (0 = the session key) *)
  ep_deltas : delta list;  (** standing changes vs the previous epoch *)
  ep_convicts : int list;  (** clients whose rotation proof was rejected *)
}

val epoch_cohort_size : epoch -> int
val epoch_to_string : epoch -> string

type event = Leave of int | Join of int | Rotate of int

val event_to_string : event -> string

(** Mutable membership state across a session. *)
type t

(** [create pks] — open a session over the enrolled universe: everyone
    present, generation 0. *)
val create : Point.t array -> t

val n : t -> int
val standing : t -> int -> standing

(** [note_banned t ids] — mirror the server's C* into standing (purely
    informational: banned clients still follow the churn schedule, the
    server convicts them each round they attend). *)
val note_banned : t -> int list -> unit

(** The currently-present ids, sorted. *)
val cohort : t -> int array

(** Freeze the current state as round [round]'s epoch (no events). *)
val current_epoch : t -> round:int -> epoch

(** [advance t ~round ~events ~rotation_for] — apply one round's
    membership events in order and freeze the epoch. [rotation_for ~id
    ~gen] materializes the continuity proof for a rotation request
    ([None] silently skips it); a proof that fails verification leaves
    the directory untouched, marks the client banned, and lands it in
    [ep_convicts]. Leaves of absent clients and joins of present ones
    are no-ops. *)
val advance :
  t ->
  round:int ->
  events:event list ->
  rotation_for:(id:int -> gen:int -> rotation option) ->
  epoch

(** {1 Seeded churn schedules} *)

(** Per-round churn rates and the cohort floor the schedule never drops
    below (keep it >= the Shamir threshold or rounds cannot complete). *)
type spec = { p_leave : float; p_rejoin : float; p_rotate : float; min_cohort : int }

val default_spec : spec
val spec_to_string : spec -> string

(** Parse ["leave=0.2,rejoin=0.5,rotate=0.1,min=3"] (all keys optional,
    missing ones take {!default_spec}). *)
val spec_of_string : string -> (spec, string) result

(** [schedule ~seed spec ~n ~rounds] — the per-round event lists, a pure
    function of its arguments: every process derives the identical
    schedule, so membership needs no extra wire bytes. Round 1 is always
    the full cohort. *)
val schedule : seed:string -> spec -> n:int -> rounds:int -> event list array
