(** Retransmitting (ack/seq) layer over a {!Netsim.t} transport.

    One {!exchange} call runs a full reliable stage: every active sender's
    payload is wrapped in the {!Serial.encode_framed} header
    (round, stage, sender, seq, payload CRC) and submitted; whatever
    survives the fault plan by the attempt's deadline is unwrapped,
    validated and acked; unacked senders retransmit under exponential
    backoff (the delivery window doubles per attempt) until the attempt
    budget runs out. The receive side de-duplicates idempotently by
    (round, stage, sender, seq) — duplicated, reordered and cross-round
    replayed copies are suppressed before the protocol codec ever runs —
    so a transient fault no longer costs a client its round; only loss
    persisting past the final deadline does.

    A framing/CRC failure is treated as line noise (drop + retransmit),
    {e not} as sender malice: malice is judged on the inner protocol codec
    only once a CRC-clean frame has arrived. *)

type t

val create : ?max_attempts:int -> ?base_deadline:int -> Netsim.t -> t
(** [create ?max_attempts ?base_deadline net] — a reliable endpoint over
    [net]. [max_attempts] (default 4) bounds total sends per frame;
    [base_deadline] (default: [net]'s deadline) is the first attempt's
    delivery window in ticks, doubled each retry. *)

val create_ep :
  ?max_attempts:int -> ?base_deadline:int -> Netsim.Transport_intf.endpoint -> t
(** [create_ep ep] — same semantics over any transport backend packed as a
    {!Netsim.Transport_intf.endpoint} (the socket loopback harness, a real
    wire adapter, or [Netsim.endpoint net] itself). *)

val net : t -> Netsim.t
(** The underlying simulator, when this instance was built by {!create}.
    @raise Invalid_argument for endpoint-backed instances. *)

val exchange :
  t ->
  round:int ->
  stage:Netsim.stage ->
  ?already:int list ->
  Bytes.t option array ->
  (int * int * Bytes.t) list
(** [exchange t ~round ~stage ?already payloads] — run the stage's
    reliable exchange. [payloads.(i)] is sender [i+1]'s protocol frame
    ([None] = inactive this stage); [already] lists senders to treat as
    acked before the first send (recovery: frames already in the WAL).
    Returns accepted [(sender, seq, payload)] in acceptance order. *)

type counters = {
  logical : int;  (** distinct frames submitted for reliable delivery *)
  attempts : int;  (** physical sends, including first attempts *)
  retransmits : int;  (** sends beyond a frame's first attempt *)
  recovered : int;  (** frames acked only after >= 1 retransmission *)
  lost : int;  (** frames never acked by the final deadline *)
  dup_suppressed : int;  (** deliveries dropped by (round,stage,sender,seq) dedup *)
  rejected : int;  (** framing/CRC failures and cross-round replays *)
}

val counters : t -> counters
