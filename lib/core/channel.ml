module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type keypair = { sk : Scalar.t; pk : Point.t }

let gen_keypair drbg =
  let sk = Scalar.random drbg in
  { sk; pk = Point.mul_base sk }

let shared_key ~my ~their_pk =
  let dh = Point.mul my.sk their_pk in
  let h = Hashfn.Sha256.init () in
  Hashfn.Sha256.update_string h "risefl/channel/v1";
  Hashfn.Sha256.update h (Point.compress dh);
  Hashfn.Sha256.finalize h

type sealed = { nonce : Bytes.t; body : Bytes.t; tag : Bytes.t }

let derive_nonce nonce_seed =
  Bytes.sub (Hashfn.Sha256.digest_string ("risefl/nonce/" ^ nonce_seed)) 0 12

let keystream ~key ~nonce len = Prng.Chacha20.keystream ~key ~nonce ~off:0 len

let xor a b = Bytes.init (Bytes.length a) (fun i -> Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))

let mac ~key ~nonce body =
  let m = Bytes.concat Bytes.empty [ Bytes.of_string "risefl/mac/"; nonce; body ] in
  Hashfn.Hmac.sha256 ~key m

let seal ~key ~nonce_seed plaintext =
  let nonce = derive_nonce nonce_seed in
  let body = xor plaintext (keystream ~key ~nonce (Bytes.length plaintext)) in
  { nonce; body; tag = mac ~key ~nonce body }

let open_ ~key sealed =
  let expected = mac ~key ~nonce:sealed.nonce sealed.body in
  if not (Bytes.equal expected sealed.tag) then None
  else Some (xor sealed.body (keystream ~key ~nonce:sealed.nonce (Bytes.length sealed.body)))

let sealed_size s = Bytes.length s.nonce + Bytes.length s.body + Bytes.length s.tag
