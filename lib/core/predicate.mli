(** Integrity predicates the cryptographic pipeline can enforce (§4.6).

    - {!L2}: ‖u‖₂ ≤ B — the paper's main check; Σₜ⟨aₜ,u⟩² ≤ B₀.
    - {!Cosine}: ‖u‖₂ ≤ B and ⟨u,v⟩ ≥ α‖u‖₂‖v‖₂ for a public reference
      vector v, rewritten (as in the paper) to
      ‖u‖₂ ≤ ⟨u,v⟩ / (α‖v‖₂), and enforced as
      Σₜ⟨aₜ,u⟩² ≤ w²·c_factor with w = ⟨u,v⟩ committed homomorphically
      and c_factor = ⌈M²(√γ + √(kd)/2M)² / (α²‖v‖²)⌉.

    The sphere defense needs no predicate change: the client commits
    u − v and the server un-shifts the aggregate ({!Extensions}). *)

type t =
  | L2
  | Cosine of { v : int array  (** encoded reference vector *); alpha : float }

(** [cosine_factor params ~v ~alpha] — the integer factor c_factor above.
    @raise Invalid_argument if v is zero or alpha not in (0, 1]. *)
val cosine_factor : Params.t -> v:int array -> alpha:float -> Bigint.t

(** [validate params pred] — dimension and range checks; the derived
    w-range and slack bounds must fit the proof widths.
    @raise Invalid_argument otherwise. *)
val validate : Params.t -> t -> unit
