type counters = {
  logical : int;
  attempts : int;
  retransmits : int;
  recovered : int;
  lost : int;
  dup_suppressed : int;
  rejected : int;
}

let c_retransmits = Telemetry.Counter.make "rel.retransmits"
let c_recovered = Telemetry.Counter.make "rel.recovered"
let c_lost = Telemetry.Counter.make "rel.lost"
let c_dup = Telemetry.Counter.make "rel.dup.suppressed"
let c_rejected = Telemetry.Counter.make "rel.rejected"

module TI = Netsim.Transport_intf

type t = {
  ep : TI.endpoint;
  netsim : Netsim.t option;  (* kept when created over a Netsim for [net] *)
  max_attempts : int;
  base_deadline : int;
  (* receive-side dedup by (round, stage index, sender, seq): an ack is
     implied by membership, so a duplicate or a replayed copy of an
     already-accepted frame is suppressed idempotently *)
  seen : (int * int * int * int, unit) Hashtbl.t;
  mutable c_logical : int;
  mutable c_attempts : int;
  mutable c_retransmits : int;
  mutable c_recovered : int;
  mutable c_lost : int;
  mutable c_dup : int;
  mutable c_rejected : int;
}

let create_ep ?(max_attempts = 4) ?base_deadline (ep : TI.endpoint) =
  let base_deadline =
    match base_deadline with Some d -> max 1 d | None -> max 1 (ep.TI.ep_deadline ())
  in
  {
    ep;
    netsim = None;
    max_attempts = max 1 max_attempts;
    base_deadline;
    seen = Hashtbl.create 97;
    c_logical = 0;
    c_attempts = 0;
    c_retransmits = 0;
    c_recovered = 0;
    c_lost = 0;
    c_dup = 0;
    c_rejected = 0;
  }

let create ?max_attempts ?base_deadline net =
  { (create_ep ?max_attempts ?base_deadline (Netsim.endpoint net)) with netsim = Some net }

let net t =
  match t.netsim with
  | Some n -> n
  | None -> invalid_arg "Reliable.net: this endpoint is not Netsim-backed"

let counters t =
  {
    logical = t.c_logical;
    attempts = t.c_attempts;
    retransmits = t.c_retransmits;
    recovered = t.c_recovered;
    lost = t.c_lost;
    dup_suppressed = t.c_dup;
    rejected = t.c_rejected;
  }

let exchange t ~round ~stage ?(already = []) payloads =
  let n = Array.length payloads in
  let stage_ix = Netsim.stage_index stage in
  let acked = Array.make n false in
  List.iter (fun s -> if s >= 1 && s <= n then acked.(s - 1) <- true) already;
  let pending = ref 0 in
  Array.iteri
    (fun i p ->
      if p <> None && not acked.(i) then begin
        incr pending;
        t.c_logical <- t.c_logical + 1
      end)
    payloads;
  let accepted = ref [] in
  let attempt = ref 0 in
  while !pending > 0 && !attempt < t.max_attempts do
    t.ep.TI.ep_begin_stage ~round ~stage;
    Array.iteri
      (fun i p ->
        match p with
        | Some payload when not acked.(i) ->
            t.c_attempts <- t.c_attempts + 1;
            if !attempt > 0 then begin
              t.c_retransmits <- t.c_retransmits + 1;
              Telemetry.Counter.incr c_retransmits
            end;
            t.ep.TI.ep_send ~attempt:!attempt ~sender:(i + 1)
              (Serial.encode_framed ~round ~stage:stage_ix ~sender:(i + 1) ~seq:0 payload)
        | _ -> ())
      payloads;
    (* exponential backoff: each retry waits out a doubled window, so a
       delayed frame that missed the last deadline can land in the next *)
    let window = t.base_deadline * (1 lsl min !attempt 16) in
    List.iter
      (fun (link_sender, raw) ->
        match Serial.decode_framed raw with
        | Error _ ->
            (* corrupt framing reads as line noise: drop, let the
               retransmit loop recover it — malice is judged on the inner
               codec only after a CRC-clean arrival *)
            t.c_rejected <- t.c_rejected + 1;
            Telemetry.Counter.incr c_rejected
        | Ok (hdr, payload) ->
            if
              hdr.Serial.fh_round <> round || hdr.Serial.fh_stage <> stage_ix
              || hdr.Serial.fh_sender <> link_sender
            then begin
              (* cross-round replay or a spoofed link id: idempotent reject *)
              t.c_rejected <- t.c_rejected + 1;
              Telemetry.Counter.incr c_rejected
            end
            else begin
              let key = (round, stage_ix, hdr.Serial.fh_sender, hdr.Serial.fh_seq) in
              if Hashtbl.mem t.seen key then begin
                t.c_dup <- t.c_dup + 1;
                Telemetry.Counter.incr c_dup
              end
              else begin
                Hashtbl.replace t.seen key ();
                if not acked.(hdr.Serial.fh_sender - 1) then begin
                  acked.(hdr.Serial.fh_sender - 1) <- true;
                  decr pending;
                  if !attempt > 0 then begin
                    t.c_recovered <- t.c_recovered + 1;
                    Telemetry.Counter.incr c_recovered;
                    t.ep.TI.ep_note_recovered ()
                  end;
                  accepted := (hdr.Serial.fh_sender, hdr.Serial.fh_seq, payload) :: !accepted
                end
              end
            end)
      (t.ep.TI.ep_deliver ~deadline:(Some window));
    incr attempt
  done;
  if !pending > 0 then begin
    t.c_lost <- t.c_lost + !pending;
    Telemetry.Counter.add c_lost !pending
  end;
  List.rev !accepted
