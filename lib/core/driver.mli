(** In-memory orchestration of one full RiseFL iteration.

    Wires n {!Client}s and one {!Server} together, injects configurable
    malicious behaviours, and reports the per-stage timings and
    per-client communication volumes that Tables 1–2 and Figures 6–7 of
    the paper measure.

    With a {!Netsim.t} transport every client → server frame additionally
    crosses a fault-injected link (drops, delays, duplicates, truncation,
    byte flips, replays): undecodable frames cost the sender its honesty
    bit (it joins the malicious set), late/missing frames make it a dropout, and the
    round either completes or ends with a typed {!round_outcome} — no
    fault plan can make an exception escape. *)

(** What a client does this iteration. *)
type behaviour =
  | Honest
  | Oversized of float
      (** submit c·u (c > 1), bypassing the local norm check; the client
          still tries to pass the probabilistic check, succeeding with
          probability F(c) — the attack model of §5.1 *)
  | Bad_share_to of int list  (** corrupt the encrypted shares to these recipients *)
  | False_flags of int list  (** flag these (honest) clients in round 2 *)
  | Bad_agg_share  (** send a corrupted aggregated share in round 3 *)
  | Drop_out  (** send no messages at all *)

type stats = {
  aggregate : int array option;  (** Σ_{i∈H} u_i, or None if aggregation failed *)
  failure : Server.agg_error option;  (** why aggregation failed, when it did *)
  flagged : int list;  (** the final C* *)
  decode_failures : int list;
      (** clients whose frames failed to decode this round (⊆ flagged) *)
  (* per-stage wall-clock seconds, averaged over honest clients *)
  client_commit_s : float;
  client_share_verify_s : float;
  client_proof_s : float;
  server_prep_s : float;
  server_verify_s : float;
  server_agg_s : float;
  (* communication, bytes *)
  client_up_bytes : int;  (** per honest client: everything it sends *)
  client_down_bytes : int;  (** per honest client: everything it receives *)
}

(** How a round ended under the quorum-aware lifecycle
    ({!run_round_outcome}): the server proceeds as long as at least
    t = m+1 clients survive each stage, and otherwise returns a verdict
    instead of raising. *)
type round_outcome =
  | Completed of stats
      (** the round ran to the end (aggregation itself may still have
          failed benignly — see [stats.failure]) *)
  | Aborted_insufficient_quorum of { stage : string; survivors : int; needed : int }
      (** fewer than t = m+1 clients survived the named stage *)
  | Aborted_decode of int list
      (** quorum was lost and undecodable frames from these clients
          contributed to the loss *)

val outcome_to_string : round_outcome -> string

(** A persistent deployment: clients keep their DH key pairs (and the
    public-key bulletin) across training rounds. *)
type session

(** [create_session setup ~seed] — generate all key pairs and exchange
    the public-key directory. Deterministic in [seed]. *)
val create_session : Setup.t -> seed:string -> session

(** [run_round ?predicate ?serialize ?transport session ~updates
    ~behaviours ~round] — one full protocol iteration (commit → flags →
    probabilistic check → aggregation) over the session's long-lived
    clients. With [serialize] every message round-trips through the
    binary wire codecs, exactly as over a network; with [transport]
    (which implies [serialize]) the frames additionally cross the
    fault-injected links. All stages always run; quorum loss surfaces as
    [failure = Some (Insufficient_quorum _)], never as an exception. *)
val run_round :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  ?transport:Netsim.t ->
  session ->
  updates:int array array ->
  behaviours:behaviour array ->
  round:int ->
  stats

(** [run_round_outcome] — like {!run_round} but with the deadline/quorum
    lifecycle armed: the server abandons the round as soon as fewer than
    t = m+1 clients survive a stage, returning the typed verdict. *)
val run_round_outcome :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  ?transport:Netsim.t ->
  session ->
  updates:int array array ->
  behaviours:behaviour array ->
  round:int ->
  round_outcome

(** [run_iteration setup ~updates ~behaviours ~seed ~round] — one-shot
    convenience: a fresh session running a single round. [updates] are
    encoded (fixed-point) vectors, one per client; [behaviours] selects
    the adversary model per client. Deterministic in [seed]. *)
val run_iteration :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  ?transport:Netsim.t ->
  Setup.t ->
  updates:int array array ->
  behaviours:behaviour array ->
  seed:string ->
  round:int ->
  stats

(** [honest_all n] — convenience: n honest behaviours. *)
val honest_all : int -> behaviour array
