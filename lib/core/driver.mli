(** In-memory orchestration of one full RiseFL iteration.

    Wires n {!Client}s and one {!Server} together, injects configurable
    malicious behaviours, and reports the per-stage timings and
    per-client communication volumes that Tables 1–2 and Figures 6–7 of
    the paper measure. *)

(** What a client does this iteration. *)
type behaviour =
  | Honest
  | Oversized of float
      (** submit c·u (c > 1), bypassing the local norm check; the client
          still tries to pass the probabilistic check, succeeding with
          probability F(c) — the attack model of §5.1 *)
  | Bad_share_to of int list  (** corrupt the encrypted shares to these recipients *)
  | False_flags of int list  (** flag these (honest) clients in round 2 *)
  | Bad_agg_share  (** send a corrupted aggregated share in round 3 *)
  | Drop_out  (** send no messages at all *)

type stats = {
  aggregate : int array option;  (** Σ_{i∈H} u_i, or None if aggregation failed *)
  flagged : int list;  (** the final C* *)
  (* per-stage wall-clock seconds, averaged over honest clients *)
  client_commit_s : float;
  client_share_verify_s : float;
  client_proof_s : float;
  server_prep_s : float;
  server_verify_s : float;
  server_agg_s : float;
  (* communication, bytes *)
  client_up_bytes : int;  (** per honest client: everything it sends *)
  client_down_bytes : int;  (** per honest client: everything it receives *)
}

(** A persistent deployment: clients keep their DH key pairs (and the
    public-key bulletin) across training rounds. *)
type session

(** [create_session setup ~seed] — generate all key pairs and exchange
    the public-key directory. Deterministic in [seed]. *)
val create_session : Setup.t -> seed:string -> session

(** [run_round ?predicate ?serialize session ~updates ~behaviours ~round]
    — one full protocol iteration (commit → flags → probabilistic check →
    aggregation) over the session's long-lived clients. With [serialize]
    every message round-trips through the binary wire codecs, exactly as
    over a network. *)
val run_round :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  session ->
  updates:int array array ->
  behaviours:behaviour array ->
  round:int ->
  stats

(** [run_iteration setup ~updates ~behaviours ~seed ~round] — one-shot
    convenience: a fresh session running a single round. [updates] are
    encoded (fixed-point) vectors, one per client; [behaviours] selects
    the adversary model per client. Deterministic in [seed]. *)
val run_iteration :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  Setup.t ->
  updates:int array array ->
  behaviours:behaviour array ->
  seed:string ->
  round:int ->
  stats

(** [honest_all n] — convenience: n honest behaviours. *)
val honest_all : int -> behaviour array
