(** In-memory orchestration of one full RiseFL iteration.

    Wires n {!Client}s and one {!Server} together, injects configurable
    malicious behaviours, and reports the per-stage timings and
    per-client communication volumes that Tables 1–2 and Figures 6–7 of
    the paper measure.

    With a {!Netsim.t} transport every client → server frame additionally
    crosses a fault-injected link (drops, delays, duplicates, truncation,
    byte flips, replays): undecodable frames cost the sender its honesty
    bit (it joins the malicious set), late/missing frames make it a dropout, and the
    round either completes or ends with a typed {!round_outcome} — no
    fault plan can make an exception escape.

    Durability: with a {!Round_log.t} write-ahead log armed, every
    accepted frame is logged (and fsynced) before the server processes
    it, and a seeded crash plan can kill the server at any stage
    boundary or mid-stage frame index. {!recover_round} replays the log
    and finishes the round with an aggregate and C* bit-identical to the
    uncrashed run; {!run_session} chains rounds, carries C* forward as
    bans, and auto-recovers in-loop. *)

(** What a client does this iteration. *)
type behaviour =
  | Honest
  | Oversized of float
      (** submit c·u (c > 1), bypassing the local norm check; the client
          still tries to pass the probabilistic check, succeeding with
          probability F(c) — the attack model of §5.1 *)
  | Bad_share_to of int list  (** corrupt the encrypted shares to these recipients *)
  | False_flags of int list  (** flag these (honest) clients in round 2 *)
  | Bad_agg_share  (** send a corrupted aggregated share in round 3 *)
  | Drop_out  (** send no messages at all *)
  | Agg_silent
      (** participate honestly through the proof stage, then send no
          aggregation frame — the agg-stage dropout whose blind the
          k-regular neighborhood recovery re-interpolates *)

type stats = {
  aggregate : int array option;  (** Σ_{i∈H} u_i, or None if aggregation failed *)
  failure : Server.agg_error option;  (** why aggregation failed, when it did *)
  flagged : int list;  (** the final C* *)
  decode_failures : int list;
      (** clients whose frames failed to decode this round (⊆ flagged) *)
  (* per-stage wall-clock seconds, averaged over honest clients *)
  client_commit_s : float;
  client_share_verify_s : float;
  client_proof_s : float;
  server_prep_s : float;
  server_verify_s : float;
  server_agg_s : float;
  (* communication, bytes *)
  client_up_bytes : int;  (** per honest client: everything it sends *)
  client_down_bytes : int;  (** per honest client: everything it receives *)
}

(** How a round ended under the quorum-aware lifecycle
    ({!run_round_outcome}): the server proceeds as long as at least
    t = m+1 clients survive each stage, and otherwise returns a verdict
    instead of raising. *)
type round_outcome =
  | Completed of stats
      (** the round ran to the end (aggregation itself may still have
          failed benignly — see [stats.failure]) *)
  | Aborted_insufficient_quorum of { stage : string; survivors : int; needed : int }
      (** fewer than t = m+1 clients survived the named stage *)
  | Aborted_decode of int list
      (** quorum was lost and undecodable frames from these clients
          contributed to the loss *)

val outcome_to_string : round_outcome -> string

(** A persistent deployment: clients keep their DH key pairs (and the
    public-key bulletin) across training rounds. *)
type session

(** [create_session setup ~seed] — generate all key pairs and exchange
    the public-key directory. Deterministic in [seed]. *)
val create_session : Setup.t -> seed:string -> session

(** The session's current server (replaced on crash recovery). *)
val session_server : session -> Server.t

(** The session's clients (index i−1 holds client i). A remote client
    process builds the same session from the shared seed and drives only
    its own entry — the per-client DRBGs are independent forks, so the
    untouched siblings never advance. *)
val session_clients : session -> Client.t array

(** {1 Crash plan} *)

(** Where in a stage the server dies: before intake ([Stage_start]),
    immediately before accepting the i-th frame of the stage
    ([Stage_frame i] — write-ahead, so the frame is {e not} logged), or
    after the stage completed ([Stage_end]). *)
type crash_point = Stage_start | Stage_frame of int | Stage_end

(** The simulated server crash: raised out of the round at the planned
    point, after fsyncing the WAL. *)
exception Server_crashed of { stage : Netsim.stage; at : crash_point }

val crash_of_string : string -> (Netsim.stage * crash_point, string) result
(** Parse ["STAGE:STEP"] — stage ∈ commit|flag|proof|agg, step ∈
    start|end|frame-index (e.g. ["proof:start"], ["agg:2"]). *)

val crash_to_string : Netsim.stage * crash_point -> string

val seeded_crashes :
  seed:string -> n:int -> max_step:int -> (Netsim.stage * crash_point) list
(** [seeded_crashes ~seed ~n ~max_step] — n mid-stage crash points drawn
    from independent DRBG forks of [seed] (scheduled like Netsim faults:
    a sweep is a pure function of the seed). *)

(** {1 Elastic membership}

    With [?epoch] a round runs over that epoch's cohort instead of the
    full universe: the epoch is applied first (clients catch up to their
    rotated key generations, the post-rotation directory is installed
    everywhere, rotation convicts join the malicious set), the share
    graph and the
    shared seed bind exactly the active cohort, absent clients owe
    nothing and convict nothing, and — under a WAL — the epoch record is
    logged {e before} [Round_start] so recovery re-enters the round under
    the identical cohort. A full-cohort epoch takes the legacy code paths
    bit for bit. *)

exception Epoch_mismatch of string
(** A decoded-valid epoch that contradicts the session: wrong universe
    size, or a directory entry the session's key derivations cannot
    reach. Raised rather than running a round under a wrong cohort. *)

val apply_epoch : session -> Membership.epoch -> unit
(** Bring the session up to [epoch]'s directory: rotate each client to
    its epoch key generation (generation keys are key-only DRBG forks,
    reachable by any process at any time), check the derived public keys
    against the epoch directory (raising {!Epoch_mismatch} on any
    contradiction) and install it in every client and the server.
    Idempotent — recovery re-applies the epoch it crashed under. *)

val effective_topology :
  Setup.t -> cohort:int array -> Risefl_topology.Topology.mode -> Risefl_topology.Topology.mode
(** The topology a round actually runs under: a k-regular request whose
    degree a shrunken cohort cannot sustain is re-derived for the cohort
    that showed up (clamped to [cohort-1], floor 2) and the
    ["topology.degree_clamped"] counter is bumped. Shared by the driver
    and the socket client so both sides derive the same share graph. *)

(** {1 Remote seam}

    With [?remote], the driver runs the {e server half only} of a round:
    no client messages are computed in-process. [r_collect] gathers each
    stage's frames off a real transport and pushes them through the
    driver's write-ahead intake — [push] appends (and fsyncs) to the WAL
    before returning, so the transport may acknowledge a frame only after
    [push] comes back (and a {!Server_crashed} raised inside [push] means
    the frame was neither logged nor acked). The [r_*] broadcast hooks
    fire at the exact points an in-process run hands data to its local
    clients. Callers pass dummy [updates]/[behaviours] (they gate only
    the skipped local-compute paths). *)
type remote = {
  r_collect :
    round:int ->
    stage:Netsim.stage ->
    already:int list ->
    push:(int * int * Bytes.t -> unit) ->
    unit;
  r_commits : round:int -> Bytes.t array -> unit;
  r_cleared : round:int -> (int * int * Curve25519.Scalar.t) list -> unit;
  r_check : round:int -> Bytes.t -> unit;
  r_honest : round:int -> honest:int list -> malicious:int list -> unit;
  r_result : round:int -> round_outcome -> unit;
  r_reveal : dealer:int -> requests:int list -> (int * Curve25519.Scalar.t) list option;
  r_recover :
    round:int ->
    dropout:int ->
    responders:int list ->
    (int * (Curve25519.Scalar.t option * Curve25519.Scalar.t)) list;
      (** k-regular dropout recovery sub-exchange: ask each alive graph
          neighbor of [dropout] for (its VSSS share of the dropout's
          blind if held, the pairwise agg mask toward the dropout) *)
}

(** [run_round ?predicate ?serialize ?transport ?reliable ?wal ?crash
    session ~updates ~behaviours ~round] — one full protocol iteration
    (commit → flags → probabilistic check → aggregation) over the
    session's long-lived clients. With [serialize] every message
    round-trips through the binary wire codecs, exactly as over a
    network; with [transport] (which implies [serialize]) the frames
    additionally cross the fault-injected links; with [reliable] (which
    wins over [transport]) unacked frames retransmit under exponential
    backoff with receive-side dedup; with [wal] every accepted frame is
    logged write-ahead; with [crash] the server dies at the planned
    point ({!Server_crashed} escapes — catch it and
    {!recover_round}). All stages always run; quorum loss surfaces as
    [failure = Some (Insufficient_quorum _)], never as an exception.

    With [stream] the proof stage runs the server's streaming
    verification pipeline ({!Server.stream_begin}): each arrived frame
    is folded into the round's sharded RLC accumulators and its decoded
    bulk evicted, instead of the whole stage being retained for one
    post-barrier {!Server.verify_proofs}. Verdicts, C* and the aggregate
    are bit-identical to the barrier path for every (jobs, shards,
    arrival-order) combination; resident decoded state drops from
    O(n·d + n²) to O(d + batch·d).

    With [topology] (default [Full]) the round's share graph is selected:
    [Kregular k] derives a seeded k-regular neighborhood graph from
    (session seed, round, cohort) via {!Risefl_topology.Topology.plan},
    shares each blind only to graph neighbors (wire v2 commits carrying
    the topology digest), masks the agg stage pairwise, and recovers
    agg-stage dropouts from their neighborhoods. [Kregular (n-1)] (or
    more) normalizes to the all-to-all path and is bit-identical to
    [Full]. *)
val run_round :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  ?transport:Netsim.t ->
  ?endpoint:Netsim.Transport_intf.endpoint ->
  ?reliable:Reliable.t ->
  ?wal:Round_log.t ->
  ?crash:Netsim.stage * crash_point ->
  ?stream:Server.stream_cfg ->
  ?epoch:Membership.epoch ->
  ?topology:Risefl_topology.Topology.mode ->
  session ->
  updates:int array array ->
  behaviours:behaviour array ->
  round:int ->
  stats

(** [run_round_outcome] — like {!run_round} but with the deadline/quorum
    lifecycle armed: the server abandons the round as soon as fewer than
    t = m+1 clients survive a stage, returning the typed verdict (and
    sealing the WAL with a [Round_end] record). [endpoint] is the
    backend-agnostic form of [transport] (any
    {!Netsim.Transport_intf.endpoint}); [remote] plugs a real transport's
    collect/broadcast hooks into the round (see {!type-remote}). *)
val run_round_outcome :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  ?transport:Netsim.t ->
  ?endpoint:Netsim.Transport_intf.endpoint ->
  ?reliable:Reliable.t ->
  ?remote:remote ->
  ?wal:Round_log.t ->
  ?crash:Netsim.stage * crash_point ->
  ?stream:Server.stream_cfg ->
  ?epoch:Membership.epoch ->
  ?topology:Risefl_topology.Topology.mode ->
  session ->
  updates:int array array ->
  behaviours:behaviour array ->
  round:int ->
  round_outcome

(** [recover_round session ~records ~updates ~behaviours ~round] —
    finish a crashed round from its write-ahead log. Rebuilds a fresh
    server from the session seed, restores the last snapshot at or
    before [round], replays the round's logged frames, then re-enters
    delivery for the unlogged senders only and runs the remaining
    stages. The server DRBG is fast-forwarded to the snapshot position,
    so the check string, proof verdicts, aggregate and C* are
    bit-identical to the uncrashed run. Pass the same [wal] to keep
    logging the recovered tail, and the same [stream] config to resume a
    streamed round — the logged proof frames replay straight through the
    streaming intake, so a crash mid-stream resumes the fold. An elastic
    round recovers under its [epoch]: pass the same one, or leave it out
    and the crashed round's logged [Epoch] record (written before its
    [Round_start]) is used. *)
val recover_round :
  ?predicate:Predicate.t ->
  ?transport:Netsim.t ->
  ?endpoint:Netsim.Transport_intf.endpoint ->
  ?reliable:Reliable.t ->
  ?remote:remote ->
  ?wal:Round_log.t ->
  ?stream:Server.stream_cfg ->
  ?epoch:Membership.epoch ->
  ?topology:Risefl_topology.Topology.mode ->
  session ->
  records:Round_log.record list ->
  updates:int array array ->
  behaviours:behaviour array ->
  round:int ->
  round_outcome

(** {1 Multi-round sessions} *)

(** Totals over every epoch's standing deltas. *)
type churn_counts = { joined : int; left : int; rejoined : int; rotated : int }

type session_report = {
  rounds_attempted : int;
  rounds_completed : int;
  round_outcomes : (int * round_outcome) list;  (** in round order *)
  final_banned : int list;  (** C* accumulated across all rounds *)
  crashes_recovered : int;
  cohort_sizes : (int * int) list;
      (** per round, the active cohort size (n for epoch-less rounds) *)
  churn : churn_counts;
}

(** [run_session ?crash session ~updates_for ~behaviours ~rounds] — run
    [rounds] quorum-aware rounds over one session. [updates_for r] is
    the round-r update matrix. Clients convicted (C* membership) in a
    completed round start every later round banned. [crash], if given, is
    [(round, stage, point)]: the server dies there and — when a [wal] is
    armed — the loop syncs, replays and {!recover_round}s transparently
    (without a WAL the crash re-raises). [cohort_for r], if given,
    freezes round r's membership epoch before the round starts
    ({!churn_cohort_for} derives one from a seeded schedule); a crashed
    elastic round recovers under the same epoch. *)
val run_session :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  ?transport:Netsim.t ->
  ?endpoint:Netsim.Transport_intf.endpoint ->
  ?reliable:Reliable.t ->
  ?remote:remote ->
  ?wal:Round_log.t ->
  ?crash:int * Netsim.stage * crash_point ->
  ?stream:Server.stream_cfg ->
  ?cohort_for:(int -> Membership.epoch option) ->
  ?topology:Risefl_topology.Topology.mode ->
  session ->
  updates_for:(int -> int array array) ->
  behaviours:behaviour array ->
  rounds:int ->
  session_report

(** [churn_cohort_for session ~spec ~rounds] — the seeded-churn cohort
    hook for {!run_session}: one {!Membership.t} advanced through
    [Membership.schedule ~seed:(session seed) spec], memoized per round
    (crash recovery re-asks for the crashed round and gets the identical
    epoch back). Rotation proofs are signed by the session's own clients
    with their current keys, so epochs must be consumed in round order
    interleaved with the rounds — exactly what {!run_session} does. *)
val churn_cohort_for :
  session -> spec:Membership.spec -> rounds:int -> int -> Membership.epoch option

(** [run_iteration setup ~updates ~behaviours ~seed ~round] — one-shot
    convenience: a fresh session running a single round. [updates] are
    encoded (fixed-point) vectors, one per client; [behaviours] selects
    the adversary model per client. Deterministic in [seed]. Accepts the
    same wire/durability optionals as {!run_round} ([endpoint],
    [reliable], [wal]) so one-shot harnesses exercise the full stack. *)
val run_iteration :
  ?predicate:Predicate.t ->
  ?serialize:bool ->
  ?transport:Netsim.t ->
  ?endpoint:Netsim.Transport_intf.endpoint ->
  ?reliable:Reliable.t ->
  ?wal:Round_log.t ->
  ?stream:Server.stream_cfg ->
  ?topology:Risefl_topology.Topology.mode ->
  Setup.t ->
  updates:int array array ->
  behaviours:behaviour array ->
  seed:string ->
  round:int ->
  stats

(** [honest_all n] — convenience: n honest behaviours. *)
val honest_all : int -> behaviour array
