(** Executable cross-check of the paper's Table 1 (see [Cost_model]).

    [run] drives one honest RiseFL round stage by stage with telemetry
    enabled, converts the measured point-operation deltas of each stage
    into group-exponentiation equivalents (using a runtime calibration of
    ops-per-full-scalar-mul), and compares them against the
    [Cost_model.risefl] predictions.  Each gated stage carries a tolerance
    band on the measured/predicted ratio; the bands are calibrated for the
    default configuration and documented in EXPERIMENTS.md.  A band is
    deliberately wide enough to absorb the model's dropped constants and
    sub-asymptotic terms (range proofs cost O(k·b_ip) regardless of d, the
    uniform a_0 row of the projection matrix costs d/log d on top of the
    k·d·logM/(log d·log p) small rows) but tight enough that an
    order-of-magnitude regression — e.g. replacing an MSM with per-term
    exponentiations — fails the check.

    Because the range-proof floor is d-independent and dominates absolute
    proof-generation cost at CI scale, the [proofgen-marginal] stage also
    measures proof generation at [2d] and gates the measured-vs-predicted
    {e delta}, which isolates the paper's O(d/log d) scaling claim from
    the constant term. *)

type stage_check = {
  stage : string;
  measured : float;  (** group-exp equivalents (elements for the comm row) *)
  predicted : float;  (** [Cost_model.risefl] prediction *)
  ratio : float;  (** measured / predicted *)
  lo : float;
  hi : float;
  gated : bool;  (** whether the stage participates in [all_ok] *)
  ok : bool;  (** [true] for ungated stages *)
}

type report = {
  cfg : Cost_model.config;
  ops_per_ge : float;  (** calibrated adds+doubles per full-scalar [Point.mul] *)
  stages : stage_check list;
  all_ok : bool;
}

val run : ?n:int -> ?m:int -> ?d:int -> ?k:int -> ?seed:string -> unit -> report
(** Defaults: [n = 3], [m = 1], [d = 256], [k = 4] — small enough for CI,
    large enough that d dominates k.  Temporarily enables telemetry
    (restoring the previous state), and raises [Failure] if the honest
    round itself misbehaves (a proof rejected, aggregation failing). *)

val to_table : report -> string
(** Aligned console rendering of the measured-vs-predicted table. *)
