(** The RiseFL client state machine (one object per client C_i).

    Per iteration the client: commits its update with the hybrid scheme
    (§4.3), verifies every peer's share and flags failures (§4.4.1),
    verifies the server's h vector and produces the proof bundle π
    (§4.4.2), and finally contributes its aggregated share (§4.5). *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type t

exception Server_misbehaving of string
(** Raised when the client catches the server deviating (bad h vector,
    more than m clear-share requests): the client quits the protocol. *)

(** [create setup ~id drbg] — [id] is 1-based. *)
val create : Setup.t -> id:int -> Prng.Drbg.t -> t

val id : t -> int
val public_key : t -> Point.t

(** [install_directory t pks] — the public-key bulletin (index j−1 holds
    client j's key). Must be called before any round, and again whenever
    a membership epoch rotates any key. *)
val install_directory : t -> Point.t array -> unit

(** {1 Key rotation}

    Generation g ≥ 1 key pairs derive from a {e key-only} DRBG fork of
    the client's root ([fork "rotate/g<g>"]): re-derivable at any stream
    position, in any process, so crash recovery and remote twins agree
    on rotated keys without them ever crossing the wire. *)

(** The client's current key generation (0 = the enrollment key). *)
val key_generation : t -> int

(** [rotation_proof t] — the continuity proof for rotating to generation
    [key_generation t + 1]: the next public key signed under the current
    (outgoing) secret key. Does {e not} adopt the new key — call
    {!rotate_to} once the rotation is accepted, so a rejected rotation
    never desyncs honest state. *)
val rotation_proof : t -> Membership.rotation

(** [rotate_to t ~gen] — adopt generation [gen] (idempotent; derives the
    key pair directly, so recovery can jump multiple generations).
    @raise Invalid_argument if [gen] is below the current generation. *)
val rotate_to : t -> gen:int -> unit

(** [commit_round ?topo ?cohort t ~round ~update] — the encoded update
    must satisfy the L2 bound; returns the round-1 message. Without
    [topo] the blind is VSSS-shared to every member of the round's
    cohort at its own evaluation point (wire v1; [cohort] defaults to
    all n clients, bit-identical to the fixed-set path). With [topo] it
    is shared only to this client's k graph neighbors, at their own
    evaluation points with a neighborhood-majority threshold, and the
    commit carries the topology digest (wire v2).
    @raise Invalid_argument if ‖update‖₂ > B or dimension mismatch. *)
val commit_round :
  ?topo:Risefl_topology.Topology.t ->
  ?cohort:int array ->
  t ->
  round:int ->
  update:int array ->
  Wire.commit_msg

(** [commit_round_unchecked] skips the local norm check — what a
    malicious client does when mounting a scaling attack. Only the
    probabilistic check stands between such an update and the aggregate. *)
val commit_round_unchecked :
  ?topo:Risefl_topology.Topology.t ->
  ?cohort:int array ->
  t ->
  round:int ->
  update:int array ->
  Wire.commit_msg

(** [receive_shares ?topo ?cohort t ~round ~msgs] — decrypt and verify
    the share addressed to this client inside each peer's commit
    message; returns the flag list (step 1 of §4.4.1). Stores valid
    shares for aggregation. Under a partial [cohort] (all-to-all wire
    v1) the share sits at this client's rank in the sorted cohort.
    Under [topo], commits from non-neighbor dealers hold no share for
    this client and are skipped (neither stored nor flagged — this
    client could not verify them anyway), and a dealer whose commit
    pins a different topology digest is flagged. *)
val receive_shares :
  ?topo:Risefl_topology.Topology.t ->
  ?cohort:int array ->
  t ->
  round:int ->
  msgs:Wire.commit_msg array ->
  Wire.flag_msg

(** [reveal_shares t ~requests] — rule-2 cooperation: return the clear
    shares this client generated for the given recipients (looked up by
    evaluation point, so it works for both topologies).
    @raise Server_misbehaving if more than m shares are requested.
    @raise Invalid_argument for a recipient this client never dealt to. *)
val reveal_shares : t -> requests:int list -> (int * Scalar.t) list

(** [accept_cleared_share t ~from ~value] — install a share that the
    server obtained in clear during rule 2 on this client's behalf. *)
val accept_cleared_share : t -> from:int -> value:Scalar.t -> unit

(** [proof_round ?predicate ?hs_tables t ~round ~s ~hs] — verify [hs]
    with VerCrt and build the proof bundle for the round's integrity
    predicate (default the plain L2 check). [hs_tables], when present
    and of length k+1, holds fixed-base window tables for the round's
    check bases h_t — the same bases serve every client of the round, so
    a caller driving several clients (the driver, the bench) builds them
    once and the per-client e* and Wf commitments get table-speed
    multiplications.
    @raise Server_misbehaving if the h vector fails verification.
    @raise Failure if this client's update cannot pass the probabilistic
    check (never happens for an in-bound update, up to the ε event). *)
val proof_round :
  ?predicate:Predicate.t ->
  ?hs_tables:Curve25519.Point.Table.table array ->
  ?cohort:int array ->
  t ->
  round:int ->
  s:Bytes.t ->
  hs:Point.t array ->
  Wire.proof_msg

(** [try_proof_round] — like {!proof_round} but returns [None] when the
    update cannot pass the check: the best a rational malicious client
    with an oversized update can do is attempt the proof and stay silent
    when the sampled projections betray it. [cohort] restricts the
    shared-seed derivation H(s, pk..) to the round's active cohort — it
    must match the server's epoch or the sampled matrix (and with it
    every verdict) diverges. *)
val try_proof_round :
  ?predicate:Predicate.t ->
  ?hs_tables:Curve25519.Point.Table.table array ->
  ?cohort:int array ->
  t ->
  round:int ->
  s:Bytes.t ->
  hs:Point.t array ->
  Wire.proof_msg option

(** The Fiat–Shamir transcript shape shared by prover and verifier for the
    proof bundle (exposed so the server can replay it). *)
val make_transcript : round:int -> client_id:int -> s:Bytes.t -> Zkp.Transcript.t

(** [agg_round t ~honest] — Σ of the stored shares from the honest set.
    @raise Invalid_argument if a share from an honest peer is missing
    (cannot happen when the server follows the protocol). *)
val agg_round : t -> honest:int list -> Wire.agg_msg

(** [agg_round_masked t ~round ~topo ~honest] — the k-regular
    aggregation message: this client's own blind r_i plus the signed
    pairwise masks toward every honest graph neighbor
    (ε_ij = +1 for i < j, −1 otherwise). Summed over all alive honest
    clients the masks cancel and Σ r_i remains; a dropout's dangling
    masks are unwound during neighborhood recovery. *)
val agg_round_masked :
  t -> round:int -> topo:Risefl_topology.Topology.t -> honest:int list -> Wire.agg_msg

(** [recovery_response t ~round ~topo ~dropout] — this client's
    contribution to recovering an agg-stage dropout d: the stored VSSS
    share of r_d (None if d's share never verified) and the pairwise
    mask m_{i,d}, which the server uses to unwind the dangling
    ε_id·m_id left in this client's masked sum.
    @raise Server_misbehaving if [dropout] is this client itself or not
    one of its graph neighbors. *)
val recovery_response :
  t ->
  round:int ->
  topo:Risefl_topology.Topology.t ->
  dropout:int ->
  Scalar.t option * Scalar.t
