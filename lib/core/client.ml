module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Pedersen = Commitments.Pedersen
module Sigma = Zkp.Sigma
module Range_proof = Zkp.Range_proof
module Transcript = Zkp.Transcript

exception Server_misbehaving of string

type t = {
  setup : Setup.t;
  id : int;
  drbg : Prng.Drbg.t;
  mutable keys : Channel.keypair;
  mutable gen : int;  (* key generation: 0 = the enrollment key *)
  mutable directory : Point.t array;
  (* round state *)
  mutable r : Scalar.t;  (* this round's Pedersen blind *)
  mutable u : int array;  (* this round's encoded update *)
  mutable out_shares : Vsss.share array;  (* the shares we dealt, index j-1 *)
  mutable my_check : Vsss.check;
  mutable in_shares : Scalar.t option array;  (* share of r_j received from client j, index j-1 *)
}

let create setup ~id drbg =
  if id < 1 || id > setup.Setup.params.Params.n_clients then invalid_arg "Client.create: bad id";
  {
    setup;
    id;
    drbg;
    keys = Channel.gen_keypair drbg;
    gen = 0;
    directory = [||];
    r = Scalar.zero;
    u = [||];
    out_shares = [||];
    my_check = [||];
    in_shares = [||];
  }

let id t = t.id
let public_key t = t.keys.Channel.pk

let install_directory t pks =
  if Array.length pks <> t.setup.Setup.params.Params.n_clients then
    invalid_arg "Client.install_directory: wrong size";
  t.directory <- pks

let key_for t j = Channel.shared_key ~my:t.keys ~their_pk:t.directory.(j - 1)

(* --- key rotation ----------------------------------------------------

   Generation g >= 1 keys derive from a key-only fork of the client's
   root DRBG: independent of how far the sequential stream has advanced,
   so any process (the client itself, a crash-recovered twin rebuilding
   the session from the shared seed) re-derives the same key pair at any
   time. The continuity proof signs the new pk under the OUTGOING secret
   key (see {!Membership.sign_rotation}); adopting the generation is a
   separate step so a rejected rotation never desyncs honest state. *)

let keypair_at t ~gen =
  if gen < 1 then invalid_arg "Client.keypair_at: generation must be >= 1";
  Channel.gen_keypair (Prng.Drbg.fork t.drbg (Printf.sprintf "rotate/g%d" gen))

let key_generation t = t.gen

let rotation_proof t =
  let gen = t.gen + 1 in
  let next = keypair_at t ~gen in
  let nonce = Scalar.random (Prng.Drbg.fork t.drbg (Printf.sprintf "rotate/g%d/nonce" gen)) in
  Membership.sign_rotation ~id:t.id ~gen ~sk_old:t.keys.Channel.sk ~pk_old:t.keys.Channel.pk
    ~new_pk:next.Channel.pk ~nonce

let rotate_to t ~gen =
  if gen < t.gen then invalid_arg "Client.rotate_to: cannot rotate backwards";
  if gen > t.gen then begin
    t.keys <- keypair_at t ~gen;
    t.gen <- gen
  end

let share_nonce ~round ~sender ~receiver = Printf.sprintf "share/r%d/%d->%d" round sender receiver

let commit_round_unchecked ?topo ?cohort t ~round ~update =
  let p = t.setup.Setup.params in
  if Array.length update <> p.Params.d then invalid_arg "Client.commit_round: dimension mismatch";
  t.u <- Array.copy update;
  t.r <- Scalar.random t.drbg;
  let y =
    Pedersen.commit_vec ~g_table:t.setup.Setup.g_table ~bases:t.setup.Setup.w ~values:update
      ~blind:t.r
  in
  (* all-to-all: shares at every cohort member's own evaluation point
     (the full universe 1..n when no cohort is given — bit-identical to
     the fixed-set path), threshold shamir_t. k-regular: shares only at
     this client's sorted neighbor ids, threshold a neighborhood
     majority. Either way recovery interpolates the same polynomial. *)
  let shares, check =
    match (topo, cohort) with
    | Some topo, _ ->
        Vsss.share_at t.drbg ~secret:t.r
          ~xs:(Risefl_topology.Topology.neighbors topo t.id)
          ~t:(Risefl_topology.Topology.threshold topo)
          ~g:t.setup.Setup.g
    | None, Some xs ->
        Vsss.share_at t.drbg ~secret:t.r ~xs ~t:(Params.shamir_t p) ~g:t.setup.Setup.g
    | None, None ->
        Vsss.share t.drbg ~secret:t.r ~n:p.Params.n_clients ~t:(Params.shamir_t p)
          ~g:t.setup.Setup.g
  in
  t.out_shares <- shares;
  t.my_check <- check;
  t.in_shares <- Array.make p.Params.n_clients None;
  let enc_shares =
    Array.map
      (fun (s : Vsss.share) ->
        let j = s.Vsss.idx in
        Channel.seal ~key:(key_for t j)
          ~nonce_seed:(share_nonce ~round ~sender:t.id ~receiver:j)
          (Scalar.to_bytes s.Vsss.value))
      shares
  in
  let topo_digest = Option.map Risefl_topology.Topology.digest topo in
  { Wire.sender = t.id; y; check; enc_shares; topo_digest }

let commit_round ?topo ?cohort t ~round ~update =
  if not (Params.check_update_norm t.setup.Setup.params update) then
    invalid_arg "Client.commit_round: update exceeds the L2 bound";
  commit_round_unchecked ?topo ?cohort t ~round ~update

(* rank of this client inside a dealer's sorted neighbor list, i.e. the
   position of our sealed share inside its v2 commit *)
let share_rank topo t ~dealer =
  let ns = Risefl_topology.Topology.neighbors topo dealer in
  let rank = ref (-1) in
  Array.iteri (fun i x -> if x = t.id then rank := i) ns;
  (!rank, Array.length ns)

let receive_shares ?topo ?cohort t ~round ~msgs =
  let g = t.setup.Setup.g in
  let my_digest = Option.map Risefl_topology.Topology.digest topo in
  (* under a partial cohort the all-to-all commit carries one sealed
     share per cohort member, positioned by rank in the sorted cohort *)
  let my_cohort_rank =
    match cohort with
    | None -> t.id - 1
    | Some xs ->
        let rank = ref (-1) in
        Array.iteri (fun i x -> if x = t.id then rank := i) xs;
        !rank
  in
  let cohort_size = match cohort with None -> Array.length t.directory | Some xs -> Array.length xs in
  (* decrypt + VSSS-verify each dealer's share independently (one MSM
     per dealer), in parallel; mutate round state sequentially after *)
  let opened =
    Parallel.parallel_map
      (fun (m : Wire.commit_msg) ->
        let j = m.Wire.sender in
        match topo with
        | None -> (
            if my_cohort_rank < 0 || Array.length m.Wire.enc_shares <> cohort_size then (j, `Bad)
            else
            let sealed = m.Wire.enc_shares.(my_cohort_rank) in
            match Channel.open_ ~key:(key_for t j) sealed with
            | None -> (j, `Bad)
            | Some plain -> (
                match Scalar.of_bytes_opt plain with
                | None -> (j, `Bad)
                | Some value ->
                    let share = { Vsss.idx = t.id; value } in
                    if Vsss.verify ~g ~check:m.Wire.check share then (j, `Ok value) else (j, `Bad)))
        | Some topo -> (
            (* a dealer we are not a neighbor of holds no share for us:
               nothing to verify, nothing to flag (we could not tell a
               good share from a bad one anyway). Our own commit carries
               no share to self — r_i enters the aggregate directly. *)
            let rank, deg = share_rank topo t ~dealer:j in
            if j = t.id || rank < 0 then (j, `Skip)
            else if
              Array.length m.Wire.enc_shares <> deg
              || not
                   (match m.Wire.topo_digest with
                   | Some d -> ( match my_digest with Some d' -> Bytes.equal d d' | None -> false)
                   | None -> false)
            then (j, `Bad)
            else
              let sealed = m.Wire.enc_shares.(rank) in
              match Channel.open_ ~key:(key_for t j) sealed with
              | None -> (j, `Bad)
              | Some plain -> (
                  match Scalar.of_bytes_opt plain with
                  | None -> (j, `Bad)
                  | Some value ->
                      let share = { Vsss.idx = t.id; value } in
                      if Vsss.verify ~g ~check:m.Wire.check share then (j, `Ok value)
                      else (j, `Bad))))
      msgs
  in
  let suspects = ref [] in
  Array.iter
    (fun (j, v) ->
      match v with
      | `Ok value -> t.in_shares.(j - 1) <- Some value
      | `Bad -> suspects := j :: !suspects
      | `Skip -> ())
    opened;
  ignore round;
  { Wire.sender = t.id; suspects = List.rev !suspects }

let reveal_shares t ~requests =
  let m = t.setup.Setup.params.Params.max_malicious in
  if List.length requests > m then
    raise (Server_misbehaving "server requested more than m clear shares");
  (* look the share up by evaluation point, not position: under a
     k-regular topology out_shares holds only the k neighbor shares *)
  List.map
    (fun j ->
      match Array.to_list t.out_shares |> List.find_opt (fun s -> s.Vsss.idx = j) with
      | Some s -> (j, s.Vsss.value)
      | None -> invalid_arg "Client.reveal_shares: bad index")
    requests

let accept_cleared_share t ~from ~value = t.in_shares.(from - 1) <- Some value

(* The client-side transcript for the proof bundle.  The server replays
   the identical sequence, so every absorbed value is part of the
   statement. *)
let make_transcript ~round ~client_id ~s =
  let tr = Transcript.create "risefl/proof/v1" in
  Transcript.append_int tr ~label:"round" round;
  Transcript.append_int tr ~label:"client" client_id;
  Transcript.append_bytes tr ~label:"s" s;
  tr

let try_proof_round ?(predicate = Predicate.L2) ?hs_tables ?cohort t ~round ~s ~hs =
  Predicate.validate t.setup.Setup.params predicate;
  let p = t.setup.Setup.params in
  let setup = t.setup
  and d = t.setup.Setup.params.Params.d in
  (* the shared seed binds exactly the round's active cohort: H(s,
     pk_{i1}..pk_{ic}) over the sorted cohort ids (the full directory
     when no cohort is given — the fixed-set bytes, unchanged) *)
  let seed_pks =
    match cohort with
    | None -> t.directory
    | Some xs -> Array.map (fun j -> t.directory.(j - 1)) xs
  in
  let seed = Sampling.seed ~s ~pks:seed_pks in
  let matrix = Sampling.sample_matrix ~seed ~d ~k:p.Params.k ~m_factor:p.Params.m_factor in
  (* Algorithm 3: never trust h from the server *)
  if not (Sampling.ver_crt t.drbg ~bases:setup.Setup.w ~targets:hs ~matrix) then
    raise (Server_misbehaving "h vector fails VerCrt");
  (* exact projections *)
  let v0, vs = Sampling.project matrix t.u in
  let k = p.Params.k in
  let shift = Bigint.shift_left Bigint.one (p.Params.b_ip_bits - 1) in
  let in_sigma_range =
    Array.for_all (fun v -> Bigint.compare (Bigint.abs (Bigint.of_int v)) shift < 0) vs
  in
  let sum_sq =
    Array.fold_left (fun acc v -> Bigint.add acc (Bigint.mul (Bigint.of_int v) (Bigint.of_int v))) Bigint.zero vs
  in
  (* predicate-specific budget: L2 compares against B0; cosine against
     w^2 * c_factor with w = <u, v> *)
  let budget =
    match predicate with
    | Predicate.L2 -> Some (setup.Setup.b0, None)
    | Predicate.Cosine { v; alpha } ->
        let w = Sampling.dot_exact v t.u in
        if w < 0 then None
        else begin
          let factor = Predicate.cosine_factor p ~v ~alpha in
          let cap = Bigint.mul (Bigint.mul (Bigint.of_int w) (Bigint.of_int w)) factor in
          if Bigint.bit_length cap >= p.Params.b_max_bits then None else Some (cap, Some (w, factor))
        end
  in
  match budget with
  | None -> None
  | Some (cap, cosine_data) ->
  if not (in_sigma_range && Bigint.compare sum_sq cap <= 0) then None
  else Some (
  (* commitments e_t = g^{v_t} h_t^{r}; o_t = g^{v_t} q^{s_t}; o'_t = g^{v_t^2} q^{s'_t} *)
  let mul_h i sc =
    (* hs are round-shared check bases: when the driver supplies window
       tables for them (they amortize across all clients) use those *)
    match hs_tables with
    | Some ts when Array.length ts = k + 1 -> Point.Table.mul ts.(i) sc
    | _ -> Point.mul sc hs.(i)
  in
  let es =
    Array.init (k + 1) (fun i ->
        let gv =
          if i = 0 then Point.Table.mul setup.Setup.g_table v0
          else Point.Table.mul_small setup.Setup.g_table vs.(i - 1)
        in
        Point.add gv (mul_h i t.r))
  in
  let ss = Array.init k (fun _ -> Scalar.random t.drbg) in
  let ss' = Array.init k (fun _ -> Scalar.random t.drbg) in
  let os =
    Array.init k (fun i ->
        Point.add (Point.Table.mul_small setup.Setup.g_table vs.(i)) (Point.Table.mul setup.Setup.q_table ss.(i)))
  in
  let os' =
    Array.init k (fun i ->
        let v2 = Scalar.of_bigint (Bigint.mul (Bigint.of_int vs.(i)) (Bigint.of_int vs.(i))) in
        Point.add (Point.Table.mul setup.Setup.g_table v2) (Point.Table.mul setup.Setup.q_table ss'.(i)))
  in
  let tr = make_transcript ~round ~client_id:t.id ~s in
  (* rho: well-formedness linking z = g^r, e*, o *)
  let z = Vsss.commitment_of_check t.my_check in
  let vs_scalars = Array.init (k + 1) (fun i -> if i = 0 then v0 else Scalar.of_int vs.(i - 1)) in
  let wf =
    Sigma.Wf.prove ~g_table:setup.Setup.g_table ~q_table:setup.Setup.q_table ?hs_tables t.drbg tr
      ~g:setup.Setup.g ~q:setup.Setup.q ~hs ~z ~es ~os ~r:t.r ~vs:vs_scalars ~ss
  in
  (* tau: o'_t commits the square of o_t's secret *)
  let squares =
    Array.init k (fun i ->
        Sigma.Square.prove ~g_table:setup.Setup.g_table ~q_table:setup.Setup.q_table t.drbg tr
          ~g:setup.Setup.g ~q:setup.Setup.q ~y1:os.(i) ~y2:os'.(i)
          ~x:(Scalar.of_int vs.(i)) ~s:ss.(i) ~s':ss'.(i))
  in
  (* cosine extension: commit w = <u, v>, link it to the homomorphic
     derivation from y_i, prove its square and w >= 0 *)
  let cosine, mu_value, mu_blind_head =
    match cosine_data with
    | None ->
        (* L2: mu proves B0 - sum v_t^2 >= 0 *)
        (None, Bigint.sub setup.Setup.b0 sum_sq, Scalar.zero)
    | Some (w, factor) ->
        let s_w = Scalar.random t.drbg and s'_w = Scalar.random t.drbg in
        let o_w =
          Point.add (Point.Table.mul_small setup.Setup.g_table w) (Point.Table.mul setup.Setup.q_table s_w)
        in
        let w2 = Bigint.mul (Bigint.of_int w) (Bigint.of_int w) in
        let o_w2 =
          Point.add
            (Point.Table.mul setup.Setup.g_table (Scalar.of_bigint w2))
            (Point.Table.mul setup.Setup.q_table s'_w)
        in
        let v_ref = match predicate with Predicate.Cosine { v; _ } -> v | Predicate.L2 -> assert false in
        (* W_v = prod w_l^{v_l}; C_w = g^w W_v^r is what the server derives
           from y_i *)
        let w_base = Curve25519.Msm.msm_small (Array.mapi (fun l vl -> (vl, setup.Setup.w.(l))) v_ref) in
        let c_w = Point.add (Point.Table.mul_small setup.Setup.g_table w) (Point.mul t.r w_base) in
        let z = Vsss.commitment_of_check t.my_check in
        let link =
          Sigma.Link.prove ~g_table:setup.Setup.g_table ~q_table:setup.Setup.q_table t.drbg tr
            ~g:setup.Setup.g ~h:w_base ~q:setup.Setup.q ~z ~e:c_w ~o:o_w
            ~x:(Scalar.of_int w) ~r:t.r ~s:s_w
        in
        let w_square =
          Sigma.Square.prove ~g_table:setup.Setup.g_table ~q_table:setup.Setup.q_table t.drbg tr
            ~g:setup.Setup.g ~q:setup.Setup.q ~y1:o_w ~y2:o_w2
            ~x:(Scalar.of_int w) ~s:s_w ~s':s'_w
        in
        let w_range =
          Range_proof.prove ~g_table:setup.Setup.g_table ~h_table:setup.Setup.q_table t.drbg tr
            ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
            ~bits:p.Params.b_ip_bits ~values:[| Bigint.of_int w |] ~blinds:[| s_w |]
        in
        (* mu proves w^2 * factor - sum v_t^2 >= 0, with blind
           s'_w * factor - sum s'_t *)
        ( Some { Wire.o_w; o_w2; link; w_square; w_range },
          Bigint.sub (Bigint.mul w2 factor) sum_sq,
          Scalar.mul s'_w (Scalar.of_bigint factor) )
  in
  (* sigma: each v_t + 2^(b_ip-1) in [0, 2^b_ip) *)
  let sigma_values = Array.map (fun v -> Bigint.add (Bigint.of_int v) shift) vs in
  let sigma_range =
    Range_proof.prove ~g_table:setup.Setup.g_table ~h_table:setup.Setup.q_table t.drbg tr
      ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
      ~bits:p.Params.b_ip_bits ~values:sigma_values ~blinds:ss
  in
  let mu_blind = Scalar.sub mu_blind_head (Array.fold_left Scalar.add Scalar.zero ss') in
  let mu_range =
    Range_proof.prove ~g_table:setup.Setup.g_table ~h_table:setup.Setup.q_table t.drbg tr
      ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
      ~bits:p.Params.b_max_bits ~values:[| mu_value |] ~blinds:[| mu_blind |]
  in
  { Wire.sender = t.id; es; os; os'; wf; squares; cosine; sigma_range; mu_range })

let proof_round ?(predicate = Predicate.L2) ?hs_tables ?cohort t ~round ~s ~hs =
  match try_proof_round ~predicate ?hs_tables ?cohort t ~round ~s ~hs with
  | Some msg -> msg
  | None ->
      failwith
        "Client.proof_round: update cannot pass the probabilistic check (out-of-bound update, an \
         eps-probability event, or too-tight parameters)"

let agg_round t ~honest =
  let r_sum =
    List.fold_left
      (fun acc j ->
        match t.in_shares.(j - 1) with
        | Some v -> Scalar.add acc v
        | None -> invalid_arg (Printf.sprintf "Client.agg_round: missing share from honest client %d" j))
      Scalar.zero honest
  in
  { Wire.sender = t.id; r_sum }

(* the pairwise one-time mask of the k-regular aggregation round: both
   endpoints derive the same scalar from their ECDH shared key, keyed by
   the round and the unordered pair, so masks cancel in the sum without
   any extra communication *)
let pair_mask t ~round ~peer =
  let lo = min t.id peer and hi = max t.id peer in
  let d =
    Prng.Drbg.fork
      (Prng.Drbg.create (key_for t peer))
      (Printf.sprintf "aggmask/r%d/%d-%d" round lo hi)
  in
  Scalar.random d

let agg_round_masked t ~round ~topo ~honest =
  let r_sum =
    List.fold_left
      (fun acc j ->
        if j = t.id || not (Risefl_topology.Topology.is_neighbor topo t.id j) then acc
        else
          let mask = pair_mask t ~round ~peer:j in
          (* ε_ij = +1 for i < j, −1 for i > j: the two sides cancel *)
          if t.id < j then Scalar.add acc mask else Scalar.sub acc mask)
      t.r honest
  in
  { Wire.sender = t.id; r_sum }

let recovery_response t ~round ~topo ~dropout =
  if dropout = t.id then
    raise (Server_misbehaving "server asked this client to recover itself");
  if not (Risefl_topology.Topology.is_neighbor topo t.id dropout) then
    raise (Server_misbehaving "recovery request for a non-neighbor");
  (t.in_shares.(dropout - 1), pair_mask t ~round ~peer:dropout)
