(** Binary serialization of every protocol message.

    A production deployment ships these messages over a network; encoding
    them for real (rather than estimating sizes) keeps the communication
    accounting honest and forces the server/clients to handle malformed
    bytes. Format: little-endian u32 lengths/counts, 32-byte compressed
    points, 32-byte canonical scalars; every decoder validates counts,
    point encodings (on-curve + canonical) and scalar canonicity, and
    fails with [Malformed] rather than crashing.

    Decoded points are {e not} subjected to the (expensive) prime-order
    subgroup check; all higher-level checks in this protocol are
    cofactor-robust for honest aggregation, and a deployment would use a
    cofactor-free encoding (Ristretto) as the paper does. *)

exception Malformed of string

val encode_commit_msg : Wire.commit_msg -> Bytes.t
val decode_commit_msg : Bytes.t -> Wire.commit_msg
val encode_flag_msg : Wire.flag_msg -> Bytes.t
val decode_flag_msg : Bytes.t -> Wire.flag_msg
val encode_proof_msg : Wire.proof_msg -> Bytes.t
val decode_proof_msg : Bytes.t -> Wire.proof_msg
val encode_agg_msg : Wire.agg_msg -> Bytes.t
val decode_agg_msg : Bytes.t -> Wire.agg_msg

(** The server → clients proof-round broadcast: (s, h₀ … h_k). *)
val encode_broadcast : s:Bytes.t -> hs:Curve25519.Point.t array -> Bytes.t

val decode_broadcast : Bytes.t -> Bytes.t * Curve25519.Point.t array
