(** Binary serialization of every protocol message.

    A production deployment ships these messages over a network; encoding
    them for real (rather than estimating sizes) keeps the communication
    accounting honest and forces the server/clients to handle malformed
    bytes. Format: little-endian u32 lengths/counts, 32-byte compressed
    points, 32-byte canonical scalars; every decoder validates counts,
    point encodings (on-curve + canonical) and scalar canonicity.

    Totality invariant: the [decode_*] result decoders are total — on any
    byte string whatsoever they return [Ok] or [Error] and never raise,
    and no length prefix is trusted before it has been validated against
    the bytes actually remaining in the frame (a hostile 0xFFFFFFFF count
    cannot trigger a large allocation). The server's rule for an
    undecodable frame is: the sender loses its honesty bit and goes into
    C*, never the server its round.

    Decoded points are {e not} subjected to the (expensive) prime-order
    subgroup check; all higher-level checks in this protocol are
    cofactor-robust for honest aggregation, and a deployment would use a
    cofactor-free encoding (Ristretto) as the paper does. *)

exception Malformed of string
(** Raised only by the legacy [decode_*_msg] wrappers below — never by the
    result decoders. *)

(** Where and why a frame failed to decode. [offset] is the byte position
    the reader had reached when it rejected the frame. *)
type error = { offset : int; reason : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val encode_commit_msg : Wire.commit_msg -> Bytes.t
val encode_flag_msg : Wire.flag_msg -> Bytes.t
val encode_proof_msg : Wire.proof_msg -> Bytes.t
val encode_agg_msg : Wire.agg_msg -> Bytes.t

(** The server → clients proof-round broadcast: (s, h₀ … h_k). *)
val encode_broadcast : s:Bytes.t -> hs:Curve25519.Point.t array -> Bytes.t

(** Total decoders — the only ones the transport-facing paths use. *)

val decode_commit : Bytes.t -> (Wire.commit_msg, error) result
val decode_flag : Bytes.t -> (Wire.flag_msg, error) result
val decode_proof : Bytes.t -> (Wire.proof_msg, error) result
val decode_agg : Bytes.t -> (Wire.agg_msg, error) result
val decode_broadcast_r : Bytes.t -> (Bytes.t * Curve25519.Point.t array, error) result

(** Legacy raising decoders (tests and trusted round-trips).
    @raise Malformed on any decode failure. *)

val decode_commit_msg : Bytes.t -> Wire.commit_msg
val decode_flag_msg : Bytes.t -> Wire.flag_msg
val decode_proof_msg : Bytes.t -> Wire.proof_msg
val decode_agg_msg : Bytes.t -> Wire.agg_msg
val decode_broadcast : Bytes.t -> Bytes.t * Curve25519.Point.t array
