(** Binary serialization of every protocol message.

    A production deployment ships these messages over a network; encoding
    them for real (rather than estimating sizes) keeps the communication
    accounting honest and forces the server/clients to handle malformed
    bytes. Format: little-endian u32 lengths/counts, 32-byte compressed
    points, 32-byte canonical scalars; every decoder validates counts,
    point encodings (on-curve + canonical) and scalar canonicity.

    Totality invariant: the [decode_*] result decoders are total — on any
    byte string whatsoever they return [Ok] or [Error] and never raise,
    and no length prefix is trusted before it has been validated against
    the bytes actually remaining in the frame (a hostile 0xFFFFFFFF count
    cannot trigger a large allocation). The server's rule for an
    undecodable frame is: the sender loses its honesty bit and goes into
    C*, never the server its round.

    Decoded points are {e not} subjected to the (expensive) prime-order
    subgroup check; all higher-level checks in this protocol are
    cofactor-robust for honest aggregation, and a deployment would use a
    cofactor-free encoding (Ristretto) as the paper does. *)

exception Malformed of string
(** Raised only by the legacy [decode_*_msg] wrappers below — never by the
    result decoders. *)

(** Where and why a frame failed to decode. [offset] is the byte position
    the reader had reached when it rejected the frame. *)
type error = { offset : int; reason : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Low-level writer/reader, exposed for sibling record codecs (the
    write-ahead log in [Round_log]) so they share the same primitives and
    totality discipline as the protocol messages. *)
module W : sig
  val create : unit -> Buffer.t
  val u8 : Buffer.t -> int -> unit
  val u32 : Buffer.t -> int -> unit

  val i32 : Buffer.t -> int -> unit
  (** Signed 32-bit, two's complement in the u32 lane. *)

  val bytes : Buffer.t -> Bytes.t -> unit
  (** Length-prefixed byte string. *)
end

module R : sig
  type t

  val u8 : t -> int
  val u32 : t -> int
  val i32 : t -> int
  val bytes : t -> Bytes.t

  val remaining : t -> int
  (** Bytes left unread — lets a decoder accept an optional trailing
      extension (e.g. a protocol-version tail) without breaking old
      frames. *)

  val finish : t -> unit
end

val total : string -> (R.t -> 'a) -> Bytes.t -> ('a, error) result
(** [total name f buf] — run reader [f] over [buf]; any defect becomes
    [Error] (the totality funnel every decoder in this module uses). *)

val encode_commit_msg : Wire.commit_msg -> Bytes.t
val encode_flag_msg : Wire.flag_msg -> Bytes.t
val encode_proof_msg : Wire.proof_msg -> Bytes.t
val encode_agg_msg : Wire.agg_msg -> Bytes.t

(** The server → clients proof-round broadcast: (s, h₀ … h_k). *)
val encode_broadcast : s:Bytes.t -> hs:Curve25519.Point.t array -> Bytes.t

(** Total decoders — the only ones the transport-facing paths use. *)

val decode_commit : Bytes.t -> (Wire.commit_msg, error) result
val decode_flag : Bytes.t -> (Wire.flag_msg, error) result
val decode_proof : Bytes.t -> (Wire.proof_msg, error) result
val decode_agg : Bytes.t -> (Wire.agg_msg, error) result
val decode_broadcast_r : Bytes.t -> (Bytes.t * Curve25519.Point.t array, error) result

(** Reliable-transport framing: [{ round; stage; sender; seq }] plus a
    CRC-32 over the payload. The reliability layer wraps every protocol
    frame in this header so the receiver can ack, de-duplicate by
    (round, stage, sender, seq) and reject cross-round replays before the
    inner codec ever runs; a CRC mismatch reads as transient corruption
    (retransmit), not as sender malice. *)

type frame_header = { fh_round : int; fh_stage : int; fh_sender : int; fh_seq : int }

val encode_framed : round:int -> stage:int -> sender:int -> seq:int -> Bytes.t -> Bytes.t
val decode_framed : Bytes.t -> (frame_header * Bytes.t, error) result

(** Server state snapshots for the write-ahead log. *)

val encode_snapshot : Wire.server_snapshot -> Bytes.t
val decode_snapshot : Bytes.t -> (Wire.server_snapshot, error) result

(** Legacy raising decoders (tests and trusted round-trips).
    @raise Malformed on any decode failure. *)

val decode_commit_msg : Bytes.t -> Wire.commit_msg
val decode_flag_msg : Bytes.t -> Wire.flag_msg
val decode_proof_msg : Bytes.t -> Wire.proof_msg
val decode_agg_msg : Bytes.t -> Wire.agg_msg
val decode_broadcast : Bytes.t -> Bytes.t * Curve25519.Point.t array
