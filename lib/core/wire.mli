(** Message types exchanged during one RiseFL iteration, with exact
    serialized-size accounting (the paper's "communication cost per
    client" metric counts group elements at 32 bytes each). *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

(** Round 1 (Figure 2b): commitment y_i, VSSS check string Ψ_i, and the
    encrypted shares Enc(r_ij) — one per recipient.

    Two share topologies exist on the wire. Under the all-to-all path
    ([topo_digest = None], wire v1) [enc_shares] holds n sealed shares,
    position j−1 sealed to client j. Under a k-regular topology
    ([topo_digest = Some _], wire v2) it holds exactly k shares, one per
    graph neighbor of [sender] in {e ascending neighbor-id order}, each
    share evaluated at the recipient's own id; the digest pins the graph
    the sender computed. Positions are no longer ids — recipients locate
    their share by rank in the sorted neighbor list. *)
type commit_msg = {
  sender : int;  (** 1-based client index *)
  y : Point.t array;  (** d coordinate commitments *)
  check : Vsss.check;  (** element 0 is z_i = g^{r_i}; length = the sharing threshold *)
  enc_shares : Channel.sealed array;  (** sealed shares; layout depends on [topo_digest] *)
  topo_digest : Bytes.t option;
      (** [None] = all-to-all (v1 bytes); [Some d] = 32-byte topology
          digest of the k-regular graph this round's shares follow. *)
}

(** Round 2 step 1: the candidate-malicious list from share verification. *)
type flag_msg = { sender : int; suspects : int list }

(** The extra material of the cosine-defense extension (§4.6): a fresh
    commitment of w = ⟨u, v⟩ linked to the homomorphically derived one,
    its square, and the w ≥ 0 range proof. *)
type cosine_part = {
  o_w : Point.t;  (** g^w·q^{s_w} *)
  o_w2 : Point.t;  (** g^{w²}·q^{s'_w} *)
  link : Zkp.Sigma.Link.proof;
  w_square : Zkp.Sigma.Square.proof;
  w_range : Zkp.Range_proof.proof;
}

(** Round 2 step 2: the client's proof bundle π = (e*, o, o′, ρ, τ, σ, μ).
    (p is recomputed by the server from o′ and B₀ — or from o′, o_w2 and
    c_factor under the cosine predicate.) *)
type proof_msg = {
  sender : int;
  es : Point.t array;  (** e₀ … e_k *)
  os : Point.t array;  (** o₁ … o_k *)
  os' : Point.t array;  (** o′₁ … o′_k *)
  wf : Zkp.Sigma.Wf.proof;  (** ρ *)
  squares : Zkp.Sigma.Square.proof array;  (** τ, one per t *)
  cosine : cosine_part option;  (** present iff the round's predicate is cosine *)
  sigma_range : Zkp.Range_proof.proof;  (** σ *)
  mu_range : Zkp.Range_proof.proof;  (** μ *)
}

(** Round 3 (Figure 2d): aggregated share over the honest set. *)
type agg_msg = { sender : int; r_sum : Scalar.t }

(** Everything crash-recovery needs to resume a server bit-identically:
    the malicious sets (this round's C* and the session-scope bans), the
    validated commits, the last broadcast check string, and the number of
    bytes the root DRBG has drawn — a freshly created server fast-forwards
    its stream by [snap_drawn] bytes and is then byte-aligned with the
    crashed one. Written to the write-ahead log at round boundaries. *)
type server_snapshot = {
  snap_round : int;
  snap_drawn : int;  (** bytes consumed from the server's root DRBG *)
  snap_bad : bool array;  (** C* of the round in progress, index i−1 *)
  snap_banned : bool array;  (** C* carried across session rounds *)
  snap_commits : commit_msg option array;
  snap_s : Bytes.t;  (** last broadcast check string; may be empty *)
}

val point_size : int
val scalar_size : int
val commit_msg_size : commit_msg -> int
val flag_msg_size : flag_msg -> int
val proof_msg_size : proof_msg -> int
val agg_msg_size : agg_msg -> int

(** Size of the server → client broadcast in the proof round:
    s plus the k+1 precomputed h_t. *)
val broadcast_size : k:int -> int
