module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type standing = Enrolled | Dropped | Banned | Rotated

let standing_to_string = function
  | Enrolled -> "enrolled"
  | Dropped -> "dropped"
  | Banned -> "banned"
  | Rotated -> "rotated"

(* --- key-rotation continuity proof ---------------------------------- *)

(* A rotation binds the new public key to the old one with a Schnorr
   signature under the OLD secret key over the (id, generation, pk_old,
   pk_new) statement: whoever holds sk_old vouches for pk_new. A forged
   rotation (no sk_old) fails the verification equation and convicts. *)
type rotation = {
  rot_id : int;  (** 1-based client id *)
  rot_gen : int;  (** the generation being rotated TO (>= 1) *)
  rot_new_pk : Point.t;
  rot_r : Point.t;  (** Schnorr commitment g^k *)
  rot_s : Scalar.t;  (** Schnorr response k + c·sk_old *)
}

let rotation_challenge ~id ~gen ~pk_old ~pk_new ~r =
  let h = Hashfn.Sha512.init () in
  Hashfn.Sha512.update_string h "risefl/rotate/v1";
  Hashfn.Sha512.update_string h (Printf.sprintf "/%d/%d/" id gen);
  Hashfn.Sha512.update h (Point.compress pk_old);
  Hashfn.Sha512.update h (Point.compress pk_new);
  Hashfn.Sha512.update h (Point.compress r);
  Scalar.of_bytes_wide (Hashfn.Sha512.finalize h)

let sign_rotation ~id ~gen ~sk_old ~pk_old ~new_pk ~nonce =
  let r = Point.mul_base nonce in
  let c = rotation_challenge ~id ~gen ~pk_old ~pk_new:new_pk ~r in
  { rot_id = id; rot_gen = gen; rot_new_pk = new_pk; rot_r = r; rot_s = Scalar.add nonce (Scalar.mul c sk_old) }

let verify_rotation rot ~pk_old =
  let c = rotation_challenge ~id:rot.rot_id ~gen:rot.rot_gen ~pk_old ~pk_new:rot.rot_new_pk ~r:rot.rot_r in
  Point.equal (Point.mul_base rot.rot_s) (Point.add rot.rot_r (Point.mul c pk_old))

(* --- membership epochs ----------------------------------------------- *)

type delta =
  | D_joined of int
  | D_left of int
  | D_rejoined of int
  | D_rotated of int
  | D_rotation_rejected of int

let delta_to_string = function
  | D_joined i -> Printf.sprintf "+%d" i
  | D_left i -> Printf.sprintf "-%d" i
  | D_rejoined i -> Printf.sprintf "~%d" i
  | D_rotated i -> Printf.sprintf "@%d" i
  | D_rotation_rejected i -> Printf.sprintf "!%d" i

type epoch = {
  ep_round : int;
  ep_cohort : int array;  (** sorted 1-based ids of this round's active clients *)
  ep_pks : Point.t array;  (** the full universe directory, post-rotation *)
  ep_gens : int array;  (** per-client key generation (0 = the session key) *)
  ep_deltas : delta list;  (** standing changes vs the previous epoch *)
  ep_convicts : int list;  (** clients whose rotation proof was rejected *)
}

let epoch_cohort_size ep = Array.length ep.ep_cohort

let epoch_to_string ep =
  Printf.sprintf "epoch r%d cohort=%d [%s]%s" ep.ep_round (Array.length ep.ep_cohort)
    (String.concat ";" (List.map delta_to_string ep.ep_deltas))
    (match ep.ep_convicts with
    | [] -> ""
    | cs -> " convicts=" ^ String.concat "," (List.map string_of_int cs))

type event = Leave of int | Join of int | Rotate of int

let event_to_string = function
  | Leave i -> Printf.sprintf "leave %d" i
  | Join i -> Printf.sprintf "join %d" i
  | Rotate i -> Printf.sprintf "rotate %d" i

type t = {
  n : int;
  pks : Point.t array;  (** mutated in place as rotations are accepted *)
  gens : int array;
  present : bool array;
  ever_present : bool array;  (** distinguishes first join from rejoin *)
  banned_mirror : bool array;  (** informational standing only *)
}

let create pks =
  let n = Array.length pks in
  if n < 1 then invalid_arg "Membership.create: empty directory";
  {
    n;
    pks = Array.copy pks;
    gens = Array.make n 0;
    present = Array.make n true;
    ever_present = Array.make n true;
    banned_mirror = Array.make n false;
  }

let n t = t.n

let standing t i =
  if i < 1 || i > t.n then invalid_arg "Membership.standing: bad id";
  if t.banned_mirror.(i - 1) then Banned
  else if not t.present.(i - 1) then Dropped
  else if t.gens.(i - 1) > 0 then Rotated
  else Enrolled

let note_banned t ids =
  List.iter (fun i -> if i >= 1 && i <= t.n then t.banned_mirror.(i - 1) <- true) ids

let cohort t =
  let out = ref [] in
  for i = t.n downto 1 do
    if t.present.(i - 1) then out := i :: !out
  done;
  Array.of_list !out

let current_epoch t ~round =
  {
    ep_round = round;
    ep_cohort = cohort t;
    ep_pks = Array.copy t.pks;
    ep_gens = Array.copy t.gens;
    ep_deltas = [];
    ep_convicts = [];
  }

(* Apply one round's membership events and freeze the resulting epoch.
   Events are processed in list order; [rotation_for] materializes the
   continuity proof for an accepted-or-not rotation request (in-process
   it asks the client object; a forged proof is how tests model a key
   thief). A rejected rotation leaves the directory untouched and lands
   the client in [ep_convicts] — the server convicts it this round. *)
let advance t ~round ~events ~rotation_for =
  let deltas = ref [] and convicts = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Leave i when i >= 1 && i <= t.n && t.present.(i - 1) ->
          t.present.(i - 1) <- false;
          deltas := D_left i :: !deltas
      | Join i when i >= 1 && i <= t.n && not t.present.(i - 1) ->
          t.present.(i - 1) <- true;
          let d = if t.ever_present.(i - 1) then D_rejoined i else D_joined i in
          t.ever_present.(i - 1) <- true;
          deltas := d :: !deltas
      | Rotate i when i >= 1 && i <= t.n && t.present.(i - 1) -> (
          let gen = t.gens.(i - 1) + 1 in
          match rotation_for ~id:i ~gen with
          | None -> ()
          | Some rot ->
              if
                rot.rot_id = i && rot.rot_gen = gen
                && verify_rotation rot ~pk_old:t.pks.(i - 1)
              then begin
                t.pks.(i - 1) <- rot.rot_new_pk;
                t.gens.(i - 1) <- gen;
                deltas := D_rotated i :: !deltas
              end
              else begin
                t.banned_mirror.(i - 1) <- true;
                deltas := D_rotation_rejected i :: !deltas;
                convicts := i :: !convicts
              end)
      | Leave _ | Join _ | Rotate _ -> ())
    events;
  {
    ep_round = round;
    ep_cohort = cohort t;
    ep_pks = Array.copy t.pks;
    ep_gens = Array.copy t.gens;
    ep_deltas = List.rev !deltas;
    ep_convicts = List.rev !convicts;
  }

(* --- seeded churn schedules ------------------------------------------ *)

type spec = { p_leave : float; p_rejoin : float; p_rotate : float; min_cohort : int }

let default_spec = { p_leave = 0.2; p_rejoin = 0.5; p_rotate = 0.1; min_cohort = 3 }

let spec_to_string s =
  Printf.sprintf "leave=%g,rejoin=%g,rotate=%g,min=%d" s.p_leave s.p_rejoin s.p_rotate s.min_cohort

let spec_of_string str =
  let s = ref default_spec in
  let ok = ref (Ok ()) in
  String.split_on_char ',' str
  |> List.iter (fun kv ->
         if !ok = Ok () && String.trim kv <> "" then
           match String.index_opt kv '=' with
           | None -> ok := Error (Printf.sprintf "churn spec: expected key=value, got %S" kv)
           | Some e -> (
               let k = String.trim (String.sub kv 0 e) in
               let v = String.trim (String.sub kv (e + 1) (String.length kv - e - 1)) in
               let fl () =
                 match float_of_string_opt v with
                 | Some f when f >= 0.0 && f <= 1.0 -> Ok f
                 | _ -> Error (Printf.sprintf "churn spec: %s wants a rate in [0,1], got %S" k v)
               in
               match k with
               | "leave" -> (
                   match fl () with Ok f -> s := { !s with p_leave = f } | Error e -> ok := Error e)
               | "rejoin" -> (
                   match fl () with Ok f -> s := { !s with p_rejoin = f } | Error e -> ok := Error e)
               | "rotate" -> (
                   match fl () with Ok f -> s := { !s with p_rotate = f } | Error e -> ok := Error e)
               | "min" -> (
                   match int_of_string_opt v with
                   | Some m when m >= 1 -> s := { !s with min_cohort = m }
                   | _ -> ok := Error (Printf.sprintf "churn spec: min wants an int >= 1, got %S" v))
               | _ -> ok := Error (Printf.sprintf "churn spec: unknown key %S" k)));
  match !ok with Ok () -> Ok !s | Error e -> Error e

(* The per-round event lists are a pure function of (seed, spec, n,
   rounds): every consumer — driver, scripted twin, a remote client
   process — derives the identical schedule locally, so no membership
   bytes ever need to cross the wire. Round 1 is always the full cohort
   (enrollment happens against a known initial directory); each later
   round forks its own DRBG and sweeps the clients in id order. *)
let schedule ~seed spec ~n ~rounds =
  if spec.min_cohort > n then invalid_arg "Membership.schedule: min_cohort > n";
  let root = Prng.Drbg.create_string ("churn/" ^ seed) in
  let present = Array.make n true in
  let count = ref n in
  Array.init rounds (fun r0 ->
      let round = r0 + 1 in
      if round = 1 then []
      else begin
        let d = Prng.Drbg.fork root (Printf.sprintf "r%d" round) in
        let events = ref [] in
        for i = 1 to n do
          let roll = Prng.Drbg.float d in
          if present.(i - 1) then begin
            if roll < spec.p_leave && !count > spec.min_cohort then begin
              present.(i - 1) <- false;
              decr count;
              events := Leave i :: !events
            end
            else if Prng.Drbg.float d < spec.p_rotate then events := Rotate i :: !events
          end
          else if roll < spec.p_rejoin then begin
            present.(i - 1) <- true;
            incr count;
            events := Join i :: !events
          end
        done;
        List.rev !events
      end)
