module Scalar = Curve25519.Scalar

type behaviour =
  | Honest
  | Oversized of float
  | Bad_share_to of int list
  | False_flags of int list
  | Bad_agg_share
  | Drop_out

type stats = {
  aggregate : int array option;
  flagged : int list;
  client_commit_s : float;
  client_share_verify_s : float;
  client_proof_s : float;
  server_prep_s : float;
  server_verify_s : float;
  server_agg_s : float;
  client_up_bytes : int;
  client_down_bytes : int;
}

let honest_all n = Array.make n Honest

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let corrupt_sealed (s : Channel.sealed) =
  let body = Bytes.copy s.Channel.body in
  if Bytes.length body > 0 then
    Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 0xff));
  { s with Channel.body = body }

type session = { setup : Setup.t; clients : Client.t array; server : Server.t }

let create_session setup ~seed =
  let n = setup.Setup.params.Params.n_clients in
  let root = Prng.Drbg.create_string seed in
  let clients =
    Array.init n (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (Printf.sprintf "c%d" i)))
  in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  { setup; clients; server }

let run_round ?(predicate = Predicate.L2) ?(serialize = false) session ~updates ~behaviours ~round =
  (* when [serialize] is set, every message crosses the binary wire format
     (encode + validate + decode), as it would over a real network *)
  let via enc dec msg = if serialize then dec (enc msg) else msg in
  let via_commit = via Serial.encode_commit_msg Serial.decode_commit_msg in
  let via_flag = via Serial.encode_flag_msg Serial.decode_flag_msg in
  let via_proof = via Serial.encode_proof_msg Serial.decode_proof_msg in
  let via_agg = via Serial.encode_agg_msg Serial.decode_agg_msg in
  let setup = session.setup in
  let clients = session.clients and server = session.server in
  let p = setup.Setup.params in
  let n = p.Params.n_clients in
  if Array.length updates <> n || Array.length behaviours <> n then
    invalid_arg "Driver.run_round: need one update and one behaviour per client";
  let is_active i = behaviours.(i) <> Drop_out in
  let honest_ids = ref [] in
  Array.iteri (fun i b -> if b = Honest then honest_ids := i :: !honest_ids) behaviours;
  let n_honest = List.length !honest_ids in
  let avg_over_honest total = if n_honest = 0 then 0.0 else total /. float_of_int n_honest in
  (* --- round 1: commitments --- *)
  let commit_time = ref 0.0 in
  let commits =
    Array.init n (fun i ->
        if not (is_active i) then None
        else begin
          let msg, dt =
            time (fun () ->
                match behaviours.(i) with
                | Oversized _ ->
                    (* updates.(i) is already the scaled malicious vector *)
                    Client.commit_round_unchecked clients.(i) ~round ~update:updates.(i)
                | _ -> Client.commit_round clients.(i) ~round ~update:updates.(i))
          in
          if behaviours.(i) = Honest then commit_time := !commit_time +. dt;
          match behaviours.(i) with
          | Bad_share_to targets ->
              let enc_shares =
                Array.mapi
                  (fun j s -> if List.mem (j + 1) targets then corrupt_sealed s else s)
                  msg.Wire.enc_shares
              in
              Some (via_commit { msg with Wire.enc_shares })
          | _ -> Some (via_commit msg)
        end)
  in
  Server.begin_round server ~round ~commits;
  (* --- round 2 step 1: share verification and flags --- *)
  let present_commits = Array.of_list (List.filter_map Fun.id (Array.to_list commits)) in
  let share_verify_time = ref 0.0 in
  let flags =
    Array.init n (fun i ->
        if not (is_active i) then None
        else begin
          let base, dt =
            time (fun () -> Client.receive_shares clients.(i) ~round ~msgs:present_commits)
          in
          if behaviours.(i) = Honest then share_verify_time := !share_verify_time +. dt;
          match behaviours.(i) with
          | False_flags extra ->
              Some (via_flag { base with Wire.suspects = List.sort_uniq compare (extra @ base.Wire.suspects) })
          | _ -> Some (via_flag base)
        end)
  in
  let reveal dealer requests =
    if not (is_active (dealer - 1)) then None
    else
      match Client.reveal_shares clients.(dealer - 1) ~requests with
      | shares -> Some shares
      | exception Client.Server_misbehaving _ -> None
  in
  let cleared = Server.process_flags server ~flags ~reveal in
  List.iter
    (fun (flagger, dealer, value) ->
      if is_active (flagger - 1) then
        Client.accept_cleared_share clients.(flagger - 1) ~from:dealer ~value)
    cleared;
  (* --- round 2 step 2: probabilistic integrity check --- *)
  let (s_value, hs), prep_time = time (fun () -> Server.prepare_check server) in
  let proof_time = ref 0.0 in
  let proofs =
    Array.init n (fun i ->
        if not (is_active i) then None
        else begin
          let result, dt =
            time (fun () -> Client.try_proof_round ~predicate clients.(i) ~round ~s:s_value ~hs)
          in
          if behaviours.(i) = Honest then proof_time := !proof_time +. dt;
          Option.map via_proof result
        end)
  in
  let (), verify_time = time (fun () -> Server.verify_proofs ~predicate server ~round ~proofs) in
  (* --- round 3: secure aggregation --- *)
  let honest = Server.honest server in
  let agg_msgs =
    Array.init n (fun i ->
        if (not (is_active i)) || Server.malicious server |> List.mem (i + 1) then None
        else
          match Client.agg_round clients.(i) ~honest with
          | msg ->
              let msg =
                match behaviours.(i) with
                | Bad_agg_share ->
                    (* a garbage aggregated share: SS.Verify against the
                       combined check string must reject it *)
                    { msg with Wire.r_sum = Scalar.add msg.Wire.r_sum Scalar.one }
                | _ -> msg
              in
              Some (via_agg msg)
          | exception Invalid_argument _ -> None)
  in
  let aggregate, agg_time =
    time (fun () -> match Server.aggregate server ~agg_msgs with v -> Some v | exception Failure _ -> None)
  in
  (* --- communication accounting (per honest client) --- *)
  let up, down =
    match List.rev !honest_ids with
    | [] -> (0, 0)
    | i :: _ ->
        let commit = match commits.(i) with Some c -> Wire.commit_msg_size c | None -> 0 in
        let flag = match flags.(i) with Some f -> Wire.flag_msg_size f | None -> 0 in
        let proof = match proofs.(i) with Some pr -> Wire.proof_msg_size pr | None -> 0 in
        let agg = match agg_msgs.(i) with Some a -> Wire.agg_msg_size a | None -> 0 in
        let up = commit + flag + proof + agg in
        (* downloads: forwarded shares + check strings from every peer,
           the (s, h) broadcast, and the C* list *)
        let shares_down =
          Array.fold_left
            (fun acc c ->
              match c with
              | None -> acc
              | Some (cm : Wire.commit_msg) ->
                  if cm.Wire.sender = i + 1 then acc
                  else
                    acc
                    + Channel.sealed_size cm.Wire.enc_shares.(i)
                    + (Wire.point_size * Array.length cm.Wire.check))
            0 commits
        in
        let down = shares_down + Wire.broadcast_size ~k:p.Params.k + (4 * n) in
        (up, down)
  in
  {
    aggregate;
    flagged = Server.malicious server;
    client_commit_s = avg_over_honest !commit_time;
    client_share_verify_s = avg_over_honest !share_verify_time;
    client_proof_s = avg_over_honest !proof_time;
    server_prep_s = prep_time;
    server_verify_s = verify_time;
    server_agg_s = agg_time;
    client_up_bytes = up;
    client_down_bytes = down;
  }

let run_iteration ?predicate ?serialize setup ~updates ~behaviours ~seed ~round =
  run_round ?predicate ?serialize (create_session setup ~seed) ~updates ~behaviours ~round
