module Scalar = Curve25519.Scalar

type behaviour =
  | Honest
  | Oversized of float
  | Bad_share_to of int list
  | False_flags of int list
  | Bad_agg_share
  | Drop_out

type stats = {
  aggregate : int array option;
  failure : Server.agg_error option;
  flagged : int list;
  decode_failures : int list;
  client_commit_s : float;
  client_share_verify_s : float;
  client_proof_s : float;
  server_prep_s : float;
  server_verify_s : float;
  server_agg_s : float;
  client_up_bytes : int;
  client_down_bytes : int;
}

type round_outcome =
  | Completed of stats
  | Aborted_insufficient_quorum of { stage : string; survivors : int; needed : int }
  | Aborted_decode of int list

let outcome_to_string = function
  | Completed _ -> "completed"
  | Aborted_insufficient_quorum { stage; survivors; needed } ->
      Printf.sprintf "aborted at %s stage: %d survivors < quorum %d" stage survivors needed
  | Aborted_decode ids ->
      Printf.sprintf "aborted: quorum lost to undecodable frames from [%s]"
        (String.concat ";" (List.map string_of_int ids))

let honest_all n = Array.make n Honest

(* one timing authority for the repo: monotonic, defined in Telemetry *)
let time f = Telemetry.Clock.time f

let corrupt_sealed (s : Channel.sealed) =
  let body = Bytes.copy s.Channel.body in
  if Bytes.length body > 0 then
    Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 0xff));
  { s with Channel.body = body }

type session = { setup : Setup.t; clients : Client.t array; server : Server.t }

let create_session setup ~seed =
  let n = setup.Setup.params.Params.n_clients in
  let root = Prng.Drbg.create_string seed in
  let clients =
    Array.init n (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (Printf.sprintf "c%d" i)))
  in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  { setup; clients; server }

(* internal: the one early exit of the lifecycle; caught before
   run_round_core returns, never escapes *)
exception Abort of round_outcome

let run_round_core_inner ?(predicate = Predicate.L2) ?(serialize = false) ?transport ~lifecycle
    session ~updates ~behaviours ~round =
  (* a transport implies the wire: bytes are the only thing it can fault *)
  let serialize = serialize || Option.is_some transport in
  let setup = session.setup in
  let clients = session.clients and server = session.server in
  let p = setup.Setup.params in
  let n = p.Params.n_clients in
  if Array.length updates <> n || Array.length behaviours <> n then
    invalid_arg "Driver.run_round: need one update and one behaviour per client";
  (* (round, stage, role)-attributed spans for the trace; no-ops unless
     telemetry is enabled *)
  let span stage role f =
    Telemetry.Span.with_
      ~attrs:[ ("round", string_of_int round); ("stage", stage); ("role", role) ]
      (stage ^ "." ^ role) f
  in
  let needed = Params.shamir_t p in
  let decode_failures = ref [] in
  (* One client → server exchange. Without a transport this is the
     encode/decode round-trip (or the identity); with one, every frame
     crosses the fault plan and the server keeps whatever decodes by the
     deadline. First frame per sender wins; an undecodable frame poisons
     its sender for the stage (a later clean duplicate does not restore
     it) and lands the sender in C*. *)
  let exchange : 'a. stage:Netsim.stage -> encode:('a -> Bytes.t) ->
      decode:(Bytes.t -> ('a, Serial.error) result) -> sender_of:('a -> int) ->
      'a option array -> 'a option array * int list =
    fun ~stage ~encode ~decode ~sender_of outgoing ->
    match transport with
    | None ->
        if not serialize then (outgoing, [])
        else begin
          let offenders = ref [] in
          let delivered =
            Array.mapi
              (fun i msg ->
                match msg with
                | None -> None
                | Some m -> (
                    match decode (encode m) with
                    | Ok m' when sender_of m' = i + 1 -> Some m'
                    | Ok _ | Error _ ->
                        offenders := (i + 1) :: !offenders;
                        None))
              outgoing
          in
          (delivered, List.rev !offenders)
        end
    | Some net ->
        Netsim.begin_stage net ~round ~stage;
        Array.iteri
          (fun i msg -> match msg with None -> () | Some m -> Netsim.send net ~sender:(i + 1) (encode m))
          outgoing;
        let arrived = Netsim.deliver net in
        let delivered = Array.make n None in
        let poisoned = Array.make n false in
        let offenders = ref [] in
        List.iter
          (fun (sender, frame) ->
            if sender >= 1 && sender <= n && not poisoned.(sender - 1) then begin
              match decode frame with
              | Ok m when sender_of m = sender ->
                  if delivered.(sender - 1) = None then delivered.(sender - 1) <- Some m
              | Ok _ | Error _ ->
                  (* wrong inner sender id counts as undecodable too *)
                  poisoned.(sender - 1) <- true;
                  delivered.(sender - 1) <- None;
                  offenders := sender :: !offenders
            end)
          arrived;
        (delivered, List.sort_uniq compare !offenders)
  in
  let note_offenders offenders =
    List.iter (fun i -> Server.mark_decode_failure server i) offenders;
    decode_failures := !decode_failures @ offenders
  in
  let check_quorum stage =
    if lifecycle then begin
      let survivors = List.length (Server.honest server) in
      if survivors < needed then begin
        let offenders = List.sort_uniq compare !decode_failures in
        if offenders <> [] then raise (Abort (Aborted_decode offenders))
        else raise (Abort (Aborted_insufficient_quorum { stage; survivors; needed }))
      end
    end
  in
  let is_active i = behaviours.(i) <> Drop_out in
  let honest_ids = ref [] in
  Array.iteri (fun i b -> if b = Honest then honest_ids := i :: !honest_ids) behaviours;
  let n_honest = List.length !honest_ids in
  let avg_over_honest total = if n_honest = 0 then 0.0 else total /. float_of_int n_honest in
  (* --- round 1: commitments --- *)
  let commit_time = ref 0.0 in
  let commits_out =
    span "commit" "client" @@ fun () ->
    Array.init n (fun i ->
        if not (is_active i) then None
        else begin
          let msg, dt =
            time (fun () ->
                match behaviours.(i) with
                | Oversized _ ->
                    (* updates.(i) is already the scaled malicious vector *)
                    Client.commit_round_unchecked clients.(i) ~round ~update:updates.(i)
                | _ -> Client.commit_round clients.(i) ~round ~update:updates.(i))
          in
          if behaviours.(i) = Honest then commit_time := !commit_time +. dt;
          match behaviours.(i) with
          | Bad_share_to targets ->
              let enc_shares =
                Array.mapi
                  (fun j s -> if List.mem (j + 1) targets then corrupt_sealed s else s)
                  msg.Wire.enc_shares
              in
              Some { msg with Wire.enc_shares }
          | _ -> Some msg
        end)
  in
  let commits, commit_offenders =
    span "commit" "wire" @@ fun () ->
    exchange ~stage:Netsim.Commit ~encode:Serial.encode_commit_msg ~decode:Serial.decode_commit
      ~sender_of:(fun (m : Wire.commit_msg) -> m.Wire.sender)
      commits_out
  in
  span "commit" "server" (fun () -> Server.begin_round server ~round ~commits);
  (* begin_round reset C*, so decode offenders are marked after it *)
  note_offenders commit_offenders;
  check_quorum "commit";
  (* --- round 2 step 1: share verification and flags --- *)
  (* clients receive the server's *validated* view of the commits: a
     structurally invalid commit never reaches a client *)
  let present_commits =
    Array.of_list (List.filter_map Fun.id (Array.to_list (Server.round_commits server)))
  in
  let share_verify_time = ref 0.0 in
  let flags_out =
    span "flag" "client" @@ fun () ->
    Array.init n (fun i ->
        if not (is_active i) then None
        else begin
          let base, dt =
            time (fun () -> Client.receive_shares clients.(i) ~round ~msgs:present_commits)
          in
          if behaviours.(i) = Honest then share_verify_time := !share_verify_time +. dt;
          match behaviours.(i) with
          | False_flags extra ->
              Some { base with Wire.suspects = List.sort_uniq compare (extra @ base.Wire.suspects) }
          | _ -> Some base
        end)
  in
  let flags, flag_offenders =
    span "flag" "wire" @@ fun () ->
    exchange ~stage:Netsim.Flag ~encode:Serial.encode_flag_msg ~decode:Serial.decode_flag
      ~sender_of:(fun (m : Wire.flag_msg) -> m.Wire.sender)
      flags_out
  in
  note_offenders flag_offenders;
  let reveal dealer requests =
    if not (is_active (dealer - 1)) then None
    else
      match Client.reveal_shares clients.(dealer - 1) ~requests with
      | shares -> Some shares
      | exception Client.Server_misbehaving _ -> None
  in
  let cleared = span "flag" "server" (fun () -> Server.process_flags server ~flags ~reveal) in
  List.iter
    (fun (flagger, dealer, value) ->
      if is_active (flagger - 1) then
        Client.accept_cleared_share clients.(flagger - 1) ~from:dealer ~value)
    cleared;
  check_quorum "flag";
  (* --- round 2 step 2: probabilistic integrity check --- *)
  let (s_value, hs), prep_time =
    span "check" "server" (fun () -> time (fun () -> Server.prepare_check server))
  in
  (* the (s, h) broadcast crosses the wire too when serializing; the
     server → client links are assumed reliable in this simulation, so a
     failed round-trip of our own encoding would be a codec bug *)
  let s_value, hs =
    if not serialize then (s_value, hs)
    else
      match Serial.decode_broadcast_r (Serial.encode_broadcast ~s:s_value ~hs) with
      | Ok (s, hs) -> (s, hs)
      | Error e -> failwith ("Driver: broadcast round-trip failed: " ^ Serial.error_to_string e)
  in
  (* The check bases h_t are shared by every client of the round: build
     their fixed-base tables once (cost ~ one table build per base,
     repaid k+1 ladder multiplications per client). *)
  let hs_tables =
    span "check" "tables" (fun () -> Parallel.parallel_map Curve25519.Point.Table.make hs)
  in
  let proof_time = ref 0.0 in
  let proofs_out =
    span "proof" "client" @@ fun () ->
    Array.init n (fun i ->
        if not (is_active i) then None
        else begin
          let result, dt =
            time (fun () ->
                Client.try_proof_round ~predicate ~hs_tables clients.(i) ~round ~s:s_value ~hs)
          in
          if behaviours.(i) = Honest then proof_time := !proof_time +. dt;
          result
        end)
  in
  let proofs, proof_offenders =
    span "proof" "wire" @@ fun () ->
    exchange ~stage:Netsim.Proof ~encode:Serial.encode_proof_msg ~decode:Serial.decode_proof
      ~sender_of:(fun (m : Wire.proof_msg) -> m.Wire.sender)
      proofs_out
  in
  note_offenders proof_offenders;
  let (), verify_time =
    span "proof" "server" (fun () ->
        time (fun () -> Server.verify_proofs ~predicate server ~round ~proofs))
  in
  check_quorum "proof";
  (* --- round 3: secure aggregation --- *)
  let honest = Server.honest server in
  let agg_out =
    span "agg" "client" @@ fun () ->
    Array.init n (fun i ->
        if (not (is_active i)) || Server.malicious server |> List.mem (i + 1) then None
        else
          match Client.agg_round clients.(i) ~honest with
          | msg ->
              let msg =
                match behaviours.(i) with
                | Bad_agg_share ->
                    (* a garbage aggregated share: SS.Verify against the
                       combined check string must reject it *)
                    { msg with Wire.r_sum = Scalar.add msg.Wire.r_sum Scalar.one }
                | _ -> msg
              in
              Some msg
          | exception Invalid_argument _ -> None)
  in
  let agg_msgs, agg_offenders =
    span "agg" "wire" @@ fun () ->
    exchange ~stage:Netsim.Agg ~encode:Serial.encode_agg_msg ~decode:Serial.decode_agg
      ~sender_of:(fun (m : Wire.agg_msg) -> m.Wire.sender)
      agg_out
  in
  note_offenders agg_offenders;
  let agg_result, agg_time =
    span "agg" "server" (fun () -> time (fun () -> Server.aggregate server ~agg_msgs))
  in
  (if lifecycle then
     match agg_result with
     | Error (Server.Insufficient_quorum { valid; needed }) ->
         let offenders = List.sort_uniq compare !decode_failures in
         if offenders <> [] then raise (Abort (Aborted_decode offenders))
         else raise (Abort (Aborted_insufficient_quorum { stage = "aggregate"; survivors = valid; needed }))
     | Error _ | Ok _ -> ());
  let aggregate, failure =
    match agg_result with Ok v -> (Some v, None) | Error e -> (None, Some e)
  in
  (* --- communication accounting (per honest client) --- *)
  let up, down =
    match List.rev !honest_ids with
    | [] -> (0, 0)
    | i :: _ ->
        let commit = match commits.(i) with Some c -> Wire.commit_msg_size c | None -> 0 in
        let flag = match flags.(i) with Some f -> Wire.flag_msg_size f | None -> 0 in
        let proof = match proofs.(i) with Some pr -> Wire.proof_msg_size pr | None -> 0 in
        let agg = match agg_msgs.(i) with Some a -> Wire.agg_msg_size a | None -> 0 in
        let up = commit + flag + proof + agg in
        (* downloads: forwarded shares + check strings from every peer,
           the (s, h) broadcast, and the C* list *)
        let shares_down =
          Array.fold_left
            (fun acc c ->
              match c with
              | None -> acc
              | Some (cm : Wire.commit_msg) ->
                  if cm.Wire.sender = i + 1 then acc
                  else
                    acc
                    + Channel.sealed_size cm.Wire.enc_shares.(i)
                    + (Wire.point_size * Array.length cm.Wire.check))
            0 commits
        in
        let down = shares_down + Wire.broadcast_size ~k:p.Params.k + (4 * n) in
        (up, down)
  in
  Completed
    {
      aggregate;
      failure;
      flagged = Server.malicious server;
      decode_failures = List.sort_uniq compare !decode_failures;
      client_commit_s = avg_over_honest !commit_time;
      client_share_verify_s = avg_over_honest !share_verify_time;
      client_proof_s = avg_over_honest !proof_time;
      server_prep_s = prep_time;
      server_verify_s = verify_time;
      server_agg_s = agg_time;
      client_up_bytes = up;
      client_down_bytes = down;
    }

(* outer span covering the full round; the Abort control-flow exception
   passes through Span.with_ (the span is still recorded) *)
let run_round_core ?predicate ?serialize ?transport ~lifecycle session ~updates ~behaviours ~round
    =
  Telemetry.Span.with_
    ~attrs:[ ("round", string_of_int round) ]
    "round"
    (fun () ->
      run_round_core_inner ?predicate ?serialize ?transport ~lifecycle session ~updates
        ~behaviours ~round)

let run_round_outcome ?predicate ?serialize ?transport session ~updates ~behaviours ~round =
  match
    run_round_core ?predicate ?serialize ?transport ~lifecycle:true session ~updates ~behaviours
      ~round
  with
  | outcome -> outcome
  | exception Abort outcome -> outcome

let run_round ?predicate ?serialize ?transport session ~updates ~behaviours ~round =
  match
    run_round_core ?predicate ?serialize ?transport ~lifecycle:false session ~updates ~behaviours
      ~round
  with
  | Completed stats -> stats
  | Aborted_insufficient_quorum _ | Aborted_decode _ ->
      (* lifecycle:false never aborts early *)
      assert false

let run_iteration ?predicate ?serialize ?transport setup ~updates ~behaviours ~seed ~round =
  run_round ?predicate ?serialize ?transport (create_session setup ~seed) ~updates ~behaviours
    ~round
