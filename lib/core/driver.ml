module Scalar = Curve25519.Scalar

type behaviour =
  | Honest
  | Oversized of float
  | Bad_share_to of int list
  | False_flags of int list
  | Bad_agg_share
  | Drop_out
  | Agg_silent

type stats = {
  aggregate : int array option;
  failure : Server.agg_error option;
  flagged : int list;
  decode_failures : int list;
  client_commit_s : float;
  client_share_verify_s : float;
  client_proof_s : float;
  server_prep_s : float;
  server_verify_s : float;
  server_agg_s : float;
  client_up_bytes : int;
  client_down_bytes : int;
}

type round_outcome =
  | Completed of stats
  | Aborted_insufficient_quorum of { stage : string; survivors : int; needed : int }
  | Aborted_decode of int list

let outcome_to_string = function
  | Completed _ -> "completed"
  | Aborted_insufficient_quorum { stage; survivors; needed } ->
      Printf.sprintf "aborted at %s stage: %d survivors < quorum %d" stage survivors needed
  | Aborted_decode ids ->
      Printf.sprintf "aborted: quorum lost to undecodable frames from [%s]"
        (String.concat ";" (List.map string_of_int ids))

let honest_all n = Array.make n Honest

(* one timing authority for the repo: monotonic, defined in Telemetry *)
let time f = Telemetry.Clock.time f

let corrupt_sealed (s : Channel.sealed) =
  let body = Bytes.copy s.Channel.body in
  if Bytes.length body > 0 then
    Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 0xff));
  { s with Channel.body = body }

type session = {
  setup : Setup.t;
  seed : string;
  clients : Client.t array;
  mutable server : Server.t;
  (* post-behaviour encoded frames per (round, stage), cached under the
     durable runtime. Client-side randomness is one sequential stream per
     client, so a stage's messages must be produced exactly once per
     process: in-process recovery replays these bytes instead of re-running
     the clients (which would advance their DRBGs and break bit-identity) *)
  outbox : (int * Netsim.stage, Bytes.t option array) Hashtbl.t;
}

let create_session setup ~seed =
  let n = setup.Setup.params.Params.n_clients in
  let root = Prng.Drbg.create_string seed in
  let clients =
    Array.init n (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (Printf.sprintf "c%d" i)))
  in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  { setup; seed; clients; server; outbox = Hashtbl.create 31 }

let session_server t = t.server
let session_clients t = t.clients

(* --- crash plan --- *)

type crash_point = Stage_start | Stage_frame of int | Stage_end

exception Server_crashed of { stage : Netsim.stage; at : crash_point }

let crash_point_to_string = function
  | Stage_start -> "start"
  | Stage_end -> "end"
  | Stage_frame i -> string_of_int i

let crash_to_string (stage, at) =
  Netsim.stage_to_string stage ^ ":" ^ crash_point_to_string at

let crash_of_string spec =
  match String.index_opt spec ':' with
  | None -> Error "expected STAGE:STEP (e.g. proof:start, agg:2)"
  | Some c -> (
      let sname = String.sub spec 0 c in
      let pname = String.sub spec (c + 1) (String.length spec - c - 1) in
      let stage =
        match String.lowercase_ascii sname with
        | "commit" -> Some Netsim.Commit
        | "flag" -> Some Netsim.Flag
        | "proof" -> Some Netsim.Proof
        | "agg" -> Some Netsim.Agg
        | _ -> None
      in
      match stage with
      | None -> Error ("unknown stage: " ^ sname)
      | Some stage -> (
          match String.lowercase_ascii pname with
          | "start" -> Ok (stage, Stage_start)
          | "end" -> Ok (stage, Stage_end)
          | _ -> (
              match int_of_string_opt pname with
              | Some i when i >= 0 -> Ok (stage, Stage_frame i)
              | _ -> Error ("bad step: " ^ pname))))

(* a seeded crash plan, scheduled like Netsim faults: each index draws its
   (stage, step) from an independent fork, so a sweep is a pure function
   of the seed *)
let seeded_crashes ~seed ~n ~max_step =
  let root = Prng.Drbg.create_string ("crash/" ^ seed) in
  List.init n (fun i ->
      let drbg = Prng.Drbg.fork root (Printf.sprintf "p%d" i) in
      let stage =
        match Prng.Drbg.uniform_int drbg 4 with
        | 0 -> Netsim.Commit
        | 1 -> Netsim.Flag
        | 2 -> Netsim.Proof
        | _ -> Netsim.Agg
      in
      (stage, Stage_frame (Prng.Drbg.uniform_int drbg (max 1 max_step))))

(* --- recovery context: the current round's WAL records, indexed --- *)

type recovery = {
  rec_frames : (Netsim.stage, (int * int * Bytes.t) list) Hashtbl.t;
  rec_done : (Netsim.stage, unit) Hashtbl.t;
  rec_s : Bytes.t option;
}

let recovery_of_records ~round records =
  let ctx = { rec_frames = Hashtbl.create 7; rec_done = Hashtbl.create 7; rec_s = None } in
  let rec_s = ref None in
  List.iter
    (fun r ->
      match r with
      | Round_log.Frame { round = r'; stage; sender; seq; frame } when r' = round ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt ctx.rec_frames stage) in
          Hashtbl.replace ctx.rec_frames stage (prev @ [ (sender, seq, frame) ])
      | Round_log.Stage_done { round = r'; stage } when r' = round ->
          Hashtbl.replace ctx.rec_done stage ()
      | Round_log.Check { round = r'; s } when r' = round -> rec_s := Some s
      | _ -> ())
    records;
  { ctx with rec_s = !rec_s }

(* --- remote seam: the hooks a socket transport plugs into the round --- *)

(* With [remote], the driver is the *server half only*: client messages
   are not computed in-process — [r_collect] pulls them off the wire and
   pushes each accepted frame through the driver's write-ahead intake
   (WAL append + fsync happen inside [push], so the transport may ack a
   frame only after [push] returns). The [r_*] broadcast hooks fire at
   the exact points the in-process run hands data to its local clients,
   letting the transport fan the same bytes out to real peers. *)
type remote = {
  r_collect :
    round:int ->
    stage:Netsim.stage ->
    already:int list ->
    push:(int * int * Bytes.t -> unit) ->
    unit;
      (* gather this stage's client frames; [already] lists senders whose
         frames were WAL-replayed (ack, don't re-collect); call [push
         (sender, seq, frame)] per accepted frame — it may raise
         {!Server_crashed}, in which case the frame is neither logged nor
         acked *)
  r_commits : round:int -> Bytes.t array -> unit;
      (* the server's validated commit view, encoded, broadcast to all *)
  r_cleared : round:int -> (int * int * Scalar.t) list -> unit;
      (* (flagger, dealer, share) cleared-share deliveries *)
  r_check : round:int -> Bytes.t -> unit;
      (* the encoded (s, h_1..h_k) integrity-check broadcast *)
  r_honest : round:int -> honest:int list -> malicious:int list -> unit;
      (* the pre-aggregation membership broadcast *)
  r_result : round:int -> round_outcome -> unit;
      (* the round verdict; never fired on a server crash *)
  r_reveal : dealer:int -> requests:int list -> (int * Scalar.t) list option;
      (* synchronous share-reveal sub-exchange with a remote dealer *)
  r_recover :
    round:int -> dropout:int -> responders:int list -> (int * (Scalar.t option * Scalar.t)) list;
      (* k-regular dropout recovery: ask each responder (an alive graph
         neighbor of [dropout]) for its share of the dropout's blind and
         the pairwise mask; (responder, (share, mask)) per answer *)
}

(* internal: the one early exit of the lifecycle; caught before
   run_round_core returns, never escapes *)
exception Abort of round_outcome

module TI = Netsim.Transport_intf

(* stage-boundary memory watermark: [Gc.stat] walks the heap, so it is
   sampled only when telemetry is on, and only between stages *)
let g_live = Telemetry.Gauge.make "mem.live_words.peak"

let observe_live () =
  if Telemetry.enabled () then Telemetry.Gauge.observe g_live (Telemetry.live_words ())

(* audit trail for the elastic layer: bumped whenever a shrunken cohort
   forces the round's k-regular degree below the requested one *)
let c_degree_clamped = Telemetry.Counter.make "topology.degree_clamped"

exception Epoch_mismatch of string
(* a decoded-valid epoch that contradicts the session — wrong universe
   size, a directory entry no client key derivation reaches: recovery
   must fail loudly rather than run the round under a wrong cohort *)

(* Bring the session up to the epoch's directory: rotate each client to
   its epoch generation (generation keys are key-only DRBG forks, so any
   process reaches them at any time), check the derived public keys
   against the epoch's directory, and install it everywhere. Idempotent —
   recovery re-applies the epoch it crashed under. *)
let apply_epoch session ep =
  let n = Array.length session.clients in
  if Array.length ep.Membership.ep_pks <> n || Array.length ep.Membership.ep_gens <> n then
    raise (Epoch_mismatch "epoch directory size does not match the session universe");
  Array.iteri
    (fun i g ->
      if g > Client.key_generation session.clients.(i) then
        Client.rotate_to session.clients.(i) ~gen:g)
    ep.Membership.ep_gens;
  Array.iteri
    (fun i pk ->
      if not (Curve25519.Point.equal (Client.public_key session.clients.(i)) pk) then
        raise
          (Epoch_mismatch
             (Printf.sprintf "epoch directory entry for client %d does not match its derived key"
                (i + 1))))
    ep.Membership.ep_pks;
  Array.iter (fun c -> Client.install_directory c ep.Membership.ep_pks) session.clients;
  Server.install_directory session.server ep.Membership.ep_pks

(* A shrunken cohort can undercut the requested k-regular degree:
   re-derive the recommendation for the cohort that actually showed up
   (letting [Topology.plan] normalize an all-to-all recommendation) and
   leave an audit counter behind. Shared by the in-process driver and
   the socket client so both sides derive the same graph. *)
let effective_topology setup ~cohort mode =
  let p = setup.Setup.params in
  let n = p.Params.n_clients in
  match mode with
  | Risefl_topology.Topology.Kregular k
    when Array.length cohort >= 4 && Array.length cohort < n && k >= Array.length cohort - 1 ->
      let nc = Array.length cohort in
      let gamma = float_of_int p.Params.max_malicious /. float_of_int n in
      let k' =
        min
          (Risefl_topology.Topology.recommend_degree ~n:nc ~dropout:0.05 ~corruption:gamma
             ~sigma:40)
          (nc - 1)
      in
      Telemetry.Counter.incr c_degree_clamped;
      Risefl_topology.Topology.Kregular (max 2 k')
  | t -> t

let run_round_core_inner ?(predicate = Predicate.L2) ?(serialize = false) ?transport ?endpoint
    ?reliable ?remote ?wal ?crash ?recovery ?stream ?epoch
    ?(topology = Risefl_topology.Topology.Full) ~lifecycle session ~updates ~behaviours ~round =
  (* a transport, a reliability layer or a write-ahead log implies the
     wire: bytes are the only thing they can fault, retransmit or log *)
  let serialize =
    serialize || Option.is_some transport || Option.is_some endpoint || Option.is_some reliable
    || Option.is_some remote || Option.is_some wal || Option.is_some recovery
  in
  (* a Netsim transport is just one endpoint backend; unify here so the
     exchange below speaks only the shared interface *)
  let endpoint =
    match endpoint with Some _ -> endpoint | None -> Option.map Netsim.endpoint transport
  in
  let setup = session.setup in
  let clients = session.clients and server = session.server in
  let p = setup.Setup.params in
  let n = p.Params.n_clients in
  if Array.length updates <> n || Array.length behaviours <> n then
    invalid_arg "Driver.run_round: need one update and one behaviour per client";
  (* (round, stage, role)-attributed spans for the trace; no-ops unless
     telemetry is enabled *)
  let span stage role f =
    Telemetry.Span.with_
      ~attrs:[ ("round", string_of_int round); ("stage", stage); ("role", role) ]
      (stage ^ "." ^ role) f
  in
  let needed = Params.shamir_t p in
  (* the round's membership: an epoch freezes the cohort and the
     post-rotation directory before any frame moves. The fixed-set path
     (no epoch) is the full universe, and a full-cohort epoch selects
     every legacy branch ([cohort_opt = None]) so its bytes are identical
     to the fixed-set run by construction. *)
  (match epoch with Some ep -> apply_epoch session ep | None -> ());
  let cohort =
    match epoch with
    | Some ep -> ep.Membership.ep_cohort
    | None -> Array.init n (fun i -> i + 1)
  in
  let cohort_opt = if Array.length cohort = n then None else Some cohort in
  let in_cohort =
    match cohort_opt with
    | None -> Array.make n true
    | Some xs ->
        let a = Array.make n false in
        Array.iter (fun id -> if id >= 1 && id <= n then a.(id - 1) <- true) xs;
        a
  in
  let topology = effective_topology setup ~cohort topology in
  (* the round's share topology: a pure function of (session seed, round,
     cohort), never logged — recovery re-derives the identical graph
     here. [plan] normalizes Full / tiny cohorts / degree >= n-1 to None,
     which runs the unchanged all-to-all path (bit-identical bytes). *)
  let topo = Risefl_topology.Topology.plan ~mode:topology ~seed:session.seed ~round ~cohort in
  let decode_failures = ref [] in
  let wal_append r = match wal with Some w -> Round_log.append w r | None -> () in
  (* in-process recovery replays the outbox; only the durable runtime
     caches (plain serialize/transport rounds behave exactly as before) *)
  let durable = Option.is_some wal || Option.is_some recovery in
  let crash_check stage at =
    match crash with
    | Some (cs, ca) when cs = stage && ca = at ->
        (match wal with Some w -> Round_log.sync w | None -> ());
        raise (Server_crashed { stage; at })
    | _ -> ()
  in
  let rec_frames_for stage =
    match recovery with
    | None -> []
    | Some ctx -> Option.value ~default:[] (Hashtbl.find_opt ctx.rec_frames stage)
  in
  let rec_done stage =
    match recovery with None -> false | Some ctx -> Hashtbl.mem ctx.rec_done stage
  in
  (* One client → server exchange. Without a transport this is the
     encode/decode round-trip (or the identity); with one, every frame
     crosses the fault plan and the server keeps whatever decodes by the
     deadline; with a reliability layer, unacked frames retransmit under
     backoff and arrivals are de-duplicated by (round, stage, sender, seq).
     First frame per sender wins; an undecodable frame poisons its sender
     for the stage (a later clean duplicate does not restore it) and lands
     the sender in C*. Under a write-ahead log every accepted frame is
     appended (and fsynced) before the server processes it; under
     recovery, the logged frames replay first and only the unlogged
     senders re-enter delivery. With [consume], each accepted first frame
     is handed to the callback instead of being retained in the returned
     array (which stays all-[None]) — the streaming intake. *)
  let exchange : 'a. consume:(sender:int -> 'a -> unit) option -> stage:Netsim.stage ->
      encode:('a -> Bytes.t) -> decode:(Bytes.t -> ('a, Serial.error) result) ->
      sender_of:('a -> int) -> compute:(unit -> 'a option array) -> 'a option array * int list =
    fun ~consume ~stage ~encode ~decode ~sender_of ~compute ->
    if not serialize then begin
      match consume with
      | None -> (compute (), [])
      | Some f ->
          let msgs = compute () in
          Array.iteri (fun i m -> match m with Some m -> f ~sender:(i + 1) m | None -> ()) msgs;
          (Array.make n None, [])
    end
    else begin
      (* 1. this process's outgoing payloads, computed exactly once per
         (round, stage) when durable. A remote round computes nothing
         locally — the clients live in other processes. *)
      let key = (round, stage) in
      let outgoing =
        if Option.is_some remote then Array.make n None
        else
          match if durable then Hashtbl.find_opt session.outbox key else None with
          | Some cached -> cached
          | None ->
              let msgs = compute () in
              let bytes = Array.map (Option.map encode) msgs in
              if durable then Hashtbl.replace session.outbox key bytes;
              bytes
      in
      (* 2. frames already accepted (and logged) before the crash *)
      let logged = rec_frames_for stage in
      let already = List.map (fun (s, _, _) -> s) logged in
      let stage_done = rec_done stage in
      (* 3. fresh deliveries for everyone else (remote rounds collect
         push-side below instead, after the write-ahead intake is armed) *)
      let fresh =
        if stage_done || Option.is_some remote then []
        else
          match (reliable, endpoint) with
          | Some rel, _ -> Reliable.exchange rel ~round ~stage ~already outgoing
          | None, Some ep ->
              ep.TI.ep_begin_stage ~round ~stage;
              Array.iteri
                (fun i payload ->
                  match payload with
                  | Some frame when not (List.mem (i + 1) already) ->
                      ep.TI.ep_send ~attempt:0 ~sender:(i + 1) frame
                  | _ -> ())
                outgoing;
              List.map (fun (s, f) -> (s, 0, f)) (ep.TI.ep_deliver ~deadline:None)
          | None, None ->
              let out = ref [] in
              Array.iteri
                (fun i payload ->
                  match payload with
                  | Some frame when not (List.mem (i + 1) already) ->
                      out := (i + 1, 0, frame) :: !out
                  | _ -> ())
                outgoing;
              List.rev !out
      in
      (* 4. server intake: WAL append (write-ahead), dedup, decode *)
      let delivered = Array.make n None in
      let taken = Array.make n false in
      let poisoned = Array.make n false in
      let offenders = ref [] in
      (* only the reliable layer (and the socket transport, which carries
         its headers) stamps meaningful sequence numbers; those frames
         de-duplicate by (sender, seq) so a duplicate straddling a crash
         cannot be double-processed on replay. The bare transport keeps
         its historical semantics (every copy is judged). *)
      let dedup = Option.is_some reliable || Option.is_some remote in
      let seen = Hashtbl.create 7 in
      crash_check stage Stage_start;
      let idx = ref 0 in
      let process ~replayed (sender, seq, frame) =
        if sender >= 1 && sender <= n then begin
          if not replayed then begin
            crash_check stage (Stage_frame !idx);
            wal_append (Round_log.Frame { round; stage; sender; seq; frame })
          end;
          incr idx;
          if (not dedup) || not (Hashtbl.mem seen (sender, seq)) then begin
            Hashtbl.replace seen (sender, seq) ();
            if not poisoned.(sender - 1) then begin
              match decode frame with
              | Ok m when sender_of m = sender ->
                  if not taken.(sender - 1) then begin
                    taken.(sender - 1) <- true;
                    match consume with
                    | Some f -> f ~sender m
                    | None -> delivered.(sender - 1) <- Some m
                  end
              | Ok _ | Error _ ->
                  (* wrong inner sender id counts as undecodable too *)
                  poisoned.(sender - 1) <- true;
                  delivered.(sender - 1) <- None;
                  offenders := sender :: !offenders
            end
          end
        end
      in
      List.iter (process ~replayed:true) logged;
      (match remote with
      | Some r when not stage_done ->
          r.r_collect ~round ~stage ~already ~push:(process ~replayed:false)
      | _ -> List.iter (process ~replayed:false) fresh);
      if not stage_done then wal_append (Round_log.Stage_done { round; stage });
      crash_check stage Stage_end;
      (delivered, List.sort_uniq compare !offenders)
    end
  in
  let note_offenders offenders =
    List.iter (fun i -> Server.mark_decode_failure server i) offenders;
    decode_failures := !decode_failures @ offenders
  in
  let check_quorum stage =
    if lifecycle then begin
      let survivors = List.length (Server.honest server) in
      if survivors < needed then begin
        let offenders = List.sort_uniq compare !decode_failures in
        if offenders <> [] then raise (Abort (Aborted_decode offenders))
        else raise (Abort (Aborted_insufficient_quorum { stage; survivors; needed }))
      end
    end
  in
  let is_active i = in_cohort.(i) && behaviours.(i) <> Drop_out in
  let honest_ids = ref [] in
  Array.iteri
    (fun i b -> if b = Honest && in_cohort.(i) then honest_ids := i :: !honest_ids)
    behaviours;
  let n_honest = List.length !honest_ids in
  let avg_over_honest total = if n_honest = 0 then 0.0 else total /. float_of_int n_honest in
  (* a fresh durable round opens with its boundary snapshot — the restore
     point recovery rolls the server back to before replaying frames *)
  if Option.is_none recovery then begin
    (* the epoch precedes Round_start: replay that finds a Round_start
       is guaranteed to know its round's exact cohort, and a torn epoch
       means the round never started (it simply re-runs fresh) *)
    (match epoch with Some ep -> wal_append (Round_log.Epoch ep) | None -> ());
    wal_append (Round_log.Round_start { round });
    match wal with
    | Some w -> Round_log.append w (Round_log.Snapshot (Server.snapshot server))
    | None -> ()
  end;
  (* --- round 1: commitments --- *)
  let commit_time = ref 0.0 in
  let commits, commit_offenders =
    span "commit" "wire" @@ fun () ->
    exchange ~consume:None ~stage:Netsim.Commit ~encode:Serial.encode_commit_msg ~decode:Serial.decode_commit
      ~sender_of:(fun (m : Wire.commit_msg) -> m.Wire.sender)
      ~compute:(fun () ->
        span "commit" "client" @@ fun () ->
        Array.init n (fun i ->
            if not (is_active i) then None
            else begin
              let msg, dt =
                time (fun () ->
                    match behaviours.(i) with
                    | Oversized _ ->
                        (* updates.(i) is already the scaled malicious vector *)
                        Client.commit_round_unchecked ?topo ?cohort:cohort_opt clients.(i) ~round
                          ~update:updates.(i)
                    | _ ->
                        Client.commit_round ?topo ?cohort:cohort_opt clients.(i) ~round
                          ~update:updates.(i))
              in
              if behaviours.(i) = Honest then commit_time := !commit_time +. dt;
              match behaviours.(i) with
              | Bad_share_to targets ->
                  (* positions are recipient ids only on the all-to-all
                     path; under a topology they are ranks in the sorted
                     neighbor list (a non-neighbor target is a no-op) *)
                  let recips =
                    match topo with
                    | None -> Array.init n (fun j -> j + 1)
                    | Some tp -> Risefl_topology.Topology.neighbors tp (i + 1)
                  in
                  let enc_shares =
                    Array.mapi
                      (fun j s -> if List.mem recips.(j) targets then corrupt_sealed s else s)
                      msg.Wire.enc_shares
                  in
                  Some { msg with Wire.enc_shares }
              | _ -> Some msg
            end))
  in
  span "commit" "server"
    (fun () -> Server.begin_round ?topo ?cohort:cohort_opt server ~round ~commits);
  (* begin_round reset C*, so decode offenders are marked after it *)
  note_offenders commit_offenders;
  (* epoch-level convictions: a rejected rotation proof is an
     identity-level offence, applied at the same point bans are *)
  (match epoch with
  | Some ep ->
      List.iter
        (fun i -> Server.convict server i ~reason:"rotation proof rejected")
        ep.Membership.ep_convicts
  | None -> ());
  check_quorum "commit";
  observe_live ();
  (* communication accounting that reads the commit bulk is settled here —
     once, eagerly — so [commits] is syntactically dead beyond this point
     and the streaming pipeline's evictions actually free the round's
     O(n²) share ciphertexts and O(n·d) commitment points *)
  let acct_commit_up, acct_shares_down =
    match List.rev !honest_ids with
    | [] -> (0, 0)
    | i :: _ ->
        let commit = match commits.(i) with Some c -> Wire.commit_msg_size c | None -> 0 in
        (* downloads: forwarded shares + check strings. All-to-all: one
           sealed share from every peer. k-regular: a share only from the
           k neighbor dealers (located by this client's rank in their
           sorted neighbor lists); check strings still arrive from every
           dealer with the commit broadcast. *)
        let shares_down =
          Array.fold_left
            (fun acc c ->
              match c with
              | None -> acc
              | Some (cm : Wire.commit_msg) ->
                  if cm.Wire.sender = i + 1 then acc
                  else
                    let share_bytes =
                      match topo with
                      | None -> (
                          (* all-to-all shares are indexed by cohort rank
                             (= id−1 only for the full cohort) *)
                          match cohort_opt with
                          | None -> Channel.sealed_size cm.Wire.enc_shares.(i)
                          | Some xs ->
                              let rank = ref (-1) in
                              Array.iteri (fun j x -> if x = i + 1 then rank := j) xs;
                              if !rank < 0 then 0
                              else Channel.sealed_size cm.Wire.enc_shares.(!rank))
                      | Some tp ->
                          let ns = Risefl_topology.Topology.neighbors tp cm.Wire.sender in
                          let rank = ref (-1) in
                          Array.iteri (fun j x -> if x = i + 1 then rank := j) ns;
                          if !rank < 0 then 0
                          else Channel.sealed_size cm.Wire.enc_shares.(!rank)
                    in
                    acc + share_bytes + (Wire.point_size * Array.length cm.Wire.check))
            0 commits
        in
        (commit, shares_down)
  in
  (* --- round 2 step 1: share verification and flags --- *)
  (* clients receive the server's *validated* view of the commits: a
     structurally invalid commit never reaches a client *)
  let present_commits =
    Array.of_list (List.filter_map Fun.id (Array.to_list (Server.round_commits server)))
  in
  (match remote with
  | Some r -> r.r_commits ~round (Array.map Serial.encode_commit_msg present_commits)
  | None -> ());
  let share_verify_time = ref 0.0 in
  let flags, flag_offenders =
    span "flag" "wire" @@ fun () ->
    exchange ~consume:None ~stage:Netsim.Flag ~encode:Serial.encode_flag_msg ~decode:Serial.decode_flag
      ~sender_of:(fun (m : Wire.flag_msg) -> m.Wire.sender)
      ~compute:(fun () ->
        span "flag" "client" @@ fun () ->
        Array.init n (fun i ->
            if not (is_active i) then None
            else begin
              let base, dt =
                time (fun () ->
                    Client.receive_shares ?topo ?cohort:cohort_opt clients.(i) ~round
                      ~msgs:present_commits)
              in
              if behaviours.(i) = Honest then share_verify_time := !share_verify_time +. dt;
              match behaviours.(i) with
              | False_flags extra ->
                  Some
                    { base with Wire.suspects = List.sort_uniq compare (extra @ base.Wire.suspects) }
              | _ -> Some base
            end))
  in
  note_offenders flag_offenders;
  let reveal dealer requests =
    match remote with
    | Some r -> r.r_reveal ~dealer ~requests
    | None ->
        if not (is_active (dealer - 1)) then None
        else (
          match Client.reveal_shares clients.(dealer - 1) ~requests with
          | shares -> Some shares
          | exception Client.Server_misbehaving _ -> None)
  in
  let cleared = span "flag" "server" (fun () -> Server.process_flags server ~flags ~reveal) in
  (match remote with
  | Some r -> r.r_cleared ~round cleared
  | None ->
      List.iter
        (fun (flagger, dealer, value) ->
          if is_active (flagger - 1) then
            Client.accept_cleared_share clients.(flagger - 1) ~from:dealer ~value)
        cleared);
  check_quorum "flag";
  observe_live ();
  (* --- round 2 step 2: probabilistic integrity check --- *)
  let (s_value, hs), prep_time =
    span "check" "server" (fun () -> time (fun () -> Server.prepare_check server))
  in
  (* the check string is a pure redraw of the server DRBG: under recovery
     it must reproduce the logged value bit for bit, and a fresh durable
     round logs it as the audit record *)
  (match recovery with
  | Some { rec_s = Some logged_s; _ } ->
      if not (Bytes.equal logged_s s_value) then
        failwith "Driver: recovery check-string mismatch (wrong seed or corrupt WAL?)"
  | Some { rec_s = None; _ } | None -> ());
  (match recovery with
  | Some { rec_s = Some _; _ } -> ()
  | _ -> wal_append (Round_log.Check { round; s = s_value }));
  (* the (s, h) broadcast crosses the wire too when serializing; the
     server → client links are assumed reliable in this simulation, so a
     failed round-trip of our own encoding would be a codec bug *)
  let s_value, hs =
    if not serialize then (s_value, hs)
    else begin
      let bcast = Serial.encode_broadcast ~s:s_value ~hs in
      (match remote with Some r -> r.r_check ~round bcast | None -> ());
      match Serial.decode_broadcast_r bcast with
      | Ok (s, hs) -> (s, hs)
      | Error e -> failwith ("Driver: broadcast round-trip failed: " ^ Serial.error_to_string e)
    end
  in
  (* The check bases h_t are shared by every client of the round: build
     their fixed-base tables once (cost ~ one table build per base,
     repaid k+1 ladder multiplications per client). A remote server never
     proves, so it skips the table build — remote clients build their own. *)
  let hs_tables =
    if Option.is_some remote then [||]
    else span "check" "tables" (fun () -> Parallel.parallel_map Curve25519.Point.Table.make hs)
  in
  let proof_time = ref 0.0 in
  (* streamed rounds fold each arrived proof straight into the server's
     per-shard accumulators instead of holding the stage's frames for a
     post-barrier verify; the first honest client's frame size is captured
     on the way through (the frame itself is not retained) *)
  let stream_st =
    Option.map (fun cfg -> Server.stream_begin ~predicate server ~round ~cfg) stream
  in
  let acct_proof_up = ref 0 in
  let first_honest = match List.rev !honest_ids with [] -> 0 | i :: _ -> i + 1 in
  let consume =
    Option.map
      (fun st ~sender (m : Wire.proof_msg) ->
        if sender = first_honest then acct_proof_up := Wire.proof_msg_size m;
        Server.stream_feed st ~sender m)
      stream_st
  in
  let proofs, proof_offenders =
    span "proof" "wire" @@ fun () ->
    exchange ~consume ~stage:Netsim.Proof ~encode:Serial.encode_proof_msg
      ~decode:Serial.decode_proof
      ~sender_of:(fun (m : Wire.proof_msg) -> m.Wire.sender)
      ~compute:(fun () ->
        span "proof" "client" @@ fun () ->
        Array.init n (fun i ->
            if not (is_active i) then None
            else begin
              let result, dt =
                time (fun () ->
                    Client.try_proof_round ~predicate ~hs_tables ?cohort:cohort_opt clients.(i)
                      ~round ~s:s_value ~hs)
              in
              if behaviours.(i) = Honest then proof_time := !proof_time +. dt;
              result
            end))
  in
  note_offenders proof_offenders;
  let (), verify_time =
    match stream_st with
    | Some st ->
        span "proof" "server" (fun () -> Server.stream_finish st);
        ((), Server.stream_elapsed_s st)
    | None ->
        span "proof" "server" (fun () ->
            time (fun () -> Server.verify_proofs ~predicate server ~round ~proofs))
  in
  check_quorum "proof";
  observe_live ();
  (* --- round 3: secure aggregation --- *)
  let honest = Server.honest server in
  (match remote with
  | Some r -> r.r_honest ~round ~honest ~malicious:(Server.malicious server)
  | None -> ());
  let agg_msgs, agg_offenders =
    span "agg" "wire" @@ fun () ->
    exchange ~consume:None ~stage:Netsim.Agg ~encode:Serial.encode_agg_msg ~decode:Serial.decode_agg
      ~sender_of:(fun (m : Wire.agg_msg) -> m.Wire.sender)
      ~compute:(fun () ->
        span "agg" "client" @@ fun () ->
        Array.init n (fun i ->
            if
              (not (is_active i))
              || behaviours.(i) = Agg_silent
              || Server.malicious server |> List.mem (i + 1)
            then None
            else
              match
                match topo with
                | None -> Client.agg_round clients.(i) ~honest
                | Some tp -> Client.agg_round_masked clients.(i) ~round ~topo:tp ~honest
              with
              | msg ->
                  let msg =
                    match behaviours.(i) with
                    | Bad_agg_share ->
                        (* a garbage aggregated share: SS.Verify against the
                           combined check string must reject it (k-regular:
                           the global g^R check catches it instead) *)
                        { msg with Wire.r_sum = Scalar.add msg.Wire.r_sum Scalar.one }
                    | _ -> msg
                  in
                  Some msg
              | exception Invalid_argument _ -> None))
  in
  note_offenders agg_offenders;
  let agg_result, agg_time =
    span "agg" "server" (fun () ->
        time (fun () ->
            match topo with
            | None -> Server.aggregate server ~agg_msgs
            | Some tp ->
                (* neighborhood recovery sub-exchange: in-process it asks
                   the dropout's alive neighbors directly (responses are
                   pure functions of client state — no DRBG draws — so
                   WAL replay reproduces them bit-identically); a remote
                   round goes through the transport hook *)
                let recover ~dropout ~responders =
                  match remote with
                  | Some r -> r.r_recover ~round ~dropout ~responders
                  | None ->
                      List.filter_map
                        (fun i ->
                          if not (is_active (i - 1)) then None
                          else
                            match
                              Client.recovery_response clients.(i - 1) ~round ~topo:tp ~dropout
                            with
                            | resp -> Some (i, resp)
                            | exception Client.Server_misbehaving _ -> None)
                        responders
                in
                Server.aggregate_kregular server ~topo:tp ~honest ~recover ~agg_msgs))
  in
  (if lifecycle then
     match agg_result with
     | Error (Server.Insufficient_quorum { valid; needed }) ->
         let offenders = List.sort_uniq compare !decode_failures in
         if offenders <> [] then raise (Abort (Aborted_decode offenders))
         else raise (Abort (Aborted_insufficient_quorum { stage = "aggregate"; survivors = valid; needed }))
     | Error _ | Ok _ -> ());
  let aggregate, failure =
    match agg_result with Ok v -> (Some v, None) | Error e -> (None, Some e)
  in
  wal_append (Round_log.Round_end { round; cstar = Server.malicious server; aggregate });
  observe_live ();
  (* --- communication accounting (per honest client) --- *)
  let up, down =
    match List.rev !honest_ids with
    | [] -> (0, 0)
    | i :: _ ->
        let flag = match flags.(i) with Some f -> Wire.flag_msg_size f | None -> 0 in
        let proof =
          match proofs.(i) with Some pr -> Wire.proof_msg_size pr | None -> !acct_proof_up
        in
        let agg = match agg_msgs.(i) with Some a -> Wire.agg_msg_size a | None -> 0 in
        let up = acct_commit_up + flag + proof + agg in
        (* downloads: the eagerly-settled shares+checks total, the (s, h)
           broadcast, and the C* list *)
        let down = acct_shares_down + Wire.broadcast_size ~k:p.Params.k + (4 * n) in
        (up, down)
  in
  Completed
    {
      aggregate;
      failure;
      flagged = Server.malicious server;
      decode_failures = List.sort_uniq compare !decode_failures;
      client_commit_s = avg_over_honest !commit_time;
      client_share_verify_s = avg_over_honest !share_verify_time;
      client_proof_s = avg_over_honest !proof_time;
      server_prep_s = prep_time;
      server_verify_s = verify_time;
      server_agg_s = agg_time;
      client_up_bytes = up;
      client_down_bytes = down;
    }

(* outer span covering the full round; the Abort control-flow exception
   passes through Span.with_ (the span is still recorded) *)
let run_round_core ?predicate ?serialize ?transport ?endpoint ?reliable ?remote ?wal ?crash
    ?recovery ?stream ?epoch ?topology ~lifecycle session ~updates ~behaviours ~round =
  Telemetry.Span.with_
    ~attrs:[ ("round", string_of_int round) ]
    "round"
    (fun () ->
      run_round_core_inner ?predicate ?serialize ?transport ?endpoint ?reliable ?remote ?wal
        ?crash ?recovery ?stream ?epoch ?topology ~lifecycle session ~updates ~behaviours ~round)

(* a WAL-armed abort still closes the round durably *)
let seal_abort ?wal session ~round outcome =
  (match wal with
  | Some w ->
      Round_log.append w
        (Round_log.Round_end
           { round; cstar = Server.malicious session.server; aggregate = None });
      Round_log.sync w
  | None -> ());
  outcome

let run_round_outcome ?predicate ?serialize ?transport ?endpoint ?reliable ?remote ?wal ?crash
    ?stream ?epoch ?topology session ~updates ~behaviours ~round =
  let outcome =
    match
      run_round_core ?predicate ?serialize ?transport ?endpoint ?reliable ?remote ?wal ?crash
        ?stream ?epoch ?topology ~lifecycle:true session ~updates ~behaviours ~round
    with
    | outcome -> outcome
    | exception Abort outcome -> seal_abort ?wal session ~round outcome
  in
  (* the verdict broadcast: a Server_crashed exception above skips it, so
     a killed server never announces a result it did not seal *)
  (match remote with Some r -> r.r_result ~round outcome | None -> ());
  outcome

let run_round ?predicate ?serialize ?transport ?endpoint ?reliable ?wal ?crash ?stream ?epoch
    ?topology session ~updates ~behaviours ~round =
  match
    run_round_core ?predicate ?serialize ?transport ?endpoint ?reliable ?wal ?crash ?stream
      ?epoch ?topology ~lifecycle:false session ~updates ~behaviours ~round
  with
  | Completed stats -> stats
  | Aborted_insufficient_quorum _ | Aborted_decode _ ->
      (* lifecycle:false never aborts early *)
      assert false

(* --- crash recovery --- *)

let restore_server ?epoch session records ~round =
  (* the crashed server's in-memory state is gone: rebuild one from the
     session seed (create_session's fork label) and roll it forward to the
     last snapshot at or before the crashed round *)
  let epoch =
    match epoch with
    | Some _ as e -> e
    | None ->
        (* the latest logged epoch at or before the crashed round: a
           cross-process resume knows the membership only from the log *)
        List.fold_left
          (fun acc r ->
            match r with
            | Round_log.Epoch e when e.Membership.ep_round <= round -> Some e
            | _ -> acc)
          None records
  in
  let root = Prng.Drbg.create_string session.seed in
  let server = Server.create session.setup (Prng.Drbg.fork root "server") in
  session.server <- server;
  (* membership must be live BEFORE restore: [Server.restore] re-derives
     the sampling matrix from the snapshotted s over the ACTIVE directory
     entries, so the rotated keys and the cohort go in first *)
  (match epoch with
  | Some ep ->
      apply_epoch session ep;
      Server.set_active server (Some ep.Membership.ep_cohort)
  | None -> Server.install_directory server (Array.map Client.public_key session.clients));
  let snap =
    List.fold_left
      (fun acc r ->
        match r with
        | Round_log.Snapshot s when s.Wire.snap_round <= round -> Some s
        | _ -> acc)
      None records
  in
  (match snap with Some s -> Server.restore server s | None -> ())

let recover_round ?predicate ?transport ?endpoint ?reliable ?remote ?wal ?stream ?epoch
    ?topology session ~records ~updates ~behaviours ~round =
  Telemetry.Span.with_
    ~attrs:[ ("round", string_of_int round) ]
    "recover"
    (fun () ->
      (* prefer the caller's epoch; fall back to the crashed round's
         logged one (written before its Round_start, so any round that
         began has it on disk) *)
      let epoch =
        match epoch with
        | Some _ as e -> e
        | None ->
            List.fold_left
              (fun acc r ->
                match r with
                | Round_log.Epoch e when e.Membership.ep_round = round -> Some e
                | _ -> acc)
              None records
      in
      restore_server ?epoch session records ~round;
      let recovery = recovery_of_records ~round records in
      let outcome =
        match
          run_round_core ?predicate ?transport ?endpoint ?reliable ?remote ?wal ~recovery
            ?stream ?epoch ?topology ~lifecycle:true session ~updates ~behaviours ~round
        with
        | outcome -> outcome
        | exception Abort outcome -> seal_abort ?wal session ~round outcome
      in
      (match remote with Some r -> r.r_result ~round outcome | None -> ());
      outcome)

(* --- multi-round session loop --- *)

(* totals over every epoch's standing deltas (satellite of the elastic
   layer: the report shows how much the membership actually moved) *)
type churn_counts = { joined : int; left : int; rejoined : int; rotated : int }

type session_report = {
  rounds_attempted : int;
  rounds_completed : int;
  round_outcomes : (int * round_outcome) list;
  final_banned : int list;
  crashes_recovered : int;
  cohort_sizes : (int * int) list;
  churn : churn_counts;
}

let run_session ?predicate ?serialize ?transport ?endpoint ?reliable ?remote ?wal ?crash ?stream
    ?cohort_for ?topology session ~updates_for ~behaviours ~rounds =
  if rounds < 1 then invalid_arg "Driver.run_session: rounds must be >= 1";
  let n = Array.length session.clients in
  let outcomes = ref [] in
  let completed = ref 0 in
  let recovered = ref 0 in
  let sizes = ref [] in
  let joined = ref 0 and left = ref 0 and rejoined = ref 0 and rotated = ref 0 in
  for round = 1 to rounds do
    let updates = updates_for round in
    (* freeze this round's membership before any frame moves; the same
       epoch re-enters the round after a crash so recovery replays under
       the identical cohort *)
    let epoch = match cohort_for with Some f -> f round | None -> None in
    (match epoch with
    | Some ep ->
        sizes := (round, Membership.epoch_cohort_size ep) :: !sizes;
        List.iter
          (fun d ->
            match d with
            | Membership.D_joined _ -> incr joined
            | Membership.D_left _ -> incr left
            | Membership.D_rejoined _ -> incr rejoined
            | Membership.D_rotated _ -> incr rotated
            | Membership.D_rotation_rejected _ -> ())
          ep.Membership.ep_deltas
    | None -> sizes := (round, n) :: !sizes);
    let crash_here =
      match crash with Some (r, stage, at) when r = round -> Some (stage, at) | _ -> None
    in
    let outcome =
      match
        run_round_outcome ?predicate ?serialize ?transport ?endpoint ?reliable ?remote ?wal
          ?crash:crash_here ?stream ?epoch ?topology session ~updates ~behaviours ~round
      with
      | outcome -> outcome
      | exception Server_crashed _ -> (
          match wal with
          | None -> raise (Server_crashed { stage = Netsim.Commit; at = Stage_start })
          | Some w ->
              (* replay the log we were writing and resume the round *)
              Round_log.sync w;
              let records, _status = Round_log.replay (Round_log.path w) in
              incr recovered;
              recover_round ?predicate ?transport ?endpoint ?reliable ?remote ~wal:w ?stream
                ?epoch ?topology session ~records ~updates ~behaviours ~round)
    in
    (match outcome with
    | Completed stats ->
        incr completed;
        (* carry C* across rounds: convicted clients start the next round
           banned *)
        List.iter (Server.ban session.server) stats.flagged
    | Aborted_insufficient_quorum _ | Aborted_decode _ -> ());
    outcomes := (round, outcome) :: !outcomes
  done;
  {
    rounds_attempted = rounds;
    rounds_completed = !completed;
    round_outcomes = List.rev !outcomes;
    final_banned = Server.banned session.server;
    crashes_recovered = !recovered;
    cohort_sizes = List.rev !sizes;
    churn = { joined = !joined; left = !left; rejoined = !rejoined; rotated = !rotated };
  }

(* The seeded-churn cohort hook: one Membership state advanced through
   the schedule, memoized per round (recovery re-asks for the crashed
   round and must get the identical epoch back, not a double-advanced
   one). Epochs materialize lazily in round order; rotation proofs are
   signed by the session's own clients with their current keys, so the
   hook composes with {!run_session}'s round-by-round application. *)
let churn_cohort_for session ~spec ~rounds =
  let n = Array.length session.clients in
  let mem = Membership.create (Array.map Client.public_key session.clients) in
  let sched = Membership.schedule ~seed:session.seed spec ~n ~rounds in
  let cache = Hashtbl.create 7 in
  let next = ref 1 in
  fun round ->
    if round < 1 || round > rounds then None
    else begin
      while !next <= round do
        let r = !next in
        let ep =
          Membership.advance mem ~round:r ~events:sched.(r - 1)
            ~rotation_for:(fun ~id ~gen:_ ->
              Some (Client.rotation_proof session.clients.(id - 1)))
        in
        (* adopt accepted rotations eagerly: the next epoch's rotation
           proof must be signed with the post-rotation key even when
           epochs materialize ahead of round execution (fast-forward
           after a restart or a rejoin). [rotate_to] touches no
           sequential DRBG state, so this cannot desync the stream. *)
        List.iter
          (function
            | Membership.D_rotated i ->
                Client.rotate_to session.clients.(i - 1) ~gen:ep.Membership.ep_gens.(i - 1)
            | _ -> ())
          ep.Membership.ep_deltas;
        Hashtbl.replace cache r ep;
        incr next
      done;
      Hashtbl.find_opt cache round
    end

let run_iteration ?predicate ?serialize ?transport ?endpoint ?reliable ?wal ?stream ?topology
    setup ~updates ~behaviours ~seed ~round =
  run_round ?predicate ?serialize ?transport ?endpoint ?reliable ?wal ?stream ?topology
    (create_session setup ~seed) ~updates ~behaviours ~round
