(** The RiseFL server (aggregator) state machine.

    The server never sees a plaintext update: it stores commitments,
    relays encrypted shares, co-runs the probabilistic integrity check of
    §4.4, maintains the malicious set C*, and finally aggregates the
    honest updates homomorphically (§4.5), recovering the coordinate sums
    with baby-step giant-step. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type t

val create : Setup.t -> Prng.Drbg.t -> t

(** Install the public-key bulletin. *)
val install_directory : t -> Point.t array -> unit

(** Clients flagged malicious so far this iteration (1-based ids). *)
val malicious : t -> int list

(** [mark_decode_failure t i] — add client [i] to C* because a frame it
    sent could not be decoded. A hostile byte on the wire costs the sender
    its honesty bit, never the server its round. Out-of-range ids (a
    spoofed link) are ignored. *)
val mark_decode_failure : t -> int -> unit

(** [convict t i ~reason] — add client [i] to C* for an identity-level
    offence (a rejected key-rotation proof). Out-of-range ids ignored. *)
val convict : t -> int -> reason:string -> unit

(** {2 Per-round cohorts}

    An elastic-membership round runs over a cohort ⊆ 1..n. Inactive
    clients are absent, not guilty: they owe no frames, never join C*
    for silence, drop out of {!honest}, and the shared seed binds only
    the active directory entries. The fixed-set path keeps everyone
    active. *)

(** [set_active t cohort] — install the round's cohort ([None] = all).
    {!begin_round} does this itself; call it directly only on replay
    paths that need the cohort installed {e before} [restore]. *)
val set_active : t -> int array option -> unit

val is_active : t -> int -> bool

(** The server's validated view of this round's commit messages
    (structurally invalid entries are [None]) — what it forwards to
    clients for share verification. *)
val round_commits : t -> Wire.commit_msg option array

(** [begin_round ?topo ?cohort t ~round ~commits] — store the round's
    commit messages. Cohort members that sent nothing (None) are marked
    malicious immediately; commits from outside the cohort are dropped
    without conviction. [topo] selects the round's share topology and
    changes the accepted commit shape: without it a commit must carry
    one sealed share per cohort member (all n when no cohort) at
    threshold shamir_t and no digest; with it exactly the sender's
    neighbor count at the neighborhood threshold, pinned to the round's
    topology digest. *)
val begin_round :
  ?topo:Risefl_topology.Topology.t ->
  ?cohort:int array ->
  t ->
  round:int ->
  commits:Wire.commit_msg option array ->
  unit

(** [process_flags t ~flags ~reveal] — §4.4.1: apply flag rules 1 and 2.
    [reveal i js] asks client i for its clear shares to recipients [js]
    (rule 2); return [None] if the client refuses. Returns cleared shares
    to forward: (flagger, dealer, value) triples. *)
val process_flags :
  t ->
  flags:Wire.flag_msg option array ->
  reveal:(int -> int list -> (int * Scalar.t) list option) ->
  (int * int * Scalar.t) list

(** [prepare_check t] — pick the random s, derive the shared matrix A and
    precompute h (the O(kd·log M / log d·log p) preparation of Table 1).
    Returns (s, h) for broadcast. *)
val prepare_check : t -> Bytes.t * Point.t array

(** [verify_proofs ?predicate ?jobs ?batched t ~round ~proofs] — full
    §4.4.2 verification for every client: e*-consistency against y_i
    (batch check), ρ, τ, σ, μ (plus the w-linkage material under the
    cosine predicate). Clients whose proof fails (or is absent) are added
    to C*.

    With [batched] (the default) every verifier equation of every client
    is folded into a single random-linear-combination MSM: each equation
    contributes ρ_j·(LHS − RHS) with an independent coefficient ρ_j drawn
    from a DRBG forked by (round, client), scaled by a per-client outer
    coefficient σ_i, and the whole round is accepted by ONE
    Pippenger evaluation returning the identity. On failure the
    per-client term blocks are bisected to recover exact C* attribution.
    A batch containing a cheating equation survives with probability
    ≤ (#equations)/ℓ ≈ 2⁻²⁴⁰ over the coefficient draw.
    [batched:false] selects the naive per-equation reference path (the
    differential-testing baseline).

    Clients accumulate/verify in parallel on [jobs] domains (default
    [Parallel.default_jobs ()]); the accepted/rejected sets are identical
    for every job count and for both paths — all per-client randomness
    (VerCrt challenges, RLC coefficients) is forked from the server key
    by (round, id), not drawn from a shared stream. *)
val verify_proofs :
  ?predicate:Predicate.t ->
  ?jobs:int ->
  ?batched:bool ->
  t ->
  round:int ->
  proofs:Wire.proof_msg option array ->
  unit

(** The honest list H = cohort \ C* (1-based ids). *)
val honest : t -> int list

(** {2 Streaming verification pipeline}

    The barrier path above ({!verify_proofs}) needs every proof frame —
    and every commit's decoded y vector — resident at once: O(n·d) points
    plus O(n²) share ciphertexts. The streaming pipeline instead folds
    each proof into the round's RLC accumulator {e as it arrives}, checks
    complete per-client term blocks batch-by-batch (honest blocks sum to
    the identity individually, so any batch of complete blocks is
    independently checkable), folds each survivor's y into a running
    aggregate and its check string into a running combined check, spills
    the survivor's y compressed (32 B/point) for possible late-conviction
    subtraction, and then {e evicts} the decoded bulk — bounding resident
    decoded state to O(d + batch·d) regardless of n.

    Sharding splits clients across [shards] independent accumulators
    (client i lands in shard (i−1) mod shards); {!stream_finish} merges
    them in ascending shard order, so results are deterministic in
    (jobs, shards, arrival order): all per-client randomness is forked by
    (round, id) and the group arithmetic is exact and commutative, making
    verdicts, C* and the final aggregate bit-identical to the barrier
    path. (Sole caveat, shared in kind with batched-vs-naive: two
    dishonest blocks cancelling {e exactly} across different batches —
    probability ≈ 2⁻²⁵² per pair — would be accepted by the one-shot
    barrier eval but convicted by the per-batch checks.) *)

(** Streaming knobs: [shards] independent accumulators, flush a shard
    after [batch] buffered frames. *)
type stream_cfg = { shards : int; batch : int }

(** [stream_cfg ?shards ?batch ()] — validated constructor (both >= 1);
    defaults [shards:1] [batch:64]. *)
val stream_cfg : ?shards:int -> ?batch:int -> unit -> stream_cfg

(** In-progress streaming verification for one round. *)
type stream

(** Counters from the last streamed round (see {!stream_stats}). *)
type stream_stats = {
  folded : int;  (** proof frames folded into an accumulator *)
  evicted : int;  (** commit records whose decoded bulk was dropped *)
  flushes : int;  (** partial-MSM evaluations *)
  peak_batch : int;  (** largest batch at any flush *)
}

(** [stream_begin ?predicate ?jobs t ~round ~cfg] — start streaming the
    round's proofs. Must be called after {!begin_round} (and the check
    preparation); feeds then arrive in any order via {!stream_feed}. *)
val stream_begin :
  ?predicate:Predicate.t -> ?jobs:int -> t -> round:int -> cfg:stream_cfg -> stream

(** [stream_feed st ~sender msg] — fold one arrived proof frame. First
    frame per sender wins (duplicates ignored, matching the transport's
    dedup); frames from clients already in C* are dropped. Flushes the
    sender's shard when its batch fills.
    @raise Invalid_argument after {!stream_finish}. *)
val stream_feed : stream -> sender:int -> Wire.proof_msg -> unit

(** [stream_finish st] — drain partial batches (shard order), mark
    clients that never fed as malicious ("no proof"), merge the shard
    accumulators and install the streamed aggregate so the next
    {!aggregate} call uses the running sums. Idempotent.
    @raise Failure if the merged accumulator violates the internal
    identity invariant (cannot happen absent a soundness bug). *)
val stream_finish : stream -> unit

(** Cumulative seconds spent folding/flushing/finishing (the streamed
    round's analogue of the barrier verify-stage wall time). *)
val stream_elapsed_s : stream -> float

(** Stats from the last {!stream_finish} on this server, if any. *)
val stream_stats : t -> stream_stats option

(** [ban t i] — carry client [i]'s C* membership across rounds: every
    subsequent {!begin_round} starts with [i] already malicious. The
    session loop calls this with each completed round's C*. Out-of-range
    ids are ignored. *)
val ban : t -> int -> unit

(** Clients currently banned at session scope (1-based ids). *)
val banned : t -> int list

(** [snapshot t] — everything recovery needs to resume bit-identically:
    C* (round-scope and session-scope), the validated commits, the last
    check string, and the root-DRBG position (bytes drawn). Written to the
    write-ahead log at round boundaries. *)
val snapshot : t -> Wire.server_snapshot

(** [restore t snap] — restore a {e freshly created} server (same setup,
    same seed) to the snapshot: fast-forwards the root DRBG to the
    snapshotted position and re-derives the sampling matrix/check bases
    from the snapshotted s. After [restore], every draw, verdict and
    aggregate matches the uncrashed server byte for byte.
    @raise Invalid_argument if the snapshot belongs to a different
    parameter set or the server's DRBG has already advanced past the
    snapshot position. *)
val restore : t -> Wire.server_snapshot -> unit

(** Why an aggregation attempt could not produce a result. Typed (rather
    than an exception) so the round lifecycle can degrade gracefully:
    losing quorum ends the round with a verdict, not a crash. *)
type agg_error =
  | Insufficient_quorum of { valid : int; needed : int }
      (** fewer than t = m+1 valid aggregated shares survived *)
  | No_check_string  (** no honest dealer's commit survived to check against *)
  | Coordinate_out_of_range of int
      (** BSGS could not solve this coordinate (sum outside ± n·2^(b-1)) *)
  | Aggregate_mismatch
      (** k-regular path only: the recovered blind R fails the global
          commitment check g^R = Π z_i — some masked sum was tampered
          with (not per-client attributable, unlike VSSS share sums) *)

val agg_error_to_string : agg_error -> string
val pp_agg_error : Format.formatter -> agg_error -> unit

(** [aggregate t ~agg_msgs] — verify each aggregated share against the
    summed check strings, recover r = Σ r_i, and solve each coordinate
    with BSGS. Returns the aggregated encoded update Σ_{i∈H} u_i, or a
    typed error; never raises on hostile input. *)
val aggregate : t -> agg_msgs:Wire.agg_msg option array -> (int array, agg_error) result

(** [aggregate_kregular t ~topo ~honest ~recover ~agg_msgs] — the
    k-regular aggregation round. [honest] is the honest list the server
    broadcast before the agg exchange (the set clients masked toward);
    [agg_msgs] holds each client's masked sum
    m_i = r_i + Σ_{j∈N(i)∩honest} ε_ij·mask_ij. For every honest client
    whose frame is missing, [recover ~dropout ~responders] runs the
    neighborhood sub-exchange over the dropout's alive neighbors and
    returns (responder, (share of r_d if held, pairwise mask)) pairs —
    masks are always unwound from the sum; r_d is re-interpolated when
    at least the neighborhood threshold of shares verify against the
    dropout's retained check string, otherwise the dropout's update is
    excluded (removed from the product and the combined check — not
    convicted). Streamed rounds subtract excluded/late clients from the
    running sums via the spill. The recovered R is checked against the
    combined commitment (Π z_i) before decoding; a mismatch — any
    tampered masked sum — yields [Aggregate_mismatch]. *)
val aggregate_kregular :
  t ->
  topo:Risefl_topology.Topology.t ->
  honest:int list ->
  recover:(dropout:int -> responders:int list -> (int * (Scalar.t option * Scalar.t)) list) ->
  agg_msgs:Wire.agg_msg option array ->
  (int array, agg_error) result
