(** The asymptotic cost model of Table 1, instantiated: predicted counts
    of group exponentiations (g.e.), field operations (f.a.) and
    communicated group elements per stage, for RiseFL and the three
    baselines. Used by the [table1] bench target to print the table the
    paper reports, and cross-checked against measured op ratios. *)

type config = {
  n : int;  (** clients *)
  m : int;  (** max malicious *)
  d : int;  (** model parameters *)
  k : int;  (** probabilistic-check samples *)
  b : int;  (** fixed-point bit width *)
  log_m_factor : int;  (** log2 M *)
  log_p : int;  (** bits of the group order (253) *)
}

type cost = {
  client_commit_ge : float;
  client_proof_gen_ge : float;
  client_proof_ver_ge : float;
  client_fa : float;
  server_prep_ge : float;
  server_proof_ver_ge : float;
  server_agg_ge : float;
  comm_elements_per_client : float;
}

val risefl : config -> cost
val eiffel : config -> cost
val rofl : config -> cost
val acorn : config -> cost

(** Render the four rows as an aligned text table. *)
val to_table : config -> string
