(** Cached construction of expensive group-layer precomputations.

    Cold starts spend most of their time building the BSGS baby table
    (≈ sqrt(n·2^b) group additions + compressions) and the fixed-base
    point tables (512 entries each, one per Pedersen base). This module
    routes those constructions through a persistent {!Store.Cache}: a
    warm start loads the serialized artifacts and skips the group
    arithmetic entirely. Cache entries are keyed by the compressed base
    point plus all geometry parameters and CRC-framed; any mismatch or
    corruption silently rebuilds — the cache can never change results,
    only construction time.

    The default cache and dlog memory scale are process-global,
    configured once from the CLI ({!configure}); the [?cache]/[?m_scale]
    arguments override per call (used by tests and benches). *)

(** [configure ?cache_dir ?dlog_m_scale ()] sets the process defaults.
    Omitted arguments are left unchanged. [cache_dir] is created if
    missing. [dlog_m_scale] scales the BSGS baby-table size (the
    time/memory knob: bigger tables, fewer giant steps); non-positive
    values reset it to 1.0. *)
val configure : ?cache_dir:string -> ?dlog_m_scale:float -> unit -> unit

(** Back to no cache, m_scale 1.0 (tests). *)
val reset : unit -> unit

val cache : unit -> Store.Cache.t option
val dlog_m_scale : unit -> float

(** [dlog ~base ~max_abs ()] — a BSGS solver, from cache when possible. *)
val dlog :
  ?cache:Store.Cache.t ->
  ?m_scale:float ->
  base:Curve25519.Point.t ->
  max_abs:int ->
  unit ->
  Curve25519.Dlog.t

(** [table ~label ~base ()] — a fixed-base table, from cache when
    possible. [label] keeps same-point tables from different roles
    (e.g. setups with different derivation labels) distinct. *)
val table :
  ?cache:Store.Cache.t ->
  label:string ->
  base:Curve25519.Point.t ->
  unit ->
  Curve25519.Point.Table.table
