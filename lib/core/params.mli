(** RiseFL system parameters (§4.2 of the paper).

    Agreed on by every party at initialization: client counts, the model
    dimension d, the probabilistic-check sample count k, fixed-point
    encoding, the discretization factor M, the L2 bound B and the derived
    proof bounds B₀, b_ip, b_max. *)

type t = {
  n_clients : int;  (** n *)
  max_malicious : int;  (** m, must satisfy m < n/2 *)
  d : int;  (** number of model parameters *)
  k : int;  (** number of Gaussian projections of Algorithm 2 *)
  eps_log2 : int;  (** honest-failure budget ε = 2^−eps_log2 (paper: 128) *)
  b_ip_bits : int;  (** power-of-two width of the σ range proof; each
                        projection must satisfy ⟨a_t,u⟩ ∈ [−2^(b_ip_bits−1),
                        2^(b_ip_bits−1)) *)
  b_max_bits : int;  (** power-of-two width of the μ range proof on
                         B₀ − Σ⟨a_t,u⟩² *)
  m_factor : float;  (** discretization factor M for Gaussian samples *)
  bound_b : float;  (** the L2 bound B, in {e encoded} (fixed-point) units *)
  fp : Encoding.Fixed_point.cfg;  (** float ↔ integer encoding *)
}

(** [make …] validates every constraint (m < n/2, power-of-two proof
    widths, no-overflow soundness of b_max, B₀ < 2^b_max).
    @raise Invalid_argument with a descriptive message otherwise. *)
val make :
  ?eps_log2:int ->
  ?b_ip_bits:int ->
  ?b_max_bits:int ->
  ?m_factor:float ->
  ?fp:Encoding.Fixed_point.cfg ->
  n_clients:int ->
  max_malicious:int ->
  d:int ->
  k:int ->
  bound_b:float ->
  unit ->
  t

(** γ_{k,ε} for these parameters. *)
val gamma : t -> float

(** Exact ⌈f⌉ as a bigint, for non-negative floats of any magnitude
    (53-bit-mantissa decomposition; exposed for the baselines' bound
    arithmetic). *)
val bigint_of_float_ceil : float -> Bigint.t

(** The Theorem 1 bound B₀ as an exact integer. *)
val b0 : t -> Bigint.t

(** The statistical parameters as a {!Stats.Passrate.params}. *)
val passrate_params : t -> Stats.Passrate.params

(** Shamir threshold used for the blinds: t = m + 1. *)
val shamir_t : t -> int

(** Largest |coordinate| the aggregation decoder must solve:
    n · 2^(fp.bits − 1). *)
val agg_max_abs : t -> int

(** [check_update_norm t u] — whether an encoded update is within the L2
    bound B (what an honest client must ensure before committing). *)
val check_update_norm : t -> int array -> bool

(** [clip_update t u] scales a float update down to norm <= B if needed
    (in encoded units), returning the (possibly scaled) float vector. *)
val clip_update : t -> float array -> float array
