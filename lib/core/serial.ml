module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

exception Malformed of string

type error = { offset : int; reason : string }

let pp_error fmt e = Format.fprintf fmt "malformed frame at byte %d: %s" e.offset e.reason
let error_to_string e = Printf.sprintf "malformed frame at byte %d: %s" e.offset e.reason

(* internal: carries the reader offset of the defect; never escapes this
   module (result decoders catch it, legacy decoders translate it) *)
exception Err of int * string

let err pos msg = raise (Err (pos, msg))

(* --- writer --- *)

module W = struct

  let create () = Buffer.create 4096
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Serial: u32 out of range";
    for i = 0 to 3 do
      Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  (* signed 32-bit, two's complement inside the u32 lane *)
  let i32 b v =
    if v < -0x80000000 || v > 0x7FFFFFFF then invalid_arg "Serial: i32 out of range";
    u32 b (v land 0xFFFFFFFF)

  let bytes b x =
    u32 b (Bytes.length x);
    Buffer.add_bytes b x

  let raw b x = Buffer.add_bytes b x
  let point b p = raw b (Point.compress p)
  let scalar b s = raw b (Scalar.to_bytes s)

  let array b f xs =
    u32 b (Array.length xs);
    Array.iter (f b) xs

  (* one Montgomery-batched field inversion for the whole vector instead
     of one inversion per point *)
  let points b ps =
    u32 b (Array.length ps);
    Array.iter (raw b) (Point.compress_batch ps)

  let scalars b ss = array b scalar ss
end

(* --- reader ---

   Totality invariant: every reader either succeeds or raises [Err]; no
   other exception can escape, and no read allocates proportionally to an
   attacker-chosen length prefix before that prefix has been validated
   against the bytes actually remaining in the frame. *)

module R = struct
  type t = { buf : Bytes.t; mutable pos : int }

  let create buf = { buf; pos = 0 }
  let remaining r = Bytes.length r.buf - r.pos

  let need r n = if n < 0 || n > remaining r then err r.pos "truncated message"

  let u8 r =
    need r 1;
    let v = Char.code (Bytes.get r.buf r.pos) in
    r.pos <- r.pos + 1;
    v

  let u32 r =
    need r 4;
    let v = ref 0 in
    for i = 3 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get r.buf (r.pos + i))
    done;
    r.pos <- r.pos + 4;
    !v

  let i32 r =
    let v = u32 r in
    if v land 0x80000000 <> 0 then v - 0x1_0000_0000 else v

  let raw r n =
    need r n;
    let out = Bytes.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    out

  let bytes r =
    let n = u32 r in
    if n > remaining r then err (r.pos - 4) "length field exceeds remaining bytes";
    raw r n

  let point r =
    let off = r.pos in
    match Point.decompress_unchecked (raw r 32) with
    | Some p -> p
    | None -> err off "invalid point encoding"

  let scalar r =
    let off = r.pos in
    match Scalar.of_bytes_opt (raw r 32) with
    | Some s -> s
    | None -> err off "non-canonical scalar"

  (* A length-prefixed count: a hostile 0xFFFFFFFF prefix must be rejected
     before any allocation, so the count is checked against the bytes left
     in the frame at [min_elem] bytes per element. *)
  let counted r ~min_elem =
    let n = u32 r in
    if n > remaining r / max 1 min_elem then
      err (r.pos - 4) "count field exceeds remaining bytes";
    n

  let array r ?(min_elem = 1) f =
    let n = counted r ~min_elem in
    Array.init n (fun _ -> f r)

  let points r = array r ~min_elem:32 point
  let scalars r = array r ~min_elem:32 scalar

  let finish r = if r.pos <> Bytes.length r.buf then err r.pos "trailing bytes"
end

(* --- sub-structures --- *)

let w_sealed b (s : Channel.sealed) =
  W.bytes b s.Channel.nonce;
  W.bytes b s.Channel.body;
  W.bytes b s.Channel.tag

(* three u32 length prefixes: 12 bytes minimum *)
let sealed_min_size = 12

let r_sealed r =
  let nonce = R.bytes r in
  let body = R.bytes r in
  let tag = R.bytes r in
  { Channel.nonce; body; tag }

let w_wf b (p : Zkp.Sigma.Wf.proof) =
  W.point b p.Zkp.Sigma.Wf.az;
  W.points b p.Zkp.Sigma.Wf.ae;
  W.points b p.Zkp.Sigma.Wf.ao;
  W.scalar b p.Zkp.Sigma.Wf.zr;
  W.scalars b p.Zkp.Sigma.Wf.zv;
  W.scalars b p.Zkp.Sigma.Wf.zs

let r_wf r =
  let az = R.point r in
  let ae = R.points r in
  let ao = R.points r in
  let zr = R.scalar r in
  let zv = R.scalars r in
  let zs = R.scalars r in
  { Zkp.Sigma.Wf.az; ae; ao; zr; zv; zs }

let w_square b (p : Zkp.Sigma.Square.proof) =
  W.point b p.Zkp.Sigma.Square.a1;
  W.point b p.Zkp.Sigma.Square.a2;
  W.scalar b p.Zkp.Sigma.Square.zx;
  W.scalar b p.Zkp.Sigma.Square.zs;
  W.scalar b p.Zkp.Sigma.Square.zs'

let square_size = 5 * 32

let r_square r =
  let a1 = R.point r in
  let a2 = R.point r in
  let zx = R.scalar r in
  let zs = R.scalar r in
  let zs' = R.scalar r in
  { Zkp.Sigma.Square.a1; a2; zx; zs; zs' }

let w_ipa b (p : Zkp.Ipa.proof) =
  W.points b p.Zkp.Ipa.ls;
  W.points b p.Zkp.Ipa.rs;
  W.scalar b p.Zkp.Ipa.a;
  W.scalar b p.Zkp.Ipa.b

let r_ipa r =
  let ls = R.points r in
  let rs = R.points r in
  let a = R.scalar r in
  let b = R.scalar r in
  { Zkp.Ipa.ls; rs; a; b }

let w_range b (p : Zkp.Range_proof.proof) =
  W.point b p.Zkp.Range_proof.a;
  W.point b p.Zkp.Range_proof.s;
  W.point b p.Zkp.Range_proof.t1;
  W.point b p.Zkp.Range_proof.t2;
  W.scalar b p.Zkp.Range_proof.t_hat;
  W.scalar b p.Zkp.Range_proof.tau_x;
  W.scalar b p.Zkp.Range_proof.mu;
  w_ipa b p.Zkp.Range_proof.ipa

let r_range r =
  let a = R.point r in
  let s = R.point r in
  let t1 = R.point r in
  let t2 = R.point r in
  let t_hat = R.scalar r in
  let tau_x = R.scalar r in
  let mu = R.scalar r in
  let ipa = r_ipa r in
  { Zkp.Range_proof.a; s; t1; t2; t_hat; tau_x; mu; ipa }

(* --- top-level messages --- *)

let magic_commit = 0xC1
let magic_flag = 0xC2
let magic_proof = 0xC3
let magic_agg = 0xC4
let magic_broadcast = 0xC5

(* 0xC6 = framed, 0xC7 = snapshot (below); v2 commit carries a topology
   digest for the k-regular share path *)
let magic_commit_v2 = 0xC8

let expect_magic r m =
  let off = r.R.pos in
  if R.u8 r <> m then err off "wrong message type"

(* every result decoder funnels through here: [Err] carries the offending
   offset; anything else (a defect in a reader) is still converted so that
   Malformed — or any exception at all — cannot escape a decode_* call *)
let c_decode_errors = Telemetry.Counter.make "wire.decode.errors"

let total name f buf =
  let r = R.create buf in
  try Ok (f r) with
  | Err (offset, reason) ->
      Telemetry.Counter.incr c_decode_errors;
      Error { offset; reason }
  | Malformed reason ->
      Telemetry.Counter.incr c_decode_errors;
      Error { offset = r.R.pos; reason }
  | Invalid_argument m | Failure m ->
      Telemetry.Counter.incr c_decode_errors;
      Error { offset = r.R.pos; reason = name ^ ": " ^ m }
  | exn ->
      Telemetry.Counter.incr c_decode_errors;
      Error { offset = r.R.pos; reason = name ^ ": " ^ Printexc.to_string exn }

(* per-message-type encoded byte counters: encode_* is the single choke
   point every outbound frame passes through (driver serialize mode,
   transcripts, netsim transport) *)
let c_wire_commit = Telemetry.Counter.make "wire.commit.bytes"
let c_wire_flag = Telemetry.Counter.make "wire.flag.bytes"
let c_wire_proof = Telemetry.Counter.make "wire.proof.bytes"
let c_wire_agg = Telemetry.Counter.make "wire.agg.bytes"
let c_wire_broadcast = Telemetry.Counter.make "wire.broadcast.bytes"

let counted counter b =
  let out = Buffer.to_bytes b in
  Telemetry.Counter.add counter (Bytes.length out);
  out

(* two commit encodings share one codec: the all-to-all path emits the
   historical v1 bytes (magic 0xC1, no digest — so the k = n−1 degenerate
   topology is bit-identical to the legacy path), the k-regular path
   prefixes the 32-byte topology digest under magic 0xC8. The decoder
   dispatches on the magic; v1 frames keep decoding forever. *)
let encode_commit_msg (m : Wire.commit_msg) =
  let b = W.create () in
  (match m.Wire.topo_digest with
  | None -> W.u8 b magic_commit
  | Some d ->
      if Bytes.length d <> 32 then invalid_arg "Serial.encode_commit_msg: digest must be 32 bytes";
      W.u8 b magic_commit_v2;
      W.raw b d);
  W.u32 b m.Wire.sender;
  W.points b m.Wire.y;
  W.points b m.Wire.check;
  W.array b w_sealed m.Wire.enc_shares;
  counted c_wire_commit b

let decode_commit =
  total "commit" (fun r ->
      let off = r.R.pos in
      let magic = R.u8 r in
      let topo_digest =
        if magic = magic_commit then None
        else if magic = magic_commit_v2 then Some (R.raw r 32)
        else err off "wrong message type"
      in
      let sender = R.u32 r in
      let y = R.points r in
      let check = R.points r in
      let enc_shares = R.array r ~min_elem:sealed_min_size r_sealed in
      R.finish r;
      { Wire.sender; y; check; enc_shares; topo_digest })

let encode_flag_msg (m : Wire.flag_msg) =
  let b = W.create () in
  W.u8 b magic_flag;
  W.u32 b m.Wire.sender;
  W.u32 b (List.length m.Wire.suspects);
  List.iter (W.u32 b) m.Wire.suspects;
  counted c_wire_flag b

let decode_flag =
  total "flag" (fun r ->
      expect_magic r magic_flag;
      let sender = R.u32 r in
      let n = R.counted r ~min_elem:4 in
      let suspects = List.init n (fun _ -> R.u32 r) in
      R.finish r;
      { Wire.sender; suspects })

let w_link b (p : Zkp.Sigma.Link.proof) =
  W.point b p.Zkp.Sigma.Link.az;
  W.point b p.Zkp.Sigma.Link.ae;
  W.point b p.Zkp.Sigma.Link.ao;
  W.scalar b p.Zkp.Sigma.Link.zx;
  W.scalar b p.Zkp.Sigma.Link.zr;
  W.scalar b p.Zkp.Sigma.Link.zs

let r_link r =
  let az = R.point r in
  let ae = R.point r in
  let ao = R.point r in
  let zx = R.scalar r in
  let zr = R.scalar r in
  let zs = R.scalar r in
  { Zkp.Sigma.Link.az; ae; ao; zx; zr; zs }

let w_cosine b (c : Wire.cosine_part) =
  W.point b c.Wire.o_w;
  W.point b c.Wire.o_w2;
  w_link b c.Wire.link;
  w_square b c.Wire.w_square;
  w_range b c.Wire.w_range

let r_cosine r =
  let o_w = R.point r in
  let o_w2 = R.point r in
  let link = r_link r in
  let w_square = r_square r in
  let w_range = r_range r in
  { Wire.o_w; o_w2; link; w_square; w_range }

let encode_proof_msg (m : Wire.proof_msg) =
  let b = W.create () in
  W.u8 b magic_proof;
  W.u32 b m.Wire.sender;
  W.points b m.Wire.es;
  W.points b m.Wire.os;
  W.points b m.Wire.os';
  w_wf b m.Wire.wf;
  W.array b w_square m.Wire.squares;
  (match m.Wire.cosine with
  | None -> W.u8 b 0
  | Some c ->
      W.u8 b 1;
      w_cosine b c);
  w_range b m.Wire.sigma_range;
  w_range b m.Wire.mu_range;
  counted c_wire_proof b

let decode_proof =
  total "proof" (fun r ->
      expect_magic r magic_proof;
      let sender = R.u32 r in
      let es = R.points r in
      let os = R.points r in
      let os' = R.points r in
      let wf = r_wf r in
      let squares = R.array r ~min_elem:square_size r_square in
      let cosine =
        let off = r.R.pos in
        match R.u8 r with
        | 0 -> None
        | 1 -> Some (r_cosine r)
        | _ -> err off "bad cosine flag"
      in
      let sigma_range = r_range r in
      let mu_range = r_range r in
      R.finish r;
      { Wire.sender; es; os; os'; wf; squares; cosine; sigma_range; mu_range })

let encode_agg_msg (m : Wire.agg_msg) =
  let b = W.create () in
  W.u8 b magic_agg;
  W.u32 b m.Wire.sender;
  W.scalar b m.Wire.r_sum;
  counted c_wire_agg b

let decode_agg =
  total "agg" (fun r ->
      expect_magic r magic_agg;
      let sender = R.u32 r in
      let r_sum = R.scalar r in
      R.finish r;
      { Wire.sender; r_sum })

let encode_broadcast ~s ~hs =
  let b = W.create () in
  W.u8 b magic_broadcast;
  W.bytes b s;
  W.points b hs;
  counted c_wire_broadcast b

let decode_broadcast_r =
  total "broadcast" (fun r ->
      expect_magic r magic_broadcast;
      let s = R.bytes r in
      let hs = R.points r in
      R.finish r;
      (s, hs))

(* --- durable-runtime codecs: transport framing and server snapshots --- *)

let magic_framed = 0xC6
let magic_snapshot = 0xC7

type frame_header = { fh_round : int; fh_stage : int; fh_sender : int; fh_seq : int }

let c_wire_framed = Telemetry.Counter.make "wire.framed.bytes"

let encode_framed ~round ~stage ~sender ~seq payload =
  let b = W.create () in
  W.u8 b magic_framed;
  W.u32 b round;
  W.u8 b stage;
  W.u32 b sender;
  W.u32 b seq;
  W.u32 b (Store.Crc32.digest payload);
  W.bytes b payload;
  counted c_wire_framed b

let decode_framed =
  total "framed" (fun r ->
      expect_magic r magic_framed;
      let fh_round = R.u32 r in
      let fh_stage = R.u8 r in
      let fh_sender = R.u32 r in
      let fh_seq = R.u32 r in
      let crc = R.u32 r in
      let crc_off = r.R.pos - 4 in
      let payload = R.bytes r in
      R.finish r;
      if Store.Crc32.digest payload <> crc then err crc_off "payload CRC mismatch";
      ({ fh_round; fh_stage; fh_sender; fh_seq }, payload))

let w_bools b xs =
  W.u32 b (Array.length xs);
  Array.iter (fun v -> W.u8 b (if v then 1 else 0)) xs

let r_bools r =
  R.array r ~min_elem:1 (fun r ->
      let off = r.R.pos in
      match R.u8 r with 0 -> false | 1 -> true | _ -> err off "bad bool")

let encode_snapshot (s : Wire.server_snapshot) =
  let b = W.create () in
  W.u8 b magic_snapshot;
  W.u32 b s.Wire.snap_round;
  W.u32 b s.Wire.snap_drawn;
  w_bools b s.Wire.snap_bad;
  w_bools b s.Wire.snap_banned;
  W.array b
    (fun b c ->
      match c with
      | None -> W.u8 b 0
      | Some c ->
          W.u8 b 1;
          W.bytes b (encode_commit_msg c))
    s.Wire.snap_commits;
  W.bytes b s.Wire.snap_s;
  Buffer.to_bytes b

let decode_snapshot =
  total "snapshot" (fun r ->
      expect_magic r magic_snapshot;
      let snap_round = R.u32 r in
      let snap_drawn = R.u32 r in
      let snap_bad = r_bools r in
      let snap_banned = r_bools r in
      let snap_commits =
        R.array r ~min_elem:1 (fun r ->
            let off = r.R.pos in
            match R.u8 r with
            | 0 -> None
            | 1 -> (
                let bs = R.bytes r in
                match decode_commit bs with
                | Ok c -> Some c
                | Error e -> err (off + 1 + e.offset) ("embedded commit: " ^ e.reason))
            | _ -> err off "bad commit-option flag")
      in
      let snap_s = R.bytes r in
      R.finish r;
      { Wire.snap_round; snap_drawn; snap_bad; snap_banned; snap_commits; snap_s })

(* --- legacy raising decoders (internal/test convenience) --- *)

let raising decode buf =
  match decode buf with Ok m -> m | Error e -> raise (Malformed (error_to_string e))

let decode_commit_msg buf = raising decode_commit buf
let decode_flag_msg buf = raising decode_flag buf
let decode_proof_msg buf = raising decode_proof buf
let decode_agg_msg buf = raising decode_agg buf
let decode_broadcast buf = raising decode_broadcast_r buf
