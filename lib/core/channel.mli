(** Pairwise secure channels between clients, tunneled through the server
    (§4.2): clients publish Diffie–Hellman public keys on a bulletin; each
    pair derives a shared symmetric key and exchanges encrypted Shamir
    shares via the (untrusted) server.

    Encryption is ChaCha20 with an HMAC-SHA256 tag (encrypt-then-MAC);
    tampering by the forwarding server is detected at decryption. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type keypair = { sk : Scalar.t; pk : Point.t }

(** [gen_keypair drbg] — x25519-style: pk = sk·B. *)
val gen_keypair : Prng.Drbg.t -> keypair

(** [shared_key ~my ~their_pk] — both directions derive the same key
    (hash of the DH point). *)
val shared_key : my:keypair -> their_pk:Point.t -> Bytes.t

type sealed = { nonce : Bytes.t; body : Bytes.t; tag : Bytes.t }

(** [seal ~key ~nonce_seed plaintext]. The nonce must be unique per key;
    callers pass a structured seed (round / sender / receiver ids). *)
val seal : key:Bytes.t -> nonce_seed:string -> Bytes.t -> sealed

(** [open_ ~key sealed] — [None] on authentication failure. *)
val open_ : key:Bytes.t -> sealed -> Bytes.t option

(** Serialized size of a sealed message in bytes. *)
val sealed_size : sealed -> int
