(** Public cryptographic setup shared by the server and every client.

    All group elements are derived deterministically ("nothing up my
    sleeve") from a deployment label, so every party reconstructs the
    same setup without trusting anyone: the value base g, the secondary
    commitment base q, the per-coordinate bases w_1 … w_d (Eqn 2), and
    the Bulletproofs generator vectors. *)

type t = {
  params : Params.t;
  g : Curve25519.Point.t;
  q : Curve25519.Point.t;
  w : Curve25519.Point.t array;  (** length d *)
  g_table : Curve25519.Point.Table.table;
  q_table : Curve25519.Point.Table.table;
  gq_key : Commitments.Pedersen.key;  (** Pedersen key over (g, q) *)
  bp_gens : Zkp.Range_proof.gens;
  b0 : Bigint.t;  (** Theorem 1 bound, precomputed *)
}

(** [create ~label params] — deterministic in [label] and [params].
    Cost is O(d + k·b_ip) group operations (generator derivation). *)
val create : label:string -> Params.t -> t

(** Length of Bulletproofs generator vectors needed by these params. *)
val bp_gen_count : Params.t -> int
