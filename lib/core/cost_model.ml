type config = { n : int; m : int; d : int; k : int; b : int; log_m_factor : int; log_p : int }

type cost = {
  client_commit_ge : float;
  client_proof_gen_ge : float;
  client_proof_ver_ge : float;
  client_fa : float;
  server_prep_ge : float;
  server_proof_ver_ge : float;
  server_agg_ge : float;
  comm_elements_per_client : float;
}

let fl = float_of_int
let log2 x = log x /. log 2.0

(* Table 1, row RiseFL *)
let risefl c =
  let d = fl c.d and k = fl c.k and n = fl c.n in
  let logd = Float.max 1.0 (log2 d) in
  {
    client_commit_ge = d;
    client_proof_gen_ge = d /. logd;
    client_proof_ver_ge = k +. fl c.m (* negligible: one VSSS share check per peer *);
    client_fa = k *. d;
    server_prep_ge = k *. d *. fl c.log_m_factor /. (logd *. fl c.log_p);
    server_proof_ver_ge = n *. d /. logd;
    server_agg_ge = n *. d /. fl c.log_p;
    comm_elements_per_client = d;
  }

(* Table 1, row EIFFeL *)
let eiffel c =
  let d = fl c.d and n = fl c.n and m = fl c.m and b = fl c.b in
  let logmd = Float.max 1.0 (log2 (Float.max 2.0 (m *. d))) in
  {
    client_commit_ge = m *. d;
    client_proof_gen_ge = 0.0;
    client_proof_ver_ge = n *. m *. d /. logmd;
    client_fa = b *. n *. m *. d;
    server_prep_ge = 0.0;
    server_proof_ver_ge = 0.0;
    server_agg_ge = 0.0 (* O(nmd) f.a., no g.e. *);
    comm_elements_per_client = 2.0 *. d *. n *. b;
  }

(* Table 1, row RoFL *)
let rofl c =
  let d = fl c.d and n = fl c.n and b = fl c.b in
  let logdb = Float.max 1.0 (log2 (d *. b)) in
  {
    client_commit_ge = d;
    client_proof_gen_ge = d *. b;
    client_proof_ver_ge = 0.0;
    client_fa = d;
    server_prep_ge = 0.0;
    server_proof_ver_ge = n *. d *. b /. logdb;
    server_agg_ge = n *. d /. fl c.log_p;
    comm_elements_per_client = 12.0 *. d;
  }

(* Table 1, row ACORN *)
let acorn c =
  let d = fl c.d and n = fl c.n in
  let logd = Float.max 1.0 (log2 d) in
  {
    client_commit_ge = d;
    client_proof_gen_ge = d;
    client_proof_ver_ge = 0.0;
    client_fa = d;
    server_prep_ge = 0.0;
    server_proof_ver_ge = n *. d /. logd;
    server_agg_ge = n *. d /. fl c.log_p;
    comm_elements_per_client = (fl c.b +. log2 (fl c.n)) /. fl c.log_p *. d;
  }

let to_table c =
  let buf = Buffer.create 1024 in
  let row name v =
    Buffer.add_string buf
      (Printf.sprintf "%-8s %12.3g %12.3g %12.3g %12.3g %12.3g %12.3g %12.3g %12.3g\n" name
         v.client_commit_ge v.client_proof_gen_ge v.client_proof_ver_ge v.client_fa v.server_prep_ge
         v.server_proof_ver_ge v.server_agg_ge v.comm_elements_per_client)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Table 1 (instantiated): n=%d m=%d d=%d k=%d b=%d logM=%d logp=%d\n%-8s %12s %12s %12s %12s %12s %12s %12s %12s\n"
       c.n c.m c.d c.k c.b c.log_m_factor c.log_p "system" "commit(ge)" "prfgen(ge)" "prfver(ge)"
       "client(fa)" "prep(ge)" "srv-ver(ge)" "agg(ge)" "comm(elts)");
  row "EIFFeL" (eiffel c);
  row "RoFL" (rofl c);
  row "ACORN" (acorn c);
  row "RiseFL" (risefl c);
  Buffer.contents buf
