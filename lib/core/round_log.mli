(** Typed write-ahead log of round events, over {!Store.Wal}.

    The log is the server's durability boundary: every frame the server
    accepts is appended (and fsynced) {e before} it is processed, stage
    completions and the drawn check string are logged as they happen, and
    a {!record.Snapshot} of the server state opens every round. Recovery
    replays the intact prefix: restore the last snapshot, re-feed the
    logged frames of the in-progress round, and resume — the result is
    bit-identical to the uncrashed run (see {!Driver.recover_round}).

    Frames are keyed (round, stage, sender, seq) so replay after a crash
    — or a duplicated delivery straddling the crash — de-duplicates
    idempotently. *)

type record =
  | Round_start of { round : int }
  | Snapshot of Wire.server_snapshot
      (** server state at a round boundary (see {!Server.snapshot}) *)
  | Frame of { round : int; stage : Netsim.stage; sender : int; seq : int; frame : Bytes.t }
      (** one accepted client frame, logged write-ahead of processing *)
  | Stage_done of { round : int; stage : Netsim.stage }
  | Check of { round : int; s : Bytes.t }
      (** the drawn check string (audit record: recovery re-derives it
          from the DRBG position and asserts equality) *)
  | Round_end of { round : int; cstar : int list; aggregate : int array option }
  | Epoch of Membership.epoch
      (** the round's frozen membership — cohort, post-rotation
          directory, standing deltas — written before [Round_start] so
          recovery re-enters the round under the exact cohort *)

type t

val create : ?fsync:bool -> string -> t
(** [create ?fsync path] — open (append) the log at [path].
    [fsync] as in {!Store.Wal.open_} (default [true]). *)

val path : t -> string
val append : t -> record -> unit
val sync : t -> unit
val close : t -> unit

val replay : string -> record list * Store.Wal.replay_status
(** Decode the intact prefix of the log. A torn or corrupt tail (the
    normal shape after a crash mid-append) terminates the scan with the
    [Torn] status; an undecodable record body inside a CRC-clean frame is
    reported the same way. Never raises. *)
