module Point = Curve25519.Point
module Gens = Curve25519.Gens

type t = {
  params : Params.t;
  g : Point.t;
  q : Point.t;
  w : Point.t array;
  g_table : Point.Table.table;
  q_table : Point.Table.table;
  gq_key : Commitments.Pedersen.key;
  bp_gens : Zkp.Range_proof.gens;
  b0 : Bigint.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let bp_gen_count (p : Params.t) =
  Stdlib.max (next_pow2 p.Params.k * p.Params.b_ip_bits) p.Params.b_max_bits

let create ~label (params : Params.t) =
  let g = Gens.derive (label ^ "/g") in
  let q = Gens.derive (label ^ "/q") in
  let w = Gens.derive_many (label ^ "/w") params.Params.d in
  (* the two fixed-base tables dominate cold setup; pull them through the
     persistent cache when one is configured *)
  let g_table = Group_cache.table ~label:(label ^ "/g") ~base:g () in
  let q_table = Group_cache.table ~label:(label ^ "/q") ~base:q () in
  let gq_key = Commitments.Pedersen.of_tables ~g_table ~h_table:q_table ~g ~h:q in
  {
    params;
    g;
    q;
    w;
    g_table = gq_key.Commitments.Pedersen.g_table;
    q_table = gq_key.Commitments.Pedersen.h_table;
    gq_key;
    bp_gens = Zkp.Range_proof.make_gens ~label:(label ^ "/bp") (bp_gen_count params);
    b0 = Params.b0 params;
  }
