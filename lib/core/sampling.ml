module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm

type matrix = { a0 : Scalar.t array; rows : int array array }

let seed ~s ~pks =
  let h = Hashfn.Sha256.init () in
  Hashfn.Sha256.update_string h "risefl/seed/v1";
  Hashfn.Sha256.update h s;
  Array.iter (Hashfn.Sha256.update h) (Point.compress_batch pks);
  Hashfn.Sha256.finalize h

let sample_matrix ~seed ~d ~k ~m_factor =
  let root = Prng.Drbg.create seed in
  let d0 = Prng.Drbg.fork root "a0" in
  let a0 = Array.init d (fun _ -> Scalar.random d0) in
  let rows =
    Array.init k (fun t ->
        let dt = Prng.Drbg.fork root (Printf.sprintf "a%d" (t + 1)) in
        Array.init d (fun _ -> Prng.Drbg.gaussian_discrete dt ~m:m_factor))
  in
  { a0; rows }

let compute_h (setup : Setup.t) m =
  let w = setup.Setup.w in
  (* one d-point MSM per projection row: parallelize across the k rows
     (each inner MSM then runs sequentially — nested regions inline) *)
  let h0 = Msm.msm (Array.mapi (fun l a -> (a, w.(l))) m.a0) in
  let hts =
    Parallel.parallel_map (fun row -> Msm.msm_small (Array.mapi (fun l a -> (a, w.(l))) row)) m.rows
  in
  Array.append [| h0 |] hts

let ver_crt drbg ~bases ~targets ~matrix =
  let d = Array.length bases in
  let k = Array.length matrix.rows in
  if Array.length targets <> k + 1 || Array.length matrix.a0 <> d then false
  else begin
    let b = Array.init (k + 1) (fun _ -> Scalar.random drbg) in
    (* c = b . A : c_l = b_0 a0_l + sum_t b_t A_tl — O(kd) field ops,
       independent per coordinate *)
    let c =
      Parallel.parallel_init d (fun l ->
          let acc = ref (Scalar.mul b.(0) matrix.a0.(l)) in
          for t = 0 to k - 1 do
            let a = matrix.rows.(t).(l) in
            if a <> 0 then acc := Scalar.add !acc (Scalar.mul_small b.(t + 1) a)
          done;
          !acc)
    in
    let lhs = Msm.msm (Array.mapi (fun t bt -> (bt, targets.(t))) b) in
    let rhs = Msm.msm (Array.mapi (fun l cl -> (cl, bases.(l))) c) in
    Point.equal lhs rhs
  end

(* RLC form of [ver_crt] for the server's batched verifier: identical
   shape checks and DRBG draw order, but instead of evaluating the two
   MSMs it pushes rho * (Σ_t b_t·targets_t − Σ_l c_l·bases_l) into the
   caller's accumulator. The whole VerCrt equation is a single point
   equation, hence a single [rho]. *)
let ver_crt_acc drbg ~rho ~push ~bases ~targets ~matrix =
  let d = Array.length bases in
  let k = Array.length matrix.rows in
  if Array.length targets <> k + 1 || Array.length matrix.a0 <> d then false
  else begin
    let b = Array.init (k + 1) (fun _ -> Scalar.random drbg) in
    let c =
      Parallel.parallel_init d (fun l ->
          let acc = ref (Scalar.mul b.(0) matrix.a0.(l)) in
          for t = 0 to k - 1 do
            let a = matrix.rows.(t).(l) in
            if a <> 0 then acc := Scalar.add !acc (Scalar.mul_small b.(t + 1) a)
          done;
          !acc)
    in
    Array.iteri (fun t bt -> push (Scalar.mul rho bt) targets.(t)) b;
    Array.iteri (fun l cl -> push (Scalar.neg (Scalar.mul rho cl)) bases.(l)) c;
    true
  end

let dot_exact a u =
  if Array.length a <> Array.length u then invalid_arg "Sampling.dot_exact: dimension mismatch";
  let acc = ref 0 in
  let big = ref Bigint.zero in
  let headroom = 1 lsl 60 in
  for l = 0 to Array.length a - 1 do
    if !acc > headroom || !acc < -headroom then begin
      big := Bigint.add !big (Bigint.of_int !acc);
      acc := 0
    end;
    acc := !acc + (a.(l) * u.(l))
  done;
  Bigint.to_int (Bigint.add !big (Bigint.of_int !acc))

let project m u =
  let d = Array.length u in
  if Array.length m.a0 <> d then invalid_arg "Sampling.project: dimension mismatch";
  let v0 =
    let acc = ref Scalar.zero in
    for l = 0 to d - 1 do
      acc := Scalar.add !acc (Scalar.mul_small m.a0.(l) u.(l))
    done;
    !acc
  in
  (* |a| < 2^31 and |u| < 2^24 in any valid configuration, so the chunked
     native accumulation in dot_exact is exact *)
  let vs = Array.map (fun row -> dot_exact row u) m.rows in
  (v0, vs)
