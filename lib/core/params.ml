type t = {
  n_clients : int;
  max_malicious : int;
  d : int;
  k : int;
  eps_log2 : int;
  b_ip_bits : int;
  b_max_bits : int;
  m_factor : float;
  bound_b : float;
  fp : Encoding.Fixed_point.cfg;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let passrate_params t =
  { Stats.Passrate.k = t.k; eps = 2.0 ** float_of_int (-t.eps_log2); d = t.d; m_factor = t.m_factor }

let gamma t = Stats.Passrate.gamma (passrate_params t)

(* exact float -> bigint conversion via the 53-bit mantissa *)
let bigint_of_float_ceil f =
  if f < 0.0 then invalid_arg "bigint_of_float_ceil: negative";
  let m, e = Float.frexp f in
  (* f = m * 2^e with m in [0.5, 1); mantissa m * 2^53 is integral *)
  let mant = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
  let b = Bigint.of_int mant in
  let shift = e - 53 in
  if shift >= 0 then Bigint.shift_left b shift
  else begin
    let q = Bigint.shift_right b (-shift) in
    (* ceil: if any low bit was dropped, round up *)
    if Bigint.equal (Bigint.shift_left q (-shift)) b then q else Bigint.add q Bigint.one
  end

let b0 t = bigint_of_float_ceil (Stats.Passrate.b0 (passrate_params t) ~b:t.bound_b)

let make ?(eps_log2 = 128) ?(b_ip_bits = 32) ?(b_max_bits = 128) ?(m_factor = 1024.0)
    ?(fp = Encoding.Fixed_point.default) ~n_clients ~max_malicious ~d ~k ~bound_b () =
  if n_clients < 1 then invalid_arg "Params.make: need at least one client";
  if max_malicious < 0 || 2 * max_malicious >= n_clients then
    invalid_arg "Params.make: need m < n/2";
  if d < 1 then invalid_arg "Params.make: d must be positive";
  if k < 1 then invalid_arg "Params.make: k must be positive";
  if eps_log2 < 16 || eps_log2 > 256 then invalid_arg "Params.make: eps_log2 out of range";
  if not (is_pow2 b_ip_bits) || b_ip_bits < 8 || b_ip_bits > 64 then
    invalid_arg "Params.make: b_ip_bits must be a power of two in [8, 64]";
  if not (is_pow2 b_max_bits) || b_max_bits < 16 || b_max_bits > 128 then
    invalid_arg "Params.make: b_max_bits must be a power of two in [16, 128]";
  if m_factor < 2.0 then invalid_arg "Params.make: m_factor too small";
  if bound_b <= 0.0 then invalid_arg "Params.make: bound_b must be positive";
  let t =
    { n_clients; max_malicious; d; k; eps_log2; b_ip_bits; b_max_bits; m_factor; bound_b; fp }
  in
  (* soundness: the sum of k squares of b_ip-bit values must fit in
     b_max bits without wrapping, and B0 must fit too *)
  let rec lg acc v = if v <= 1 then acc else lg (acc + 1) ((v + 1) / 2) in
  let sum_bits = (2 * (b_ip_bits - 1)) + lg 0 k + 1 in
  if sum_bits > b_max_bits then
    invalid_arg
      (Printf.sprintf "Params.make: overflow risk: k * 2^(2 b_ip) needs %d bits > b_max_bits = %d"
         sum_bits b_max_bits);
  if b_max_bits > 250 then invalid_arg "Params.make: b_max_bits must stay far below the group order";
  if Bigint.bit_length (b0 t) > b_max_bits then
    invalid_arg
      (Printf.sprintf "Params.make: B0 needs %d bits, exceeds b_max_bits = %d (reduce bound_b or m_factor)"
         (Bigint.bit_length (b0 t)) b_max_bits);
  (* honest inner products must stay inside the sigma-proof range:
     |<a_t,u>| <= M * B * (sqrt gamma + slack); require headroom *)
  let vmax = m_factor *. bound_b *. (sqrt (gamma t) +. 1.0) in
  if vmax >= Float.ldexp 1.0 (b_ip_bits - 1) then
    invalid_arg
      (Printf.sprintf
         "Params.make: honest projections can reach %.3g but the sigma proof caps them at 2^%d"
         vmax (b_ip_bits - 1));
  t

let shamir_t t = t.max_malicious + 1
let agg_max_abs t = t.n_clients * (1 lsl (t.fp.Encoding.Fixed_point.bits - 1))

let norm_encoded u = Encoding.Fixed_point.l2_norm_encoded u

let check_update_norm t u = norm_encoded u <= t.bound_b

let clip_update t uf =
  let enc = Encoding.Fixed_point.encode_vec t.fp uf in
  let norm = norm_encoded enc in
  if norm <= t.bound_b then uf
  else begin
    let scale = t.bound_b /. norm *. 0.999 in
    Array.map (fun x -> x *. scale) uf
  end
