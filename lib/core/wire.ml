module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type commit_msg = {
  sender : int;
  y : Point.t array;
  check : Vsss.check;
  enc_shares : Channel.sealed array;
  topo_digest : Bytes.t option;
}

type flag_msg = { sender : int; suspects : int list }

type cosine_part = {
  o_w : Point.t;
  o_w2 : Point.t;
  link : Zkp.Sigma.Link.proof;
  w_square : Zkp.Sigma.Square.proof;
  w_range : Zkp.Range_proof.proof;
}

type proof_msg = {
  sender : int;
  es : Point.t array;
  os : Point.t array;
  os' : Point.t array;
  wf : Zkp.Sigma.Wf.proof;
  squares : Zkp.Sigma.Square.proof array;
  cosine : cosine_part option;
  sigma_range : Zkp.Range_proof.proof;
  mu_range : Zkp.Range_proof.proof;
}

type agg_msg = { sender : int; r_sum : Scalar.t }

(* Everything the server needs to resume bit-identically after a crash:
   the malicious sets (this round's C* and the set carried across rounds),
   the validated commits, the last broadcast check string, and how many
   bytes the root DRBG has drawn — a fresh server fast-forwards its stream
   by [snap_drawn] bytes and is then byte-aligned with the crashed one. *)
type server_snapshot = {
  snap_round : int;
  snap_drawn : int;  (* bytes consumed from the server's root DRBG *)
  snap_bad : bool array;  (* C* of the round in progress *)
  snap_banned : bool array;  (* C* carried across session rounds *)
  snap_commits : commit_msg option array;
  snap_s : Bytes.t;  (* last broadcast check string; may be empty *)
}

let point_size = 32
let scalar_size = 32
let int_size = 4

let commit_msg_size m =
  int_size
  + (point_size * Array.length m.y)
  + (point_size * Array.length m.check)
  + Array.fold_left (fun acc s -> acc + Channel.sealed_size s) 0 m.enc_shares
  + (match m.topo_digest with None -> 0 | Some d -> Bytes.length d)

let flag_msg_size m = int_size + (int_size * List.length m.suspects)

let cosine_part_size c =
  (2 * point_size)
  + Zkp.Sigma.Link.size_bytes c.link
  + Zkp.Sigma.Square.size_bytes c.w_square
  + Zkp.Range_proof.size_bytes c.w_range

let proof_msg_size m =
  int_size
  + (point_size * (Array.length m.es + Array.length m.os + Array.length m.os'))
  + Zkp.Sigma.Wf.size_bytes m.wf
  + Array.fold_left (fun acc p -> acc + Zkp.Sigma.Square.size_bytes p) 0 m.squares
  + (match m.cosine with None -> 1 | Some c -> 1 + cosine_part_size c)
  + Zkp.Range_proof.size_bytes m.sigma_range
  + Zkp.Range_proof.size_bytes m.mu_range

let agg_msg_size _ = int_size + scalar_size
let broadcast_size ~k = 32 + (point_size * (k + 1))
