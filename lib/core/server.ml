module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Sigma = Zkp.Sigma
module Range_proof = Zkp.Range_proof

type t = {
  setup : Setup.t;
  drbg : Prng.Drbg.t;
  dlog : Curve25519.Dlog.t Lazy.t;
  mutable directory : Point.t array;
  mutable commits : Wire.commit_msg option array;
  mutable bad : bool array; (* C*, index i-1 *)
  mutable banned : bool array; (* C* carried across session rounds *)
  mutable matrix : Sampling.matrix option;
  mutable s_value : Bytes.t;
  mutable hs : Point.t array;
  mutable round : int;
  (* bytes consumed from [drbg]: the DRBG "position" a snapshot captures.
     All root-stream draws must go through [draw] below so a restored
     server can fast-forward to the exact same stream offset. *)
  mutable drawn : int;
}

let create setup drbg =
  let p = setup.Setup.params in
  {
    setup;
    drbg;
    dlog =
      lazy
        (Group_cache.dlog ~base:setup.Setup.g
           ~max_abs:(Params.agg_max_abs p) ());
    directory = [||];
    commits = Array.make p.Params.n_clients None;
    bad = Array.make p.Params.n_clients false;
    banned = Array.make p.Params.n_clients false;
    matrix = None;
    s_value = Bytes.empty;
    hs = [||];
    round = 0;
    drawn = 0;
  }

let draw t n =
  t.drawn <- t.drawn + n;
  Prng.Drbg.bytes t.drbg n

let install_directory t pks = t.directory <- pks

let n_of t = t.setup.Setup.params.Params.n_clients
let m_of t = t.setup.Setup.params.Params.max_malicious

let malicious t =
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := (i + 1) :: !out) t.bad;
  List.rev !out

let honest t =
  let out = ref [] in
  Array.iteri (fun i b -> if not b then out := (i + 1) :: !out) t.bad;
  List.rev !out

let mark t i reason =
  ignore reason;
  t.bad.(i - 1) <- true

(* the transport layer's rule: an undecodable frame costs the sender its
   honesty bit, never the server its round *)
let mark_decode_failure t i =
  if i >= 1 && i <= n_of t then mark t i "undecodable frame"

(* the server's validated view of this round's commits (structurally
   invalid ones have been nulled out) — what it forwards to clients *)
let round_commits t = Array.copy t.commits

(* session-scope bans: C* members of completed rounds start the next
   round already malicious (the session loop carries C* forward) *)
let ban t i = if i >= 1 && i <= n_of t then t.banned.(i - 1) <- true

let banned t =
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := (i + 1) :: !out) t.banned;
  List.rev !out

let begin_round t ~round ~commits =
  if Array.length commits <> n_of t then invalid_arg "Server.begin_round: wrong size";
  t.round <- round;
  t.bad <- Array.copy t.banned;
  t.commits <- Array.copy commits;
  Array.iteri (fun i c -> if c = None then mark t (i + 1) "no commit") commits;
  (* structural validation of each commit message *)
  let p = t.setup.Setup.params in
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some (m : Wire.commit_msg) ->
          if
            m.Wire.sender <> i + 1
            || Array.length m.Wire.y <> p.Params.d
            || Array.length m.Wire.check <> Params.shamir_t p
            || Array.length m.Wire.enc_shares <> p.Params.n_clients
          then begin
            mark t (i + 1) "malformed commit";
            t.commits.(i) <- None
          end)
    commits

let process_flags t ~flags ~reveal =
  let n = n_of t and m = m_of t in
  (* flagged_by.(i-1) = list of clients flagging i *)
  let flagged_by = Array.make n [] in
  Array.iteri
    (fun j f ->
      let j = j + 1 in
      match f with
      | None -> mark t j "no flag message"
      | Some (fm : Wire.flag_msg) ->
          let suspects = List.sort_uniq compare fm.Wire.suspects in
          (* rule 1a: flagging more than m clients is self-incriminating *)
          if List.length suspects > m then mark t j "flagged more than m clients"
          else
            List.iter
              (fun i -> if i >= 1 && i <= n then flagged_by.(i - 1) <- j :: flagged_by.(i - 1))
              suspects)
    flags;
  (* rule 1b: flagged by more than m clients *)
  Array.iteri
    (fun i fl -> if List.length fl > m then mark t (i + 1) "flagged by more than m clients")
    flagged_by;
  (* rule 2: flagged by 1..m clients -> request clear shares from dealer *)
  let cleared = ref [] in
  Array.iteri
    (fun i fl ->
      let dealer = i + 1 in
      if (not t.bad.(i)) && fl <> [] && List.length fl <= m then begin
        match reveal dealer fl with
        | None -> mark t dealer "refused rule-2 request"
        | Some pairs ->
            let ok =
              List.for_all
                (fun (j, value) ->
                  match t.commits.(i) with
                  | None -> false
                  | Some c ->
                      Vsss.verify ~g:t.setup.Setup.g ~check:c.Wire.check { Vsss.idx = j; value })
                pairs
              && List.length pairs = List.length fl
            in
            if ok then
              List.iter (fun (j, value) -> cleared := (j, dealer, value) :: !cleared) pairs
            else mark t dealer "rule-2 share failed verification"
      end)
    flagged_by;
  List.rev !cleared

let prepare_check t =
  let p = t.setup.Setup.params in
  let s = draw t 32 in
  let seed = Sampling.seed ~s ~pks:t.directory in
  let matrix = Sampling.sample_matrix ~seed ~d:p.Params.d ~k:p.Params.k ~m_factor:p.Params.m_factor in
  t.matrix <- Some matrix;
  t.s_value <- s;
  t.hs <- Sampling.compute_h t.setup matrix;
  (s, t.hs)

let shift_point t =
  (* g^{2^(b_ip-1)} for re-basing the sigma range commitments *)
  let p = t.setup.Setup.params in
  let e = Scalar.of_bigint (Bigint.shift_left Bigint.one (p.Params.b_ip_bits - 1)) in
  Point.Table.mul t.setup.Setup.g_table e

(* predicate-dependent context precomputed once per round *)
type predicate_ctx =
  | Ctx_l2
  | Ctx_cosine of { v : int array; w_base : Point.t; factor : Bigint.t }

let make_predicate_ctx t = function
  | Predicate.L2 -> Ctx_l2
  | Predicate.Cosine { v; alpha } ->
      let w_base =
        Curve25519.Msm.msm_small (Array.mapi (fun l vl -> (vl, t.setup.Setup.w.(l))) v)
      in
      Ctx_cosine { v; w_base; factor = Predicate.cosine_factor t.setup.Setup.params ~v ~alpha }

let verify_one t ~round ~ctx ~drbg shift_pt (msg : Wire.proof_msg) =
  let p = t.setup.Setup.params in
  let setup = t.setup in
  let k = p.Params.k in
  let i = msg.Wire.sender in
  let matrix = match t.matrix with Some m -> m | None -> failwith "Server: prepare_check first" in
  match t.commits.(i - 1) with
  | None -> false
  | Some commit ->
      Array.length msg.Wire.es = k + 1
      && Array.length msg.Wire.os = k
      && Array.length msg.Wire.os' = k
      && Array.length msg.Wire.squares = k
      (* e* consistency: e_t = prod_l y_il^{a_tl}, batch-verified *)
      && Sampling.ver_crt drbg ~bases:commit.Wire.y ~targets:msg.Wire.es ~matrix
      &&
      let tr = Client.make_transcript ~round ~client_id:i ~s:t.s_value in
      let z = Vsss.commitment_of_check commit.Wire.check in
      Sigma.Wf.verify tr ~g:setup.Setup.g ~q:setup.Setup.q ~hs:t.hs ~z ~es:msg.Wire.es ~os:msg.Wire.os
        msg.Wire.wf
      && (let ok = ref true in
          Array.iteri
            (fun ti sq ->
              if !ok then
                ok :=
                  Sigma.Square.verify tr ~g:setup.Setup.g ~q:setup.Setup.q ~y1:msg.Wire.os.(ti)
                    ~y2:msg.Wire.os'.(ti) sq)
            msg.Wire.squares;
          !ok)
      && (match (ctx, msg.Wire.cosine) with
         | Ctx_l2, None -> true
         | Ctx_l2, Some _ | Ctx_cosine _, None -> false (* predicate mismatch *)
         | Ctx_cosine { v; w_base; _ }, Some cos ->
             (* C_w = prod_l y_il^{v_l} is the homomorphic commitment of
                w = <u, v> under base w_base for the blind *)
             let c_w =
               Curve25519.Msm.msm_small (Array.mapi (fun l vl -> (vl, commit.Wire.y.(l))) v)
             in
             Sigma.Link.verify tr ~g:setup.Setup.g ~h:w_base ~q:setup.Setup.q ~z ~e:c_w
               ~o:cos.Wire.o_w cos.Wire.link
             && Sigma.Square.verify tr ~g:setup.Setup.g ~q:setup.Setup.q ~y1:cos.Wire.o_w
                  ~y2:cos.Wire.o_w2 cos.Wire.w_square
             && Range_proof.verify tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
                  ~bits:p.Params.b_ip_bits ~commitments:[| cos.Wire.o_w |] cos.Wire.w_range)
      && (let sigma_commitments = Array.map (fun o -> Point.add o shift_pt) msg.Wire.os in
          Range_proof.verify tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
            ~bits:p.Params.b_ip_bits ~commitments:sigma_commitments msg.Wire.sigma_range)
      &&
      (* the mu budget: g^{B0} for L2, o_w2^{c_factor} for cosine *)
      let budget_commit =
        match (ctx, msg.Wire.cosine) with
        | Ctx_l2, _ -> Point.Table.mul setup.Setup.g_table (Scalar.of_bigint setup.Setup.b0)
        | Ctx_cosine { factor; _ }, Some cos -> Point.mul (Scalar.of_bigint factor) cos.Wire.o_w2
        | Ctx_cosine _, None -> assert false (* rejected above *)
      in
      let p_commit =
        Point.sub budget_commit (Array.fold_left Point.add Point.identity msg.Wire.os')
      in
      Range_proof.verify tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
        ~bits:p.Params.b_max_bits ~commitments:[| p_commit |] msg.Wire.mu_range

(* Batched counterpart of [verify_one]: instead of evaluating each
   verifier equation, folds all of them — VerCrt, Wf's 2k+2 equations,
   the k Square proofs, the cosine branch, and both range proofs — into
   one term accumulator as rho_j * (LHS - RHS), one independent rho_j per
   equation. Returns the accumulated terms, or None on any structural
   failure (the cases where the naive path rejects without an equation
   ever being evaluated: missing commit, bad shapes, predicate mismatch,
   proof-shape mismatch inside a sub-protocol).

   The per-equation coefficients come from a DRBG forked by (round,
   client), with one extra leading draw folded into every rho as the
   client's outer batching coefficient sigma_i: the cross-client sum
   Σ_i sigma_i · (client i's accumulated sum) is then itself an RLC, and
   because each client's stream depends only on (round, client id) the
   terms — and hence every verdict — are identical for any job count or
   scheduling order. Transcript replay and the VerCrt fork draw order are
   byte-identical to the naive path. *)
let accumulate_one t ~round ~ctx ~drbg ~rlc shift_pt (msg : Wire.proof_msg) =
  let p = t.setup.Setup.params in
  let setup = t.setup in
  let k = p.Params.k in
  let i = msg.Wire.sender in
  let matrix = match t.matrix with Some m -> m | None -> failwith "Server: prepare_check first" in
  match t.commits.(i - 1) with
  | None -> None
  | Some commit ->
      if
        Array.length msg.Wire.es <> k + 1
        || Array.length msg.Wire.os <> k
        || Array.length msg.Wire.os' <> k
        || Array.length msg.Wire.squares <> k
      then None
      else begin
        let acc = Curve25519.Msm.Acc.create ~coalesce:[| setup.Setup.g; setup.Setup.q |] () in
        let push s pt = Curve25519.Msm.Acc.push acc s pt in
        let outer = Scalar.random rlc in
        let rho () = Scalar.mul outer (Scalar.random rlc) in
        let ok =
          Sampling.ver_crt_acc drbg ~rho:(rho ()) ~push ~bases:commit.Wire.y ~targets:msg.Wire.es
            ~matrix
          &&
          let tr = Client.make_transcript ~round ~client_id:i ~s:t.s_value in
          let z = Vsss.commitment_of_check commit.Wire.check in
          Sigma.Wf.accumulate ~rho ~push tr ~g:setup.Setup.g ~q:setup.Setup.q ~hs:t.hs ~z
            ~es:msg.Wire.es ~os:msg.Wire.os msg.Wire.wf
          && (let ok = ref true in
              Array.iteri
                (fun ti sq ->
                  if !ok then
                    ok :=
                      Sigma.Square.accumulate ~rho ~push tr ~g:setup.Setup.g ~q:setup.Setup.q
                        ~y1:msg.Wire.os.(ti) ~y2:msg.Wire.os'.(ti) sq)
                msg.Wire.squares;
              !ok)
          && (match (ctx, msg.Wire.cosine) with
             | Ctx_l2, None -> true
             | Ctx_l2, Some _ | Ctx_cosine _, None -> false (* predicate mismatch *)
             | Ctx_cosine { v; w_base; _ }, Some cos ->
                 let c_w =
                   Curve25519.Msm.msm_small (Array.mapi (fun l vl -> (vl, commit.Wire.y.(l))) v)
                 in
                 Sigma.Link.accumulate ~rho ~push tr ~g:setup.Setup.g ~h:w_base ~q:setup.Setup.q ~z
                   ~e:c_w ~o:cos.Wire.o_w cos.Wire.link
                 && Sigma.Square.accumulate ~rho ~push tr ~g:setup.Setup.g ~q:setup.Setup.q
                      ~y1:cos.Wire.o_w ~y2:cos.Wire.o_w2 cos.Wire.w_square
                 && Range_proof.accumulate ~rho ~push tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g
                      ~h:setup.Setup.q ~bits:p.Params.b_ip_bits ~commitments:[| cos.Wire.o_w |]
                      cos.Wire.w_range)
          && (let sigma_commitments = Array.map (fun o -> Point.add o shift_pt) msg.Wire.os in
              Range_proof.accumulate ~rho ~push tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g
                ~h:setup.Setup.q ~bits:p.Params.b_ip_bits ~commitments:sigma_commitments
                msg.Wire.sigma_range)
          &&
          let budget_commit =
            match (ctx, msg.Wire.cosine) with
            | Ctx_l2, _ -> Point.Table.mul setup.Setup.g_table (Scalar.of_bigint setup.Setup.b0)
            | Ctx_cosine { factor; _ }, Some cos -> Point.mul (Scalar.of_bigint factor) cos.Wire.o_w2
            | Ctx_cosine _, None -> assert false (* rejected above *)
          in
          let p_commit =
            Point.sub budget_commit (Array.fold_left Point.add Point.identity msg.Wire.os')
          in
          Range_proof.accumulate ~rho ~push tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g
            ~h:setup.Setup.q ~bits:p.Params.b_max_bits ~commitments:[| p_commit |] msg.Wire.mu_range
        in
        if ok then Some (Curve25519.Msm.Acc.terms acc) else None
      end

(* Find the clients whose term blocks make [total] nonzero, recursively
   splitting the candidate list. The right half's sum is derived by
   subtraction (total - left), so each tree level costs one MSM over half
   the terms instead of two. Invariant: [total] = Σ terms of [cands] and
   is not the identity. *)
let rec bisect_failures ?jobs cands total =
  let ncands = Array.length cands in
  if ncands = 1 then [ fst cands.(0) ]
  else begin
    let mid = ncands / 2 in
    let left = Array.sub cands 0 mid and right = Array.sub cands mid (ncands - mid) in
    let left_sum =
      Curve25519.Msm.msm ?jobs (Array.concat (Array.to_list (Array.map snd left)))
    in
    let right_sum = Point.sub total left_sum in
    (if Point.is_identity left_sum then [] else bisect_failures ?jobs left left_sum)
    @ if Point.is_identity right_sum then [] else bisect_failures ?jobs right right_sum
  end

let verify_proofs ?(predicate = Predicate.L2) ?jobs ?(batched = true) t ~round ~proofs =
  if Array.length proofs <> n_of t then invalid_arg "Server.verify_proofs: wrong size";
  Predicate.validate t.setup.Setup.params predicate;
  let ctx = make_predicate_ctx t predicate in
  let shift_pt = shift_point t in
  if not batched then begin
    (* Naive reference path: every equation evaluated directly, per-client
       in parallel. Kept verbatim as the differential-testing baseline.
       Each client gets a DRBG forked from the server key by (round, id)
       alone, so the VerCrt challenge randomness — and with it the
       accept/reject outcome — is identical whatever the job count or
       execution order. Verdicts are collected first and C* is updated
       sequentially afterwards. *)
    let verdicts =
      Parallel.parallel_mapi ?jobs
        (fun idx pr ->
          let i = idx + 1 in
          if t.bad.(idx) then None
          else
            match pr with
            | None -> Some "no proof"
            | Some (msg : Wire.proof_msg) ->
                if msg.Wire.sender <> i then Some "proof sender mismatch"
                else begin
                  let drbg = Prng.Drbg.fork t.drbg (Printf.sprintf "vercrt/r%d/c%d" round i) in
                  if verify_one t ~round ~ctx ~drbg shift_pt msg then None else Some "proof failed"
                end)
        proofs
    in
    Array.iteri
      (fun idx v -> match v with Some reason -> mark t (idx + 1) reason | None -> ())
      verdicts
  end
  else begin
    (* Batched path: accumulate every client's equations (parallel per
       client — pure scalar work), then decide the whole round with ONE
       MSM over the concatenated terms. On failure, bisect the term
       blocks to attribute blame; the RLC coefficients make each client's
       block nonzero (w.h.p.) exactly when its naive verdict is reject,
       so C* matches the naive path bit for bit. *)
    let checks =
      Parallel.parallel_mapi ?jobs
        (fun idx pr ->
          let i = idx + 1 in
          if t.bad.(idx) then None
          else
            match pr with
            | None -> Some (Error "no proof")
            | Some (msg : Wire.proof_msg) ->
                if msg.Wire.sender <> i then Some (Error "proof sender mismatch")
                else begin
                  let drbg = Prng.Drbg.fork t.drbg (Printf.sprintf "vercrt/r%d/c%d" round i) in
                  let rlc = Prng.Drbg.fork t.drbg (Printf.sprintf "rlc/r%d/c%d" round i) in
                  match accumulate_one t ~round ~ctx ~drbg ~rlc shift_pt msg with
                  | None -> Some (Error "proof failed")
                  | Some terms -> Some (Ok terms)
                end)
        proofs
    in
    let cands = ref [] in
    Array.iteri
      (fun idx v ->
        match v with
        | None -> ()
        | Some (Error reason) -> mark t (idx + 1) reason
        | Some (Ok terms) -> cands := (idx, terms) :: !cands)
      checks;
    let cands = Array.of_list (List.rev !cands) in
    if Array.length cands > 0 then begin
      let total = Curve25519.Msm.msm ?jobs (Array.concat (Array.to_list (Array.map snd cands))) in
      if not (Point.is_identity total) then
        List.iter (fun idx -> mark t (idx + 1) "proof failed") (bisect_failures ?jobs cands total)
    end
  end

(* --- crash-recovery snapshots --- *)

let snapshot t =
  {
    Wire.snap_round = t.round;
    snap_drawn = t.drawn;
    snap_bad = Array.copy t.bad;
    snap_banned = Array.copy t.banned;
    snap_commits = Array.copy t.commits;
    snap_s = Bytes.copy t.s_value;
  }

let restore t (s : Wire.server_snapshot) =
  if Array.length s.Wire.snap_bad <> n_of t || Array.length s.Wire.snap_commits <> n_of t then
    invalid_arg "Server.restore: snapshot for a different parameter set";
  if t.drawn > s.Wire.snap_drawn then
    invalid_arg "Server.restore: DRBG already past the snapshot position";
  (* fast-forward the root stream: the discarded bytes are exactly the
     check strings the crashed server drew before the snapshot, so after
     this every future draw is bit-identical to the uncrashed run *)
  if s.Wire.snap_drawn > t.drawn then ignore (draw t (s.Wire.snap_drawn - t.drawn));
  t.round <- s.Wire.snap_round;
  t.bad <- Array.copy s.Wire.snap_bad;
  t.banned <- Array.copy s.Wire.snap_banned;
  t.commits <- Array.copy s.Wire.snap_commits;
  t.s_value <- Bytes.copy s.Wire.snap_s;
  if Bytes.length t.s_value > 0 then begin
    (* re-derive the sampling matrix and check bases from the snapshotted
       s (they are a pure function of s and the directory) *)
    let p = t.setup.Setup.params in
    let seed = Sampling.seed ~s:t.s_value ~pks:t.directory in
    let matrix =
      Sampling.sample_matrix ~seed ~d:p.Params.d ~k:p.Params.k ~m_factor:p.Params.m_factor
    in
    t.matrix <- Some matrix;
    t.hs <- Sampling.compute_h t.setup matrix
  end
  else begin
    t.matrix <- None;
    t.hs <- [||]
  end

type agg_error =
  | Insufficient_quorum of { valid : int; needed : int }
  | No_check_string
  | Coordinate_out_of_range of int

let agg_error_to_string = function
  | Insufficient_quorum { valid; needed } ->
      Printf.sprintf "insufficient quorum: %d valid aggregated shares (< t = %d)" valid needed
  | No_check_string -> "no combined check string (no honest commit survived)"
  | Coordinate_out_of_range l -> Printf.sprintf "coordinate %d out of BSGS decoding range" l

let pp_agg_error fmt e = Format.pp_print_string fmt (agg_error_to_string e)

let aggregate t ~agg_msgs =
  let threshold = Params.shamir_t t.setup.Setup.params in
  let hs = honest t in
  if hs = [] then Error (Insufficient_quorum { valid = 0; needed = threshold })
  else begin
    (* combined check string over the honest dealers *)
    let combined_check =
      List.fold_left
        (fun acc i ->
          match t.commits.(i - 1) with
          | None -> acc
          | Some c -> ( match acc with None -> Some c.Wire.check | Some a -> Some (Vsss.add_checks a c.Wire.check)))
        None hs
    in
    match combined_check with
    | None -> Error No_check_string
    | Some combined_check ->
        (* collect valid aggregated shares; each VSSS check is an independent
           MSM against the combined check string, so fan them out *)
        let checked =
          Parallel.parallel_mapi
            (fun idx msg ->
              let i = idx + 1 in
              if t.bad.(idx) then None
              else
                match msg with
                | None -> None
                | Some (am : Wire.agg_msg) ->
                    let share = { Vsss.idx = i; value = am.Wire.r_sum } in
                    if Vsss.verify ~g:t.setup.Setup.g ~check:combined_check share then Some share
                    else None)
            agg_msgs
        in
        let valid_shares = ref [] in
        Array.iter (function Some s -> valid_shares := s :: !valid_shares | None -> ()) checked;
        let shares = !valid_shares in
        if List.length shares < threshold then
          Error (Insufficient_quorum { valid = List.length shares; needed = threshold })
        else begin
          (* take exactly threshold shares for interpolation *)
          let rec take n = function
            | [] -> []
            | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
          in
          let r = Vsss.recover (take threshold shares) in
          (* aggregate commitments and peel the blind: g^{u_l} = (prod y_il) w_l^{-r} *)
          let p = t.setup.Setup.params in
          let neg_r = Scalar.neg r in
          let solver = Lazy.force t.dlog in
          (* O(d · (n + log ℓ)) point work: the per-coordinate products and blind
             peeling parallelize over coordinate chunks *)
          let targets =
            Parallel.parallel_init p.Params.d (fun l ->
                let prod =
                  List.fold_left
                    (fun acc i ->
                      match t.commits.(i - 1) with
                      | None -> acc
                      | Some c -> Point.add acc c.Wire.y.(l))
                    Point.identity hs
                in
                Point.add prod (Point.mul neg_r t.setup.Setup.w.(l)))
          in
          let solved = Curve25519.Dlog.solve_many solver targets in
          let bad_coord = ref None in
          Array.iteri (fun l v -> if v = None && !bad_coord = None then bad_coord := Some l) solved;
          match !bad_coord with
          | Some l -> Error (Coordinate_out_of_range l)
          | None -> Ok (Array.map (function Some v -> v | None -> assert false) solved)
        end
  end
