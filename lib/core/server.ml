module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Sigma = Zkp.Sigma
module Range_proof = Zkp.Range_proof

(* Result of a finished verification stream, carried to [aggregate]: the
   running Σ y_i over folded survivors, the running combined check string,
   which clients are in those sums, and each included client's compressed
   y (the spill) so a late conviction — a client folded during the stream
   but convicted before aggregation, e.g. an undecodable agg frame — can
   be subtracted exactly. *)
type stream_agg = {
  sa_round : int;
  sa_aggy : Point.t array; (* [||] if no client survived the stream *)
  sa_check : Vsss.check option;
  sa_included : bool array; (* index i-1: folded into sa_aggy/sa_check *)
  sa_spill : Bytes.t option array; (* compressed y of included clients *)
}

type stream_stats = { folded : int; evicted : int; flushes : int; peak_batch : int }

type t = {
  setup : Setup.t;
  drbg : Prng.Drbg.t;
  dlog : Curve25519.Dlog.t Lazy.t;
  mutable directory : Point.t array;
  mutable commits : Wire.commit_msg option array;
  mutable bad : bool array; (* C*, index i-1 *)
  mutable banned : bool array; (* C* carried across session rounds *)
  mutable active : bool array;
      (* this round's cohort, index i-1. An inactive client is absent,
         not guilty: it owes no frames, appears in no honest list, and
         the shared seed binds only the active directory entries. The
         fixed-set path keeps every client active (all-true). *)
  mutable matrix : Sampling.matrix option;
  mutable s_value : Bytes.t;
  mutable hs : Point.t array;
  mutable round : int;
  (* bytes consumed from [drbg]: the DRBG "position" a snapshot captures.
     All root-stream draws must go through [draw] below so a restored
     server can fast-forward to the exact same stream offset. *)
  mutable drawn : int;
  mutable stream_agg : stream_agg option; (* set by stream_finish, round-scoped *)
  mutable stream_last : stream_stats option; (* last finished stream, for reporting *)
  mutable topo : Risefl_topology.Topology.t option;
      (* this round's share topology; None = all-to-all. Never logged or
         snapshotted: it is a pure function of (seed, round, cohort), so
         WAL replay re-derives it through [begin_round]. *)
}

let create setup drbg =
  let p = setup.Setup.params in
  {
    setup;
    drbg;
    dlog =
      lazy
        (Group_cache.dlog ~base:setup.Setup.g
           ~max_abs:(Params.agg_max_abs p) ());
    directory = [||];
    commits = Array.make p.Params.n_clients None;
    bad = Array.make p.Params.n_clients false;
    banned = Array.make p.Params.n_clients false;
    active = Array.make p.Params.n_clients true;
    matrix = None;
    s_value = Bytes.empty;
    hs = [||];
    round = 0;
    drawn = 0;
    stream_agg = None;
    stream_last = None;
    topo = None;
  }

let draw t n =
  t.drawn <- t.drawn + n;
  Prng.Drbg.bytes t.drbg n

let install_directory t pks = t.directory <- pks

let n_of t = t.setup.Setup.params.Params.n_clients
let m_of t = t.setup.Setup.params.Params.max_malicious

let malicious t =
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := (i + 1) :: !out) t.bad;
  List.rev !out

let honest t =
  let out = ref [] in
  Array.iteri (fun i b -> if (not b) && t.active.(i) then out := (i + 1) :: !out) t.bad;
  List.rev !out

let mark t i reason =
  ignore reason;
  t.bad.(i - 1) <- true

(* the transport layer's rule: an undecodable frame costs the sender its
   honesty bit, never the server its round *)
let mark_decode_failure t i =
  if i >= 1 && i <= n_of t then mark t i "undecodable frame"

(* a rejected key rotation is an identity-level offence: whoever sent it
   could not prove continuity with the enrolled key *)
let convict t i ~reason = if i >= 1 && i <= n_of t then mark t i reason

(* [set_active t cohort] — install the round's cohort before [restore]
   or [begin_round]-equivalent replay paths need it; [None] = everyone.
   [begin_round ?cohort] calls this itself on the normal path. *)
let set_active t cohort =
  let act = Array.make (n_of t) (cohort = None) in
  (match cohort with
  | None -> ()
  | Some c -> Array.iter (fun i -> if i >= 1 && i <= n_of t then act.(i - 1) <- true) c);
  t.active <- act

let is_active t i = i >= 1 && i <= n_of t && t.active.(i - 1)

(* the directory restricted to the active cohort, in id order: the pk
   list the shared seed H(s, pk..) binds this round *)
let active_pks t =
  if Array.for_all Fun.id t.active then t.directory
  else begin
    let out = ref [] in
    for i = n_of t downto 1 do
      if t.active.(i - 1) then out := t.directory.(i - 1) :: !out
    done;
    Array.of_list !out
  end

(* the server's validated view of this round's commits (structurally
   invalid ones have been nulled out) — what it forwards to clients *)
let round_commits t = Array.copy t.commits

(* session-scope bans: C* members of completed rounds start the next
   round already malicious (the session loop carries C* forward) *)
let ban t i = if i >= 1 && i <= n_of t then t.banned.(i - 1) <- true

let banned t =
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := (i + 1) :: !out) t.banned;
  List.rev !out

let begin_round ?topo ?cohort t ~round ~commits =
  if Array.length commits <> n_of t then invalid_arg "Server.begin_round: wrong size";
  t.round <- round;
  t.bad <- Array.copy t.banned;
  t.stream_agg <- None;
  t.topo <- topo;
  set_active t cohort;
  t.commits <- Array.copy commits;
  (* absence is only an offence for cohort members; a commit from outside
     the cohort (a stale-epoch straggler) is dropped, not convicted *)
  Array.iteri
    (fun i c ->
      if t.active.(i) then begin
        if c = None then mark t (i + 1) "no commit"
      end
      else t.commits.(i) <- None)
    commits;
  (* structural validation of each commit message. The two topologies
     accept disjoint shapes: all-to-all wants n shares at threshold
     shamir_t and no digest (v1); k-regular wants exactly the sender's
     neighbor count at the neighborhood threshold, pinned to this
     round's topology digest (v2). A client on the wrong branch is
     malformed, not ambiguous. *)
  let p = t.setup.Setup.params in
  let cohort_size = match cohort with None -> p.Params.n_clients | Some c -> Array.length c in
  Array.iteri
    (fun i c ->
      match c with
      | _ when not t.active.(i) -> ()
      | None -> ()
      | Some (m : Wire.commit_msg) ->
          let shape_ok =
            match topo with
            | None ->
                Array.length m.Wire.check = Params.shamir_t p
                && Array.length m.Wire.enc_shares = cohort_size
                && m.Wire.topo_digest = None
            | Some tp ->
                Array.length m.Wire.check = Risefl_topology.Topology.threshold tp
                && Array.length m.Wire.enc_shares
                   = Array.length (Risefl_topology.Topology.neighbors tp (i + 1))
                && (match m.Wire.topo_digest with
                   | Some d -> Bytes.equal d (Risefl_topology.Topology.digest tp)
                   | None -> false)
          in
          if m.Wire.sender <> i + 1 || Array.length m.Wire.y <> p.Params.d || not shape_ok
          then begin
            mark t (i + 1) "malformed commit";
            t.commits.(i) <- None
          end)
    commits

let process_flags t ~flags ~reveal =
  let n = n_of t and m = m_of t in
  (* flagged_by.(i-1) = list of clients flagging i *)
  let flagged_by = Array.make n [] in
  Array.iteri
    (fun j f ->
      let j = j + 1 in
      match f with
      | _ when not t.active.(j - 1) -> ()
      | None -> mark t j "no flag message"
      | Some (fm : Wire.flag_msg) ->
          let suspects = List.sort_uniq compare fm.Wire.suspects in
          (* rule 1a: flagging more than m clients is self-incriminating *)
          if List.length suspects > m then mark t j "flagged more than m clients"
          else if
            (* under a k-regular topology a client holds shares only from
               its graph neighbors, so flagging a non-neighbor dealer is
               equally self-incriminating — the flagger cannot have
               verified a share it never received, and the dealer could
               never answer a rule-2 reveal for it *)
            match t.topo with
            | Some tp ->
                List.exists
                  (fun i ->
                    i >= 1 && i <= n && not (Risefl_topology.Topology.is_neighbor tp j i))
                  suspects
            | None -> false
          then mark t j "flagged a non-neighbor dealer"
          else
            List.iter
              (fun i -> if i >= 1 && i <= n then flagged_by.(i - 1) <- j :: flagged_by.(i - 1))
              suspects)
    flags;
  (* rule 1b: flagged by more than m clients (an absent client cannot be
     convicted in absentia — flags against non-cohort ids are noise) *)
  Array.iteri
    (fun i fl ->
      if t.active.(i) && List.length fl > m then mark t (i + 1) "flagged by more than m clients")
    flagged_by;
  (* rule 2: flagged by 1..m clients -> request clear shares from dealer *)
  let cleared = ref [] in
  Array.iteri
    (fun i fl ->
      let dealer = i + 1 in
      if t.active.(i) && (not t.bad.(i)) && fl <> [] && List.length fl <= m then begin
        match reveal dealer fl with
        | None -> mark t dealer "refused rule-2 request"
        | Some pairs ->
            let ok =
              List.for_all
                (fun (j, value) ->
                  match t.commits.(i) with
                  | None -> false
                  | Some c ->
                      Vsss.verify ~g:t.setup.Setup.g ~check:c.Wire.check { Vsss.idx = j; value })
                pairs
              && List.length pairs = List.length fl
            in
            if ok then
              List.iter (fun (j, value) -> cleared := (j, dealer, value) :: !cleared) pairs
            else mark t dealer "rule-2 share failed verification"
      end)
    flagged_by;
  List.rev !cleared

let prepare_check t =
  let p = t.setup.Setup.params in
  let s = draw t 32 in
  (* the shared seed binds exactly this round's cohort: with everyone
     active this is the full directory, byte-identical to the fixed-set
     derivation *)
  let seed = Sampling.seed ~s ~pks:(active_pks t) in
  let matrix = Sampling.sample_matrix ~seed ~d:p.Params.d ~k:p.Params.k ~m_factor:p.Params.m_factor in
  t.matrix <- Some matrix;
  t.s_value <- s;
  t.hs <- Sampling.compute_h t.setup matrix;
  (s, t.hs)

let shift_point t =
  (* g^{2^(b_ip-1)} for re-basing the sigma range commitments *)
  let p = t.setup.Setup.params in
  let e = Scalar.of_bigint (Bigint.shift_left Bigint.one (p.Params.b_ip_bits - 1)) in
  Point.Table.mul t.setup.Setup.g_table e

(* predicate-dependent context precomputed once per round *)
type predicate_ctx =
  | Ctx_l2
  | Ctx_cosine of { v : int array; w_base : Point.t; factor : Bigint.t }

let make_predicate_ctx t = function
  | Predicate.L2 -> Ctx_l2
  | Predicate.Cosine { v; alpha } ->
      let w_base =
        Curve25519.Msm.msm_small (Array.mapi (fun l vl -> (vl, t.setup.Setup.w.(l))) v)
      in
      Ctx_cosine { v; w_base; factor = Predicate.cosine_factor t.setup.Setup.params ~v ~alpha }

let verify_one t ~round ~ctx ~drbg shift_pt (msg : Wire.proof_msg) =
  let p = t.setup.Setup.params in
  let setup = t.setup in
  let k = p.Params.k in
  let i = msg.Wire.sender in
  let matrix = match t.matrix with Some m -> m | None -> failwith "Server: prepare_check first" in
  match t.commits.(i - 1) with
  | None -> false
  | Some commit ->
      Array.length msg.Wire.es = k + 1
      && Array.length msg.Wire.os = k
      && Array.length msg.Wire.os' = k
      && Array.length msg.Wire.squares = k
      (* e* consistency: e_t = prod_l y_il^{a_tl}, batch-verified *)
      && Sampling.ver_crt drbg ~bases:commit.Wire.y ~targets:msg.Wire.es ~matrix
      &&
      let tr = Client.make_transcript ~round ~client_id:i ~s:t.s_value in
      let z = Vsss.commitment_of_check commit.Wire.check in
      Sigma.Wf.verify tr ~g:setup.Setup.g ~q:setup.Setup.q ~hs:t.hs ~z ~es:msg.Wire.es ~os:msg.Wire.os
        msg.Wire.wf
      && (let ok = ref true in
          Array.iteri
            (fun ti sq ->
              if !ok then
                ok :=
                  Sigma.Square.verify tr ~g:setup.Setup.g ~q:setup.Setup.q ~y1:msg.Wire.os.(ti)
                    ~y2:msg.Wire.os'.(ti) sq)
            msg.Wire.squares;
          !ok)
      && (match (ctx, msg.Wire.cosine) with
         | Ctx_l2, None -> true
         | Ctx_l2, Some _ | Ctx_cosine _, None -> false (* predicate mismatch *)
         | Ctx_cosine { v; w_base; _ }, Some cos ->
             (* C_w = prod_l y_il^{v_l} is the homomorphic commitment of
                w = <u, v> under base w_base for the blind *)
             let c_w =
               Curve25519.Msm.msm_small (Array.mapi (fun l vl -> (vl, commit.Wire.y.(l))) v)
             in
             Sigma.Link.verify tr ~g:setup.Setup.g ~h:w_base ~q:setup.Setup.q ~z ~e:c_w
               ~o:cos.Wire.o_w cos.Wire.link
             && Sigma.Square.verify tr ~g:setup.Setup.g ~q:setup.Setup.q ~y1:cos.Wire.o_w
                  ~y2:cos.Wire.o_w2 cos.Wire.w_square
             && Range_proof.verify tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
                  ~bits:p.Params.b_ip_bits ~commitments:[| cos.Wire.o_w |] cos.Wire.w_range)
      && (let sigma_commitments = Array.map (fun o -> Point.add o shift_pt) msg.Wire.os in
          Range_proof.verify tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
            ~bits:p.Params.b_ip_bits ~commitments:sigma_commitments msg.Wire.sigma_range)
      &&
      (* the mu budget: g^{B0} for L2, o_w2^{c_factor} for cosine *)
      let budget_commit =
        match (ctx, msg.Wire.cosine) with
        | Ctx_l2, _ -> Point.Table.mul setup.Setup.g_table (Scalar.of_bigint setup.Setup.b0)
        | Ctx_cosine { factor; _ }, Some cos -> Point.mul (Scalar.of_bigint factor) cos.Wire.o_w2
        | Ctx_cosine _, None -> assert false (* rejected above *)
      in
      let p_commit =
        Point.sub budget_commit (Array.fold_left Point.add Point.identity msg.Wire.os')
      in
      Range_proof.verify tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g ~h:setup.Setup.q
        ~bits:p.Params.b_max_bits ~commitments:[| p_commit |] msg.Wire.mu_range

(* Batched counterpart of [verify_one]: instead of evaluating each
   verifier equation, folds all of them — VerCrt, Wf's 2k+2 equations,
   the k Square proofs, the cosine branch, and both range proofs — into
   one term accumulator as rho_j * (LHS - RHS), one independent rho_j per
   equation. Returns the accumulated terms, or None on any structural
   failure (the cases where the naive path rejects without an equation
   ever being evaluated: missing commit, bad shapes, predicate mismatch,
   proof-shape mismatch inside a sub-protocol).

   The per-equation coefficients come from a DRBG forked by (round,
   client), with one extra leading draw folded into every rho as the
   client's outer batching coefficient sigma_i: the cross-client sum
   Σ_i sigma_i · (client i's accumulated sum) is then itself an RLC, and
   because each client's stream depends only on (round, client id) the
   terms — and hence every verdict — are identical for any job count or
   scheduling order. Transcript replay and the VerCrt fork draw order are
   byte-identical to the naive path. *)
let accumulate_one t ~round ~ctx ~drbg ~rlc shift_pt (msg : Wire.proof_msg) =
  let p = t.setup.Setup.params in
  let setup = t.setup in
  let k = p.Params.k in
  let i = msg.Wire.sender in
  let matrix = match t.matrix with Some m -> m | None -> failwith "Server: prepare_check first" in
  match t.commits.(i - 1) with
  | None -> None
  | Some commit ->
      if
        Array.length msg.Wire.es <> k + 1
        || Array.length msg.Wire.os <> k
        || Array.length msg.Wire.os' <> k
        || Array.length msg.Wire.squares <> k
      then None
      else begin
        let acc = Curve25519.Msm.Acc.create ~coalesce:[| setup.Setup.g; setup.Setup.q |] () in
        let push s pt = Curve25519.Msm.Acc.push acc s pt in
        let outer = Scalar.random rlc in
        let rho () = Scalar.mul outer (Scalar.random rlc) in
        let ok =
          Sampling.ver_crt_acc drbg ~rho:(rho ()) ~push ~bases:commit.Wire.y ~targets:msg.Wire.es
            ~matrix
          &&
          let tr = Client.make_transcript ~round ~client_id:i ~s:t.s_value in
          let z = Vsss.commitment_of_check commit.Wire.check in
          Sigma.Wf.accumulate ~rho ~push tr ~g:setup.Setup.g ~q:setup.Setup.q ~hs:t.hs ~z
            ~es:msg.Wire.es ~os:msg.Wire.os msg.Wire.wf
          && (let ok = ref true in
              Array.iteri
                (fun ti sq ->
                  if !ok then
                    ok :=
                      Sigma.Square.accumulate ~rho ~push tr ~g:setup.Setup.g ~q:setup.Setup.q
                        ~y1:msg.Wire.os.(ti) ~y2:msg.Wire.os'.(ti) sq)
                msg.Wire.squares;
              !ok)
          && (match (ctx, msg.Wire.cosine) with
             | Ctx_l2, None -> true
             | Ctx_l2, Some _ | Ctx_cosine _, None -> false (* predicate mismatch *)
             | Ctx_cosine { v; w_base; _ }, Some cos ->
                 let c_w =
                   Curve25519.Msm.msm_small (Array.mapi (fun l vl -> (vl, commit.Wire.y.(l))) v)
                 in
                 Sigma.Link.accumulate ~rho ~push tr ~g:setup.Setup.g ~h:w_base ~q:setup.Setup.q ~z
                   ~e:c_w ~o:cos.Wire.o_w cos.Wire.link
                 && Sigma.Square.accumulate ~rho ~push tr ~g:setup.Setup.g ~q:setup.Setup.q
                      ~y1:cos.Wire.o_w ~y2:cos.Wire.o_w2 cos.Wire.w_square
                 && Range_proof.accumulate ~rho ~push tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g
                      ~h:setup.Setup.q ~bits:p.Params.b_ip_bits ~commitments:[| cos.Wire.o_w |]
                      cos.Wire.w_range)
          && (let sigma_commitments = Array.map (fun o -> Point.add o shift_pt) msg.Wire.os in
              Range_proof.accumulate ~rho ~push tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g
                ~h:setup.Setup.q ~bits:p.Params.b_ip_bits ~commitments:sigma_commitments
                msg.Wire.sigma_range)
          &&
          let budget_commit =
            match (ctx, msg.Wire.cosine) with
            | Ctx_l2, _ -> Point.Table.mul setup.Setup.g_table (Scalar.of_bigint setup.Setup.b0)
            | Ctx_cosine { factor; _ }, Some cos -> Point.mul (Scalar.of_bigint factor) cos.Wire.o_w2
            | Ctx_cosine _, None -> assert false (* rejected above *)
          in
          let p_commit =
            Point.sub budget_commit (Array.fold_left Point.add Point.identity msg.Wire.os')
          in
          Range_proof.accumulate ~rho ~push tr ~gens:setup.Setup.bp_gens ~g:setup.Setup.g
            ~h:setup.Setup.q ~bits:p.Params.b_max_bits ~commitments:[| p_commit |] msg.Wire.mu_range
        in
        if ok then Some (Curve25519.Msm.Acc.terms acc) else None
      end

(* Find the clients whose term blocks make [total] nonzero, recursively
   splitting the candidate list. The right half's sum is derived by
   subtraction (total - left), so each tree level costs one MSM over half
   the terms instead of two. Invariant: [total] = Σ terms of [cands] and
   is not the identity. *)
let rec bisect_failures ?jobs cands total =
  let ncands = Array.length cands in
  if ncands = 1 then [ fst cands.(0) ]
  else begin
    let mid = ncands / 2 in
    let left = Array.sub cands 0 mid and right = Array.sub cands mid (ncands - mid) in
    let left_sum =
      Curve25519.Msm.msm ?jobs (Array.concat (Array.to_list (Array.map snd left)))
    in
    let right_sum = Point.sub total left_sum in
    (if Point.is_identity left_sum then [] else bisect_failures ?jobs left left_sum)
    @ if Point.is_identity right_sum then [] else bisect_failures ?jobs right right_sum
  end

let verify_proofs ?(predicate = Predicate.L2) ?jobs ?(batched = true) t ~round ~proofs =
  if Array.length proofs <> n_of t then invalid_arg "Server.verify_proofs: wrong size";
  Predicate.validate t.setup.Setup.params predicate;
  let ctx = make_predicate_ctx t predicate in
  let shift_pt = shift_point t in
  if not batched then begin
    (* Naive reference path: every equation evaluated directly, per-client
       in parallel. Kept verbatim as the differential-testing baseline.
       Each client gets a DRBG forked from the server key by (round, id)
       alone, so the VerCrt challenge randomness — and with it the
       accept/reject outcome — is identical whatever the job count or
       execution order. Verdicts are collected first and C* is updated
       sequentially afterwards. *)
    let verdicts =
      Parallel.parallel_mapi ?jobs
        (fun idx pr ->
          let i = idx + 1 in
          if t.bad.(idx) || not t.active.(idx) then None
          else
            match pr with
            | None -> Some "no proof"
            | Some (msg : Wire.proof_msg) ->
                if msg.Wire.sender <> i then Some "proof sender mismatch"
                else begin
                  let drbg = Prng.Drbg.fork t.drbg (Printf.sprintf "vercrt/r%d/c%d" round i) in
                  if verify_one t ~round ~ctx ~drbg shift_pt msg then None else Some "proof failed"
                end)
        proofs
    in
    Array.iteri
      (fun idx v -> match v with Some reason -> mark t (idx + 1) reason | None -> ())
      verdicts
  end
  else begin
    (* Batched path: accumulate every client's equations (parallel per
       client — pure scalar work), then decide the whole round with ONE
       MSM over the concatenated terms. On failure, bisect the term
       blocks to attribute blame; the RLC coefficients make each client's
       block nonzero (w.h.p.) exactly when its naive verdict is reject,
       so C* matches the naive path bit for bit. *)
    let checks =
      Parallel.parallel_mapi ?jobs
        (fun idx pr ->
          let i = idx + 1 in
          if t.bad.(idx) || not t.active.(idx) then None
          else
            match pr with
            | None -> Some (Error "no proof")
            | Some (msg : Wire.proof_msg) ->
                if msg.Wire.sender <> i then Some (Error "proof sender mismatch")
                else begin
                  let drbg = Prng.Drbg.fork t.drbg (Printf.sprintf "vercrt/r%d/c%d" round i) in
                  let rlc = Prng.Drbg.fork t.drbg (Printf.sprintf "rlc/r%d/c%d" round i) in
                  match accumulate_one t ~round ~ctx ~drbg ~rlc shift_pt msg with
                  | None -> Some (Error "proof failed")
                  | Some terms -> Some (Ok terms)
                end)
        proofs
    in
    let cands = ref [] in
    Array.iteri
      (fun idx v ->
        match v with
        | None -> ()
        | Some (Error reason) -> mark t (idx + 1) reason
        | Some (Ok terms) -> cands := (idx, terms) :: !cands)
      checks;
    let cands = Array.of_list (List.rev !cands) in
    if Array.length cands > 0 then begin
      let total = Curve25519.Msm.msm ?jobs (Array.concat (Array.to_list (Array.map snd cands))) in
      if not (Point.is_identity total) then
        List.iter (fun idx -> mark t (idx + 1) "proof failed") (bisect_failures ?jobs cands total)
    end
  end

(* --- streaming verification pipeline --- *)

type stream_cfg = { shards : int; batch : int }

let stream_cfg ?(shards = 1) ?(batch = 64) () =
  if shards < 1 then invalid_arg "Server.stream_cfg: shards must be >= 1";
  if batch < 1 then invalid_arg "Server.stream_cfg: batch must be >= 1";
  { shards; batch }

(* One shard: an independent RLC accumulator plus partial aggregate and
   partial combined check over the client subset [(i-1) mod shards]. *)
type stream_shard = {
  sh_acc : Curve25519.Msm.Acc.t;
  mutable sh_batch : (int * Wire.proof_msg) list; (* (sender, msg), newest first *)
  mutable sh_batch_n : int;
  mutable sh_aggy : Point.t array; (* [||] until the first survivor *)
  mutable sh_check : Vsss.check option;
}

type stream = {
  sv : t;
  sround : int;
  sctx : predicate_ctx;
  sshift : Point.t;
  sjobs : int option;
  scfg : stream_cfg;
  sshards : stream_shard array;
  sfed : bool array; (* a frame was accepted for this client (first wins) *)
  sincluded : bool array; (* folded into a shard aggregate *)
  sspill : Bytes.t option array;
  mutable sfolded : int;
  mutable sevicted : int;
  mutable sflushes : int;
  mutable speak : int;
  mutable selapsed : float;
  mutable sfinished : bool;
}

let c_stream_folded = Telemetry.Counter.make "stream.folded"
let c_stream_evicted = Telemetry.Counter.make "stream.evicted"
let c_stream_flushes = Telemetry.Counter.make "stream.flushes"
let g_stream_peak_batch = Telemetry.Gauge.make "stream.peak_batch"
let g_heap_peak = Telemetry.Gauge.make "mem.heap_words.peak"

let stream_begin ?(predicate = Predicate.L2) ?jobs t ~round ~cfg =
  Predicate.validate t.setup.Setup.params predicate;
  let n = n_of t in
  t.stream_agg <- None;
  {
    sv = t;
    sround = round;
    sctx = make_predicate_ctx t predicate;
    sshift = shift_point t;
    sjobs = jobs;
    scfg = cfg;
    sshards =
      Array.init cfg.shards (fun _ ->
          {
            sh_acc =
              Curve25519.Msm.Acc.create ~coalesce:[| t.setup.Setup.g; t.setup.Setup.q |] ();
            sh_batch = [];
            sh_batch_n = 0;
            sh_aggy = [||];
            sh_check = None;
          });
    sfed = Array.make n false;
    sincluded = Array.make n false;
    sspill = Array.make n None;
    sfolded = 0;
    sevicted = 0;
    sflushes = 0;
    speak = 0;
    selapsed = 0.0;
    sfinished = false;
  }

(* compact per-client residual: one 32-byte compressed encoding per
   coordinate, ~10x smaller than the decoded extended-coordinate points it
   replaces; only ever decoded again for a late conviction *)
let spill_encode y =
  let out = Bytes.create (32 * Array.length y) in
  Array.iteri (fun l b -> Bytes.blit b 0 out (32 * l) 32) (Point.compress_batch y);
  out

let spill_decode bytes =
  Array.init
    (Bytes.length bytes / 32)
    (fun l ->
      match Point.decompress_unchecked (Bytes.sub bytes (32 * l) 32) with
      | Some p -> p
      | None -> assert false (* we compressed a valid point ourselves *))

(* Fold one shard's buffered batch: accumulate each client's equations in
   parallel (pure scalar work), run ONE partial-MSM flush over the batch,
   and on a non-identity contribution bisect the batch — while its term
   blocks are still resident — for exact per-client blame. Honest blocks
   sum to the identity individually, so any batch of complete blocks can
   be judged independently of arrival order or batch boundaries; survivors
   then fold their y into the shard's running aggregate and their check
   string into the shard's running combined check, after which their
   decoded material is evicted (y spilled compressed). *)
let flush_shard st sh =
  if sh.sh_batch_n > 0 then begin
    let t = st.sv in
    let batch = Array.of_list (List.rev sh.sh_batch) in
    let bn = sh.sh_batch_n in
    sh.sh_batch <- [];
    sh.sh_batch_n <- 0;
    if bn > st.speak then st.speak <- bn;
    Telemetry.Gauge.observe g_stream_peak_batch bn;
    st.sflushes <- st.sflushes + 1;
    Telemetry.Counter.incr c_stream_flushes;
    (* same per-client forks as the barrier path: (round, id) alone, so
       verdicts cannot depend on arrival order, batching or job count *)
    let checks =
      Parallel.parallel_map ?jobs:st.sjobs
        (fun (sender, (msg : Wire.proof_msg)) ->
          if msg.Wire.sender <> sender then Error "proof sender mismatch"
          else begin
            let drbg = Prng.Drbg.fork t.drbg (Printf.sprintf "vercrt/r%d/c%d" st.sround sender) in
            let rlc = Prng.Drbg.fork t.drbg (Printf.sprintf "rlc/r%d/c%d" st.sround sender) in
            match accumulate_one t ~round:st.sround ~ctx:st.sctx ~drbg ~rlc st.sshift msg with
            | None -> Error "proof failed"
            | Some terms -> Ok terms
          end)
        batch
    in
    let cands = ref [] in
    Array.iteri
      (fun bi r ->
        let sender, _ = batch.(bi) in
        match r with
        | Error reason -> mark t sender reason
        | Ok terms -> cands := (sender - 1, terms) :: !cands)
      checks;
    let cands = Array.of_list (List.rev !cands) in
    st.sfolded <- st.sfolded + Array.length cands;
    Telemetry.Counter.add c_stream_folded (Array.length cands);
    let failed =
      if Array.length cands = 0 then []
      else begin
        Array.iter
          (fun (_, terms) ->
            Array.iter (fun (s, p) -> Curve25519.Msm.Acc.push sh.sh_acc s p) terms)
          cands;
        let before = Curve25519.Msm.Acc.carry sh.sh_acc in
        let after = Curve25519.Msm.Acc.flush ?jobs:st.sjobs sh.sh_acc in
        let contribution = Point.sub after before in
        if Point.is_identity contribution then []
        else bisect_failures ?jobs:st.sjobs cands contribution
      end
    in
    List.iter (fun idx -> mark t (idx + 1) "proof failed") failed;
    (* cancel convicted blocks out of the running carry by pushing their
       negation: the next flush (or the final merged eval) restores the
       invariant that the accumulator holds exactly the surviving —
       individually identity — blocks *)
    Array.iter
      (fun (idx, terms) ->
        if List.mem idx failed then
          Array.iter (fun (s, p) -> Curve25519.Msm.Acc.push sh.sh_acc (Scalar.neg s) p) terms)
      cands;
    (* survivors: fold aggregate contribution, then evict *)
    Array.iter
      (fun (idx, _) ->
        if not t.bad.(idx) then begin
          match t.commits.(idx) with
          | Some c when Array.length c.Wire.y > 0 ->
              if Array.length sh.sh_aggy = 0 then sh.sh_aggy <- Array.copy c.Wire.y
              else
                Array.iteri (fun l y -> sh.sh_aggy.(l) <- Point.add sh.sh_aggy.(l) y) c.Wire.y;
              sh.sh_check <-
                (match sh.sh_check with
                | None -> Some c.Wire.check
                | Some a -> Some (Vsss.add_checks a c.Wire.check));
              st.sincluded.(idx) <- true;
              st.sspill.(idx) <- Some (spill_encode c.Wire.y)
          | _ -> ()
        end)
      cands;
    (* evict every batch member's decoded bulk: survivors are summarized
       above (y retrievable from the spill), convicted clients are out of
       every later computation *)
    Array.iter
      (fun (sender, _) ->
        match t.commits.(sender - 1) with
        | Some c when Array.length c.Wire.y > 0 || Array.length c.Wire.enc_shares > 0 ->
            t.commits.(sender - 1) <- Some { c with Wire.y = [||]; enc_shares = [||] };
            st.sevicted <- st.sevicted + 1;
            Telemetry.Counter.incr c_stream_evicted
        | _ -> ())
      batch;
    Telemetry.Gauge.observe g_heap_peak (Telemetry.heap_words ())
  end

let stream_feed st ~sender msg =
  if st.sfinished then invalid_arg "Server.stream_feed: stream already finished";
  let t = st.sv in
  if sender >= 1 && sender <= n_of t && not st.sfed.(sender - 1) then begin
    st.sfed.(sender - 1) <- true;
    if (not t.bad.(sender - 1)) && t.active.(sender - 1) then begin
      let sh = st.sshards.((sender - 1) mod st.scfg.shards) in
      sh.sh_batch <- (sender, msg) :: sh.sh_batch;
      sh.sh_batch_n <- sh.sh_batch_n + 1;
      if sh.sh_batch_n >= st.scfg.batch then begin
        let (), dt = Telemetry.Clock.time (fun () -> flush_shard st sh) in
        st.selapsed <- st.selapsed +. dt
      end
    end
  end

let stream_finish st =
  if not st.sfinished then begin
    st.sfinished <- true;
    let t = st.sv in
    let (), dt =
      Telemetry.Clock.time (fun () ->
          (* drain the partial batches, in shard order *)
          Array.iter (fun sh -> flush_shard st sh) st.sshards;
          (* clients that never produced an accepted frame *)
          Array.iteri
            (fun idx fed ->
              if (not fed) && (not t.bad.(idx)) && t.active.(idx) then
                mark t (idx + 1) "no proof")
            st.sfed;
          (* deterministic shard merge (ascending shard index), then the
             final small eval: every surviving block was checked identity
             at its flush, so the merged accumulator must evaluate to the
             identity — this is an internal soundness invariant, not a
             per-client check *)
          let merged =
            Curve25519.Msm.Acc.create ~coalesce:[| t.setup.Setup.g; t.setup.Setup.q |] ()
          in
          Array.iter (fun sh -> Curve25519.Msm.Acc.merge merged sh.sh_acc) st.sshards;
          if not (Curve25519.Msm.Acc.is_identity ?jobs:st.sjobs merged) then
            failwith "Server.stream_finish: merged accumulator is not the identity";
          let aggy = ref [||] and check = ref None in
          Array.iter
            (fun sh ->
              if Array.length sh.sh_aggy > 0 then
                if Array.length !aggy = 0 then aggy := sh.sh_aggy
                else Array.iteri (fun l y -> !aggy.(l) <- Point.add !aggy.(l) y) sh.sh_aggy;
              match sh.sh_check with
              | None -> ()
              | Some c ->
                  check := Some (match !check with None -> c | Some a -> Vsss.add_checks a c))
            st.sshards;
          t.stream_agg <-
            Some
              {
                sa_round = st.sround;
                sa_aggy = !aggy;
                sa_check = !check;
                sa_included = st.sincluded;
                sa_spill = st.sspill;
              };
          t.stream_last <-
            Some
              {
                folded = st.sfolded;
                evicted = st.sevicted;
                flushes = st.sflushes;
                peak_batch = st.speak;
              })
    in
    st.selapsed <- st.selapsed +. dt
  end

let stream_elapsed_s st = st.selapsed
let stream_stats t = t.stream_last

(* --- crash-recovery snapshots --- *)

let snapshot t =
  {
    Wire.snap_round = t.round;
    snap_drawn = t.drawn;
    snap_bad = Array.copy t.bad;
    snap_banned = Array.copy t.banned;
    snap_commits = Array.copy t.commits;
    snap_s = Bytes.copy t.s_value;
  }

let restore t (s : Wire.server_snapshot) =
  if Array.length s.Wire.snap_bad <> n_of t || Array.length s.Wire.snap_commits <> n_of t then
    invalid_arg "Server.restore: snapshot for a different parameter set";
  if t.drawn > s.Wire.snap_drawn then
    invalid_arg "Server.restore: DRBG already past the snapshot position";
  (* fast-forward the root stream: the discarded bytes are exactly the
     check strings the crashed server drew before the snapshot, so after
     this every future draw is bit-identical to the uncrashed run *)
  if s.Wire.snap_drawn > t.drawn then ignore (draw t (s.Wire.snap_drawn - t.drawn));
  t.round <- s.Wire.snap_round;
  t.bad <- Array.copy s.Wire.snap_bad;
  t.banned <- Array.copy s.Wire.snap_banned;
  t.commits <- Array.copy s.Wire.snap_commits;
  t.s_value <- Bytes.copy s.Wire.snap_s;
  if Bytes.length t.s_value > 0 then begin
    (* re-derive the sampling matrix and check bases from the snapshotted
       s (they are a pure function of s and the directory) *)
    let p = t.setup.Setup.params in
    let seed = Sampling.seed ~s:t.s_value ~pks:(active_pks t) in
    let matrix =
      Sampling.sample_matrix ~seed ~d:p.Params.d ~k:p.Params.k ~m_factor:p.Params.m_factor
    in
    t.matrix <- Some matrix;
    t.hs <- Sampling.compute_h t.setup matrix
  end
  else begin
    t.matrix <- None;
    t.hs <- [||]
  end

type agg_error =
  | Insufficient_quorum of { valid : int; needed : int }
  | No_check_string
  | Coordinate_out_of_range of int
  | Aggregate_mismatch

let agg_error_to_string = function
  | Insufficient_quorum { valid; needed } ->
      Printf.sprintf "insufficient quorum: %d valid aggregated shares (< t = %d)" valid needed
  | No_check_string -> "no combined check string (no honest commit survived)"
  | Coordinate_out_of_range l -> Printf.sprintf "coordinate %d out of BSGS decoding range" l
  | Aggregate_mismatch -> "recovered blind fails the combined commitment check (g^R <> prod z_i)"

let pp_agg_error fmt e = Format.pp_print_string fmt (agg_error_to_string e)

(* take exactly [n] elements for interpolation *)
let rec take n = function [] -> [] | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl

(* Shared decode tail: peel the recovered blind r from the per-coordinate
   products [prod l] = Π_{i∈H} y_il and BSGS-decode every coordinate. *)
let decode_with_r t ~prod ~r =
  let p = t.setup.Setup.params in
  let neg_r = Scalar.neg r in
  let solver = Lazy.force t.dlog in
  (* O(d · (n + log ℓ)) point work: the per-coordinate products and blind
     peeling parallelize over coordinate chunks *)
  let targets =
    Parallel.parallel_init p.Params.d (fun l ->
        Point.add (prod l) (Point.mul neg_r t.setup.Setup.w.(l)))
  in
  let solved = Curve25519.Dlog.solve_many solver targets in
  let bad_coord = ref None in
  Array.iteri (fun l v -> if v = None && !bad_coord = None then bad_coord := Some l) solved;
  match !bad_coord with
  | Some l -> Error (Coordinate_out_of_range l)
  | None -> Ok (Array.map (function Some v -> v | None -> assert false) solved)

(* Shared aggregation tail of the all-to-all path: verify each aggregated
   share against [combined_check], recover the blind r, then decode. *)
let finish_aggregate t ~combined_check ~prod ~agg_msgs =
  let threshold = Params.shamir_t t.setup.Setup.params in
  (* collect valid aggregated shares; each VSSS check is an independent
     MSM against the combined check string, so fan them out *)
  let checked =
    Parallel.parallel_mapi
      (fun idx msg ->
        let i = idx + 1 in
        if t.bad.(idx) || not t.active.(idx) then None
        else
          match msg with
          | None -> None
          | Some (am : Wire.agg_msg) ->
              let share = { Vsss.idx = i; value = am.Wire.r_sum } in
              if Vsss.verify ~g:t.setup.Setup.g ~check:combined_check share then Some share
              else None)
      agg_msgs
  in
  let valid_shares = ref [] in
  Array.iter (function Some s -> valid_shares := s :: !valid_shares | None -> ()) checked;
  let shares = !valid_shares in
  if List.length shares < threshold then
    Error (Insufficient_quorum { valid = List.length shares; needed = threshold })
  else
    let r = Vsss.recover (take threshold shares) in
    decode_with_r t ~prod ~r

let sub_check a b = Array.mapi (fun i ai -> Point.sub ai b.(i)) a

(* Streaming aggregation: the running sums already cover every included
   client; the honest set at this point is exactly included minus the
   late convictions (a client folded during the stream is convicted
   afterwards only by an agg-stage decode failure), so subtracting each
   late client's spilled y and check yields the same group elements the
   barrier path folds over [honest t] directly. *)
let aggregate_streamed t sa ~agg_msgs =
  let threshold = Params.shamir_t t.setup.Setup.params in
  if honest t = [] then Error (Insufficient_quorum { valid = 0; needed = threshold })
  else begin
    let late = ref [] in
    Array.iteri (fun idx inc -> if inc && t.bad.(idx) then late := idx :: !late) sa.sa_included;
    let late = List.rev !late in
    let combined_check =
      List.fold_left
        (fun acc idx ->
          match (acc, t.commits.(idx)) with
          | Some a, Some c -> Some (sub_check a c.Wire.check)
          | _ -> acc)
        sa.sa_check late
    in
    match combined_check with
    | None -> Error No_check_string
    | Some combined_check ->
        let late_y = List.filter_map (fun idx -> Option.map spill_decode sa.sa_spill.(idx)) late in
        let prod l =
          List.fold_left (fun acc y -> Point.sub acc y.(l)) sa.sa_aggy.(l) late_y
        in
        finish_aggregate t ~combined_check ~prod ~agg_msgs
  end

let aggregate t ~agg_msgs =
  match t.stream_agg with
  | Some sa when sa.sa_round = t.round -> aggregate_streamed t sa ~agg_msgs
  | _ ->
      let threshold = Params.shamir_t t.setup.Setup.params in
      let hs = honest t in
      if hs = [] then Error (Insufficient_quorum { valid = 0; needed = threshold })
      else begin
        (* combined check string over the honest dealers *)
        let combined_check =
          List.fold_left
            (fun acc i ->
              match t.commits.(i - 1) with
              | None -> acc
              | Some c -> (
                  match acc with
                  | None -> Some c.Wire.check
                  | Some a -> Some (Vsss.add_checks a c.Wire.check)))
            None hs
        in
        match combined_check with
        | None -> Error No_check_string
        | Some combined_check ->
            let prod l =
              List.fold_left
                (fun acc i ->
                  match t.commits.(i - 1) with
                  | None -> acc
                  | Some c -> Point.add acc c.Wire.y.(l))
                Point.identity hs
            in
            finish_aggregate t ~combined_check ~prod ~agg_msgs
      end

(* --- k-regular aggregation ------------------------------------------ *)

let c_topo_recovered = Telemetry.Counter.make "topo.recovered"
let c_topo_excluded = Telemetry.Counter.make "topo.excluded"

(* The k-regular round replaces n VSSS share-sums with one masked scalar
   per client: m_i = r_i + Σ_{j∈N(i)∩H, j≠i} ε_ij·mask_ij. Summed over
   the alive clients the masks cancel; each dropout d leaves (a) its own
   r_d missing and (b) one dangling ε_id·mask_id inside every alive
   neighbor's m_i. [recover ~dropout ~responders] runs the neighborhood
   sub-exchange and returns, per responder, d's VSSS share (if that
   responder holds a verified one) and the pairwise mask. Masks are
   {e always} unwound; r_d is interpolated back when ≥ threshold shares
   verify against d's retained check string, otherwise d's update is
   excluded from the aggregate (removed from the product and the
   combined check — excluded, not convicted: an honest dropout is not
   malicious). A client convicted {e during} the agg exchange (e.g. an
   undecodable frame) is excluded the same way but never recovered.
   Finally g^R is checked against Π z_i over the survivors — any
   tampered masked sum surfaces here as [Aggregate_mismatch] (individual
   masked sums are not per-client attributable, unlike share sums). *)
let aggregate_kregular t ~topo ~honest ~recover ~agg_msgs =
  let module T = Risefl_topology.Topology in
  let tk = T.threshold topo in
  if Array.length agg_msgs <> n_of t then invalid_arg "Server.aggregate_kregular: wrong size";
  let alive_set = Array.make (n_of t) false in
  List.iter
    (fun i -> if (not t.bad.(i - 1)) && agg_msgs.(i - 1) <> None then alive_set.(i - 1) <- true)
    honest;
  let alive = List.filter (fun i -> alive_set.(i - 1)) honest in
  if alive = [] then Error (Insufficient_quorum { valid = 0; needed = tk })
  else begin
    let msum = ref Scalar.zero in
    List.iter
      (fun i ->
        match agg_msgs.(i - 1) with
        | Some (am : Wire.agg_msg) -> msum := Scalar.add !msum am.Wire.r_sum
        | None -> ())
      alive;
    let excluded = ref [] in
    List.iter
      (fun d ->
        if not alive_set.(d - 1) then begin
          let responders =
            Array.to_list (T.neighbors topo d) |> List.filter (fun i -> alive_set.(i - 1))
          in
          let resp = recover ~dropout:d ~responders in
          (* unwind every responder's dangling mask toward d, recovered
             or not — the masks are in the alive sums either way *)
          List.iter
            (fun (i, ((_ : Scalar.t option), mask)) ->
              msum := (if i < d then Scalar.sub !msum mask else Scalar.add !msum mask))
            resp;
          let valid =
            match t.commits.(d - 1) with
            | None -> []
            | Some c ->
                List.filter_map
                  (fun (i, (share, _)) ->
                    match share with
                    | Some value
                      when Vsss.verify ~g:t.setup.Setup.g ~check:c.Wire.check
                             { Vsss.idx = i; value } ->
                        Some { Vsss.idx = i; value }
                    | _ -> None)
                  resp
          in
          if (not t.bad.(d - 1)) && List.length valid >= tk then begin
            let r_d = Vsss.recover (take tk valid) in
            msum := Scalar.add !msum r_d;
            Telemetry.Counter.incr c_topo_recovered
          end
          else begin
            excluded := d :: !excluded;
            Telemetry.Counter.incr c_topo_excluded
          end
        end)
      honest;
    let excluded = List.rev !excluded in
    let is_excluded i = List.mem i excluded in
    let combined_check, prod =
      match t.stream_agg with
      | Some sa when sa.sa_round = t.round ->
          (* streamed round: subtract late convictions and excluded
             dropouts from the running sums; eviction kept each included
             client's check string (in commits) and compressed y (in the
             spill), so both removals are exact *)
          let late = ref [] in
          Array.iteri
            (fun idx inc ->
              if inc && (t.bad.(idx) || is_excluded (idx + 1)) then late := idx :: !late)
            sa.sa_included;
          let late = List.rev !late in
          let cc =
            List.fold_left
              (fun acc idx ->
                match (acc, t.commits.(idx)) with
                | Some a, Some c -> Some (sub_check a c.Wire.check)
                | _ -> acc)
              sa.sa_check late
          in
          let late_y =
            List.filter_map (fun idx -> Option.map spill_decode sa.sa_spill.(idx)) late
          in
          (cc, fun l -> List.fold_left (fun acc y -> Point.sub acc y.(l)) sa.sa_aggy.(l) late_y)
      | _ ->
          let hs' = List.filter (fun i -> (not t.bad.(i - 1)) && not (is_excluded i)) honest in
          let cc =
            List.fold_left
              (fun acc i ->
                match t.commits.(i - 1) with
                | None -> acc
                | Some c -> (
                    match acc with
                    | None -> Some c.Wire.check
                    | Some a -> Some (Vsss.add_checks a c.Wire.check)))
              None hs'
          in
          ( cc,
            fun l ->
              List.fold_left
                (fun acc i ->
                  match t.commits.(i - 1) with
                  | None -> acc
                  | Some c -> Point.add acc c.Wire.y.(l))
                Point.identity hs' )
    in
    match combined_check with
    | None -> Error No_check_string
    | Some combined_check ->
        let r = !msum in
        if
          not
            (Point.equal
               (Point.Table.mul t.setup.Setup.g_table r)
               (Vsss.commitment_of_check combined_check))
        then Error Aggregate_mismatch
        else decode_with_r t ~prod ~r
  end
