module Point = Curve25519.Point
module Scalar = Curve25519.Scalar

type stage_check = {
  stage : string;
  measured : float;
  predicted : float;
  ratio : float;
  lo : float;
  hi : float;
  gated : bool;
  ok : bool;
}

type report = {
  cfg : Cost_model.config;
  ops_per_ge : float;
  stages : stage_check list;
  all_ok : bool;
}

(* point.add + point.double deltas are the measurement primitive; Counter.make
   is idempotent, so these are the same cells Point increments *)
let c_add = Telemetry.Counter.make "point.add"
let c_double = Telemetry.Counter.make "point.double"

let point_ops () = Telemetry.Counter.value c_add + Telemetry.Counter.value c_double

let delta_ops f =
  let before = point_ops () in
  let r = f () in
  (r, point_ops () - before)

(* Tolerance bands on measured/predicted, calibrated at the default
   configuration (n=3, d=256, k=4; see EXPERIMENTS.md for the measured
   ratios they bracket).  Lower bounds catch a model gone stale (the
   prediction inflating relative to the implementation); upper bounds
   catch implementation regressions. *)
let bands =
  [
    (* re-measured after the group-layer fast paths (wNAF mul, Niels
       madd buckets): a calibration group-exp now costs ~299 point ops
       instead of ~331, which inflates every ratio by ~10%; the bands
       bracket the new measured points (1.0, 48, 1.9, 15, 4.2, 1.4) with
       margin only for the wNAF digit-count jitter of the random
       calibration scalars *)
    ("client-commit", (0.7, 1.6));
    (* absolute proof-gen cost at CI scale is dominated by the range
       proofs' O(k*b_ip + b_max) committed bits (~5 ge per bit), which the
       asymptotic d/log d row drops; the marginal stage below carries the
       tight check of the d-scaling claim *)
    ("client-proofgen", (25.0, 90.0));
    ("proofgen-marginal", (0.8, 3.5));
    ("server-prep", (8.0, 25.0));
    ("server-verify", (2.0, 7.0));
    ("comm", (1.0, 2.2));
  ]

let mk_stage ?(gated = true) stage measured predicted =
  let ratio = if predicted > 0.0 then measured /. predicted else 0.0 in
  let lo, hi = try List.assoc stage bands with Not_found -> (0.0, infinity) in
  let ok = (not gated) || (ratio >= lo && ratio <= hi) in
  { stage; measured; predicted; ratio; lo; hi; gated; ok }

(* Proof generation for client 1 of a fresh session: commit everyone,
   prepare the check, measure one proof_round.  Used twice (at d and 2d)
   to isolate the d-dependent part of proof generation from the
   d-independent range-proof floor. *)
let measure_proofgen ~n ~m ~d ~k ~seed =
  let udrbg = Prng.Drbg.create_string (seed ^ "/updates") in
  let updates =
    Array.init n (fun _ -> Array.init d (fun _ -> Prng.Drbg.uniform_int udrbg 80 - 40))
  in
  let bound =
    1.25
    *. Array.fold_left
         (fun acc u -> Float.max acc (Encoding.Fixed_point.l2_norm_encoded u))
         0.0 updates
  in
  let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:1024.0 ~bound_b:bound () in
  let setup = Setup.create ~label:(Printf.sprintf "table1-check/marginal/%d/%d" d k) params in
  let root = Prng.Drbg.create_string seed in
  let clients =
    Array.init n (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (string_of_int i)))
  in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  let commits =
    Array.map Option.some
      (Array.mapi (fun i c -> Client.commit_round c ~round:1 ~update:updates.(i)) clients)
  in
  Server.begin_round server ~round:1 ~commits;
  let s, hs = Server.prepare_check server in
  let hs_tables = Parallel.parallel_map Point.Table.make hs in
  let _, ops = delta_ops (fun () -> Client.proof_round ~hs_tables clients.(0) ~round:1 ~s ~hs) in
  ops

let run ?(n = 3) ?(m = 1) ?(d = 256) ?(k = 4) ?(seed = "table1-check") () =
  let was_enabled = Telemetry.enabled () in
  Telemetry.enable ();
  Fun.protect ~finally:(fun () -> if not was_enabled then Telemetry.disable ())
  @@ fun () ->
  (* synthetic honest workload, same shape as the bench harness *)
  let udrbg = Prng.Drbg.create_string (seed ^ "/updates") in
  let updates =
    Array.init n (fun _ -> Array.init d (fun _ -> Prng.Drbg.uniform_int udrbg 80 - 40))
  in
  let bound =
    1.25
    *. Array.fold_left
         (fun acc u -> Float.max acc (Encoding.Fixed_point.l2_norm_encoded u))
         0.0 updates
  in
  let params = Params.make ~n_clients:n ~max_malicious:m ~d ~k ~m_factor:1024.0 ~bound_b:bound () in
  let setup = Setup.create ~label:(Printf.sprintf "table1-check/%d/%d" d k) params in
  let root = Prng.Drbg.create_string seed in
  let clients =
    Array.init n (fun i -> Client.create setup ~id:(i + 1) (Prng.Drbg.fork root (string_of_int i)))
  in
  let server = Server.create setup (Prng.Drbg.fork root "server") in
  let pks = Array.map Client.public_key clients in
  Array.iter (fun c -> Client.install_directory c pks) clients;
  Server.install_directory server pks;
  (* calibrate ops-per-group-exponentiation with full-width variable-base
     multiplications — the unit Table 1 counts in *)
  let cal = Prng.Drbg.fork root "calibrate" in
  let cal_point = Point.mul_base (Scalar.random cal) in
  let reps = 8 in
  let (), cal_ops =
    delta_ops (fun () ->
        for _ = 1 to reps do
          ignore (Point.mul (Scalar.random cal) cal_point)
        done)
  in
  let ops_per_ge = float_of_int cal_ops /. float_of_int reps in
  let ge ops = float_of_int ops /. ops_per_ge in
  (* --- commit (client 1 measured; the rest uncounted for the table) --- *)
  let c0, commit_ops =
    delta_ops (fun () -> Client.commit_round clients.(0) ~round:1 ~update:updates.(0))
  in
  let rest =
    Array.init (n - 1) (fun i -> Client.commit_round clients.(i + 1) ~round:1 ~update:updates.(i + 1))
  in
  let commits = Array.map Option.some (Array.append [| c0 |] rest) in
  Server.begin_round server ~round:1 ~commits;
  let msgs = Array.map Option.get commits in
  let f0 = Client.receive_shares clients.(0) ~round:1 ~msgs in
  for i = 1 to n - 1 do
    ignore (Client.receive_shares clients.(i) ~round:1 ~msgs)
  done;
  (* --- server prep: sample A, compute h --- *)
  let (s, hs), prep_ops = delta_ops (fun () -> Server.prepare_check server) in
  (* the h_t fixed-base tables are shared per-round precompute, amortized
     over all n clients; kept out of the per-stage attribution *)
  let hs_tables = Parallel.parallel_map Point.Table.make hs in
  (* --- proof generation (client 1 measured) --- *)
  let p0, gen_ops =
    delta_ops (fun () -> Client.proof_round ~hs_tables clients.(0) ~round:1 ~s ~hs)
  in
  let prest =
    Array.init (n - 1) (fun i -> Client.proof_round ~hs_tables clients.(i + 1) ~round:1 ~s ~hs)
  in
  let proofs = Array.map Option.some (Array.append [| p0 |] prest) in
  (* --- server verification, all n clients, batched --- *)
  let (), ver_ops = delta_ops (fun () -> Server.verify_proofs server ~round:1 ~proofs) in
  if Server.malicious server <> [] then failwith "table1_check: honest round was rejected";
  (* --- aggregation --- *)
  let honest = Server.honest server in
  let agg_msgs = Array.map (fun c -> Some (Client.agg_round c ~honest)) clients in
  let agg_result, agg_ops = delta_ops (fun () -> Server.aggregate server ~agg_msgs) in
  (match agg_result with
  | Ok _ -> ()
  | Error e -> failwith ("table1_check: aggregation failed: " ^ Server.agg_error_to_string e));
  (* --- per-client upload in group-element equivalents --- *)
  let upload =
    Wire.commit_msg_size c0 + Wire.flag_msg_size f0 + Wire.proof_msg_size p0
    + match agg_msgs.(0) with Some a -> Wire.agg_msg_size a | None -> 0
  in
  let comm_elements = float_of_int upload /. float_of_int Wire.point_size in
  let cfg =
    {
      Cost_model.n;
      m;
      d;
      k;
      b = 16;
      log_m_factor = 10 (* m_factor = 1024 *);
      log_p = 253;
    }
  in
  let pred = Cost_model.risefl cfg in
  (* marginal d-scaling of proof generation: measured and predicted
     deltas between d and 2d, cancelling the d-independent range-proof
     term that dominates the absolute count at CI scale *)
  let gen2_ops = measure_proofgen ~n ~m ~d:(2 * d) ~k ~seed:(seed ^ "/marginal") in
  let pred2 = Cost_model.risefl { cfg with Cost_model.d = 2 * d } in
  let marginal_measured = ge gen2_ops -. ge gen_ops in
  let marginal_predicted =
    pred2.Cost_model.client_proof_gen_ge -. pred.Cost_model.client_proof_gen_ge
  in
  let stages =
    [
      mk_stage "client-commit" (ge commit_ops) pred.Cost_model.client_commit_ge;
      mk_stage "client-proofgen" (ge gen_ops) pred.Cost_model.client_proof_gen_ge;
      mk_stage "proofgen-marginal" marginal_measured marginal_predicted;
      mk_stage "server-prep" (ge prep_ops) pred.Cost_model.server_prep_ge;
      mk_stage "server-verify" (ge ver_ops) pred.Cost_model.server_proof_ver_ge;
      (* Table 1 counts aggregation in amortized-decode units (n·d/log p);
         the implementation pays d blind-peel exponentiations plus BSGS
         steps, so the ratio is structurally large — reported, not gated *)
      mk_stage ~gated:false "server-agg" (ge agg_ops) pred.Cost_model.server_agg_ge;
      mk_stage "comm" comm_elements pred.Cost_model.comm_elements_per_client;
    ]
  in
  { cfg; ops_per_ge; stages; all_ok = List.for_all (fun st -> st.ok) stages }

let to_table r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "measured vs Table 1 (RiseFL row): n=%d m=%d d=%d k=%d, ops/ge=%.0f\n%-18s %12s %12s %8s %14s  %s\n"
       r.cfg.Cost_model.n r.cfg.Cost_model.m r.cfg.Cost_model.d r.cfg.Cost_model.k r.ops_per_ge
       "stage" "measured" "predicted" "ratio" "band" "verdict");
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %12.1f %12.1f %8.2f %14s  %s\n" st.stage st.measured st.predicted
           st.ratio
           (if st.gated then Printf.sprintf "[%.2g, %.2g]" st.lo st.hi else "-")
           (if not st.gated then "info" else if st.ok then "ok" else "FAIL")))
    r.stages;
  Buffer.contents buf
