let sphere_shift ~center u =
  if Array.length center <> Array.length u then invalid_arg "Extensions.sphere_shift: dimensions";
  Array.map2 (fun ul vl -> ul - vl) u center

let sphere_unshift ~center ~n_honest agg =
  if Array.length center <> Array.length agg then invalid_arg "Extensions.sphere_unshift: dimensions";
  Array.map2 (fun al vl -> al + (n_honest * vl)) agg center

let zeno_center_radius ~v ~gamma ~rho ~eps =
  let center = Array.map (fun x -> gamma /. (2.0 *. rho) *. x) v in
  let norm2 = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v in
  let rad2 = (gamma *. gamma /. (4.0 *. rho *. rho) *. norm2) -. (gamma *. eps /. rho) in
  (center, if rad2 <= 0.0 then 0.0 else sqrt rad2)
