module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm
module Gens = Curve25519.Gens

type gens = { gv : Point.t array; hv : Point.t array; u : Point.t }

let make_gens ~label n =
  {
    gv = Gens.derive_many (label ^ "/bp-g") n;
    hv = Gens.derive_many (label ^ "/bp-h") n;
    u = Gens.derive (label ^ "/bp-u");
  }

type proof = {
  a : Point.t;
  s : Point.t;
  t1 : Point.t;
  t2 : Point.t;
  t_hat : Scalar.t;
  tau_x : Scalar.t;
  mu : Scalar.t;
  ipa : Ipa.proof;
}

let tmul tbl s p = match tbl with Some t -> Point.Table.mul t s | None -> Point.mul s p

let tdouble_mul t1 s1 p1 t2 s2 p2 =
  match (t1, t2) with
  | None, None -> Point.double_mul s1 p1 s2 p2
  | _ -> Point.add (tmul t1 s1 p1) (tmul t2 s2 p2)

let is_pow2 n = n > 0 && n land (n - 1) = 0
let next_pow2 n = if is_pow2 n then n else 1 lsl (let rec f a v = if v = 0 then a else f (a+1) (v lsr 1) in f 0 n)

let check_bits bits =
  if not (is_pow2 bits) || bits < 2 || bits > 128 then
    invalid_arg "Range_proof: bits must be a power of two in [2, 128]"

(* powers [x^0; x^1; ...; x^{n-1}] *)
let powers x n =
  let a = Array.make n Scalar.one in
  for i = 1 to n - 1 do
    a.(i) <- Scalar.mul a.(i - 1) x
  done;
  a

let dot a b =
  let acc = ref Scalar.zero in
  Array.iteri (fun i ai -> acc := Scalar.add !acc (Scalar.mul ai b.(i))) a;
  !acc

let two_n_minus_1 bits = Bigint.sub (Bigint.shift_left Bigint.one bits) Bigint.one

(* z_vec_i = z^{2+j} * 2^{i mod n} for i in block j *)
let z_vec ~z ~bits ~m =
  let n_total = bits * m in
  let out = Array.make n_total Scalar.zero in
  let zj = ref (Scalar.square z) in
  for j = 0 to m - 1 do
    let pow2 = ref Scalar.one in
    let two = Scalar.of_int 2 in
    for b = 0 to bits - 1 do
      out.((j * bits) + b) <- Scalar.mul !zj !pow2;
      pow2 := Scalar.mul !pow2 two
    done;
    zj := Scalar.mul !zj z
  done;
  out

let absorb_statement tr ~g ~h ~bits ~commitments =
  Transcript.append_int tr ~label:"rp/bits" bits;
  Transcript.append_point tr ~label:"rp/g" g;
  Transcript.append_point tr ~label:"rp/h" h;
  Transcript.append_points tr ~label:"rp/V" commitments

let prove ?g_table ?h_table drbg tr ~gens ~g ~h ~bits ~values ~blinds =
  check_bits bits;
  let m_orig = Array.length values in
  if m_orig = 0 || Array.length blinds <> m_orig then invalid_arg "Range_proof.prove: shapes";
  Array.iter
    (fun v ->
      if Bigint.sign v < 0 || Bigint.bit_length v > bits then
        invalid_arg "Range_proof.prove: value out of range")
    values;
  (* pad the value count to a power of two with (0, 0) openings *)
  let m = next_pow2 m_orig in
  let values = Array.append values (Array.make (m - m_orig) Bigint.zero) in
  let blinds = Array.append blinds (Array.make (m - m_orig) Scalar.zero) in
  let nt = bits * m in
  if Array.length gens.gv < nt || Array.length gens.hv < nt then
    invalid_arg "Range_proof.prove: generator set too small";
  let gv = Array.sub gens.gv 0 nt and hv = Array.sub gens.hv 0 nt in
  let commitments =
    Array.init m_orig (fun j -> tdouble_mul g_table (Scalar.of_bigint values.(j)) g h_table blinds.(j) h)
  in
  absorb_statement tr ~g ~h ~bits ~commitments;
  (* bit decomposition: a_L, a_R = a_L - 1 *)
  let al =
    Array.init nt (fun i -> if Bigint.testbit values.(i / bits) (i mod bits) then Scalar.one else Scalar.zero)
  in
  let ar = Array.map (fun b -> Scalar.sub b Scalar.one) al in
  let alpha = Scalar.random drbg in
  let a_pt =
    Msm.msm
      (Array.append
         [| (alpha, h) |]
         (Array.append (Array.mapi (fun i b -> (b, gv.(i))) al) (Array.mapi (fun i b -> (b, hv.(i))) ar)))
  in
  let sl = Array.init nt (fun _ -> Scalar.random drbg) in
  let sr = Array.init nt (fun _ -> Scalar.random drbg) in
  let rho = Scalar.random drbg in
  let s_pt =
    Msm.msm
      (Array.append
         [| (rho, h) |]
         (Array.append (Array.mapi (fun i b -> (b, gv.(i))) sl) (Array.mapi (fun i b -> (b, hv.(i))) sr)))
  in
  Transcript.append_point tr ~label:"rp/A" a_pt;
  Transcript.append_point tr ~label:"rp/S" s_pt;
  let y = Transcript.challenge_nonzero tr ~label:"rp/y" in
  let z = Transcript.challenge_nonzero tr ~label:"rp/z" in
  let ys = powers y nt in
  let zv = z_vec ~z ~bits ~m in
  (* l(X) = (aL - z 1) + sL X ; r(X) = ys o (aR + z 1 + sR X) + zv *)
  let l0 = Array.map (fun b -> Scalar.sub b z) al in
  let l1 = sl in
  let r0 = Array.mapi (fun i b -> Scalar.add (Scalar.mul ys.(i) (Scalar.add b z)) zv.(i)) ar in
  let r1 = Array.mapi (fun i sri -> Scalar.mul ys.(i) sri) sr in
  let t0 = dot l0 r0 in
  let t2 = dot l1 r1 in
  let t1 = Scalar.sub (Scalar.sub (dot (Array.map2 Scalar.add l0 l1) (Array.map2 Scalar.add r0 r1)) t0) t2 in
  let tau1 = Scalar.random drbg and tau2 = Scalar.random drbg in
  let t1_pt = tdouble_mul g_table t1 g h_table tau1 h in
  let t2_pt = tdouble_mul g_table t2 g h_table tau2 h in
  Transcript.append_point tr ~label:"rp/T1" t1_pt;
  Transcript.append_point tr ~label:"rp/T2" t2_pt;
  let x = Transcript.challenge_nonzero tr ~label:"rp/x" in
  let l = Array.init nt (fun i -> Scalar.add l0.(i) (Scalar.mul l1.(i) x)) in
  let r = Array.init nt (fun i -> Scalar.add r0.(i) (Scalar.mul r1.(i) x)) in
  let t_hat = dot l r in
  let x2 = Scalar.square x in
  let tau_x =
    let zjs = powers z (m + 2) in
    let blind_term = ref Scalar.zero in
    Array.iteri (fun j gamma -> blind_term := Scalar.add !blind_term (Scalar.mul zjs.(j + 2) gamma)) blinds;
    Scalar.add (Scalar.add (Scalar.mul tau1 x) (Scalar.mul tau2 x2)) !blind_term
  in
  let mu = Scalar.add alpha (Scalar.mul rho x) in
  Transcript.append_scalar tr ~label:"rp/t_hat" t_hat;
  Transcript.append_scalar tr ~label:"rp/tau_x" tau_x;
  Transcript.append_scalar tr ~label:"rp/mu" mu;
  let w = Transcript.challenge_nonzero tr ~label:"rp/w" in
  let u_x = Point.mul w gens.u in
  (* h'_i = h_i^{y^-i}; the IPA runs over (gv, h') *)
  let yinv = Scalar.inv y in
  let yinv_pows = powers yinv nt in
  let hv' = Array.init nt (fun i -> Point.mul yinv_pows.(i) hv.(i)) in
  let ipa = Ipa.prove tr ~g:gv ~h:hv' ~u:u_x ~a:l ~b:r in
  { a = a_pt; s = s_pt; t1 = t1_pt; t2 = t2_pt; t_hat; tau_x; mu; ipa }

let verify tr ~gens ~g ~h ~bits ~commitments proof =
  check_bits bits;
  let m_orig = Array.length commitments in
  if m_orig = 0 then false
  else begin
    let m = next_pow2 m_orig in
    let nt = bits * m in
    if Array.length gens.gv < nt || Array.length gens.hv < nt then false
    else begin
      let gv = Array.sub gens.gv 0 nt and hv = Array.sub gens.hv 0 nt in
      let vs = Array.append commitments (Array.make (m - m_orig) Point.identity) in
      absorb_statement tr ~g ~h ~bits ~commitments;
      Transcript.append_point tr ~label:"rp/A" proof.a;
      Transcript.append_point tr ~label:"rp/S" proof.s;
      let y = Transcript.challenge_nonzero tr ~label:"rp/y" in
      let z = Transcript.challenge_nonzero tr ~label:"rp/z" in
      Transcript.append_point tr ~label:"rp/T1" proof.t1;
      Transcript.append_point tr ~label:"rp/T2" proof.t2;
      let x = Transcript.challenge_nonzero tr ~label:"rp/x" in
      Transcript.append_scalar tr ~label:"rp/t_hat" proof.t_hat;
      Transcript.append_scalar tr ~label:"rp/tau_x" proof.tau_x;
      Transcript.append_scalar tr ~label:"rp/mu" proof.mu;
      let w = Transcript.challenge_nonzero tr ~label:"rp/w" in
      let u_x = Point.mul w gens.u in
      let ys = powers y nt in
      let zjs = powers z (m + 3) in
      let x2 = Scalar.square x in
      (* check 1: g^{t_hat} h^{tau_x} = g^{delta} V^{z^{2+j}} T1^x T2^{x^2} *)
      let sum_y = Array.fold_left Scalar.add Scalar.zero ys in
      let two_n = Scalar.of_bigint (two_n_minus_1 bits) in
      let sum_z3 = ref Scalar.zero in
      for j = 0 to m - 1 do
        sum_z3 := Scalar.add !sum_z3 zjs.(j + 3)
      done;
      let delta = Scalar.sub (Scalar.mul (Scalar.sub z (Scalar.square z)) sum_y) (Scalar.mul !sum_z3 two_n) in
      let lhs1 = Point.double_mul proof.t_hat g proof.tau_x h in
      let rhs1 =
        Msm.msm
          (Array.append
             [| (delta, g); (x, proof.t1); (x2, proof.t2) |]
             (Array.mapi (fun j v -> (zjs.(j + 2), v)) vs))
      in
      if not (Point.equal lhs1 rhs1) then false
      else begin
        (* check 2: IPA on P = A S^x g^{-z} h'^{(z ys + zv) adj} h^{-mu} u_x^{t_hat} *)
        let zv = z_vec ~z ~bits ~m in
        let yinv = Scalar.inv y in
        let yinv_pows = powers yinv nt in
        let hv' = Array.init nt (fun i -> Point.mul yinv_pows.(i) hv.(i)) in
        (* exponent over h'_i is z*y^i + zv_i *)
        let h_exp = Array.init nt (fun i -> Scalar.add (Scalar.mul z ys.(i)) zv.(i)) in
        let p =
          Msm.msm
            (Array.concat
               [
                 [| (Scalar.one, proof.a); (x, proof.s); (Scalar.neg proof.mu, h); (proof.t_hat, u_x) |];
                 Array.map (fun gi -> (Scalar.neg z, gi)) gv;
                 Array.mapi (fun i hi -> (h_exp.(i), hi)) hv';
               ])
        in
        Ipa.verify tr ~g:gv ~h:hv' ~u:u_x ~p proof.ipa
      end
    end
  end

(* RLC form of [verify]: one [rho] draw per point equation (check 1 and
   the IPA check). Replays the transcript byte-identically to [verify].

   The big win over the naive path is that h'_i = h_i^{y^{-i}} is never
   materialized: the reindexing factor y^{-i} is folded into the scalar
   coefficient of the raw generator h_i, turning nt variable-base point
   multiplications into nt scalar multiplications inside one big MSM.
   Likewise u_x = u^w stays as a coefficient w on the raw u, and the
   whole P commitment for the IPA is pushed as terms instead of being
   evaluated. Identity padding commitments (value count below the padded
   power of two) contribute nothing and are skipped. *)
let accumulate ~rho ~push tr ~gens ~g ~h ~bits ~commitments proof =
  check_bits bits;
  let m_orig = Array.length commitments in
  if m_orig = 0 then false
  else begin
    let m = next_pow2 m_orig in
    let nt = bits * m in
    if Array.length gens.gv < nt || Array.length gens.hv < nt then false
    else begin
      absorb_statement tr ~g ~h ~bits ~commitments;
      Transcript.append_point tr ~label:"rp/A" proof.a;
      Transcript.append_point tr ~label:"rp/S" proof.s;
      let y = Transcript.challenge_nonzero tr ~label:"rp/y" in
      let z = Transcript.challenge_nonzero tr ~label:"rp/z" in
      Transcript.append_point tr ~label:"rp/T1" proof.t1;
      Transcript.append_point tr ~label:"rp/T2" proof.t2;
      let x = Transcript.challenge_nonzero tr ~label:"rp/x" in
      Transcript.append_scalar tr ~label:"rp/t_hat" proof.t_hat;
      Transcript.append_scalar tr ~label:"rp/tau_x" proof.tau_x;
      Transcript.append_scalar tr ~label:"rp/mu" proof.mu;
      let w = Transcript.challenge_nonzero tr ~label:"rp/w" in
      let ys = powers y nt in
      let zjs = powers z (m + 3) in
      let x2 = Scalar.square x in
      (* check 1, as rho1 * (LHS - RHS) *)
      let r1 = rho () in
      let sum_y = Array.fold_left Scalar.add Scalar.zero ys in
      let two_n = Scalar.of_bigint (two_n_minus_1 bits) in
      let sum_z3 = ref Scalar.zero in
      for j = 0 to m - 1 do
        sum_z3 := Scalar.add !sum_z3 zjs.(j + 3)
      done;
      let delta = Scalar.sub (Scalar.mul (Scalar.sub z (Scalar.square z)) sum_y) (Scalar.mul !sum_z3 two_n) in
      push (Scalar.mul r1 (Scalar.sub proof.t_hat delta)) g;
      push (Scalar.mul r1 proof.tau_x) h;
      push (Scalar.neg (Scalar.mul r1 x)) proof.t1;
      push (Scalar.neg (Scalar.mul r1 x2)) proof.t2;
      for j = 0 to m_orig - 1 do
        push (Scalar.neg (Scalar.mul r1 zjs.(j + 2))) commitments.(j)
      done;
      (* check 2: rho2 * (IPA recombination - P), with the generator-vector
         coefficients from the IPA merged with P's before pushing *)
      let r2 = rho () in
      let zv = z_vec ~z ~bits ~m in
      let yinv = Scalar.inv y in
      let yinv_pows = powers yinv nt in
      let gcoef = Array.make nt Scalar.zero in
      let hcoef = Array.make nt Scalar.zero in
      let ucoef = ref Scalar.zero in
      let ok =
        Ipa.accumulate ~rho:r2
          ~push_g:(fun i c -> gcoef.(i) <- Scalar.add gcoef.(i) c)
          ~push_h:(fun i c -> hcoef.(i) <- Scalar.add hcoef.(i) c)
          ~push_u:(fun c -> ucoef := Scalar.add !ucoef c)
          ~push tr ~n:nt proof.ipa
      in
      ok
      && begin
           push (Scalar.neg r2) proof.a;
           push (Scalar.neg (Scalar.mul r2 x)) proof.s;
           push (Scalar.mul r2 proof.mu) h;
           ucoef := Scalar.sub !ucoef (Scalar.mul r2 proof.t_hat);
           let r2z = Scalar.mul r2 z in
           for i = 0 to nt - 1 do
             push (Scalar.add gcoef.(i) r2z) gens.gv.(i);
             let h_exp = Scalar.add (Scalar.mul z ys.(i)) zv.(i) in
             push (Scalar.mul (Scalar.sub hcoef.(i) (Scalar.mul r2 h_exp)) yinv_pows.(i)) gens.hv.(i)
           done;
           push (Scalar.mul w !ucoef) gens.u;
           true
         end
    end
  end

let size_bytes p = (4 * 32) + (3 * 32) + Ipa.size_bytes p.ipa
