(** The Bulletproofs inner-product argument (Bünz et al., S&P 2018, §3).

    Proves knowledge of vectors a, b with
    P = Π gᵢ^{aᵢ} · Π hᵢ^{bᵢ} · u^{⟨a,b⟩}
    using 2·log₂ n group elements. Vector length must be a power of two
    (the range-proof layer arranges this). *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type proof = {
  ls : Point.t array;  (** left cross terms, one per halving round *)
  rs : Point.t array;  (** right cross terms *)
  a : Scalar.t;  (** final folded a *)
  b : Scalar.t;  (** final folded b *)
}

(** [prove tr ~g ~h ~u ~a ~b]. Lengths of [g], [h], [a], [b] must be an
    equal power of two. The caller must already have absorbed P into the
    transcript. *)
val prove :
  Transcript.t -> g:Point.t array -> h:Point.t array -> u:Point.t -> a:Scalar.t array -> b:Scalar.t array -> proof

(** [verify tr ~g ~h ~u ~p proof] checks the argument for commitment [p]
    with a single multi-scalar multiplication. *)
val verify :
  Transcript.t -> g:Point.t array -> h:Point.t array -> u:Point.t -> p:Point.t -> proof -> bool

(** Batch-verification form of [verify] — the IPA check is one point
    equation with batching coefficient [rho]. Coefficients for the
    generator vectors are returned by index ([push_g i c] ≙ add c·gᵢ,
    same for [push_h] and the single [push_u]); L/R cross terms go to
    [push] directly. The caller is responsible for pushing −ρ·P and for
    supplying the vector length [n] (a power of two matching the
    generator slice it will apply the indexed coefficients to).
    Transcript replay is byte-identical to [verify]; structural
    mismatches return [false] without absorbing. *)
val accumulate :
  rho:Scalar.t ->
  push_g:(int -> Scalar.t -> unit) ->
  push_h:(int -> Scalar.t -> unit) ->
  push_u:(Scalar.t -> unit) ->
  push:(Scalar.t -> Point.t -> unit) ->
  Transcript.t ->
  n:int ->
  proof ->
  bool

val size_bytes : proof -> int
