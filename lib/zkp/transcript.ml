module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

(* State is a running SHA-256 chain value: absorbing rehashes
   (state ‖ framed item); challenges extend the chain so they are
   position-dependent. *)
type t = { mutable state : Bytes.t }

let frame label payload =
  let b = Buffer.create (String.length label + Bytes.length payload + 16) in
  Buffer.add_string b (string_of_int (String.length label));
  Buffer.add_char b ':';
  Buffer.add_string b label;
  Buffer.add_string b (string_of_int (Bytes.length payload));
  Buffer.add_char b ':';
  Buffer.add_bytes b payload;
  Buffer.to_bytes b

let absorb t framed =
  let h = Hashfn.Sha256.init () in
  Hashfn.Sha256.update h t.state;
  Hashfn.Sha256.update h framed;
  t.state <- Hashfn.Sha256.finalize h

let create domain =
  let t = { state = Bytes.make 32 '\000' } in
  absorb t (frame "domain" (Bytes.of_string domain));
  t

let append_bytes t ~label b = absorb t (frame label b)
let append_point t ~label p = absorb t (frame label (Point.compress p))
let append_scalar t ~label s = absorb t (frame label (Scalar.to_bytes s))

(* batch-compress the vector (one shared inversion), then absorb the
   same frames append_point would — the transcript bytes are unchanged *)
let append_points t ~label ps =
  append_bytes t ~label:(label ^ "/count") (Bytes.of_string (string_of_int (Array.length ps)));
  Array.iter (fun b -> absorb t (frame label b)) (Point.compress_batch ps)

let append_int t ~label i = append_bytes t ~label (Bytes.of_string (string_of_int i))

let challenge_scalar t ~label =
  absorb t (frame "challenge" (Bytes.of_string label));
  (* widen to 64 bytes for unbiased reduction mod l *)
  let h = Hashfn.Sha512.init () in
  Hashfn.Sha512.update h t.state;
  Scalar.of_bytes_wide (Hashfn.Sha512.finalize h)

let rec challenge_nonzero t ~label =
  let c = challenge_scalar t ~label in
  if Scalar.is_zero c then challenge_nonzero t ~label else c
