module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

let point_size = 32
let scalar_size = 32

module Schnorr = struct
  type proof = { a : Point.t; z : Scalar.t }

  let prove drbg tr ~g ~c ~x =
    Transcript.append_point tr ~label:"sch/g" g;
    Transcript.append_point tr ~label:"sch/c" c;
    let w = Scalar.random drbg in
    let a = Point.mul w g in
    Transcript.append_point tr ~label:"sch/A" a;
    let ch = Transcript.challenge_scalar tr ~label:"sch/c" in
    { a; z = Scalar.add w (Scalar.mul ch x) }

  let verify tr ~g ~c proof =
    Transcript.append_point tr ~label:"sch/g" g;
    Transcript.append_point tr ~label:"sch/c" c;
    Transcript.append_point tr ~label:"sch/A" proof.a;
    let ch = Transcript.challenge_scalar tr ~label:"sch/c" in
    Point.equal (Point.mul proof.z g) (Point.add proof.a (Point.mul ch c))

  let size_bytes _ = point_size + scalar_size
end

module Repr = struct
  type proof = { a : Point.t; z1 : Scalar.t; z2 : Scalar.t }

  let absorb_statement tr ~g ~h ~c =
    Transcript.append_point tr ~label:"repr/g" g;
    Transcript.append_point tr ~label:"repr/h" h;
    Transcript.append_point tr ~label:"repr/c" c

  let prove drbg tr ~g ~h ~c ~x ~r =
    absorb_statement tr ~g ~h ~c;
    let a1 = Scalar.random drbg and a2 = Scalar.random drbg in
    let a = Point.double_mul a1 g a2 h in
    Transcript.append_point tr ~label:"repr/A" a;
    let ch = Transcript.challenge_scalar tr ~label:"repr/c" in
    { a; z1 = Scalar.add a1 (Scalar.mul ch x); z2 = Scalar.add a2 (Scalar.mul ch r) }

  let verify tr ~g ~h ~c proof =
    absorb_statement tr ~g ~h ~c;
    Transcript.append_point tr ~label:"repr/A" proof.a;
    let ch = Transcript.challenge_scalar tr ~label:"repr/c" in
    Point.equal (Point.double_mul proof.z1 g proof.z2 h) (Point.add proof.a (Point.mul ch c))

  let size_bytes _ = point_size + (2 * scalar_size)
end

module Square = struct
  type proof = { a1 : Point.t; a2 : Point.t; zx : Scalar.t; zs : Scalar.t; zs' : Scalar.t }

  (* y1 = g^x q^s, y2 = g^{x^2} q^{s'}.  Since y2 = y1^x q^{s' - s x},
     knowledge of a representation of y1 over (g, q) and of y2 over
     (y1, q) with the same exponent x proves the square relation. *)

  let absorb_statement tr ~g ~q ~y1 ~y2 =
    Transcript.append_point tr ~label:"sq/g" g;
    Transcript.append_point tr ~label:"sq/q" q;
    Transcript.append_point tr ~label:"sq/y1" y1;
    Transcript.append_point tr ~label:"sq/y2" y2

  let prove drbg tr ~g ~q ~y1 ~y2 ~x ~s ~s' =
    absorb_statement tr ~g ~q ~y1 ~y2;
    let a = Scalar.random drbg and b1 = Scalar.random drbg and b2 = Scalar.random drbg in
    let a1 = Point.double_mul a g b1 q in
    let a2 = Point.double_mul a y1 b2 q in
    Transcript.append_point tr ~label:"sq/A1" a1;
    Transcript.append_point tr ~label:"sq/A2" a2;
    let ch = Transcript.challenge_scalar tr ~label:"sq/c" in
    let s2 = Scalar.sub s' (Scalar.mul s x) in
    {
      a1;
      a2;
      zx = Scalar.add a (Scalar.mul ch x);
      zs = Scalar.add b1 (Scalar.mul ch s);
      zs' = Scalar.add b2 (Scalar.mul ch s2);
    }

  let verify tr ~g ~q ~y1 ~y2 proof =
    absorb_statement tr ~g ~q ~y1 ~y2;
    Transcript.append_point tr ~label:"sq/A1" proof.a1;
    Transcript.append_point tr ~label:"sq/A2" proof.a2;
    let ch = Transcript.challenge_scalar tr ~label:"sq/c" in
    Point.equal (Point.double_mul proof.zx g proof.zs q) (Point.add proof.a1 (Point.mul ch y1))
    && Point.equal (Point.double_mul proof.zx y1 proof.zs' q) (Point.add proof.a2 (Point.mul ch y2))

  let size_bytes _ = (2 * point_size) + (3 * scalar_size)
end

module Link = struct
  type proof = {
    az : Point.t;
    ae : Point.t;
    ao : Point.t;
    zx : Scalar.t;
    zr : Scalar.t;
    zs : Scalar.t;
  }

  (* z = g^r, e = g^x h^r, o = g^x q^s: same x in e and o, and the blind
     of e is the secret of z — the single-value version of Wf, used to tie
     a homomorphically derived commitment (e.g. of an inner product) to a
     fresh one the client can range-prove against. *)

  let absorb_statement tr ~g ~h ~q ~z ~e ~o =
    Transcript.append_point tr ~label:"lk/g" g;
    Transcript.append_point tr ~label:"lk/h" h;
    Transcript.append_point tr ~label:"lk/q" q;
    Transcript.append_point tr ~label:"lk/z" z;
    Transcript.append_point tr ~label:"lk/e" e;
    Transcript.append_point tr ~label:"lk/o" o

  let prove drbg tr ~g ~h ~q ~z ~e ~o ~x ~r ~s =
    absorb_statement tr ~g ~h ~q ~z ~e ~o;
    let alpha = Scalar.random drbg and beta = Scalar.random drbg and delta = Scalar.random drbg in
    let az = Point.mul beta g in
    let ae = Point.double_mul alpha g beta h in
    let ao = Point.double_mul alpha g delta q in
    Transcript.append_point tr ~label:"lk/Az" az;
    Transcript.append_point tr ~label:"lk/Ae" ae;
    Transcript.append_point tr ~label:"lk/Ao" ao;
    let ch = Transcript.challenge_scalar tr ~label:"lk/c" in
    {
      az;
      ae;
      ao;
      zx = Scalar.add alpha (Scalar.mul ch x);
      zr = Scalar.add beta (Scalar.mul ch r);
      zs = Scalar.add delta (Scalar.mul ch s);
    }

  let verify tr ~g ~h ~q ~z ~e ~o proof =
    absorb_statement tr ~g ~h ~q ~z ~e ~o;
    Transcript.append_point tr ~label:"lk/Az" proof.az;
    Transcript.append_point tr ~label:"lk/Ae" proof.ae;
    Transcript.append_point tr ~label:"lk/Ao" proof.ao;
    let ch = Transcript.challenge_scalar tr ~label:"lk/c" in
    Point.equal (Point.mul proof.zr g) (Point.add proof.az (Point.mul ch z))
    && Point.equal (Point.double_mul proof.zx g proof.zr h) (Point.add proof.ae (Point.mul ch e))
    && Point.equal (Point.double_mul proof.zx g proof.zs q) (Point.add proof.ao (Point.mul ch o))

  let size_bytes _ = (3 * point_size) + (3 * scalar_size)
end

module Wf = struct
  type proof = {
    az : Point.t;
    ae : Point.t array;
    ao : Point.t array;
    zr : Scalar.t;
    zv : Scalar.t array;
    zs : Scalar.t array;
  }

  let absorb_statement tr ~g ~q ~hs ~z ~es ~os =
    Transcript.append_point tr ~label:"wf/g" g;
    Transcript.append_point tr ~label:"wf/q" q;
    Transcript.append_points tr ~label:"wf/hs" hs;
    Transcript.append_point tr ~label:"wf/z" z;
    Transcript.append_points tr ~label:"wf/es" es;
    Transcript.append_points tr ~label:"wf/os" os

  let check_shapes ~hs ~es ~os =
    let kp1 = Array.length hs in
    if Array.length es <> kp1 then invalid_arg "Sigma.Wf: |es| must equal |hs|";
    if Array.length os <> kp1 - 1 then invalid_arg "Sigma.Wf: |os| must be |hs| - 1"

  let prove drbg tr ~g ~q ~hs ~z ~es ~os ~r ~vs ~ss =
    check_shapes ~hs ~es ~os;
    if Array.length vs <> Array.length es || Array.length ss <> Array.length os then
      invalid_arg "Sigma.Wf: secret shapes";
    absorb_statement tr ~g ~q ~hs ~z ~es ~os;
    let kp1 = Array.length hs in
    let beta = Scalar.random drbg in
    let alphas = Array.init kp1 (fun _ -> Scalar.random drbg) in
    let deltas = Array.init (kp1 - 1) (fun _ -> Scalar.random drbg) in
    let az = Point.mul beta g in
    let ae = Array.init kp1 (fun t -> Point.double_mul alphas.(t) g beta hs.(t)) in
    let ao = Array.init (kp1 - 1) (fun t -> Point.double_mul alphas.(t + 1) g deltas.(t) q) in
    Transcript.append_point tr ~label:"wf/Az" az;
    Transcript.append_points tr ~label:"wf/Ae" ae;
    Transcript.append_points tr ~label:"wf/Ao" ao;
    let ch = Transcript.challenge_scalar tr ~label:"wf/c" in
    {
      az;
      ae;
      ao;
      zr = Scalar.add beta (Scalar.mul ch r);
      zv = Array.init kp1 (fun t -> Scalar.add alphas.(t) (Scalar.mul ch vs.(t)));
      zs = Array.init (kp1 - 1) (fun t -> Scalar.add deltas.(t) (Scalar.mul ch ss.(t)));
    }

  let verify tr ~g ~q ~hs ~z ~es ~os proof =
    check_shapes ~hs ~es ~os;
    let kp1 = Array.length hs in
    if Array.length proof.ae <> kp1 || Array.length proof.ao <> kp1 - 1 then false
    else if Array.length proof.zv <> kp1 || Array.length proof.zs <> kp1 - 1 then false
    else begin
      absorb_statement tr ~g ~q ~hs ~z ~es ~os;
      Transcript.append_point tr ~label:"wf/Az" proof.az;
      Transcript.append_points tr ~label:"wf/Ae" proof.ae;
      Transcript.append_points tr ~label:"wf/Ao" proof.ao;
      let ch = Transcript.challenge_scalar tr ~label:"wf/c" in
      let ok = ref (Point.equal (Point.mul proof.zr g) (Point.add proof.az (Point.mul ch z))) in
      for t = 0 to kp1 - 1 do
        if !ok then
          ok :=
            Point.equal
              (Point.double_mul proof.zv.(t) g proof.zr hs.(t))
              (Point.add proof.ae.(t) (Point.mul ch es.(t)))
      done;
      for t = 0 to kp1 - 2 do
        if !ok then
          ok :=
            Point.equal
              (Point.double_mul proof.zv.(t + 1) g proof.zs.(t) q)
              (Point.add proof.ao.(t) (Point.mul ch os.(t)))
      done;
      !ok
    end

  let size_bytes p =
    (point_size * (1 + Array.length p.ae + Array.length p.ao))
    + (scalar_size * (1 + Array.length p.zv + Array.length p.zs))
end
