module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

let point_size = 32
let scalar_size = 32

(* Provers accept optional fixed-base window tables (Point.Table) for the
   bases that recur across many proofs in a round; absent a table the
   original variable-base ladder is used, so callers without precompute
   pay nothing new. *)
let tmul tbl s p = match tbl with Some t -> Point.Table.mul t s | None -> Point.mul s p

let tdouble_mul t1 s1 p1 t2 s2 p2 =
  match (t1, t2) with
  | None, None -> Point.double_mul s1 p1 s2 p2
  | _ -> Point.add (tmul t1 s1 p1) (tmul t2 s2 p2)

module Schnorr = struct
  type proof = { a : Point.t; z : Scalar.t }

  let prove drbg tr ~g ~c ~x =
    Transcript.append_point tr ~label:"sch/g" g;
    Transcript.append_point tr ~label:"sch/c" c;
    let w = Scalar.random drbg in
    let a = Point.mul w g in
    Transcript.append_point tr ~label:"sch/A" a;
    let ch = Transcript.challenge_scalar tr ~label:"sch/c" in
    { a; z = Scalar.add w (Scalar.mul ch x) }

  let verify tr ~g ~c proof =
    Transcript.append_point tr ~label:"sch/g" g;
    Transcript.append_point tr ~label:"sch/c" c;
    Transcript.append_point tr ~label:"sch/A" proof.a;
    let ch = Transcript.challenge_scalar tr ~label:"sch/c" in
    Point.equal (Point.mul proof.z g) (Point.add proof.a (Point.mul ch c))

  let size_bytes _ = point_size + scalar_size
end

module Repr = struct
  type proof = { a : Point.t; z1 : Scalar.t; z2 : Scalar.t }

  let absorb_statement tr ~g ~h ~c =
    Transcript.append_point tr ~label:"repr/g" g;
    Transcript.append_point tr ~label:"repr/h" h;
    Transcript.append_point tr ~label:"repr/c" c

  let prove drbg tr ~g ~h ~c ~x ~r =
    absorb_statement tr ~g ~h ~c;
    let a1 = Scalar.random drbg and a2 = Scalar.random drbg in
    let a = Point.double_mul a1 g a2 h in
    Transcript.append_point tr ~label:"repr/A" a;
    let ch = Transcript.challenge_scalar tr ~label:"repr/c" in
    { a; z1 = Scalar.add a1 (Scalar.mul ch x); z2 = Scalar.add a2 (Scalar.mul ch r) }

  let verify tr ~g ~h ~c proof =
    absorb_statement tr ~g ~h ~c;
    Transcript.append_point tr ~label:"repr/A" proof.a;
    let ch = Transcript.challenge_scalar tr ~label:"repr/c" in
    Point.equal (Point.double_mul proof.z1 g proof.z2 h) (Point.add proof.a (Point.mul ch c))

  let size_bytes _ = point_size + (2 * scalar_size)
end

module Square = struct
  type proof = { a1 : Point.t; a2 : Point.t; zx : Scalar.t; zs : Scalar.t; zs' : Scalar.t }

  (* y1 = g^x q^s, y2 = g^{x^2} q^{s'}.  Since y2 = y1^x q^{s' - s x},
     knowledge of a representation of y1 over (g, q) and of y2 over
     (y1, q) with the same exponent x proves the square relation. *)

  let absorb_statement tr ~g ~q ~y1 ~y2 =
    Transcript.append_point tr ~label:"sq/g" g;
    Transcript.append_point tr ~label:"sq/q" q;
    Transcript.append_point tr ~label:"sq/y1" y1;
    Transcript.append_point tr ~label:"sq/y2" y2

  let prove ?g_table ?q_table drbg tr ~g ~q ~y1 ~y2 ~x ~s ~s' =
    absorb_statement tr ~g ~q ~y1 ~y2;
    let a = Scalar.random drbg and b1 = Scalar.random drbg and b2 = Scalar.random drbg in
    let a1 = tdouble_mul g_table a g q_table b1 q in
    let a2 = tdouble_mul None a y1 q_table b2 q in
    Transcript.append_point tr ~label:"sq/A1" a1;
    Transcript.append_point tr ~label:"sq/A2" a2;
    let ch = Transcript.challenge_scalar tr ~label:"sq/c" in
    let s2 = Scalar.sub s' (Scalar.mul s x) in
    {
      a1;
      a2;
      zx = Scalar.add a (Scalar.mul ch x);
      zs = Scalar.add b1 (Scalar.mul ch s);
      zs' = Scalar.add b2 (Scalar.mul ch s2);
    }

  let verify tr ~g ~q ~y1 ~y2 proof =
    absorb_statement tr ~g ~q ~y1 ~y2;
    Transcript.append_point tr ~label:"sq/A1" proof.a1;
    Transcript.append_point tr ~label:"sq/A2" proof.a2;
    let ch = Transcript.challenge_scalar tr ~label:"sq/c" in
    Point.equal (Point.double_mul proof.zx g proof.zs q) (Point.add proof.a1 (Point.mul ch y1))
    && Point.equal (Point.double_mul proof.zx y1 proof.zs' q) (Point.add proof.a2 (Point.mul ch y2))

  (* RLC form of [verify]: pushes rho_j * (LHS - RHS) for both equations
     into the caller's accumulator; replays the transcript identically. *)
  let accumulate ~rho ~push tr ~g ~q ~y1 ~y2 proof =
    absorb_statement tr ~g ~q ~y1 ~y2;
    Transcript.append_point tr ~label:"sq/A1" proof.a1;
    Transcript.append_point tr ~label:"sq/A2" proof.a2;
    let ch = Transcript.challenge_scalar tr ~label:"sq/c" in
    let r1 = rho () in
    push (Scalar.mul r1 proof.zx) g;
    push (Scalar.mul r1 proof.zs) q;
    push (Scalar.neg r1) proof.a1;
    push (Scalar.neg (Scalar.mul r1 ch)) y1;
    let r2 = rho () in
    push (Scalar.mul r2 proof.zx) y1;
    push (Scalar.mul r2 proof.zs') q;
    push (Scalar.neg r2) proof.a2;
    push (Scalar.neg (Scalar.mul r2 ch)) y2;
    true

  let size_bytes _ = (2 * point_size) + (3 * scalar_size)
end

module Link = struct
  type proof = {
    az : Point.t;
    ae : Point.t;
    ao : Point.t;
    zx : Scalar.t;
    zr : Scalar.t;
    zs : Scalar.t;
  }

  (* z = g^r, e = g^x h^r, o = g^x q^s: same x in e and o, and the blind
     of e is the secret of z — the single-value version of Wf, used to tie
     a homomorphically derived commitment (e.g. of an inner product) to a
     fresh one the client can range-prove against. *)

  let absorb_statement tr ~g ~h ~q ~z ~e ~o =
    Transcript.append_point tr ~label:"lk/g" g;
    Transcript.append_point tr ~label:"lk/h" h;
    Transcript.append_point tr ~label:"lk/q" q;
    Transcript.append_point tr ~label:"lk/z" z;
    Transcript.append_point tr ~label:"lk/e" e;
    Transcript.append_point tr ~label:"lk/o" o

  let prove ?g_table ?q_table drbg tr ~g ~h ~q ~z ~e ~o ~x ~r ~s =
    absorb_statement tr ~g ~h ~q ~z ~e ~o;
    let alpha = Scalar.random drbg and beta = Scalar.random drbg and delta = Scalar.random drbg in
    let az = tmul g_table beta g in
    let ae = tdouble_mul g_table alpha g None beta h in
    let ao = tdouble_mul g_table alpha g q_table delta q in
    Transcript.append_point tr ~label:"lk/Az" az;
    Transcript.append_point tr ~label:"lk/Ae" ae;
    Transcript.append_point tr ~label:"lk/Ao" ao;
    let ch = Transcript.challenge_scalar tr ~label:"lk/c" in
    {
      az;
      ae;
      ao;
      zx = Scalar.add alpha (Scalar.mul ch x);
      zr = Scalar.add beta (Scalar.mul ch r);
      zs = Scalar.add delta (Scalar.mul ch s);
    }

  let verify tr ~g ~h ~q ~z ~e ~o proof =
    absorb_statement tr ~g ~h ~q ~z ~e ~o;
    Transcript.append_point tr ~label:"lk/Az" proof.az;
    Transcript.append_point tr ~label:"lk/Ae" proof.ae;
    Transcript.append_point tr ~label:"lk/Ao" proof.ao;
    let ch = Transcript.challenge_scalar tr ~label:"lk/c" in
    Point.equal (Point.mul proof.zr g) (Point.add proof.az (Point.mul ch z))
    && Point.equal (Point.double_mul proof.zx g proof.zr h) (Point.add proof.ae (Point.mul ch e))
    && Point.equal (Point.double_mul proof.zx g proof.zs q) (Point.add proof.ao (Point.mul ch o))

  (* RLC form of [verify]: one fresh rho per equation. *)
  let accumulate ~rho ~push tr ~g ~h ~q ~z ~e ~o proof =
    absorb_statement tr ~g ~h ~q ~z ~e ~o;
    Transcript.append_point tr ~label:"lk/Az" proof.az;
    Transcript.append_point tr ~label:"lk/Ae" proof.ae;
    Transcript.append_point tr ~label:"lk/Ao" proof.ao;
    let ch = Transcript.challenge_scalar tr ~label:"lk/c" in
    let r1 = rho () in
    push (Scalar.mul r1 proof.zr) g;
    push (Scalar.neg r1) proof.az;
    push (Scalar.neg (Scalar.mul r1 ch)) z;
    let r2 = rho () in
    push (Scalar.mul r2 proof.zx) g;
    push (Scalar.mul r2 proof.zr) h;
    push (Scalar.neg r2) proof.ae;
    push (Scalar.neg (Scalar.mul r2 ch)) e;
    let r3 = rho () in
    push (Scalar.mul r3 proof.zx) g;
    push (Scalar.mul r3 proof.zs) q;
    push (Scalar.neg r3) proof.ao;
    push (Scalar.neg (Scalar.mul r3 ch)) o;
    true

  let size_bytes _ = (3 * point_size) + (3 * scalar_size)
end

module Wf = struct
  type proof = {
    az : Point.t;
    ae : Point.t array;
    ao : Point.t array;
    zr : Scalar.t;
    zv : Scalar.t array;
    zs : Scalar.t array;
  }

  let absorb_statement tr ~g ~q ~hs ~z ~es ~os =
    Transcript.append_point tr ~label:"wf/g" g;
    Transcript.append_point tr ~label:"wf/q" q;
    Transcript.append_points tr ~label:"wf/hs" hs;
    Transcript.append_point tr ~label:"wf/z" z;
    Transcript.append_points tr ~label:"wf/es" es;
    Transcript.append_points tr ~label:"wf/os" os

  let check_shapes ~hs ~es ~os =
    let kp1 = Array.length hs in
    if Array.length es <> kp1 then invalid_arg "Sigma.Wf: |es| must equal |hs|";
    if Array.length os <> kp1 - 1 then invalid_arg "Sigma.Wf: |os| must be |hs| - 1"

  let prove ?g_table ?q_table ?hs_tables drbg tr ~g ~q ~hs ~z ~es ~os ~r ~vs ~ss =
    check_shapes ~hs ~es ~os;
    if Array.length vs <> Array.length es || Array.length ss <> Array.length os then
      invalid_arg "Sigma.Wf: secret shapes";
    absorb_statement tr ~g ~q ~hs ~z ~es ~os;
    let kp1 = Array.length hs in
    let hs_table t =
      match hs_tables with
      | Some ts when Array.length ts = kp1 -> Some ts.(t)
      | _ -> None
    in
    let beta = Scalar.random drbg in
    let alphas = Array.init kp1 (fun _ -> Scalar.random drbg) in
    let deltas = Array.init (kp1 - 1) (fun _ -> Scalar.random drbg) in
    let az = tmul g_table beta g in
    let ae = Array.init kp1 (fun t -> tdouble_mul g_table alphas.(t) g (hs_table t) beta hs.(t)) in
    let ao = Array.init (kp1 - 1) (fun t -> tdouble_mul g_table alphas.(t + 1) g q_table deltas.(t) q) in
    Transcript.append_point tr ~label:"wf/Az" az;
    Transcript.append_points tr ~label:"wf/Ae" ae;
    Transcript.append_points tr ~label:"wf/Ao" ao;
    let ch = Transcript.challenge_scalar tr ~label:"wf/c" in
    {
      az;
      ae;
      ao;
      zr = Scalar.add beta (Scalar.mul ch r);
      zv = Array.init kp1 (fun t -> Scalar.add alphas.(t) (Scalar.mul ch vs.(t)));
      zs = Array.init (kp1 - 1) (fun t -> Scalar.add deltas.(t) (Scalar.mul ch ss.(t)));
    }

  let verify tr ~g ~q ~hs ~z ~es ~os proof =
    check_shapes ~hs ~es ~os;
    let kp1 = Array.length hs in
    if Array.length proof.ae <> kp1 || Array.length proof.ao <> kp1 - 1 then false
    else if Array.length proof.zv <> kp1 || Array.length proof.zs <> kp1 - 1 then false
    else begin
      absorb_statement tr ~g ~q ~hs ~z ~es ~os;
      Transcript.append_point tr ~label:"wf/Az" proof.az;
      Transcript.append_points tr ~label:"wf/Ae" proof.ae;
      Transcript.append_points tr ~label:"wf/Ao" proof.ao;
      let ch = Transcript.challenge_scalar tr ~label:"wf/c" in
      let ok = ref (Point.equal (Point.mul proof.zr g) (Point.add proof.az (Point.mul ch z))) in
      for t = 0 to kp1 - 1 do
        if !ok then
          ok :=
            Point.equal
              (Point.double_mul proof.zv.(t) g proof.zr hs.(t))
              (Point.add proof.ae.(t) (Point.mul ch es.(t)))
      done;
      for t = 0 to kp1 - 2 do
        if !ok then
          ok :=
            Point.equal
              (Point.double_mul proof.zv.(t + 1) g proof.zs.(t) q)
              (Point.add proof.ao.(t) (Point.mul ch os.(t)))
      done;
      !ok
    end

  (* RLC form of [verify]: identical shape checks (returning false before
     the transcript absorbs anything, like [verify]) and transcript
     replay; pushes rho_j * (LHS - RHS) for all 2k+2 equations. *)
  let accumulate ~rho ~push tr ~g ~q ~hs ~z ~es ~os proof =
    check_shapes ~hs ~es ~os;
    let kp1 = Array.length hs in
    if Array.length proof.ae <> kp1 || Array.length proof.ao <> kp1 - 1 then false
    else if Array.length proof.zv <> kp1 || Array.length proof.zs <> kp1 - 1 then false
    else begin
      absorb_statement tr ~g ~q ~hs ~z ~es ~os;
      Transcript.append_point tr ~label:"wf/Az" proof.az;
      Transcript.append_points tr ~label:"wf/Ae" proof.ae;
      Transcript.append_points tr ~label:"wf/Ao" proof.ao;
      let ch = Transcript.challenge_scalar tr ~label:"wf/c" in
      let r0 = rho () in
      push (Scalar.mul r0 proof.zr) g;
      push (Scalar.neg r0) proof.az;
      push (Scalar.neg (Scalar.mul r0 ch)) z;
      for t = 0 to kp1 - 1 do
        let r = rho () in
        push (Scalar.mul r proof.zv.(t)) g;
        push (Scalar.mul r proof.zr) hs.(t);
        push (Scalar.neg r) proof.ae.(t);
        push (Scalar.neg (Scalar.mul r ch)) es.(t)
      done;
      for t = 0 to kp1 - 2 do
        let r = rho () in
        push (Scalar.mul r proof.zv.(t + 1)) g;
        push (Scalar.mul r proof.zs.(t)) q;
        push (Scalar.neg r) proof.ao.(t);
        push (Scalar.neg (Scalar.mul r ch)) os.(t)
      done;
      true
    end

  let size_bytes p =
    (point_size * (1 + Array.length p.ae + Array.length p.ao))
    + (scalar_size * (1 + Array.length p.zv + Array.length p.zs))
end
