(** Fiat–Shamir transcript with domain separation.

    All interactive Σ-protocols and Bulletproofs in this repository are
    made non-interactive by deriving verifier challenges from a running
    hash of (domain label, every message exchanged so far). Both prover
    and verifier drive an identical transcript; any divergence in any
    absorbed byte changes every subsequent challenge. *)

type t

(** [create domain] — fresh transcript bound to a protocol label. *)
val create : string -> t

val append_bytes : t -> label:string -> Bytes.t -> unit
val append_point : t -> label:string -> Curve25519.Point.t -> unit
val append_scalar : t -> label:string -> Curve25519.Scalar.t -> unit
val append_points : t -> label:string -> Curve25519.Point.t array -> unit
val append_int : t -> label:string -> int -> unit

(** [challenge_scalar t ~label] derives a scalar challenge (and absorbs it,
    so successive challenges differ). *)
val challenge_scalar : t -> label:string -> Curve25519.Scalar.t

(** [challenge_nonzero t ~label] — same, but never zero (re-derives on the
    negligible zero event, which keeps inverses well-defined). *)
val challenge_nonzero : t -> label:string -> Curve25519.Scalar.t
