(** Σ-protocols over Pedersen commitments (Camenisch–Stadler style), made
    non-interactive with {!Transcript}. These are the paper's §2 building
    blocks:

    - {!Repr}: proof of knowledge of an opening (x, r) of C = g^x·h^r
      (Okamoto). Instantiated with (γ, r_i) on e_0 = g^γ·h_0^{r_i}, it is
      the "client possesses u_i" proof of §4.4.2.
    - {!Square}: GenPrfSq/VerPrfSq — the secret of y₂ is the square of the
      secret of y₁ (proof τ).
    - {!Wf}: GenPrfWf/VerPrfWf in batched vector form — the proof ρ that
      (z, e*, o) is well-formed: one blind r links z = g^r to every
      e_t = g^{v_t}·h_t^r, and each o_t = g^{v_t}·q^{s_t} commits the same
      v_t.

    All proofs are bound to the ambient transcript: verification replays
    the prover's absorption order. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

(** Plain Schnorr proof of knowledge of a discrete log: c = g^x. Used by
    the ACORN baseline to open the blind of its sum-identity commitment. *)
module Schnorr : sig
  type proof = { a : Point.t; z : Scalar.t }

  val prove : Prng.Drbg.t -> Transcript.t -> g:Point.t -> c:Point.t -> x:Scalar.t -> proof
  val verify : Transcript.t -> g:Point.t -> c:Point.t -> proof -> bool
  val size_bytes : proof -> int
end

module Repr : sig
  type proof = { a : Point.t; z1 : Scalar.t; z2 : Scalar.t }

  (** [prove drbg tr ~g ~h ~c ~x ~r] for c = g^x·h^r. *)
  val prove :
    Prng.Drbg.t -> Transcript.t -> g:Point.t -> h:Point.t -> c:Point.t -> x:Scalar.t -> r:Scalar.t -> proof

  val verify : Transcript.t -> g:Point.t -> h:Point.t -> c:Point.t -> proof -> bool

  (** Serialized size in bytes (for communication accounting). *)
  val size_bytes : proof -> int
end

module Square : sig
  type proof = { a1 : Point.t; a2 : Point.t; zx : Scalar.t; zs : Scalar.t; zs' : Scalar.t }

  (** [prove ?g_table ?q_table drbg tr ~g ~q ~y1 ~y2 ~x ~s ~s'] for
      y1 = g^x·q^s and y2 = g^{x²}·q^{s'}. The optional tables are
      fixed-base window precomputes for [g] and [q]. *)
  val prove :
    ?g_table:Point.Table.table ->
    ?q_table:Point.Table.table ->
    Prng.Drbg.t ->
    Transcript.t ->
    g:Point.t ->
    q:Point.t ->
    y1:Point.t ->
    y2:Point.t ->
    x:Scalar.t ->
    s:Scalar.t ->
    s':Scalar.t ->
    proof

  val verify : Transcript.t -> g:Point.t -> q:Point.t -> y1:Point.t -> y2:Point.t -> proof -> bool

  (** Batch-verification form of [verify]: replays the transcript
      identically, draws one coefficient via [rho] per verifier equation
      and pushes the terms of ρ·(LHS − RHS) through [push]. Returns
      [false] only on structural mismatch (never absorbing into the
      transcript in that case); the actual equation check happens when
      the caller's accumulator is evaluated. *)
  val accumulate :
    rho:(unit -> Scalar.t) ->
    push:(Scalar.t -> Point.t -> unit) ->
    Transcript.t ->
    g:Point.t ->
    q:Point.t ->
    y1:Point.t ->
    y2:Point.t ->
    proof ->
    bool

  val size_bytes : proof -> int
end

(** Single-value commitment linkage: z = g^r, e = g^x·h^r, o = g^x·q^s —
    the secrets of e and o are equal and e's blind is z's secret. Used by
    the cosine-defense extension to tie the homomorphically derived
    commitment of ⟨u, v⟩ to a client-fresh commitment. *)
module Link : sig
  type proof = {
    az : Point.t;
    ae : Point.t;
    ao : Point.t;
    zx : Scalar.t;
    zr : Scalar.t;
    zs : Scalar.t;
  }

  val prove :
    ?g_table:Point.Table.table ->
    ?q_table:Point.Table.table ->
    Prng.Drbg.t ->
    Transcript.t ->
    g:Point.t ->
    h:Point.t ->
    q:Point.t ->
    z:Point.t ->
    e:Point.t ->
    o:Point.t ->
    x:Scalar.t ->
    r:Scalar.t ->
    s:Scalar.t ->
    proof

  val verify :
    Transcript.t -> g:Point.t -> h:Point.t -> q:Point.t -> z:Point.t -> e:Point.t -> o:Point.t -> proof -> bool

  (** Batch-verification form of [verify]; see {!Square.accumulate}. *)
  val accumulate :
    rho:(unit -> Scalar.t) ->
    push:(Scalar.t -> Point.t -> unit) ->
    Transcript.t ->
    g:Point.t ->
    h:Point.t ->
    q:Point.t ->
    z:Point.t ->
    e:Point.t ->
    o:Point.t ->
    proof ->
    bool

  val size_bytes : proof -> int
end

module Wf : sig
  type proof = {
    az : Point.t;
    ae : Point.t array;  (** one commitment per e_t, t ∈ [0, k] *)
    ao : Point.t array;  (** one commitment per o_t, t ∈ [1, k] *)
    zr : Scalar.t;
    zv : Scalar.t array;  (** responses for v_0 … v_k *)
    zs : Scalar.t array;  (** responses for s_1 … s_k *)
  }

  (** [prove ?g_table ?q_table ?hs_tables drbg tr ~g ~q ~hs ~z ~es ~os ~r ~vs ~ss]:
      [hs] has length k+1 (bases h_0 … h_k), [es] length k+1, [os] and
      [ss] length k, [vs] length k+1. Statement:
      z = g^r; e_t = g^{v_t}·hs_t^r (t ∈ [0,k]); o_t = g^{v_t}·q^{s_t}
      (t ∈ [1,k], with v index shifted by one). [hs_tables], when present
      and of length k+1, holds one fixed-base table per check base h_t
      (the same h_t commit every client in a round, so the tables
      amortize across clients). *)
  val prove :
    ?g_table:Point.Table.table ->
    ?q_table:Point.Table.table ->
    ?hs_tables:Point.Table.table array ->
    Prng.Drbg.t ->
    Transcript.t ->
    g:Point.t ->
    q:Point.t ->
    hs:Point.t array ->
    z:Point.t ->
    es:Point.t array ->
    os:Point.t array ->
    r:Scalar.t ->
    vs:Scalar.t array ->
    ss:Scalar.t array ->
    proof

  val verify :
    Transcript.t ->
    g:Point.t ->
    q:Point.t ->
    hs:Point.t array ->
    z:Point.t ->
    es:Point.t array ->
    os:Point.t array ->
    proof ->
    bool

  (** Batch-verification form of [verify]; see {!Square.accumulate}.
      Mirrors [verify] exactly on structural mismatches (returns [false]
      without touching the transcript). *)
  val accumulate :
    rho:(unit -> Scalar.t) ->
    push:(Scalar.t -> Point.t -> unit) ->
    Transcript.t ->
    g:Point.t ->
    q:Point.t ->
    hs:Point.t array ->
    z:Point.t ->
    es:Point.t array ->
    os:Point.t array ->
    proof ->
    bool

  val size_bytes : proof -> int
end
