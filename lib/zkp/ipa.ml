module Scalar = Curve25519.Scalar
module Point = Curve25519.Point
module Msm = Curve25519.Msm

type proof = { ls : Point.t array; rs : Point.t array; a : Scalar.t; b : Scalar.t }

let dot a b =
  let acc = ref Scalar.zero in
  Array.iteri (fun i ai -> acc := Scalar.add !acc (Scalar.mul ai b.(i))) a;
  !acc

let is_pow2 n = n > 0 && n land (n - 1) = 0

let prove tr ~g ~h ~u ~a ~b =
  let n = Array.length g in
  if not (is_pow2 n) then invalid_arg "Ipa.prove: length must be a power of two";
  if Array.length h <> n || Array.length a <> n || Array.length b <> n then
    invalid_arg "Ipa.prove: length mismatch";
  let g = ref (Array.copy g) and h = ref (Array.copy h) in
  let a = ref (Array.copy a) and b = ref (Array.copy b) in
  let ls = ref [] and rs = ref [] in
  while Array.length !a > 1 do
    let n = Array.length !a in
    let half = n / 2 in
    let a_lo = Array.sub !a 0 half and a_hi = Array.sub !a half half in
    let b_lo = Array.sub !b 0 half and b_hi = Array.sub !b half half in
    let g_lo = Array.sub !g 0 half and g_hi = Array.sub !g half half in
    let h_lo = Array.sub !h 0 half and h_hi = Array.sub !h half half in
    (* L = g_hi^{a_lo} h_lo^{b_hi} u^{<a_lo, b_hi>} *)
    let l =
      Msm.msm
        (Array.append
           (Array.append (Array.map2 (fun s p -> (s, p)) a_lo g_hi) (Array.map2 (fun s p -> (s, p)) b_hi h_lo))
           [| (dot a_lo b_hi, u) |])
    in
    let r =
      Msm.msm
        (Array.append
           (Array.append (Array.map2 (fun s p -> (s, p)) a_hi g_lo) (Array.map2 (fun s p -> (s, p)) b_lo h_hi))
           [| (dot a_hi b_lo, u) |])
    in
    Transcript.append_point tr ~label:"ipa/L" l;
    Transcript.append_point tr ~label:"ipa/R" r;
    ls := l :: !ls;
    rs := r :: !rs;
    let x = Transcript.challenge_nonzero tr ~label:"ipa/x" in
    let xinv = Scalar.inv x in
    a := Array.init half (fun i -> Scalar.add (Scalar.mul a_lo.(i) x) (Scalar.mul a_hi.(i) xinv));
    b := Array.init half (fun i -> Scalar.add (Scalar.mul b_lo.(i) xinv) (Scalar.mul b_hi.(i) x));
    g := Array.init half (fun i -> Point.double_mul xinv g_lo.(i) x g_hi.(i));
    h := Array.init half (fun i -> Point.double_mul x h_lo.(i) xinv h_hi.(i))
  done;
  { ls = Array.of_list (List.rev !ls); rs = Array.of_list (List.rev !rs); a = !a.(0); b = !b.(0) }

let verify tr ~g ~h ~u ~p proof =
  let n = Array.length g in
  if not (is_pow2 n) || Array.length h <> n then false
  else begin
    let rounds = Array.length proof.ls in
    if Array.length proof.rs <> rounds || 1 lsl rounds <> n then false
    else begin
      (* replay the challenges *)
      let xs = Array.make rounds Scalar.zero in
      for j = 0 to rounds - 1 do
        Transcript.append_point tr ~label:"ipa/L" proof.ls.(j);
        Transcript.append_point tr ~label:"ipa/R" proof.rs.(j);
        xs.(j) <- Transcript.challenge_nonzero tr ~label:"ipa/x"
      done;
      let xinvs = Array.map Scalar.inv xs in
      (* s_i = prod_j x_j^{eps(i,j)}: eps = +1 when bit (rounds-1-j) of i is
         set (round j splits on that bit), else -1 *)
      let s = Array.make n Scalar.one in
      for i = 0 to n - 1 do
        let acc = ref Scalar.one in
        for j = 0 to rounds - 1 do
          let bit = (i lsr (rounds - 1 - j)) land 1 in
          acc := Scalar.mul !acc (if bit = 1 then xs.(j) else xinvs.(j))
        done;
        s.(i) <- !acc
      done;
      (* check: P * prod L_j^{x_j^2} R_j^{x_j^-2} = g^{a s} h^{b / s} u^{ab}
         rearranged into a single MSM equal to the identity. *)
      let pairs = ref [] in
      for i = 0 to n - 1 do
        pairs := (Scalar.mul proof.a s.(i), g.(i)) :: !pairs;
        (* s_{n-1-i} has every challenge exponent flipped, so it IS 1/s_i *)
        pairs := (Scalar.mul proof.b s.(n - 1 - i), h.(i)) :: !pairs
      done;
      pairs := (Scalar.mul proof.a proof.b, u) :: !pairs;
      for j = 0 to rounds - 1 do
        pairs := (Scalar.neg (Scalar.square xs.(j)), proof.ls.(j)) :: !pairs;
        pairs := (Scalar.neg (Scalar.square xinvs.(j)), proof.rs.(j)) :: !pairs
      done;
      let rhs = Msm.msm (Array.of_list !pairs) in
      Point.equal rhs p
    end
  end

(* RLC form of [verify] for batch verification. The whole IPA check is a
   single point equation; [rho] is its random batching coefficient. Base
   coefficients are handed back by index ([push_g i c] means "add c·g_i",
   likewise [push_h]/[push_u]) so the range-proof layer can merge them
   with its own per-index coefficients (folding the h'_i = h_i^{y^{-i}}
   reindexing into scalars instead of materializing nt point
   multiplications); L/R cross terms go straight to [push]. The caller
   must push -rho·P itself. Transcript replay is identical to [verify];
   structural mismatches return false without absorbing, like [verify]. *)
let accumulate ~rho ~push_g ~push_h ~push_u ~push tr ~n proof =
  if not (is_pow2 n) then false
  else begin
    let rounds = Array.length proof.ls in
    if Array.length proof.rs <> rounds || 1 lsl rounds <> n then false
    else begin
      let xs = Array.make rounds Scalar.zero in
      for j = 0 to rounds - 1 do
        Transcript.append_point tr ~label:"ipa/L" proof.ls.(j);
        Transcript.append_point tr ~label:"ipa/R" proof.rs.(j);
        xs.(j) <- Transcript.challenge_nonzero tr ~label:"ipa/x"
      done;
      let xinvs = Array.map Scalar.inv xs in
      let s = Array.make n Scalar.one in
      for i = 0 to n - 1 do
        let acc = ref Scalar.one in
        for j = 0 to rounds - 1 do
          let bit = (i lsr (rounds - 1 - j)) land 1 in
          acc := Scalar.mul !acc (if bit = 1 then xs.(j) else xinvs.(j))
        done;
        s.(i) <- !acc
      done;
      let ra = Scalar.mul rho proof.a and rb = Scalar.mul rho proof.b in
      for i = 0 to n - 1 do
        push_g i (Scalar.mul ra s.(i));
        push_h i (Scalar.mul rb s.(n - 1 - i))
      done;
      push_u (Scalar.mul ra proof.b);
      for j = 0 to rounds - 1 do
        push (Scalar.neg (Scalar.mul rho (Scalar.square xs.(j)))) proof.ls.(j);
        push (Scalar.neg (Scalar.mul rho (Scalar.square xinvs.(j)))) proof.rs.(j)
      done;
      true
    end
  end

let size_bytes p = (32 * (Array.length p.ls + Array.length p.rs)) + 64
