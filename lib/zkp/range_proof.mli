(** Bulletproofs aggregated range proofs (Bünz et al. 2018, §4.2–4.3) —
    the paper's GenPrfBd/VerPrfBd.

    Proves that each of m committed values lies in [0, 2^bits), with a
    proof of size O(log(m·bits)) thanks to the inner-product argument.
    RiseFL uses this twice per client per round: the σ proof that each
    projection ⟨a_t, u_i⟩ avoids squaring overflow, and the μ proof that
    B₀ − Σ_t ⟨a_t,u_i⟩² is non-negative (§4.4.2).

    [bits] must be a power of two in [2, 128]; the number of values is
    padded internally to a power of two with zero-valued commitments, so
    any m works. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

(** Generator set. [gv]/[hv] must be at least as long as the largest
    bits·m_padded a proof will use; [u] binds the inner product. Derive
    once per deployment via {!make_gens}. *)
type gens = { gv : Point.t array; hv : Point.t array; u : Point.t }

(** [make_gens ~label n] derives 2n+1 independent generators. *)
val make_gens : label:string -> int -> gens

type proof = {
  a : Point.t;
  s : Point.t;
  t1 : Point.t;
  t2 : Point.t;
  t_hat : Scalar.t;
  tau_x : Scalar.t;
  mu : Scalar.t;
  ipa : Ipa.proof;
}

(** [prove ?g_table ?h_table drbg tr ~gens ~g ~h ~bits ~values ~blinds] —
    [values.(j)] must be a non-negative bigint < 2^bits committed as
    g^{v_j}·h^{γ_j} with [blinds.(j)] = γ_j. The commitments themselves
    are recomputed and absorbed, so prover and verifier bind the same
    statement. [g_table]/[h_table] are optional fixed-base window tables
    for [g]/[h] used for the value, T1 and T2 commitments.
    @raise Invalid_argument on bad shapes, bits, or out-of-range values. *)
val prove :
  ?g_table:Point.Table.table ->
  ?h_table:Point.Table.table ->
  Prng.Drbg.t ->
  Transcript.t ->
  gens:gens ->
  g:Point.t ->
  h:Point.t ->
  bits:int ->
  values:Bigint.t array ->
  blinds:Scalar.t array ->
  proof

(** [verify tr ~gens ~g ~h ~bits ~commitments proof]. *)
val verify :
  Transcript.t ->
  gens:gens ->
  g:Point.t ->
  h:Point.t ->
  bits:int ->
  commitments:Point.t array ->
  proof ->
  bool

(** Batch-verification form of [verify]: draws one coefficient via [rho]
    per point equation (the τ-consistency check and the folded IPA check)
    and pushes every term of ρ·(LHS − RHS) through [push]; the h'ᵢ =
    hᵢ^{y^{-i}} reindexing and u_x = u^w are folded into scalar
    coefficients, so no point multiplication happens here at all. Returns
    [false] only on structural mismatch (same cases and transcript
    behavior as [verify]); the equations themselves are decided when the
    caller evaluates its accumulator. *)
val accumulate :
  rho:(unit -> Scalar.t) ->
  push:(Scalar.t -> Point.t -> unit) ->
  Transcript.t ->
  gens:gens ->
  g:Point.t ->
  h:Point.t ->
  bits:int ->
  commitments:Point.t array ->
  proof ->
  bool

val size_bytes : proof -> int
