(** Fixed-point integer encoding of floating-point model updates.

    ML gradients are floats; the cryptographic layer works on integers
    embedded in ℤ_ℓ. Following §2 of the paper we encode a float [x] as
    [round(x · 2^frac)], clamped to a signed [bits]-bit range (the paper's
    default is 16 bits total). *)

type cfg = {
  bits : int;  (** total signed width, including sign; value range is
                   [-2^(bits-1), 2^(bits-1) - 1] *)
  frac : int;  (** number of fractional bits *)
}

(** The paper's default: 16-bit values with 8 fractional bits. *)
val default : cfg

val make : bits:int -> frac:int -> cfg

(** Largest representable magnitude as a float. *)
val max_float_value : cfg -> float

(** [encode cfg x] — clamping round-to-nearest encoding. *)
val encode : cfg -> float -> int

(** [decode cfg v] — exact inverse on the representable range. *)
val decode : cfg -> int -> float

val encode_vec : cfg -> float array -> int array
val decode_vec : cfg -> int array -> float array

(** [l2_norm_encoded cfg v] — the L2 norm of the encoded integer vector,
    in encoded units (what the bound B of the integrity check measures). *)
val l2_norm_encoded : int array -> float
