type cfg = { bits : int; frac : int }

let make ~bits ~frac =
  if bits < 2 || bits > 40 || frac < 0 || frac >= bits then invalid_arg "Fixed_point.make";
  { bits; frac }

let default = make ~bits:16 ~frac:8

let max_int_value cfg = (1 lsl (cfg.bits - 1)) - 1
let min_int_value cfg = -(1 lsl (cfg.bits - 1))
let scale cfg = float_of_int (1 lsl cfg.frac)
let max_float_value cfg = float_of_int (max_int_value cfg) /. scale cfg

let encode cfg x =
  if Float.is_nan x then 0
  else begin
    let v = Float.round (x *. scale cfg) in
    let hi = float_of_int (max_int_value cfg) and lo = float_of_int (min_int_value cfg) in
    int_of_float (Float.min hi (Float.max lo v))
  end

let decode cfg v = float_of_int v /. scale cfg
let encode_vec cfg = Array.map (encode cfg)
let decode_vec cfg = Array.map (decode cfg)

let l2_norm_encoded v =
  sqrt (Array.fold_left (fun acc x -> acc +. (float_of_int x *. float_of_int x)) 0.0 v)
