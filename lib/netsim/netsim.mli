(** Simulated lossy/adversarial transport between protocol participants.

    [Netsim] sits between {!Driver} and the wire codecs: a frame submitted
    with {!send} crosses a per-link fault plan (drop, delay by simulated
    ticks, duplicate, reorder, truncate, byte flips, replay of a previous
    round's frame) before {!deliver} hands the surviving bytes to the
    receiver. Every fault decision is drawn from a DRBG forked by
    (round, stage, sender), so a fault schedule is a pure function of the
    seed — reruns, job counts and send order cannot change it.

    The interface is deliberately the one a real socket backend would
    implement later: opaque frames in, (sender, frame) pairs out, with a
    deadline after which a sender counts as dropped out. Nothing in here
    knows about the protocol message types. *)

(** Protocol stage a frame belongs to (one logical exchange per stage). *)
type stage = Commit | Flag | Proof | Agg

val stage_to_string : stage -> string

val stage_index : stage -> int
(** Stable wire/WAL encoding of a stage: commit 0, flag 1, proof 2, agg 3. *)

val stage_of_index : int -> stage option

(** A single fault applied to one frame. Scripted faults use these
    directly; sampled faults draw the parameters from the link DRBG. *)
type fault =
  | Drop  (** frame is lost *)
  | Delay of int  (** arrival delayed by this many ticks *)
  | Duplicate  (** a second copy arrives one tick later *)
  | Reorder  (** frame sorts after later sends of the same tick *)
  | Truncate_at of int  (** keep only the first [n] bytes *)
  | Flip_bytes of int  (** xor [n] randomly chosen bytes with random masks *)
  | Replay_previous
      (** substitute the frame this link sent for this stage in a previous
          round (no-op in round 1 or if the link never sent one) *)

(** Per-link fault probabilities; all independent per frame. *)
type plan = {
  p_drop : float;
  p_delay : float;
  max_delay : int;  (** sampled delays are uniform in [1, max_delay] *)
  p_duplicate : float;
  p_reorder : float;
  p_truncate : float;
  p_flip : float;
  p_replay : float;
}

(** The fault-free plan (all probabilities 0). *)
val ideal : plan

(** [uniform ?max_delay p] — every fault class fires with probability [p]. *)
val uniform : ?max_delay:int -> float -> plan

(** Parse a comma-separated spec, e.g.
    ["drop=0.1,flip=0.05,delay=0.2:4,dup=0.02,trunc=0.05,reorder=0.1,replay=0.02"].
    [delay] accepts [p] or [p:max_ticks]. Unknown keys are an error. *)
val plan_of_string : string -> (plan, string) result

val plan_to_string : plan -> string

type t

(** [create ?plan ?link_plans ?script ?deadline ~seed ()] — a transport
    whose fault schedule is a deterministic function of [seed].
    [link_plans] overrides the plan for specific senders (1-based);
    [script] forces an exact fault list for a (round, stage, sender)
    triple, bypassing sampling — the deterministic tool the dropout and
    corruption tests use. [deadline] is the default collection deadline in
    ticks (default 4): frames arriving later count as dropouts. *)
val create :
  ?plan:plan ->
  ?link_plans:(int * plan) list ->
  ?script:((int * stage * int) * fault list) list ->
  ?deadline:int ->
  seed:string ->
  unit ->
  t

val deadline : t -> int

(** [begin_stage t ~round ~stage] — open a fresh exchange; frames still
    queued from the previous stage are discarded (they were late). *)
val begin_stage : t -> round:int -> stage:stage -> unit

(** [send ?attempt t ~sender frame] — submit one frame on [sender]'s link
    at tick 0 of the current stage. The transport applies the link's
    faults. [attempt] (default 0) tags a retransmission: attempt 0 draws
    faults under the historical (round, stage, sender) fork so existing
    schedules are unchanged, while attempt [k > 0] re-rolls faults under
    an attempt-suffixed fork and counts as [retransmitted]. Scripted
    faults apply to every attempt (a scripted Drop is a persistent
    outage). *)
val send : ?attempt:int -> t -> sender:int -> Bytes.t -> unit

(** [note_recovered t] — record that a reliability layer above the
    transport acked a frame after at least one retransmission (the
    counterpart of a drop that stays lost past the deadline). *)
val note_recovered : t -> unit

(** [deliver ?deadline t] — everything that arrived by the deadline tick,
    in arrival order (tick, then send/reorder sequence). Duplicates are
    delivered as separate entries; the receiver must de-duplicate. *)
val deliver : ?deadline:int -> t -> (int * Bytes.t) list

(** Cumulative transport counters since [create]. *)
type counters = {
  sent : int;
  delivered : int;
  dropped : int;  (** lost to a Drop fault *)
  late : int;  (** arrived after the deadline (counts as dropout) *)
  mutated : int;  (** frames whose bytes were altered (truncate/flip/replay) *)
  duplicated : int;
  reordered : int;
  replayed : int;
  retransmitted : int;  (** extra send attempts submitted by a reliability layer *)
  recovered : int;  (** frames acked only after >= 1 retransmission *)
}

val counters : t -> counters

(** {1 The shared transport signature}

    Netsim (the deterministic fault-injected test double) and the real
    socket transports ({!Risefl_transport.Loopback}) implement one
    interface, so the driver, the ARQ layer and the degradation/dropout
    test suites run unchanged against either backend. *)

module Transport_intf : sig
  (** A first-class transport endpoint — the capability set the driver
      and the ARQ layer consume, packed as closures so heterogeneous
      backends flow through one optional argument. *)
  type endpoint = {
    ep_begin_stage : round:int -> stage:stage -> unit;
    ep_send : attempt:int -> sender:int -> Bytes.t -> unit;
    ep_deliver : deadline:int option -> (int * Bytes.t) list;
    ep_note_recovered : unit -> unit;
    ep_deadline : unit -> int;
    ep_counters : unit -> counters;
  }

  (** What a transport backend provides. [create]'s fault plan/script
      parameters are the Netsim vocabulary: a backend that carries real
      bytes (sockets) applies the same seeded schedule after frame
      reassembly, so outcomes are bit-identical across backends. *)
  module type S = sig
    type t

    val create :
      ?plan:plan ->
      ?link_plans:(int * plan) list ->
      ?script:((int * stage * int) * fault list) list ->
      ?deadline:int ->
      seed:string ->
      unit ->
      t

    val deadline : t -> int
    val begin_stage : t -> round:int -> stage:stage -> unit
    val send : ?attempt:int -> t -> sender:int -> Bytes.t -> unit
    val note_recovered : t -> unit
    val deliver : ?deadline:int -> t -> (int * Bytes.t) list
    val counters : t -> counters
    val endpoint : t -> endpoint
  end
end

val endpoint : t -> Transport_intf.endpoint
(** Pack this Netsim instance for {!Driver}'s [?endpoint] argument —
    [Netsim] itself then satisfies {!Transport_intf.S}. *)
