type stage = Commit | Flag | Proof | Agg

let stage_to_string = function
  | Commit -> "commit"
  | Flag -> "flag"
  | Proof -> "proof"
  | Agg -> "agg"

let stage_index = function Commit -> 0 | Flag -> 1 | Proof -> 2 | Agg -> 3

let stage_of_index = function
  | 0 -> Some Commit
  | 1 -> Some Flag
  | 2 -> Some Proof
  | 3 -> Some Agg
  | _ -> None

type fault =
  | Drop
  | Delay of int
  | Duplicate
  | Reorder
  | Truncate_at of int
  | Flip_bytes of int
  | Replay_previous

type plan = {
  p_drop : float;
  p_delay : float;
  max_delay : int;
  p_duplicate : float;
  p_reorder : float;
  p_truncate : float;
  p_flip : float;
  p_replay : float;
}

let ideal =
  {
    p_drop = 0.0;
    p_delay = 0.0;
    max_delay = 3;
    p_duplicate = 0.0;
    p_reorder = 0.0;
    p_truncate = 0.0;
    p_flip = 0.0;
    p_replay = 0.0;
  }

let uniform ?(max_delay = 3) p =
  {
    p_drop = p;
    p_delay = p;
    max_delay;
    p_duplicate = p;
    p_reorder = p;
    p_truncate = p;
    p_flip = p;
    p_replay = p;
  }

let plan_of_string s =
  let parse_float v = match float_of_string_opt v with Some f -> Ok f | None -> Error ("bad number: " ^ v) in
  let rec go plan = function
    | [] -> Ok plan
    | kv :: rest -> (
        match String.index_opt kv '=' with
        | None -> Error ("expected key=value, got: " ^ kv)
        | Some eq -> (
            let key = String.sub kv 0 eq in
            let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
            let simple set = Result.bind (parse_float v) (fun f -> go (set f) rest) in
            match key with
            | "drop" -> simple (fun f -> { plan with p_drop = f })
            | "dup" | "duplicate" -> simple (fun f -> { plan with p_duplicate = f })
            | "reorder" -> simple (fun f -> { plan with p_reorder = f })
            | "trunc" | "truncate" -> simple (fun f -> { plan with p_truncate = f })
            | "flip" -> simple (fun f -> { plan with p_flip = f })
            | "replay" -> simple (fun f -> { plan with p_replay = f })
            | "delay" -> (
                match String.index_opt v ':' with
                | None -> simple (fun f -> { plan with p_delay = f })
                | Some c -> (
                    let pv = String.sub v 0 c
                    and mv = String.sub v (c + 1) (String.length v - c - 1) in
                    match (float_of_string_opt pv, int_of_string_opt mv) with
                    | Some f, Some m when m >= 1 ->
                        go { plan with p_delay = f; max_delay = m } rest
                    | _ -> Error ("bad delay spec: " ^ v)))
            | _ -> Error ("unknown fault key: " ^ key)))
  in
  let parts = String.split_on_char ',' (String.trim s) |> List.map String.trim in
  let parts = List.filter (fun p -> p <> "") parts in
  Result.bind (go ideal parts) (fun plan ->
      let probs =
        [ plan.p_drop; plan.p_delay; plan.p_duplicate; plan.p_reorder; plan.p_truncate; plan.p_flip; plan.p_replay ]
      in
      if List.exists (fun p -> p < 0.0 || p > 1.0) probs then Error "probabilities must be in [0, 1]"
      else Ok plan)

let plan_to_string p =
  Printf.sprintf "drop=%g,delay=%g:%d,dup=%g,reorder=%g,trunc=%g,flip=%g,replay=%g" p.p_drop
    p.p_delay p.max_delay p.p_duplicate p.p_reorder p.p_truncate p.p_flip p.p_replay

type counters = {
  sent : int;
  delivered : int;
  dropped : int;
  late : int;
  mutated : int;
  duplicated : int;
  reordered : int;
  replayed : int;
  retransmitted : int;
  recovered : int;
}

(* telemetry mirrors of the per-instance struct counters, so transport
   fault stats land in the same snapshot as the crypto op counts *)
let t_sent = Telemetry.Counter.make "net.sent"
let t_delivered = Telemetry.Counter.make "net.delivered"
let t_dropped = Telemetry.Counter.make "net.dropped"
let t_late = Telemetry.Counter.make "net.late"
let t_mutated = Telemetry.Counter.make "net.mutated"
let t_duplicated = Telemetry.Counter.make "net.duplicated"
let t_reordered = Telemetry.Counter.make "net.reordered"
let t_replayed = Telemetry.Counter.make "net.replayed"
let t_retransmitted = Telemetry.Counter.make "net.retransmitted"
let t_recovered = Telemetry.Counter.make "net.recovered"

type queued = { tick : int; seq : int; q_sender : int; frame : Bytes.t }

type t = {
  root : Prng.Drbg.t;
  plan : plan;
  link_plans : (int, plan) Hashtbl.t;
  script : (int * stage * int, fault list) Hashtbl.t;
  default_deadline : int;
  mutable round : int;
  mutable stage : stage;
  mutable queue : queued list;
  mutable next_seq : int;
  (* most recent frame sent per (stage, sender), with its round — the
     replay fault re-sends it when it predates the current round *)
  history : (stage * int, int * Bytes.t) Hashtbl.t;
  mutable c_sent : int;
  mutable c_delivered : int;
  mutable c_dropped : int;
  mutable c_late : int;
  mutable c_mutated : int;
  mutable c_duplicated : int;
  mutable c_reordered : int;
  mutable c_replayed : int;
  mutable c_retransmitted : int;
  mutable c_recovered : int;
}

let create ?(plan = ideal) ?(link_plans = []) ?(script = []) ?(deadline = 4) ~seed () =
  let lp = Hashtbl.create 7 in
  List.iter (fun (i, p) -> Hashtbl.replace lp i p) link_plans;
  let sc = Hashtbl.create 7 in
  List.iter (fun (k, fs) -> Hashtbl.replace sc k fs) script;
  {
    root = Prng.Drbg.create_string ("netsim/" ^ seed);
    plan;
    link_plans = lp;
    script = sc;
    default_deadline = max 0 deadline;
    round = 0;
    stage = Commit;
    queue = [];
    next_seq = 0;
    history = Hashtbl.create 31;
    c_sent = 0;
    c_delivered = 0;
    c_dropped = 0;
    c_late = 0;
    c_mutated = 0;
    c_duplicated = 0;
    c_reordered = 0;
    c_replayed = 0;
    c_retransmitted = 0;
    c_recovered = 0;
  }

let deadline t = t.default_deadline

let counters t =
  {
    sent = t.c_sent;
    delivered = t.c_delivered;
    dropped = t.c_dropped;
    late = t.c_late;
    mutated = t.c_mutated;
    duplicated = t.c_duplicated;
    reordered = t.c_reordered;
    replayed = t.c_replayed;
    retransmitted = t.c_retransmitted;
    recovered = t.c_recovered;
  }

let begin_stage t ~round ~stage =
  (* frames still queued belonged to the previous exchange: late *)
  t.c_late <- t.c_late + List.length t.queue;
  Telemetry.Counter.add t_late (List.length t.queue);
  t.queue <- [];
  t.next_seq <- 0;
  t.round <- round;
  t.stage <- stage

let plan_for t sender =
  match Hashtbl.find_opt t.link_plans sender with Some p -> p | None -> t.plan

(* Independent coin per fault class, in a fixed draw order so the schedule
   depends only on (seed, round, stage, sender). *)
let sample_faults drbg plan frame_len =
  let coin p = p > 0.0 && Prng.Drbg.float drbg < p in
  if coin plan.p_drop then [ Drop ]
  else begin
    let fs = ref [] in
    if coin plan.p_replay then fs := Replay_previous :: !fs;
    if coin plan.p_truncate then
      fs := Truncate_at (Prng.Drbg.uniform_int drbg (max 1 frame_len)) :: !fs;
    if coin plan.p_flip then fs := Flip_bytes (1 + Prng.Drbg.uniform_int drbg 8) :: !fs;
    if coin plan.p_delay then
      fs := Delay (1 + Prng.Drbg.uniform_int drbg (max 1 plan.max_delay)) :: !fs;
    if coin plan.p_duplicate then fs := Duplicate :: !fs;
    if coin plan.p_reorder then fs := Reorder :: !fs;
    List.rev !fs
  end

let send ?(attempt = 0) t ~sender frame =
  t.c_sent <- t.c_sent + 1;
  Telemetry.Counter.incr t_sent;
  if attempt > 0 then begin
    t.c_retransmitted <- t.c_retransmitted + 1;
    Telemetry.Counter.incr t_retransmitted
  end;
  let key = (t.stage, sender) in
  (* attempt 0 keeps the historical label so every existing seed's fault
     schedule is unchanged; retransmissions re-roll their faults under an
     attempt-suffixed fork *)
  let drbg =
    Prng.Drbg.fork t.root
      (if attempt = 0 then
         Printf.sprintf "fault/r%d/%s/c%d" t.round (stage_to_string t.stage) sender
       else
         Printf.sprintf "fault/r%d/%s/c%d/t%d" t.round (stage_to_string t.stage) sender attempt)
  in
  let faults =
    match Hashtbl.find_opt t.script (t.round, t.stage, sender) with
    | Some fs -> fs
    | None -> sample_faults drbg (plan_for t sender) (Bytes.length frame)
  in
  let previous = Hashtbl.find_opt t.history key in
  Hashtbl.replace t.history key (t.round, frame);
  if List.mem Drop faults then begin
    t.c_dropped <- t.c_dropped + 1;
    Telemetry.Counter.incr t_dropped
  end
  else begin
    let payload = ref frame in
    let tick = ref 0 in
    let copies = ref 1 in
    let mutated = ref false in
    let reordered = ref false in
    List.iter
      (fun f ->
        match f with
        | Drop -> ()
        | Replay_previous -> (
            match previous with
            | Some (r, old) when r < t.round ->
                payload := old;
                t.c_replayed <- t.c_replayed + 1;
                Telemetry.Counter.incr t_replayed;
                mutated := true
            | _ -> ())
        | Truncate_at off ->
            let off = max 0 (min off (Bytes.length !payload)) in
            if off < Bytes.length !payload then begin
              payload := Bytes.sub !payload 0 off;
              mutated := true
            end
        | Flip_bytes k ->
            if Bytes.length !payload > 0 then begin
              let b = Bytes.copy !payload in
              for _ = 1 to max 1 k do
                let pos = Prng.Drbg.uniform_int drbg (Bytes.length b) in
                let mask = 1 + Prng.Drbg.uniform_int drbg 255 in
                Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask))
              done;
              payload := b;
              mutated := true
            end
        | Delay dt -> tick := !tick + max 0 dt
        | Duplicate ->
            incr copies;
            t.c_duplicated <- t.c_duplicated + 1;
            Telemetry.Counter.incr t_duplicated
        | Reorder ->
            reordered := true;
            t.c_reordered <- t.c_reordered + 1;
            Telemetry.Counter.incr t_reordered)
      faults;
    if !mutated then begin
      t.c_mutated <- t.c_mutated + 1;
      Telemetry.Counter.incr t_mutated
    end;
    let base_seq =
      if !reordered then t.next_seq + 1000 + Prng.Drbg.uniform_int drbg 1000 else t.next_seq
    in
    t.next_seq <- t.next_seq + 1;
    for c = 0 to !copies - 1 do
      t.queue <-
        { tick = !tick + c; seq = base_seq + (c * 10000); q_sender = sender; frame = !payload }
        :: t.queue
    done
  end

(* a reliability layer above us acked this frame after >= 1 retransmit:
   the loss was transient, not a dropout *)
let note_recovered t =
  t.c_recovered <- t.c_recovered + 1;
  Telemetry.Counter.incr t_recovered

let deliver ?deadline:dl t =
  let dl = match dl with Some d -> d | None -> t.default_deadline in
  let on_time, late = List.partition (fun q -> q.tick <= dl) t.queue in
  t.queue <- [];
  t.c_late <- t.c_late + List.length late;
  Telemetry.Counter.add t_late (List.length late);
  let sorted =
    List.sort (fun a b -> if a.tick <> b.tick then compare a.tick b.tick else compare a.seq b.seq) on_time
  in
  t.c_delivered <- t.c_delivered + List.length sorted;
  Telemetry.Counter.add t_delivered (List.length sorted);
  List.map (fun q -> (q.q_sender, q.frame)) sorted

(* ------------------------------------------------------------------ *)
(* The shared transport signature                                      *)
(* ------------------------------------------------------------------ *)

module Transport_intf = struct
  type endpoint = {
    ep_begin_stage : round:int -> stage:stage -> unit;
    ep_send : attempt:int -> sender:int -> Bytes.t -> unit;
    ep_deliver : deadline:int option -> (int * Bytes.t) list;
    ep_note_recovered : unit -> unit;
    ep_deadline : unit -> int;
    ep_counters : unit -> counters;
  }

  module type S = sig
    type t

    val create :
      ?plan:plan ->
      ?link_plans:(int * plan) list ->
      ?script:((int * stage * int) * fault list) list ->
      ?deadline:int ->
      seed:string ->
      unit ->
      t

    val deadline : t -> int
    val begin_stage : t -> round:int -> stage:stage -> unit
    val send : ?attempt:int -> t -> sender:int -> Bytes.t -> unit
    val note_recovered : t -> unit
    val deliver : ?deadline:int -> t -> (int * Bytes.t) list
    val counters : t -> counters
    val endpoint : t -> endpoint
  end
end

let endpoint (net : t) : Transport_intf.endpoint =
  {
    Transport_intf.ep_begin_stage = (fun ~round ~stage -> begin_stage net ~round ~stage);
    ep_send = (fun ~attempt ~sender frame -> send ~attempt net ~sender frame);
    ep_deliver =
      (fun ~deadline ->
        match deadline with Some d -> deliver ~deadline:d net | None -> deliver net);
    ep_note_recovered = (fun () -> note_recovered net);
    ep_deadline = (fun () -> deadline net);
    ep_counters = (fun () -> counters net);
  }
