type t = {
  key : Bytes.t;
  nonce : Bytes.t;
  mutable block : Bytes.t; (* current keystream block *)
  mutable counter : int; (* next block index *)
  mutable pos : int; (* consumed bytes within [block] *)
  mutable cached_gauss : float option;
}

let c_bytes = Telemetry.Counter.make "drbg.bytes"

let refill t =
  Telemetry.Counter.add c_bytes 64;
  t.block <- Chacha20.block ~key:t.key ~counter:t.counter ~nonce:t.nonce;
  t.counter <- t.counter + 1;
  t.pos <- 0

let create seed =
  let key = Hashfn.Sha256.digest seed in
  let t =
    { key; nonce = Bytes.make 12 '\000'; block = Bytes.empty; counter = 0; pos = 64; cached_gauss = None }
  in
  t

let create_string s = create (Bytes.of_string s)

let fork t label =
  let h = Hashfn.Sha256.init () in
  Hashfn.Sha256.update h t.key;
  Hashfn.Sha256.update_string h "/fork/";
  Hashfn.Sha256.update_string h label;
  {
    key = Hashfn.Sha256.finalize h;
    nonce = Bytes.make 12 '\000';
    block = Bytes.empty;
    counter = 0;
    pos = 64;
    cached_gauss = None;
  }

let byte t =
  if t.pos >= 64 then refill t;
  let v = Char.code (Bytes.get t.block t.pos) in
  t.pos <- t.pos + 1;
  v

let bytes t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (byte t))
  done;
  out

let bits t n =
  if n < 0 || n > 62 then invalid_arg "Drbg.bits";
  let nbytes = (n + 7) / 8 in
  let v = ref 0 in
  for _ = 1 to nbytes do
    v := (!v lsl 8) lor byte t
  done;
  !v land ((1 lsl n) - 1)

let uniform_int t bound =
  if bound < 1 then invalid_arg "Drbg.uniform_int";
  if bound = 1 then 0
  else begin
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    let nbits = width 0 (bound - 1) in
    let rec draw () =
      let v = bits t nbits in
      if v < bound then v else draw ()
    in
    draw ()
  end

let float t =
  Stdlib.float_of_int (bits t 53) *. 0x1p-53

let gaussian t =
  match t.cached_gauss with
  | Some v ->
      t.cached_gauss <- None;
      v
  | None ->
      (* Box–Muller; u1 in (0,1] to avoid log 0 *)
      let u1 = 1.0 -. float t in
      let u2 = float t in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.cached_gauss <- Some (r *. sin theta);
      r *. cos theta

let gaussian_discrete t ~m =
  let v = gaussian t *. m in
  int_of_float (Float.round v)

let rand26 t () = bits t 26
