(** ChaCha20 block function (RFC 8439).

    This is the deterministic PRG at the heart of every sampled object in
    the protocol: the shared random vectors a_0..a_k, batch-verification
    coefficients, Shamir polynomial coefficients, and the PRG-SecAgg masks
    of the ACORN baseline. Verified against the RFC 8439 test vectors. *)

(** [block ~key ~counter ~nonce] is the 64-byte keystream block for the
    32-byte [key], 12-byte [nonce] and 32-bit block [counter].
    @raise Invalid_argument on wrong key/nonce sizes. *)
val block : key:Bytes.t -> counter:int -> nonce:Bytes.t -> Bytes.t

(** [keystream ~key ~nonce ~off len] produces [len] keystream bytes
    starting at byte offset [off] (any alignment) of the stream. *)
val keystream : key:Bytes.t -> nonce:Bytes.t -> off:int -> int -> Bytes.t
