(** Deterministic random bit generator on ChaCha20.

    A [t] is a seekable, forkable random stream: the same seed always
    yields the same values, which is how the server and every client agree
    on the random vectors a_0, …, a_k without transmitting them (§4.4.2 of
    the paper — the seed is [H(s, pk_1 ‖ … ‖ pk_n)]). *)

type t

(** [create seed] builds a generator from a seed of any length (the seed is
    hashed to a 32-byte ChaCha20 key). *)
val create : Bytes.t -> t

(** [create_string seed] — convenience wrapper over {!create}. *)
val create_string : string -> t

(** [fork t label] derives an independent stream; distinct labels give
    computationally independent streams. The parent is unaffected. *)
val fork : t -> string -> t

(** [byte t] draws one uniform byte. *)
val byte : t -> int

(** [bytes t n] draws [n] uniform bytes. *)
val bytes : t -> int -> Bytes.t

(** [bits t n] draws a uniform integer in [0, 2^n), [0 <= n <= 62]. *)
val bits : t -> int -> int

(** [uniform_int t bound] draws uniformly from [0, bound) by rejection
    sampling; [bound >= 1]. *)
val uniform_int : t -> int -> int

(** [float t] draws a uniform float in [0, 1) with 53 bits of precision. *)
val float : t -> float

(** [gaussian t] draws a standard normal via Box–Muller (caches the paired
    variate). *)
val gaussian : t -> float

(** [gaussian_discrete t ~m] draws [round(N(0, m^2))] — the discretized
    normal samples of Algorithm 2 with discretization factor M. *)
val gaussian_discrete : t -> m:float -> int

(** [rand26 t] is a supplier of uniform 26-bit values (for
    {!Bigint.random}). *)
val rand26 : t -> unit -> int
