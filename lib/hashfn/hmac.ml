let block_size = 64

let sha256 ~key data =
  let key = if Bytes.length key > block_size then Sha256.digest key else key in
  let k = Bytes.make block_size '\000' in
  Bytes.blit key 0 k 0 (Bytes.length key);
  let ipad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x36)) k in
  let opad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x5c)) k in
  let inner = Sha256.init () in
  Sha256.update inner ipad;
  Sha256.update inner data;
  let outer = Sha256.init () in
  Sha256.update outer opad;
  Sha256.update outer (Sha256.finalize inner);
  Sha256.finalize outer

let expand ~key ~info len =
  if len > 255 * 32 then invalid_arg "Hmac.expand: too long";
  let out = Buffer.create len in
  let prev = ref Bytes.empty in
  let counter = ref 1 in
  while Buffer.length out < len do
    let msg = Bytes.concat Bytes.empty [ !prev; Bytes.of_string info; Bytes.make 1 (Char.chr !counter) ] in
    let t = sha256 ~key msg in
    prev := t;
    incr counter;
    Buffer.add_bytes out t
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len
