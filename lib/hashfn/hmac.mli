(** HMAC (RFC 2104) over SHA-256, plus a small HKDF-style expander.

    Used to derive the symmetric keys for pairwise client channels from
    Diffie–Hellman shared points, and to key the PRG-SecAgg masks in the
    ACORN baseline. *)

(** [sha256 ~key data] is HMAC-SHA256 (32 bytes). *)
val sha256 : key:Bytes.t -> Bytes.t -> Bytes.t

(** [expand ~key ~info len] derives [len] bytes from [key] and the context
    string [info] by counter-mode HMAC (HKDF-Expand shape).
    @raise Invalid_argument if [len > 255 * 32]. *)
val expand : key:Bytes.t -> info:string -> int -> Bytes.t
