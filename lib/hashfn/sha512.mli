(** SHA-512 (FIPS 180-4).

    Used where a 64-byte digest is convenient (wide reduction of hashes to
    scalars modulo the group order without bias). Verified against FIPS
    vectors in the test suite. *)

type ctx

val init : unit -> ctx
val update : ctx -> Bytes.t -> unit
val update_string : ctx -> string -> unit

(** 64-byte digest; context must not be reused. *)
val finalize : ctx -> Bytes.t

val digest : Bytes.t -> Bytes.t
val digest_string : string -> Bytes.t
val hex_digest_string : string -> string
