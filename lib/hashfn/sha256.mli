(** SHA-256 (FIPS 180-4).

    Used for Fiat–Shamir transcripts, shared-seed derivation
    [H(s, pk_1 .. pk_n)] and generator derivation. Implemented on native
    ints with explicit 32-bit masking; verified against the FIPS test
    vectors in the test suite. *)

type ctx

(** Fresh hashing context. *)
val init : unit -> ctx

(** [update ctx b] absorbs all of [b]. *)
val update : ctx -> Bytes.t -> unit

(** [update_string ctx s] absorbs all of [s]. *)
val update_string : ctx -> string -> unit

(** [finalize ctx] returns the 32-byte digest. The context must not be
    reused afterwards. *)
val finalize : ctx -> Bytes.t

(** One-shot digest of a byte buffer. *)
val digest : Bytes.t -> Bytes.t

(** One-shot digest of a string. *)
val digest_string : string -> Bytes.t

(** Digest rendered as lowercase hex (convenience for tests/logging). *)
val hex_digest_string : string -> string
