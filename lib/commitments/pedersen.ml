module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type key = { g : Point.t; h : Point.t; g_table : Point.Table.table; h_table : Point.Table.table }

let make_key ~g ~h = { g; h; g_table = Point.Table.make g; h_table = Point.Table.make h }
let of_tables ~g_table ~h_table ~g ~h = { g; h; g_table; h_table }

let commit key ~value ~blind =
  Point.add (Point.Table.mul key.g_table value) (Point.Table.mul key.h_table blind)

let commit_small key ~value ~blind =
  Point.add (Point.Table.mul_small key.g_table value) (Point.Table.mul key.h_table blind)

let verify_open key c ~value ~blind = Point.equal c (commit key ~value ~blind)

let commit_vec ~g_table ~bases ~values ~blind =
  if Array.length bases <> Array.length values then invalid_arg "Pedersen.commit_vec: length mismatch";
  (* d independent g^{u_l} w_l^{r} commitments — the client's dominant
     per-round cost — computed over coordinate chunks on the pool *)
  Parallel.parallel_init (Array.length values) (fun l ->
      Point.add (Point.Table.mul_small g_table values.(l)) (Point.mul blind bases.(l)))

let add c1 c2 =
  if Array.length c1 <> Array.length c2 then invalid_arg "Pedersen.add: length mismatch";
  Array.map2 Point.add c1 c2

module Elgamal = struct
  type t = { c : Point.t; d : Point.t }

  let commit key ~value ~blind =
    { c = commit_small key ~value ~blind; d = Point.Table.mul key.g_table blind }

  let add a b = { c = Point.add a.c b.c; d = Point.add a.d b.d }

  let verify_open key t ~value ~blind =
    Point.equal t.c (commit_small key ~value ~blind)
    && Point.equal t.d (Point.Table.mul key.g_table blind)
end
