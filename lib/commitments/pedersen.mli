(** Pedersen commitments (computationally binding, perfectly hiding),
    including the paper's vector form with a {e shared} blind:

      y_i = C(u_i, r_i) = (g^{u_i1} w_1^{r_i}, …, g^{u_id} w_d^{r_i})

    One random scalar r_i blinds the whole vector (Eqn 2) — this is half
    of the hybrid commitment scheme; the other half (VSSS on r_i) lives in
    the [vsss] library. *)

module Scalar = Curve25519.Scalar
module Point = Curve25519.Point

type key = {
  g : Point.t;  (** value base *)
  h : Point.t;  (** blind base *)
  g_table : Point.Table.table;
  h_table : Point.Table.table;
}

(** [make_key ~g ~h] precomputes fixed-base tables for both bases. *)
val make_key : g:Point.t -> h:Point.t -> key

(** [of_tables ~g_table ~h_table ~g ~h] assembles a key from prebuilt
    (e.g. cache-loaded) tables instead of rebuilding them; the caller is
    responsible for each table actually matching its base. *)
val of_tables :
  g_table:Point.Table.table -> h_table:Point.Table.table -> g:Point.t -> h:Point.t -> key

(** [commit key ~value ~blind] = g^value · h^blind. *)
val commit : key -> value:Scalar.t -> blind:Scalar.t -> Point.t

(** [commit_small key ~value ~blind] for native-int values (gradient
    coordinates, inner products) — uses the short-exponent fast path. *)
val commit_small : key -> value:int -> blind:Scalar.t -> Point.t

(** [verify_open key c ~value ~blind] checks c = g^value · h^blind. *)
val verify_open : key -> Point.t -> value:Scalar.t -> blind:Scalar.t -> bool

(** [commit_vec ~g_table ~bases ~values ~blind] is the shared-blind vector
    commitment of Eqn 2: element l is g^{values.(l)} · bases.(l)^blind.
    @raise Invalid_argument on length mismatch. *)
val commit_vec :
  g_table:Point.Table.table -> bases:Point.t array -> values:int array -> blind:Scalar.t -> Point.t array

(** Homomorphism: [add c1 c2] commits to the coordinate-wise sum with
    blind the sum of blinds. *)
val add : Point.t array -> Point.t array -> Point.t array

(** ElGamal-style commitment (c = g^v·h^r, d = g^r) — per-coordinate
    independent blinds; used by the RoFL baseline. *)
module Elgamal : sig
  type t = { c : Point.t; d : Point.t }

  val commit : key -> value:int -> blind:Scalar.t -> t
  val add : t -> t -> t
  val verify_open : key -> t -> value:int -> blind:Scalar.t -> bool
end
