#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

/* Monotonic clock in nanoseconds. CLOCK_MONOTONIC never jumps backwards
   under NTP adjustments, unlike gettimeofday. */
CAMLprim value risefl_telemetry_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}
