(** Operation-counting and tracing subsystem.

    The library is off by default: every counter increment and span entry
    first checks one atomic flag and returns immediately when disabled, so
    instrumented hot paths (point arithmetic, hashing, serialization) pay a
    single load per call.  When enabled, counters write to per-domain shards
    — plain [int] cells owned by the incrementing domain — so instrumentation
    under [Parallel] is contention-free and cannot perturb verdicts.  Shards
    are merged only at {!snapshot} time.

    No dependencies: the monotonic clock is a tiny C stub
    ([clock_gettime(CLOCK_MONOTONIC)]) and JSON support is a self-contained
    minimal implementation, so base libraries (hashfn, prng, curve25519) can
    link telemetry without pulling in [unix]. *)

(** Monotonic wall-clock helpers — the single timing authority for the repo
    (driver stage timings, baselines, bench all route through here). *)
module Clock : sig
  val now_ns : unit -> int64
  (** Nanoseconds on a monotonic clock with an arbitrary origin. *)

  val now_s : unit -> float
  (** Seconds on the same monotonic clock. *)

  val time : (unit -> 'a) -> 'a * float
  (** [time f] runs [f] and returns its result with elapsed seconds. *)
end

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter shard and drop all recorded spans.  Counters stay
    registered. *)

(** Named monotone counters.  [make] registers a global name (idempotent per
    name: two [make "x"] calls share the cell).  Increments from any domain
    land in that domain's shard; [value]/[snapshot] merge shards. *)
module Counter : sig
  type t

  val make : string -> t
  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Sum across all domain shards. *)
end

(** Named max-observed watermarks (peak live words, largest in-flight
    batch, ...).  Unlike counters, gauges merge by [max] rather than sum
    and are {e not} expected to be bit-identical across job counts — they
    are reported in a separate snapshot section.  Observations go through
    one lock; sample at stage boundaries and flush points, not per
    element. *)
module Gauge : sig
  type t

  val make : string -> t
  (** Idempotent per name, like {!Counter.make}. *)

  val observe : t -> int -> unit
  (** Raise the watermark to [v] if larger.  No-op while disabled. *)

  val value : t -> int
  (** The maximum observed since the last {!reset} (0 if never). *)
end

val live_words : unit -> int
(** Live words on the major heap right now, via [Gc.stat] — precise but
    walks the heap; sample at stage boundaries only. *)

val heap_words : unit -> int
(** Total heap words (live + free chunks) via [Gc.quick_stat] — O(1), the
    closer RSS proxy; safe to sample at per-batch flush points. *)

type span = {
  path : string list;  (** Root-to-leaf span names, e.g. [["round"; "proof.server"]]. *)
  attrs : (string * string) list;
  start_s : float;  (** Monotonic-clock start (arbitrary origin). *)
  dur_s : float;
}

(** Hierarchical wall-time spans.  Nesting is tracked per domain via a
    domain-local stack; completed spans are appended to a global list. *)
module Span : sig
  val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Runs the thunk inside a named span.  When telemetry is disabled this
      is exactly the thunk call — no clock read, no allocation. *)
end

(** Minimal JSON values — enough for snapshot export/import without a
    third-party dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val parse : string -> (t, string) result

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] otherwise. *)
end

type snapshot = {
  counters : (string * int) list;  (** Every registered counter, sorted by name. *)
  gauges : (string * int) list;
      (** Every registered gauge (max-observed), sorted by name.  Kept
          separate from [counters] because watermark values legitimately
          vary run to run, while counter sums are jobs-invariant. *)
  spans : span list;  (** In completion order. *)
}

val snapshot : unit -> snapshot

val snapshot_to_json : snapshot -> Json.t
val snapshot_of_json : Json.t -> (snapshot, string) result

val write_json : string -> snapshot -> unit
(** Write the snapshot to a file as JSON. *)

val to_table : snapshot -> string
(** Aligned console rendering: counter table followed by the span tree. *)
