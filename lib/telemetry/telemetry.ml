module Clock = struct
  external now_ns : unit -> int64 = "risefl_telemetry_now_ns"

  let now_s () = Int64.to_float (now_ns ()) *. 1e-9

  let time f =
    let t0 = now_ns () in
    let r = f () in
    let t1 = now_ns () in
    (r, Int64.to_float (Int64.sub t1 t0) *. 1e-9)
end

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* Registry of counter names plus per-domain shard arrays.

   Ownership discipline that makes increments contention-free:
   - [registry_lock] protects name registration and growth of the *outer*
     [shards] array (which only ever copies inner-array refs, so concurrent
     writers into an inner array are unaffected by a swap).
   - an inner shard array is allocated and grown only by the domain that
     owns it, so the owner's plain [int] writes never race a resize copy.
   - snapshot/value read other domains' shards without synchronisation;
     int reads are word-atomic, so the worst case is a slightly stale sum
     if a parallel region is still running (we only snapshot between
     regions). *)
let registry_lock = Mutex.create ()

let counter_names : string array ref = ref (Array.make 16 "")
let counter_count = ref 0
let counter_ids : (string, int) Hashtbl.t = Hashtbl.create 64

(* shards.(domain_id) is that domain's int array, [||] until first use *)
let shards : int array array ref = ref (Array.make 8 [||])

type counter = int (* index into every shard *)

module Counter = struct
  type t = counter

  let make name =
    Mutex.lock registry_lock;
    let id =
      match Hashtbl.find_opt counter_ids name with
      | Some id -> id
      | None ->
          let id = !counter_count in
          if id >= Array.length !counter_names then begin
            let bigger = Array.make (2 * Array.length !counter_names) "" in
            Array.blit !counter_names 0 bigger 0 id;
            counter_names := bigger
          end;
          !counter_names.(id) <- name;
          incr counter_count;
          Hashtbl.add counter_ids name id;
          id
    in
    Mutex.unlock registry_lock;
    id

  (* Slow path: ensure this domain's shard exists and covers index [id].
     Only the owning domain runs this for its own slot. *)
  let grow_shard did id =
    Mutex.lock registry_lock;
    let outer = !shards in
    let outer =
      if did < Array.length outer then outer
      else begin
        let bigger = Array.make (max (did + 1) (2 * Array.length outer)) [||] in
        Array.blit outer 0 bigger 0 (Array.length outer);
        shards := bigger;
        bigger
      end
    in
    let inner = outer.(did) in
    let cap = max 64 (max (id + 1) (2 * Array.length inner)) in
    let bigger = Array.make cap 0 in
    Array.blit inner 0 bigger 0 (Array.length inner);
    outer.(did) <- bigger;
    Mutex.unlock registry_lock;
    bigger

  let add t n =
    if Atomic.get enabled_flag then begin
      let did = (Domain.self () :> int) in
      let outer = !shards in
      let inner =
        if did < Array.length outer && t < Array.length outer.(did) then
          outer.(did)
        else grow_shard did t
      in
      inner.(t) <- inner.(t) + n
    end

  let incr t = add t 1

  let value t =
    Mutex.lock registry_lock;
    let outer = !shards in
    let sum = ref 0 in
    Array.iter (fun inner -> if t < Array.length inner then sum := !sum + inner.(t)) outer;
    Mutex.unlock registry_lock;
    !sum
end

(* Gauges: named max-observed watermarks (peak live words, largest batch
   in flight, ...). Unlike counters they are not additive across domains,
   so they live in a single lock-protected table — observations happen at
   stage boundaries and flush points, never in per-element hot loops. *)
let gauges_lock = Mutex.create ()
let gauge_names : string array ref = ref (Array.make 16 "")
let gauge_values : int array ref = ref (Array.make 16 0)
let gauge_count = ref 0
let gauge_ids : (string, int) Hashtbl.t = Hashtbl.create 64

type gauge = int

module Gauge = struct
  type t = gauge

  let make name =
    Mutex.lock gauges_lock;
    let id =
      match Hashtbl.find_opt gauge_ids name with
      | Some id -> id
      | None ->
          let id = !gauge_count in
          if id >= Array.length !gauge_names then begin
            let bigger_n = Array.make (2 * Array.length !gauge_names) "" in
            let bigger_v = Array.make (2 * Array.length !gauge_values) 0 in
            Array.blit !gauge_names 0 bigger_n 0 id;
            Array.blit !gauge_values 0 bigger_v 0 id;
            gauge_names := bigger_n;
            gauge_values := bigger_v
          end;
          !gauge_names.(id) <- name;
          incr gauge_count;
          Hashtbl.add gauge_ids name id;
          id
    in
    Mutex.unlock gauges_lock;
    id

  let observe t v =
    if Atomic.get enabled_flag then begin
      Mutex.lock gauges_lock;
      if v > !gauge_values.(t) then !gauge_values.(t) <- v;
      Mutex.unlock gauges_lock
    end

  let value t =
    Mutex.lock gauges_lock;
    let v = !gauge_values.(t) in
    Mutex.unlock gauges_lock;
    v
end

(* Live major-heap words right now: precise (walks the heap) — sample at
   stage boundaries only. *)
let live_words () =
  let st = Gc.stat () in
  st.Gc.live_words

(* Total heap words (allocated chunks, live or free): O(1) to read, the
   closer proxy for resident set size — safe to sample at flush points. *)
let heap_words () =
  let st = Gc.quick_stat () in
  st.Gc.heap_words

type span = {
  path : string list;
  attrs : (string * string) list;
  start_s : float;
  dur_s : float;
}

let spans_lock = Mutex.create ()
let completed_spans : span list ref = ref []

(* per-domain stack of open span names, innermost first *)
let span_stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

module Span = struct
  let with_ ?(attrs = []) name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let stack = Domain.DLS.get span_stack in
      let saved = !stack in
      stack := name :: saved;
      let path = List.rev !stack in
      let t0 = Clock.now_s () in
      let finish () =
        let dur = Clock.now_s () -. t0 in
        stack := saved;
        Mutex.lock spans_lock;
        completed_spans := { path; attrs; start_s = t0; dur_s = dur } :: !completed_spans;
        Mutex.unlock spans_lock
      in
      match f () with
      | r ->
          finish ();
          r
      | exception e ->
          finish ();
          raise e
    end
end

let reset () =
  Mutex.lock registry_lock;
  Array.iter (fun inner -> Array.fill inner 0 (Array.length inner) 0) !shards;
  Mutex.unlock registry_lock;
  Mutex.lock gauges_lock;
  Array.fill !gauge_values 0 (Array.length !gauge_values) 0;
  Mutex.unlock gauges_lock;
  Mutex.lock spans_lock;
  completed_spans := [];
  Mutex.unlock spans_lock

(* Gauges are kept out of [counters] on purpose: counter sums are
   bit-identical across job counts (and asserted so by the tests), while
   a live-words watermark legitimately varies run to run. *)
type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  spans : span list;
}

let snapshot () =
  Mutex.lock registry_lock;
  let n = !counter_count in
  let names = Array.sub !counter_names 0 n in
  let outer = !shards in
  let sums = Array.make n 0 in
  Array.iter
    (fun inner ->
      for id = 0 to min n (Array.length inner) - 1 do
        sums.(id) <- sums.(id) + inner.(id)
      done)
    outer;
  Mutex.unlock registry_lock;
  let counters =
    Array.to_list (Array.mapi (fun id name -> (name, sums.(id))) names)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Mutex.lock gauges_lock;
  let ng = !gauge_count in
  let gnames = Array.sub !gauge_names 0 ng in
  let gvals = Array.sub !gauge_values 0 ng in
  Mutex.unlock gauges_lock;
  let gauges =
    Array.to_list (Array.mapi (fun id name -> (name, gvals.(id))) gnames)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Mutex.lock spans_lock;
  let spans = List.rev !completed_spans in
  Mutex.unlock spans_lock;
  { counters; gauges; spans }

(* ------------------------------------------------------------------ *)
(* Minimal self-contained JSON                                         *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f

  let to_string t =
    let buf = Buffer.create 1024 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num f -> Buffer.add_string buf (num_to_string f)
      | Str s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
      | Arr xs ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char buf ',';
              go x)
            xs;
          Buffer.add_char buf ']'
      | Obj kvs ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              escape buf k;
              Buffer.add_string buf "\":";
              go v)
            kvs;
          Buffer.add_char buf '}'
    in
    go t;
    Buffer.contents buf

  exception Parse_error of string

  let parse s =
    let pos = ref 0 in
    let len = String.length s in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if !pos < len && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let n = String.length word in
      if !pos + n <= len && String.sub s !pos n = word then begin
        pos := !pos + n;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= len then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= len then fail "bad \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail "bad \\u escape"
                in
                pos := !pos + 4;
                (* only BMP codepoints we emit ourselves: control chars *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < len && is_num_char s.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let items = ref [] in
            let rec go () =
              items := parse_value () :: !items;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  go ()
              | Some ']' -> advance ()
              | _ -> fail "expected ',' or ']'"
            in
            go ();
            Arr (List.rev !items)
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let items = ref [] in
            let rec go () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              items := (k, v) :: !items;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  go ()
              | Some '}' -> advance ()
              | _ -> fail "expected ',' or '}'"
            in
            go ();
            Obj (List.rev !items)
          end
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> len then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Snapshot <-> JSON                                                   *)
(* ------------------------------------------------------------------ *)

let span_to_json sp =
  Json.Obj
    [
      ("path", Json.Arr (List.map (fun p -> Json.Str p) sp.path));
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) sp.attrs));
      ("start_s", Json.Num sp.start_s);
      ("dur_s", Json.Num sp.dur_s);
    ]

let snapshot_to_json snap =
  Json.Obj
    [
      ("schema", Json.Num 1.1);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) snap.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) snap.gauges));
      ("spans", Json.Arr (List.map span_to_json snap.spans));
    ]

let span_of_json j =
  let str_of = function Json.Str s -> Ok s | _ -> Error "expected string" in
  let num_of = function Json.Num f -> Ok f | _ -> Error "expected number" in
  let ( let* ) = Result.bind in
  let* path =
    match Json.member "path" j with
    | Some (Json.Arr xs) ->
        List.fold_right
          (fun x acc ->
            let* acc = acc in
            let* s = str_of x in
            Ok (s :: acc))
          xs (Ok [])
    | _ -> Error "span: missing path"
  in
  let* attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj kvs) ->
        List.fold_right
          (fun (k, v) acc ->
            let* acc = acc in
            let* s = str_of v in
            Ok ((k, s) :: acc))
          kvs (Ok [])
    | None -> Ok []
    | _ -> Error "span: bad attrs"
  in
  let* start_s =
    match Json.member "start_s" j with Some v -> num_of v | None -> Error "span: missing start_s"
  in
  let* dur_s =
    match Json.member "dur_s" j with Some v -> num_of v | None -> Error "span: missing dur_s"
  in
  Ok { path; attrs; start_s; dur_s }

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let* counters =
    match Json.member "counters" j with
    | Some (Json.Obj kvs) ->
        List.fold_right
          (fun (k, v) acc ->
            let* acc = acc in
            match v with
            | Json.Num f -> Ok ((k, int_of_float f) :: acc)
            | _ -> Error ("counter " ^ k ^ ": expected number"))
          kvs (Ok [])
    | _ -> Error "snapshot: missing counters"
  in
  (* [gauges] is absent from schema-1.0 snapshots; treat missing as empty *)
  let* gauges =
    match Json.member "gauges" j with
    | Some (Json.Obj kvs) ->
        List.fold_right
          (fun (k, v) acc ->
            let* acc = acc in
            match v with
            | Json.Num f -> Ok ((k, int_of_float f) :: acc)
            | _ -> Error ("gauge " ^ k ^ ": expected number"))
          kvs (Ok [])
    | None -> Ok []
    | _ -> Error "snapshot: bad gauges"
  in
  let* spans =
    match Json.member "spans" j with
    | Some (Json.Arr xs) ->
        List.fold_right
          (fun x acc ->
            let* acc = acc in
            let* sp = span_of_json x in
            Ok (sp :: acc))
          xs (Ok [])
    | None -> Ok []
    | _ -> Error "snapshot: bad spans"
  in
  Ok { counters; gauges; spans }

let write_json path snap =
  let oc = open_out path in
  output_string oc (Json.to_string (snapshot_to_json snap));
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Console table                                                       *)
(* ------------------------------------------------------------------ *)

let to_table snap =
  let buf = Buffer.create 1024 in
  let nonzero = List.filter (fun (_, v) -> v <> 0) snap.counters in
  if nonzero <> [] then begin
    let wname =
      List.fold_left (fun acc (k, _) -> max acc (String.length k)) 7 nonzero
    in
    Buffer.add_string buf (Printf.sprintf "%-*s  %14s\n" wname "counter" "value");
    Buffer.add_string buf (String.make (wname + 16) '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-*s  %14d\n" wname k v))
      nonzero
  end;
  let gnonzero = List.filter (fun (_, v) -> v <> 0) snap.gauges in
  if gnonzero <> [] then begin
    if nonzero <> [] then Buffer.add_char buf '\n';
    let wname =
      List.fold_left (fun acc (k, _) -> max acc (String.length k)) 11 gnonzero
    in
    Buffer.add_string buf (Printf.sprintf "%-*s  %14s\n" wname "gauge (max)" "value");
    Buffer.add_string buf (String.make (wname + 16) '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-*s  %14d\n" wname k v))
      gnonzero
  end;
  if snap.spans <> [] then begin
    if nonzero <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf "spans (ms):\n";
    (* completion order is children-before-parents; render in start order
       with indentation by depth instead *)
    let ordered =
      List.stable_sort (fun a b -> compare a.start_s b.start_s) snap.spans
    in
    List.iter
      (fun sp ->
        let depth = max 0 (List.length sp.path - 1) in
        let name = match List.rev sp.path with x :: _ -> x | [] -> "?" in
        let attrs =
          match sp.attrs with
          | [] -> ""
          | kvs ->
              "  [" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "]"
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%-*s %10.3f%s\n" (String.make (2 * depth) ' ')
             (max 1 (30 - (2 * depth)))
             name (sp.dur_s *. 1000.0) attrs))
      ordered
  end;
  Buffer.contents buf
