(* Lanczos g=7, n=9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028; 771.32342877765313;
    -176.61502916214059; 12.507343278686905; -0.13857109526572012; 9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec ln_gamma x =
  if x <= 0.0 then invalid_arg "Special.ln_gamma: requires x > 0"
  else if x < 0.5 then
    (* reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
    log (Float.pi /. sin (Float.pi *. x)) -. ln_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

(* Series expansion of P(a,x): converges quickly for x < a + 1. *)
let gamma_p_series a x =
  let eps = 1e-16 in
  let sum = ref (1.0 /. a) in
  let term = ref (1.0 /. a) in
  let n = ref 1 in
  let continue = ref true in
  while !continue do
    term := !term *. x /. (a +. float_of_int !n);
    sum := !sum +. !term;
    if abs_float !term < abs_float !sum *. eps || !n > 10_000 then continue := false;
    incr n
  done;
  !sum *. exp ((a *. log x) -. x -. ln_gamma a)

(* Lentz continued fraction for Q(a,x): converges quickly for x > a + 1. *)
let gamma_q_cf a x =
  let eps = 1e-16 in
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue do
    let fi = float_of_int !i in
    let an = -.fi *. (fi -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if abs_float !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) < eps || !i > 10_000 then continue := false;
    incr i
  done;
  exp ((a *. log x) -. x -. ln_gamma a) *. !h

let gamma_p a x =
  if a <= 0.0 || x < 0.0 then invalid_arg "Special.gamma_p";
  if x = 0.0 then 0.0 else if x < a +. 1.0 then gamma_p_series a x else 1.0 -. gamma_q_cf a x

let gamma_q a x =
  if a <= 0.0 || x < 0.0 then invalid_arg "Special.gamma_q";
  if x = 0.0 then 1.0 else if x < a +. 1.0 then 1.0 -. gamma_p_series a x else gamma_q_cf a x
