(** The χ²_k distribution and the extreme-tail quantile γ_{k,ε} of
    Algorithm 2: the bound such that Pr[t < γ_{k,ε}] = 1 − ε for
    t ~ χ²_k, with ε as small as 2^−128. *)

(** [cdf ~k x] = Pr[t <= x], t ~ χ²_k. *)
val cdf : k:int -> float -> float

(** [sf ~k x] = Pr[t > x] (survival function). *)
val sf : k:int -> float -> float

(** [quantile_upper ~k ~eps] is γ with sf ~k γ = eps (so
    Pr[t < γ] = 1 − eps). Accurate for eps down to ~1e-300. *)
val quantile_upper : k:int -> eps:float -> float
