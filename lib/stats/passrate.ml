type params = { k : int; eps : float; d : int; m_factor : float }

let gamma p = Chisq.quantile_upper ~k:p.k ~eps:p.eps

let rounding_term p = sqrt (float_of_int p.k *. float_of_int p.d) /. (2.0 *. p.m_factor)

let b0 p ~b =
  let g = gamma p in
  let s = sqrt g +. rounding_term p in
  Float.round (ceil (b *. b *. p.m_factor *. p.m_factor *. s *. s))

let f p c =
  if c <= 0.0 then invalid_arg "Passrate.f";
  let g = gamma p in
  let s = sqrt g +. (3.0 *. rounding_term p) in
  Chisq.cdf ~k:p.k (s *. s /. (c *. c))

let expected_damage p c = c *. f p c

(* c * F(c) is unimodal on (1, inf) (increasing then decreasing, §5.1),
   but essentially zero outside a narrow band just above 1, which starves
   bracketing searches.  A fine grid scan locates the peak's neighborhood;
   golden-section then refines inside it. *)
let max_damage p =
  let grid_n = 2000 in
  let grid c_i = 1.0 +. (15.0 *. float_of_int c_i /. float_of_int grid_n) in
  let best = ref 0 and best_v = ref (expected_damage p (grid 0)) in
  for i = 1 to grid_n do
    let v = expected_damage p (grid i) in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  let lo = grid (Stdlib.max 0 (!best - 1)) and hi = grid (Stdlib.min grid_n (!best + 1)) in
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (phi *. (!b -. !a))) in
  let x2 = ref (!a +. (phi *. (!b -. !a))) in
  let f1 = ref (expected_damage p !x1) and f2 = ref (expected_damage p !x2) in
  for _ = 1 to 200 do
    if !f1 > !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (phi *. (!b -. !a));
      f1 := expected_damage p !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (phi *. (!b -. !a));
      f2 := expected_damage p !x2
    end
  done;
  let c = 0.5 *. (!a +. !b) in
  (c, expected_damage p c)
