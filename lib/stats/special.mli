(** Special functions needed by the probabilistic integrity check:
    log-gamma and the regularized incomplete gamma functions, accurate far
    into the tail (ε down to 2^−128 ≈ 2.9·10^−39, well inside double
    range). *)

(** [ln_gamma x] for x > 0 (Lanczos approximation, ~15 digits). *)
val ln_gamma : float -> float

(** Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), for
    a > 0, x >= 0. *)
val gamma_p : float -> float -> float

(** Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x). *)
val gamma_q : float -> float -> float
