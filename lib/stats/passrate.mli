(** Theorem 1 quantities: the malicious-pass-rate function F_{k,ε,d,M}
    and the expected-damage analysis behind Figure 5 of the paper. *)

type params = {
  k : int;  (** number of Gaussian projections *)
  eps : float;  (** per-check failure budget for honest clients, e.g. 2^−128 *)
  d : int;  (** model dimension *)
  m_factor : float;  (** discretization factor M, e.g. 2^24 *)
}

(** γ_{k,ε} for these parameters. *)
val gamma : params -> float

(** The integer bound B0 = B²·M²·(√γ_{k,ε} + √(kd)/(2M))² of Theorem 1,
    given the L2 bound [b] (in encoded units). Rounded up. *)
val b0 : params -> b:float -> float

(** [f params c] = F_{k,ε,d,M}(c): an upper bound on the probability that
    a malicious update with ‖u‖₂ = c·B passes the check (Eqn 8). *)
val f : params -> float -> float

(** [expected_damage params c] = c · F(c): expected damage magnitude (in
    units of B) from submitting at ‖u‖₂ = c·B. *)
val expected_damage : params -> float -> float

(** [max_damage params] maximizes {!expected_damage} over c ∈ (1, ∞)
    (Eqn 12); returns [(c_star, damage)]. *)
val max_damage : params -> float * float
