let cdf ~k x =
  if k <= 0 then invalid_arg "Chisq.cdf";
  if x <= 0.0 then 0.0 else Special.gamma_p (float_of_int k /. 2.0) (x /. 2.0)

let sf ~k x =
  if k <= 0 then invalid_arg "Chisq.sf";
  if x <= 0.0 then 1.0 else Special.gamma_q (float_of_int k /. 2.0) (x /. 2.0)

let quantile_upper ~k ~eps =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Chisq.quantile_upper";
  (* sf is strictly decreasing; bracket the root then bisect.  The tail at
     eps ~ 2^-128 sits around k + O(sqrt(k) * 128 + 128): growing the upper
     bracket geometrically is cheap and safe. *)
  let lo = ref 0.0 in
  let hi = ref (float_of_int (Stdlib.max k 1)) in
  while sf ~k !hi > eps do
    lo := !hi;
    hi := !hi *. 2.0
  done;
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if sf ~k mid > eps then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)
